#!/usr/bin/env bash
# Full correctness gate for AVScope.
#
#   1. tier-1 verify: default configure + build + ctest
#      (then the fault-injection smoke by its ctest label)
#   2. avlint over the whole tree
#   3. avgraph: the static pub/sub topology contract over src/
#      (regenerates results/topology.{json,dot}), then the ctest
#      label 'graph'
#   4. trace stage: the ctest label 'trace' (critical-path report +
#      guarded-optimizer accept/rollback smoke over a traced drive,
#      DESIGN.md §14)
#   5. chaos stage: the ctest label 'chaos' (compound-fault campaign
#      + safety invariants + plan minimization, DESIGN.md §15)
#   6. rebuild + ctest under AddressSanitizer + UBSan, then the
#      transport microbench, critical-path and chaos-campaign smokes
#      under the same build
#   7. rebuild + ctest under ThreadSanitizer (the Runner's worker
#      pool and result cache run real threads; TSan proves the
#      isolation contract DESIGN.md §10 describes), then the same
#      three smokes again — TSan is what proves the ring's
#      cross-thread acquire/release protocol clean
#
# Usage: scripts/check.sh [build-dir] [asan-build-dir] [tsan-build-dir]
# Exit code is non-zero if any stage fails.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
ASAN_BUILD="${2:-$ROOT/build-asan}"
TSAN_BUILD="${3:-$ROOT/build-tsan}"

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n== %s ==\n' "$*"; }

step "tier-1: configure + build ($BUILD)"
cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$JOBS"

step "tier-1: ctest"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

step "fault-injection smoke (ctest label 'fault')"
ctest --test-dir "$BUILD" --output-on-failure -L fault

step "avlint"
"$BUILD/tools/avlint/avlint" --root "$ROOT"

step "avgraph (static pub/sub topology contract, ctest label 'graph')"
"$BUILD/tools/avgraph/avgraph" --root "$ROOT" \
    --json "$ROOT/results/topology.json" \
    --dot "$ROOT/results/topology.dot"
ctest --test-dir "$BUILD" --output-on-failure -L graph

step "trace smoke (critical path + guarded optimizer, ctest label 'trace')"
ctest --test-dir "$BUILD" --output-on-failure -L trace

step "chaos smoke (compound-fault campaign + minimizer, ctest label 'chaos')"
ctest --test-dir "$BUILD" --output-on-failure -L chaos

step "sanitizers: configure + build ($ASAN_BUILD)"
cmake -B "$ASAN_BUILD" -S "$ROOT" \
    -DAVSCOPE_SANITIZE="address;undefined"
cmake --build "$ASAN_BUILD" -j "$JOBS"

step "sanitizers: ctest (ASan + UBSan, halt on any report)"
# The full suite includes fault_resilience.smoke (label 'fault'), so
# every fault class runs under ASan/UBSan here too.
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS"

step "transport microbench smoke (ASan + UBSan)"
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "$ASAN_BUILD/bench/micro_transport" --smoke

step "critical-path smoke (ASan + UBSan)"
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "$ASAN_BUILD/bench/critical_path" --smoke --duration 6 --no-cache

step "chaos-campaign smoke (ASan + UBSan)"
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "$ASAN_BUILD/bench/chaos_campaign" --smoke --duration 6 --no-cache

step "sanitizers: configure + build ($TSAN_BUILD)"
cmake -B "$TSAN_BUILD" -S "$ROOT" \
    -DAVSCOPE_SANITIZE="thread"
cmake --build "$TSAN_BUILD" -j "$JOBS"

step "sanitizers: ctest (TSan, halt on any report)"
TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$JOBS"

step "transport microbench smoke (TSan)"
TSAN_OPTIONS="halt_on_error=1" \
    "$TSAN_BUILD/bench/micro_transport" --smoke

step "critical-path smoke (TSan)"
TSAN_OPTIONS="halt_on_error=1" \
    "$TSAN_BUILD/bench/critical_path" --smoke --duration 6 --no-cache

step "chaos-campaign smoke (TSan)"
TSAN_OPTIONS="halt_on_error=1" \
    "$TSAN_BUILD/bench/chaos_campaign" --smoke --duration 6 --no-cache

step "all checks passed"
