/**
 * @file
 * avgraph CLI.
 *
 *   avgraph --root <repo> [--json PATH] [--dot PATH]
 *                         [--canonical PATH]
 *
 * Extracts the static pub/sub graph from <repo>/src, infers rates
 * against the Table IV path spec, runs the graph-contract rule
 * catalog and reports diagnostics avlint-style. The optional
 * emitter flags write the graph artifacts regardless of findings.
 *
 * Exit status: 0 clean, 1 findings, 2 usage error.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "avgraph.hh"

namespace {

int
report(const std::vector<av::lint::Diagnostic> &diags)
{
    for (const auto &d : diags)
        std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    if (diags.empty()) {
        std::printf("avgraph: clean\n");
        return 0;
    }
    std::printf("avgraph: %zu finding(s)\n", diags.size());
    return 1;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "avgraph: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    out << content;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    std::string root, json_path, dot_path, canonical_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string *target = nullptr;
        if (args[i] == "--root")
            target = &root;
        else if (args[i] == "--json")
            target = &json_path;
        else if (args[i] == "--dot")
            target = &dot_path;
        else if (args[i] == "--canonical")
            target = &canonical_path;
        else {
            std::fprintf(stderr,
                         "avgraph: unknown argument '%s'\n",
                         args[i].c_str());
            return 2;
        }
        if (i + 1 >= args.size()) {
            std::fprintf(stderr, "avgraph: %s needs a value\n",
                         args[i].c_str());
            return 2;
        }
        *target = args[++i];
    }
    if (root.empty()) {
        std::fprintf(stderr,
                     "usage: avgraph --root <repo> [--json PATH]"
                     " [--dot PATH] [--canonical PATH]\n");
        return 2;
    }

    av::graph::StaticGraph graph = av::graph::extractTree(root);
    const av::graph::PathSpec spec = av::graph::tableIvSpec();
    av::graph::inferRates(graph, spec);

    if (!json_path.empty() &&
        !writeFile(json_path, av::graph::toJson(graph)))
        return 2;
    if (!dot_path.empty() &&
        !writeFile(dot_path, av::graph::toDot(graph)))
        return 2;
    if (!canonical_path.empty() &&
        !writeFile(canonical_path, av::graph::toCanonical(graph)))
        return 2;

    return report(av::graph::checkGraph(graph, spec));
}
