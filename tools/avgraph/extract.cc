/**
 * @file
 * Static extraction of the pub/sub graph from source text.
 *
 * Built on avlint's SourceFile in literal-preserving mode: string
 * tokens carry their characters, so topic names are readable both
 * as direct literals and through the `constexpr const char *`
 * topic-constant symbol table. Node attribution uses the
 * constructor anchor `PerceptionNode(graph, "name", ...)` /
 * `Node(graph, "name")`: sites that follow it (member-init list and
 * constructor body) belong to that node until the next anchor.
 * Unresolvable topic arguments (e.g. a bag channel created from a
 * runtime string) are skipped — the analysis is best-effort static,
 * never guessing.
 */

#include "avgraph.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

namespace av::graph {

namespace fs = std::filesystem;

namespace {

using lint::SourceFile;
using lint::Token;
using lint::TokenKind;

std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokenKind::Punct && t.text == text;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/**
 * Read the template argument list opening at @p open (the '<'
 * token): joins the argument tokens into @p type and returns the
 * index just past the matching '>'.
 */
std::size_t
readTemplateType(const std::vector<Token> &toks, std::size_t open,
                 std::string *type)
{
    int depth = 0;
    std::string out;
    std::size_t j = open;
    while (j < toks.size()) {
        if (isPunct(toks[j], "<")) {
            ++depth;
            if (depth == 1) {
                ++j;
                continue;
            }
        } else if (isPunct(toks[j], ">")) {
            if (--depth == 0) {
                ++j;
                break;
            }
        }
        out += toks[j].text;
        ++j;
    }
    *type = out;
    return j;
}

/**
 * Collect the token indices of the first call argument. @p open is
 * the '(' token; returns the index of the delimiter (the ',' or the
 * closing ')' at call depth) so callers can continue after it.
 */
std::size_t
readFirstArg(const std::vector<Token> &toks, std::size_t open,
             std::vector<std::size_t> *arg)
{
    int paren = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (isPunct(toks[j], "(")) {
            ++paren;
            if (paren == 1)
                continue;
        } else if (isPunct(toks[j], ")")) {
            --paren;
            if (paren == 0)
                return j;
        } else if (paren == 1 && isPunct(toks[j], ",")) {
            return j;
        }
        arg->push_back(j);
    }
    return toks.size();
}

/**
 * Resolve a topic argument: a string literal is taken verbatim
 * (adjacent literals concatenate); otherwise the last identifier is
 * looked up in the topic-constant symbol table. Empty when
 * unresolvable.
 */
std::string
resolveTopic(const std::vector<Token> &toks,
             const std::vector<std::size_t> &arg,
             const std::map<std::string, std::string> &symbols)
{
    std::string literal;
    bool any_string = false, any_ident = false;
    std::string last_ident;
    for (const std::size_t idx : arg) {
        if (toks[idx].kind == TokenKind::String) {
            any_string = true;
            literal += toks[idx].text;
        } else if (toks[idx].kind == TokenKind::Identifier) {
            any_ident = true;
            last_ident = toks[idx].text;
        }
    }
    if (any_string && !any_ident)
        return literal;
    if (any_ident) {
        const auto it = symbols.find(last_ident);
        if (it != symbols.end())
            return it->second;
    }
    return {};
}

/** `constexpr const char *name = "...";` -> symbols[name]. */
void
collectSymbols(const SourceFile &f,
               std::map<std::string, std::string> &symbols)
{
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
        if (toks[i].text != "char" || !isPunct(toks[i + 1], "*") ||
            toks[i + 2].kind != TokenKind::Identifier ||
            !isPunct(toks[i + 3], "="))
            continue;
        const std::string &name = toks[i + 2].text;
        std::size_t j = i + 4;
        if (toks[j].kind != TokenKind::String)
            continue;
        std::string value;
        while (j < toks.size() &&
               toks[j].kind == TokenKind::String) {
            value += toks[j].text;
            ++j;
        }
        if (j < toks.size() && isPunct(toks[j], ";"))
            symbols.emplace(name, value);
    }
}

/** `<x>Period = [N *] sim::<unit>` -> periods[<x>Period] seconds. */
void
collectPeriods(const SourceFile &f,
               std::map<std::string, double> &periods)
{
    static const std::map<std::string, double> units = {
        {"oneNs", 1e-9},
        {"oneUs", 1e-6},
        {"oneMs", 1e-3},
        {"oneSec", 1.0},
    };
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            !endsWith(toks[i].text, "Period") ||
            !isPunct(toks[i + 1], "="))
            continue;
        std::size_t j = i + 2;
        double scale = 1.0;
        if (j < toks.size() && toks[j].kind == TokenKind::Number) {
            scale = std::strtod(toks[j].text.c_str(), nullptr);
            ++j;
            if (j >= toks.size() || !isPunct(toks[j], "*"))
                continue; // unitless count, not a duration
            ++j;
        }
        if (j + 3 >= toks.size() || toks[j].text != "sim" ||
            !isPunct(toks[j + 1], ":") || !isPunct(toks[j + 2], ":"))
            continue;
        const auto unit = units.find(toks[j + 3].text);
        if (unit == units.end())
            continue;
        periods.emplace(toks[i].text, scale * unit->second);
    }
}

/** Call-site accumulator shared across the file set. */
struct Accum
{
    std::map<std::string, std::string> symbols;
    std::map<std::string, double> periods;
    std::vector<PubSite> pubs;
    std::vector<SubSite> subs;
    std::vector<ExternalSite> externals;
};

void
collectSites(const SourceFile &f, Accum &acc)
{
    const auto &toks = f.tokens();
    std::string node; // current constructor-anchor context
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier)
            continue;

        // Constructor anchor: <Base>Node(graph, "name", ...).
        if ((t.text == "PerceptionNode" || t.text == "Node") &&
            i + 4 < toks.size() && isPunct(toks[i + 1], "(") &&
            toks[i + 2].kind == TokenKind::Identifier &&
            toks[i + 2].text == "graph" &&
            isPunct(toks[i + 3], ",") &&
            toks[i + 4].kind == TokenKind::String) {
            node = toks[i + 4].text;
            continue;
        }

        const bool is_adv = t.text == "advertise";
        const bool is_sub = t.text == "subscribe";
        const bool is_chan = t.text == "channel";
        if (!is_adv && !is_sub && !is_chan)
            continue;
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "<"))
            continue; // declaration or non-template use
        std::string type;
        const std::size_t call = readTemplateType(toks, i + 1, &type);
        if (call >= toks.size() || !isPunct(toks[call], "("))
            continue;
        std::vector<std::size_t> arg;
        const std::size_t delim = readFirstArg(toks, call, &arg);
        const std::string topic =
            resolveTopic(toks, arg, acc.symbols);
        if (topic.empty())
            continue; // dynamic topic argument: not statically known

        const Site site{f.relPath(), t.line};
        if (is_chan) {
            acc.externals.push_back(
                ExternalSite{"bag_replay", topic, type, site});
            continue;
        }
        if (node.empty())
            continue; // pub/sub outside any node constructor
        if (is_adv) {
            acc.pubs.push_back(PubSite{node, topic, type, site});
            continue;
        }
        // subscribe<T>(topic, depth, handler)
        std::size_t depth = 0;
        if (delim < toks.size() && isPunct(toks[delim], ",") &&
            delim + 1 < toks.size() &&
            toks[delim + 1].kind == TokenKind::Number)
            depth = static_cast<std::size_t>(
                std::strtoul(toks[delim + 1].text.c_str(), nullptr,
                             10));
        acc.subs.push_back(SubSite{node, topic, type, depth, site});
    }
}

StaticGraph
assemble(const std::vector<SourceFile> &files)
{
    Accum acc;
    for (const SourceFile &f : files) {
        collectSymbols(f, acc.symbols);
        collectPeriods(f, acc.periods);
    }
    for (const SourceFile &f : files)
        collectSites(f, acc);

    StaticGraph g;
    g.periodSeconds = std::move(acc.periods);
    for (PubSite &p : acc.pubs) {
        g.nodes.push_back(p.node);
        g.topics[p.topic].pubs.push_back(std::move(p));
    }
    for (SubSite &s : acc.subs) {
        g.nodes.push_back(s.node);
        g.topics[s.topic].subs.push_back(std::move(s));
    }
    for (ExternalSite &e : acc.externals)
        g.topics[e.topic].externals.push_back(std::move(e));
    std::sort(g.nodes.begin(), g.nodes.end());
    g.nodes.erase(std::unique(g.nodes.begin(), g.nodes.end()),
                  g.nodes.end());
    return g;
}

} // namespace

StaticGraph
extractTree(const std::string &root)
{
    const fs::path src = fs::path(root) / "src";
    std::vector<fs::path> paths;
    if (fs::exists(src))
        for (const auto &entry :
             fs::recursive_directory_iterator(src)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext =
                entry.path().extension().string();
            if (ext == ".cc" || ext == ".hh" || ext == ".cpp")
                paths.push_back(entry.path());
        }
    std::sort(paths.begin(), paths.end());

    std::vector<SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path &path : paths) {
        const auto content = slurp(path);
        if (!content)
            continue;
        const std::string rel =
            fs::relative(path, root).generic_string();
        files.emplace_back(rel, *content, /*keep_strings=*/true);
    }
    return assemble(files);
}

StaticGraph
extractSources(
    const std::vector<std::pair<std::string, std::string>> &sources)
{
    std::vector<SourceFile> files;
    files.reserve(sources.size());
    for (const auto &[rel, content] : sources)
        files.emplace_back(rel, content, /*keep_strings=*/true);
    return assemble(files);
}

} // namespace av::graph
