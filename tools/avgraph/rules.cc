/**
 * @file
 * Graph-contract rules and rate inference over the extracted graph.
 * See avgraph.hh for the catalog and the rationale per rule.
 */

#include "avgraph.hh"

#include <cmath>
#include <set>

namespace av::graph {

namespace {

using Diags = std::vector<lint::Diagnostic>;

/** Type spelling varies with the namespace a site sits in
 *  (`world::CameraFrame` vs `CameraFrame`); compare the last
 *  component. */
std::string
lastComponent(const std::string &type)
{
    const std::size_t colon = type.rfind(':');
    return colon == std::string::npos ? type
                                      : type.substr(colon + 1);
}

void
emit(Diags &out, const Site &site, const std::string &rule,
     const std::string &message)
{
    out.push_back(
        lint::Diagnostic{site.file, site.line, rule, message});
}

/** Representative site for topic-level diagnostics: first pub,
 *  else first external, else first sub (site order is file-sorted,
 *  so this is deterministic). */
const Site &
topicSite(const TopicEntry &entry)
{
    if (!entry.pubs.empty())
        return entry.pubs.front().site;
    if (!entry.externals.empty())
        return entry.externals.front().site;
    return entry.subs.front().site;
}

std::string
joinSorted(const std::set<std::string> &items,
           const std::string &sep)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += sep;
        out += item;
    }
    return out;
}

/** Tarjan strongly-connected components over the node digraph. */
class SccFinder
{
  public:
    explicit SccFinder(
        const std::map<std::string, std::set<std::string>> &adj)
        : adj_(adj)
    {
        for (const auto &[node, _] : adj_)
            if (!index_.count(node))
                strongconnect(node);
    }

    const std::vector<std::vector<std::string>> &sccs() const
    {
        return sccs_;
    }

  private:
    void
    strongconnect(const std::string &v)
    {
        index_[v] = lowlink_[v] = next_++;
        stack_.push_back(v);
        onStack_.insert(v);
        const auto it = adj_.find(v);
        if (it != adj_.end())
            for (const std::string &w : it->second) {
                if (!index_.count(w)) {
                    strongconnect(w);
                    lowlink_[v] =
                        std::min(lowlink_[v], lowlink_[w]);
                } else if (onStack_.count(w)) {
                    lowlink_[v] = std::min(lowlink_[v], index_[w]);
                }
            }
        if (lowlink_[v] == index_[v]) {
            std::vector<std::string> scc;
            while (true) {
                const std::string w = stack_.back();
                stack_.pop_back();
                onStack_.erase(w);
                scc.push_back(w);
                if (w == v)
                    break;
            }
            sccs_.push_back(std::move(scc));
        }
    }

    const std::map<std::string, std::set<std::string>> &adj_;
    std::map<std::string, int> index_;
    std::map<std::string, int> lowlink_;
    std::vector<std::string> stack_;
    std::set<std::string> onStack_;
    int next_ = 0;
    std::vector<std::vector<std::string>> sccs_;
};

} // namespace

PathSpec
tableIvSpec()
{
    PathSpec spec;
    const std::string trackingTail[] = {
        "/detection/fusion_tools/objects",
        "imm_ukf_pda_tracker",
        "/detection/object_tracker/objects",
        "ukf_track_relay",
        "/detection/objects",
        "naive_motion_prediction",
        "/prediction/motion_predictor/objects",
        "costmap_generator",
        "/semantics/costmap",
    };

    PathSpec::Path localization;
    localization.name = "localization";
    localization.elements = {
        "/points_raw",      "voxel_grid_filter",
        "/filtered_points", "ndt_matching",
        "/ndt_pose",
    };

    PathSpec::Path costmapPoints;
    costmapPoints.name = "costmap_points";
    costmapPoints.elements = {
        "/points_raw",       "ray_ground_filter",
        "/points_no_ground", "costmap_generator",
        "/semantics/costmap",
    };

    PathSpec::Path costmapCluster;
    costmapCluster.name = "costmap_cluster_obj";
    costmapCluster.elements = {
        "/points_raw",
        "ray_ground_filter",
        "/points_no_ground",
        "euclidean_cluster",
        "/detection/lidar_detector/objects",
        "range_vision_fusion",
    };
    costmapCluster.elements.insert(costmapCluster.elements.end(),
                                   std::begin(trackingTail),
                                   std::end(trackingTail));

    PathSpec::Path costmapVision;
    costmapVision.name = "costmap_vision_obj";
    costmapVision.elements = {
        "/image_raw",
        "vision_detection",
        "/detection/image_detector/objects",
        "range_vision_fusion",
    };
    costmapVision.elements.insert(costmapVision.elements.end(),
                                  std::begin(trackingTail),
                                  std::end(trackingTail));

    spec.paths = {localization, costmapPoints, costmapCluster,
                  costmapVision};
    // Legal off-path topics: the ground-plane debug output and the
    // localization side inputs (cached, never triggering).
    spec.auxTopics = {"/points_ground", "/gnss_pose", "/imu_raw"};
    spec.sensorPeriods = {
        {"/points_raw", "lidarPeriod"},
        {"/image_raw", "cameraPeriod"},
        {"/gnss_pose", "gnssPeriod"},
        {"/imu_raw", "imuPeriod"},
    };
    return spec;
}

void
inferRates(StaticGraph &graph, const PathSpec &spec)
{
    std::map<std::string, double> topicRate;
    for (const auto &[topic, field] : spec.sensorPeriods) {
        const auto it = graph.periodSeconds.find(field);
        if (it != graph.periodSeconds.end() && it->second > 0.0)
            topicRate[topic] = 1.0 / it->second;
    }

    // Fixpoint along the declared paths. A node fires when its
    // path-predecessor topic delivers, so its service rate is the
    // *slowest* predecessor across all paths it sits on (the other
    // inputs are cached and merged into that cycle); its output
    // topics inherit the node's rate.
    std::map<std::string, double> nodeRate;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const PathSpec::Path &path : spec.paths) {
            for (std::size_t i = 1; i + 1 < path.elements.size();
                 i += 2) {
                const std::string &pred = path.elements[i - 1];
                const std::string &node = path.elements[i];
                const std::string &succ = path.elements[i + 1];
                const auto predIt = topicRate.find(pred);
                if (predIt != topicRate.end()) {
                    const auto nodeIt = nodeRate.find(node);
                    if (nodeIt == nodeRate.end() ||
                        predIt->second < nodeIt->second) {
                        nodeRate[node] = predIt->second;
                        changed = true;
                    }
                }
                const auto nodeIt = nodeRate.find(node);
                if (nodeIt != nodeRate.end()) {
                    const auto succIt = topicRate.find(succ);
                    if (succIt == topicRate.end() ||
                        nodeIt->second < succIt->second) {
                        topicRate[succ] = nodeIt->second;
                        changed = true;
                    }
                }
            }
        }
    }

    graph.nodeRates = std::move(nodeRate);
    for (auto &[name, entry] : graph.topics) {
        const auto it = topicRate.find(name);
        if (it != topicRate.end())
            entry.rateHz = it->second;
    }
}

std::vector<lint::Diagnostic>
checkGraph(const StaticGraph &graph, const PathSpec &spec)
{
    Diags out;
    const std::set<std::string> aux(spec.auxTopics.begin(),
                                    spec.auxTopics.end());
    std::set<std::string> onPath, terminals;
    for (const PathSpec::Path &path : spec.paths) {
        for (std::size_t i = 0; i < path.elements.size(); i += 2)
            onPath.insert(path.elements[i]);
        if (!path.elements.empty())
            terminals.insert(path.elements.back());
    }

    for (const auto &[name, entry] : graph.topics) {
        const bool published =
            !entry.pubs.empty() || !entry.externals.empty();

        // type-mismatch -----------------------------------------
        std::set<std::string> types;
        for (const PubSite &p : entry.pubs)
            types.insert(lastComponent(p.type));
        for (const SubSite &s : entry.subs)
            types.insert(lastComponent(s.type));
        for (const ExternalSite &e : entry.externals)
            types.insert(lastComponent(e.type));
        if (types.size() > 1)
            emit(out, topicSite(entry), "type-mismatch",
                 "topic '" + name +
                     "' is used with conflicting message types: " +
                     joinSorted(types, " vs "));

        // duplicate-publisher -----------------------------------
        std::set<std::string> publishers;
        for (const PubSite &p : entry.pubs)
            publishers.insert(p.node);
        for (const ExternalSite &e : entry.externals)
            publishers.insert(e.source);
        if (publishers.size() > 1)
            emit(out, topicSite(entry), "duplicate-publisher",
                 "topic '" + name + "' has " +
                     std::to_string(publishers.size()) +
                     " publishers (" + joinSorted(publishers, ", ") +
                     "); one topic, one publisher");

        // orphans -----------------------------------------------
        if (published && entry.subs.empty() && !aux.count(name) &&
            !terminals.count(name))
            emit(out, topicSite(entry), "orphan-published",
                 "topic '" + name +
                     "' is published but never subscribed —"
                     " dead output or missing consumer");
        if (!published && !entry.subs.empty())
            emit(out, entry.subs.front().site, "orphan-subscribed",
                 "topic '" + name +
                     "' is subscribed but nothing publishes it —"
                     " the subscriber can never fire");

        // queue-depth -------------------------------------------
        for (const SubSite &s : entry.subs) {
            const auto rateIt = graph.nodeRates.find(s.node);
            if (entry.rateHz <= 0.0 ||
                rateIt == graph.nodeRates.end() ||
                rateIt->second <= 0.0 || s.depth == 0)
                continue;
            const double need_raw =
                std::ceil(entry.rateHz / rateIt->second - 1e-9);
            const std::size_t need = need_raw < 1.0
                ? std::size_t{1}
                : static_cast<std::size_t>(need_raw);
            if (s.depth < need)
                emit(out, s.site, "queue-depth",
                     "queue depth " + std::to_string(s.depth) +
                         " on '" + name + "' at node '" + s.node +
                         "' cannot absorb the producer/consumer"
                         " rate ratio; need >= " +
                         std::to_string(need));
        }

        // path coverage (topic side) ----------------------------
        if (!spec.paths.empty() && !onPath.count(name) &&
            !aux.count(name))
            emit(out, topicSite(entry), "path-coverage",
                 "topic '" + name +
                     "' is missing from every declared computation"
                     " path (and is not an aux topic)");
    }

    // path coverage (edge side): every declared hop must exist.
    for (const PathSpec::Path &path : spec.paths) {
        for (std::size_t i = 1; i + 1 < path.elements.size();
             i += 2) {
            const std::string &pred = path.elements[i - 1];
            const std::string &node = path.elements[i];
            const std::string &succ = path.elements[i + 1];
            bool subscribes = false, publishes = false;
            const auto predIt = graph.topics.find(pred);
            if (predIt != graph.topics.end())
                for (const SubSite &s : predIt->second.subs)
                    subscribes = subscribes || s.node == node;
            const auto succIt = graph.topics.find(succ);
            if (succIt != graph.topics.end())
                for (const PubSite &p : succIt->second.pubs)
                    publishes = publishes || p.node == node;
            if (!subscribes)
                emit(out, Site{"<paths>", 0}, "path-coverage",
                     "path '" + path.name + "': node '" + node +
                         "' does not subscribe to '" + pred + "'");
            if (!publishes)
                emit(out, Site{"<paths>", 0}, "path-coverage",
                     "path '" + path.name + "': node '" + node +
                         "' does not publish '" + succ + "'");
        }
    }

    // graph-cycle -----------------------------------------------
    std::map<std::string, std::set<std::string>> adj;
    for (const std::string &node : graph.nodes)
        adj[node]; // every node participates, even without edges
    for (const auto &[name, entry] : graph.topics)
        for (const PubSite &p : entry.pubs)
            for (const SubSite &s : entry.subs)
                adj[p.node].insert(s.node);
    const SccFinder finder(adj);
    for (const std::vector<std::string> &scc : finder.sccs()) {
        const bool selfLoop =
            scc.size() == 1 && adj[scc.front()].count(scc.front());
        if (scc.size() < 2 && !selfLoop)
            continue;
        const std::set<std::string> members(scc.begin(), scc.end());
        // Anchor the diagnostic at the first pub site of the
        // lexicographically first member.
        Site site{"<graph>", 0};
        const std::string &anchor = *members.begin();
        bool found = false;
        for (const auto &[name, entry] : graph.topics) {
            for (const PubSite &p : entry.pubs)
                if (!found && p.node == anchor) {
                    site = p.site;
                    found = true;
                }
        }
        emit(out, site, "graph-cycle",
             "pub/sub cycle between nodes: " +
                 joinSorted(members, " -> ") + " -> " +
                 *members.begin());
    }

    lint::sortDiagnostics(out);
    return out;
}

} // namespace av::graph
