/**
 * @file
 * Graph emitters: JSON (tooling), DOT (docs) and the canonical
 * snapshot form pinned by the golden-graph test.
 */

#include "avgraph.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace av::graph {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/** Stable short formatting for rates ("10", "15.1515"). */
std::string
fmtNum(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    out += jsonEscape(s);
    out += '"';
    return out;
}

/** DOT quoting: only '"' needs escaping; backslash escapes such as
 *  the "\n" in multi-line labels must pass through untouched. */
std::string
dotQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
toJson(const StaticGraph &graph)
{
    std::ostringstream os;
    os << "{\n  \"nodes\": [";
    for (std::size_t i = 0; i < graph.nodes.size(); ++i)
        os << (i ? ", " : "") << quote(graph.nodes[i]);
    os << "],\n  \"node_rates_hz\": {";
    bool first = true;
    for (const auto &[node, rate] : graph.nodeRates) {
        os << (first ? "" : ", ") << quote(node) << ": "
           << fmtNum(rate);
        first = false;
    }
    os << "},\n  \"topics\": [";
    first = true;
    for (const auto &[name, entry] : graph.topics) {
        os << (first ? "\n" : ",\n") << "    {\n      \"name\": "
           << quote(name);
        first = false;
        if (entry.rateHz > 0.0)
            os << ",\n      \"rate_hz\": " << fmtNum(entry.rateHz);
        os << ",\n      \"externals\": [";
        for (std::size_t i = 0; i < entry.externals.size(); ++i) {
            const ExternalSite &e = entry.externals[i];
            os << (i ? ", " : "") << "{\"source\": "
               << quote(e.source) << ", \"type\": " << quote(e.type)
               << ", \"file\": " << quote(e.site.file)
               << ", \"line\": " << e.site.line << "}";
        }
        os << "],\n      \"pubs\": [";
        for (std::size_t i = 0; i < entry.pubs.size(); ++i) {
            const PubSite &p = entry.pubs[i];
            os << (i ? ", " : "") << "{\"node\": " << quote(p.node)
               << ", \"type\": " << quote(p.type)
               << ", \"file\": " << quote(p.site.file)
               << ", \"line\": " << p.site.line << "}";
        }
        os << "],\n      \"subs\": [";
        for (std::size_t i = 0; i < entry.subs.size(); ++i) {
            const SubSite &s = entry.subs[i];
            os << (i ? ", " : "") << "{\"node\": " << quote(s.node)
               << ", \"type\": " << quote(s.type)
               << ", \"depth\": " << s.depth
               << ", \"file\": " << quote(s.site.file)
               << ", \"line\": " << s.site.line << "}";
        }
        os << "]\n    }";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::string
toDot(const StaticGraph &graph)
{
    std::ostringstream os;
    os << "digraph avscope {\n"
       << "  rankdir=LR;\n"
       << "  node [fontname=\"Helvetica\", fontsize=11];\n";

    // External sources (diamonds) — collect distinct names.
    std::vector<std::string> sources;
    for (const auto &[name, entry] : graph.topics)
        for (const ExternalSite &e : entry.externals)
            sources.push_back(e.source);
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()),
                  sources.end());
    for (const std::string &source : sources)
        os << "  " << dotQuote(source)
           << " [shape=diamond, style=filled,"
              " fillcolor=lightyellow];\n";

    // Topics (boxes, labeled with the inferred rate).
    for (const auto &[name, entry] : graph.topics) {
        os << "  " << dotQuote(name) << " [shape=box";
        if (entry.rateHz > 0.0)
            os << ", label=" << dotQuote(name + "\\n" +
                                      fmtNum(entry.rateHz) + " Hz");
        os << "];\n";
    }

    // Nodes (default ellipses).
    for (const std::string &node : graph.nodes) {
        os << "  " << dotQuote(node) << " [shape=ellipse";
        const auto it = graph.nodeRates.find(node);
        if (it != graph.nodeRates.end())
            os << ", label=" << dotQuote(node + "\\n" +
                                      fmtNum(it->second) + " Hz");
        os << "];\n";
    }

    // Edges, sorted and deduplicated (bag record + replay channels
    // are one edge).
    std::vector<std::string> edges;
    for (const auto &[name, entry] : graph.topics) {
        for (const ExternalSite &e : entry.externals)
            edges.push_back("  " + dotQuote(e.source) + " -> " +
                            dotQuote(name) + ";");
        for (const PubSite &p : entry.pubs)
            edges.push_back("  " + dotQuote(p.node) + " -> " +
                            dotQuote(name) + ";");
        for (const SubSite &s : entry.subs)
            edges.push_back("  " + dotQuote(name) + " -> " +
                            dotQuote(s.node) + " [label=\"q=" +
                            std::to_string(s.depth) + "\"];");
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()),
                edges.end());
    for (const std::string &edge : edges)
        os << edge << "\n";
    os << "}\n";
    return os.str();
}

std::string
toCanonical(const StaticGraph &graph)
{
    std::ostringstream os;
    for (const std::string &node : graph.nodes) {
        os << "node " << node;
        const auto it = graph.nodeRates.find(node);
        if (it != graph.nodeRates.end())
            os << " rate " << fmtNum(it->second);
        os << "\n";
    }
    for (const auto &[name, entry] : graph.topics) {
        os << "topic " << name;
        if (entry.rateHz > 0.0)
            os << " rate " << fmtNum(entry.rateHz);
        os << "\n";

        // Sorted and deduplicated: two call sites expressing the
        // same edge (e.g. bag record + replay channels) are one
        // topology fact.
        const auto flush = [&os](std::vector<std::string> &lines) {
            std::sort(lines.begin(), lines.end());
            lines.erase(std::unique(lines.begin(), lines.end()),
                        lines.end());
            for (const std::string &line : lines)
                os << line << "\n";
            lines.clear();
        };

        std::vector<std::string> lines;
        for (const ExternalSite &e : entry.externals)
            lines.push_back("  external " + e.source + " type " +
                            e.type);
        flush(lines);
        for (const PubSite &p : entry.pubs)
            lines.push_back("  pub " + p.node + " type " + p.type);
        flush(lines);
        for (const SubSite &s : entry.subs)
            lines.push_back("  sub " + s.node + " depth " +
                            std::to_string(s.depth) + " type " +
                            s.type);
        flush(lines);
    }
    return os.str();
}

} // namespace av::graph
