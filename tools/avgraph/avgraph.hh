/**
 * @file
 * avgraph — whole-program static pub/sub topology analysis.
 *
 * The paper's methodology is graph-shaped: every latency, drop and
 * contention finding is an attribute of the node/topic dataflow
 * graph (Fig. 2) and its computation paths (Table IV). That graph
 * exists in the source only implicitly, as ~30 `advertise<T>` /
 * `subscribe<T>` call sites — a refactor can orphan a topic,
 * mismatch a message type or shrink a queue without any test
 * noticing. avgraph makes the graph explicit and checkable:
 *
 *  1. *Extraction* (extract.cc): every `advertise<T>(topic)`,
 *     `subscribe<T>(topic, depth, ...)` and bag `channel<T>(topic)`
 *     call site in src/, resolved through a symbol table of
 *     `constexpr const char *` topic constants and attributed to
 *     its node via the `PerceptionNode(graph, "name", ...)` /
 *     `Node(graph, "name")` constructor anchor. Sensor cadences are
 *     read from `<x>Period = N * sim::oneMs`-style fields.
 *
 *  2. *Rates* (rules.cc): sensor rates propagate along the declared
 *     Table IV computation paths — a node's service rate is the
 *     slowest of its path-predecessor topics (secondary inputs such
 *     as the IMU cache into the next cycle; they do not trigger
 *     publications), and a topic inherits its publisher's rate.
 *
 *  3. *Rule catalog* (rules.cc), one diagnostic per defect:
 *       type-mismatch        pub/sub/external types disagree on a
 *                            topic
 *       orphan-published     published (or replayed) but never
 *                            subscribed, and neither an aux topic
 *                            nor a path terminal
 *       orphan-subscribed    subscribed but nothing publishes it
 *       duplicate-publisher  more than one publisher on one topic
 *       queue-depth          bounded queue cannot absorb the
 *                            producer/consumer rate ratio
 *                            (depth < ceil(producer/consumer))
 *       graph-cycle          a pub/sub cycle between nodes
 *       path-coverage        a topic outside every declared path
 *                            (and not an aux topic), or a declared
 *                            path edge missing from the graph
 *
 *  4. *Emitters* (emit.cc): JSON and DOT for tooling and docs, and
 *     a canonical form — sorted, stripped of file/line — that the
 *     golden-graph snapshot test pins byte-for-byte, so any
 *     topology change must be intentional.
 *
 * The runtime half lives in src/ros/topology.hh: a live drive's
 * registered topology must equal the statically extracted graph
 * (tests/stack/test_topology_crossval.cc).
 */

#ifndef AVSCOPE_TOOLS_AVGRAPH_AVGRAPH_HH
#define AVSCOPE_TOOLS_AVGRAPH_AVGRAPH_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "avlint.hh"

namespace av::graph {

/** Where a call site was found. */
struct Site
{
    std::string file; ///< path relative to the scanned root
    int line = 0;     ///< 1-based
};

/** One `advertise<T>(topic, ...)` call site. */
struct PubSite
{
    std::string node;  ///< advertising node's registered name
    std::string topic; ///< resolved topic string
    std::string type;  ///< message type as written, e.g. "pc::PointCloud"
    Site site;
};

/** One `subscribe<T>(topic, depth, ...)` call site. */
struct SubSite
{
    std::string node;
    std::string topic;
    std::string type;
    std::size_t depth = 0; ///< bounded queue depth at the site
    Site site;
};

/** One bag `channel<T>(topic)` site: an external publisher. */
struct ExternalSite
{
    std::string source; ///< e.g. "bag_replay"
    std::string topic;
    std::string type;
    Site site;
};

/** Everything the graph knows about one topic. */
struct TopicEntry
{
    std::vector<PubSite> pubs;
    std::vector<SubSite> subs;
    std::vector<ExternalSite> externals;
    double rateHz = 0.0; ///< inferred publication rate; 0 = unknown
};

/** The assembled static pub/sub graph. */
struct StaticGraph
{
    /** Node names with at least one pub or sub site, sorted. */
    std::vector<std::string> nodes;
    /** Topic name -> entry (map keeps reporting order canonical). */
    std::map<std::string, TopicEntry> topics;
    /** Inferred node service rates (Hz) for nodes on declared
     *  paths. */
    std::map<std::string, double> nodeRates;
    /** `<field>Period` values extracted from source, in seconds. */
    std::map<std::string, double> periodSeconds;
};

/**
 * The declared computation-path contract the graph is checked
 * against (defaults: the paper's Table IV, tableIvSpec()).
 */
struct PathSpec
{
    struct Path
    {
        std::string name;
        /** Alternating topic, node, topic, ..., topic — starts and
         *  ends on a topic. */
        std::vector<std::string> elements;
    };

    std::vector<Path> paths;
    /** Topics legal outside every path (debug outputs, secondary
     *  localization inputs). */
    std::vector<std::string> auxTopics;
    /** Sensor topic -> the `*Period` field naming its cadence. */
    std::map<std::string, std::string> sensorPeriods;
};

/** The paper's Table IV paths for this stack. */
PathSpec tableIvSpec();

/**
 * Extract the static graph from every .hh/.cc under @p root/src.
 * Files are visited in sorted path order; the result is independent
 * of filesystem traversal order.
 */
StaticGraph extractTree(const std::string &root);

/** Extract from in-memory sources (fixture tests). Each pair is
 *  (rel_path, content); processed in the order given after a
 *  whole-set symbol pass. */
StaticGraph
extractSources(const std::vector<std::pair<std::string, std::string>>
                   &sources);

/**
 * Infer topic/node rates: seed sensor topics from extracted periods
 * via @p spec.sensorPeriods, then propagate to a fixpoint along the
 * declared paths (node rate = min over path-predecessor topics;
 * topic rate = its publisher node's rate).
 */
void inferRates(StaticGraph &graph, const PathSpec &spec);

/**
 * Run the rule catalog. Diagnostics are sorted with
 * av::lint::sortDiagnostics — byte-stable output. Path and
 * queue-depth rules only apply where @p spec declares paths /
 * rates are known.
 */
std::vector<lint::Diagnostic> checkGraph(const StaticGraph &graph,
                                         const PathSpec &spec);

/** Machine-readable JSON (full detail, incl. file/line). */
std::string toJson(const StaticGraph &graph);

/** Graphviz DOT (sensors as diamonds, topics as boxes, nodes as
 *  ellipses; edges labeled with queue depths). */
std::string toDot(const StaticGraph &graph);

/**
 * Canonical form for the golden snapshot: sorted `node` /
 * `external` / `pub` / `sub` / `rate` lines with no file/line info,
 * so the golden only churns when the *topology* changes, not when
 * code moves within a file.
 */
std::string toCanonical(const StaticGraph &graph);

} // namespace av::graph

#endif // AVSCOPE_TOOLS_AVGRAPH_AVGRAPH_HH
