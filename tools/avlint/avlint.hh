/**
 * @file
 * avlint — AVScope's in-repo static checker.
 *
 * The simulator's claim to validity is bit-for-bit determinism: every
 * probe reads the virtual clock (sim/ticks.hh) and every stochastic
 * component draws from an explicitly seeded util::Rng. Nothing in the
 * compiler enforces that contract, so avlint does. It tokenizes each
 * translation unit (comments and string literals stripped) and runs a
 * set of repo-specific rules:
 *
 *   wall-clock        nondeterminism sources (system_clock, rand(),
 *                     random_device, getenv, ...) outside
 *                     src/util/random.*
 *   raw-time-arith    double time arithmetic with 1e9/1e-9 scale
 *                     factors outside src/sim/ticks.hh — time must go
 *                     through the Tick helpers
 *   include-guard     header guards must spell AVSCOPE_<PATH>_HH
 *   using-namespace-header
 *                     no `using namespace` in headers
 *   unordered-iter    iteration over unordered containers (ordering
 *                     feeds nondeterminism into reports and floating-
 *                     point accumulation)
 *   raw-new-delete    naked new/delete outside RAII wrappers
 *   print-in-library  printf/cout in src/ library code — use
 *                     util/logging instead
 *   mutable-global    namespace-scope mutable variables in src/ —
 *                     shared mutable state breaks the isolation
 *                     contract of the thread-parallel Runner
 *   unseeded-random   util::Rng or a std random engine constructed
 *                     in src/ without an explicit seed — every
 *                     stream must be seeded (or fork()ed) to keep
 *                     replays byte-identical
 *   mutable-loan      reading a message after loaning it to
 *                     publish(std::move(...)) — the v2 transport
 *                     owns the payload from that point (DESIGN.md
 *                     §12), and sibling arguments in the same call
 *                     race the move. The check is flow-sensitive
 *                     within the function body: every read between
 *                     the move and a re-seating assignment is
 *                     flagged, a reassignment inside a nested block
 *                     cleans only that block (the name is moved-from
 *                     again once the block closes), and tracking
 *                     ends when the scope containing the move ends
 *   swallowed-exception
 *                     catch (...) or catch (std::exception) in src/
 *                     that neither rethrows nor reports — a silently
 *                     absorbed exception turns a failed replay into
 *                     a plausible-looking measurement. Handlers that
 *                     rethrow, log through util/logging, or capture
 *                     std::current_exception pass; narrow typed
 *                     handlers are exempt (they encode a decision
 *                     about one specific failure)
 *
 * A diagnostic on line N is silenced by `// avlint: allow(<rule>)` on
 * the same line, or on a comment-only line directly above. A
 * file-level `// avlint: allow-file(<rule>)` silences the rule for the
 * whole file. `*` matches every rule.
 */

#ifndef AVSCOPE_TOOLS_AVLINT_AVLINT_HH
#define AVSCOPE_TOOLS_AVLINT_AVLINT_HH

#include <string>
#include <vector>

namespace av::lint {

/** One finding: file, 1-based line, stable rule id, human message. */
struct Diagnostic
{
    std::string file; ///< path as reported to the user
    int line = 0;     ///< 1-based source line
    std::string rule; ///< stable rule id, e.g. "wall-clock"
    std::string message;
};

/** Kind of a lexed token. */
enum class TokenKind {
    Identifier,
    Number,
    Punct,
    /** A string literal. For lint rules the content is blanked (so
     *  banned identifiers may appear in messages); avgraph's
     *  literal-preserving mode keeps the characters — topic names
     *  live in string literals. */
    String,
};

/** One token of the scrubbed source. */
struct Token
{
    std::string text;
    int line = 0;
    TokenKind kind = TokenKind::Punct;
};

/**
 * A source file prepared for linting: raw lines (for suppression
 * comments), scrubbed text (comments and literals blanked), and the
 * token stream.
 */
class SourceFile
{
  public:
    /**
     * Build from in-memory content.
     * @param rel_path repo-relative path; drives per-path rule
     *        exemptions and the expected include-guard name
     * @param keep_strings keep string-literal characters in the
     *        String tokens (avgraph needs topic names); lint rules
     *        use the default blanked form so banned identifiers may
     *        appear inside messages without firing
     */
    SourceFile(std::string rel_path, const std::string &content,
               bool keep_strings = false);

    const std::string &relPath() const { return relPath_; }
    const std::vector<std::string> &rawLines() const { return raw_; }
    const std::vector<Token> &tokens() const { return tokens_; }

    /** True for .hh files. */
    bool isHeader() const;

    /** True when @p rule is suppressed on @p line (1-based). */
    bool suppressed(const std::string &rule, int line) const;

  private:
    struct Suppression
    {
        int line;         ///< line the comment sits on
        bool wholeFile;   ///< allow-file(...) form
        bool nextLineOnly;///< comment-only line: applies to line+1
        std::vector<std::string> rules; ///< "*" matches all
    };

    std::string relPath_;
    std::vector<std::string> raw_;
    std::vector<Token> tokens_;
    std::vector<Suppression> suppressions_;

    void parseSuppressions();
    void tokenize(const std::string &scrubbed);
};

/** Names of all rules, in reporting order. */
std::vector<std::string> ruleNames();

/**
 * Run every rule over @p file. @p companion, when non-null, is the
 * sibling header of a .cc file; its declarations seed the
 * unordered-iter rule so members declared in the header are tracked.
 * Suppressions are already applied to the returned list.
 */
std::vector<Diagnostic> lintSource(const SourceFile &file,
                                   const SourceFile *companion);

/**
 * Load @p fs_path from disk and lint it as @p rel_path. Looks for a
 * sibling .hh next to a .cc automatically.
 */
std::vector<Diagnostic> lintFile(const std::string &fs_path,
                                 const std::string &rel_path);

/**
 * Lint the whole repo rooted at @p root: src/, bench/, examples/ and
 * tools/ (tests/ hosts intentionally-violating fixtures). Results
 * are sorted by (file, line, rule) — never filesystem traversal
 * order — so output is byte-stable across platforms and runs.
 */
std::vector<Diagnostic> lintTree(const std::string &root);

/**
 * Sort @p diags by (file, line, rule, message) in place — the one
 * reporting order every avlint/avgraph emitter uses.
 */
void sortDiagnostics(std::vector<Diagnostic> &diags);

} // namespace av::lint

#endif // AVSCOPE_TOOLS_AVLINT_AVLINT_HH
