/**
 * @file
 * File loading and repo-tree walking for avlint.
 */

#include "avlint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

namespace av::lint {

namespace fs = std::filesystem;

namespace {

std::optional<std::string>
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp";
}

/** The sibling header a .cc implements, when it exists. */
std::optional<fs::path>
companionHeader(const fs::path &path)
{
    const std::string ext = path.extension().string();
    if (ext != ".cc" && ext != ".cpp")
        return std::nullopt;
    fs::path header = path;
    header.replace_extension(".hh");
    if (fs::exists(header))
        return header;
    return std::nullopt;
}

} // namespace

std::vector<Diagnostic>
lintFile(const std::string &fs_path, const std::string &rel_path)
{
    const auto content = slurp(fs_path);
    if (!content)
        return {Diagnostic{rel_path, 0, "io-error",
                           "cannot read file"}};
    const SourceFile file(rel_path, *content);

    std::optional<SourceFile> companion;
    if (const auto header = companionHeader(fs_path)) {
        if (const auto htext = slurp(*header))
            companion.emplace(header->string(), *htext);
    }
    return lintSource(file, companion ? &*companion : nullptr);
}

std::vector<Diagnostic>
lintTree(const std::string &root)
{
    static const char *const subdirs[] = {"src", "bench", "examples",
                                          "tools"};
    std::vector<fs::path> files;
    for (const char *sub : subdirs) {
        const fs::path dir = fs::path(root) / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(dir))
            if (entry.is_regular_file() &&
                lintableExtension(entry.path()))
                files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    // A tree with nothing to lint means the root is wrong; a silent
    // "clean" here would let a misconfigured CI gate pass forever.
    if (files.empty())
        return {Diagnostic{root, 0, "io-error",
                           "no lintable files under root"}};

    std::vector<Diagnostic> out;
    for (const fs::path &path : files) {
        const std::string rel =
            fs::relative(path, root).generic_string();
        auto diags = lintFile(path.string(), rel);
        out.insert(out.end(),
                   std::make_move_iterator(diags.begin()),
                   std::make_move_iterator(diags.end()));
    }
    // Re-sort globally: per-file order is already (line, rule), but
    // the concatenation must not depend on traversal order either.
    sortDiagnostics(out);
    return out;
}

} // namespace av::lint
