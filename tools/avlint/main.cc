/**
 * @file
 * avlint CLI.
 *
 *   avlint --root <repo>          lint src/ bench/ examples/ tools/
 *   avlint --list-rules           print the rule catalog
 *   avlint <file> [rel-path]      lint one file (rel-path controls
 *                                 path-scoped rules; defaults to the
 *                                 file path itself)
 *
 * Exit status: 0 clean, 1 findings, 2 usage error.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "avlint.hh"

namespace {

int
report(const std::vector<av::lint::Diagnostic> &diags)
{
    for (const auto &d : diags)
        std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    if (diags.empty()) {
        std::printf("avlint: clean\n");
        return 0;
    }
    std::printf("avlint: %zu finding(s)\n", diags.size());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        std::fprintf(stderr,
                     "usage: avlint --root <repo> | --list-rules |"
                     " <file> [rel-path]\n");
        return 2;
    }
    if (args[0] == "--list-rules") {
        for (const std::string &name : av::lint::ruleNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (args[0] == "--root") {
        if (args.size() != 2) {
            std::fprintf(stderr, "avlint: --root needs a path\n");
            return 2;
        }
        return report(av::lint::lintTree(args[1]));
    }
    if (args[0].rfind("--", 0) == 0) {
        std::fprintf(stderr, "avlint: unknown option '%s'\n",
                     args[0].c_str());
        return 2;
    }
    const std::string rel = args.size() > 1 ? args[1] : args[0];
    return report(av::lint::lintFile(args[0], rel));
}
