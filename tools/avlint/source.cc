/**
 * @file
 * SourceFile: scrubbing, tokenization and suppression parsing.
 *
 * The scrubber blanks comments, string literals and char literals
 * (newlines preserved so token line numbers match the file), which is
 * what lets avlint mention banned identifiers in its own strings
 * without flagging itself.
 */

#include "avlint.hh"

#include <cctype>

namespace av::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Blank comments and literals; keep newlines and everything else.
 * With @p keep_strings, double-quoted literal characters survive
 * (escapes included, verbatim) so the tokenizer can carry topic
 * names; char literals and comments are always blanked.
 */
std::string
scrub(const std::string &in, bool keep_strings)
{
    std::string out;
    out.reserve(in.size());
    std::size_t i = 0;
    const std::size_t n = in.size();
    while (i < n) {
        const char c = in[i];
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
            while (i < n && in[i] != '\n')
                ++i;
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
            i += 2;
            while (i + 1 < n &&
                   !(in[i] == '*' && in[i + 1] == '/')) {
                if (in[i] == '\n')
                    out.push_back('\n');
                ++i;
            }
            i = i + 2 <= n ? i + 2 : n;
        } else if (c == '"' || c == '\'') {
            const char quote = c;
            const bool keep = keep_strings && quote == '"';
            out.push_back(quote);
            ++i;
            while (i < n && in[i] != quote) {
                if (in[i] == '\\' && i + 1 < n) {
                    if (keep)
                        out.push_back(in[i]);
                    ++i;
                }
                if (in[i] == '\n')
                    out.push_back('\n');
                else if (keep)
                    out.push_back(in[i]);
                ++i;
            }
            if (i < n) {
                out.push_back(quote);
                ++i;
            }
        } else {
            out.push_back(c);
            ++i;
        }
    }
    return out;
}

/** Split a comma-separated rule list, trimming blanks. */
std::vector<std::string>
splitRules(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : list) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

SourceFile::SourceFile(std::string rel_path,
                       const std::string &content, bool keep_strings)
    : relPath_(std::move(rel_path))
{
    std::string line;
    for (const char c : content) {
        if (c == '\n') {
            raw_.push_back(line);
            line.clear();
        } else {
            line.push_back(c);
        }
    }
    if (!line.empty())
        raw_.push_back(line);

    parseSuppressions();
    tokenize(scrub(content, keep_strings));
}

bool
SourceFile::isHeader() const
{
    const std::string suffix = ".hh";
    return relPath_.size() >= suffix.size() &&
           relPath_.compare(relPath_.size() - suffix.size(),
                            suffix.size(), suffix) == 0;
}

void
SourceFile::parseSuppressions()
{
    const std::string marker = "avlint:";
    for (std::size_t li = 0; li < raw_.size(); ++li) {
        const std::string &text = raw_[li];
        const std::size_t comment = text.find("//");
        if (comment == std::string::npos)
            continue;
        std::size_t at = text.find(marker, comment);
        if (at == std::string::npos)
            continue;
        at += marker.size();
        while (at < text.size() &&
               std::isspace(static_cast<unsigned char>(text[at])))
            ++at;

        const std::string allowFile = "allow-file(";
        const std::string allow = "allow(";
        bool whole_file = false;
        if (text.compare(at, allowFile.size(), allowFile) == 0) {
            whole_file = true;
            at += allowFile.size();
        } else if (text.compare(at, allow.size(), allow) == 0) {
            at += allow.size();
        } else {
            continue;
        }
        const std::size_t close = text.find(')', at);
        if (close == std::string::npos)
            continue;

        Suppression s;
        s.line = static_cast<int>(li) + 1;
        s.wholeFile = whole_file;
        s.rules = splitRules(text.substr(at, close - at));
        // A comment on its own line guards the line below it.
        std::size_t code_end = comment;
        while (code_end > 0 &&
               std::isspace(static_cast<unsigned char>(
                   text[code_end - 1])))
            --code_end;
        s.nextLineOnly = code_end == 0;
        suppressions_.push_back(s);
    }
}

bool
SourceFile::suppressed(const std::string &rule, int line) const
{
    for (const Suppression &s : suppressions_) {
        bool in_scope = s.wholeFile;
        if (!in_scope)
            in_scope = s.nextLineOnly ? line == s.line + 1
                                      : line == s.line;
        if (!in_scope)
            continue;
        for (const std::string &r : s.rules)
            if (r == "*" || r == rule)
                return true;
    }
    return false;
}

void
SourceFile::tokenize(const std::string &scrubbed)
{
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = scrubbed.size();
    while (i < n) {
        const char c = scrubbed[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
        } else if (c == '"') {
            // String literal (content blanked unless the file was
            // built with keep_strings). One token, quotes stripped;
            // escape pairs pass through verbatim.
            const int start_line = line;
            std::string text;
            ++i;
            while (i < n && scrubbed[i] != '"') {
                if (scrubbed[i] == '\\' && i + 1 < n) {
                    text.push_back(scrubbed[i]);
                    ++i;
                }
                if (scrubbed[i] == '\n')
                    ++line;
                text.push_back(scrubbed[i]);
                ++i;
            }
            if (i < n)
                ++i; // closing quote
            tokens_.push_back(
                Token{std::move(text), start_line, TokenKind::String});
        } else if (isIdentStart(c)) {
            std::size_t start = i;
            while (i < n && isIdentChar(scrubbed[i]))
                ++i;
            tokens_.push_back(Token{
                scrubbed.substr(start, i - start), line,
                TokenKind::Identifier});
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '.' && i + 1 < n &&
                    std::isdigit(static_cast<unsigned char>(
                        scrubbed[i + 1])))) {
            // pp-number: digits, idents, ' separators, and signed
            // exponents after e/E/p/P.
            std::size_t start = i;
            while (i < n) {
                const char d = scrubbed[i];
                if (isIdentChar(d) || d == '.' || d == '\'') {
                    ++i;
                } else if ((d == '+' || d == '-') && i > start) {
                    const char prev = scrubbed[i - 1];
                    if (prev == 'e' || prev == 'E' || prev == 'p' ||
                        prev == 'P')
                        ++i;
                    else
                        break;
                } else {
                    break;
                }
            }
            tokens_.push_back(Token{
                scrubbed.substr(start, i - start), line,
                TokenKind::Number});
        } else {
            tokens_.push_back(Token{
                std::string(1, c), line, TokenKind::Punct});
            ++i;
        }
    }
}

} // namespace av::lint
