/**
 * @file
 * The avlint rule set. Each rule is a small matcher over the token
 * stream of one SourceFile; see avlint.hh for the catalog and the
 * rationale per rule.
 */

#include "avlint.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>

namespace av::lint {

namespace {

using Diags = std::vector<Diagnostic>;

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.compare(0, prefix.size(), prefix) == 0;
}

void
emit(Diags &out, const SourceFile &f, int line,
     const std::string &rule, const std::string &message)
{
    out.push_back(Diagnostic{f.relPath(), line, rule, message});
}

// ---------------------------------------------------------------
// wall-clock: nondeterminism sources outside src/util/random.*.
// One stray wall-clock read or unseeded RNG breaks bit-for-bit
// reproduction of Fig. 5-8 / Tables III-VII.
// ---------------------------------------------------------------

void
ruleWallClock(const SourceFile &f, Diags &out)
{
    if (startsWith(f.relPath(), "src/util/random."))
        return;

    static const std::set<std::string> banned = {
        "system_clock",     "steady_clock",
        "high_resolution_clock", "clock_gettime",
        "gettimeofday",     "random_device",
        "default_random_engine", "drand48",
        "srand48",
    };
    // These also need a call paren: plain words are too common.
    static const std::set<std::string> bannedCalls = {
        "rand", "srand", "getenv",
    };

    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier)
            continue;
        const bool call = bannedCalls.count(t.text) &&
                          i + 1 < toks.size() &&
                          toks[i + 1].text == "(";
        if (banned.count(t.text) || call)
            emit(out, f, t.line, "wall-clock",
                 "'" + t.text + "' is a nondeterminism source; draw"
                 " from util::Rng / the virtual clock instead");
    }
}

// ---------------------------------------------------------------
// raw-time-arith: scaling time by 1e9/1e-9 by hand instead of
// going through the sim/ticks.hh helpers.
// ---------------------------------------------------------------

bool
isTimeScale(const std::string &text)
{
    const char *s = text.c_str();
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s)
        return false;
    return v == 1e9 || v == 1e-9;
}

bool
isTimeIdent(const std::string &ident)
{
    const std::string id = lower(ident);
    static const std::set<std::string> exact = {"dt", "now", "t"};
    if (exact.count(id))
        return true;
    static const char *const stems[] = {
        "tick", "stamp", "time",  "enqueued", "elapsed",
        "started", "lastupdate", "deadline", "period", "latency",
    };
    for (const char *stem : stems)
        if (id.find(stem) != std::string::npos)
            return true;
    return false;
}

void
ruleRawTimeArith(const SourceFile &f, Diags &out)
{
    if (f.relPath() == "src/sim/ticks.hh")
        return;

    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Number || !isTimeScale(t.text))
            continue;
        const bool mul_div =
            (i > 0 && (toks[i - 1].text == "*" ||
                       toks[i - 1].text == "/")) ||
            (i + 1 < toks.size() && (toks[i + 1].text == "*" ||
                                     toks[i + 1].text == "/"));
        if (!mul_div)
            continue;
        // Only fire when a time-ish identifier shares the
        // statement's line; bare 1e9 sentinels stay legal.
        bool time_context = false;
        for (const Token &o : toks) {
            if (o.line < t.line - 1)
                continue;
            if (o.line > t.line)
                break;
            if (o.kind == TokenKind::Identifier &&
                isTimeIdent(o.text)) {
                time_context = true;
                break;
            }
        }
        if (time_context)
            emit(out, f, t.line, "raw-time-arith",
                 "scaling time by " + t.text + " by hand; use the"
                 " sim/ticks.hh Tick helpers");
    }
}

// ---------------------------------------------------------------
// include-guard: headers carry AVSCOPE_<PATH>_HH guards.
// ---------------------------------------------------------------

std::string
expectedGuard(const std::string &rel_path)
{
    std::string path = rel_path;
    if (startsWith(path, "src/"))
        path = path.substr(4);
    const std::size_t dot = path.rfind('.');
    if (dot != std::string::npos)
        path = path.substr(0, dot);
    std::string guard = "AVSCOPE_";
    for (const char c : path) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard.push_back(static_cast<char>(
                std::toupper(static_cast<unsigned char>(c))));
        else
            guard.push_back('_');
    }
    guard += "_HH";
    return guard;
}

void
ruleIncludeGuard(const SourceFile &f, Diags &out)
{
    if (!f.isHeader())
        return;
    const std::string want = expectedGuard(f.relPath());
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].text != "#" || toks[i + 1].text != "ifndef")
            continue;
        const Token &name = toks[i + 2];
        if (name.text != want) {
            emit(out, f, name.line, "include-guard",
                 "guard '" + name.text + "' should be '" + want +
                     "'");
            return;
        }
        // #define must follow with the same name.
        if (i + 5 < toks.size() && toks[i + 3].text == "#" &&
            toks[i + 4].text == "define" &&
            toks[i + 5].text == want)
            return;
        emit(out, f, name.line, "include-guard",
             "#ifndef " + want + " not followed by a matching"
             " #define");
        return;
    }
    emit(out, f, 1, "include-guard",
         "missing include guard (expected " + want + ")");
}

// ---------------------------------------------------------------
// using-namespace-header: headers must not dump namespaces into
// every includer.
// ---------------------------------------------------------------

void
ruleUsingNamespaceHeader(const SourceFile &f, Diags &out)
{
    if (!f.isHeader())
        return;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i)
        if (toks[i].text == "using" &&
            toks[i + 1].text == "namespace")
            emit(out, f, toks[i].line, "using-namespace-header",
                 "'using namespace' in a header leaks into every"
                 " includer");
}

// ---------------------------------------------------------------
// unordered-iter: iterating an unordered container. Hash-order
// iteration feeds nondeterministic ordering (and FP accumulation
// order) into whatever consumes it; iterate a sorted copy or
// suppress with a written justification.
// ---------------------------------------------------------------

std::set<std::string>
unorderedDecls(const SourceFile &f)
{
    std::set<std::string> names;
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            !startsWith(toks[i].text, "unordered_"))
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">" && --depth == 0)
                break;
        }
        if (j + 1 >= toks.size())
            continue;
        const Token &name = toks[j + 1];
        if (name.kind != TokenKind::Identifier)
            continue;
        // `unordered_map<...> f()` declares a function, not a var.
        if (j + 2 < toks.size() && toks[j + 2].text == "(")
            continue;
        names.insert(name.text);
    }
    return names;
}

void
ruleUnorderedIter(const SourceFile &f, const SourceFile *companion,
                  Diags &out)
{
    std::set<std::string> names = unorderedDecls(f);
    if (companion)
        names.merge(unorderedDecls(*companion));
    if (names.empty())
        return;

    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        // Range-for over a tracked container.
        if (toks[i].text == "for" && i + 1 < toks.size() &&
            toks[i + 1].text == "(") {
            int depth = 0;
            bool after_colon = false;
            for (std::size_t j = i + 1; j < toks.size(); ++j) {
                if (toks[j].text == "(") {
                    ++depth;
                } else if (toks[j].text == ")") {
                    if (--depth == 0)
                        break;
                } else if (depth == 1 && toks[j].text == ":" &&
                           toks[j - 1].text != ":" &&
                           (j + 1 >= toks.size() ||
                            toks[j + 1].text != ":")) {
                    after_colon = true;
                } else if (after_colon &&
                           toks[j].kind ==
                               TokenKind::Identifier &&
                           names.count(toks[j].text)) {
                    emit(out, f, toks[i].line, "unordered-iter",
                         "iterating unordered container '" +
                             toks[j].text +
                             "' — hash order is not part of the"
                             " determinism contract");
                    break;
                }
            }
        }
        // Explicit name.begin() / name.cbegin().
        if (toks[i].kind == TokenKind::Identifier &&
            names.count(toks[i].text) && i + 2 < toks.size() &&
            toks[i + 1].text == "." &&
            (toks[i + 2].text == "begin" ||
             toks[i + 2].text == "cbegin"))
            emit(out, f, toks[i].line, "unordered-iter",
                 "iterating unordered container '" + toks[i].text +
                     "' — hash order is not part of the"
                     " determinism contract");
    }
}

// ---------------------------------------------------------------
// raw-new-delete: naked new/delete outside RAII wrappers.
// ---------------------------------------------------------------

void
ruleRawNewDelete(const SourceFile &f, Diags &out)
{
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier)
            continue;
        if (t.text == "new") {
            emit(out, f, t.line, "raw-new-delete",
                 "naked 'new'; own the allocation with"
                 " unique_ptr/shared_ptr");
        } else if (t.text == "delete") {
            // `= delete;` declares a deleted function.
            const bool deleted_fn =
                i > 0 && toks[i - 1].text == "=" &&
                i + 1 < toks.size() &&
                (toks[i + 1].text == ";" || toks[i + 1].text == ",");
            if (!deleted_fn)
                emit(out, f, t.line, "raw-new-delete",
                     "naked 'delete'; let a smart pointer release"
                     " the allocation");
        }
    }
}

// ---------------------------------------------------------------
// print-in-library: src/ code reports through util/logging, never
// straight to stdio (benches/examples/tools may print freely).
// ---------------------------------------------------------------

void
rulePrintInLibrary(const SourceFile &f, Diags &out)
{
    if (!startsWith(f.relPath(), "src/") ||
        startsWith(f.relPath(), "src/util/logging."))
        return;

    static const std::set<std::string> banned = {
        "printf", "fprintf", "sprintf", "vprintf", "puts",
        "putchar", "cout", "cerr",
    };
    for (const Token &t : f.tokens())
        if (t.kind == TokenKind::Identifier && banned.count(t.text))
            emit(out, f, t.line, "print-in-library",
                 "'" + t.text + "' in library code; report through"
                 " util/logging");
}

// ---------------------------------------------------------------
// mutable-global: namespace-scope mutable variables in src/.
// Shared mutable state is what lets one experiment's replay observe
// another's — the failure mode the thread-parallel Runner must
// exclude. All run state must live in per-run objects; the rare
// justified global (the process logger) carries a written
// suppression.
// ---------------------------------------------------------------

/** Index just past the brace block opening at @p open. */
std::size_t
skipBraces(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == "{")
            ++depth;
        else if (toks[j].text == "}" && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** Index just past the paren group opening at @p open. */
std::size_t
skipParens(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
        if (toks[j].text == "(")
            ++depth;
        else if (toks[j].text == ")" && --depth == 0)
            return j + 1;
    }
    return toks.size();
}

/** Index just past an initializer: everything up to the ';'. */
std::size_t
skipInitializer(const std::vector<Token> &toks, std::size_t j)
{
    while (j < toks.size()) {
        if (toks[j].text == ";")
            return j + 1;
        if (toks[j].text == "{")
            j = skipBraces(toks, j);
        else if (toks[j].text == "(")
            j = skipParens(toks, j);
        else
            ++j;
    }
    return j;
}

void
ruleMutableGlobal(const SourceFile &f, Diags &out)
{
    // Library code only: benches/examples/tools own their process
    // and may keep main()-adjacent state.
    if (!startsWith(f.relPath(), "src/"))
        return;

    // Statement openers that can never declare a mutable variable.
    static const std::set<std::string> skipStmt = {
        "using",  "typedef", "template",      "class",
        "struct", "enum",    "union",         "extern",
        "friend", "static_assert",
    };

    const auto &toks = f.tokens();
    std::size_t i = 0;
    while (i < toks.size()) {
        const Token &t = toks[i];
        if (t.text == "#") {
            // Preprocessor directive: consume the rest of its line.
            const int line = t.line;
            while (i < toks.size() && toks[i].line == line)
                ++i;
            continue;
        }
        if (t.text == "namespace") {
            // Enter the namespace: its body stays namespace scope.
            while (i < toks.size() && toks[i].text != "{" &&
                   toks[i].text != ";")
                ++i;
            if (i < toks.size())
                ++i;
            continue;
        }
        if (t.text == "}" || t.text == ";") {
            ++i; // namespace close / stray semicolon
            continue;
        }
        if (skipStmt.count(t.text)) {
            // Type definition or alias: skip its body and the
            // trailing semicolon.
            std::size_t j = i;
            while (j < toks.size() && toks[j].text != ";" &&
                   toks[j].text != "{")
                ++j;
            if (j < toks.size() && toks[j].text == "{") {
                j = skipBraces(toks, j);
                if (j < toks.size() && toks[j].text == ";")
                    ++j;
            } else if (j < toks.size()) {
                ++j;
            }
            i = j;
            continue;
        }

        // Candidate declaration: scan its declarator part.
        const int stmtLine = t.line;
        bool isConst = false, isFunction = false, ended = false;
        std::string name;
        std::size_t idents = 0;
        std::size_t j = i;
        while (j < toks.size() && !ended) {
            const std::string &w = toks[j].text;
            if (w == ";") {
                ++j;
                ended = true;
            } else if (w == "(") {
                isFunction = true;
                j = skipParens(toks, j);
            } else if (w == "=" && !isFunction) {
                j = skipInitializer(toks, j);
                ended = true;
            } else if (w == "{") {
                const std::size_t after = skipBraces(toks, j);
                if (after < toks.size() &&
                    toks[after].text == ";") {
                    j = after + 1; // brace initializer
                } else {
                    isFunction = true; // function/lambda body
                    j = after;
                }
                ended = true;
            } else {
                if (w == "const" || w == "constexpr" ||
                    w == "constinit")
                    isConst = true;
                // Punct tokens are single chars, so `operator==`
                // lexes as `operator` `=` `=`; classify before the
                // `=` branch can mistake it for an initializer.
                if (w == "operator")
                    isFunction = true;
                if (toks[j].kind == TokenKind::Identifier) {
                    name = w;
                    ++idents;
                }
                ++j;
            }
        }
        if (!isFunction && !isConst && idents >= 2)
            emit(out, f, stmtLine, "mutable-global",
                 "namespace-scope mutable variable '" + name +
                     "'; per-run state must live in run objects"
                     " (suppress with a written justification if"
                     " truly process-wide)");
        i = j;
    }
}

// ---------------------------------------------------------------
// unseeded-random: util::Rng or a std engine constructed in src/
// without an explicit seed. A default-constructed generator is a
// replay hazard: the stream it yields is decided by whatever the
// default happens to be, not by the experiment's configuration.
// Member declarations (trailing '_') are exempt — they are seeded
// in their constructor's init list.
// ---------------------------------------------------------------

void
ruleUnseededRandom(const SourceFile &f, Diags &out)
{
    if (!startsWith(f.relPath(), "src/") ||
        startsWith(f.relPath(), "src/util/random."))
        return;

    static const std::set<std::string> engines = {
        "Rng",          "mt19937",      "mt19937_64",
        "minstd_rand",  "minstd_rand0", "ranlux24",
        "ranlux48",     "knuth_b",
    };

    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokenKind::Identifier || !engines.count(t.text))
            continue;
        // Not the type's own definition / member access.
        if (i > 0 && (toks[i - 1].text == "class" ||
                      toks[i - 1].text == "struct" ||
                      toks[i - 1].text == "."))
            continue;
        if (i + 1 >= toks.size())
            continue;
        const Token &next = toks[i + 1];

        const auto flag = [&](int line) {
            emit(out, f, line, "unseeded-random",
                 "'" + t.text + "' constructed without an explicit"
                 " seed; pass one (or fork() an existing stream) so"
                 " replays stay byte-identical");
        };

        // Temporary: `Rng()` / `Rng{}` with an empty argument list.
        if (next.text == "(" || next.text == "{") {
            const std::size_t close =
                next.text == "(" ? skipParens(toks, i + 1)
                                 : skipBraces(toks, i + 1);
            if (close == i + 3)
                flag(t.line);
            continue;
        }
        if (next.kind != TokenKind::Identifier)
            continue; // reference, template argument, pointer, ...

        // `Rng name ...`: a variable declaration. Members (trailing
        // '_') are seeded in a ctor init list; `= expr` carries its
        // own construction; `(...)` is either a seeded ctor or a
        // function declaration — neither is a bare default.
        if (!next.text.empty() && next.text.back() == '_')
            continue;
        if (i + 2 >= toks.size())
            continue;
        const Token &after = toks[i + 2];
        if (after.text == ";") {
            flag(t.line);
        } else if (after.text == "{") {
            if (skipBraces(toks, i + 2) == i + 4)
                flag(t.line);
        }
    }
}

// ---------------------------------------------------------------
// mutable-loan: reading a message after handing it to
// publish(std::move(...)). Under the loaned transport (DESIGN.md
// §12) publish takes ownership of the payload, so the moved-from
// object is hollow — and a sibling argument such as
// `out->byteSize()` evaluated in the same call races the move
// (argument evaluation order is unspecified). The check is
// flow-sensitive within the function body: every read between the
// move and a re-seating assignment is flagged; a reassignment at
// the move's own depth ends tracking, one inside a nested block
// cleans only that block (the moved-from object is visible again
// once the block closes), and tracking stops when the scope
// containing the move ends.
// ---------------------------------------------------------------

void
ruleMutableLoan(const SourceFile &f, Diags &out)
{
    const auto &toks = f.tokens();
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            toks[i].text != "publish" || i + 1 >= toks.size() ||
            toks[i + 1].text != "(")
            continue;
        const std::size_t callEnd = skipParens(toks, i + 1);

        // Find `std::move(<*>name)` inside the argument list. Only a
        // plain (possibly dereferenced) name is trackable; moves of
        // member expressions are left to the sanitizers.
        std::string name;
        std::size_t moveEnd = 0;
        for (std::size_t j = i + 2; j + 4 < callEnd; ++j) {
            if (toks[j].text != "std" || toks[j + 1].text != ":" ||
                toks[j + 2].text != ":" ||
                toks[j + 3].text != "move" ||
                toks[j + 4].text != "(")
                continue;
            std::size_t k = j + 5;
            if (k < callEnd && toks[k].text == "*")
                ++k;
            if (k + 1 < callEnd &&
                toks[k].kind == TokenKind::Identifier &&
                toks[k + 1].text == ")") {
                name = toks[k].text;
                moveEnd = k + 2;
            }
            break;
        }
        if (name.empty())
            continue;

        // Flow-sensitive walk from the move: depth is relative to
        // the move site; clean_depth, when >= 0, is the nested block
        // depth whose reassignment currently shields reads.
        int depth = 0;
        int clean_depth = -1;
        for (std::size_t j = moveEnd; j < toks.size(); ++j) {
            const std::string &w = toks[j].text;
            if (w == "{") {
                ++depth;
            } else if (w == "}") {
                --depth;
                if (depth < 0)
                    break; // the move's own scope ended
                if (clean_depth >= 0 && depth < clean_depth)
                    clean_depth = -1; // nested re-seat went away
            } else if (toks[j].kind == TokenKind::Identifier &&
                       w == name) {
                if (clean_depth >= 0)
                    continue; // reads the re-seated value
                // `name = ...` re-seats the handle and is legal.
                const bool reassign =
                    j + 1 < toks.size() &&
                    toks[j + 1].text == "=" &&
                    (j + 2 >= toks.size() ||
                     toks[j + 2].text != "=");
                if (reassign) {
                    if (depth == 0)
                        break; // clean for the rest of the scope
                    clean_depth = depth;
                } else {
                    emit(out, f, toks[j].line, "mutable-loan",
                         "'" + name + "' read after being loaned to"
                         " publish(std::move(...)); the transport"
                         " owns the payload now — hoist the read"
                         " (e.g. byteSize()) above the publish");
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// swallowed-exception: a broad catch block in src/ that neither
// rethrows nor reports. A silently absorbed exception turns a
// failed replay into a plausible-looking measurement — worse than
// a crash for a characterization tool. Narrow typed handlers are
// fine (they encode a decision about one failure); catch (...) and
// catch (std::exception) must rethrow, log through util/logging,
// or capture std::current_exception for a later waiter.
// ---------------------------------------------------------------

void
ruleSwallowedException(const SourceFile &f, Diags &out)
{
    // Library code only, like print-in-library: benches, examples
    // and tools own their process and may reasonably absorb a
    // failure at the top level after printing usage.
    if (!startsWith(f.relPath(), "src/"))
        return;

    // Any of these inside the handler body counts as handling:
    // rethrow, structured capture, or a report through the logger.
    static const std::set<std::string> handles = {
        "throw",    "rethrow_exception",
        "current_exception", "inform",
        "warn",     "debug",
        "fatal",    "AV_ASSERT",
    };

    const auto &toks = f.tokens();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::Identifier ||
            toks[i].text != "catch" || toks[i + 1].text != "(")
            continue;
        const std::size_t parenEnd = skipParens(toks, i + 1);
        // Broad handler: "..." (three '.' Punct tokens) or any
        // declaration naming `exception` (std::exception and
        // aliases). Narrow typed handlers pass.
        bool broad = false;
        for (std::size_t j = i + 2; j + 1 < parenEnd; ++j) {
            if (toks[j].text == "." ||
                (toks[j].kind == TokenKind::Identifier &&
                 toks[j].text == "exception")) {
                broad = true;
                break;
            }
        }
        if (!broad || parenEnd >= toks.size() ||
            toks[parenEnd].text != "{")
            continue;
        const std::size_t bodyEnd = skipBraces(toks, parenEnd);
        bool handled = false;
        for (std::size_t j = parenEnd + 1; j + 1 < bodyEnd; ++j) {
            if (toks[j].kind == TokenKind::Identifier &&
                handles.count(toks[j].text)) {
                handled = true;
                break;
            }
        }
        if (!handled)
            emit(out, f, toks[i].line, "swallowed-exception",
                 "broad catch neither rethrows nor reports;"
                 " rethrow, log through util/logging, or capture"
                 " std::current_exception");
    }
}

} // namespace

std::vector<std::string>
ruleNames()
{
    return {
        "wall-clock",        "raw-time-arith",
        "include-guard",     "using-namespace-header",
        "unordered-iter",    "raw-new-delete",
        "print-in-library",  "mutable-global",
        "unseeded-random",   "mutable-loan",
        "swallowed-exception",
    };
}

std::vector<Diagnostic>
lintSource(const SourceFile &file, const SourceFile *companion)
{
    Diags all;
    ruleWallClock(file, all);
    ruleRawTimeArith(file, all);
    ruleIncludeGuard(file, all);
    ruleUsingNamespaceHeader(file, all);
    ruleUnorderedIter(file, companion, all);
    ruleRawNewDelete(file, all);
    rulePrintInLibrary(file, all);
    ruleMutableGlobal(file, all);
    ruleUnseededRandom(file, all);
    ruleMutableLoan(file, all);
    ruleSwallowedException(file, all);

    Diags kept;
    for (Diagnostic &d : all)
        if (!file.suppressed(d.rule, d.line))
            kept.push_back(std::move(d));
    sortDiagnostics(kept);
    return kept;
}

void
sortDiagnostics(std::vector<Diagnostic> &diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

} // namespace av::lint
