/**
 * @file
 * Pipeline ablations: sensitivity of the drop/latency behaviour to
 * sensor rates and middleware transport — the mechanisms behind the
 * paper's Table III and the communication costs its methodology
 * insists on including (§III-B). Sweeps:
 *
 *  - camera frame rate (the SSD512 drop cliff),
 *  - transport bandwidth (serialize/copy costs: "memory transfers
 *    to communicate data ... have a high impact on latency").
 *
 * The camera sweep changes the *drive* (the sensor stream itself),
 * which the spec expresses through its RecorderConfig; the Runner's
 * drive memo records each distinct drive once and the default drive
 * is shared with the transport sweep.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    std::vector<exp::ExperimentSpec> sweep;

    // Camera-rate sweep: re-record the drive at each rate (the
    // sensor stream itself changes).
    for (const long period_ms : {100, 66, 50}) {
        world::RecorderConfig recorder;
        recorder.cameraPeriod =
            static_cast<sim::Tick>(period_ms) * sim::oneMs;
        sweep.push_back(
            env.spec(perception::DetectorKind::Ssd512)
                .recording(recorder)
                .named("camera @ " +
                       std::to_string(1000 / period_ms) + " Hz"));
    }

    // Transport-bandwidth sweep on the standard drive: the
    // serialize/copy cost of every message.
    for (const double gbps : {0.5, 2.0, 8.0}) {
        exp::ExperimentSpec s =
            env.spec(perception::DetectorKind::Ssd512)
                .named("transport " + util::Table::num(gbps, 1) +
                       " GB/s");
        s.config.transport.bandwidthGBs = gbps;
        sweep.push_back(s);
    }

    std::vector<std::size_t> jobs;
    jobs.reserve(sweep.size());
    for (const exp::ExperimentSpec &s : sweep)
        jobs.push_back(env.runner().submit(s));

    util::Table table("Pipeline ablation (SSD512)",
                      {"configuration", "vision mean (ms)",
                       "image drops", "worst path mean",
                       "worst path p99"});
    for (const std::size_t job : jobs) {
        const prof::RunResult &run = env.runner().result(job);
        const util::SampleSeries *vision =
            run.findNodeSeries("vision_detection");
        AV_ASSERT(vision != nullptr, "vision node missing");
        double image_drops = 0.0;
        for (const auto &d : run.drops)
            if (d.topic == "/image_raw")
                image_drops = d.dropRate();
        table.addRow({run.label,
                      util::Table::num(vision->running().mean()),
                      util::Table::pct(image_drops),
                      util::Table::num(run.worstCaseMean()),
                      util::Table::num(run.worstCaseP99())});
    }

    env.print(table);
    std::cout
        << "Expected shape: faster cameras do not help — SSD512's"
           " service time dominates, so drops rise with frame rate"
           " while end-to-end latency stays pinned by the pipeline"
           " structure (Table III's mechanism).\n";
    return 0;
}
