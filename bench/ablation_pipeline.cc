/**
 * @file
 * Pipeline ablations: sensitivity of the drop/latency behaviour to
 * sensor rates and middleware transport — the mechanisms behind the
 * paper's Table III and the communication costs its methodology
 * insists on including (§III-B). Sweeps:
 *
 *  - camera frame rate (the SSD512 drop cliff),
 *  - LiDAR rate (the whole LiDAR pipeline's load),
 *  - transport bandwidth (serialize/copy costs: "memory transfers
 *    to communicate data ... have a high impact on latency").
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace av;

namespace {

struct Row
{
    std::string label;
    double visionMean = 0.0;
    double imageDrops = 0.0;
    double worstMean = 0.0;
    double worstP99 = 0.0;
};

Row
runOnce(const bench::BenchEnv &env, const std::string &label,
        std::shared_ptr<const prof::DriveData> drive,
        const prof::RunConfig &cfg)
{
    (void)env;
    prof::CharacterizationRun run(drive, cfg);
    run.execute();
    Row row;
    row.label = label;
    row.visionMean =
        run.nodeLatencySeries("vision_detection").running().mean();
    for (const auto &d : run.drops())
        if (d.topic == "/image_raw")
            row.imageDrops = d.dropRate();
    row.worstMean = run.paths().worstCaseMean();
    row.worstP99 = run.paths().worstCaseP99();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table table("Pipeline ablation (SSD512)",
                      {"configuration", "vision mean (ms)",
                       "image drops", "worst path mean",
                       "worst path p99"});
    const auto add = [&](const Row &row) {
        table.addRow({row.label, util::Table::num(row.visionMean),
                      util::Table::pct(row.imageDrops),
                      util::Table::num(row.worstMean),
                      util::Table::num(row.worstP99)});
    };

    // Camera-rate sweep: re-record the drive at each rate (the
    // sensor stream itself changes).
    for (const long period_ms : {100, 66, 50}) {
        world::ScenarioConfig scenario;
        scenario.seed = static_cast<std::uint64_t>(
            env.flags().getInt("seed", 2020));
        world::RecorderConfig recorder;
        recorder.cameraPeriod =
            static_cast<sim::Tick>(period_ms) * sim::oneMs;
        auto drive = prof::makeDrive(scenario, env.duration(),
                                     recorder);
        prof::RunConfig cfg =
            env.runConfig(perception::DetectorKind::Ssd512);
        util::inform("camera period ", period_ms, " ms ...");
        add(runOnce(env, "camera @ " +
                             std::to_string(1000 / period_ms) +
                             " Hz",
                    drive, cfg));
    }

    // Transport-bandwidth sweep on the standard drive: the
    // serialize/copy cost of every message.
    for (const double gbps : {0.5, 2.0, 8.0}) {
        prof::RunConfig cfg =
            env.runConfig(perception::DetectorKind::Ssd512);
        cfg.transport.bandwidthGBs = gbps;
        util::inform("transport ", gbps, " GB/s ...");
        add(runOnce(env,
                    "transport " + util::Table::num(gbps, 1) +
                        " GB/s",
                    env.drive(), cfg));
    }

    env.print(table);
    std::cout
        << "Expected shape: faster cameras do not help — SSD512's"
           " service time dominates, so drops rise with frame rate"
           " while end-to-end latency stays pinned by the pipeline"
           " structure (Table III's mechanism).\n";
    return 0;
}
