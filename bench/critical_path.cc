/**
 * @file
 * Critical-path / bottleneck report over the traced execution DAG,
 * plus the guarded closed-loop queue-depth optimizer demo.
 *
 * Part 1 — per detector: replay the fixed-seed drive with tracing
 * on, print the worst frame's critical path (source sensor → sink
 * topic, per-step queue wait vs compute) and every node's slack row
 * with its rule-based bottleneck class. This is the dynamic
 * counterpart of the paper's Table IV: instead of naming the four
 * computation paths statically, the trace shows which one actually
 * bounded the drive and where its time went.
 *
 * Part 2 — the closed loop: starting from a deliberately misconfigured
 * incumbent (/image_raw queued 4 deep at vision_detection, so the
 * detector chews through stale frames), the GuardedOptimizer proposes
 * one queue-depth change at a time and re-measures through the cached
 * Runner. Shrinking the queue to 1 must measurably improve the worst
 * path (accepted); growing it to 8 must regress (rolled back). Both
 * outcomes are asserted — the guard is the deliverable, not the tune.
 *
 * Writes BENCH_critical_path.json next to the other bench artifacts.
 */

#include <fstream>
#include <iostream>

#include "common.hh"
#include "exp/optimizer.hh"
#include "util/logging.hh"

using namespace av;

namespace {

/** Queue depth the optimizer demo starts from (deliberately bad). */
constexpr std::size_t kMisconfiguredDepth = 4;
/** The proposal that must be accepted. */
constexpr std::size_t kImprovedDepth = 1;
/** The seeded regression that must be rolled back. */
constexpr std::size_t kRegressedDepth = 8;

void
printCriticalPath(bench::BenchEnv &env, const prof::RunResult &run)
{
    const trace::Summary &s = run.trace;
    AV_ASSERT(s.enabled, "run '", run.label, "' was not traced");

    util::Table path(
        "Critical path — worst frame into " + s.terminalTopic + " (" +
            run.label + ", " + util::Table::num(s.criticalPathMs) +
            " ms end-to-end)",
        {"node", "trigger topic", "seq", "queue wait (ms)",
         "compute (ms)"});
    for (const trace::PathStep &step : s.criticalPath)
        path.addRow({step.node, step.topic,
                     std::to_string(step.seq),
                     util::Table::num(step.queueWaitMs),
                     util::Table::num(step.computeMs)});
    env.print(path);

    util::Table slack(
        "Per-node slack and bottleneck class (" + run.label + ")",
        {"node", "acts", "wait (ms)", "span (ms)", "cpu (ms)",
         "gpu (ms)", "stall (ms)", "bottleneck"});
    for (const trace::NodeSlack &row : s.nodes)
        slack.addRow({row.node, std::to_string(row.activations),
                      util::Table::num(row.meanQueueWaitMs),
                      util::Table::num(row.meanSpanMs),
                      util::Table::num(row.meanCpuMs),
                      util::Table::num(row.meanGpuMs),
                      util::Table::num(row.meanStallMs),
                      row.bottleneck});
    env.print(slack);
}

void
writeJson(std::ostream &os,
          const std::vector<const prof::RunResult *> &runs,
          const exp::GuardedOptimizer &optimizer, double final_ms)
{
    os << "{\n  \"bench\": \"critical_path\",\n  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const prof::RunResult &run = *runs[i];
        const trace::Summary &s = run.trace;
        os << "    {\n"
           << "      \"label\": \"" << run.label << "\",\n"
           << "      \"critical_path_ms\": " << s.criticalPathMs
           << ",\n"
           << "      \"terminal_topic\": \"" << s.terminalTopic
           << "\",\n      \"path\": [";
        for (std::size_t j = 0; j < s.criticalPath.size(); ++j) {
            const trace::PathStep &step = s.criticalPath[j];
            os << (j ? ", " : "") << "{\"node\": \"" << step.node
               << "\", \"topic\": \"" << step.topic
               << "\", \"queue_wait_ms\": " << step.queueWaitMs
               << ", \"compute_ms\": " << step.computeMs << "}";
        }
        os << "],\n      \"bottlenecks\": {";
        for (std::size_t j = 0; j < s.nodes.size(); ++j)
            os << (j ? ", " : "") << "\"" << s.nodes[j].node
               << "\": \"" << s.nodes[j].bottleneck << "\"";
        os << "}\n    }" << (i + 1 < runs.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n  \"optimizer\": {\n    \"steps\": [\n";
    const auto &history = optimizer.history();
    for (std::size_t i = 0; i < history.size(); ++i) {
        const exp::OptimizerStep &step = history[i];
        os << "      {\"name\": \"" << step.name
           << "\", \"incumbent_ms\": " << step.incumbentMs
           << ", \"candidate_ms\": " << step.candidateMs
           << ", \"accepted\": "
           << (step.accepted ? "true" : "false") << "}"
           << (i + 1 < history.size() ? "," : "") << "\n";
    }
    os << "    ],\n    \"accepted\": " << optimizer.accepted()
       << ",\n    \"final_worst_path_ms\": " << final_ms
       << "\n  }\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(
        argc, argv,
        bench::commonOptions()
            .flag("smoke",
                  "short CI run: first detector only, optimizer "
                  "demo included")
            .text("json", "BENCH_critical_path.json",
                  "report JSON path (empty = skip)"));
    const bool smoke = env.options().flag("smoke");

    // Part 1 — traced replay + critical-path report per detector.
    std::vector<perception::DetectorKind> kinds = bench::detectors;
    if (smoke)
        kinds.resize(1);
    std::vector<std::size_t> jobs;
    for (const auto kind : kinds)
        jobs.push_back(env.runner().submit(env.spec(kind).traced()));

    std::vector<const prof::RunResult *> runs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const prof::RunResult &run = env.runner().result(jobs[i]);
        runs.push_back(&run);
        printCriticalPath(env, run);
    }

    // Part 2 — the guarded closed loop. The incumbent deliberately
    // queues camera frames 4 deep at the detector: SSD512's ~110 ms
    // service time against the ~66 ms camera period means queued
    // frames are stale by construction, inflating the vision path's
    // end-to-end latency without changing any node's own cost.
    auto incumbent =
        env.spec(perception::DetectorKind::Ssd512)
            .traced()
            .queueDepth("/image_raw", "vision_detection",
                        kMisconfiguredDepth)
            .named("ssd512 /image_raw depth " +
                   std::to_string(kMisconfiguredDepth));
    exp::GuardedOptimizer optimizer(env.runner(),
                                    std::move(incumbent));

    const auto depthProposal = [&](std::size_t depth) {
        return [depth](exp::ExperimentSpec &spec) {
            spec.config.queueDepths.clear();
            spec.queueDepth("/image_raw", "vision_detection", depth)
                .named("ssd512 /image_raw depth " +
                       std::to_string(depth));
        };
    };

    const exp::OptimizerStep shrink = optimizer.propose(
        "/image_raw depth " + std::to_string(kMisconfiguredDepth) +
            " -> " + std::to_string(kImprovedDepth),
        depthProposal(kImprovedDepth));
    const exp::OptimizerStep grow = optimizer.propose(
        "/image_raw depth -> " + std::to_string(kRegressedDepth) +
            " (seeded regression)",
        depthProposal(kRegressedDepth));

    util::Table steps("Guarded optimizer — accept on measured "
                      "worst-path improvement only",
                      {"proposal", "incumbent (ms)",
                       "candidate (ms)", "delta (ms)", "outcome"});
    for (const exp::OptimizerStep &step : optimizer.history())
        steps.addRow({step.name, util::Table::num(step.incumbentMs),
                      util::Table::num(step.candidateMs),
                      util::Table::num(step.deltaMs()),
                      step.accepted ? "accepted" : "rolled back"});
    env.print(steps);

    // The demo's contract: the fix is provably a fix, the seeded
    // regression is provably rejected, and the surviving incumbent
    // is never worse than where it started.
    AV_ASSERT(shrink.accepted,
              "queue-depth fix was not accepted: incumbent ",
              shrink.incumbentMs, " ms, candidate ",
              shrink.candidateMs, " ms");
    AV_ASSERT(!grow.accepted,
              "seeded regression was accepted: incumbent ",
              grow.incumbentMs, " ms, candidate ", grow.candidateMs,
              " ms");
    const double final_ms = optimizer.incumbentMetricMs();
    AV_ASSERT(final_ms <= shrink.incumbentMs,
              "optimizer ended worse than it started");
    std::cout << "final incumbent: " << optimizer.incumbent().label
              << ", worst path " << util::Table::num(final_ms)
              << " ms (started " << util::Table::num(shrink.incumbentMs)
              << " ms)\n";

    // E14's before/after view: the same misconfiguration and fix
    // measured under every detector (reported, not asserted — for
    // detectors that keep up with the camera the queue barely
    // fills, and the guard is exactly what decides such cases).
    if (!smoke) {
        std::vector<std::size_t> before, after;
        for (const auto kind : bench::detectors) {
            before.push_back(env.runner().submit(
                env.spec(kind).traced().queueDepth(
                    "/image_raw", "vision_detection",
                    kMisconfiguredDepth)));
            after.push_back(env.runner().submit(
                env.spec(kind).traced().queueDepth(
                    "/image_raw", "vision_detection",
                    kImprovedDepth)));
        }
        util::Table ba("Worst-path E2E, /image_raw depth " +
                           std::to_string(kMisconfiguredDepth) +
                           " -> " + std::to_string(kImprovedDepth) +
                           " per detector",
                       {"detector", "before (ms)", "after (ms)",
                        "delta (ms)"});
        for (std::size_t i = 0; i < bench::detectors.size(); ++i) {
            const double b =
                env.runner().result(before[i]).worstCaseMean();
            const double a =
                env.runner().result(after[i]).worstCaseMean();
            ba.addRow({perception::detectorName(
                           bench::detectors[i]),
                       util::Table::num(b), util::Table::num(a),
                       util::Table::num(a - b)});
        }
        env.print(ba);
    }

    const std::string jsonPath = env.options().text("json");
    if (!jsonPath.empty() && !smoke) {
        std::ofstream os(jsonPath, std::ios::trunc);
        if (os) {
            writeJson(os, runs, optimizer, final_ms);
            std::cerr << "wrote " << jsonPath << "\n";
        } else {
            std::cerr << "cannot write " << jsonPath << "\n";
        }
    }
    return 0;
}
