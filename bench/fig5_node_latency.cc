/**
 * @file
 * Regenerates the paper's Fig. 5: single-node latency distributions
 * for every perception node under the three image detectors
 * (SSD512 / SSD300 / YOLOv3). For each node we print the violin
 * annotations the paper uses — min, first quartile, mean, third
 * quartile, max — plus p99 and an ASCII density sketch of the
 * distribution.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    // Fan the three detector replays out across the worker pool.
    std::vector<std::size_t> jobs;
    for (const auto kind : bench::detectors)
        jobs.push_back(env.runner().submit(env.spec(kind)));

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto kind = bench::detectors[i];
        const prof::RunResult &run = env.runner().result(jobs[i]);

        util::Table table(
            std::string("Fig. 5 — single-node latency (ms), with ") +
                perception::detectorName(kind),
            {"node", "n", "min", "q1", "mean", "q3", "p99", "max",
             "distribution"});
        for (const std::string &node : bench::fig5Nodes) {
            const util::SampleSeries *series =
                run.findNodeSeries(node);
            AV_ASSERT(series != nullptr, "missing node ", node);
            const util::DistributionSummary s =
                series->summarize();
            table.addRow({node, std::to_string(s.count),
                          util::Table::num(s.min),
                          util::Table::num(s.q1),
                          util::Table::num(s.mean),
                          util::Table::num(s.q3),
                          util::Table::num(s.p99),
                          util::Table::num(s.max),
                          util::sketchDistribution(
                              series->histogram(32), 32)});
        }
        env.print(table);
    }

    std::cout << "Paper reference points (Fig. 5): vision mean just"
                 " above 80 ms with SSD512 and under 40 ms with"
                 " SSD300/YOLO; ndt_matching and ray_ground_filter"
                 " means above 20 ms everywhere; costmap_generator_obj"
                 " tail reaching ~120 ms with SSD512 versus ~72 ms"
                 " with SSD300.\n";
    return 0;
}
