/**
 * @file
 * Regenerates the paper's Fig. 8: for SSD512 and YOLOv3,
 * (a) the CPU vs GPU share of the detector's processing time, and
 * (b) mean latency and standard deviation when the detector runs
 * standalone versus alongside the full stack — the isolated-vs-full
 * comparison behind Findings 4 and 5. All four replays (2 detectors
 * x {full, isolated}) fan out across the Runner's worker pool.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    const std::vector<perception::DetectorKind> kinds = {
        perception::DetectorKind::Ssd512,
        perception::DetectorKind::Yolov3,
    };
    std::vector<std::size_t> full_jobs, iso_jobs;
    for (const auto kind : kinds) {
        full_jobs.push_back(env.runner().submit(env.spec(kind)));
        iso_jobs.push_back(env.runner().submit(
            env.spec(kind).isolatedVision().named(
                std::string(perception::detectorName(kind)) +
                " isolated")));
    }

    util::Table split("Fig. 8 — CPU/GPU share of detector time",
                      {"detector", "cpu ms/frame", "gpu ms/frame",
                       "gpu share"});
    util::Table iso(
        "Fig. 8 — isolated vs full-system detector latency",
        {"detector", "mode", "mean (ms)", "stddev (ms)", "frames"});

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const auto kind = kinds[i];
        const prof::RunResult &full =
            env.runner().result(full_jobs[i]);
        const prof::RunResult &alone =
            env.runner().result(iso_jobs[i]);

        const util::SampleSeries *full_series =
            full.findNodeSeries("vision_detection");
        const util::SampleSeries *alone_series =
            alone.findNodeSeries("vision_detection");
        AV_ASSERT(full_series && alone_series,
                  "vision node missing");
        const auto full_sum = full_series->summarize();
        const auto alone_sum = alone_series->summarize();

        const double frames = static_cast<double>(full_sum.count);
        const double cpu_ms =
            full.cpuSecondsOf("vision_detection") * 1e3 / frames;
        const double gpu_ms =
            full.gpuSecondsOf("vision_detection") * 1e3 / frames;
        split.addRow({perception::detectorName(kind),
                      util::Table::num(cpu_ms),
                      util::Table::num(gpu_ms),
                      util::Table::pct(gpu_ms / (cpu_ms + gpu_ms))});

        iso.addRow({perception::detectorName(kind), "isolated",
                    util::Table::num(alone_sum.mean),
                    util::Table::num(alone_sum.stddev),
                    std::to_string(alone_sum.count)});
        iso.addRow({perception::detectorName(kind), "full stack",
                    util::Table::num(full_sum.mean),
                    util::Table::num(full_sum.stddev),
                    std::to_string(full_sum.count)});
        std::printf(
            "%s: full-system mean +%.1f%%, stddev x%.1f versus "
            "isolated\n",
            perception::detectorName(kind),
            100.0 * (full_sum.mean / alone_sum.mean - 1.0),
            alone_sum.stddev > 0.0
                ? full_sum.stddev / alone_sum.stddev
                : 0.0);
    }

    std::cout << "\n";
    env.print(split);
    env.print(iso);

    std::cout
        << "Paper reference (Fig. 8): SSD512 spends more than half"
           " of its time on the CPU, YOLO more than 90% on the GPU;"
           " SSD512 mean 73.45 -> 82.26 ms (+12%) and stddev 1.01 ->"
           " 4.81 ms when the full stack runs; YOLO 31.23 -> 33.14"
           " ms (+6%), stddev 0.88 -> 4.05 ms.\n";
    return 0;
}
