/**
 * @file
 * Regenerates the paper's Fig. 8: for SSD512 and YOLOv3,
 * (a) the CPU vs GPU share of the detector's processing time, and
 * (b) mean latency and standard deviation when the detector runs
 * standalone versus alongside the full stack — the isolated-vs-full
 * comparison behind Findings 4 and 5.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table split("Fig. 8 — CPU/GPU share of detector time",
                      {"detector", "cpu ms/frame", "gpu ms/frame",
                       "gpu share"});
    util::Table iso(
        "Fig. 8 — isolated vs full-system detector latency",
        {"detector", "mode", "mean (ms)", "stddev (ms)", "frames"});

    for (const auto kind : {perception::DetectorKind::Ssd512,
                            perception::DetectorKind::Yolov3}) {
        // Full stack.
        const auto full = env.run(kind);
        const auto full_sum =
            full->nodeLatencySeries("vision_detection").summarize();

        const auto &macct = full->machine().cpu().accounting();
        const auto &gacct = full->machine().gpu().accounting();
        const double frames =
            static_cast<double>(full_sum.count);
        const double cpu_ms =
            macct.busySecondsByOwner.count("vision_detection")
                ? macct.busySecondsByOwner.at("vision_detection") *
                      1e3 / frames
                : 0.0;
        const double gpu_ms =
            gacct.activeSecondsByOwner.count("vision_detection")
                ? gacct.activeSecondsByOwner.at("vision_detection") *
                      1e3 / frames
                : 0.0;
        split.addRow({perception::detectorName(kind),
                      util::Table::num(cpu_ms),
                      util::Table::num(gpu_ms),
                      util::Table::pct(gpu_ms / (cpu_ms + gpu_ms))});

        // Isolated: detector alone against the same bag.
        prof::RunConfig cfg = env.runConfig(kind);
        cfg.stack.enableLocalization = false;
        cfg.stack.enableLidarDetection = false;
        cfg.stack.enableTracking = false;
        cfg.stack.enableCostmap = false;
        util::inform("replaying isolated ",
                     perception::detectorName(kind), " ...");
        prof::CharacterizationRun alone(env.drive(), cfg);
        alone.execute();
        const auto alone_sum =
            alone.nodeLatencySeries("vision_detection").summarize();

        iso.addRow({perception::detectorName(kind), "isolated",
                    util::Table::num(alone_sum.mean),
                    util::Table::num(alone_sum.stddev),
                    std::to_string(alone_sum.count)});
        iso.addRow({perception::detectorName(kind), "full stack",
                    util::Table::num(full_sum.mean),
                    util::Table::num(full_sum.stddev),
                    std::to_string(full_sum.count)});
        std::printf(
            "%s: full-system mean +%.1f%%, stddev x%.1f versus "
            "isolated\n",
            perception::detectorName(kind),
            100.0 * (full_sum.mean / alone_sum.mean - 1.0),
            alone_sum.stddev > 0.0
                ? full_sum.stddev / alone_sum.stddev
                : 0.0);
    }

    std::cout << "\n";
    env.print(split);
    env.print(iso);

    std::cout
        << "Paper reference (Fig. 8): SSD512 spends more than half"
           " of its time on the CPU, YOLO more than 90% on the GPU;"
           " SSD512 mean 73.45 -> 82.26 ms (+12%) and stddev 1.01 ->"
           " 4.81 ms when the full stack runs; YOLO 31.23 -> 33.14"
           " ms (+6%), stddev 0.88 -> 4.05 ms.\n";
    return 0;
}
