/**
 * @file
 * Consolidated check of the paper's five findings:
 *
 *  1. Contention inflates other nodes' tail latency across detector
 *     configurations (isolated profiling underestimates it).
 *  2. End-to-end perception latency exceeds the 100 ms budget
 *     (tail beyond 200 ms) on a high-end platform.
 *  3. Average resource utilization stays low (<40%): efficiency,
 *     not capacity, is the bottleneck.
 *  4. Isolated single-node profiling underestimates mean latency.
 *  5. Isolated profiling underestimates latency variability
 *     (standard deviation grows several-fold in the full system).
 *
 * All four replays (full SSD512/YOLO + isolated SSD512/YOLO) are
 * submitted to the Runner up front, so they execute concurrently;
 * the report renders from the results in a fixed order, which keeps
 * the output byte-identical for any worker count.
 */

#include "findings.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/logging.hh"

namespace av::bench {

namespace {

/** printf into the report stream. */
void
put(std::ostream &os, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    os << buf;
}

/** Node latency series that must exist, by contract of the spec. */
const util::SampleSeries &
series(const prof::RunResult &run, const std::string &node)
{
    const util::SampleSeries *found = run.findNodeSeries(node);
    AV_ASSERT(found != nullptr, "missing node ", node);
    return *found;
}

} // namespace

int
runFindingsSummary(BenchEnv &env, std::ostream &os,
                   std::vector<prof::RunResult> *runsOut)
{
    int passed = 0, total = 0;
    const auto verdict = [&](bool ok, const std::string &text) {
        ++total;
        passed += ok;
        put(os, "  [%s] %s\n", ok ? "PASS" : "FAIL", text.c_str());
    };

    exp::Runner &runner = env.runner();
    const std::size_t ssd_job = runner.submit(
        env.spec(perception::DetectorKind::Ssd512));
    const std::size_t yolo_job = runner.submit(
        env.spec(perception::DetectorKind::Yolov3));
    const std::size_t ssd_iso_job = runner.submit(
        env.spec(perception::DetectorKind::Ssd512)
            .isolatedVision()
            .named("SSD512 isolated"));
    const std::size_t yolo_iso_job = runner.submit(
        env.spec(perception::DetectorKind::Yolov3)
            .isolatedVision()
            .named("YOLOv3 isolated"));

    const prof::RunResult &ssd512 = runner.result(ssd_job);
    const prof::RunResult &yolo = runner.result(yolo_job);
    assertZeroCopy(ssd512);
    assertZeroCopy(yolo);
    if (runsOut) {
        runsOut->push_back(ssd512);
        runsOut->push_back(yolo);
        runsOut->push_back(runner.result(ssd_iso_job));
        runsOut->push_back(runner.result(yolo_iso_job));
    }

    // Finding 1: tail latency of non-vision nodes varies with the
    // detector choice (pure cross-node contention).
    put(os, "\nFinding 1 — contention-driven tail variation\n");
    double max_inflation = 0.0;
    for (const std::string node :
         {"voxel_grid_filter", "ndt_matching", "ray_ground_filter",
          "costmap_generator_obj"}) {
        const double heavy = series(ssd512, node).quantile(0.99);
        const double light = series(yolo, node).quantile(0.99);
        const double inflation =
            light > 0.0 ? 100.0 * (heavy / light - 1.0) : 0.0;
        max_inflation = std::max(max_inflation, inflation);
        put(os,
            "  %-24s p99 %7.2f ms (SSD512) vs %7.2f ms "
            "(YOLO): %+.0f%%\n",
            node.c_str(), heavy, light, inflation);
    }
    verdict(max_inflation > 15.0,
            "tail latency of co-running nodes inflates by tens of"
            " percent under the heavy detector (paper: 34-97%)");

    // Finding 2: end-to-end latency breaks the 100 ms budget.
    put(os, "\nFinding 2 — end-to-end latency vs 100 ms\n");
    const double worst512 = ssd512.worstCaseMax();
    const double worst_yolo = yolo.worstCaseMax();
    put(os,
        "  worst-path p99: %.1f ms (SSD512), %.1f ms"
        " (YOLO); worst case: %.1f / %.1f ms\n",
        ssd512.worstCaseP99(), yolo.worstCaseP99(), worst512,
        worst_yolo);
    verdict(worst512 > 200.0 && worst_yolo > 180.0,
            "worst-case end-to-end latency reaches ~2x the 100 ms"
            " budget for every detector (>200 ms with SSD512;"
            " paper reports >200 ms for all three)");

    // Finding 3: utilization low.
    put(os, "\nFinding 3 — resource utilization\n");
    const double cpu_util = ssd512.totalCpu.mean();
    const double gpu_util = ssd512.totalGpu.mean();
    put(os,
        "  mean utilization with SSD512: CPU %.1f%%, GPU "
        "%.1f%%\n",
        100 * cpu_util, 100 * gpu_util);
    verdict(cpu_util < 0.45 && gpu_util < 0.45,
            "average CPU and GPU utilization stay well under half"
            " (paper: <40%)");

    // Findings 4 & 5: isolated vs full detector statistics.
    put(os, "\nFindings 4 & 5 — isolated vs full system\n");
    bool mean_up = true, std_up = true;
    const std::vector<
        std::pair<perception::DetectorKind, std::size_t>>
        iso_jobs = {
            {perception::DetectorKind::Ssd512, ssd_iso_job},
            {perception::DetectorKind::Yolov3, yolo_iso_job},
        };
    for (const auto &[kind, job] : iso_jobs) {
        const prof::RunResult &alone = runner.result(job);
        const auto a =
            series(alone, "vision_detection").summarize();
        const auto f =
            series(kind == perception::DetectorKind::Ssd512 ? ssd512
                                                            : yolo,
                   "vision_detection")
                .summarize();
        put(os,
            "  %-8s mean %6.2f -> %6.2f ms (%+.0f%%), "
            "stddev %5.2f -> %5.2f ms (x%.1f)\n",
            perception::detectorName(kind), a.mean, f.mean,
            100.0 * (f.mean / a.mean - 1.0), a.stddev,
            f.stddev,
            a.stddev > 0 ? f.stddev / a.stddev : 0.0);
        mean_up &= f.mean > a.mean;
        std_up &= f.stddev > 1.5 * a.stddev;
    }
    verdict(mean_up, "full-system mean latency exceeds isolated"
                     " (paper: +12% SSD512, +6% YOLO)");
    verdict(std_up, "full-system latency variability is several"
                    " times the isolated one (paper: ~4-5x)");

    put(os, "\n%d/%d findings reproduced\n", passed, total);
    return total - passed;
}

} // namespace av::bench
