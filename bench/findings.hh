/**
 * @file
 * The consolidated five-findings report, callable in-process.
 *
 * findings_summary's main() is a thin wrapper around
 * runFindingsSummary; tests call it twice against string streams to
 * assert the determinism contract at runtime (byte-identical reports
 * for the same scenario config).
 */

#ifndef AVSCOPE_BENCH_FINDINGS_HH
#define AVSCOPE_BENCH_FINDINGS_HH

#include <ostream>
#include <vector>

#include "common.hh"

namespace av::bench {

/**
 * Render the paper's five-findings check into @p os, running the
 * required replays through @p env's Runner (hence the mutable env).
 * When @p runsOut is non-null the four finished runs are copied into
 * it (full SSD512, full YOLO, isolated SSD512, isolated YOLO) for
 * machine-readable side reports; the rendered stream itself stays
 * byte-identical either way.
 * @return the number of findings that failed to reproduce (0 = all
 *         five reproduced).
 */
int runFindingsSummary(BenchEnv &env, std::ostream &os,
                       std::vector<prof::RunResult> *runsOut =
                           nullptr);

} // namespace av::bench

#endif // AVSCOPE_BENCH_FINDINGS_HH
