/**
 * @file
 * Platform ablations beyond the paper: sensitivity of the headline
 * metrics (worst-path p99 latency, vision mean, image drops, power)
 * to the platform parameters the paper's conclusions implicitly
 * hinge on — CPU core count, memory-interference strength, GPU
 * throughput, and subscriber queue depth is covered by the
 * middleware design. These quantify DESIGN.md's claims that the
 * observed bottlenecks are software-efficiency, not capacity,
 * limits (Finding 3).
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace av;

namespace {

void
runRow(util::Table &table, const bench::BenchEnv &env,
       const std::string &label, prof::RunConfig cfg)
{
    prof::CharacterizationRun run(env.drive(), cfg);
    run.execute();
    const auto vis =
        run.nodeLatencySeries("vision_detection").summarize();
    double drop_rate = 0.0;
    for (const auto &row : run.drops())
        if (row.topic == "/image_raw")
            drop_rate = row.dropRate();
    table.addRow(
        {label, util::Table::num(vis.mean),
         util::Table::num(run.paths().worstCaseMean()),
         util::Table::num(run.paths().worstCaseP99()),
         util::Table::pct(drop_rate),
         util::Table::num(run.power().cpuWatts().mean() +
                          run.power().gpuWatts().mean())});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table table(
        "Platform ablation (SSD512 scenario)",
        {"configuration", "vision mean (ms)", "worst path mean",
         "worst path p99", "image drops", "total power (W)"});

    // Baseline.
    runRow(table, env, "baseline (4 cores, 11 TFLOPS)",
           env.runConfig(perception::DetectorKind::Ssd512));

    // Core-count sweep: does more CPU fix the tail?
    for (const std::uint32_t cores : {2u, 8u, 16u}) {
        prof::RunConfig cfg =
            env.runConfig(perception::DetectorKind::Ssd512);
        cfg.machine.cpu.cores = cores;
        runRow(table, env, std::to_string(cores) + " cores", cfg);
    }

    // Memory-interference strength (0 = perfect isolation).
    for (const double penalty : {0.0, 36.0}) {
        prof::RunConfig cfg =
            env.runConfig(perception::DetectorKind::Ssd512);
        cfg.machine.cpu.memPenaltyCyclesPerByte = penalty;
        runRow(table, env,
               "mem interference x" +
                   util::Table::num(penalty / 18.0, 1),
               cfg);
    }

    // GPU throughput sweep: does a bigger GPU fix SSD512?
    for (const double tflops : {5.5, 22.0}) {
        prof::RunConfig cfg =
            env.runConfig(perception::DetectorKind::Ssd512);
        cfg.machine.gpu.tflops = tflops;
        runRow(table, env,
               util::Table::num(tflops, 1) + " TFLOPS GPU", cfg);
    }

    // Faster CPU clock.
    {
        prof::RunConfig cfg =
            env.runConfig(perception::DetectorKind::Ssd512);
        cfg.machine.cpu.freqGhz = 5.5;
        runRow(table, env, "5.5 GHz CPU", cfg);
    }

    env.print(table);

    std::cout
        << "Expected shape: the end-to-end tail is dominated by the"
           " pipeline's structure (sensor rates, serial node chain),"
           " so neither doubling cores nor doubling the GPU removes"
           " the >100 ms violations — supporting the paper's claim"
           " that a more efficient implementation, not more"
           " hardware, is needed (Finding 3).\n";
    return 0;
}
