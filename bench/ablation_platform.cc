/**
 * @file
 * Platform ablations beyond the paper: sensitivity of the headline
 * metrics (worst-path p99 latency, vision mean, image drops, power)
 * to the platform parameters the paper's conclusions implicitly
 * hinge on — CPU core count, memory-interference strength, GPU
 * throughput, and subscriber queue depth is covered by the
 * middleware design. These quantify DESIGN.md's claims that the
 * observed bottlenecks are software-efficiency, not capacity,
 * limits (Finding 3).
 *
 * The whole sweep is submitted to the Runner up front and fans out
 * across the worker pool; every configuration shares the one
 * recorded drive via the Runner's drive memo.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

namespace {

void
addRow(util::Table &table, const prof::RunResult &run)
{
    const util::SampleSeries *vision =
        run.findNodeSeries("vision_detection");
    AV_ASSERT(vision != nullptr, "vision node missing");
    const auto vis = vision->summarize();
    double drop_rate = 0.0;
    for (const auto &row : run.drops)
        if (row.topic == "/image_raw")
            drop_rate = row.dropRate();
    table.addRow({run.label, util::Table::num(vis.mean),
                  util::Table::num(run.worstCaseMean()),
                  util::Table::num(run.worstCaseP99()),
                  util::Table::pct(drop_rate),
                  util::Table::num(run.cpuWatts.mean() +
                                   run.gpuWatts.mean())});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    const auto base = [&] {
        return env.spec(perception::DetectorKind::Ssd512);
    };

    // Build the whole sweep, then fan it out.
    std::vector<exp::ExperimentSpec> sweep;

    // Baseline.
    sweep.push_back(base().named("baseline (4 cores, 11 TFLOPS)"));

    // Core-count sweep: does more CPU fix the tail?
    for (const std::uint32_t cores : {2u, 8u, 16u}) {
        exp::ExperimentSpec s =
            base().named(std::to_string(cores) + " cores");
        s.config.machine.cpu.cores = cores;
        sweep.push_back(s);
    }

    // Memory-interference strength (0 = perfect isolation).
    for (const double penalty : {0.0, 36.0}) {
        exp::ExperimentSpec s = base().named(
            "mem interference x" +
            util::Table::num(penalty / 18.0, 1));
        s.config.machine.cpu.memPenaltyCyclesPerByte = penalty;
        sweep.push_back(s);
    }

    // GPU throughput sweep: does a bigger GPU fix SSD512?
    for (const double tflops : {5.5, 22.0}) {
        exp::ExperimentSpec s = base().named(
            util::Table::num(tflops, 1) + " TFLOPS GPU");
        s.config.machine.gpu.tflops = tflops;
        sweep.push_back(s);
    }

    // Faster CPU clock.
    {
        exp::ExperimentSpec s = base().named("5.5 GHz CPU");
        s.config.machine.cpu.freqGhz = 5.5;
        sweep.push_back(s);
    }

    std::vector<std::size_t> jobs;
    jobs.reserve(sweep.size());
    for (const exp::ExperimentSpec &s : sweep)
        jobs.push_back(env.runner().submit(s));

    util::Table table(
        "Platform ablation (SSD512 scenario)",
        {"configuration", "vision mean (ms)", "worst path mean",
         "worst path p99", "image drops", "total power (W)"});
    for (const std::size_t job : jobs)
        addRow(table, env.runner().result(job));

    env.print(table);

    std::cout
        << "Expected shape: the end-to-end tail is dominated by the"
           " pipeline's structure (sensor rates, serial node chain),"
           " so neither doubling cores nor doubling the GPU removes"
           " the >100 ms violations — supporting the paper's claim"
           " that a more efficient implementation, not more"
           " hardware, is needed (Finding 3).\n";
    return 0;
}
