/**
 * @file
 * Regenerates the paper's Table VI: mean CPU and GPU power per
 * detector (1 Hz sampling, nvidia-smi style), plus integrated energy
 * over the drive.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table table("Table VI — mean power dissipation",
                      {"detector", "CPU (W)", "GPU (W)", "total (W)",
                       "CPU energy (J)", "GPU energy (J)"});
    double total_ssd512 = 0.0, total_ssd300 = 0.0;
    std::vector<std::size_t> jobs;
    for (const auto kind : bench::detectors)
        jobs.push_back(env.runner().submit(env.spec(kind)));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto kind = bench::detectors[i];
        const prof::RunResult &run = env.runner().result(jobs[i]);
        const double cpu = run.cpuWatts.mean();
        const double gpu = run.gpuWatts.mean();
        if (kind == perception::DetectorKind::Ssd512)
            total_ssd512 = cpu + gpu;
        if (kind == perception::DetectorKind::Ssd300)
            total_ssd300 = cpu + gpu;
        table.addRow({perception::detectorName(kind),
                      util::Table::num(cpu), util::Table::num(gpu),
                      util::Table::num(cpu + gpu),
                      util::Table::num(run.cpuEnergyJ, 0),
                      util::Table::num(run.gpuEnergyJ, 0)});
    }
    env.print(table);

    if (total_ssd512 > 0.0)
        std::printf("moving from SSD512 to SSD300 reduces total"
                    " power by %.0f%% (paper: 34%%)\n\n",
                    100.0 * (1.0 - total_ssd300 / total_ssd512));

    std::cout
        << "Paper reference (Table VI): CPU 44.90 / 42.63 / 42.35 W"
           " and GPU 122.14 / 67.08 / 116.73 W for SSD512 / SSD300 /"
           " YOLO; CPU power varies little across detectors while"
           " GPU power moves by tens of watts.\n";
    return 0;
}
