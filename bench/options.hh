/**
 * @file
 * BenchOptions — typed command-line options for the bench binaries,
 * declared fluently in the style of exp::ExperimentSpec's builder:
 *
 *   auto opts = commonOptions()
 *                   .text("json", "BENCH_x.json", "output path")
 *                   .flag("smoke", "short run for CI");
 *   opts.parse(argc, argv);
 *   if (opts.flag("smoke")) ...
 *
 * This replaces the hand-rolled util::Flags parsing the benches grew
 * up on. The differences that matter:
 *
 *  - Options are *typed at declaration*: "--jobs abc" is rejected at
 *    parse time with a diagnostic naming the flag and the offending
 *    value, instead of strtol silently yielding 0.
 *  - Errors *throw std::invalid_argument* (message includes the full
 *    usage text) instead of aborting the process, so the diagnostics
 *    are unit-testable (tests/bench/test_options.cc). BenchEnv turns
 *    the exception into exit(2) for the actual binaries.
 *  - The common flag set (--duration/--seed/--csv/--jobs/--cache-dir/
 *    --no-cache/--transport/--trace) is declared once in
 *    commonOptions() and shared by every bench.
 */

#ifndef AVSCOPE_BENCH_OPTIONS_HH
#define AVSCOPE_BENCH_OPTIONS_HH

#include <string>
#include <vector>

namespace av::bench {

/**
 * A declared-then-parsed option set. Declaration methods return
 * *this for chaining; the same names with a single argument are the
 * post-parse typed getters.
 */
class BenchOptions
{
  public:
    // ---- fluent declaration -------------------------------------

    /** Declare a boolean switch (defaults to false). */
    BenchOptions &flag(std::string name, std::string help);

    /** Declare an integer-valued option. */
    BenchOptions &integer(std::string name, long fallback,
                          std::string help);

    /** Declare a real-valued option. */
    BenchOptions &real(std::string name, double fallback,
                       std::string help);

    /** Declare a string-valued option. */
    BenchOptions &text(std::string name, std::string fallback,
                       std::string help);

    // ---- parsing ------------------------------------------------

    /**
     * Parse argv against the declared set. Accepts "--key=value",
     * "--key value" and bare "--key" for flags; anything not
     * starting with "--" is positional. Throws std::invalid_argument
     * (message ends with the usage text) on an unknown flag, a
     * missing value, or a value that does not parse as the declared
     * type.
     */
    BenchOptions &parse(int argc, char **argv);

    // ---- typed getters (valid after parse; fall back before) ----

    bool flag(const std::string &name) const;
    long integer(const std::string &name) const;
    double real(const std::string &name) const;
    const std::string &text(const std::string &name) const;

    /** True when the option appeared on the command line. */
    bool given(const std::string &name) const;

    /** Non-flag arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** The generated usage text (one line per declared option). */
    std::string usage() const;

  private:
    enum class Kind { Flag, Integer, Real, Text };

    struct Option
    {
        std::string name;
        Kind kind = Kind::Text;
        std::string value; ///< canonical string form, post-validation
        std::string help;
        bool given = false;
    };

    BenchOptions &declare(std::string name, Kind kind,
                          std::string fallback, std::string help);
    Option *find(const std::string &name);
    const Option *find(const std::string &name) const;
    const Option &require(const std::string &name, Kind kind) const;
    [[noreturn]] void fail(const std::string &message) const;

    std::vector<Option> options_; ///< declaration order (usage text)
    std::vector<std::string> positional_;
};

/**
 * The flag set every bench shares: --duration, --seed, --csv,
 * --jobs, --cache-dir, --no-cache, --transport, --trace. Benches
 * chain their extras onto the returned builder.
 */
BenchOptions commonOptions();

} // namespace av::bench

#endif // AVSCOPE_BENCH_OPTIONS_HH
