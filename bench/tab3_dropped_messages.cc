/**
 * @file
 * Regenerates the paper's Table III: dropped messages per topic and
 * subscribing node, per detector. A message is dropped when a newer
 * one arrives on a full subscription queue before the previous one
 * was consumed — the ROS queue semantics reproduced by the
 * middleware.
 */

#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    const auto &modes = env.transportModes();
    const bool comparing = env.comparingTransports();
    std::vector<std::vector<std::size_t>> jobs(modes.size());
    for (std::size_t m = 0; m < modes.size(); ++m)
        for (const auto kind : bench::detectors) {
            auto spec = env.spec(kind).transportMode(modes[m]);
            if (comparing)
                spec.named(spec.label + " [" +
                           ros::transportModeName(modes[m]) + "]");
            jobs[m].push_back(env.runner().submit(spec));
        }

    for (std::size_t m = 0; m < modes.size(); ++m) {
        for (std::size_t i = 0; i < jobs[m].size(); ++i) {
            const auto kind = bench::detectors[i];
            const prof::RunResult &run =
                env.runner().result(jobs[m][i]);
            bench::assertZeroCopy(run);
            std::string title =
                std::string("Table III — dropped messages, with ") +
                perception::detectorName(kind);
            if (comparing)
                title += std::string(" (") + run.transportMode +
                         " transport)";
            util::Table table(title,
                              {"topic", "subscribed by", "delivered",
                               "dropped", "drop rate"});
            for (const auto &row : run.drops) {
                if (row.delivered == 0)
                    continue;
                // The paper's table lists topics with at least one
                // drop plus /image_raw (its headline row) always.
                if (row.dropped == 0 && row.topic != "/image_raw")
                    continue;
                table.addRow({row.topic, row.node,
                              std::to_string(row.delivered),
                              std::to_string(row.dropped),
                              util::Table::pct(row.dropRate())});
            }
            env.print(table);
        }
    }

    if (comparing) {
        // Drop-oldest semantics must be transport-invariant: the
        // loaned path replaces the copies, not the queue behaviour.
        util::Table cmp("Transport comparison — drop semantics "
                        "preserved (copy vs loan)",
                        {"detector", "delivered", "dropped",
                         "copies[copy]", "copies[loan]"});
        for (std::size_t i = 0; i < bench::detectors.size(); ++i) {
            const prof::RunResult &oldRun =
                env.runner().result(jobs[0][i]);
            const prof::RunResult &newRun =
                env.runner().result(jobs[1][i]);
            AV_ASSERT(oldRun.drops.size() == newRun.drops.size(),
                      "transports disagree on drop table size");
            std::uint64_t delivered = 0, dropped = 0;
            for (std::size_t r = 0; r < newRun.drops.size(); ++r) {
                const auto &a = oldRun.drops[r];
                const auto &b = newRun.drops[r];
                AV_ASSERT(a.topic == b.topic && a.node == b.node &&
                              a.delivered == b.delivered &&
                              a.dropped == b.dropped,
                          "transports disagree on drops for ",
                          b.topic, " -> ", b.node);
                delivered += b.delivered;
                dropped += b.dropped;
            }
            cmp.addRow(
                {perception::detectorName(bench::detectors[i]),
                 std::to_string(delivered),
                 std::to_string(dropped),
                 std::to_string(oldRun.transport.payloadCopies),
                 std::to_string(newRun.transport.payloadCopies)});
        }
        env.print(cmp);
    }

    std::cout
        << "Paper reference (Table III): /image_raw drops 16.3% with"
           " SSD512 and 0.0% with SSD300/YOLO; the tracker and"
           " costmap object inputs drop ~0.1-1%.\n";
    return 0;
}
