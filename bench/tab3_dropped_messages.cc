/**
 * @file
 * Regenerates the paper's Table III: dropped messages per topic and
 * subscribing node, per detector. A message is dropped when a newer
 * one arrives on a full subscription queue before the previous one
 * was consumed — the ROS queue semantics reproduced by the
 * middleware.
 */

#include <iostream>

#include "common.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    std::vector<std::size_t> jobs;
    for (const auto kind : bench::detectors)
        jobs.push_back(env.runner().submit(env.spec(kind)));

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto kind = bench::detectors[i];
        const prof::RunResult &run = env.runner().result(jobs[i]);
        util::Table table(
            std::string("Table III — dropped messages, with ") +
                perception::detectorName(kind),
            {"topic", "subscribed by", "delivered", "dropped",
             "drop rate"});
        for (const auto &row : run.drops) {
            if (row.delivered == 0)
                continue;
            // The paper's table lists topics with at least one drop
            // plus /image_raw (its headline row) always.
            if (row.dropped == 0 && row.topic != "/image_raw")
                continue;
            table.addRow({row.topic, row.node,
                          std::to_string(row.delivered),
                          std::to_string(row.dropped),
                          util::Table::pct(row.dropRate())});
        }
        env.print(table);
    }

    std::cout
        << "Paper reference (Table III): /image_raw drops 16.3% with"
           " SSD512 and 0.0% with SSD300/YOLO; the tracker and"
           " costmap object inputs drop ~0.1-1%.\n";
    return 0;
}
