/**
 * @file
 * Regenerates the paper's Fig. 6 + Table IV: end-to-end latency of
 * the four computation paths under the three detectors; the
 * end-to-end latency of the system is the worst path.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

namespace {

const std::vector<std::pair<prof::Path, const char *>> pathRows = {
    {prof::Path::Localization,
     "/points_raw > voxel_grid_filter > /filtered_points > "
     "ndt_matching"},
    {prof::Path::CostmapPoints,
     "/points_raw > ray_ground_filter > /points_no_ground > "
     "costmap_generator"},
    {prof::Path::CostmapVisionObj,
     "/image_raw > vision_detection > range_vision_fusion > "
     "imm_ukf_pda > relay > naive_motion_predict > "
     "costmap_generator"},
    {prof::Path::CostmapClusterObj,
     "/points_raw > ray_ground_filter > euclidean_cluster > "
     "range_vision_fusion > imm_ukf_pda > relay > "
     "naive_motion_predict > costmap_generator"},
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table desc("Table IV — computation paths",
                     {"path", "topics/nodes"});
    for (const auto &[path, description] : pathRows)
        desc.addRow({prof::pathName(path), description});
    env.print(desc);

    std::vector<std::size_t> jobs;
    for (const auto kind : bench::detectors)
        jobs.push_back(env.runner().submit(env.spec(kind)));

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto kind = bench::detectors[i];
        const prof::RunResult &run = env.runner().result(jobs[i]);
        util::Table table(
            std::string(
                "Fig. 6 — end-to-end path latency (ms), with ") +
                perception::detectorName(kind),
            {"path", "n", "min", "q1", "mean", "q3", "p99", "max"});
        std::string worst_path;
        double worst_mean = -1.0;
        for (const auto &[path, description] : pathRows) {
            const util::SampleSeries *series =
                run.findPathSeries(path);
            AV_ASSERT(series != nullptr, "untraced path");
            const auto s = series->summarize();
            table.addRow({prof::pathName(path),
                          std::to_string(s.count),
                          util::Table::num(s.min),
                          util::Table::num(s.q1),
                          util::Table::num(s.mean),
                          util::Table::num(s.q3),
                          util::Table::num(s.p99),
                          util::Table::num(s.max)});
            if (s.mean > worst_mean) {
                worst_mean = s.mean;
                worst_path = prof::pathName(path);
            }
        }
        env.print(table);
        std::printf("end-to-end latency (worst path): %s, mean "
                    "%.1f ms, p99 %.1f ms -> %s the 100 ms budget\n\n",
                    worst_path.c_str(), worst_mean,
                    run.worstCaseP99(),
                    run.worstCaseP99() > 100.0
                        ? "EXCEEDS"
                        : "meets");
    }

    std::cout
        << "Paper reference (Fig. 6 / Finding 2): tail end-to-end"
           " latency exceeds 200 ms for every detector; the worst"
           " average path is costmap_vision_obj with SSD512 and"
           " costmap_cluster_obj with SSD300/YOLO.\n";
    return 0;
}
