/**
 * @file
 * Regenerates the paper's Fig. 6 + Table IV: end-to-end latency of
 * the four computation paths under the three detectors; the
 * end-to-end latency of the system is the worst path.
 */

#include <cstdio>
#include <iostream>

#include "common.hh"
#include "util/logging.hh"

using namespace av;

namespace {

const std::vector<std::pair<prof::Path, const char *>> pathRows = {
    {prof::Path::Localization,
     "/points_raw > voxel_grid_filter > /filtered_points > "
     "ndt_matching"},
    {prof::Path::CostmapPoints,
     "/points_raw > ray_ground_filter > /points_no_ground > "
     "costmap_generator"},
    {prof::Path::CostmapVisionObj,
     "/image_raw > vision_detection > range_vision_fusion > "
     "imm_ukf_pda > relay > naive_motion_predict > "
     "costmap_generator"},
    {prof::Path::CostmapClusterObj,
     "/points_raw > ray_ground_filter > euclidean_cluster > "
     "range_vision_fusion > imm_ukf_pda > relay > "
     "naive_motion_predict > costmap_generator"},
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table desc("Table IV — computation paths",
                     {"path", "topics/nodes"});
    for (const auto &[path, description] : pathRows)
        desc.addRow({prof::pathName(path), description});
    env.print(desc);

    // Submit every (detector, transport) pair up front so replays
    // fan out across the worker pool; under --transport both each
    // experiment runs once per transport.
    const auto &modes = env.transportModes();
    const bool comparing = env.comparingTransports();
    std::vector<std::vector<std::size_t>> jobs(modes.size());
    for (std::size_t m = 0; m < modes.size(); ++m)
        for (const auto kind : bench::detectors) {
            auto spec = env.spec(kind).transportMode(modes[m]);
            if (comparing)
                spec.named(spec.label + " [" +
                           ros::transportModeName(modes[m]) + "]");
            jobs[m].push_back(env.runner().submit(spec));
        }

    for (std::size_t m = 0; m < modes.size(); ++m) {
        for (std::size_t i = 0; i < jobs[m].size(); ++i) {
            const auto kind = bench::detectors[i];
            const prof::RunResult &run =
                env.runner().result(jobs[m][i]);
            bench::assertZeroCopy(run);
            std::string title =
                std::string(
                    "Fig. 6 — end-to-end path latency (ms), with ") +
                perception::detectorName(kind);
            if (comparing)
                title += std::string(" (") + run.transportMode +
                         " transport)";
            util::Table table(title, {"path", "n", "min", "q1",
                                      "mean", "q3", "p99", "max"});
            std::string worst_path;
            double worst_mean = -1.0;
            for (const auto &[path, description] : pathRows) {
                const util::SampleSeries *series =
                    run.findPathSeries(path);
                AV_ASSERT(series != nullptr, "untraced path");
                const auto s = series->summarize();
                table.addRow({prof::pathName(path),
                              std::to_string(s.count),
                              util::Table::num(s.min),
                              util::Table::num(s.q1),
                              util::Table::num(s.mean),
                              util::Table::num(s.q3),
                              util::Table::num(s.p99),
                              util::Table::num(s.max)});
                if (s.mean > worst_mean) {
                    worst_mean = s.mean;
                    worst_path = prof::pathName(path);
                }
            }
            env.print(table);
            std::printf(
                "end-to-end latency (worst path): %s, mean "
                "%.1f ms, p99 %.1f ms -> %s the 100 ms budget\n\n",
                worst_path.c_str(), worst_mean, run.worstCaseP99(),
                run.worstCaseP99() > 100.0 ? "EXCEEDS" : "meets");
        }
    }

    if (comparing) {
        // Old vs new: the simulated latencies must agree exactly —
        // the transports differ only in host-side payload handling,
        // which the copy counters expose.
        util::Table cmp("Transport comparison — copy vs loan "
                        "(identical sim results, host copies "
                        "eliminated)",
                        {"detector", "worst mean (ms)", "worst p99 "
                         "(ms)", "deliveries", "copies[copy]",
                         "copies[loan]", "loaned[loan]"});
        for (std::size_t i = 0; i < bench::detectors.size(); ++i) {
            const prof::RunResult &oldRun =
                env.runner().result(jobs[0][i]);
            const prof::RunResult &newRun =
                env.runner().result(jobs[1][i]);
            AV_ASSERT(oldRun.worstCaseMean() ==
                              newRun.worstCaseMean() &&
                          oldRun.worstCaseP99() ==
                              newRun.worstCaseP99(),
                      "copy and loan transports diverged on "
                      "simulated latency for ",
                      perception::detectorName(
                          bench::detectors[i]));
            AV_ASSERT(oldRun.transport.deliveries ==
                          newRun.transport.deliveries,
                      "copy and loan transports delivered "
                      "different message counts");
            cmp.addRow(
                {perception::detectorName(bench::detectors[i]),
                 util::Table::num(newRun.worstCaseMean()),
                 util::Table::num(newRun.worstCaseP99()),
                 std::to_string(newRun.transport.deliveries),
                 std::to_string(oldRun.transport.payloadCopies),
                 std::to_string(newRun.transport.payloadCopies),
                 std::to_string(
                     newRun.transport.loanedDeliveries)});
        }
        env.print(cmp);
    }

    std::cout
        << "Paper reference (Fig. 6 / Finding 2): tail end-to-end"
           " latency exceeds 200 ms for every detector; the worst"
           " average path is costmap_vision_obj with SSD512 and"
           " costmap_cluster_obj with SSD300/YOLO.\n";
    return 0;
}
