/**
 * @file
 * Shared scaffolding for the table/figure benches: common flags,
 * drive construction, per-detector runs.
 *
 * Every bench accepts:
 *   --duration <s>   drive length (default 60; the paper used 480)
 *   --seed <n>       scenario seed
 *   --csv            machine-readable output
 */

#ifndef AVSCOPE_BENCH_COMMON_HH
#define AVSCOPE_BENCH_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "core/characterization.hh"
#include "util/flags.hh"
#include "util/table.hh"

namespace av::bench {

/** The three detector scenarios of the paper. */
inline const std::vector<perception::DetectorKind> detectors = {
    perception::DetectorKind::Ssd512,
    perception::DetectorKind::Ssd300,
    perception::DetectorKind::Yolov3,
};

/** Nodes in the paper's Fig. 5 order. */
inline const std::vector<std::string> fig5Nodes = {
    "voxel_grid_filter",
    "ndt_matching",
    "ray_ground_filter",
    "euclidean_cluster",
    "vision_detection",
    "range_vision_fusion",
    "imm_ukf_pda_tracker",
    "naive_motion_prediction",
    "costmap_generator_obj",
    "costmap_generator_points",
};

/** The six nodes of the paper's Table VII / Fig. 7. */
inline const std::vector<std::string> tab7Nodes = {
    "vision_detection",
    "euclidean_cluster",
    "ndt_matching",
    "imm_ukf_pda_tracker",
    "costmap_generator",
    "ray_ground_filter",
};

/** Parsed environment shared by all benches. */
class BenchEnv
{
  public:
    /**
     * Parse argv and record the drive.
     * @param extra_flags additional accepted flag names
     */
    BenchEnv(int argc, char **argv,
             const std::vector<std::string> &extra_flags = {});

    const util::Flags &flags() const { return flags_; }
    bool csv() const { return csv_; }
    sim::Tick duration() const { return duration_; }
    std::shared_ptr<const prof::DriveData> drive() const
    {
        return drive_;
    }

    /** Default run configuration for one detector. */
    prof::RunConfig runConfig(perception::DetectorKind kind) const;

    /** Run one fully-instrumented replay. */
    std::unique_ptr<prof::CharacterizationRun>
    run(perception::DetectorKind kind) const;

    /** Print a table as text or CSV per the --csv flag. */
    void print(const util::Table &table) const;

  private:
    util::Flags flags_;
    bool csv_ = false;
    sim::Tick duration_ = 0;
    std::shared_ptr<prof::DriveData> drive_;
};

} // namespace av::bench

#endif // AVSCOPE_BENCH_COMMON_HH
