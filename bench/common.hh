/**
 * @file
 * Shared scaffolding for the table/figure benches: common flags and
 * the experiment Runner every bench submits its specs to.
 *
 * Every bench accepts the commonOptions() flag set:
 *   --duration <s>   drive length (default 60; the paper used 480)
 *   --seed <n>       scenario seed
 *   --csv            machine-readable output
 *   --jobs <n>       worker threads (default: hardware concurrency)
 *   --cache-dir <d>  result-cache directory (default results/cache)
 *   --no-cache       disable the result cache
 *   --transport <m>  intra-process transport: loan (default,
 *                    zero-copy), copy (v1 deep-copy path), or both
 *                    (run each experiment under both and compare —
 *                    simulated results must match byte-for-byte;
 *                    only host-side work and the copy counters
 *                    differ)
 *   --trace          retain the full trace event stream: every spec
 *                    from spec() carries .traced(), so each result
 *                    arrives with its execution DAG attached
 *
 * Benches describe runs as ExperimentSpecs and submit them to the
 * shared Runner — submitting everything up front and collecting
 * afterwards fans the replays out across the worker pool, and
 * repeated invocations of the same experiment come back from the
 * on-disk cache without replaying at all.
 */

#ifndef AVSCOPE_BENCH_COMMON_HH
#define AVSCOPE_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "exp/runner.hh"
#include "options.hh"
#include "util/table.hh"

namespace av::bench {

/** The three detector scenarios of the paper. */
inline const std::vector<perception::DetectorKind> detectors = {
    perception::DetectorKind::Ssd512,
    perception::DetectorKind::Ssd300,
    perception::DetectorKind::Yolov3,
};

/** Nodes in the paper's Fig. 5 order. */
inline const std::vector<std::string> fig5Nodes = {
    "voxel_grid_filter",
    "ndt_matching",
    "ray_ground_filter",
    "euclidean_cluster",
    "vision_detection",
    "range_vision_fusion",
    "imm_ukf_pda_tracker",
    "naive_motion_prediction",
    "costmap_generator_obj",
    "costmap_generator_points",
};

/** The six nodes of the paper's Table VII / Fig. 7. */
inline const std::vector<std::string> tab7Nodes = {
    "vision_detection",
    "euclidean_cluster",
    "ndt_matching",
    "imm_ukf_pda_tracker",
    "costmap_generator",
    "ray_ground_filter",
};

/** Parsed environment + experiment engine shared by all benches. */
class BenchEnv
{
  public:
    /**
     * Parse argv against @p options (commonOptions() by default;
     * benches with extra flags chain them on before passing) and
     * build the Runner. A parse error prints the diagnostic plus
     * usage and exits with status 2.
     */
    BenchEnv(int argc, char **argv,
             BenchOptions options = commonOptions());

    const BenchOptions &options() const { return options_; }
    bool csv() const { return csv_; }
    bool trace() const { return trace_; }
    sim::Tick duration() const { return duration_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Transport modes selected by --transport: one mode normally,
     * Copy then Loan (old then new) under "both".
     */
    const std::vector<ros::TransportMode> &transportModes() const
    {
        return transportModes_;
    }

    /** True when --transport both asked for a comparison. */
    bool comparingTransports() const
    {
        return transportModes_.size() > 1;
    }

    /** Base spec carrying the --duration / --seed flags. */
    exp::ExperimentSpec spec() const;

    /** Spec for one detector, labeled with the detector's name. */
    exp::ExperimentSpec spec(perception::DetectorKind kind) const;

    /** The experiment engine; submit specs and collect results. */
    exp::Runner &runner() { return runner_; }

    /** Submit one spec and wait for its result. */
    const prof::RunResult &run(const exp::ExperimentSpec &spec);

    /** Run the default configuration of one detector. */
    const prof::RunResult &run(perception::DetectorKind kind);

    /** Print a table as text or CSV per the --csv flag. */
    void print(const util::Table &table) const;

  private:
    static exp::RunnerConfig
    runnerConfig(const BenchOptions &options);

    BenchOptions options_;
    bool csv_ = false;
    bool trace_ = false;
    sim::Tick duration_ = 0;
    std::uint64_t seed_ = 2020;
    std::vector<ros::TransportMode> transportModes_;
    exp::Runner runner_;
};

/**
 * Assert the zero-copy contract on a finished run: in Loan mode
 * every deep payload copy must have been forced by a transport
 * fault, and a clean (unfaulted) run must have made none at all.
 * No-op for Copy-mode runs.
 */
void assertZeroCopy(const prof::RunResult &run);

} // namespace av::bench

#endif // AVSCOPE_BENCH_COMMON_HH
