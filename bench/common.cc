#include "common.hh"

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "util/logging.hh"

namespace av::bench {

namespace {

/**
 * Parse argv, turning a diagnostic into exit(2). BenchOptions
 * throws so the message is unit-testable; a bench binary just wants
 * the text on stderr and a conventional usage-error status.
 */
BenchOptions
parsed(BenchOptions options, int argc, char **argv)
{
    try {
        options.parse(argc, argv);
    } catch (const std::invalid_argument &error) {
        std::cerr << (argc > 0 ? argv[0] : "bench") << ": "
                  << error.what() << "\n";
        std::exit(2);
    }
    return options;
}

std::vector<ros::TransportMode>
parseTransportModes(const BenchOptions &options)
{
    const std::string &name = options.text("transport");
    if (name == "both")
        return {ros::TransportMode::Copy, ros::TransportMode::Loan};
    ros::TransportMode mode;
    AV_ASSERT(ros::transportModeFromName(name, mode),
              "--transport must be copy, loan or both; got ", name);
    return {mode};
}

} // namespace

exp::RunnerConfig
BenchEnv::runnerConfig(const BenchOptions &options)
{
    exp::RunnerConfig cfg;
    const long jobs = options.integer("jobs");
    AV_ASSERT(jobs >= 0, "--jobs must be non-negative");
    cfg.jobs = static_cast<unsigned>(jobs);
    if (!options.flag("no-cache"))
        cfg.cacheDir = options.text("cache-dir");
    return cfg;
}

BenchEnv::BenchEnv(int argc, char **argv, BenchOptions options)
    : options_(parsed(std::move(options), argc, argv)),
      runner_(runnerConfig(options_))
{
    csv_ = options_.flag("csv");
    trace_ = options_.flag("trace");
    const long seconds = options_.integer("duration");
    AV_ASSERT(seconds > 0, "duration must be positive");
    duration_ = static_cast<sim::Tick>(seconds) * sim::oneSec;
    seed_ = static_cast<std::uint64_t>(options_.integer("seed"));
    transportModes_ = parseTransportModes(options_);
}

exp::ExperimentSpec
BenchEnv::spec() const
{
    // Under "both" the base spec rides the new (Loan) path; benches
    // comparing transports override the mode per submission.
    return exp::spec()
        .duration(duration_)
        .seed(seed_)
        .transportMode(transportModes_.back())
        .traced(trace_);
}

exp::ExperimentSpec
BenchEnv::spec(perception::DetectorKind kind) const
{
    return spec().detector(kind).named(
        perception::detectorName(kind));
}

const prof::RunResult &
BenchEnv::run(const exp::ExperimentSpec &spec)
{
    return runner_.result(runner_.submit(spec));
}

const prof::RunResult &
BenchEnv::run(perception::DetectorKind kind)
{
    return run(spec(kind));
}

void
assertZeroCopy(const prof::RunResult &run)
{
    if (run.transportMode != "loan")
        return;
    AV_ASSERT(run.transport.payloadCopies ==
                  run.transport.forcedCopies,
              "zero-copy contract violated in '", run.label,
              "': ", run.transport.payloadCopies,
              " payload copies but only ",
              run.transport.forcedCopies, " forced by faults");
    if (run.faults.empty())
        AV_ASSERT(run.transport.payloadCopies == 0,
                  "zero-copy contract violated in clean run '",
                  run.label, "': ", run.transport.payloadCopies,
                  " payload copies");
}

void
BenchEnv::print(const util::Table &table) const
{
    if (csv_)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace av::bench
