#include "common.hh"

#include <iostream>

#include "util/logging.hh"

namespace av::bench {

namespace {

const std::vector<std::string> kCommonFlags = {
    "duration",  "seed",     "csv",       "jobs",
    "cache-dir", "no-cache", "transport",
};

std::vector<ros::TransportMode>
parseTransportModes(const util::Flags &flags)
{
    const std::string name = flags.getString("transport", "loan");
    if (name == "both")
        return {ros::TransportMode::Copy, ros::TransportMode::Loan};
    ros::TransportMode mode;
    AV_ASSERT(ros::transportModeFromName(name, mode),
              "--transport must be copy, loan or both; got ", name);
    return {mode};
}

} // namespace

exp::RunnerConfig
BenchEnv::runnerConfig(const util::Flags &flags)
{
    exp::RunnerConfig cfg;
    const long jobs = flags.getInt("jobs", 0);
    AV_ASSERT(jobs >= 0, "--jobs must be non-negative");
    cfg.jobs = static_cast<unsigned>(jobs);
    if (!flags.getBool("no-cache"))
        cfg.cacheDir =
            flags.getString("cache-dir", exp::defaultCacheDir());
    return cfg;
}

namespace {

std::vector<std::string>
knownFlags(const std::vector<std::string> &extra)
{
    std::vector<std::string> known = kCommonFlags;
    known.insert(known.end(), extra.begin(), extra.end());
    return known;
}

} // namespace

BenchEnv::BenchEnv(int argc, char **argv,
                   const std::vector<std::string> &extra)
    : flags_(argc, argv, knownFlags(extra)),
      runner_(runnerConfig(flags_))
{
    csv_ = flags_.getBool("csv");
    const long seconds = flags_.getInt("duration", 60);
    AV_ASSERT(seconds > 0, "duration must be positive");
    duration_ = static_cast<sim::Tick>(seconds) * sim::oneSec;
    seed_ = static_cast<std::uint64_t>(flags_.getInt("seed", 2020));
    transportModes_ = parseTransportModes(flags_);
}

exp::ExperimentSpec
BenchEnv::spec() const
{
    // Under "both" the base spec rides the new (Loan) path; benches
    // comparing transports override the mode per submission.
    return exp::spec()
        .duration(duration_)
        .seed(seed_)
        .transportMode(transportModes_.back());
}

exp::ExperimentSpec
BenchEnv::spec(perception::DetectorKind kind) const
{
    return spec().detector(kind).named(
        perception::detectorName(kind));
}

const prof::RunResult &
BenchEnv::run(const exp::ExperimentSpec &spec)
{
    return runner_.result(runner_.submit(spec));
}

const prof::RunResult &
BenchEnv::run(perception::DetectorKind kind)
{
    return run(spec(kind));
}

void
assertZeroCopy(const prof::RunResult &run)
{
    if (run.transportMode != "loan")
        return;
    AV_ASSERT(run.transport.payloadCopies ==
                  run.transport.forcedCopies,
              "zero-copy contract violated in '", run.label,
              "': ", run.transport.payloadCopies,
              " payload copies but only ",
              run.transport.forcedCopies, " forced by faults");
    if (run.faults.empty())
        AV_ASSERT(run.transport.payloadCopies == 0,
                  "zero-copy contract violated in clean run '",
                  run.label, "': ", run.transport.payloadCopies,
                  " payload copies");
}

void
BenchEnv::print(const util::Table &table) const
{
    if (csv_)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace av::bench
