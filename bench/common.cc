#include "common.hh"

#include <iostream>

#include "util/logging.hh"

namespace av::bench {

namespace {

const std::vector<std::string> kCommonFlags = {
    "duration", "seed", "csv", "jobs", "cache-dir", "no-cache",
};

} // namespace

exp::RunnerConfig
BenchEnv::runnerConfig(const util::Flags &flags)
{
    exp::RunnerConfig cfg;
    const long jobs = flags.getInt("jobs", 0);
    AV_ASSERT(jobs >= 0, "--jobs must be non-negative");
    cfg.jobs = static_cast<unsigned>(jobs);
    if (!flags.getBool("no-cache"))
        cfg.cacheDir =
            flags.getString("cache-dir", exp::defaultCacheDir());
    return cfg;
}

BenchEnv::BenchEnv(int argc, char **argv)
    : flags_(argc, argv, kCommonFlags),
      runner_(runnerConfig(flags_))
{
    csv_ = flags_.getBool("csv");
    const long seconds = flags_.getInt("duration", 60);
    AV_ASSERT(seconds > 0, "duration must be positive");
    duration_ = static_cast<sim::Tick>(seconds) * sim::oneSec;
    seed_ = static_cast<std::uint64_t>(flags_.getInt("seed", 2020));
}

exp::ExperimentSpec
BenchEnv::spec() const
{
    return exp::spec().duration(duration_).seed(seed_);
}

exp::ExperimentSpec
BenchEnv::spec(perception::DetectorKind kind) const
{
    return spec().detector(kind).named(
        perception::detectorName(kind));
}

const prof::RunResult &
BenchEnv::run(const exp::ExperimentSpec &spec)
{
    return runner_.result(runner_.submit(spec));
}

const prof::RunResult &
BenchEnv::run(perception::DetectorKind kind)
{
    return run(spec(kind));
}

void
BenchEnv::print(const util::Table &table) const
{
    if (csv_)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace av::bench
