#include "common.hh"

#include <iostream>

#include "util/logging.hh"

namespace av::bench {

namespace {

std::vector<std::string>
withCommon(std::vector<std::string> extra)
{
    extra.push_back("duration");
    extra.push_back("seed");
    extra.push_back("csv");
    return extra;
}

} // namespace

BenchEnv::BenchEnv(int argc, char **argv,
                   const std::vector<std::string> &extra_flags)
    : flags_(argc, argv, withCommon(extra_flags))
{
    csv_ = flags_.getBool("csv");
    const long seconds = flags_.getInt("duration", 60);
    AV_ASSERT(seconds > 0, "duration must be positive");
    duration_ = static_cast<sim::Tick>(seconds) * sim::oneSec;

    world::ScenarioConfig scenario;
    scenario.seed =
        static_cast<std::uint64_t>(flags_.getInt("seed", 2020));
    util::inform("recording ", seconds,
                 " s drive (seed ", scenario.seed, ") ...");
    drive_ = prof::makeDrive(scenario, duration_);
    util::inform("bag: ", drive_->bag.totalMessages(),
                 " messages, map: ", drive_->map.size(), " points");
}

prof::RunConfig
BenchEnv::runConfig(perception::DetectorKind kind) const
{
    prof::RunConfig cfg;
    cfg.stack.detector = kind;
    return cfg;
}

std::unique_ptr<prof::CharacterizationRun>
BenchEnv::run(perception::DetectorKind kind) const
{
    util::inform("replaying with ", perception::detectorName(kind),
                 " ...");
    auto run = std::make_unique<prof::CharacterizationRun>(
        drive_, runConfig(kind));
    run->execute();
    return run;
}

void
BenchEnv::print(const util::Table &table) const
{
    if (csv_)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n";
}

} // namespace av::bench
