/**
 * @file
 * Regenerates the paper's Table VII: IPC, L1 read/write miss rates
 * and branch misprediction of the six critical nodes, measured by
 * the cache / branch-predictor / pipeline models over a full replay
 * with SSD512 (plus YOLOv3 for the vision row, as the paper reports
 * both detectors).
 */

#include <iostream>

#include "common.hh"

using namespace av;

namespace {

void
addRows(util::Table &table, const prof::RunResult &run,
        const char *suffix, bool vision_only)
{
    for (const auto &row : run.counters) {
        bool wanted = false;
        for (const auto &name : bench::tab7Nodes)
            wanted |= row.node == name;
        if (!wanted)
            continue;
        if (vision_only && row.node != "vision_detection")
            continue;
        if (!vision_only && row.node == "vision_detection")
            continue;
        std::string label = row.node;
        if (row.node == "vision_detection")
            label += suffix;
        table.addRow({label, util::Table::num(row.ipc),
                      util::Table::pct(row.l1ReadMissRate),
                      util::Table::pct(row.l1WriteMissRate),
                      util::Table::pct(row.branchMissRate)});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    util::Table table("Table VII — microarchitecture profile",
                      {"node", "IPC", "L1 miss (read)",
                       "L1 miss (write)", "branch mispredict"});

    // The vision rows come from their own runs; the other nodes from
    // the SSD512 run (the paper's default scenario). Both replays
    // run concurrently.
    const std::size_t ssd_job = env.runner().submit(
        env.spec(perception::DetectorKind::Ssd512));
    const std::size_t yolo_job = env.runner().submit(
        env.spec(perception::DetectorKind::Yolov3));
    const prof::RunResult &ssd = env.runner().result(ssd_job);
    const prof::RunResult &yolo = env.runner().result(yolo_job);
    addRows(table, ssd, " (SSD512)", true);
    addRows(table, yolo, " (YOLOv3)", true);
    addRows(table, ssd, "", false);

    env.print(table);

    std::cout
        << "Paper reference (Table VII): IPC 1.03 (SSD512), 1.36"
           " (YOLO), 1.36 (cluster), 1.26 (ndt), 1.14 (tracker),"
           " 2.07 (costmap); L1 read miss 2.36/3.88/4.66/1.37/1.55/"
           "0.20%; branch mispredict 9.78/0.10/1.20/3.06/0.76/"
           "0.11%.\n";
    return 0;
}
