/**
 * @file
 * Compound-fault chaos campaign (beyond the paper): av::chaos
 * samples seeded compound FaultPlans (2–4 simultaneous fault kinds,
 * overlapping windows, scaled intensities) against each detector
 * stack with the safety monitor armed, classifies every cell as
 * recovered / degraded / violated, folds the cells into a per-kind
 * resilience frontier (max survivable intensity), and delta-debugs
 * the first violating cell down to a locally-minimal repro.
 *
 * Everything is a pure function of the seeds, so the whole report —
 * cell table, frontier, histogram, minimal repros and
 * BENCH_chaos.json — is byte-identical across --jobs values and
 * fully cache-warm on a second invocation.
 *
 * Extra flags on top of the common set:
 *   --campaign <n>     cells per detector (default 10; 4 in smoke)
 *   --invariants <s>   safety thresholds: default | strict | loose
 *   --smoke            one detector, four cells (CI)
 *   --json <path>      machine-readable output (skipped in smoke)
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "chaos/chaos.hh"
#include "common.hh"
#include "util/logging.hh"

using namespace av;

namespace {

/** Named threshold presets for --invariants. */
stack::SafetyOptions
invariantsFor(const std::string &name)
{
    stack::SafetyOptions options;
    if (name == "strict") {
        options.maxLocalizationError = 1.5;
        options.deadlineMissStreak = 5;
        options.trackLossSamples = 5;
        options.livenessAfter = sim::oneSec;
    } else if (name == "loose") {
        options.maxLocalizationError = 5.0;
        options.deadlineMissStreak = 20;
        options.trackLossSamples = 12;
        options.livenessAfter = 4 * sim::oneSec;
    } else if (name != "default") {
        throw std::invalid_argument(
            "--invariants must be default, strict or loose (got '" +
            name + "')");
    }
    return options;
}

/** Shrink metric: fault count dominates, then total window ticks. */
double
planWeight(const fault::FaultPlan &plan)
{
    double weight =
        static_cast<double>(plan.faults.size()) * 1e15;
    for (const fault::FaultSpec &f : plan.faults)
        weight += static_cast<double>(f.duration + f.respawnDelay +
                                      f.extraDelay) +
                  f.probability + (1.0 - f.factor);
    return weight;
}

std::string
faultsCell(const chaos::CampaignCell &cell)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < cell.sampled.size(); ++i) {
        if (i != 0)
            os << '+';
        os << fault::faultKindName(cell.sampled[i].kind) << '@'
           << util::Table::num(cell.sampled[i].intensity, 2);
    }
    return os.str();
}

std::vector<std::string>
planLines(const fault::FaultPlan &plan)
{
    std::vector<std::string> lines;
    std::istringstream is(chaos::canonicalPlan(plan));
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/** One detector's campaign products, kept for the JSON artifact. */
struct DetectorReport
{
    std::string name;
    std::vector<chaos::CellOutcome> outcomes;
    std::vector<chaos::FrontierRow> frontier;
    std::uint64_t classCount[3] = {0, 0, 0};
    bool hasRepro = false;
    std::size_t reproCell = 0;
    chaos::MinimizeResult repro;
};

void
writeJson(std::ostream &os,
          const std::vector<DetectorReport> &reports,
          const chaos::CampaignSpec &shape)
{
    // No wall-clock fields and no cache-hit counters on purpose:
    // the artifact must be byte-identical across machines, worker
    // counts and warm/cold caches.
    os << "{\n  \"bench\": \"chaos_campaign\",\n";
    os << "  \"cellsPerDetector\": " << shape.cells << ",\n";
    os << "  \"faultsPerCell\": [" << shape.minFaults << ", "
       << shape.maxFaults << "],\n";
    os << "  \"detectors\": [\n";
    for (std::size_t d = 0; d < reports.size(); ++d) {
        const DetectorReport &r = reports[d];
        os << "    {\n      \"name\": \"" << r.name << "\",\n";
        os << "      \"classes\": {\"recovered\": "
           << r.classCount[0] << ", \"degraded\": "
           << r.classCount[1] << ", \"violated\": "
           << r.classCount[2] << "},\n";
        os << "      \"cells\": [\n";
        for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
            const chaos::CellOutcome &out = r.outcomes[i];
            os << "        {\"index\": " << out.cell.index
               << ", \"class\": \"" << chaos::cellClassName(out.cls)
               << "\", \"violations\": " << out.violationCount
               << ", \"first\": \"" << out.firstViolation
               << "\", \"unrecovered\": " << out.unrecovered
               << ", \"faults\": [";
            for (std::size_t f = 0; f < out.cell.sampled.size();
                 ++f) {
                const chaos::SampledFault &sf = out.cell.sampled[f];
                os << (f != 0 ? ", " : "") << "{\"kind\": \""
                   << fault::faultKindName(sf.kind)
                   << "\", \"intensity\": " << sf.intensity << "}";
            }
            os << "]}"
               << (i + 1 < r.outcomes.size() ? "," : "") << '\n';
        }
        os << "      ],\n      \"frontier\": [\n";
        for (std::size_t i = 0; i < r.frontier.size(); ++i) {
            const chaos::FrontierRow &row = r.frontier[i];
            os << "        {\"kind\": \""
               << fault::faultKindName(row.kind)
               << "\", \"cells\": " << row.cells
               << ", \"violated\": " << row.violated
               << ", \"maxSurvivedIntensity\": "
               << row.maxSurvivedIntensity
               << ", \"minViolatedIntensity\": "
               << row.minViolatedIntensity << "}"
               << (i + 1 < r.frontier.size() ? "," : "") << '\n';
        }
        os << "      ]";
        if (r.hasRepro) {
            os << ",\n      \"repro\": {\"cell\": " << r.reproCell
               << ", \"invariant\": \""
               << stack::invariantName(r.repro.invariant)
               << "\", \"evaluations\": " << r.repro.evaluations
               << ", \"plan\": [";
            const std::vector<std::string> lines =
                planLines(r.repro.plan);
            for (std::size_t i = 0; i < lines.size(); ++i)
                os << (i != 0 ? ", " : "") << '"' << lines[i]
                   << '"';
            os << "]}";
        }
        os << "\n    }" << (d + 1 < reports.size() ? "," : "")
           << '\n';
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(
        argc, argv,
        bench::commonOptions()
            .integer("campaign", 10, "campaign cells per detector")
            .text("invariants", "default",
                  "safety thresholds: default|strict|loose")
            .flag("smoke", "one detector, four cells (CI)")
            .text("json", "BENCH_chaos.json",
                  "machine-readable output path"));
    const bool smoke = env.options().flag("smoke");

    stack::SafetyOptions invariants;
    try {
        invariants =
            invariantsFor(env.options().text("invariants"));
    } catch (const std::invalid_argument &error) {
        std::cerr << error.what() << '\n';
        return 2;
    }

    std::vector<perception::DetectorKind> kinds = bench::detectors;
    if (smoke)
        kinds.resize(1);
    std::size_t cells = static_cast<std::size_t>(
        std::max(1L, env.options().integer("campaign")));
    if (smoke && !env.options().given("campaign"))
        cells = 4;

    std::uint64_t totalViolated = 0;
    std::vector<DetectorReport> reports;
    chaos::CampaignSpec shape;

    for (std::size_t d = 0; d < kinds.size(); ++d) {
        const auto kind = kinds[d];
        DetectorReport report;
        report.name = perception::detectorName(kind);

        chaos::CampaignSpec cspec;
        cspec.seed = env.seed() + 8 * d;
        cspec.cells = cells;
        cspec.base = env.spec(kind).degraded().invariants(
            invariants);
        shape = cspec;
        chaos::CampaignRunner campaign(env.runner(), cspec);
        report.outcomes = campaign.run();

        util::Table table(
            std::string("Chaos campaign, with ") + report.name,
            {"cell", "faults", "class", "violations",
             "first violation", "unrecovered", "p99 ms"});
        for (const chaos::CellOutcome &out : report.outcomes) {
            ++report.classCount[static_cast<std::size_t>(out.cls)];
            if (out.cls == chaos::CellClass::Violated)
                ++totalViolated;
            table.addRow({std::to_string(out.cell.index),
                          faultsCell(out.cell),
                          chaos::cellClassName(out.cls),
                          std::to_string(out.violationCount),
                          out.firstViolation,
                          std::to_string(out.unrecovered),
                          util::Table::num(out.worstPathMs, 1)});
        }
        env.print(table);

        report.frontier = chaos::resilienceFrontier(report.outcomes);
        util::Table frontier(
            std::string("Resilience frontier, with ") + report.name,
            {"fault kind", "cells", "violated", "max survived i",
             "min violated i"});
        for (const chaos::FrontierRow &row : report.frontier)
            frontier.addRow(
                {fault::faultKindName(row.kind),
                 std::to_string(row.cells),
                 std::to_string(row.violated),
                 util::Table::num(row.maxSurvivedIntensity, 2),
                 util::Table::num(row.minViolatedIntensity, 2)});
        env.print(frontier);
        std::printf("classes: %llu recovered, %llu degraded, %llu"
                    " violated\n\n",
                    static_cast<unsigned long long>(
                        report.classCount[0]),
                    static_cast<unsigned long long>(
                        report.classCount[1]),
                    static_cast<unsigned long long>(
                        report.classCount[2]));

        // Delta-debug the first violating cell to its minimal repro.
        for (const chaos::CellOutcome &out : report.outcomes) {
            if (out.cls != chaos::CellClass::Violated)
                continue;
            report.repro = chaos::minimizeViolation(
                env.runner(), cspec.base, out.cell.plan);
            report.hasRepro = true;
            report.reproCell = out.cell.index;

            // The acceptance contract: every adopted step made the
            // plan strictly lighter (fewer, shorter or weaker
            // faults), violation preserved. A sampled cell can
            // itself be locally minimal — then the fixed point is
            // the identity and no step is kept.
            bool adopted = false;
            for (const chaos::MinimizeStep &step :
                 report.repro.steps)
                adopted |= step.kept;
            AV_ASSERT(adopted
                          ? planWeight(report.repro.plan) <
                                planWeight(out.cell.plan)
                          : planWeight(report.repro.plan) ==
                                planWeight(out.cell.plan),
                      "minimizer failed to shrink cell ",
                      out.cell.index);

            std::printf("minimal repro (cell %zu, %s, %llu"
                        " candidate replays):\n",
                        out.cell.index,
                        stack::invariantName(
                            report.repro.invariant),
                        static_cast<unsigned long long>(
                            report.repro.evaluations));
            for (const std::string &line :
                 planLines(report.repro.plan))
                std::printf("  %s\n", line.c_str());
            std::printf("\n");
            break;
        }
        reports.push_back(std::move(report));
    }

    AV_ASSERT(totalViolated >= 1,
              "seeded campaign found no safety violation — "
              "sampler or monitor regressed");

    const std::string jsonPath = env.options().text("json");
    if (!jsonPath.empty() && !smoke) {
        std::ofstream os(jsonPath, std::ios::trunc);
        if (os) {
            writeJson(os, reports, shape);
            std::cerr << "wrote " << jsonPath << "\n";
        } else {
            std::cerr << "cannot write " << jsonPath << "\n";
        }
    }

    std::cout
        << "Reading: a cell is 'violated' when any armed safety"
           " invariant recorded a breach, 'degraded' when every"
           " invariant held but some fault never recovered, else"
           " 'recovered'. The frontier shows, per fault kind, the"
           " strongest sampled intensity survived and the weakest"
           " that (in compound) violated. The minimal repro is the"
           " delta-debugged plan: no single fault drop, window"
           " halving or intensity weakening preserves the breach.\n";
    return 0;
}
