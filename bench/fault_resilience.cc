/**
 * @file
 * Fault-resilience characterization (beyond the paper): every fault
 * class from av::fault injected into the full stack, per detector,
 * with the graceful-degradation responses armed. For each (detector,
 * fault) cell the report shows how long the watched output stayed
 * alive inside the fault window, how quickly it recovered after the
 * window closed, how the 100 ms end-to-end deadline budget suffered,
 * how much queue dropping inflated versus an undisturbed baseline,
 * and which degradation responses fired (LiDAR-only fusion
 * fallbacks, tracker coasts, NDT reseeds, watchdog stale events).
 *
 * The schedule scales with --duration so short smoke runs and long
 * characterization runs exercise the same phases: onset at T/3, a
 * window of T/4, crash respawn after T/8.
 */

#include <cstdio>
#include <iostream>
#include <iterator>

#include "common.hh"

using namespace av;

namespace {

/** One fault class to characterize, with its scaled schedule. */
struct FaultCase
{
    const char *name;
    fault::FaultPlan (*plan)(sim::Tick onset, sim::Tick window,
                             sim::Tick respawn);
};

const FaultCase faultCases[] = {
    {"lidar_blackout",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().lidarBlackout(onset, window);
     }},
    {"camera_blackout",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().cameraBlackout(onset, window);
     }},
    {"gnss_blackout",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().gnssBlackout(onset, window);
     }},
    {"frame_loss",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().frameLoss(world::topics::pointsRaw,
                                             onset, window, 0.5);
     }},
    {"node_crash",
     [](sim::Tick onset, sim::Tick, sim::Tick respawn) {
         return fault::FaultPlan().nodeCrash("euclidean_cluster",
                                             onset, respawn);
     }},
    {"msg_delay",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().messageDelay(
             perception::topics::lidarObjects, onset, window,
             50 * sim::oneMs);
     }},
    {"msg_duplicate",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().messageDuplicate(
             perception::topics::imageObjects, onset, window, 0.5);
     }},
    {"msg_corrupt",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().messageCorrupt(
             perception::topics::filteredPoints, onset, window, 0.3);
     }},
    {"gpu_throttle",
     [](sim::Tick onset, sim::Tick window, sim::Tick) {
         return fault::FaultPlan().gpuThrottle(onset, window, 0.4);
     }},
};

/** Fraction of end-to-end path samples over the 100 ms budget. */
double
deadlineMissRate(const prof::RunResult &run)
{
    std::size_t total = 0, missed = 0;
    for (const prof::NamedSeries &row : run.paths) {
        for (double ms : row.series.samples()) {
            ++total;
            if (ms > 100.0)
                ++missed;
        }
    }
    return total ? double(missed) / double(total) : 0.0;
}

/** Whole-graph drop rate: dropped over offered, all topics pooled. */
double
totalDropRate(const prof::RunResult &run)
{
    std::uint64_t delivered = 0, dropped = 0;
    for (const prof::DropRow &row : run.drops) {
        delivered += row.delivered;
        dropped += row.dropped;
    }
    const std::uint64_t offered = delivered + dropped;
    return offered ? double(dropped) / double(offered) : 0.0;
}

std::string
countCell(const prof::RunResult &run, const char *counter)
{
    return util::Table::num(run.resilienceOf(counter), 0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    const sim::Tick onset = env.duration() / 3;
    const sim::Tick window = env.duration() / 4;
    const sim::Tick respawn = env.duration() / 8;

    // Submit everything up front: per detector one undisturbed
    // baseline (degradation armed but idle) plus one run per fault
    // class, all fanned across the worker pool.
    std::vector<std::size_t> baselines;
    std::vector<std::vector<std::size_t>> faulted;
    for (const auto kind : bench::detectors) {
        baselines.push_back(
            env.runner().submit(env.spec(kind).degraded()));
        faulted.emplace_back();
        for (const FaultCase &fc : faultCases) {
            auto spec = env.spec(kind).degraded().faults(
                fc.plan(onset, window, respawn));
            spec.named(std::string(perception::detectorName(kind)) +
                       " + " + fc.name);
            faulted.back().push_back(env.runner().submit(spec));
        }
    }

    for (std::size_t d = 0; d < bench::detectors.size(); ++d) {
        const auto kind = bench::detectors[d];
        const prof::RunResult &base =
            env.runner().result(baselines[d]);
        const double base_drop = totalDropRate(base);

        util::Table table(
            std::string("Fault resilience, with ") +
                perception::detectorName(kind),
            {"fault", "recovery ms", "pub in window",
             "deadline miss", "drop vs clean", "lidar-only",
             "coasts", "reseeds", "stale events"});
        for (std::size_t f = 0; f < std::size(faultCases); ++f) {
            const prof::RunResult &run =
                env.runner().result(faulted[d][f]);
            // Single-fault plans: the one outcome row is the cell.
            const fault::FaultOutcome &outcome = run.faults.at(0);
            const double drop = totalDropRate(run);
            const std::string inflation =
                base_drop > 0.0
                    ? util::Table::num(drop / base_drop, 2) + "x"
                    : util::Table::pct(drop);
            table.addRow(
                {faultCases[f].name,
                 outcome.recoveryMs < 0.0
                     ? std::string("never")
                     : util::Table::num(outcome.recoveryMs, 1),
                 std::to_string(outcome.publishedDuringWindow),
                 util::Table::pct(deadlineMissRate(run)),
                 inflation, countCell(run, "fusion_lidar_only"),
                 countCell(run, "tracker_coasts"),
                 countCell(run, "ndt_reseeds"),
                 countCell(run, "watchdog_stale_events")});
        }
        env.print(table);
        std::printf("baseline (no fault): deadline miss %s, drop"
                    " rate %s\n\n",
                    util::Table::pct(deadlineMissRate(base)).c_str(),
                    util::Table::pct(base_drop).c_str());
    }

    std::cout
        << "Reading: 'pub in window' > 0 means degradation kept the"
           " watched output publishing through the fault;"
           " 'recovery ms' is fault onset to the first publication"
           " after the window closes. Sensor blackouts stress the"
           " fallback paths (LiDAR-only fusion, tracker coasting,"
           " NDT reseeding); transport faults mostly show up as"
           " deadline misses and drop inflation.\n";
    return 0;
}
