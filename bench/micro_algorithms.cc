/**
 * @file
 * google-benchmark microbenchmarks of the algorithm cores (host
 * performance of the functional implementations; no simulation).
 * Useful for keeping the library's own hot paths honest.
 */

#include <benchmark/benchmark.h>

#include "perception/costmap.hh"
#include "perception/euclidean_cluster.hh"
#include "perception/imm_ukf_pda.hh"
#include "perception/motion_predict.hh"
#include "perception/ndt.hh"
#include "perception/ray_ground_filter.hh"
#include "pointcloud/kdtree.hh"
#include "pointcloud/voxel_grid.hh"
#include "util/random.hh"
#include "world/map_builder.hh"
#include "world/scenario.hh"
#include "world/sensors.hh"

namespace {

using namespace av;

pc::PointCloud
scanAt(sim::Tick t)
{
    static const world::Scenario scenario;
    static const world::LidarModel lidar;
    return lidar.scan(scenario, t);
}

void
BM_LidarScan(benchmark::State &state)
{
    const world::Scenario scenario;
    const world::LidarModel lidar;
    sim::Tick t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lidar.scan(scenario, t));
        t += 100 * sim::oneMs;
    }
}
BENCHMARK(BM_LidarScan)->Unit(benchmark::kMillisecond);

void
BM_VoxelGridDownsample(benchmark::State &state)
{
    const pc::PointCloud scan = scanAt(5 * sim::oneSec);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            pc::voxelGridDownsample(scan, 1.5));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(scan.size()));
}
BENCHMARK(BM_VoxelGridDownsample)->Unit(benchmark::kMicrosecond);

void
BM_KdTreeBuild(benchmark::State &state)
{
    const pc::PointCloud scan = scanAt(5 * sim::oneSec);
    for (auto _ : state) {
        pc::KdTree tree;
        tree.build(scan);
        benchmark::DoNotOptimize(tree.size());
    }
}
BENCHMARK(BM_KdTreeBuild)->Unit(benchmark::kMicrosecond);

void
BM_KdTreeRadiusSearch(benchmark::State &state)
{
    const pc::PointCloud scan = scanAt(5 * sim::oneSec);
    pc::KdTree tree;
    tree.build(scan);
    util::Rng rng(1);
    std::vector<std::uint32_t> found;
    for (auto _ : state) {
        const geom::Vec3 q{rng.uniform(-30, 30),
                           rng.uniform(-30, 30), 1.0};
        benchmark::DoNotOptimize(
            tree.radiusSearch(q, 0.6, found));
    }
}
BENCHMARK(BM_KdTreeRadiusSearch);

void
BM_RayGroundFilter(benchmark::State &state)
{
    const pc::PointCloud scan = scanAt(5 * sim::oneSec);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            perception::rayGroundFilter(
                scan, perception::RayGroundConfig()));
}
BENCHMARK(BM_RayGroundFilter)->Unit(benchmark::kMicrosecond);

void
BM_EuclideanCluster(benchmark::State &state)
{
    const pc::PointCloud scan = scanAt(5 * sim::oneSec);
    const auto split = perception::rayGroundFilter(
        scan, perception::RayGroundConfig());
    const auto cropped = perception::cropForClustering(
        split.noGround, perception::ClusterConfig());
    for (auto _ : state)
        benchmark::DoNotOptimize(perception::euclideanCluster(
            cropped, perception::ClusterConfig()));
}
BENCHMARK(BM_EuclideanCluster)->Unit(benchmark::kMicrosecond);

void
BM_NdtAlign(benchmark::State &state)
{
    const world::Scenario scenario;
    const world::LidarModel lidar;
    world::MapBuilderConfig map_cfg;
    map_cfg.scanInterval = 2 * sim::oneSec;
    const world::MapBuilder builder(map_cfg);
    const auto map =
        builder.build(scenario, lidar, 60 * sim::oneSec);
    perception::NdtMatcher matcher;
    matcher.setMap(map);
    const auto scan = pc::voxelGridDownsample(
        scanAt(5 * sim::oneSec), 1.5);
    const geom::Pose2 truth =
        scenario.egoPoseAt(5 * sim::oneSec);
    for (auto _ : state) {
        geom::Pose2 guess = truth;
        guess.p.x += 0.4;
        guess.yaw += 0.02;
        benchmark::DoNotOptimize(matcher.align(scan, guess));
    }
}
BENCHMARK(BM_NdtAlign)->Unit(benchmark::kMillisecond);

void
BM_TrackerUpdate(benchmark::State &state)
{
    const auto n_objects = state.range(0);
    perception::ImmUkfPdaTracker tracker;
    util::Rng rng(2);
    sim::Tick t = 0;
    for (auto _ : state) {
        perception::ObjectList list;
        for (long i = 0; i < n_objects; ++i) {
            perception::DetectedObject obj;
            obj.position = {static_cast<double>(i) * 15.0 +
                                rng.gaussian(0, 0.1),
                            rng.gaussian(0, 0.1)};
            list.objects.push_back(obj);
        }
        t += 100 * sim::oneMs;
        benchmark::DoNotOptimize(tracker.update(list, t));
    }
}
BENCHMARK(BM_TrackerUpdate)->Arg(4)->Arg(16)->Arg(64);

void
BM_CostmapObjects(benchmark::State &state)
{
    perception::ObjectList objects;
    util::Rng rng(3);
    for (int i = 0; i < 12; ++i) {
        perception::DetectedObject obj;
        obj.position = {rng.uniform(-25, 25), rng.uniform(-25, 25)};
        obj.length = 4.4;
        obj.width = 1.8;
        obj.hasVelocity = true;
        obj.velocity = {rng.uniform(-8, 8), rng.uniform(-8, 8)};
        obj.yaw = rng.uniform(-3, 3);
        objects.objects.push_back(obj);
    }
    objects = perception::predictMotion(objects,
                                        perception::PredictConfig());
    for (auto _ : state)
        benchmark::DoNotOptimize(perception::generateObjectCostmap(
            objects, geom::Pose2{}, perception::CostmapConfig()));
}
BENCHMARK(BM_CostmapObjects)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
