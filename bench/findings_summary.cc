/**
 * @file
 * CLI wrapper around the consolidated five-findings report; the body
 * lives in findings.cc so tests can run it in-process (see
 * tests/bench/test_determinism.cc).
 *
 * On top of the report this wrapper emits BENCH_transport.json — a
 * machine-readable side artifact with the headline numbers (Fig. 6
 * worst-path latency, Table III drop rates, transport payload
 * accounting) plus the cold/warm wall-clock of the whole summary.
 * The JSON is the *only* place wall-clock appears: the report stream
 * on stdout stays byte-identical run to run, which is what the
 * determinism tests pin.
 */

#include <chrono>
#include <fstream>
#include <iostream>

#include "findings.hh"

namespace {

/** Escape a string for a JSON literal (labels are tame, but be safe). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
writeTransportJson(std::ostream &os,
                   const std::vector<av::prof::RunResult> &runs,
                   double wallSeconds, int failed)
{
    os << "{\n";
    os << "  \"bench\": \"findings_summary\",\n";
    os << "  \"wall_clock_s\": " << wallSeconds << ",\n";
    os << "  \"findings_failed\": " << failed << ",\n";
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const av::prof::RunResult &run = runs[i];
        os << "    {\n";
        os << "      \"label\": \"" << jsonEscape(run.label)
           << "\",\n";
        os << "      \"transport_mode\": \"" << run.transportMode
           << "\",\n";
        os << "      \"worst_path_mean_ms\": "
           << run.worstCaseMean() << ",\n";
        os << "      \"worst_path_p99_ms\": " << run.worstCaseP99()
           << ",\n";
        os << "      \"drops\": [\n";
        bool firstDrop = true;
        for (const auto &row : run.drops) {
            if (row.delivered == 0)
                continue;
            if (!firstDrop)
                os << ",\n";
            firstDrop = false;
            os << "        {\"topic\": \"" << jsonEscape(row.topic)
               << "\", \"node\": \"" << jsonEscape(row.node)
               << "\", \"delivered\": " << row.delivered
               << ", \"dropped\": " << row.dropped
               << ", \"drop_rate\": " << row.dropRate() << "}";
        }
        os << "\n      ],\n";
        os << "      \"transport\": {\"published\": "
           << run.transport.published
           << ", \"deliveries\": " << run.transport.deliveries
           << ", \"payload_copies\": "
           << run.transport.payloadCopies
           << ", \"loaned_deliveries\": "
           << run.transport.loanedDeliveries
           << ", \"moved_publishes\": "
           << run.transport.movedPublishes
           << ", \"forced_copies\": " << run.transport.forcedCopies
           << "}\n";
        os << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    av::bench::BenchEnv env(
        argc, argv,
        av::bench::commonOptions().text(
            "json", "BENCH_transport.json",
            "transport-findings JSON path (empty = skip)"));

    // Wall-clock bounds the whole summary (replay + render): the
    // honest old-vs-new number for the host-side transport work.
    // avlint: allow(wall-clock)
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<av::prof::RunResult> runs;
    const int failed =
        av::bench::runFindingsSummary(env, std::cout, &runs);
    // avlint: allow(wall-clock)
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(t1 - t0).count();

    const std::string jsonPath = env.options().text("json");
    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath, std::ios::trunc);
        if (os) {
            writeTransportJson(os, runs, wall, failed);
            std::cerr << "wrote " << jsonPath << " (wall-clock "
                      << wall << " s)\n";
        } else {
            std::cerr << "cannot write " << jsonPath << "\n";
        }
    }

    return failed == 0 ? 0 : 1;
}
