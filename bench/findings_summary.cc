/**
 * @file
 * CLI wrapper around the consolidated five-findings report; the body
 * lives in findings.cc so tests can run it in-process (see
 * tests/bench/test_determinism.cc).
 */

#include <iostream>

#include "findings.hh"

int
main(int argc, char **argv)
{
    av::bench::BenchEnv env(argc, argv);
    const int failed =
        av::bench::runFindingsSummary(env, std::cout);
    return failed == 0 ? 0 : 1;
}
