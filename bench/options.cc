#include "options.hh"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "exp/runner.hh"
#include "util/logging.hh"

namespace av::bench {

namespace {

const char *
kindName(int kind)
{
    switch (kind) {
    case 0: return "flag";
    case 1: return "integer";
    case 2: return "real";
    default: return "string";
    }
}

bool
parseBool(const std::string &value, bool &out)
{
    if (value == "true" || value == "1" || value == "yes" ||
        value == "on") {
        out = true;
        return true;
    }
    if (value == "false" || value == "0" || value == "no" ||
        value == "off") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

BenchOptions &
BenchOptions::declare(std::string name, Kind kind,
                      std::string fallback, std::string help)
{
    AV_ASSERT(find(name) == nullptr, "option --", name,
              " declared twice");
    Option opt;
    opt.name = std::move(name);
    opt.kind = kind;
    opt.value = std::move(fallback);
    opt.help = std::move(help);
    options_.push_back(std::move(opt));
    return *this;
}

BenchOptions &
BenchOptions::flag(std::string name, std::string help)
{
    return declare(std::move(name), Kind::Flag, "false",
                   std::move(help));
}

BenchOptions &
BenchOptions::integer(std::string name, long fallback,
                      std::string help)
{
    return declare(std::move(name), Kind::Integer,
                   std::to_string(fallback), std::move(help));
}

BenchOptions &
BenchOptions::real(std::string name, double fallback,
                   std::string help)
{
    std::ostringstream os;
    os << fallback;
    return declare(std::move(name), Kind::Real, os.str(),
                   std::move(help));
}

BenchOptions &
BenchOptions::text(std::string name, std::string fallback,
                   std::string help)
{
    return declare(std::move(name), Kind::Text, std::move(fallback),
                   std::move(help));
}

BenchOptions::Option *
BenchOptions::find(const std::string &name)
{
    for (Option &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

const BenchOptions::Option *
BenchOptions::find(const std::string &name) const
{
    for (const Option &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

void
BenchOptions::fail(const std::string &message) const
{
    throw std::invalid_argument(message + "\n" + usage());
}

std::string
BenchOptions::usage() const
{
    std::ostringstream os;
    os << "options:";
    for (const Option &opt : options_) {
        os << "\n  --" << opt.name;
        if (opt.kind != Kind::Flag)
            os << " <" << kindName(static_cast<int>(opt.kind))
               << ">";
        os << "  " << opt.help;
        if (opt.kind != Kind::Flag && !opt.value.empty())
            os << " (default " << opt.value << ")";
    }
    return os.str();
}

BenchOptions &
BenchOptions::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }

        std::string key = arg.substr(2);
        std::string value;
        bool have_value = false;
        const std::size_t eq = key.find('=');
        if (eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
            have_value = true;
        }

        Option *opt = find(key);
        if (opt == nullptr)
            fail("unknown flag --" + key);

        if (!have_value && opt->kind != Kind::Flag) {
            // Value-typed options consume the next token.
            if (i + 1 >= argc ||
                std::string(argv[i + 1]).rfind("--", 0) == 0)
                fail("flag --" + key + " requires a " +
                     kindName(static_cast<int>(opt->kind)) +
                     " value");
            value = argv[++i];
            have_value = true;
        }

        switch (opt->kind) {
        case Kind::Flag: {
            bool parsed = true;
            if (have_value && !parseBool(value, parsed))
                fail("flag --" + key +
                     " expects true/false, got '" + value + "'");
            opt->value = parsed ? "true" : "false";
            break;
        }
        case Kind::Integer: {
            char *end = nullptr;
            std::strtol(value.c_str(), &end, 10);
            if (value.empty() || end == nullptr || *end != '\0')
                fail("flag --" + key + " expects an integer, got '" +
                     value + "'");
            opt->value = value;
            break;
        }
        case Kind::Real: {
            char *end = nullptr;
            std::strtod(value.c_str(), &end);
            if (value.empty() || end == nullptr || *end != '\0')
                fail("flag --" + key + " expects a number, got '" +
                     value + "'");
            opt->value = value;
            break;
        }
        case Kind::Text:
            opt->value = value;
            break;
        }
        opt->given = true;
    }
    return *this;
}

const BenchOptions::Option &
BenchOptions::require(const std::string &name, Kind kind) const
{
    const Option *opt = find(name);
    AV_ASSERT(opt != nullptr, "option --", name, " was not declared");
    AV_ASSERT(opt->kind == kind, "option --", name, " is a ",
              kindName(static_cast<int>(opt->kind)), ", read as ",
              kindName(static_cast<int>(kind)));
    return *opt;
}

bool
BenchOptions::flag(const std::string &name) const
{
    return require(name, Kind::Flag).value == "true";
}

long
BenchOptions::integer(const std::string &name) const
{
    return std::strtol(require(name, Kind::Integer).value.c_str(),
                       nullptr, 10);
}

double
BenchOptions::real(const std::string &name) const
{
    return std::strtod(require(name, Kind::Real).value.c_str(),
                       nullptr);
}

const std::string &
BenchOptions::text(const std::string &name) const
{
    return require(name, Kind::Text).value;
}

bool
BenchOptions::given(const std::string &name) const
{
    const Option *opt = find(name);
    return opt != nullptr && opt->given;
}

BenchOptions
commonOptions()
{
    return BenchOptions()
        .integer("duration", 60,
                 "drive length in seconds (the paper used 480)")
        .integer("seed", 2020, "scenario seed")
        .flag("csv", "machine-readable output")
        .integer("jobs", 0,
                 "worker threads (0 = hardware concurrency)")
        .text("cache-dir", exp::defaultCacheDir(),
              "result-cache directory")
        .flag("no-cache", "disable the result cache")
        .text("transport", "loan",
              "intra-process transport: loan, copy or both")
        .flag("trace",
              "record the execution DAG and report the critical "
              "path per run");
}

} // namespace av::bench
