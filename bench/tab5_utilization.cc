/**
 * @file
 * Regenerates the paper's Table V: mean CPU and GPU utilization
 * share per node, per detector, sampled at 1 Hz like atop /
 * nvidia-smi. CPU share is the fraction of the whole processor; GPU
 * share is device residency (active or queued), which is how
 * per-process GPU monitoring attributes time.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);

    // Owner -> (cpu share, gpu share) per detector.
    std::map<std::string, std::map<std::string, std::pair<double,
                                                          double>>>
        rows;
    std::map<std::string, std::pair<double, double>> totals;

    std::vector<std::size_t> jobs;
    for (const auto kind : bench::detectors)
        jobs.push_back(env.runner().submit(env.spec(kind)));

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const prof::RunResult &run = env.runner().result(jobs[i]);
        const std::string which =
            perception::detectorName(bench::detectors[i]);
        for (const auto &row : run.utilization) {
            rows[row.owner][which] = {row.cpuShare.mean(),
                                      row.gpuShare.mean()};
        }
        totals[which] = {run.totalCpu.mean(), run.totalGpu.mean()};
    }

    util::Table table(
        "Table V — CPU / GPU utilization share per node",
        {"node", "CPU SSD512", "CPU SSD300", "CPU YOLO",
         "GPU SSD512", "GPU SSD300", "GPU YOLO"});
    const auto cell = [&](const std::string &owner,
                          const char *which, bool gpu) {
        const auto it = rows.find(owner);
        if (it == rows.end())
            return std::string("-");
        const auto jt = it->second.find(which);
        if (jt == it->second.end())
            return std::string("-");
        const double v = gpu ? jt->second.second : jt->second.first;
        return util::Table::pct(v);
    };
    for (const auto &[owner, per] : rows) {
        (void)per;
        table.addRow({owner, cell(owner, "SSD512", false),
                      cell(owner, "SSD300", false),
                      cell(owner, "YOLOv3", false),
                      cell(owner, "SSD512", true),
                      cell(owner, "SSD300", true),
                      cell(owner, "YOLOv3", true)});
    }
    table.addRow({"TOTAL (machine)",
                  util::Table::pct(totals["SSD512"].first),
                  util::Table::pct(totals["SSD300"].first),
                  util::Table::pct(totals["YOLOv3"].first),
                  util::Table::pct(totals["SSD512"].second),
                  util::Table::pct(totals["SSD300"].second),
                  util::Table::pct(totals["YOLOv3"].second)});
    env.print(table);

    std::cout
        << "Paper reference (Table V / Finding 3): vision is the"
           " top CPU consumer with SSD512 (12.95%) and uses less"
           " than half of that with YOLO; total utilization stays"
           " under ~40% on both devices — resource availability is"
           " not the bottleneck.\n";
    return 0;
}
