/**
 * @file
 * Regenerates the paper's Fig. 7: CPU dynamic-instruction mix of the
 * six critical nodes (loads / stores / branches / int / fp / simd /
 * other), measured from the instrumented algorithms over a full
 * replay (SSD512 configuration, as the paper's §IV-C uses).
 */

#include <iostream>

#include "common.hh"

using namespace av;

int
main(int argc, char **argv)
{
    bench::BenchEnv env(argc, argv);
    const prof::RunResult &run =
        env.run(perception::DetectorKind::Ssd512);

    util::Table table("Fig. 7 — instruction mix (SSD512 scenario)",
                      {"node", "loads", "stores", "branches", "int",
                       "fp", "simd", "other", "ld+st"});
    for (const auto &row : run.counters) {
        bool wanted = false;
        for (const auto &name : bench::tab7Nodes)
            wanted |= row.node == name;
        if (!wanted)
            continue;
        const double total =
            static_cast<double>(row.mix.total());
        if (total <= 0)
            continue;
        const auto pct = [&](std::uint64_t v) {
            return util::Table::pct(static_cast<double>(v) / total,
                                    1);
        };
        table.addRow(
            {row.node, pct(row.mix.loads), pct(row.mix.stores),
             pct(row.mix.branches), pct(row.mix.intAlu),
             pct(row.mix.fpAlu + row.mix.fpDiv), pct(row.mix.simd),
             pct(row.mix.other),
             util::Table::pct(row.mix.memFraction(), 1)});
    }
    env.print(table);

    std::cout << "Paper reference (Fig. 7 / SIV-C):"
                 " euclidean_cluster ~50% loads+stores; ndt_matching"
                 " ~52% loads+stores; costmap_generator the most"
                 " compute-bound (fewest loads/stores);"
                 " imm_ukf_pda_tracker control-flow heavy.\n";
    return 0;
}
