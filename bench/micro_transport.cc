/**
 * @file
 * Transport microbenchmark: the host-side cost of the minros
 * intra-process transport, old (Copy) vs new (Loan) path.
 *
 *  - fan-out: publish large payloads to several subscribers under
 *    both TransportModes, reporting wall-clock and the transport
 *    counters (Loan must record zero payload copies)
 *  - ring: raw SpscRing throughput, single-threaded and with a real
 *    producer/consumer thread pair (the lock-free protocol's
 *    cross-thread case; TSan proves it clean)
 *
 * --smoke shrinks every size so the binary doubles as a sanitizer
 * smoke test: scripts/check.sh runs it under ASan/UBSan and TSan.
 * Wall-clock output goes to stdout — this is a host bench, not a
 * simulated result, so it is outside the determinism contract.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "hw/machine.hh"
#include "ros/ros.hh"
#include "ros/spsc_ring.hh"
#include "util/flags.hh"
#include "util/logging.hh"

namespace {

using namespace av;

/** A payload heavy enough that deep copies dominate: ~1 MiB. */
struct Blob
{
    std::vector<std::uint64_t> words;
};

// avlint: allow(wall-clock)
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Publish @p messages Blobs of @p words words to @p subs
 * subscribers and drain the event queue; returns wall seconds.
 */
double
fanOut(ros::TransportMode mode, std::size_t messages,
       std::size_t words, unsigned subs,
       ros::TransportCounters &countersOut)
{
    sim::EventQueue eq;
    hw::MachineConfig mcfg;
    hw::Machine machine(eq, mcfg);
    ros::TransportConfig tc;
    tc.mode = mode;
    ros::RosGraph graph(machine, tc);

    std::vector<std::unique_ptr<ros::Node>> nodes;
    std::size_t consumed = 0;
    for (unsigned i = 0; i < subs; ++i) {
        auto node = std::make_unique<ros::Node>(
            graph, "sink" + std::to_string(i));
        node->subscribe<Blob>(
            "/blob", 2,
            [&consumed](const ros::Stamped<Blob> &msg,
                        std::function<void()> done) {
                consumed += msg.data.words.back();
                done();
            });
        nodes.push_back(std::move(node));
    }

    auto pub = graph.advertise<Blob>("/blob");
    const auto t0 = Clock::now();
    for (std::size_t m = 0; m < messages; ++m) {
        eq.scheduleAfter(sim::oneMs, [&pub, words] {
            Blob blob;
            blob.words.assign(words, 1);
            const std::size_t bytes = blob.words.size() * 8;
            pub.publish(ros::Header{}, std::move(blob), bytes);
        });
        eq.runUntil();
    }
    const auto t1 = Clock::now();
    AV_ASSERT(consumed == messages * subs, "lost deliveries");
    countersOut = graph.transportCounters();
    return seconds(t0, t1);
}

/** Single-threaded push/pop pairs; returns ops (push+pop) per sec. */
double
ringSingleThread(std::size_t ops)
{
    ros::SpscRing<std::uint64_t> ring(64);
    std::uint64_t sink = 0;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
        ring.pushDropOldest(i);
        std::uint64_t out = 0;
        ring.pop(&out);
        sink += out;
    }
    const auto t1 = Clock::now();
    AV_ASSERT(sink > 0 || ops == 0, "ring lost everything");
    return static_cast<double>(ops) / seconds(t0, t1);
}

/**
 * Real producer/consumer thread pair: the producer pushes @p ops
 * values with tryPush (spinning on full), the consumer pops until it
 * has read all of them. Exercises the cross-thread acquire/release
 * protocol — the TSan target.
 */
double
ringTwoThreads(std::size_t ops)
{
    ros::SpscRing<std::uint64_t> ring(1024);
    std::uint64_t sum = 0;
    const auto t0 = Clock::now();
    std::thread producer([&ring, ops] {
        for (std::size_t i = 1; i <= ops; ++i) {
            std::uint64_t value = i;
            while (!ring.tryPush(value))
                std::this_thread::yield();
        }
    });
    std::thread consumer([&ring, &sum, ops] {
        std::size_t got = 0;
        while (got < ops) {
            std::uint64_t out = 0;
            if (ring.pop(&out)) {
                sum += out;
                ++got;
            } else {
                std::this_thread::yield();
            }
        }
    });
    producer.join();
    consumer.join();
    const auto t1 = Clock::now();
    AV_ASSERT(sum == ops * (ops + 1) / 2,
              "ring dropped or duplicated values cross-thread");
    return static_cast<double>(ops) / seconds(t0, t1);
}

} // namespace

int
main(int argc, char **argv)
{
    const util::Flags flags(
        argc, argv, {"smoke", "messages", "words", "subs", "ops"});
    const bool smoke = flags.getBool("smoke");
    const auto messages = static_cast<std::size_t>(
        flags.getInt("messages", smoke ? 50 : 2000));
    const auto words = static_cast<std::size_t>(
        flags.getInt("words", smoke ? 1u << 12 : 1u << 17));
    const auto subs = static_cast<unsigned>(
        flags.getInt("subs", 3));
    const auto ops = static_cast<std::size_t>(
        flags.getInt("ops", smoke ? 20000 : 2000000));

    std::printf("micro_transport: %zu messages x %zu words x %u "
                "subscribers%s\n",
                messages, words, subs, smoke ? " (smoke)" : "");

    for (const ros::TransportMode mode :
         {ros::TransportMode::Copy, ros::TransportMode::Loan}) {
        ros::TransportCounters counters;
        const double wall = fanOut(mode, messages, words, subs,
                                   counters);
        std::printf("  fan-out [%4s]: %8.2f ms wall, %llu "
                    "deliveries, %llu payload copies, %llu loaned\n",
                    ros::transportModeName(mode), wall * 1e3,
                    static_cast<unsigned long long>(
                        counters.deliveries),
                    static_cast<unsigned long long>(
                        counters.payloadCopies),
                    static_cast<unsigned long long>(
                        counters.loanedDeliveries));
        if (mode == ros::TransportMode::Copy)
            AV_ASSERT(counters.payloadCopies ==
                          messages * subs,
                      "copy mode must deep-copy per delivery");
        else
            AV_ASSERT(counters.payloadCopies == 0 &&
                          counters.loanedDeliveries ==
                              messages * subs,
                      "loan mode must not copy payloads");
    }

    std::printf("  ring 1-thread: %8.2f M ops/s\n",
                ringSingleThread(ops) / 1e6);
    std::printf("  ring 2-thread: %8.2f M ops/s\n",
                ringTwoThreads(ops) / 1e6);
    return 0;
}
