/**
 * @file
 * Unit tests for pointcloud: container ops, kd-tree queries against
 * brute force, voxel grids.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "pointcloud/cloud.hh"
#include "pointcloud/kdtree.hh"
#include "pointcloud/voxel_grid.hh"
#include "util/random.hh"

namespace {

using namespace av::pc;
using av::geom::Vec3;

PointCloud
randomCloud(std::size_t n, std::uint64_t seed, double span = 50.0)
{
    av::util::Rng rng(seed);
    PointCloud cloud;
    cloud.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back(Point::fromVec({rng.uniform(-span, span),
                                        rng.uniform(-span, span),
                                        rng.uniform(-5.0, 5.0)}));
    }
    return cloud;
}

TEST(Cloud, TransformRoundTrip)
{
    const PointCloud cloud = randomCloud(100, 1);
    const av::geom::Pose pose =
        av::geom::Pose::fromXyzRpy(3, -2, 1, 0.1, 0.0, 0.7);
    PointCloud moved = transformed(cloud, pose);
    transformInPlace(moved, pose.inverse());
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        EXPECT_NEAR(moved[i].x, cloud[i].x, 1e-4);
        EXPECT_NEAR(moved[i].y, cloud[i].y, 1e-4);
        EXPECT_NEAR(moved[i].z, cloud[i].z, 1e-4);
    }
}

TEST(Cloud, CentroidOfSymmetricPair)
{
    PointCloud c;
    c.push_back(Point::fromVec({1, 2, 3}));
    c.push_back(Point::fromVec({-1, -2, -3}));
    const Vec3 m = centroid(c);
    EXPECT_NEAR(m.x, 0.0, 1e-6);
    EXPECT_NEAR(m.y, 0.0, 1e-6);
    EXPECT_NEAR(m.z, 0.0, 1e-6);
    EXPECT_DOUBLE_EQ(centroid(PointCloud{}).x, 0.0);
}

TEST(Cloud, MeanAndCovariance)
{
    // Points along the x axis: variance concentrated in cov(0,0).
    PointCloud c;
    for (int i = -5; i <= 5; ++i)
        c.push_back(Point::fromVec({double(i), 0.0, 0.0}));
    Vec3 mean;
    av::geom::Mat3 cov;
    ASSERT_EQ(meanAndCovariance(c, mean, cov), 11u);
    EXPECT_NEAR(mean.x, 0.0, 1e-9);
    EXPECT_NEAR(cov(0, 0), 11.0, 1e-9); // var of -5..5 = 11
    EXPECT_NEAR(cov(1, 1), 0.0, 1e-9);
    EXPECT_NEAR(cov(0, 1), 0.0, 1e-9);
}

TEST(Cloud, CropByRange)
{
    PointCloud c;
    c.push_back(Point::fromVec({1, 0, 0}));
    c.push_back(Point::fromVec({10, 0, 0}));
    c.push_back(Point::fromVec({100, 0, 0}));
    const PointCloud cropped = cropByRange(c, 2.0, 50.0);
    ASSERT_EQ(cropped.size(), 1u);
    EXPECT_FLOAT_EQ(cropped[0].x, 10.0f);
}

TEST(KdTree, RadiusMatchesBruteForce)
{
    const PointCloud cloud = randomCloud(800, 2);
    KdTree tree;
    tree.build(cloud);
    av::util::Rng rng(3);
    std::vector<std::uint32_t> found;
    for (int q = 0; q < 30; ++q) {
        const Vec3 query{rng.uniform(-50, 50), rng.uniform(-50, 50),
                         rng.uniform(-5, 5)};
        const double radius = rng.uniform(1.0, 15.0);
        tree.radiusSearch(query, radius, found);
        std::set<std::uint32_t> expected;
        for (std::uint32_t i = 0; i < cloud.size(); ++i) {
            if (av::geom::squaredDistance(query, cloud[i].vec()) <=
                radius * radius)
                expected.insert(i);
        }
        EXPECT_EQ(std::set<std::uint32_t>(found.begin(), found.end()),
                  expected)
            << "query " << q;
    }
}

TEST(KdTree, NearestMatchesBruteForce)
{
    const PointCloud cloud = randomCloud(500, 4);
    KdTree tree;
    tree.build(cloud);
    av::util::Rng rng(5);
    for (int q = 0; q < 50; ++q) {
        const Vec3 query{rng.uniform(-60, 60), rng.uniform(-60, 60),
                         rng.uniform(-6, 6)};
        double d2 = 0;
        const auto idx = tree.nearest(query, d2);
        ASSERT_GE(idx, 0);
        double best = 1e30;
        for (std::uint32_t i = 0; i < cloud.size(); ++i)
            best = std::min(
                best,
                av::geom::squaredDistance(query, cloud[i].vec()));
        EXPECT_NEAR(d2, best, 1e-9);
    }
}

TEST(KdTree, EmptyCloud)
{
    PointCloud empty;
    KdTree tree;
    tree.build(empty);
    std::vector<std::uint32_t> out;
    EXPECT_EQ(tree.radiusSearch({0, 0, 0}, 5.0, out), 0u);
    double d2 = 0;
    EXPECT_EQ(tree.nearest({0, 0, 0}, d2), -1);
}

TEST(KdTree, SinglePoint)
{
    PointCloud c;
    c.push_back(Point::fromVec({1, 1, 1}));
    KdTree tree;
    tree.build(c);
    double d2 = 0;
    EXPECT_EQ(tree.nearest({0, 0, 0}, d2), 0);
    EXPECT_NEAR(d2, 3.0, 1e-9);
}

TEST(VoxelGrid, DownsampleReducesAndPreservesExtent)
{
    const PointCloud cloud = randomCloud(5000, 6, 20.0);
    const PointCloud down = voxelGridDownsample(cloud, 2.0);
    EXPECT_LT(down.size(), cloud.size());
    EXPECT_GT(down.size(), 100u);
    // Centroids stay within the original bounding volume.
    for (const Point &p : down.points) {
        EXPECT_GE(p.x, -20.0f - 1e-3f);
        EXPECT_LE(p.x, 20.0f + 1e-3f);
    }
}

TEST(VoxelGrid, OnePointPerVoxelIsIdentitySize)
{
    PointCloud c;
    for (int i = 0; i < 10; ++i)
        c.push_back(Point::fromVec({i * 10.0, 0, 0}));
    const PointCloud down = voxelGridDownsample(c, 1.0);
    EXPECT_EQ(down.size(), 10u);
}

TEST(VoxelGrid, ClusterCollapsesToCentroid)
{
    PointCloud c;
    c.push_back(Point::fromVec({0.1, 0.1, 0.1}));
    c.push_back(Point::fromVec({0.2, 0.2, 0.2}));
    c.push_back(Point::fromVec({0.3, 0.3, 0.3}));
    const PointCloud down = voxelGridDownsample(c, 1.0);
    ASSERT_EQ(down.size(), 1u);
    EXPECT_NEAR(down[0].x, 0.2, 1e-6);
}

TEST(VoxelGrid, NegativeCoordinatesBinCorrectly)
{
    // Points straddling zero must land in different voxels.
    PointCloud c;
    c.push_back(Point::fromVec({-0.1, 0, 0}));
    c.push_back(Point::fromVec({0.1, 0, 0}));
    const PointCloud down = voxelGridDownsample(c, 1.0);
    EXPECT_EQ(down.size(), 2u);
}

TEST(GaussianVoxelGrid, BuildsVoxelsWithEnoughPoints)
{
    av::util::Rng rng(7);
    PointCloud c;
    // 200 points in one 2m voxel near origin, 2 points far away.
    for (int i = 0; i < 200; ++i)
        c.push_back(Point::fromVec({rng.uniform(0.1, 1.9),
                                    rng.uniform(0.1, 1.9),
                                    rng.uniform(0.1, 1.9)}));
    c.push_back(Point::fromVec({100, 100, 0}));
    c.push_back(Point::fromVec({100.1, 100, 0}));
    GaussianVoxelGrid grid;
    grid.build(c, 2.0);
    EXPECT_EQ(grid.voxelCount(), 1u); // far voxel below min points
    const auto *voxel = grid.lookup({1.0, 1.0, 1.0});
    ASSERT_NE(voxel, nullptr);
    EXPECT_EQ(voxel->count, 200u);
    EXPECT_NEAR(voxel->mean.x, 1.0, 0.15);
    EXPECT_EQ(grid.lookup({50, 50, 50}), nullptr);
}

TEST(GaussianVoxelGrid, NeighborhoodFindsAdjacent)
{
    av::util::Rng rng(8);
    PointCloud c;
    for (int vx = 0; vx < 2; ++vx) {
        for (int i = 0; i < 50; ++i)
            c.push_back(Point::fromVec({vx * 2.0 + rng.uniform(0.1, 1.9),
                                        rng.uniform(0.1, 1.9), 0.5}));
    }
    GaussianVoxelGrid grid;
    grid.build(c, 2.0);
    EXPECT_EQ(grid.voxelCount(), 2u);
    std::vector<const GaussianVoxelGrid::Voxel *> hood;
    grid.neighborhood({1.0, 1.0, 0.5}, hood);
    EXPECT_EQ(hood.size(), 2u); // own voxel + the +x face neighbour
}

TEST(GaussianVoxelGrid, CovarianceInvertible)
{
    av::util::Rng rng(9);
    PointCloud c;
    // Nearly collinear points: regularization must keep the inverse
    // finite.
    for (int i = 0; i < 100; ++i)
        c.push_back(Point::fromVec(
            {i * 0.01, i * 0.02 + rng.gaussian(0, 1e-4), 0.5}));
    GaussianVoxelGrid grid;
    grid.build(c, 2.0);
    ASSERT_EQ(grid.voxelCount(), 1u);
    const auto *voxel = grid.lookup({0.5, 0.5, 0.5});
    ASSERT_NE(voxel, nullptr);
    const auto prod = voxel->covariance * voxel->inverseCovariance;
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(prod(i, i), 1.0, 1e-6);
}

/** Parameterized sweep: kd-tree correctness across sizes. */
class KdTreeSizeTest : public ::testing::TestWithParam<int>
{};

TEST_P(KdTreeSizeTest, RadiusCountsConsistent)
{
    const PointCloud cloud =
        randomCloud(static_cast<std::size_t>(GetParam()), 11);
    KdTree tree;
    tree.build(cloud);
    std::vector<std::uint32_t> out;
    const std::size_t n = tree.radiusSearch({0, 0, 0}, 1000.0, out);
    EXPECT_EQ(n, cloud.size()); // radius covers everything
    std::set<std::uint32_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), cloud.size()); // no duplicates
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeSizeTest,
                         ::testing::Values(1, 2, 3, 10, 101, 1024));

} // namespace
