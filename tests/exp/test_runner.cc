/**
 * @file
 * Tests for the experiment engine (src/exp): the Runner's
 * worker-count independence (parallel results byte-identical to
 * serial), the result cache's bit-fidelity and replay skipping, and
 * the cache key's coverage of every replay-relevant RunConfig field.
 * Serialized cache entries are the comparison medium: two RunResults
 * are "byte-identical" when ResultCache writes the same file for
 * both.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hh"

namespace {

using namespace av;

/** Throw-away cache directory, recreated empty per call. */
std::string
freshDir(const char *name)
{
    const std::string path = std::string("/tmp/avscope_exp_") + name;
    std::filesystem::remove_all(path);
    return path;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Serialize @p result through the cache and return the bytes. */
std::string
serialized(const std::string &dir, const std::string &key,
           const prof::RunResult &result)
{
    const exp::ResultCache cache(dir);
    EXPECT_TRUE(cache.store(key, result));
    return fileBytes(cache.entryPath(key));
}

/** The three detector experiments on a short shared drive. */
std::vector<exp::ExperimentSpec>
detectorSweep()
{
    std::vector<exp::ExperimentSpec> specs;
    for (const auto kind : {perception::DetectorKind::Ssd512,
                            perception::DetectorKind::Ssd300,
                            perception::DetectorKind::Yolov3})
        specs.push_back(exp::spec()
                            .detector(kind)
                            .durationSeconds(6)
                            .seed(2020)
                            .named(perception::detectorName(kind)));
    return specs;
}

TEST(Runner, ParallelRunByteIdenticalToSerial)
{
    const auto specs = detectorSweep();
    const std::string dir = freshDir("serialize");

    exp::Runner serial(exp::RunnerConfig{1, ""});
    exp::Runner parallel(exp::RunnerConfig{3, ""});
    ASSERT_EQ(serial.jobs(), 1u);
    ASSERT_EQ(parallel.jobs(), 3u);
    for (const auto &s : specs) {
        serial.submit(s);
        parallel.submit(s);
    }
    const auto from_serial = serial.collect();
    const auto from_parallel = parallel.collect();
    ASSERT_EQ(from_serial.size(), specs.size());
    ASSERT_EQ(from_parallel.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string tag = std::to_string(i);
        EXPECT_EQ(
            serialized(dir, "serial-" + tag, *from_serial[i]),
            serialized(dir, "parallel-" + tag, *from_parallel[i]))
            << "detector sweep entry " << i
            << " differs across worker counts";
    }
    EXPECT_EQ(serial.executed(), specs.size());
    EXPECT_EQ(parallel.executed(), specs.size());
    EXPECT_EQ(serial.cacheHits(), 0u);
    EXPECT_EQ(parallel.cacheHits(), 0u);
}

TEST(Runner, CacheHitIsBitIdenticalAndSkipsReplay)
{
    const std::string dir = freshDir("cache");
    const auto spec = exp::spec()
                          .durationSeconds(6)
                          .seed(7)
                          .named("cached experiment");

    exp::Runner cold(exp::RunnerConfig{1, dir});
    const prof::RunResult &first = cold.result(cold.submit(spec));
    EXPECT_EQ(cold.executed(), 1u);
    EXPECT_EQ(cold.cacheHits(), 0u);

    // The entry is on disk under the spec's content key.
    const exp::ResultCache cache(dir);
    EXPECT_TRUE(std::filesystem::exists(
        cache.entryPath(exp::cacheKey(spec))));

    exp::Runner warm(exp::RunnerConfig{1, dir});
    const prof::RunResult &second = warm.result(warm.submit(spec));
    EXPECT_EQ(warm.executed(), 0u) << "cache hit must skip replay";
    EXPECT_EQ(warm.cacheHits(), 1u);
    EXPECT_EQ(second.label, "cached experiment");

    const std::string scratch = freshDir("cache_compare");
    EXPECT_EQ(serialized(scratch, "first", first),
              serialized(scratch, "second", second));
}

TEST(Runner, CacheKeyCoversEveryReplayField)
{
    const auto base = exp::spec();
    const std::string key = exp::cacheKey(base);

    // The label is presentation only.
    auto relabeled = base;
    relabeled.named("same replay, new name");
    EXPECT_EQ(exp::cacheKey(relabeled), key);

    // Every replay-relevant dimension must move the key.
    const struct
    {
        const char *what;
        void (*mutate)(exp::ExperimentSpec &);
    } cases[] = {
        {"scenario seed",
         [](exp::ExperimentSpec &s) { s.scenario.seed += 1; }},
        {"scenario traffic",
         [](exp::ExperimentSpec &s) { s.scenario.nVehicles += 1; }},
        {"drive duration",
         [](exp::ExperimentSpec &s) {
             s.driveDuration += sim::oneSec;
         }},
        {"camera period",
         [](exp::ExperimentSpec &s) {
             s.recorder.cameraPeriod += sim::oneMs;
         }},
        {"detector",
         [](exp::ExperimentSpec &s) {
             s.detector(perception::DetectorKind::Yolov3);
         }},
        {"stack section toggle",
         [](exp::ExperimentSpec &s) {
             s.config.stack.enableTracking = false;
         }},
        {"cpu cores",
         [](exp::ExperimentSpec &s) {
             s.config.machine.cpu.cores += 1;
         }},
        {"gpu throughput",
         [](exp::ExperimentSpec &s) {
             s.config.machine.gpu.tflops *= 2.0;
         }},
        {"transport bandwidth",
         [](exp::ExperimentSpec &s) {
             s.config.transport.bandwidthGBs *= 2.0;
         }},
        {"transport mode",
         [](exp::ExperimentSpec &s) {
             s.transportMode(ros::TransportMode::Copy);
         }},
        {"node calibration",
         [](exp::ExperimentSpec &s) {
             s.config.calibration.ndtMatching.workScale *= 1.01;
         }},
        {"probe grain",
         [](exp::ExperimentSpec &s) {
             s.config.samplePeriod /= 2;
         }},
        {"drain grace",
         [](exp::ExperimentSpec &s) {
             s.config.drainGrace += sim::oneSec;
         }},
        {"degradation toggle",
         [](exp::ExperimentSpec &s) { s.degraded(); }},
        {"degradation threshold",
         [](exp::ExperimentSpec &s) {
             s.config.stack.degradation.visionStaleAfter +=
                 sim::oneMs;
         }},
        {"fault plan",
         [](exp::ExperimentSpec &s) {
             s.faults(fault::FaultPlan().cameraBlackout(
                 sim::oneSec, sim::oneSec));
         }},
        {"fault plan seed",
         [](exp::ExperimentSpec &s) {
             fault::FaultPlan plan;
             plan.seed += 1;
             s.faults(plan);
         }},
        {"fault window",
         [](exp::ExperimentSpec &s) {
             s.faults(fault::FaultPlan().cameraBlackout(
                 sim::oneSec, 2 * sim::oneSec));
         }},
        {"fault probability",
         [](exp::ExperimentSpec &s) {
             s.faults(fault::FaultPlan().frameLoss(
                 "/points_raw", sim::oneSec, sim::oneSec, 0.25));
         }},
    };
    for (const auto &c : cases) {
        auto changed = base;
        c.mutate(changed);
        EXPECT_NE(exp::cacheKey(changed), key)
            << c.what << " does not reach the cache key";
    }

    // driveKey tracks drive inputs only: machine changes share the
    // recorded drive, scenario changes do not.
    auto other_machine = base;
    other_machine.config.machine.cpu.cores += 4;
    EXPECT_EQ(exp::driveKey(other_machine), exp::driveKey(base));
    auto other_seed = base;
    other_seed.seed(base.scenario.seed + 1);
    EXPECT_NE(exp::driveKey(other_seed), exp::driveKey(base));
}

TEST(Runner, TransportModesProduceIdenticalSimulatedResults)
{
    // The copy-vs-loan switch is host-side only: the same drive
    // replayed under both transports must measure the same
    // latencies, drops, counters, power — everything except the
    // transport accounting itself (mode name + copy counters).
    auto loanSpec =
        exp::spec().durationSeconds(6).seed(11).named("same");
    auto copySpec = loanSpec;
    loanSpec.transportMode(ros::TransportMode::Loan);
    copySpec.transportMode(ros::TransportMode::Copy);
    ASSERT_NE(exp::cacheKey(loanSpec), exp::cacheKey(copySpec));

    exp::Runner runner(exp::RunnerConfig{2, ""});
    const std::size_t loanJob = runner.submit(loanSpec);
    const std::size_t copyJob = runner.submit(copySpec);
    prof::RunResult loan = runner.result(loanJob);
    prof::RunResult copy = runner.result(copyJob);

    EXPECT_EQ(loan.transportMode, "loan");
    EXPECT_EQ(copy.transportMode, "copy");
    // The loaned path really eliminated the per-subscriber copies
    // the v1 path made — on the same message flow.
    EXPECT_EQ(loan.transport.payloadCopies, 0u);
    EXPECT_GT(copy.transport.payloadCopies, 0u);
    EXPECT_EQ(loan.transport.deliveries, copy.transport.deliveries);
    EXPECT_EQ(loan.transport.published, copy.transport.published);

    // Blank the transport accounting on both and the serialized
    // results must be byte-identical.
    loan.transportMode.clear();
    copy.transportMode.clear();
    loan.transport = ros::TransportCounters{};
    copy.transport = ros::TransportCounters{};
    const std::string dir = freshDir("transport_modes");
    EXPECT_EQ(serialized(dir, "loan", loan),
              serialized(dir, "copy", copy));
}

TEST(Runner, ThrowingExperimentPropagatesWithoutDeadlock)
{
    // A fault plan naming an unknown node throws from the
    // CharacterizationRun constructor on a worker thread. The
    // exception must surface from result()/collect() — not abort the
    // worker or leave the waiter blocked — and the pool must keep
    // serving jobs submitted afterwards.
    exp::Runner runner(exp::RunnerConfig{1, ""});
    auto bad = exp::spec().durationSeconds(6).named("bad plan");
    bad.faults(
        fault::FaultPlan().nodeCrash("no_such_node", 0, sim::oneSec));
    const std::size_t bad_id = runner.submit(bad);
    const std::size_t good_id = runner.submit(
        exp::spec().durationSeconds(6).named("still works"));

    EXPECT_THROW(runner.result(bad_id), std::invalid_argument);
    // Rethrow is repeatable, and collect() reports it too.
    EXPECT_THROW(runner.result(bad_id), std::invalid_argument);
    EXPECT_THROW(runner.collect(), std::invalid_argument);
    // The slot survived: the next job completed normally.
    EXPECT_EQ(runner.result(good_id).label, "still works");
}

TEST(Runner, WatchdogReportsStalledJobWithoutKillingSlot)
{
    // A 12 s replay takes well over 100 ms of wall time, so the
    // watchdog fires while the job is still executing. The stall is
    // *reported*, not cancelled: waiting again returns the finished
    // result, and the worker slot keeps serving later submissions.
    exp::Runner runner(exp::RunnerConfig{1, "", 100});
    const std::size_t slow_id = runner.submit(
        exp::spec().durationSeconds(12).named("slow"));

    bool timed_out = false;
    try {
        runner.result(slow_id);
    } catch (const exp::JobTimeoutError &error) {
        timed_out = true;
        EXPECT_EQ(error.jobId(), slow_id);
        EXPECT_EQ(error.label(), "slow");
        EXPECT_EQ(error.timeoutMs(), 100);
        EXPECT_NE(std::string(error.what()).find("slow"),
                  std::string::npos);
    }
    EXPECT_TRUE(timed_out);

    // A finished job always returns its result, however late.
    for (;;) {
        try {
            EXPECT_EQ(runner.result(slow_id).label, "slow");
            break;
        } catch (const exp::JobTimeoutError &) {
        }
    }

    const std::size_t next_id = runner.submit(
        exp::spec().durationSeconds(6).named("after the stall"));
    for (;;) {
        try {
            EXPECT_EQ(runner.result(next_id).label,
                      "after the stall");
            break;
        } catch (const exp::JobTimeoutError &) {
        }
    }

    // Both jobs done: collect() no longer times out.
    const auto all = runner.collect();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0]->label, "slow");
    EXPECT_EQ(all[1]->label, "after the stall");
}

TEST(Runner, CorruptedCacheEntryIsAMiss)
{
    const std::string dir = freshDir("corrupt");
    const auto spec =
        exp::spec().durationSeconds(6).seed(9).named("corruptable");

    exp::Runner cold(exp::RunnerConfig{1, dir});
    cold.result(cold.submit(spec));
    ASSERT_EQ(cold.executed(), 1u);

    const exp::ResultCache cache(dir);
    const std::string path = cache.entryPath(exp::cacheKey(spec));
    ASSERT_TRUE(std::filesystem::exists(path));

    // Truncate the entry mid-file: parse must fail, load must report
    // a miss, and the Runner must quietly re-execute.
    const std::string bytes = fileBytes(path);
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << bytes.substr(0, bytes.size() / 2);
    }
    EXPECT_FALSE(cache.load(exp::cacheKey(spec)).has_value());

    exp::Runner warm(exp::RunnerConfig{1, dir});
    warm.result(warm.submit(spec));
    EXPECT_EQ(warm.cacheHits(), 0u)
        << "truncated entry must not count as a hit";
    EXPECT_EQ(warm.executed(), 1u);

    // Same for arbitrary garbage replacing the payload.
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "avscope-result 3\nlabel x\nnodes 999999999\n";
    }
    EXPECT_FALSE(cache.load(exp::cacheKey(spec)).has_value());
}

} // namespace
