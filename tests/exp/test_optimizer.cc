/**
 * @file
 * GuardedOptimizer tests: the accept-on-measured-improvement guard.
 * A genuine fix (shrinking a deliberately oversized /image_raw queue
 * at the detector) must be accepted; a seeded regression (growing
 * it) must be measured, rejected and rolled back; a no-op proposal
 * ties and must also be rolled back. History records every step.
 */

#include <gtest/gtest.h>

#include "exp/optimizer.hh"

namespace {

using namespace av;

/** Short traced SSD512 drive with an oversized detector queue. */
exp::ExperimentSpec
misconfiguredSpec()
{
    return exp::spec()
        .detector(perception::DetectorKind::Ssd512)
        .durationSeconds(4)
        .seed(2020)
        .traced()
        .queueDepth("/image_raw", "vision_detection", 4)
        .named("depth 4");
}

/** Replace the queue override with @p depth. */
exp::GuardedOptimizer::Mutation
setDepth(std::size_t depth)
{
    return [depth](exp::ExperimentSpec &spec) {
        spec.config.queueDepths.clear();
        spec.queueDepth("/image_raw", "vision_detection", depth)
            .named("depth " + std::to_string(depth));
    };
}

TEST(GuardedOptimizer, AcceptsFixRejectsRegressionAndTies)
{
    exp::Runner runner(exp::RunnerConfig{2, ""});
    exp::GuardedOptimizer optimizer(runner, misconfiguredSpec());

    const double start = optimizer.incumbentMetricMs();
    ASSERT_GT(start, 0.0);

    // A real fix: SSD512 cannot keep up with the camera, so queued
    // frames are stale by construction; depth 1 keeps only the
    // freshest. Must measurably improve and be accepted.
    const exp::OptimizerStep fix =
        optimizer.propose("shrink to 1", setDepth(1));
    EXPECT_TRUE(fix.accepted);
    EXPECT_LT(fix.candidateMs, fix.incumbentMs);
    EXPECT_DOUBLE_EQ(fix.incumbentMs, start);
    EXPECT_EQ(optimizer.incumbent().label, "depth 1");
    EXPECT_DOUBLE_EQ(optimizer.incumbentMetricMs(),
                     fix.candidateMs);

    // A seeded regression: depth 8 queues even more stale frames.
    // Must be measured, rejected, and the incumbent kept.
    const exp::OptimizerStep regression =
        optimizer.propose("grow to 8 (regression)", setDepth(8));
    EXPECT_FALSE(regression.accepted);
    EXPECT_GT(regression.candidateMs, regression.incumbentMs);
    EXPECT_EQ(optimizer.incumbent().label, "depth 1");
    EXPECT_DOUBLE_EQ(optimizer.incumbentMetricMs(),
                     fix.candidateMs);

    // A no-op proposal measures identically (deterministic replay):
    // no strict improvement, so it must roll back too.
    const exp::OptimizerStep noop = optimizer.propose(
        "no-op", [](exp::ExperimentSpec &) {});
    EXPECT_FALSE(noop.accepted);
    EXPECT_DOUBLE_EQ(noop.candidateMs, noop.incumbentMs);
    EXPECT_DOUBLE_EQ(noop.deltaMs(), 0.0);

    // Audit trail: every proposal, in order, with its outcome.
    ASSERT_EQ(optimizer.history().size(), 3u);
    EXPECT_EQ(optimizer.history()[0].name, "shrink to 1");
    EXPECT_TRUE(optimizer.history()[0].accepted);
    EXPECT_FALSE(optimizer.history()[1].accepted);
    EXPECT_FALSE(optimizer.history()[2].accepted);
    EXPECT_EQ(optimizer.accepted(), 1u);

    // The loop never ends worse than it started.
    EXPECT_LE(optimizer.incumbentMetricMs(), start);
}

TEST(GuardedOptimizer, ImprovementMarginGatesMarginalWins)
{
    exp::Runner runner(exp::RunnerConfig{2, ""});
    // With an absurdly large required margin, even the genuine fix
    // must be rolled back: the guard compares against
    // incumbent − margin, not the raw incumbent.
    exp::GuardedOptimizer optimizer(runner, misconfiguredSpec(),
                                    1e6);
    const exp::OptimizerStep fix =
        optimizer.propose("shrink to 1", setDepth(1));
    EXPECT_LT(fix.candidateMs, fix.incumbentMs);
    EXPECT_FALSE(fix.accepted);
    EXPECT_EQ(optimizer.incumbent().label, "depth 4");
}

} // namespace
