/**
 * @file
 * Unit tests for binary bag persistence: round trip fidelity,
 * format guards, replay equivalence of a loaded bag.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "world/bag_io.hh"
#include "world/recorder.hh"

namespace {

using namespace av;
using namespace av::world;

std::string
tempPath(const char *name)
{
    return std::string("/tmp/avscope_") + name + ".avbg";
}

ros::Bag
recordShortDrive()
{
    ScenarioConfig cfg;
    cfg.seed = 31;
    const Scenario scenario(cfg);
    const LidarModel lidar;
    const CameraModel camera;
    const GnssModel gnss;
    const ImuModel imu;
    ros::Bag bag;
    recordDrive(scenario, lidar, camera, gnss, imu, 3 * sim::oneSec,
                RecorderConfig(), bag);
    return bag;
}

TEST(BagIo, RoundTripPreservesEverything)
{
    ros::Bag original = recordShortDrive();
    const std::string path = tempPath("roundtrip");
    ASSERT_TRUE(saveSensorBag(original, path));

    ros::Bag loaded;
    ASSERT_TRUE(loadSensorBag(loaded, path));
    EXPECT_EQ(loaded.totalMessages(), original.totalMessages());
    EXPECT_EQ(loaded.duration(), original.duration());

    // Point clouds byte-identical.
    const auto &a = original.channel<pc::PointCloud>(
                                 topics::pointsRaw)
                        .messages();
    const auto &b =
        loaded.channel<pc::PointCloud>(topics::pointsRaw)
            .messages();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t m = 0; m < a.size(); ++m) {
        EXPECT_EQ(a[m].header.stamp, b[m].header.stamp);
        EXPECT_EQ(a[m].header.origins.lidar,
                  b[m].header.origins.lidar);
        EXPECT_EQ(a[m].bytes, b[m].bytes);
        ASSERT_EQ(a[m].data.size(), b[m].data.size());
        for (std::size_t i = 0; i < a[m].data.size(); i += 37) {
            EXPECT_FLOAT_EQ(a[m].data[i].x, b[m].data[i].x);
            EXPECT_FLOAT_EQ(a[m].data[i].z, b[m].data[i].z);
            EXPECT_EQ(a[m].data[i].ring, b[m].data[i].ring);
        }
    }

    // Camera truth preserved.
    const auto &fa =
        original.channel<CameraFrame>(topics::imageRaw).messages();
    const auto &fb =
        loaded.channel<CameraFrame>(topics::imageRaw).messages();
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t m = 0; m < fa.size(); ++m) {
        ASSERT_EQ(fa[m].data.truth.size(), fb[m].data.truth.size());
        for (std::size_t i = 0; i < fa[m].data.truth.size(); ++i) {
            EXPECT_EQ(fa[m].data.truth[i].truthId,
                      fb[m].data.truth[i].truthId);
            EXPECT_EQ(fa[m].data.truth[i].cls,
                      fb[m].data.truth[i].cls);
            EXPECT_DOUBLE_EQ(fa[m].data.truth[i].bearing,
                             fb[m].data.truth[i].bearing);
        }
    }
    std::remove(path.c_str());
}

TEST(BagIo, LoadedBagReplaysIdentically)
{
    ros::Bag original = recordShortDrive();
    const std::string path = tempPath("replay");
    ASSERT_TRUE(saveSensorBag(original, path));
    ros::Bag loaded;
    ASSERT_TRUE(loadSensorBag(loaded, path));

    const auto replay_stamps = [](const ros::Bag &bag) {
        sim::EventQueue eq;
        hw::MachineConfig mcfg;
        hw::Machine machine(eq, mcfg);
        ros::RosGraph graph(machine);
        std::vector<sim::Tick> stamps;
        graph.topic<pc::PointCloud>(topics::pointsRaw)
            .addTap([&](const ros::Stamped<pc::PointCloud> &msg) {
                stamps.push_back(msg.header.stamp);
            });
        bag.replay(graph);
        eq.runUntil();
        return stamps;
    };
    EXPECT_EQ(replay_stamps(original), replay_stamps(loaded));
    std::remove(path.c_str());
}

TEST(BagIo, RejectsGarbageFile)
{
    const std::string path = tempPath("garbage");
    {
        std::ofstream os(path, std::ios::binary);
        os << "this is not a bag file at all";
    }
    ros::Bag bag;
    EXPECT_FALSE(loadSensorBag(bag, path));
    EXPECT_EQ(bag.totalMessages(), 0u);
    std::remove(path.c_str());
}

TEST(BagIo, RejectsTruncatedFile)
{
    const ros::Bag original = recordShortDrive();
    const std::string path = tempPath("truncated");
    ASSERT_TRUE(saveSensorBag(original, path));
    // Chop the file in half.
    std::ifstream is(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    is.close();
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(contents.data(),
                 static_cast<std::streamsize>(contents.size() / 2));
    }
    ros::Bag bag;
    EXPECT_FALSE(loadSensorBag(bag, path));
    std::remove(path.c_str());
}

template <typename T>
void
putRaw(std::ostream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

TEST(BagIo, RejectsCountBombWithoutAllocating)
{
    // A well-formed prefix (magic, version, point channel with one
    // record and a valid header) followed by a 4-billion point count
    // and no point data. The loader must reject it from the count's
    // implausibility against the bytes remaining — resize()ing first
    // would be a multi-gigabyte allocation serving a 60-byte file.
    const std::string path = tempPath("count_bomb");
    {
        std::ofstream os(path, std::ios::binary);
        putRaw<std::uint32_t>(os, 0x47425641); // "AVBG"
        putRaw<std::uint32_t>(os, 1);          // version
        putRaw<std::uint32_t>(os, 1);          // tagPoints
        putRaw<std::uint64_t>(os, 1);          // one record
        for (int field = 0; field < 5; ++field) // record header
            putRaw<std::uint64_t>(os, 0);
        putRaw<std::uint64_t>(os, 0);           // stampNs
        putRaw<std::uint32_t>(os, 0xffffffffu); // point count bomb
    }
    ros::Bag bag;
    EXPECT_FALSE(loadSensorBag(bag, path));
    EXPECT_EQ(bag.totalMessages(), 0u);
    std::remove(path.c_str());
}

TEST(BagIo, RejectsOutOfRangeActorClass)
{
    // One camera frame whose visible object carries class 200 —
    // outside the ActorClass enum. Storing it would poison every
    // switch over the enum downstream, so the load must fail.
    const std::string path = tempPath("bad_class");
    {
        std::ofstream os(path, std::ios::binary);
        putRaw<std::uint32_t>(os, 0x47425641); // "AVBG"
        putRaw<std::uint32_t>(os, 1);          // version
        putRaw<std::uint32_t>(os, 2);          // tagImages
        putRaw<std::uint64_t>(os, 1);          // one record
        for (int field = 0; field < 5; ++field) // record header
            putRaw<std::uint64_t>(os, 0);
        putRaw<std::uint32_t>(os, 1920);       // width
        putRaw<std::uint32_t>(os, 1080);       // height
        putRaw<std::uint32_t>(os, 1);          // one object
        putRaw<std::uint32_t>(os, 7);          // truthId
        putRaw<std::uint8_t>(os, 200);         // class: out of range
        for (int field = 0; field < 8; ++field)
            putRaw<double>(os, 0.0);
    }
    ros::Bag bag;
    EXPECT_FALSE(loadSensorBag(bag, path));
    std::remove(path.c_str());
}

TEST(BagIo, MissingFileFails)
{
    ros::Bag bag;
    EXPECT_FALSE(loadSensorBag(bag, "/tmp/avscope_nonexistent.avbg"));
    EXPECT_FALSE(
        saveSensorBag(bag, "/nonexistent_dir/bag.avbg"));
}

TEST(BagIo, EmptyBagSavesAndLoads)
{
    ros::Bag empty;
    const std::string path = tempPath("empty");
    ASSERT_TRUE(saveSensorBag(empty, path));
    ros::Bag loaded;
    EXPECT_TRUE(loadSensorBag(loaded, path));
    EXPECT_EQ(loaded.totalMessages(), 0u);
    std::remove(path.c_str());
}

} // namespace
