/**
 * @file
 * Property tests over scenario generation: density knobs change the
 * world monotonically, lane offsets separate traffic, seeds vary
 * layouts, and quiet mapping variants keep static content
 * byte-identical (the invariant the quiet ndt_mapping pass relies
 * on).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "world/scenario.hh"
#include "world/sensors.hh"

namespace {

using namespace av;
using namespace av::world;

TEST(ScenarioProps, QuietVariantKeepsStaticContent)
{
    ScenarioConfig full;
    full.seed = 123;
    ScenarioConfig quiet = full;
    quiet.nVehicles = 0;
    quiet.nPedestrians = 0;

    const Scenario a(full), b(quiet);
    // Buildings identical.
    ASSERT_EQ(a.obstacles().size(), b.obstacles().size());
    for (std::size_t i = 0; i < a.obstacles().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.obstacles()[i].box.pose.p.x,
                         b.obstacles()[i].box.pose.p.x);
        EXPECT_DOUBLE_EQ(a.obstacles()[i].box.length,
                         b.obstacles()[i].box.length);
    }
    // Parked cars identical (matched by id).
    const auto full_actors = a.actorsAt(5 * sim::oneSec);
    const auto quiet_actors = b.actorsAt(5 * sim::oneSec);
    std::size_t parked_matched = 0;
    for (const auto &qa : quiet_actors) {
        if (qa.id < 1000 || qa.id >= 2000)
            continue; // parked id range
        for (const auto &fa : full_actors) {
            if (fa.id != qa.id)
                continue;
            EXPECT_DOUBLE_EQ(fa.box.pose.p.x, qa.box.pose.p.x);
            EXPECT_DOUBLE_EQ(fa.box.pose.p.y, qa.box.pose.p.y);
            ++parked_matched;
        }
    }
    EXPECT_EQ(parked_matched, full.nParked);
}

TEST(ScenarioProps, DensityKnobsMonotone)
{
    ScenarioConfig sparse;
    sparse.seed = 9;
    sparse.nVehicles = 4;
    sparse.nPedestrians = 4;
    sparse.nParked = 4;
    ScenarioConfig dense = sparse;
    dense.nVehicles = 30;
    dense.nPedestrians = 30;
    dense.nParked = 20;

    const Scenario a(sparse), b(dense);
    EXPECT_LT(a.actorsAt(0).size(), b.actorsAt(0).size());
    EXPECT_EQ(b.actorsAt(0).size(), 80u);
}

TEST(ScenarioProps, LaneOffsetSeparatesMovingTraffic)
{
    ScenarioConfig cfg;
    cfg.seed = 4;
    cfg.vehicleLaneOffset = 3.4;
    const Scenario scenario(cfg);
    // Every moving vehicle stays >= ~3 m from the ego driving line.
    for (int s = 0; s < 20; ++s) {
        const auto t = static_cast<sim::Tick>(s) * sim::oneSec;
        for (const auto &actor : scenario.actorsAt(t)) {
            if (actor.id >= 1000)
                continue; // only moving vehicles
            double min_d = 1e9;
            for (double rs = 0.0; rs < scenario.routeLength();
                 rs += 2.0) {
                min_d = std::min(
                    min_d, (scenario.poseOnRoute(rs).p -
                            actor.box.pose.p)
                               .norm());
            }
            EXPECT_GT(min_d, 2.2) << "actor " << actor.id;
        }
    }
}

TEST(ScenarioProps, SeedsChangeLayout)
{
    ScenarioConfig a_cfg, b_cfg;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    const Scenario a(a_cfg), b(b_cfg);
    int differing = 0;
    const auto sa = a.actorsAt(0);
    const auto sb = b.actorsAt(0);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i)
        differing +=
            (sa[i].box.pose.p - sb[i].box.pose.p).norm() > 0.5;
    EXPECT_GT(differing, static_cast<int>(sa.size()) / 2);
}

TEST(ScenarioProps, HeadingContinuousAroundLoop)
{
    const Scenario scenario;
    // Yaw changes between 0.5 m arclength steps stay small — the
    // property the NDT motion extrapolation depends on.
    double prev = scenario.poseOnRoute(0.0).yaw;
    for (double s = 0.5; s < scenario.routeLength(); s += 0.5) {
        const double yaw = scenario.poseOnRoute(s).yaw;
        EXPECT_LT(std::fabs(geom::normalizeAngle(yaw - prev)), 0.12)
            << "at s=" << s;
        prev = yaw;
    }
}

/** Denser scenes produce more camera-visible objects (on average). */
TEST(ScenarioProps, CameraSeesMoreInDenserScenes)
{
    ScenarioConfig sparse;
    sparse.seed = 11;
    sparse.nVehicles = 2;
    sparse.nPedestrians = 2;
    sparse.nParked = 2;
    ScenarioConfig dense = sparse;
    dense.nVehicles = 30;
    dense.nPedestrians = 30;
    dense.nParked = 20;

    const Scenario a(sparse), b(dense);
    const CameraModel camera;
    std::size_t a_total = 0, b_total = 0;
    for (int s = 0; s < 30; ++s) {
        const auto t = static_cast<sim::Tick>(s) * sim::oneSec;
        a_total += camera.capture(a, t).truth.size();
        b_total += camera.capture(b, t).truth.size();
    }
    EXPECT_GT(b_total, a_total * 2);
}

} // namespace
