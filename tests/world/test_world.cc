/**
 * @file
 * Unit tests for the world substrate: scenario determinism and
 * geometry, LiDAR raycasting, camera visibility, GNSS/IMU, map
 * building, drive recording.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "world/map_builder.hh"
#include "world/recorder.hh"
#include "world/scenario.hh"
#include "world/sensors.hh"

namespace {

using namespace av;
using namespace av::world;

TEST(Scenario, RouteIsClosedLoop)
{
    const Scenario scenario;
    const double len = scenario.routeLength();
    EXPECT_GT(len, 100.0);
    // Pose at s and s + len coincide.
    const geom::Pose2 a = scenario.poseOnRoute(37.0);
    const geom::Pose2 b = scenario.poseOnRoute(37.0 + len);
    EXPECT_NEAR(a.p.x, b.p.x, 1e-9);
    EXPECT_NEAR(a.p.y, b.p.y, 1e-9);
}

TEST(Scenario, EgoMovesAtConfiguredSpeed)
{
    const Scenario scenario;
    // Measure on a straight stretch (the rounded corners make the
    // chord shorter than the arc length).
    const geom::Pose2 p0 = scenario.egoPoseAt(5 * sim::oneSec);
    const geom::Pose2 p1 = scenario.egoPoseAt(6 * sim::oneSec);
    const double moved = (p1.p - p0.p).norm();
    EXPECT_NEAR(moved, scenario.config().egoSpeed, 0.1);
}

TEST(Scenario, DeterministicAcrossInstances)
{
    ScenarioConfig cfg;
    cfg.seed = 77;
    const Scenario a(cfg), b(cfg);
    const auto sa = a.actorsAt(12 * sim::oneSec);
    const auto sb = b.actorsAt(12 * sim::oneSec);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_DOUBLE_EQ(sa[i].box.pose.p.x, sb[i].box.pose.p.x);
        EXPECT_DOUBLE_EQ(sa[i].box.pose.p.y, sb[i].box.pose.p.y);
    }
}

TEST(Scenario, ActorsHaveDistinctIdsAndMove)
{
    const Scenario scenario;
    const auto t0 = scenario.actorsAt(0);
    const auto t1 = scenario.actorsAt(5 * sim::oneSec);
    std::set<std::uint32_t> ids;
    for (const auto &a : t0)
        ids.insert(a.id);
    EXPECT_EQ(ids.size(), t0.size());
    // At least the moving vehicles changed position.
    int moved = 0;
    for (std::size_t i = 0; i < t0.size(); ++i)
        moved += (t0[i].box.pose.p - t1[i].box.pose.p).norm() > 1.0;
    EXPECT_GT(moved, 10);
}

TEST(Lidar, ScanDeterministicAndPlausible)
{
    const Scenario scenario;
    const LidarModel lidar;
    const auto a = lidar.scan(scenario, 3 * sim::oneSec);
    const auto b = lidar.scan(scenario, 3 * sim::oneSec);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_GT(a.size(), 2000u);
    for (std::size_t i = 0; i < a.size(); i += 97)
        EXPECT_FLOAT_EQ(a[i].x, b[i].x);
    // Ranges bounded by the sensor's max range.
    for (const auto &p : a.points) {
        const double r = std::hypot(p.x, p.y);
        EXPECT_LE(r, lidar.config().maxRange + 1.0);
        EXPECT_GE(p.z, -0.5);
    }
}

TEST(Lidar, GroundDominatesOpenAreas)
{
    // Scenario with no actors/buildings: every return is ground.
    ScenarioConfig cfg;
    cfg.nVehicles = cfg.nParked = cfg.nPedestrians = 0;
    cfg.nBuildings = 0;
    const Scenario scenario(cfg);
    const LidarModel lidar;
    const auto scan = lidar.scan(scenario, 0);
    EXPECT_GT(scan.size(), 1000u);
    for (const auto &p : scan.points)
        EXPECT_LT(p.z, 0.3f);
}

TEST(Lidar, ObstaclesProduceElevatedReturns)
{
    const Scenario scenario;
    const LidarModel lidar;
    const auto scan = lidar.scan(scenario, 0);
    int elevated = 0;
    for (const auto &p : scan.points)
        elevated += p.z > 0.5f;
    EXPECT_GT(elevated, 100); // buildings/cars in view
}

TEST(Camera, SeesActorsInFrontOnly)
{
    const Scenario scenario;
    const CameraModel camera;
    const auto frame = camera.capture(scenario, 10 * sim::oneSec);
    const geom::Pose2 ego = scenario.egoPoseAt(10 * sim::oneSec);
    const double half_fov =
        camera.config().horizontalFovDeg * M_PI / 360.0;
    for (const auto &vo : frame.truth) {
        EXPECT_LE(std::fabs(vo.bearing), half_fov + 1e-9);
        EXPECT_LE(vo.range, camera.config().maxRange + 1e-9);
        EXPECT_GT(vo.imageHeightPx, 0.0);
        // Bearing consistent with geometry.
        const geom::Vec2 rel = ego.toLocal(vo.worldPos);
        EXPECT_NEAR(std::atan2(rel.y, rel.x), vo.bearing, 1e-6);
    }
}

TEST(Camera, FrameBytesMatchResolution)
{
    const CameraModel camera;
    EXPECT_EQ(camera.frameBytes(),
              static_cast<std::size_t>(1280) * 720 * 3 + 64);
}

TEST(Gnss, NoiseAroundTruth)
{
    const Scenario scenario;
    const GnssModel gnss(1.5, 3);
    double err_acc = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const sim::Tick t = static_cast<sim::Tick>(i) * sim::oneSec;
        const auto fix = gnss.fix(scenario, t);
        const geom::Pose2 truth = scenario.egoPoseAt(t);
        const double err =
            (geom::Vec2{fix.position.x, fix.position.y} - truth.p)
                .norm();
        err_acc += err;
        EXPECT_LT(err, 8.0); // few-sigma bound
    }
    const double mean_err = err_acc / n;
    EXPECT_GT(mean_err, 0.5); // it is noisy (meter level)
    EXPECT_LT(mean_err, 3.5);
}

TEST(Imu, YawRateReflectsCorners)
{
    const Scenario scenario;
    const ImuModel imu(5);
    // Sample along a straight stretch: yaw rate ~ 0.
    const auto straight = imu.sample(scenario, 2 * sim::oneSec);
    EXPECT_NEAR(straight.yawRate, 0.0, 0.1);
    EXPECT_NEAR(straight.speed, scenario.config().egoSpeed, 0.5);
}

TEST(MapBuilder, CoversTheRoute)
{
    const Scenario scenario;
    const LidarModel lidar;
    MapBuilderConfig cfg;
    cfg.scanInterval = 2 * sim::oneSec; // coarse, for speed
    const MapBuilder builder(cfg);
    const double loop_s =
        scenario.routeLength() / scenario.config().egoSpeed;
    const auto map =
        builder.build(scenario, lidar, sim::secondsToTicks(loop_s));
    EXPECT_GT(map.size(), 30000u);
    // The map must span the whole block.
    float min_x = 1e9, max_x = -1e9;
    for (const auto &p : map.points) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
    }
    EXPECT_GT(max_x - min_x, scenario.config().blockLength * 0.8);
}

TEST(Recorder, ChannelsAndRates)
{
    const Scenario scenario;
    const LidarModel lidar;
    const CameraModel camera;
    const GnssModel gnss;
    const ImuModel imu;
    ros::Bag bag;
    RecorderConfig cfg;
    recordDrive(scenario, lidar, camera, gnss, imu,
                10 * sim::oneSec, cfg, bag);
    const auto &points =
        bag.channel<pc::PointCloud>(topics::pointsRaw);
    const auto &images = bag.channel<CameraFrame>(topics::imageRaw);
    EXPECT_EQ(points.count(), 101u); // 10 Hz inclusive of t=0
    // ~15 Hz camera with phase offset.
    EXPECT_NEAR(static_cast<double>(images.count()), 151.0, 2.0);
    EXPECT_EQ(bag.channel<GnssFix>(topics::gnss).count(), 11u);
    EXPECT_GE(bag.duration(), 10 * sim::oneSec - 100 * sim::oneMs);

    // Origin stamps set per sensor type.
    EXPECT_EQ(points.messages()[5].header.origins.lidar,
              points.messages()[5].header.stamp);
    EXPECT_EQ(points.messages()[5].header.origins.camera, 0u);
    EXPECT_EQ(images.messages()[5].header.origins.camera,
              images.messages()[5].header.stamp);
}

/** Property sweep: scans from different times differ (world moves). */
class LidarTimeTest : public ::testing::TestWithParam<int>
{};

TEST_P(LidarTimeTest, ScansEvolveOverTime)
{
    const Scenario scenario;
    const LidarModel lidar;
    const sim::Tick t =
        static_cast<sim::Tick>(GetParam()) * sim::oneSec;
    const auto a = lidar.scan(scenario, t);
    const auto b = lidar.scan(scenario, t + 2 * sim::oneSec);
    EXPECT_GT(a.size(), 1000u);
    EXPECT_GT(b.size(), 1000u);
    EXPECT_NE(a.size(), b.size()); // virtually impossible otherwise
}

INSTANTIATE_TEST_SUITE_P(Times, LidarTimeTest,
                         ::testing::Values(0, 5, 20, 60));

} // namespace
