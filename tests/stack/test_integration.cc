/**
 * @file
 * Integration tests: the full stack replaying a recorded drive on
 * the simulated platform. Checks functional correctness (NDT
 * localizes against ground truth, tracker follows real actors),
 * measurement plumbing (latency/paths/drops/utilization/power all
 * populated) and bit-level determinism across runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/characterization.hh"

namespace {

using namespace av;

/** Shared 20 s drive (expensive to record; reused by all tests). */
class StackIntegration : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        world::ScenarioConfig scenario;
        scenario.seed = 99;
        drive_ = prof::makeDrive(scenario, 20 * sim::oneSec);
    }

    static std::shared_ptr<prof::DriveData> drive_;
};

std::shared_ptr<prof::DriveData> StackIntegration::drive_;

TEST_F(StackIntegration, NdtLocalizesAgainstGroundTruth)
{
    prof::RunConfig cfg;
    cfg.stack.detector = perception::DetectorKind::Yolov3;
    prof::CharacterizationRun run(drive_, cfg);

    const world::Scenario scenario(drive_->scenarioConfig);
    util::RunningStats err;
    run.graph()
        .topic<perception::PoseEstimate>(perception::topics::ndtPose)
        .addTap([&](const ros::Stamped<perception::PoseEstimate>
                        &msg) {
            const sim::Tick origin = msg.header.origins.lidar;
            const geom::Pose2 truth = scenario.egoPoseAt(origin);
            err.add((msg.data.position - truth.p).norm());
        });
    run.execute();

    EXPECT_GT(err.count(), 150u); // ~10 Hz for 20 s
    EXPECT_LT(err.mean(), 0.30);  // centimeter-to-decimeter class
    EXPECT_LT(err.max(), 1.5);    // never lost
}

TEST_F(StackIntegration, TrackerFollowsRealActors)
{
    prof::RunConfig cfg;
    cfg.stack.detector = perception::DetectorKind::Ssd300;
    prof::CharacterizationRun run(drive_, cfg);

    // Sample the tracker output and check tracked positions match
    // ground-truth actors. LiDAR clusters measure an object's
    // visible *surface*, so distance is taken to the actor's box
    // (center distance minus half its diagonal), not its center.
    const world::Scenario scenario(drive_->scenarioConfig);
    std::size_t matched = 0, total = 0;
    run.graph()
        .topic<perception::ObjectList>(
            perception::topics::trackedObjects)
        .addTap([&](const ros::Stamped<perception::ObjectList>
                        &msg) {
            const auto actors = scenario.actorsAt(msg.header.stamp);
            for (const auto &obj : msg.data.objects) {
                ++total;
                for (const auto &actor : actors) {
                    const double center_d =
                        (actor.box.pose.p - obj.position).norm();
                    const double box_d =
                        center_d -
                        0.5 * std::hypot(actor.box.length,
                                         actor.box.width);
                    if (box_d < 2.0) {
                        ++matched;
                        break;
                    }
                }
            }
        });
    run.execute();

    EXPECT_GT(total, 100u); // tracking something the whole drive
    // Most confirmed tracks correspond to real actors.
    EXPECT_GT(static_cast<double>(matched) /
                  static_cast<double>(total),
              0.70);
}

TEST_F(StackIntegration, EveryNodeProcessesAndPublishes)
{
    prof::RunConfig cfg;
    cfg.stack.detector = perception::DetectorKind::Ssd512;
    prof::CharacterizationRun run(drive_, cfg);
    run.execute();

    for (const auto &node : run.nodeLatencies()) {
        EXPECT_GT(node.summary.count, 10u) << node.name;
        EXPECT_GT(node.summary.mean, 0.0) << node.name;
        EXPECT_GE(node.summary.max, node.summary.mean) << node.name;
    }
    // Paths traced end to end.
    for (const auto path :
         {prof::Path::Localization, prof::Path::CostmapPoints,
          prof::Path::CostmapVisionObj,
          prof::Path::CostmapClusterObj}) {
        EXPECT_GT(run.paths().series(path).count(), 20u)
            << prof::pathName(path);
    }
    // Machine did real work and the monitors saw it.
    EXPECT_GT(run.utilization().totalCpu().mean(), 0.05);
    EXPECT_GT(run.utilization().totalGpu().mean(), 0.05);
    EXPECT_GT(run.power().cpuWatts().mean(), 30.0);
    EXPECT_GT(run.power().gpuWatts().mean(), 55.0);
    // Counters populated for the critical nodes.
    bool saw_vision = false;
    for (const auto &row : run.counters()) {
        if (row.node == "vision_detection") {
            saw_vision = true;
            EXPECT_GT(row.ipc, 0.5);
            EXPECT_LT(row.ipc, 3.0);
            EXPECT_GT(row.branchMissRate, 0.01); // the SSD sort
        }
    }
    EXPECT_TRUE(saw_vision);
}

TEST_F(StackIntegration, ReproducibleAcrossRuns)
{
    // Functional outputs are fully deterministic; simulated *costs*
    // derive from cache/branch traces over real heap addresses, so
    // latency means drift by several percent between runs in one
    // process
    // (just as repeated wall-clock/PAPI measurements do on real
    // hardware; queueing feedback amplifies the small trace
    // differences).
    prof::RunConfig cfg;
    cfg.stack.detector = perception::DetectorKind::Ssd512;
    prof::CharacterizationRun a(drive_, cfg);
    a.execute();
    prof::CharacterizationRun b(drive_, cfg);
    b.execute();

    const auto la = a.nodeLatencies();
    const auto lb = b.nodeLatencies();
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(la[i].name, lb[i].name);
        EXPECT_NEAR(la[i].summary.mean, lb[i].summary.mean,
                    0.15 * la[i].summary.mean + 0.25)
            << la[i].name;
        EXPECT_NEAR(static_cast<double>(la[i].summary.count),
                    static_cast<double>(lb[i].summary.count), 10.0);
    }
    EXPECT_NEAR(a.power().gpuEnergyJ(), b.power().gpuEnergyJ(),
                0.05 * a.power().gpuEnergyJ());
}

TEST_F(StackIntegration, IsolationModeRunsDetectorOnly)
{
    prof::RunConfig cfg;
    cfg.stack.detector = perception::DetectorKind::Ssd512;
    cfg.stack.enableLocalization = false;
    cfg.stack.enableLidarDetection = false;
    cfg.stack.enableTracking = false;
    cfg.stack.enableCostmap = false;
    prof::CharacterizationRun run(drive_, cfg);
    run.execute();

    EXPECT_EQ(run.stack().nodes().size(), 1u);
    const util::SampleSeries *vis_series =
        run.findNodeLatencySeries("vision_detection");
    ASSERT_NE(vis_series, nullptr);
    const auto vis = vis_series->summarize();
    EXPECT_GT(vis.count, 100u);
    // Alone on the machine: latency must be tighter than the full
    // stack's (Findings 4/5 direction).
    prof::RunConfig full;
    full.stack.detector = perception::DetectorKind::Ssd512;
    prof::CharacterizationRun full_run(drive_, full);
    full_run.execute();
    const util::SampleSeries *full_series =
        full_run.findNodeLatencySeries("vision_detection");
    ASSERT_NE(full_series, nullptr);
    const auto fullsum = full_series->summarize();
    EXPECT_LT(vis.mean, fullsum.mean);
    EXPECT_LT(vis.stddev, fullsum.stddev);
}

TEST_F(StackIntegration, DetectorChoiceChangesVisionLatency)
{
    prof::RunConfig heavy;
    heavy.stack.detector = perception::DetectorKind::Ssd512;
    prof::CharacterizationRun hr(drive_, heavy);
    hr.execute();
    prof::RunConfig light;
    light.stack.detector = perception::DetectorKind::Ssd300;
    prof::CharacterizationRun lr(drive_, light);
    lr.execute();
    const util::SampleSeries *heavy_series =
        hr.findNodeLatencySeries("vision_detection");
    const util::SampleSeries *light_series =
        lr.findNodeLatencySeries("vision_detection");
    ASSERT_NE(heavy_series, nullptr);
    ASSERT_NE(light_series, nullptr);
    EXPECT_GT(heavy_series->running().mean(),
              1.8 * light_series->running().mean());
}

} // namespace
