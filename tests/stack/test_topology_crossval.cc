/**
 * @file
 * Static/runtime topology cross-validation: the pub/sub graph that
 * avgraph extracts from source text must equal the topology the
 * middleware actually registers on a live drive — same nodes, same
 * topics with the same advertisers, same subscription edges with the
 * same queue depths. A divergence means either the extractor lost
 * track of a call site or the stack wires something the static
 * contract does not know about; both are bugs.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "avgraph.hh"
#include "core/characterization.hh"
#include "ros/topology.hh"

namespace {

using namespace av;

/** Project the static graph onto the runtime snapshot shape.
 *  External (bag) channels publish without a node, so their topics
 *  carry no advertisers — exactly how anonymous runtime publishers
 *  appear. */
ros::TopologySnapshot
expectedFromStatic(const graph::StaticGraph &g)
{
    ros::TopologySnapshot snap;
    snap.nodes = g.nodes; // already sorted
    for (const auto &[name, entry] : g.topics) {
        ros::TopologyTopic topic;
        topic.name = name;
        std::set<std::string> advertisers;
        for (const graph::PubSite &p : entry.pubs)
            advertisers.insert(p.node);
        topic.advertisers.assign(advertisers.begin(),
                                 advertisers.end());
        snap.topics.push_back(std::move(topic));
        for (const graph::SubSite &s : entry.subs)
            snap.edges.push_back(
                ros::TopologyEdge{name, s.node, s.depth});
    }
    std::sort(snap.edges.begin(), snap.edges.end(),
              [](const ros::TopologyEdge &a,
                 const ros::TopologyEdge &b) {
                  if (a.topic != b.topic)
                      return a.topic < b.topic;
                  return a.subscriber < b.subscriber;
              });
    return snap;
}

/** Render a snapshot for comparison — string diffs read well in
 *  gtest failure output. */
std::string
format(const ros::TopologySnapshot &snap)
{
    std::ostringstream os;
    for (const std::string &node : snap.nodes)
        os << "node " << node << "\n";
    for (const ros::TopologyTopic &topic : snap.topics) {
        os << "topic " << topic.name << " <-";
        for (const std::string &adv : topic.advertisers)
            os << " " << adv;
        os << "\n";
    }
    for (const ros::TopologyEdge &edge : snap.edges)
        os << "edge " << edge.topic << " -> " << edge.subscriber
           << " q=" << edge.queueDepth << "\n";
    return os.str();
}

TEST(TopologyCrossval, StaticGraphMatchesLiveMiddleware)
{
    graph::StaticGraph g = graph::extractTree(AVSCOPE_SOURCE_DIR);
    ASSERT_FALSE(g.topics.empty());

    world::ScenarioConfig scenario;
    scenario.seed = 7;
    const auto drive = prof::makeDrive(scenario, 2 * sim::oneSec);
    prof::CharacterizationRun run(drive, prof::RunConfig{});
    run.execute();

    const ros::TopologySnapshot actual =
        ros::topologySnapshot(run.graph());
    const ros::TopologySnapshot expected = expectedFromStatic(g);
    EXPECT_EQ(format(actual), format(expected));
    EXPECT_TRUE(actual == expected);
}

} // namespace
