/**
 * @file
 * Tests for the safety-invariant monitor (src/stack/safety.hh):
 * name round-trips, a clean replay staying violation-free, each
 * invariant class firing under the fault that provokes it, the
 * latched one-record-per-breach semantics, and violations riding
 * through RunResult.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/characterization.hh"
#include "core/run_result.hh"
#include "fault/fault.hh"
#include "stack/safety.hh"
#include "world/recorder.hh"

namespace {

using namespace av;
using av::sim::oneMs;
using av::sim::oneSec;

prof::RunConfig
safeConfig(const stack::SafetyOptions &options =
               stack::SafetyOptions())
{
    prof::RunConfig cfg;
    cfg.stack.degradation.enabled = true;
    cfg.safety = options;
    cfg.safety.enabled = true;
    return cfg;
}

TEST(SafetyMonitor, InvariantNamesRoundTrip)
{
    const stack::InvariantKind all[] = {
        stack::InvariantKind::TrackContinuity,
        stack::InvariantKind::LocalizationError,
        stack::InvariantKind::DeadlineStreak,
        stack::InvariantKind::PipelineLiveness,
    };
    for (stack::InvariantKind kind : all) {
        stack::InvariantKind back =
            stack::InvariantKind::TrackContinuity;
        ASSERT_TRUE(stack::invariantFromName(
            stack::invariantName(kind), back));
        EXPECT_EQ(back, kind);
    }
    stack::InvariantKind out;
    EXPECT_FALSE(stack::invariantFromName("bogus", out));
}

TEST(SafetyMonitor, ViolationLabelIsTokenSafe)
{
    stack::SafetyViolation v;
    v.kind = stack::InvariantKind::LocalizationError;
    v.time = 2500 * oneMs;
    v.subject = "/ndt_pose";
    EXPECT_EQ(stack::violationLabel(v),
              "localization_error@2500ms:/ndt_pose");
}

TEST(SafetyMonitor, CleanRunRecordsNoViolations)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 8 * oneSec);

    prof::CharacterizationRun run(drive, safeConfig());
    run.execute();

    const auto violations = run.safetyViolations();
    for (const stack::SafetyViolation &v : violations)
        ADD_FAILURE() << "unexpected violation: "
                      << stack::violationLabel(v);
    EXPECT_TRUE(violations.empty());
}

TEST(SafetyMonitor, DisabledMonitorRecordsNothing)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 4 * oneSec);

    prof::RunConfig cfg;
    cfg.faults = fault::FaultPlan().lidarBlackout(oneSec, 2 * oneSec);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();
    EXPECT_TRUE(run.safetyViolations().empty());
}

TEST(SafetyMonitor, LidarBlackoutBreachesLocalizationBound)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 8 * oneSec);

    prof::RunConfig cfg = safeConfig();
    // A long LiDAR silence stalls NDT; the ego keeps moving at
    // ~8 m/s, so the stale pose diverges past the 3 m bound well
    // before the window closes.
    cfg.faults =
        fault::FaultPlan().lidarBlackout(2 * oneSec, 3 * oneSec);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    const auto violations = run.safetyViolations();
    std::uint64_t localization = 0;
    for (const stack::SafetyViolation &v : violations) {
        if (v.kind != stack::InvariantKind::LocalizationError)
            continue;
        ++localization;
        // Detected inside or shortly after the fault window.
        EXPECT_GE(v.time, 2 * oneSec);
        EXPECT_EQ(v.subject, "/ndt_pose");
        EXPECT_GT(v.value, v.bound);
    }
    EXPECT_GE(localization, 1u);
    // Latched: the sustained divergence yields one record, not one
    // per sample.
    EXPECT_LE(localization, 3u);
}

TEST(SafetyMonitor, LidarBlackoutEscalatesLiveness)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 8 * oneSec);

    prof::RunConfig cfg = safeConfig();
    cfg.faults =
        fault::FaultPlan().lidarBlackout(2 * oneSec, 3 * oneSec);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    bool liveness = false;
    for (const stack::SafetyViolation &v : run.safetyViolations())
        if (v.kind == stack::InvariantKind::PipelineLiveness) {
            liveness = true;
            // The breach is recorded once silence exceeds the
            // threshold, i.e. at least livenessAfter into the gap.
            EXPECT_GE(v.time, 2 * oneSec + oneSec);
            EXPECT_GE(v.value, 2000.0);
        }
    EXPECT_TRUE(liveness);
}

TEST(SafetyMonitor, TightDeadlineTriggersStreakViolation)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 6 * oneSec);

    stack::SafetyOptions tight;
    // An absurd 1 ms end-to-end budget: every terminal publication
    // misses, so the streak invariant must fire (and only once —
    // the condition never clears).
    tight.deadlineMs = 1.0;
    tight.deadlineMissStreak = 5;
    prof::CharacterizationRun run(drive, safeConfig(tight));
    run.execute();

    EXPECT_EQ(prof::snapshotRun(run).violationsOf(
                  stack::InvariantKind::DeadlineStreak),
              1u);
}

TEST(SafetyMonitor, ViolationsRideThroughRunResult)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 8 * oneSec);

    prof::RunConfig cfg = safeConfig();
    cfg.faults =
        fault::FaultPlan().lidarBlackout(2 * oneSec, 3 * oneSec);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    const prof::RunResult result = prof::snapshotRun(run, "x");
    EXPECT_EQ(result.violations.size(),
              run.safetyViolations().size());
    ASSERT_FALSE(result.violations.empty());
    EXPECT_GT(result.violationsOf(
                  stack::InvariantKind::LocalizationError),
              0u);
}

} // namespace
