/**
 * @file
 * Tests of the stack wiring and configuration layer: option flags
 * build the right node sets, lookup works, calibration defaults are
 * sane, detector parameter presets are ordered as the paper
 * requires.
 */

#include <gtest/gtest.h>

#include "stack/autoware_stack.hh"

namespace {

using namespace av;
using namespace av::stack;

struct Rig
{
    sim::EventQueue eq;
    hw::MachineConfig mcfg = defaultMachine();
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<ros::RosGraph> graph;
    pc::PointCloud map;

    Rig()
    {
        machine = std::make_unique<hw::Machine>(eq, mcfg);
        graph = std::make_unique<ros::RosGraph>(*machine);
        // A tiny but valid map.
        util::Rng rng(1);
        for (int i = 0; i < 2000; ++i)
            map.push_back(pc::Point::fromVec(
                {rng.uniform(-20, 20), rng.uniform(-20, 20),
                 rng.uniform(0, 2)}));
    }
};

TEST(StackConfig, FullStackHasAllNodes)
{
    Rig rig;
    AutowareStack stack(*rig.graph, rig.map);
    EXPECT_EQ(stack.nodes().size(), 10u);
    for (const char *name :
         {"voxel_grid_filter", "ndt_matching", "ray_ground_filter",
          "euclidean_cluster", "vision_detection",
          "range_vision_fusion", "imm_ukf_pda_tracker",
          "ukf_track_relay", "naive_motion_prediction",
          "costmap_generator"}) {
        EXPECT_NE(stack.find(name), nullptr) << name;
    }
    EXPECT_EQ(stack.find("nonexistent"), nullptr);
}

TEST(StackConfig, OptionFlagsPruneNodes)
{
    Rig rig;
    StackOptions options;
    options.enableVision = false;
    options.enableTracking = false;
    AutowareStack stack(*rig.graph, rig.map, options);
    // localization (2) + lidar detection (2) + costmap (1).
    EXPECT_EQ(stack.nodes().size(), 5u);
    EXPECT_EQ(stack.vision(), nullptr);
    EXPECT_EQ(stack.trackerNode(), nullptr);
    EXPECT_NE(stack.ndt(), nullptr);
    EXPECT_NE(stack.costmap(), nullptr);
}

TEST(StackConfig, DetectorSelectionReachesVisionNode)
{
    Rig rig;
    StackOptions options;
    options.detector = perception::DetectorKind::Ssd300;
    AutowareStack stack(*rig.graph, rig.map, options);
    ASSERT_NE(stack.vision(), nullptr);
    EXPECT_EQ(stack.vision()->kind(),
              perception::DetectorKind::Ssd300);
    EXPECT_EQ(stack.vision()->network().name, "SSD300");
}

TEST(StackConfig, DefaultMachineMatchesDesignDoc)
{
    const hw::MachineConfig cfg = defaultMachine();
    EXPECT_EQ(cfg.cpu.cores, 4u);
    EXPECT_NEAR(cfg.cpu.freqGhz, 3.7, 1e-9);
    EXPECT_NEAR(cfg.gpu.tflops, 11.0, 1e-9);
    EXPECT_GT(cfg.power.gpuIdleW, 0.0);
}

TEST(StackConfig, CalibrationScalesArePositive)
{
    const NodeCalibration cal = defaultCalibration();
    for (const auto *config :
         {&cal.voxelGridFilter, &cal.ndtMatching,
          &cal.rayGroundFilter, &cal.euclideanCluster,
          &cal.visionDetector, &cal.rangeVisionFusion,
          &cal.immUkfPda, &cal.trackRelay,
          &cal.naiveMotionPredict, &cal.costmapGenerator}) {
        EXPECT_GT(config->workScale, 0.0);
        EXPECT_GE(config->tracePeriod, 1u);
    }
}

TEST(StackConfig, DetectorGpuPresetsOrdered)
{
    // The cost orderings the paper's tables rest on: SSD512's
    // framework sustains the highest efficiency, darknet the lowest;
    // SSD300's small kernels run at the lowest occupancy weight.
    const auto ssd512 =
        gpuParamsFor(perception::DetectorKind::Ssd512);
    const auto ssd300 =
        gpuParamsFor(perception::DetectorKind::Ssd300);
    const auto yolo =
        gpuParamsFor(perception::DetectorKind::Yolov3);
    EXPECT_GT(ssd512.efficiency, yolo.efficiency);
    EXPECT_LT(ssd300.powerWeight, ssd512.powerWeight);
    EXPECT_LT(ssd300.powerWeight, yolo.powerWeight);
}

TEST(StackConfig, ClusterCpuModeRuns)
{
    // GPU-less clustering must still wire up and run (ablation
    // path).
    Rig rig;
    StackOptions options;
    options.clusterOnGpu = false;
    options.enableVision = false;
    options.enableTracking = false;
    options.enableCostmap = false;
    options.enableLocalization = false;
    AutowareStack stack(*rig.graph, rig.map, options);
    EXPECT_EQ(stack.nodes().size(), 2u);

    // Feed one obstacle cloud through /points_no_ground.
    pc::PointCloud cloud;
    util::Rng rng(3);
    for (int i = 0; i < 300; ++i)
        cloud.push_back(pc::Point::fromVec(
            {5.0 + rng.uniform(-0.5, 0.5),
             rng.uniform(-0.5, 0.5), rng.uniform(0.3, 1.5)}));
    int outputs = 0;
    rig.graph->topic<perception::ObjectList>(
                  perception::topics::lidarObjects)
        .addTap([&](const ros::Stamped<perception::ObjectList> &m) {
            outputs += static_cast<int>(m.data.objects.size());
        });
    ros::Header h;
    h.stamp = 0;
    h.origins.lidar = 0;
    rig.graph->advertise<pc::PointCloud>(
                  perception::topics::pointsNoGround)
        .publish(h, cloud, cloud.byteSize());
    rig.eq.runUntil(sim::oneSec);
    EXPECT_EQ(outputs, 1); // one cluster found, no GPU involved
    EXPECT_EQ(rig.machine->gpu().accounting().jobsCompleted, 0u);
}

} // namespace
