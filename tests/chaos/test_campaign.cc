/**
 * @file
 * Tests for av::chaos: campaign sampling determinism and spec
 * validation, cell classification, the resilience frontier fold,
 * worker-count independence of a full campaign (byte-identical
 * outcomes for --jobs 1 vs 4 and a fully cache-warm re-run), the
 * delta-debugging minimizer's shrink guarantee and fixed point, and
 * a golden-pinned minimal repro (regenerate with
 * AVSCOPE_WRITE_GOLDEN=1).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hh"
#include "stack/safety.hh"

namespace {

using namespace av;

/** Shared on-disk cache: chaos tests deliberately reuse it so the
 *  suite warms its own replays (each test still passes standalone,
 *  just slower). */
const char *kCacheDir = "/tmp/avscope_chaos_tests";

/** The small seeded campaign every execution test runs. */
chaos::CampaignSpec
testCampaign()
{
    chaos::CampaignSpec spec;
    spec.seed = 2028;
    spec.cells = 4;
    spec.base = exp::spec()
                    .durationSeconds(6)
                    .seed(2020)
                    .degraded()
                    .invariants()
                    .named("chaos-test");
    return spec;
}

/** Everything an outcome carries, rendered to comparable bytes. */
std::string
digest(const std::vector<chaos::CellOutcome> &outcomes)
{
    std::ostringstream os;
    for (const chaos::CellOutcome &out : outcomes) {
        os << "cell " << out.cell.index << ' '
           << chaos::cellClassName(out.cls) << ' '
           << out.violationCount << ' ' << out.firstViolation << ' '
           << out.unrecovered << ' ' << out.worstPathMs << '\n'
           << chaos::canonicalPlan(out.cell.plan);
        for (const chaos::SampledFault &sf : out.cell.sampled)
            os << "  sampled " << fault::faultKindName(sf.kind)
               << " i=" << sf.intensity << '\n';
    }
    return os.str();
}

/** The bench's shrink metric: fault count dominates, then window
 *  lengths, then intensity fields. */
double
planWeight(const fault::FaultPlan &plan)
{
    double weight =
        static_cast<double>(plan.faults.size()) * 1e15;
    for (const fault::FaultSpec &spec : plan.faults)
        weight += static_cast<double>(spec.duration) +
                  static_cast<double>(spec.respawnDelay) +
                  static_cast<double>(spec.extraDelay) +
                  spec.probability + (1.0 - spec.factor);
    return weight;
}

TEST(Campaign, SpecValidationRejectsUnsatisfiable)
{
    exp::Runner runner(exp::RunnerConfig{1, ""});

    chaos::CampaignSpec zero_cells = testCampaign();
    zero_cells.cells = 0;
    EXPECT_THROW(chaos::CampaignRunner(runner, zero_cells),
                 std::invalid_argument);

    chaos::CampaignSpec bad_counts = testCampaign();
    bad_counts.minFaults = 5;
    bad_counts.maxFaults = 3;
    EXPECT_THROW(chaos::CampaignRunner(runner, bad_counts),
                 std::invalid_argument);

    chaos::CampaignSpec too_many = testCampaign();
    too_many.maxFaults = chaos::paletteSize() + 1;
    EXPECT_THROW(chaos::CampaignRunner(runner, too_many),
                 std::invalid_argument);

    chaos::CampaignSpec bad_intensity = testCampaign();
    bad_intensity.minIntensity = 0.0;
    EXPECT_THROW(chaos::CampaignRunner(runner, bad_intensity),
                 std::invalid_argument);

    chaos::CampaignSpec unarmed = testCampaign();
    unarmed.base = exp::spec().durationSeconds(6).named("unarmed");
    EXPECT_THROW(chaos::CampaignRunner(runner, unarmed),
                 std::invalid_argument);
}

TEST(Campaign, CellSamplingIsDeterministicAndCompound)
{
    exp::Runner runner(exp::RunnerConfig{1, ""});
    const chaos::CampaignRunner a(runner, testCampaign());
    const chaos::CampaignRunner b(runner, testCampaign());
    const chaos::CampaignSpec &spec = a.spec();

    for (std::size_t i = 0; i < 16; ++i) {
        const chaos::CampaignCell cell = a.cellFor(i);
        // Pure function of (spec, index): a second runner samples
        // the identical cell.
        EXPECT_EQ(chaos::canonicalPlan(cell.plan),
                  chaos::canonicalPlan(b.cellFor(i).plan));

        ASSERT_EQ(cell.sampled.size(), cell.plan.faults.size());
        EXPECT_GE(cell.sampled.size(), spec.minFaults);
        EXPECT_LE(cell.sampled.size(), spec.maxFaults);

        // Kinds distinct (sampling without replacement) so the
        // FaultInjector's same-kind ambiguity rejections can never
        // trigger on a sampled plan.
        std::set<fault::FaultKind> kinds;
        for (const chaos::SampledFault &sf : cell.sampled) {
            kinds.insert(sf.kind);
            EXPECT_GE(sf.intensity, spec.minIntensity);
            EXPECT_LE(sf.intensity, spec.maxIntensity);
            // 1/64 grid: exact in binary.
            EXPECT_EQ(sf.intensity * 64.0,
                      static_cast<double>(static_cast<long long>(
                          sf.intensity * 64.0)));
        }
        EXPECT_EQ(kinds.size(), cell.sampled.size());

        // Onsets cluster in the drive's first half so compound
        // windows actually overlap.
        for (const fault::FaultSpec &fs : cell.plan.faults) {
            EXPECT_GE(fs.start, spec.base.driveDuration / 5);
            EXPECT_LE(fs.start, spec.base.driveDuration / 2);
        }
    }

    const chaos::CampaignCell cell = a.cellFor(0);
    const exp::ExperimentSpec cell_spec = a.specFor(cell);
    EXPECT_EQ(cell_spec.label, "chaos-test/cell0");
    EXPECT_EQ(cell_spec.config.faults.faults.size(),
              cell.plan.faults.size());
    EXPECT_TRUE(cell_spec.config.safety.enabled);
}

TEST(Campaign, ClassifyReadsViolationsThenRecovery)
{
    prof::RunResult clean;
    EXPECT_EQ(chaos::classify(clean), chaos::CellClass::Recovered);

    prof::RunResult degraded;
    fault::FaultOutcome never;
    never.recoveryMs = -1.0;
    degraded.faults.push_back(never);
    EXPECT_EQ(chaos::classify(degraded),
              chaos::CellClass::Degraded);

    prof::RunResult violated = degraded;
    stack::SafetyViolation v;
    v.kind = stack::InvariantKind::LocalizationError;
    violated.violations.push_back(v);
    EXPECT_EQ(chaos::classify(violated),
              chaos::CellClass::Violated);
}

TEST(Campaign, FrontierFoldsPerKind)
{
    std::vector<chaos::CellOutcome> outcomes(3);
    auto add = [](chaos::CellOutcome &out, fault::FaultKind kind,
                  double intensity) {
        out.cell.sampled.push_back(
            chaos::SampledFault{kind, intensity});
    };
    // Cell 0 survives lidar@0.25 + gpu@0.5; cell 1 violates
    // lidar@0.75 + camera@0.5; cell 2 survives lidar@0.5.
    outcomes[0].cls = chaos::CellClass::Recovered;
    add(outcomes[0], fault::FaultKind::LidarBlackout, 0.25);
    add(outcomes[0], fault::FaultKind::GpuThrottle, 0.5);
    outcomes[1].cls = chaos::CellClass::Violated;
    add(outcomes[1], fault::FaultKind::LidarBlackout, 0.75);
    add(outcomes[1], fault::FaultKind::CameraBlackout, 0.5);
    outcomes[2].cls = chaos::CellClass::Recovered;
    add(outcomes[2], fault::FaultKind::LidarBlackout, 0.5);

    const auto rows = chaos::resilienceFrontier(outcomes);
    ASSERT_EQ(rows.size(), 3u); // lidar, camera, gpu — in kind order
    EXPECT_EQ(rows[0].kind, fault::FaultKind::LidarBlackout);
    EXPECT_EQ(rows[0].cells, 3u);
    EXPECT_EQ(rows[0].violated, 1u);
    EXPECT_EQ(rows[0].maxSurvivedIntensity, 0.5);
    EXPECT_EQ(rows[0].minViolatedIntensity, 0.75);
    EXPECT_EQ(rows[1].kind, fault::FaultKind::CameraBlackout);
    EXPECT_EQ(rows[1].violated, 1u);
    EXPECT_EQ(rows[1].minViolatedIntensity, 0.5);
    EXPECT_EQ(rows[2].kind, fault::FaultKind::GpuThrottle);
    EXPECT_EQ(rows[2].violated, 0u);
    EXPECT_EQ(rows[2].maxSurvivedIntensity, 0.5);
}

TEST(Campaign, WorkerCountIndependentAndCacheWarmOnRerun)
{
    std::filesystem::remove_all(kCacheDir);
    const std::string cold = std::string(kCacheDir) + "_cold";
    std::filesystem::remove_all(cold);

    exp::Runner serial(exp::RunnerConfig{1, kCacheDir});
    chaos::CampaignRunner first(serial, testCampaign());
    const std::string serial_digest = digest(first.run());

    // The seeded campaign finds at least one violation.
    std::size_t violated = 0;
    for (const chaos::CellOutcome &out : first.outcomes())
        if (out.cls == chaos::CellClass::Violated)
            ++violated;
    EXPECT_GE(violated, 1u);

    // Fresh cache, four workers: byte-identical outcomes.
    exp::Runner wide(exp::RunnerConfig{4, cold});
    chaos::CampaignRunner second(wide, testCampaign());
    EXPECT_EQ(digest(second.run()), serial_digest);
    EXPECT_EQ(wide.executed(), testCampaign().cells);

    // Warm cache: the re-run replays nothing.
    exp::Runner warm(exp::RunnerConfig{2, kCacheDir});
    chaos::CampaignRunner third(warm, testCampaign());
    EXPECT_EQ(digest(third.run()), serial_digest);
    EXPECT_EQ(warm.executed(), 0u);
    EXPECT_EQ(warm.cacheHits(), testCampaign().cells);
}

TEST(Campaign, MinimizerShrinksAndReachesAFixedPoint)
{
    exp::Runner runner(exp::RunnerConfig{2, kCacheDir});
    chaos::CampaignRunner campaign(runner, testCampaign());
    const chaos::CellOutcome *violated_cell = nullptr;
    for (const chaos::CellOutcome &out : campaign.run())
        if (out.cls == chaos::CellClass::Violated) {
            violated_cell = &out;
            break;
        }
    ASSERT_NE(violated_cell, nullptr);

    const chaos::MinimizeResult repro = chaos::minimizeViolation(
        runner, campaign.spec().base, violated_cell->cell.plan);

    // Strict shrink: fewer faults, or shorter/weaker ones.
    EXPECT_LT(planWeight(repro.plan),
              planWeight(violated_cell->cell.plan));
    EXPECT_GE(repro.plan.faults.size(), 1u);
    EXPECT_GT(repro.evaluations, 0u);

    // The repro preserves the original plan's first invariant.
    exp::ExperimentSpec check = campaign.spec().base;
    check.config.faults = repro.plan;
    check.label = "chaos-test/repro-check";
    const prof::RunResult &result =
        runner.result(runner.submit(check));
    EXPECT_GT(result.violationsOf(repro.invariant), 0u);

    // Local minimality: re-minimizing is the identity — every
    // attempted step fails to preserve the violation.
    const chaos::MinimizeResult again = chaos::minimizeViolation(
        runner, campaign.spec().base, repro.plan);
    EXPECT_EQ(chaos::canonicalPlan(again.plan),
              chaos::canonicalPlan(repro.plan));
    for (const chaos::MinimizeStep &step : again.steps)
        EXPECT_FALSE(step.kept) << step.action;
}

TEST(Campaign, MinimalReproMatchesGolden)
{
    const std::string golden_path =
        std::string(AVSCOPE_SOURCE_DIR) +
        "/tests/chaos/golden_repro.txt";

    exp::Runner runner(exp::RunnerConfig{2, kCacheDir});
    chaos::CampaignRunner campaign(runner, testCampaign());
    const chaos::CellOutcome *violated_cell = nullptr;
    for (const chaos::CellOutcome &out : campaign.run())
        if (out.cls == chaos::CellClass::Violated) {
            violated_cell = &out;
            break;
        }
    ASSERT_NE(violated_cell, nullptr);

    const chaos::MinimizeResult repro = chaos::minimizeViolation(
        runner, campaign.spec().base, violated_cell->cell.plan);
    std::ostringstream got;
    got << "invariant " << stack::invariantName(repro.invariant)
        << '\n'
        << chaos::canonicalPlan(repro.plan);

    if (std::getenv("AVSCOPE_WRITE_GOLDEN") != nullptr) {
        std::ofstream os(golden_path, std::ios::binary);
        os << got.str();
        ASSERT_TRUE(os.good());
        GTEST_SKIP() << "golden regenerated at " << golden_path;
    }

    std::ifstream is(golden_path, std::ios::binary);
    ASSERT_TRUE(is.good())
        << "missing " << golden_path
        << " — regenerate with AVSCOPE_WRITE_GOLDEN=1";
    std::ostringstream want;
    want << is.rdbuf();
    EXPECT_EQ(got.str(), want.str());
}

} // namespace
