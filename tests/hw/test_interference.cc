/**
 * @file
 * Focused tests of the CPU interference semantics: demand versus
 * sensitivity, the l1BytesPerCycle fallback, demand-ratio
 * bookkeeping, and scheduler accounting under mixed loads.
 */

#include <gtest/gtest.h>

#include "hw/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace {

using namespace av::hw;
using av::sim::EventQueue;
using av::sim::Tick;

TEST(Interference, SensitivityDefaultsToDemand)
{
    CpuTask task;
    task.memBytesPerCycle = 0.5;
    EXPECT_DOUBLE_EQ(task.effectiveL1BytesPerCycle(), 0.5);
    task.l1BytesPerCycle = 2.0;
    EXPECT_DOUBLE_EQ(task.effectiveL1BytesPerCycle(), 2.0);
}

TEST(Interference, HighSensitivityLowDemandVictim)
{
    // A task whose working set lives in L2 (high L1 traffic, low
    // DRAM demand) is hurt by a streaming co-runner even though it
    // adds no bus pressure itself.
    const auto run = [](double victim_l1) {
        EventQueue eq;
        CpuConfig cfg;
        cfg.cores = 2;
        cfg.freqGhz = 1.0;
        cfg.memBandwidthGBs = 10.0;
        cfg.memPenaltyCyclesPerByte = 10.0;
        CpuModel cpu(eq, cfg);
        Tick victim_done = 0;
        CpuTask hog;
        hog.owner = "hog";
        hog.cycles = 40e6;
        hog.memBytesPerCycle = 4.0; // streams the bus
        hog.l1BytesPerCycle = 4.0;
        hog.onComplete = [] {};
        cpu.submit(std::move(hog));
        CpuTask victim;
        victim.owner = "victim";
        victim.cycles = 4e6;
        victim.memBytesPerCycle = 0.01; // almost no DRAM demand
        victim.l1BytesPerCycle = victim_l1;
        victim.onComplete = [&] { victim_done = eq.now(); };
        cpu.submit(std::move(victim));
        eq.runUntil();
        return av::sim::ticksToMs(victim_done);
    };
    const double insensitive = run(0.01);
    const double sensitive = run(1.5);
    EXPECT_NEAR(insensitive, 4.0, 0.5);
    EXPECT_GT(sensitive, insensitive * 1.5);
}

TEST(Interference, NoCoRunnerNoSlowdown)
{
    // Sensitivity alone is free: an L1-heavy task alone on the
    // machine runs at nominal speed.
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 1;
    cfg.freqGhz = 1.0;
    cfg.memBandwidthGBs = 10.0;
    cfg.memPenaltyCyclesPerByte = 10.0;
    CpuModel cpu(eq, cfg);
    Tick done = 0;
    CpuTask task;
    task.owner = "solo";
    task.cycles = 5e6;
    task.memBytesPerCycle = 0.05;
    task.l1BytesPerCycle = 2.0;
    task.onComplete = [&] { done = eq.now(); };
    cpu.submit(std::move(task));
    eq.runUntil();
    // Own demand barely registers; ~5 ms nominal.
    EXPECT_NEAR(av::sim::ticksToMs(done), 5.0, 0.15);
}

TEST(Interference, DemandRatioTracksRunningSet)
{
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 2;
    cfg.freqGhz = 2.0;
    cfg.memBandwidthGBs = 8.0;
    CpuModel cpu(eq, cfg);
    EXPECT_DOUBLE_EQ(cpu.memDemandRatio(), 0.0);
    CpuTask a;
    a.owner = "a";
    a.cycles = 1e9;
    a.memBytesPerCycle = 1.0; // 2 GB/s at 2 GHz
    a.onComplete = [] {};
    cpu.submit(std::move(a));
    EXPECT_NEAR(cpu.memDemandRatio(), 2.0 / 8.0, 1e-9);
    CpuTask b = {};
    b.owner = "b";
    b.cycles = 1e9;
    b.memBytesPerCycle = 2.0; // 4 GB/s
    b.onComplete = [] {};
    cpu.submit(std::move(b));
    EXPECT_NEAR(cpu.memDemandRatio(), 6.0 / 8.0, 1e-9);
}

TEST(Interference, DisabledByZeroPenalty)
{
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 2;
    cfg.freqGhz = 1.0;
    cfg.memBandwidthGBs = 1.0; // saturated bus
    cfg.memPenaltyCyclesPerByte = 0.0;
    CpuModel cpu(eq, cfg);
    Tick done = 0;
    for (int i = 0; i < 2; ++i) {
        CpuTask t;
        t.owner = "t" + std::to_string(i);
        t.cycles = 3e6;
        t.memBytesPerCycle = 10.0;
        t.l1BytesPerCycle = 10.0;
        t.onComplete = [&] { done = eq.now(); };
        cpu.submit(std::move(t));
    }
    eq.runUntil();
    EXPECT_NEAR(av::sim::ticksToMs(done), 3.0, 0.1);
}

TEST(Interference, PreemptionCountsAccumulate)
{
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 1;
    cfg.freqGhz = 1.0;
    cfg.quantum = av::sim::oneMs;
    CpuModel cpu(eq, cfg);
    int completed = 0;
    for (int i = 0; i < 3; ++i) {
        CpuTask t;
        t.owner = "t";
        t.cycles = 5e6; // 5 ms each on 1 GHz
        t.onComplete = [&] { ++completed; };
        cpu.submit(std::move(t));
    }
    eq.runUntil();
    EXPECT_EQ(completed, 3);
    // 15 ms of work in 1 ms slices with 2 waiting: many rotations.
    EXPECT_GT(cpu.accounting().preemptions, 5u);
}

} // namespace
