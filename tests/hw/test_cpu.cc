/**
 * @file
 * Unit tests for the CPU model: timing, core contention, round-robin
 * fairness, memory interference, accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/cpu.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace {

using namespace av::hw;
using av::sim::EventQueue;
using av::sim::oneMs;
using av::sim::Tick;

CpuConfig
config1Core(double freq_ghz = 1.0)
{
    CpuConfig c;
    c.cores = 1;
    c.freqGhz = freq_ghz;
    c.memPenaltyCyclesPerByte = 0.0;
    return c;
}

TEST(Cpu, SingleTaskRunsAtFrequency)
{
    EventQueue eq;
    CpuModel cpu(eq, config1Core(2.0)); // 2 cycles per ns
    Tick done_at = 0;
    cpu.submit(CpuTask{"a", 2e6, 0.0, 0.0, [&] { done_at = eq.now(); }});
    eq.runUntil();
    EXPECT_NEAR(static_cast<double>(done_at), 1e6, 10.0); // 1 ms
    EXPECT_EQ(cpu.accounting().tasksCompleted, 1u);
}

TEST(Cpu, TwoTasksOneCoreSerializeRoundRobin)
{
    EventQueue eq;
    CpuModel cpu(eq, config1Core(1.0));
    std::vector<Tick> done(2, 0);
    // Each task = 4 ms of work; together 8 ms on one core.
    cpu.submit(CpuTask{"a", 4e6, 0.0, 0.0, [&] { done[0] = eq.now(); }});
    cpu.submit(CpuTask{"b", 4e6, 0.0, 0.0, [&] { done[1] = eq.now(); }});
    eq.runUntil();
    // Round-robin: both finish near the end, total ~8 ms.
    EXPECT_NEAR(av::sim::ticksToMs(done[1]), 8.0, 0.1);
    EXPECT_GT(av::sim::ticksToMs(done[0]), 5.0); // interleaved, not FIFO
    EXPECT_GT(cpu.accounting().preemptions, 0u);
}

TEST(Cpu, TwoCoresRunInParallel)
{
    EventQueue eq;
    CpuConfig cfg = config1Core(1.0);
    cfg.cores = 2;
    CpuModel cpu(eq, cfg);
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i)
        cpu.submit(CpuTask{"t" + std::to_string(i), 4e6, 0.0, 0.0, [&] { done.push_back(eq.now()); }});
    eq.runUntil();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_NEAR(av::sim::ticksToMs(done[0]), 4.0, 0.1);
    EXPECT_NEAR(av::sim::ticksToMs(done[1]), 4.0, 0.1);
}

TEST(Cpu, QueueingDelaysThirdTask)
{
    EventQueue eq;
    CpuConfig cfg = config1Core(1.0);
    cfg.cores = 2;
    CpuModel cpu(eq, cfg);
    Tick third_done = 0;
    cpu.submit(CpuTask{"a", 2e6, 0.0, 0.0, [] {}});
    cpu.submit(CpuTask{"b", 2e6, 0.0, 0.0, [] {}});
    cpu.submit(CpuTask{"c", 1e6, 0.0, 0.0, [&] { third_done = eq.now(); }});
    EXPECT_EQ(cpu.queued(), 1u);
    eq.runUntil();
    // c waits behind a/b; RR slices let it in after ~2 ms quantum
    // rotations; it must finish later than it would alone (1 ms).
    EXPECT_GT(av::sim::ticksToMs(third_done), 1.5);
}

TEST(Cpu, MemoryInterferenceSlowsCoRunners)
{
    // Two memory-hungry tasks on two separate cores: without
    // interference each takes 4 ms; with the shared bus congested
    // they must take measurably longer.
    const auto run = [](double penalty) {
        EventQueue eq;
        CpuConfig cfg;
        cfg.cores = 2;
        cfg.freqGhz = 1.0;
        cfg.memBandwidthGBs = 10.0;
        cfg.memPenaltyCyclesPerByte = penalty;
        CpuModel cpu(eq, cfg);
        Tick last = 0;
        for (int i = 0; i < 2; ++i)
            cpu.submit(CpuTask{"m" + std::to_string(i), 4e6, 8.0, 8.0, [&, i] { last = eq.now(); }});
        eq.runUntil();
        return av::sim::ticksToMs(last);
    };
    const double isolated = run(0.0);
    const double contended = run(2.0);
    EXPECT_NEAR(isolated, 4.0, 0.1);
    EXPECT_GT(contended, isolated * 1.3);
}

TEST(Cpu, MemoryLightTaskLessAffectedThanHog)
{
    // A compute-bound task sharing the machine with a memory hog is
    // slowed far less than the hog itself: interference scales with
    // the victim's own memory intensity.
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 3;
    cfg.freqGhz = 1.0;
    cfg.memBandwidthGBs = 10.0;
    cfg.memPenaltyCyclesPerByte = 2.0;
    CpuModel cpu(eq, cfg);
    Tick light_done = 0, hog_done = 0;
    cpu.submit(CpuTask{"hog1", 20e6, 6.0, 6.0, [] {}});
    cpu.submit(CpuTask{"hog2", 20e6, 6.0, 6.0, [&] { hog_done = eq.now(); }});
    cpu.submit(CpuTask{"light", 4e6, 0.01, 0.01, [&] { light_done = eq.now(); }});
    eq.runUntil();
    // Alone the light task would take 4 ms; allow mild slowdown.
    EXPECT_LT(av::sim::ticksToMs(light_done), 6.0);
    // Each hog alone would take 20 ms; with a co-hog it must be
    // substantially slower.
    EXPECT_GT(av::sim::ticksToMs(hog_done), 30.0);
}

TEST(Cpu, MemSlowdownClamped)
{
    // Absurd intensities must not stall the machine indefinitely:
    // the slowdown clamps at maxMemSlowdown.
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 2;
    cfg.freqGhz = 1.0;
    cfg.memBandwidthGBs = 1.0;
    cfg.memPenaltyCyclesPerByte = 100.0;
    cfg.maxMemSlowdown = 10.0;
    CpuModel cpu(eq, cfg);
    Tick done = 0;
    cpu.submit(CpuTask{"a", 1e6, 50.0, 50.0, [] {}});
    cpu.submit(CpuTask{"b", 1e6, 50.0, 50.0, [&] { done = eq.now(); }});
    eq.runUntil();
    EXPECT_NEAR(av::sim::ticksToMs(done), 10.0, 0.5); // 10x of 1 ms
}

TEST(Cpu, AccountingSumsBusyTime)
{
    EventQueue eq;
    CpuModel cpu(eq, config1Core(1.0));
    cpu.submit(CpuTask{"a", 3e6, 0.0, 0.0, [] {}});
    cpu.submit(CpuTask{"b", 5e6, 0.0, 0.0, [] {}});
    eq.runUntil();
    const CpuAccounting &acct = cpu.accounting();
    EXPECT_NEAR(acct.busyCoreSeconds, 8e-3, 1e-4);
    EXPECT_NEAR(acct.busySecondsByOwner.at("a"), 3e-3, 1e-4);
    EXPECT_NEAR(acct.busySecondsByOwner.at("b"), 5e-3, 1e-4);
}

TEST(Cpu, CompletionCallbackMaySubmit)
{
    EventQueue eq;
    CpuModel cpu(eq, config1Core(1.0));
    Tick second_done = 0;
    cpu.submit(CpuTask{"first", 1e6, 0.0, 0.0, [&] {
        cpu.submit(CpuTask{"second", 1e6, 0.0, 0.0, [&] { second_done = eq.now(); }});
    }});
    eq.runUntil();
    EXPECT_NEAR(av::sim::ticksToMs(second_done), 2.0, 0.1);
}

TEST(Cpu, DramTrafficAccounted)
{
    EventQueue eq;
    CpuConfig cfg = config1Core(1.0);
    CpuModel cpu(eq, cfg);
    cpu.submit(CpuTask{"t", 1e6, 2.0, 2.0, [] {}});
    eq.runUntil();
    EXPECT_NEAR(cpu.accounting().dramBytes, 2e6, 1.0);
}

TEST(Cpu, ManyTasksAllComplete)
{
    EventQueue eq;
    CpuConfig cfg;
    cfg.cores = 4;
    cfg.freqGhz = 3.0;
    CpuModel cpu(eq, cfg);
    int completed = 0;
    for (int i = 0; i < 200; ++i)
        cpu.submit(CpuTask{"t" + std::to_string(i % 7),
                           1e5 + 1e4 * i, 0.1, 0.1,
                           [&] { ++completed; }});
    eq.runUntil();
    EXPECT_EQ(completed, 200);
    EXPECT_EQ(cpu.running(), 0u);
    EXPECT_EQ(cpu.queued(), 0u);
}

} // namespace
