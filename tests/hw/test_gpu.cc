/**
 * @file
 * Unit tests for the GPU model: roofline durations, FIFO queueing,
 * copy engine, accounting, and tests for power + phase chains.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/gpu.hh"
#include "hw/machine.hh"
#include "hw/power.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace {

using namespace av::hw;
using av::sim::EventQueue;
using av::sim::Tick;

GpuConfig
simpleGpu()
{
    GpuConfig cfg;
    cfg.tflops = 10.0;
    cfg.computeEfficiency = 1.0; // exact roofline for the math below
    cfg.memBandwidthGBs = 100.0;
    cfg.pcieGBs = 10.0;
    cfg.kernelOverhead = 0;
    cfg.copyOverhead = 0;
    return cfg;
}

TEST(Gpu, KernelDurationComputeBound)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    // 10 TFLOPS = 1e4 flops/ns. 1e7 flops -> 1000 ns.
    const Tick d = gpu.kernelDuration(GpuKernel{1e7, 0.0});
    EXPECT_EQ(d, 1000u);
}

TEST(Gpu, KernelDurationMemoryBound)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    // 100 GB/s = 100 bytes/ns. 1e6 bytes -> 10000 ns > compute.
    const Tick d = gpu.kernelDuration(GpuKernel{1e6, 1e6});
    EXPECT_EQ(d, 10000u);
}

TEST(Gpu, CopyDuration)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    // 10 GB/s = 10 bytes/ns. 1e5 bytes -> 1e4 ns.
    EXPECT_EQ(gpu.copyDuration(1e5), 10000u);
}

TEST(Gpu, JobRunsStagesInOrder)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    Tick done = 0;
    GpuJob job;
    job.owner = "ssd";
    job.h2dBytes = 1e5;                       // 10 us
    job.kernels = {GpuKernel{1e7, 0.0},       // 1 us
                   GpuKernel{2e7, 0.0}};      // 2 us
    job.d2hBytes = 2e5;                       // 20 us
    job.onComplete = [&] { done = eq.now(); };
    gpu.submit(std::move(job));
    eq.runUntil();
    EXPECT_EQ(done, 10000u + 1000u + 2000u + 20000u);
    EXPECT_EQ(gpu.accounting().jobsCompleted, 1u);
    EXPECT_EQ(gpu.accounting().kernelsExecuted, 2u);
}

TEST(Gpu, SecondJobQueuesBehindFirst)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    std::vector<Tick> done(2);
    for (int i = 0; i < 2; ++i) {
        GpuJob job;
        job.owner = "owner" + std::to_string(i);
        job.kernels = {GpuKernel{1e8, 0.0}}; // 10 us each
        job.onComplete = [&done, &eq, i] { done[i] = eq.now(); };
        gpu.submit(std::move(job));
    }
    eq.runUntil();
    EXPECT_EQ(done[0], 10000u);
    EXPECT_EQ(done[1], 20000u); // serialized on the compute engine
}

TEST(Gpu, KernelsInterleaveAcrossJobs)
{
    // Job A has two 10 us kernels, job B one 10 us kernel submitted
    // right after. Kernel-granular FIFO: A1, B1, A2 -> B finishes
    // before A.
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    Tick done_a = 0, done_b = 0;
    GpuJob a;
    a.owner = "a";
    a.kernels = {GpuKernel{1e8, 0.0}, GpuKernel{1e8, 0.0}};
    a.onComplete = [&] { done_a = eq.now(); };
    GpuJob b;
    b.owner = "b";
    b.kernels = {GpuKernel{1e8, 0.0}};
    b.onComplete = [&] { done_b = eq.now(); };
    gpu.submit(std::move(a));
    gpu.submit(std::move(b));
    eq.runUntil();
    EXPECT_LT(done_b, done_a);
    EXPECT_EQ(done_a, 30000u);
    EXPECT_EQ(done_b, 20000u);
}

TEST(Gpu, CopiesOverlapCompute)
{
    // Job A: pure compute. Job B: pure copy. They proceed in
    // parallel on separate engines.
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    Tick done_a = 0, done_b = 0;
    GpuJob a;
    a.owner = "a";
    a.kernels = {GpuKernel{2e8, 0.0}}; // 20 us compute
    a.onComplete = [&] { done_a = eq.now(); };
    GpuJob b;
    b.owner = "b";
    b.h2dBytes = 2e5; // 20 us copy
    b.onComplete = [&] { done_b = eq.now(); };
    gpu.submit(std::move(a));
    gpu.submit(std::move(b));
    eq.runUntil();
    EXPECT_EQ(done_a, 20000u);
    EXPECT_EQ(done_b, 20000u);
}

TEST(Gpu, AccountingTracksOwnersAndResidency)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    GpuJob job;
    job.owner = "cluster";
    job.kernels = {GpuKernel{1e8, 0.0, 2.0}}; // weight 2
    job.onComplete = [] {};
    gpu.submit(std::move(job));
    eq.runUntil();
    const GpuAccounting &acct = gpu.accounting();
    EXPECT_NEAR(acct.kernelActiveSeconds, 1e-5, 1e-9);
    EXPECT_NEAR(acct.weightedActiveSeconds, 2e-5, 1e-9);
    EXPECT_NEAR(acct.activeSecondsByOwner.at("cluster"), 1e-5, 1e-9);
    EXPECT_NEAR(acct.residentSecondsByOwner.at("cluster"), 1e-5,
                1e-9);
}

TEST(Gpu, ResidencyIncludesQueueWait)
{
    EventQueue eq;
    GpuModel gpu(eq, simpleGpu());
    GpuJob first;
    first.owner = "hog";
    first.kernels = {GpuKernel{1e9, 0.0}}; // 100 us
    first.onComplete = [] {};
    GpuJob second;
    second.owner = "victim";
    second.kernels = {GpuKernel{1e7, 0.0}}; // 1 us active
    second.onComplete = [] {};
    gpu.submit(std::move(first));
    gpu.submit(std::move(second));
    eq.runUntil();
    const GpuAccounting &acct = gpu.accounting();
    // victim was resident ~101 us but active only 1 us.
    EXPECT_NEAR(acct.residentSecondsByOwner.at("victim"), 101e-6,
                2e-6);
    EXPECT_NEAR(acct.activeSecondsByOwner.at("victim"), 1e-6, 1e-7);
}

TEST(Power, CpuScalesWithBusyCores)
{
    PowerModel power(PowerConfig{});
    const double idle = power.cpuPower(0.0, 0.0);
    const double busy = power.cpuPower(4.0, 5.0);
    EXPECT_DOUBLE_EQ(idle, power.config().cpuIdleW);
    EXPECT_GT(busy, idle + 4.0 * power.config().cpuPerCoreW - 1e-9);
}

TEST(Power, GpuSaturatesAtWeightOne)
{
    PowerModel power(PowerConfig{});
    const double p1 = power.gpuPower(1.0, 0.0);
    const double p2 = power.gpuPower(5.0, 0.0); // clamped
    EXPECT_DOUBLE_EQ(p1, p2);
    EXPECT_DOUBLE_EQ(power.gpuPower(0.0, 0.0),
                     power.config().gpuIdleW);
}

TEST(Machine, PhaseChainAlternatesCpuGpu)
{
    EventQueue eq;
    MachineConfig cfg;
    cfg.cpu.cores = 1;
    cfg.cpu.freqGhz = 1.0;
    cfg.cpu.memPenaltyCyclesPerByte = 0.0;
    cfg.gpu = simpleGpu();
    Machine machine(eq, cfg);

    Tick done = 0;
    std::vector<Phase> phases;
    phases.push_back(Phase::makeCpu(CpuTask{"n", 1e6, 0.0, 0.0, nullptr}));
    GpuJob job;
    job.owner = "n";
    job.kernels = {GpuKernel{1e7, 0.0}}; // 1 us
    phases.push_back(Phase::makeGpu(std::move(job)));
    phases.push_back(Phase::makeCpu(CpuTask{"n", 2e6, 0.0, 0.0, nullptr}));
    runPhases(machine, std::move(phases), [&] { done = eq.now(); });
    eq.runUntil();
    EXPECT_EQ(done, 1000000u + 1000u + 2000000u);
}

} // namespace
