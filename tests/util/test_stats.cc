/**
 * @file
 * Unit tests for util/stats: streaming accumulators, quantiles,
 * summaries, reservoir behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hh"
#include "util/stats.hh"

namespace {

using av::util::DistributionSummary;
using av::util::RunningStats;
using av::util::SampleSeries;

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Unbiased variance of this classic sequence is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, SingleSampleVarianceZero)
{
    RunningStats s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(RunningStats, MergeEqualsCombined)
{
    RunningStats a, b, whole;
    av::util::Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.gaussian(10.0, 3.0);
        (i % 2 ? a : b).add(v);
        whole.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(SampleSeries, QuantilesOfUniformRamp)
{
    SampleSeries s(1 << 16);
    for (int i = 0; i <= 1000; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
    EXPECT_NEAR(s.quantile(0.5), 500.0, 1.0);
    EXPECT_NEAR(s.quantile(0.25), 250.0, 1.0);
    EXPECT_NEAR(s.quantile(0.75), 750.0, 1.0);
}

TEST(SampleSeries, SummaryOrdering)
{
    SampleSeries s;
    av::util::Rng rng(99);
    for (int i = 0; i < 5000; ++i)
        s.add(rng.logNormalMeanCv(20.0, 0.5));
    const DistributionSummary sum = s.summarize();
    EXPECT_EQ(sum.count, 5000u);
    EXPECT_LE(sum.min, sum.q1);
    EXPECT_LE(sum.q1, sum.median);
    EXPECT_LE(sum.median, sum.q3);
    EXPECT_LE(sum.q3, sum.p99);
    EXPECT_LE(sum.p99, sum.max);
    EXPECT_GT(sum.stddev, 0.0);
    EXPECT_NEAR(sum.mean, 20.0, 1.0);
}

TEST(SampleSeries, ReservoirKeepsExactExtremes)
{
    // Capacity far below the sample count: min/max/mean must stay
    // exact because they bypass the reservoir.
    SampleSeries s(128);
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(i % 1000));
    s.add(-5.0);
    s.add(99999.0);
    EXPECT_EQ(s.count(), 100002u);
    EXPECT_DOUBLE_EQ(s.summarize().min, -5.0);
    EXPECT_DOUBLE_EQ(s.summarize().max, 99999.0);
    EXPECT_EQ(s.samples().size(), 128u);
}

TEST(SampleSeries, ReservoirQuantilesApproximate)
{
    SampleSeries s(4096);
    av::util::Rng rng(5);
    for (int i = 0; i < 200000; ++i)
        s.add(rng.uniform(0.0, 100.0));
    EXPECT_NEAR(s.quantile(0.5), 50.0, 3.0);
    EXPECT_NEAR(s.quantile(0.9), 90.0, 3.0);
}

TEST(SampleSeries, HistogramCountsEverything)
{
    SampleSeries s;
    for (int i = 0; i < 100; ++i)
        s.add(static_cast<double>(i));
    const auto h = s.histogram(10);
    ASSERT_EQ(h.size(), 10u);
    std::size_t total = 0;
    for (std::size_t b : h)
        total += b;
    EXPECT_EQ(total, 100u);
    // Uniform ramp: every bin equally filled.
    for (std::size_t b : h)
        EXPECT_EQ(b, 10u);
}

TEST(SampleSeries, HistogramDegenerate)
{
    SampleSeries s;
    for (int i = 0; i < 7; ++i)
        s.add(3.14);
    const auto h = s.histogram(4);
    std::size_t total = 0;
    for (std::size_t b : h)
        total += b;
    EXPECT_EQ(total, 7u);
}

TEST(SampleSeries, ResetForgets)
{
    SampleSeries s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(SampleSeries, ToStringMentionsFields)
{
    SampleSeries s;
    s.add(1.0);
    s.add(2.0);
    const std::string str = av::util::toString(s.summarize());
    EXPECT_NE(str.find("mean="), std::string::npos);
    EXPECT_NE(str.find("q1="), std::string::npos);
    EXPECT_NE(str.find("n=2"), std::string::npos);
}

/** Property sweep: quantile() is monotone in q for random data. */
class QuantileMonotoneTest : public ::testing::TestWithParam<int>
{};

TEST_P(QuantileMonotoneTest, MonotoneInQ)
{
    SampleSeries s;
    av::util::Rng rng(GetParam());
    for (int i = 0; i < 1000; ++i)
        s.add(rng.gaussian(0.0, 10.0));
    double prev = s.quantile(0.0);
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        const double v = s.quantile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 17, 100));

} // namespace
