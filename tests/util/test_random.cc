/**
 * @file
 * Unit tests for util/random: determinism, distribution moments,
 * stream forking.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "util/stats.hh"

namespace {

using av::util::Rng;
using av::util::RunningStats;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 7.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 7.0);
    }
}

TEST(Rng, UniformIntCoversInclusiveRange)
{
    Rng rng(4);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= (v == 2);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.gaussian(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(6);
    RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.exponential(0.5));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(7);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, LogNormalMeanCvMoments)
{
    Rng rng(8);
    RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.logNormalMeanCv(50.0, 0.2));
    EXPECT_NEAR(s.mean(), 50.0, 0.5);
    EXPECT_NEAR(s.stddev() / s.mean(), 0.2, 0.01);
    EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, ForkIndependentStreams)
{
    Rng parent(9);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkDeterministic)
{
    Rng p1(11), p2(11);
    Rng a = p1.fork(5);
    Rng b = p2.fork(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());
}

} // namespace
