/**
 * @file
 * Unit tests for util/logging: thresholds, formatting, fatal/panic
 * semantics (gem5 convention: fatal = user error/exit(1), panic =
 * internal bug/abort()).
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace {

using namespace av::util;

TEST(Logging, ThresholdRoundTrip)
{
    const LogLevel before = logThreshold();
    setLogThreshold(LogLevel::Error);
    EXPECT_EQ(logThreshold(), LogLevel::Error);
    setLogThreshold(before);
}

TEST(Logging, FormatConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::format("x=", 42, " y=", 1.5, " s=", "ok"),
              "x=42 y=1.5 s=ok");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config value ", 7),
                ::testing::ExitedWithCode(1), "bad config value 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant ", "broken"),
                 "internal invariant broken");
}

TEST(LoggingDeath, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(AV_ASSERT(1 == 2, "math left the building"),
                 "assertion failed");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    AV_ASSERT(2 + 2 == 4, "never printed");
    SUCCEED();
}

} // namespace
