/**
 * @file
 * Unit tests for util/flags command-line parsing.
 */

#include <gtest/gtest.h>

#include <array>

#include "util/flags.hh"

namespace {

using av::util::Flags;

Flags
parse(std::vector<const char *> argv,
      const std::vector<std::string> &known)
{
    argv.insert(argv.begin(), "prog");
    return Flags(static_cast<int>(argv.size()),
                 const_cast<char **>(argv.data()), known);
}

TEST(Flags, EqualsForm)
{
    const Flags f = parse({"--duration=120", "--detector=yolo"},
                          {"duration", "detector"});
    EXPECT_EQ(f.getInt("duration", 0), 120);
    EXPECT_EQ(f.getString("detector"), "yolo");
}

TEST(Flags, SpaceForm)
{
    const Flags f = parse({"--duration", "90"}, {"duration"});
    EXPECT_EQ(f.getInt("duration", 0), 90);
}

TEST(Flags, BareBooleans)
{
    const Flags f = parse({"--csv"}, {"csv", "verbose"});
    EXPECT_TRUE(f.getBool("csv"));
    EXPECT_FALSE(f.getBool("verbose"));
    EXPECT_TRUE(f.getBool("verbose", true)); // default honoured
}

TEST(Flags, Defaults)
{
    const Flags f = parse({}, {"x"});
    EXPECT_EQ(f.getInt("x", 7), 7);
    EXPECT_DOUBLE_EQ(f.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(f.getString("x", "d"), "d");
    EXPECT_FALSE(f.has("x"));
}

TEST(Flags, Positional)
{
    const Flags f = parse({"alpha", "--k=1", "beta"}, {"k"});
    ASSERT_EQ(f.positional().size(), 2u);
    EXPECT_EQ(f.positional()[0], "alpha");
    EXPECT_EQ(f.positional()[1], "beta");
}

TEST(Flags, DoubleParsing)
{
    const Flags f = parse({"--scale=0.25"}, {"scale"});
    EXPECT_DOUBLE_EQ(f.getDouble("scale", 1.0), 0.25);
}

TEST(FlagsDeath, UnknownFlagFatal)
{
    EXPECT_EXIT(parse({"--nope"}, {"yep"}),
                ::testing::ExitedWithCode(1), "unknown flag");
}

} // namespace
