/**
 * @file
 * Unit tests for util/table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace {

using av::util::Table;

TEST(Table, PrintAlignsColumns)
{
    Table t("Demo", {"node", "latency"});
    t.addRow({"ndt_matching", "25.1"});
    t.addRow({"x", "3"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("ndt_matching"), std::string::npos);
    EXPECT_NE(out.find("latency"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t("", {"a", "b"});
    t.addRow({"hello, world", "quo\"te"});
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"hello, world\""), std::string::npos);
    EXPECT_NE(out.find("\"quo\"\"te\""), std::string::npos);
}

TEST(Table, CsvHeaderFirst)
{
    Table t("Title ignored", {"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str().rfind("x,y\n", 0), 0u);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(0.1295), "12.95%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, SketchDistributionShapes)
{
    // Peak in the middle must render a denser glyph there.
    std::vector<std::size_t> hist = {0, 1, 2, 10, 2, 1, 0, 0};
    const std::string s = av::util::sketchDistribution(hist, 8);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(s[3], '#');
    EXPECT_EQ(s[0], ' ');
}

TEST(Table, SketchEmpty)
{
    EXPECT_EQ(av::util::sketchDistribution({}, 10), "");
}

} // namespace
