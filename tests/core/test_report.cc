/**
 * @file
 * Tests for the CSV run-report writer: files exist, parse as CSV,
 * and agree with the in-memory measurements.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hh"

namespace {

using namespace av;

std::vector<std::vector<std::string>>
readCsv(const std::filesystem::path &path)
{
    std::vector<std::vector<std::string>> rows;
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line)) {
        std::vector<std::string> cells;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ','))
            cells.push_back(cell);
        rows.push_back(std::move(cells));
    }
    return rows;
}

TEST(Report, WritesAllFilesWithConsistentContent)
{
    world::ScenarioConfig scenario;
    scenario.seed = 55;
    auto drive = prof::makeDrive(scenario, 10 * sim::oneSec);
    prof::RunConfig cfg;
    cfg.stack.detector = perception::DetectorKind::Ssd300;
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    const std::string dir = "/tmp/avscope_report_test";
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(prof::writeRunReport(run, dir));

    for (const char *name :
         {"node_latency.csv", "paths.csv", "drops.csv",
          "utilization.csv", "power.csv", "counters.csv"}) {
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(dir) / name))
            << name;
    }

    // node_latency.csv: header + one row per latency series, and
    // the mean column matches the in-memory summary.
    const auto latency =
        readCsv(std::filesystem::path(dir) / "node_latency.csv");
    const auto summaries = run.nodeLatencies();
    ASSERT_EQ(latency.size(), summaries.size() + 1);
    EXPECT_EQ(latency[0][0], "node");
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        EXPECT_EQ(latency[i + 1][0], summaries[i].name);
        EXPECT_NEAR(std::stod(latency[i + 1][5]),
                    summaries[i].summary.mean, 1e-3)
            << summaries[i].name;
    }

    // paths.csv: the four Table IV paths.
    const auto paths =
        readCsv(std::filesystem::path(dir) / "paths.csv");
    ASSERT_EQ(paths.size(), 5u);
    EXPECT_EQ(paths[1][0], "localization");
    EXPECT_GT(std::stod(paths[1][4]), 0.0); // mean_ms

    // power.csv: cpu and gpu rows with sane watts.
    const auto power =
        readCsv(std::filesystem::path(dir) / "power.csv");
    ASSERT_EQ(power.size(), 3u);
    EXPECT_EQ(power[1][0], "cpu");
    EXPECT_NEAR(std::stod(power[1][1]),
                run.power().cpuWatts().mean(), 1e-2);
    EXPECT_EQ(power[2][0], "gpu");

    // counters.csv: vision row has the SSD branch-miss signature.
    const auto counters =
        readCsv(std::filesystem::path(dir) / "counters.csv");
    bool saw_vision = false;
    for (const auto &row : counters) {
        if (row[0] == "vision_detection") {
            saw_vision = true;
            EXPECT_GT(std::stod(row[4]), 0.01); // branch_miss
        }
    }
    EXPECT_TRUE(saw_vision);

    std::filesystem::remove_all(dir);
}

TEST(Report, FailsOnUnwritableDirectory)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 2 * sim::oneSec);
    prof::CharacterizationRun run(drive, prof::RunConfig{});
    run.execute();
    EXPECT_FALSE(prof::writeRunReport(
        run, "/proc/definitely/not/writable"));
}

} // namespace
