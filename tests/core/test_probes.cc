/**
 * @file
 * Unit tests for the profiling probes against hand-driven machines
 * and message graphs (no full stack): utilization and power
 * sampling, path tracing over synthetic lineages, drop collection.
 */

#include <gtest/gtest.h>

#include "core/probes.hh"

namespace {

using namespace av;
using av::sim::oneMs;
using av::sim::oneSec;

struct Rig
{
    sim::EventQueue eq;
    hw::MachineConfig mcfg;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<ros::RosGraph> graph;

    Rig()
    {
        mcfg.cpu.cores = 2;
        mcfg.cpu.freqGhz = 1.0;
        mcfg.cpu.memPenaltyCyclesPerByte = 0.0;
        machine = std::make_unique<hw::Machine>(eq, mcfg);
        graph = std::make_unique<ros::RosGraph>(*machine);
    }
};

TEST(UtilizationMonitor, MeasuresBusyShare)
{
    Rig rig;
    prof::UtilizationMonitor monitor(rig.eq, *rig.machine);
    monitor.start();
    // Owner "worker" busy 0.4 s of every second on one of 2 cores:
    // submit 10 x 40 ms tasks spread over 10 s.
    for (int i = 0; i < 10; ++i) {
        rig.eq.schedule(static_cast<sim::Tick>(i) * oneSec,
                        [&rig] {
                            rig.machine->cpu().submit(hw::CpuTask{
                                "worker", 40e6, 0.0, 0.0, [] {}});
                        });
    }
    rig.eq.runUntil(10 * oneSec + oneMs);
    monitor.stop();

    ASSERT_TRUE(monitor.rows().count("worker"));
    // 40 ms per 1 s window on a 2-core machine = 2% of the machine.
    EXPECT_NEAR(monitor.rows().at("worker").cpuShare.mean(), 0.02,
                0.004);
    EXPECT_NEAR(monitor.totalCpu().mean(), 0.02, 0.004);
}

TEST(UtilizationMonitor, GpuResidencyPerOwner)
{
    Rig rig;
    prof::UtilizationMonitor monitor(rig.eq, *rig.machine);
    monitor.start();
    for (int i = 0; i < 5; ++i) {
        rig.eq.schedule(static_cast<sim::Tick>(i) * oneSec, [&rig] {
            hw::GpuJob job;
            job.owner = "infer";
            // 11 TFLOPS default: 1.1e9 flops ~ 0.1 ms... make 55e9
            // for ~5 ms active.
            job.kernels = {hw::GpuKernel{55e9, 0.0}};
            job.onComplete = [] {};
            rig.machine->gpu().submit(std::move(job));
        });
    }
    rig.eq.runUntil(5 * oneSec + oneMs);
    monitor.stop();
    ASSERT_TRUE(monitor.rows().count("infer"));
    EXPECT_NEAR(monitor.rows().at("infer").gpuShare.mean(), 0.005,
                0.002);
}

TEST(PowerMonitor, IdleMachineAtIdlePower)
{
    Rig rig;
    prof::PowerMonitor monitor(rig.eq, *rig.machine);
    monitor.start();
    rig.eq.runUntil(5 * oneSec);
    monitor.stop();
    EXPECT_NEAR(monitor.cpuWatts().mean(),
                rig.mcfg.power.cpuIdleW, 0.01);
    EXPECT_NEAR(monitor.gpuWatts().mean(),
                rig.mcfg.power.gpuIdleW, 0.01);
    EXPECT_NEAR(monitor.cpuEnergyJ(),
                rig.mcfg.power.cpuIdleW * 5.0, 0.5);
}

TEST(PowerMonitor, BusyCoreRaisesPower)
{
    Rig rig;
    prof::PowerMonitor monitor(rig.eq, *rig.machine);
    monitor.start();
    // One core fully busy for 4 s.
    rig.machine->cpu().submit(
        hw::CpuTask{"burn", 4e9, 0.0, 0.0, [] {}});
    rig.eq.runUntil(4 * oneSec + oneMs);
    monitor.stop();
    EXPECT_NEAR(monitor.cpuWatts().mean(),
                rig.mcfg.power.cpuIdleW +
                    rig.mcfg.power.cpuPerCoreW,
                0.3);
}

TEST(PathTracer, RoutesOriginsToTheRightSeries)
{
    Rig rig;
    prof::PathTracer tracer(*rig.graph);

    auto pose_pub = rig.graph->advertise<perception::PoseEstimate>(
        perception::topics::ndtPose);
    auto costmap_pub = rig.graph->advertise<perception::Costmap>(
        perception::topics::costmap);

    rig.eq.schedule(50 * oneMs, [&] {
        ros::Header h;
        h.stamp = rig.eq.now();
        h.origins.lidar = 10 * oneMs; // 40 ms old
        pose_pub.publish(h, perception::PoseEstimate{}, 64);
    });
    rig.eq.schedule(100 * oneMs, [&] {
        ros::Header h;
        h.stamp = rig.eq.now();
        h.origins.lidar = 20 * oneMs;  // 80 ms -> cluster path
        h.origins.camera = 40 * oneMs; // 60 ms -> vision path
        costmap_pub.publish(h, perception::Costmap{}, 64);
    });
    rig.eq.schedule(200 * oneMs, [&] {
        ros::Header h;
        h.stamp = rig.eq.now();
        h.origins.lidar = 170 * oneMs; // 30 ms -> points path
        costmap_pub.publish(h, perception::Costmap{}, 64);
    });
    rig.eq.runUntil(300 * oneMs);

    EXPECT_EQ(tracer.series(prof::Path::Localization).count(), 1u);
    EXPECT_NEAR(tracer.series(prof::Path::Localization)
                    .running()
                    .mean(),
                40.0, 1e-9);
    EXPECT_NEAR(tracer.series(prof::Path::CostmapClusterObj)
                    .running()
                    .mean(),
                80.0, 1e-9);
    EXPECT_NEAR(tracer.series(prof::Path::CostmapVisionObj)
                    .running()
                    .mean(),
                60.0, 1e-9);
    EXPECT_NEAR(tracer.series(prof::Path::CostmapPoints)
                    .running()
                    .mean(),
                30.0, 1e-9);
    EXPECT_NEAR(tracer.worstCaseMean(), 80.0, 1e-9);
    EXPECT_NEAR(tracer.worstCaseMax(), 80.0, 1e-9);
}

TEST(DropCollection, ReportsPerSubscription)
{
    Rig rig;
    ros::Node slow(*rig.graph, "slow");
    struct M
    {
        int x;
    };
    slow.subscribe<M>("/data", 1,
                      [&rig](const ros::Stamped<M> &,
                             std::function<void()> done) {
                          rig.eq.scheduleAfter(oneSec, done);
                      });
    auto pub = rig.graph->advertise<M>("/data");
    for (int i = 0; i < 6; ++i)
        pub.publish(ros::Header{}, M{i}, 8);
    rig.eq.runUntil(10 * oneSec);

    const auto drops = prof::collectDrops(*rig.graph);
    ASSERT_EQ(drops.size(), 1u);
    EXPECT_EQ(drops[0].topic, "/data");
    EXPECT_EQ(drops[0].node, "slow");
    EXPECT_EQ(drops[0].delivered, 6u);
    EXPECT_EQ(drops[0].dropped, 4u);
    EXPECT_NEAR(drops[0].dropRate(), 4.0 / 6.0, 1e-9);
}

} // namespace
