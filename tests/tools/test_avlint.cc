/**
 * @file
 * Fixture-driven tests for avlint: every rule firing with exact rule
 * id and line number, path-scoped exemptions, and the suppression
 * comment syntax. Fixtures live under tests/tools/fixtures/ and are
 * read at runtime (never compiled).
 */

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "avlint.hh"

namespace {

using av::lint::Diagnostic;
using av::lint::lintFile;

std::string
fixture(const std::string &name)
{
    return std::string(AVLINT_FIXTURE_DIR) + "/" + name;
}

/** (rule, line) pairs, sorted, for compact comparison. */
std::vector<std::pair<std::string, int>>
ruleLines(const std::vector<Diagnostic> &diags)
{
    std::vector<std::pair<std::string, int>> out;
    for (const Diagnostic &d : diags)
        out.emplace_back(d.rule, d.line);
    std::sort(out.begin(), out.end());
    return out;
}

using Pairs = std::vector<std::pair<std::string, int>>;

TEST(Avlint, CleanFileHasNoFindings)
{
    const auto diags =
        lintFile(fixture("clean.cc"), "src/fixture/clean.cc");
    EXPECT_TRUE(diags.empty());
}

TEST(Avlint, WallClockSourcesFlaggedWithLines)
{
    const auto diags = lintFile(fixture("wall_clock.cc"),
                                "src/fixture/wall_clock.cc");
    EXPECT_EQ(ruleLines(diags), (Pairs{{"wall-clock", 8},
                                       {"wall-clock", 9},
                                       {"wall-clock", 10},
                                       {"wall-clock", 11}}));
}

TEST(Avlint, UtilRandomIsExemptFromWallClock)
{
    const auto diags =
        lintFile(fixture("wall_clock.cc"), "src/util/random.cc");
    EXPECT_TRUE(diags.empty());
}

TEST(Avlint, RawTimeArithFlaggedButSentinelsLegal)
{
    const auto diags = lintFile(fixture("time_arith.cc"),
                                "src/fixture/time_arith.cc");
    EXPECT_EQ(ruleLines(diags), (Pairs{{"raw-time-arith", 8}}));
}

TEST(Avlint, IncludeGuardMismatchNamesExpectedGuard)
{
    const auto diags = lintFile(fixture("guard_wrong.hh"),
                                "src/world/guard_wrong.hh");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "include-guard");
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_NE(diags[0].message.find("AVSCOPE_WORLD_GUARD_WRONG_HH"),
              std::string::npos);
}

TEST(Avlint, UsingNamespaceInHeaderFlagged)
{
    const auto diags = lintFile(fixture("using_namespace.hh"),
                                "src/world/using_namespace.hh");
    EXPECT_EQ(ruleLines(diags),
              (Pairs{{"using-namespace-header", 6}}));
}

TEST(Avlint, UnorderedIterationFlaggedForLocals)
{
    const auto diags = lintFile(fixture("unordered_iter.cc"),
                                "src/fixture/unordered_iter.cc");
    EXPECT_EQ(ruleLines(diags), (Pairs{{"unordered-iter", 11},
                                       {"unordered-iter", 13}}));
}

TEST(Avlint, UnorderedIterationSeesCompanionHeaderMembers)
{
    const auto diags = lintFile(fixture("member_iter.cc"),
                                "src/fixture/member_iter.cc");
    EXPECT_EQ(ruleLines(diags), (Pairs{{"unordered-iter", 10}}));
}

TEST(Avlint, NakedNewDeleteFlaggedButDeletedFunctionsLegal)
{
    const auto diags = lintFile(fixture("new_delete.cc"),
                                "src/fixture/new_delete.cc");
    EXPECT_EQ(ruleLines(diags), (Pairs{{"raw-new-delete", 12},
                                       {"raw-new-delete", 14}}));
}

TEST(Avlint, PrintFlaggedInLibraryCodeOnly)
{
    const auto in_src = lintFile(fixture("print_library.cc"),
                                 "src/fixture/print_library.cc");
    EXPECT_EQ(ruleLines(in_src), (Pairs{{"print-in-library", 8},
                                        {"print-in-library", 9}}));

    const auto in_bench = lintFile(fixture("print_library.cc"),
                                   "bench/print_library.cc");
    EXPECT_TRUE(in_bench.empty());
}

TEST(Avlint, MutableGlobalFlaggedAtNamespaceScope)
{
    const auto in_src = lintFile(fixture("mutable_global.cc"),
                                 "src/fixture/mutable_global.cc");
    EXPECT_EQ(ruleLines(in_src), (Pairs{{"mutable-global", 9},
                                        {"mutable-global", 10},
                                        {"mutable-global", 11},
                                        {"mutable-global", 12}}));

    // Benches and tools own their process; only src/ is library
    // code bound by the Runner's isolation contract.
    const auto in_tools = lintFile(fixture("mutable_global.cc"),
                                   "tools/mutable_global.cc");
    EXPECT_TRUE(in_tools.empty());
}

TEST(Avlint, UnseededRandomFlaggedInLibraryCodeOnly)
{
    const auto in_src = lintFile(fixture("unseeded_random.cc"),
                                 "src/fixture/unseeded_random.cc");
    EXPECT_EQ(ruleLines(in_src), (Pairs{{"unseeded-random", 18},
                                        {"unseeded-random", 19},
                                        {"unseeded-random", 20}}));

    // The generator's own implementation may default-construct;
    // benches and tools are outside the replay contract.
    const auto in_util = lintFile(fixture("unseeded_random.cc"),
                                  "src/util/random.cc");
    EXPECT_TRUE(in_util.empty());
    const auto in_bench = lintFile(fixture("unseeded_random.cc"),
                                   "bench/unseeded_random.cc");
    EXPECT_TRUE(in_bench.empty());
}

TEST(Avlint, MutableLoanFlagsReadsAfterPublishMove)
{
    // Fires in every tree (the loan contract is not src/-specific):
    // a read after publish(std::move(...)) and a sibling argument
    // evaluated in the same call; hoisted reads, reassignment and
    // fresh scopes stay quiet.
    const auto in_src = lintFile(fixture("mutable_loan.cc"),
                                 "src/fixture/mutable_loan.cc");
    EXPECT_EQ(ruleLines(in_src), (Pairs{{"mutable-loan", 23},
                                        {"mutable-loan", 31}}));

    const auto in_bench = lintFile(fixture("mutable_loan.cc"),
                                   "bench/mutable_loan.cc");
    EXPECT_EQ(ruleLines(in_bench), ruleLines(in_src));
}

TEST(Avlint, MutableLoanIsFlowSensitive)
{
    // Every read between the move and a re-seat fires; a nested
    // reassignment shields only its own block, a base-depth one
    // ends tracking for the rest of the scope.
    const auto diags = lintFile(fixture("mutable_loan_flow.cc"),
                                "src/fixture/mutable_loan_flow.cc");
    EXPECT_EQ(ruleLines(diags), (Pairs{{"mutable-loan", 23},
                                       {"mutable-loan", 24},
                                       {"mutable-loan", 35},
                                       {"mutable-loan", 53}}));
}

TEST(Avlint, SwallowedExceptionFlagsBroadSilentHandlers)
{
    // catch (...) with an empty body and catch (std::exception)
    // that only shuffles locals both fire; handlers that rethrow,
    // log through util/logging, capture std::current_exception, or
    // name a narrow type stay quiet, as does the suppressed case.
    const auto in_src =
        lintFile(fixture("swallowed_exception.cc"),
                 "src/fixture/swallowed_exception.cc");
    EXPECT_EQ(ruleLines(in_src),
              (Pairs{{"swallowed-exception", 12},
                     {"swallowed-exception", 21}}));

    // The rule is src/-only: bench and tools code may legitimately
    // absorb exceptions at a CLI boundary.
    const auto in_tools =
        lintFile(fixture("swallowed_exception.cc"),
                 "tools/swallowed_exception.cc");
    EXPECT_TRUE(ruleLines(in_tools).empty());
}

TEST(Avlint, SortDiagnosticsOrdersByFileLineRule)
{
    std::vector<Diagnostic> diags = {
        {"src/b.cc", 9, "wall-clock", "m"},
        {"src/a.cc", 9, "wall-clock", "m"},
        {"src/a.cc", 2, "wall-clock", "m"},
        {"src/a.cc", 2, "print-in-library", "m"},
    };
    av::lint::sortDiagnostics(diags);
    std::vector<std::tuple<std::string, int, std::string>> got;
    for (const Diagnostic &d : diags)
        got.emplace_back(d.file, d.line, d.rule);
    const std::vector<std::tuple<std::string, int, std::string>>
        want = {
            {"src/a.cc", 2, "print-in-library"},
            {"src/a.cc", 2, "wall-clock"},
            {"src/a.cc", 9, "wall-clock"},
            {"src/b.cc", 9, "wall-clock"},
        };
    EXPECT_EQ(got, want);
}

TEST(Avlint, TreeDiagnosticsAreByteStable)
{
    // lintTree over a fixture tree: output is sorted by
    // (file, line, rule) — not traversal order — and identical
    // across runs.
    const std::string root = fixture("stable_tree");
    const auto first = av::lint::lintTree(root);
    const auto second = av::lint::lintTree(root);

    std::vector<std::tuple<std::string, int, std::string>> got;
    for (const Diagnostic &d : first)
        got.emplace_back(d.file, d.line, d.rule);
    const std::vector<std::tuple<std::string, int, std::string>>
        want = {
            {"src/aa_early.cc", 5, "print-in-library"},
            {"src/aa_early.cc", 5, "wall-clock"},
            {"src/aa_early.cc", 6, "wall-clock"},
            {"src/zz_late.cc", 5, "wall-clock"},
            {"tools/mid.cc", 5, "wall-clock"},
        };
    EXPECT_EQ(got, want);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].file, second[i].file);
        EXPECT_EQ(first[i].line, second[i].line);
        EXPECT_EQ(first[i].rule, second[i].rule);
        EXPECT_EQ(first[i].message, second[i].message);
    }
}

TEST(Avlint, SuppressionCommentSilencesSameAndNextLine)
{
    const auto diags = lintFile(fixture("suppressed.cc"),
                                "src/fixture/suppressed.cc");
    EXPECT_TRUE(diags.empty());
}

TEST(Avlint, FileLevelSuppressionSilencesWholeFile)
{
    const auto diags = lintFile(fixture("suppressed_file.cc"),
                                "src/fixture/suppressed_file.cc");
    EXPECT_TRUE(diags.empty());
}

TEST(Avlint, RuleCatalogIsStable)
{
    const auto names = av::lint::ruleNames();
    EXPECT_EQ(names.size(), 11u);
    EXPECT_NE(std::find(names.begin(), names.end(), "wall-clock"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "mutable-loan"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "swallowed-exception"),
              names.end());
}

} // namespace
