// avlint: allow-file(print-in-library)
#include <cstdio>

void
noisy(int n)
{
    std::printf("n=%d\n", n);
    std::printf("again %d\n", n);
}
