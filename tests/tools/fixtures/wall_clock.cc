// Seeded wall-clock violations. Linted as library code.
#include <chrono>
#include <cstdlib>

long
sample()
{
    auto t0 = std::chrono::system_clock::now();      // line 8
    auto t1 = std::chrono::steady_clock::now();      // line 9
    const int r = rand();                            // line 10
    const char *env = std::getenv("SEED");           // line 11
    (void)t0;
    (void)t1;
    (void)env;
    return r;
}
