// Every violation here carries a suppression and must not fire.
#include <cstdlib>

int
quiet()
{
    const int r = rand(); // avlint: allow(wall-clock)
    // avlint: allow(raw-new-delete)
    int *p = new int(r);
    const int v = *p;
    // avlint: allow(*)
    delete p;
    return v;
}
