// stdio/iostream reporting inside library code.
#include <cstdio>
#include <iostream>

void
report(double watts)
{
    std::printf("cpu %.1f W\n", watts); // line 8
    std::cout << watts << "\n";         // line 9
}
