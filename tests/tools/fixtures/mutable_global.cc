// Namespace-scope mutable state; const/function lines must stay
// quiet.
#include <atomic>
#include <mutex>
#include <string>

namespace av::fixture {

int gCounter = 0;                      // line 9: mutable global
std::mutex gLock;                      // line 10: mutable global
static double gScale = 1.5;            // line 11: mutable global
std::atomic<bool> gReady{false};       // line 12: mutable global

const int kLimit = 64;                 // legal: const
constexpr double kEpsilon = 1e-9;      // legal: constexpr
inline const std::string kName = "av"; // legal: const

int
bump()
{
    int local = gCounter; // legal: function-local state
    ++local;
    return local;
}

bool operator==(const std::string &a, int b);

} // namespace av::fixture
