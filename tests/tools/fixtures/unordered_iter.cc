// Hash-order iteration over unordered containers.
#include <string>
#include <unordered_map>

double
total(const std::unordered_map<std::string, double> &)
{
    std::unordered_map<std::string, double> byOwner;
    byOwner["a"] = 1.0;
    double sum = 0.0;
    for (const auto &[owner, seconds] : byOwner) // line 11
        sum += seconds;
    for (auto it = byOwner.begin(); it != byOwner.end(); ++it) // 13
        sum += it->second;
    return sum;
}
