#ifndef AVSCOPE_FIXTURE_MEMBER_ITER_HH
#define AVSCOPE_FIXTURE_MEMBER_ITER_HH

#include <unordered_set>

namespace av::fixture {

/** Member container declared here, iterated in member_iter.cc. */
class Tracker
{
  public:
    double sum() const;

  private:
    std::unordered_set<int> live_;
};

} // namespace av::fixture

#endif // AVSCOPE_FIXTURE_MEMBER_ITER_HH
