// A violation-free translation unit: every rule must stay quiet.
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace av::fixture {

double
meanLatencyMs(const std::vector<std::uint64_t> &ticks)
{
    double sum = 0.0;
    for (const std::uint64_t t : ticks)
        sum += static_cast<double>(t);
    return ticks.empty()
               ? 0.0
               : sum / static_cast<double>(ticks.size());
}

std::unique_ptr<int>
owned()
{
    return std::make_unique<int>(7);
}

} // namespace av::fixture
