// Stability fixture: two rules on one line, another further down.
void
f()
{
    printf("hi"); rand();
    rand();
}
