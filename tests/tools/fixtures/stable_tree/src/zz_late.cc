// Stability fixture: one finding in a file that sorts last in src/.
void
g()
{
    rand();
}
