// Stability fixture: findings outside src/ sort after src/ files.
void
h()
{
    rand();
}
