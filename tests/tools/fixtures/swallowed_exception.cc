// Broad catch handlers: swallowing, rethrowing, logging, capturing.
#include <exception>

void inform(const char *);
void process();

void
swallowAll()
{
    try {
        process();
    } catch (...) { // line 12: swallowed
    }
}

void
swallowStd()
{
    try {
        process();
    } catch (const std::exception &) { // line 20: swallowed
        int unused = 0;
        (void)unused;
    }
}

void
rethrows()
{
    try {
        process();
    } catch (...) { // clean: rethrows
        throw;
    }
}

void
logs()
{
    try {
        process();
    } catch (const std::exception &error) { // clean: reports
        inform(error.what());
    }
}

void
captures()
{
    std::exception_ptr saved;
    try {
        process();
    } catch (...) { // clean: structured capture
        saved = std::current_exception();
    }
}

void
narrowHandler()
{
    try {
        process();
    } catch (int) { // clean: narrow typed handler decides
    }
}

void
justified()
{
    try {
        process();
        // avlint: allow(swallowed-exception)
    } catch (...) {
    }
}
