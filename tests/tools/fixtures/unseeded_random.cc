// Default-constructed random generators; seeded and fork()ed
// streams must stay quiet.
#include <cstdint>
#include <random>

namespace av::fixture {

struct Rng
{
    explicit Rng(std::uint64_t seed = 1);
    Rng fork(std::uint64_t salt);
    std::uint64_t next();
};

void
streams()
{
    Rng bare;                        // line 18: unseeded-random
    Rng braced{};                    // line 19: unseeded-random
    std::mt19937 twister;            // line 20: unseeded-random
    Rng seeded(2027);                // legal: explicit seed
    Rng forked = seeded.fork(7);     // legal: forked stream
    std::mt19937 seeded_twister(9);  // legal: explicit seed
    (void)Rng(41).next();            // legal: seeded temporary
    (void)bare.next();
    (void)braced.next();
    (void)twister();
    (void)forked.next();
    (void)seeded_twister();
}

struct Holder
{
    Rng rng_; // legal: member, seeded in the ctor init list
    Holder() : rng_(11) {}
};

} // namespace av::fixture
