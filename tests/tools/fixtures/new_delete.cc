// Naked new/delete; `= delete` must stay legal.
struct NoCopy
{
    NoCopy() = default;
    NoCopy(const NoCopy &) = delete;            // line 5: legal
    NoCopy &operator=(const NoCopy &) = delete; // line 6: legal
};

int
leaky()
{
    int *p = new int(4); // line 12
    const int v = *p;
    delete p; // line 14
    return v;
}
