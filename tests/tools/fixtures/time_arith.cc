// Raw double time arithmetic that must go through sim/ticks.hh.
#include <cstdint>

double
toSeconds(std::uint64_t now, std::uint64_t enqueued)
{
    const double dt = static_cast<double>(now - enqueued);
    return dt * 1e-9; // line 8: hand-rolled tick->seconds scaling
}

double
sentinel()
{
    double best_diff = 1e9; // line 14: plain sentinel, not time
    return best_diff;
}
