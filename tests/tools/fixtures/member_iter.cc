// Iterates a member whose unordered type lives in the sibling header.
#include "member_iter.hh"

namespace av::fixture {

double
Tracker::sum() const
{
    double s = 0.0;
    for (const int v : live_) // line 10
        s += static_cast<double>(v);
    return s;
}

} // namespace av::fixture
