// Messages read after being loaned to publish(std::move(...));
// hoisted reads, reassignments and fresh scopes must stay quiet.
#include <cstddef>
#include <memory>
#include <utility>

namespace av::fixture {

struct Msg
{
    std::size_t byteSize() const;
};

struct Pub
{
    void publish(int header, Msg data, std::size_t bytes);
};

void
useAfterLoan(Pub &pub, Msg msg)
{
    pub.publish(0, std::move(msg), 64);
    (void)msg.byteSize(); // line 23: mutable-loan
}

void
readInSameCall(Pub &pub, std::shared_ptr<Msg> out)
{
    // Argument evaluation order is unspecified: byteSize() may run
    // after the move. line 31: mutable-loan
    pub.publish(0, std::move(*out), out->byteSize());
}

void
hoistedRead(Pub &pub, std::shared_ptr<Msg> out)
{
    const std::size_t bytes = out->byteSize(); // legal: hoisted
    pub.publish(0, std::move(*out), bytes);
}

void
reassignedAfterLoan(Pub &pub, Msg msg)
{
    pub.publish(0, std::move(msg), 64);
    msg = Msg{}; // legal: re-seats the name
    (void)msg.byteSize();
}

void
loanEndsWithScope(Pub &pub)
{
    {
        Msg msg;
        pub.publish(0, std::move(msg), 64);
    }
    Msg msg; // legal: a different object in a fresh scope
    (void)msg.byteSize();
}

} // namespace av::fixture
