// Flow-sensitive reads after publish(std::move(...)): every read
// between the move and a re-seating assignment fires; a nested
// reassignment cleans only its block.
#include <cstddef>
#include <utility>

namespace av::fixture {

struct Msg
{
    std::size_t byteSize() const;
};

struct Pub
{
    void publish(int header, Msg data, std::size_t bytes);
};

void
everyReadFires(Pub &pub, Msg msg)
{
    pub.publish(0, std::move(msg), 64);
    (void)msg.byteSize(); // line 23: mutable-loan
    (void)msg.byteSize(); // line 24: mutable-loan
}

void
nestedReassignCleansOnlyItsBlock(Pub &pub, Msg msg, bool retry)
{
    pub.publish(0, std::move(msg), 64);
    if (retry) {
        msg = Msg{};          // legal: re-seats inside the block
        (void)msg.byteSize(); // legal: reads the fresh message
    }
    (void)msg.byteSize(); // line 35: moved-from again
}

void
baseReassignEndsTracking(Pub &pub, Msg msg, bool retry)
{
    pub.publish(0, std::move(msg), 64);
    msg = Msg{}; // legal: re-seats for the rest of the scope
    if (retry)
        (void)msg.byteSize(); // legal
    (void)msg.byteSize();     // legal
}

void
readInBranchFires(Pub &pub, Msg msg, bool retry)
{
    pub.publish(0, std::move(msg), 64);
    if (retry)
        (void)msg.byteSize(); // line 53: mutable-loan
}

} // namespace av::fixture
