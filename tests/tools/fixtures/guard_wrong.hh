// Include guard does not spell the canonical AVSCOPE_<PATH>_HH.
#ifndef WRONG_GUARD_NAME_HH
#define WRONG_GUARD_NAME_HH

namespace av::fixture {
inline int three() { return 3; }
} // namespace av::fixture

#endif // WRONG_GUARD_NAME_HH
