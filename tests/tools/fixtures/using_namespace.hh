#ifndef AVSCOPE_WORLD_USING_NAMESPACE_HH
#define AVSCOPE_WORLD_USING_NAMESPACE_HH

#include <string>

using namespace std; // line 6: leaks into every includer

#endif // AVSCOPE_WORLD_USING_NAMESPACE_HH
