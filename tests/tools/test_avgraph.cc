/**
 * @file
 * avgraph tests: each graph-contract rule fires exactly once on a
 * minimal seeded violation, the extraction pipeline resolves topic
 * constants and queue depths, rate inference reproduces the Table IV
 * cadences, and the repo's own graph both satisfies the rule catalog
 * and matches the golden canonical snapshot
 * (tests/tools/fixtures/golden_topology.txt — regenerate with
 * `avgraph --root . --canonical ...` after an intentional topology
 * change).
 */

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "avgraph.hh"

namespace {

using av::graph::checkGraph;
using av::graph::extractSources;
using av::graph::extractTree;
using av::graph::inferRates;
using av::graph::PathSpec;
using av::graph::StaticGraph;
using av::graph::tableIvSpec;
using av::graph::toCanonical;
using av::lint::Diagnostic;

using Sources = std::vector<std::pair<std::string, std::string>>;

/** A minimal node body the extractor can anchor ("Node(graph, ...)"
 *  context followed by pub/sub sites). */
std::string
nodeSrc(const std::string &name, const std::string &body)
{
    std::string out =
        "struct X { explicit X(RosGraph &graph) : Node(graph, \"";
    out += name;
    out += "\") { ";
    out += body;
    out += " } };";
    return out;
}

std::vector<Diagnostic>
check(const Sources &sources, const PathSpec &spec)
{
    StaticGraph g = extractSources(sources);
    inferRates(g, spec);
    return checkGraph(g, spec);
}

// ---------------------------------------------------------------
// Extraction.
// ---------------------------------------------------------------

TEST(Avgraph, ResolvesTopicConstantsAndQueueDepths)
{
    const Sources sources = {
        {"src/topics.hh",
         "constexpr const char *kTopic = \"/sym\";"},
        {"src/a.cc",
         nodeSrc("a", "pub_ = graph.advertise<Foo>(kTopic);")},
        {"src/b.cc",
         nodeSrc("b", "subscribe<Foo>(kTopic, 9, onMsg);")},
    };
    const StaticGraph g = extractSources(sources);
    ASSERT_EQ(g.topics.count("/sym"), 1u);
    const auto &entry = g.topics.at("/sym");
    ASSERT_EQ(entry.pubs.size(), 1u);
    EXPECT_EQ(entry.pubs[0].node, "a");
    EXPECT_EQ(entry.pubs[0].type, "Foo");
    ASSERT_EQ(entry.subs.size(), 1u);
    EXPECT_EQ(entry.subs[0].node, "b");
    EXPECT_EQ(entry.subs[0].depth, 9u);
    EXPECT_EQ(g.nodes, (std::vector<std::string>{"a", "b"}));
}

TEST(Avgraph, DynamicTopicArgumentsAreSkippedNotGuessed)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a", "pub_ = graph.advertise<Foo>(runtimeName);")},
    };
    const StaticGraph g = extractSources(sources);
    EXPECT_TRUE(g.topics.empty());
}

// ---------------------------------------------------------------
// Rule catalog: one seeded violation -> exactly one diagnostic.
// ---------------------------------------------------------------

TEST(Avgraph, CleanGraphHasNoFindings)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a", "pub_ = graph.advertise<Foo>(\"/t\");")},
        {"src/b.cc", nodeSrc("b", "subscribe<Foo>(\"/t\", 1, h);")},
    };
    EXPECT_TRUE(check(sources, PathSpec{}).empty());
}

TEST(Avgraph, TypeMismatchExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a", "pub_ = graph.advertise<Foo>(\"/t\");")},
        {"src/b.cc", nodeSrc("b", "subscribe<Bar>(\"/t\", 1, h);")},
    };
    const auto diags = check(sources, PathSpec{});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "type-mismatch");
    EXPECT_NE(diags[0].message.find("Bar vs Foo"),
              std::string::npos);
}

TEST(Avgraph, NamespaceQualifiedTypesCompareByLastComponent)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a",
                 "pub_ = graph.advertise<pc::PointCloud>(\"/t\");")},
        {"src/b.cc",
         nodeSrc("b", "subscribe<PointCloud>(\"/t\", 1, h);")},
    };
    EXPECT_TRUE(check(sources, PathSpec{}).empty());
}

TEST(Avgraph, OrphanPublishedExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a",
                 "pub_ = graph.advertise<Foo>(\"/dead\"); "
                 "pub2_ = graph.advertise<Foo>(\"/live\");")},
        {"src/b.cc",
         nodeSrc("b", "subscribe<Foo>(\"/live\", 1, h);")},
    };
    const auto diags = check(sources, PathSpec{});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "orphan-published");
    EXPECT_NE(diags[0].message.find("/dead"), std::string::npos);
}

TEST(Avgraph, OrphanSubscribedExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a", "pub_ = graph.advertise<Foo>(\"/t\");")},
        {"src/b.cc",
         nodeSrc("b",
                 "subscribe<Foo>(\"/t\", 1, h); "
                 "subscribe<Foo>(\"/ghost\", 1, h);")},
    };
    const auto diags = check(sources, PathSpec{});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "orphan-subscribed");
    EXPECT_NE(diags[0].message.find("/ghost"), std::string::npos);
}

TEST(Avgraph, DuplicatePublisherExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a", "pub_ = graph.advertise<Foo>(\"/t\");")},
        {"src/b.cc",
         nodeSrc("b", "pub_ = graph.advertise<Foo>(\"/t\");")},
        {"src/c.cc", nodeSrc("c", "subscribe<Foo>(\"/t\", 1, h);")},
    };
    const auto diags = check(sources, PathSpec{});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "duplicate-publisher");
    EXPECT_NE(diags[0].message.find("a, b"), std::string::npos);
}

TEST(Avgraph, GraphCycleExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a",
                 "pub_ = graph.advertise<Foo>(\"/a\"); "
                 "subscribe<Foo>(\"/b\", 1, h);")},
        {"src/b.cc",
         nodeSrc("b",
                 "pub_ = graph.advertise<Foo>(\"/b\"); "
                 "subscribe<Foo>(\"/a\", 1, h);")},
    };
    const auto diags = check(sources, PathSpec{});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "graph-cycle");
    EXPECT_NE(diags[0].message.find("a -> b -> a"),
              std::string::npos);
}

TEST(Avgraph, SelfLoopIsACycle)
{
    const Sources sources = {
        {"src/a.cc",
         nodeSrc("a",
                 "pub_ = graph.advertise<Foo>(\"/t\"); "
                 "subscribe<Foo>(\"/t\", 1, h);")},
    };
    const auto diags = check(sources, PathSpec{});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "graph-cycle");
}

TEST(Avgraph, QueueDepthExactlyOneDiagnostic)
{
    // A 25 Hz aux input into a node serviced at 10 Hz (its path
    // trigger is the 10 Hz sensor) with only a depth-1 queue:
    // need ceil(25/10) = 3.
    const Sources sources = {
        {"src/config.hh",
         "struct C { sim::Tick slowPeriod = 100 * sim::oneMs; "
         "sim::Tick fastPeriod = 40 * sim::oneMs; };"},
        {"src/bag.cc",
         "void wire(Bag &bag) { bag.channel<Foo>(\"/slow\"); "
         "bag.channel<Foo>(\"/fast\"); }"},
        {"src/a.cc",
         nodeSrc("a",
                 "subscribe<Foo>(\"/slow\", 1, h); "
                 "subscribe<Foo>(\"/fast\", 1, h); "
                 "pub_ = graph.advertise<Foo>(\"/out\");")},
    };
    PathSpec spec;
    spec.paths = {{"p", {"/slow", "a", "/out"}}};
    spec.auxTopics = {"/fast"};
    spec.sensorPeriods = {{"/slow", "slowPeriod"},
                          {"/fast", "fastPeriod"}};

    StaticGraph g = extractSources(sources);
    inferRates(g, spec);
    EXPECT_DOUBLE_EQ(g.topics.at("/slow").rateHz, 10.0);
    EXPECT_DOUBLE_EQ(g.topics.at("/fast").rateHz, 25.0);
    EXPECT_DOUBLE_EQ(g.nodeRates.at("a"), 10.0);
    EXPECT_DOUBLE_EQ(g.topics.at("/out").rateHz, 10.0);

    const auto diags = checkGraph(g, spec);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "queue-depth");
    EXPECT_NE(diags[0].message.find("'/fast'"), std::string::npos);
    EXPECT_NE(diags[0].message.find("need >= 3"),
              std::string::npos);
}

TEST(Avgraph, OffPathTopicExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/bag.cc",
         "void wire(Bag &bag) { bag.channel<Foo>(\"/a\"); }"},
        {"src/a.cc",
         nodeSrc("A",
                 "subscribe<Foo>(\"/a\", 1, h); "
                 "pub_ = graph.advertise<Foo>(\"/b\");")},
        {"src/b.cc",
         nodeSrc("B",
                 "subscribe<Foo>(\"/b\", 1, h); "
                 "pub_ = graph.advertise<Foo>(\"/stray\");")},
        {"src/c.cc",
         nodeSrc("C", "subscribe<Foo>(\"/stray\", 1, h);")},
    };
    PathSpec spec;
    spec.paths = {{"p", {"/a", "A", "/b"}}};
    const auto diags = check(sources, spec);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "path-coverage");
    EXPECT_NE(diags[0].message.find("/stray"), std::string::npos);
}

TEST(Avgraph, MissingDeclaredPathEdgeExactlyOneDiagnostic)
{
    const Sources sources = {
        {"src/bag.cc",
         "void wire(Bag &bag) { bag.channel<Foo>(\"/a\"); }"},
        {"src/a.cc",
         nodeSrc("A",
                 "subscribe<Foo>(\"/a\", 1, h); "
                 "pub_ = graph.advertise<Foo>(\"/b\");")},
    };
    PathSpec spec;
    spec.paths = {{"p", {"/a", "A", "/missing"}}};
    spec.auxTopics = {"/b"};
    const auto diags = check(sources, spec);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "path-coverage");
    EXPECT_NE(diags[0].message.find("does not publish '/missing'"),
              std::string::npos);
}

// ---------------------------------------------------------------
// The repo's own graph.
// ---------------------------------------------------------------

StaticGraph
repoGraph()
{
    StaticGraph g = extractTree(AVSCOPE_SOURCE_DIR);
    inferRates(g, tableIvSpec());
    return g;
}

TEST(Avgraph, RepoGraphSatisfiesRuleCatalog)
{
    const auto diags = checkGraph(repoGraph(), tableIvSpec());
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << d.file << ":" << d.line << ": " << d.rule
                      << ": " << d.message;
}

TEST(Avgraph, RepoRatesMatchTableIvCadences)
{
    const StaticGraph g = repoGraph();
    // Sensor cadences out of the recorder config.
    EXPECT_DOUBLE_EQ(g.topics.at("/points_raw").rateHz, 10.0);
    EXPECT_DOUBLE_EQ(g.topics.at("/imu_raw").rateHz, 25.0);
    EXPECT_DOUBLE_EQ(g.topics.at("/gnss_pose").rateHz, 1.0);
    EXPECT_NEAR(g.topics.at("/image_raw").rateHz, 15.1515, 0.01);
    // The camera branch runs at camera rate until the fusion node,
    // which is throttled by the slower LiDAR branch.
    EXPECT_NEAR(g.nodeRates.at("vision_detection"), 15.1515, 0.01);
    EXPECT_DOUBLE_EQ(g.nodeRates.at("range_vision_fusion"), 10.0);
    EXPECT_DOUBLE_EQ(g.nodeRates.at("costmap_generator"), 10.0);
    EXPECT_DOUBLE_EQ(g.topics.at("/semantics/costmap").rateHz,
                     10.0);
}

TEST(Avgraph, RepoGraphMatchesGoldenSnapshot)
{
    std::ifstream in(std::string(AVLINT_FIXTURE_DIR) +
                     "/golden_topology.txt");
    ASSERT_TRUE(in) << "missing golden_topology.txt fixture";
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_EQ(toCanonical(repoGraph()), os.str())
        << "static pub/sub topology changed; if intentional, "
           "regenerate the golden with: avgraph --root . "
           "--canonical tests/tools/fixtures/golden_topology.txt";
}

} // namespace
