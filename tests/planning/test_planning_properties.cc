/**
 * @file
 * Property sweeps over the planning layer: route networks of varied
 * shapes, rollout-count sweeps, speed-profile invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "planning/local_planner.hh"
#include "planning/pure_pursuit.hh"
#include "planning/route.hh"
#include "util/random.hh"

namespace {

using namespace av;
using namespace av::plan;

/** Loop shapes: (corners, width, height). */
class RouteShapeTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>>
{
  protected:
    std::vector<geom::Vec2>
    polygon() const
    {
        const auto [n, w, h] = GetParam();
        std::vector<geom::Vec2> corners;
        for (int i = 0; i < n; ++i) {
            const double a = 2.0 * M_PI * i / n;
            corners.push_back(
                {w * std::cos(a), h * std::sin(a)});
        }
        return corners;
    }
};

TEST_P(RouteShapeTest, PlanReachesEveryNodeFromEveryStart)
{
    const RouteNetwork net =
        RouteNetwork::fromLoop(polygon(), 6.0);
    util::Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const auto from = static_cast<std::uint32_t>(
            rng.uniformInt(0,
                           static_cast<long>(net.nodeCount()) - 1));
        const auto to = static_cast<std::uint32_t>(
            rng.uniformInt(0,
                           static_cast<long>(net.nodeCount()) - 1));
        const auto path = net.plan(from, to);
        ASSERT_FALSE(path.empty());
        EXPECT_NEAR((path.front() - net.position(from)).norm(), 0.0,
                    1e-9);
        EXPECT_NEAR((path.back() - net.position(to)).norm(), 0.0,
                    1e-9);
        // Consecutive waypoints are connected (bounded spacing).
        for (std::size_t i = 1; i < path.size(); ++i)
            EXPECT_LT((path[i] - path[i - 1]).norm(), 12.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RouteShapeTest,
    ::testing::Values(std::make_tuple(3, 60.0, 60.0),
                      std::make_tuple(4, 100.0, 60.0),
                      std::make_tuple(6, 80.0, 80.0),
                      std::make_tuple(12, 120.0, 50.0)));

std::vector<geom::Vec2>
straight(std::size_t n)
{
    std::vector<geom::Vec2> path;
    for (std::size_t i = 0; i <= n; ++i)
        path.push_back({static_cast<double>(i), 0.0});
    return path;
}

/** Rollout-count sweep: more candidates never give a worse plan. */
class RolloutCountTest : public ::testing::TestWithParam<int>
{};

TEST_P(RolloutCountTest, MoreRolloutsNotWorse)
{
    // Obstacle offset from the centerline: with one rollout the
    // planner must brake; with several it can swerve.
    perception::Costmap map;
    map.resolution = 0.25;
    map.cellsX = map.cellsY = 240;
    map.origin = {-30.0, -30.0};
    map.cost.assign(240 * 240, 0.0f);
    for (std::uint32_t y = 0; y < 240; ++y)
        for (std::uint32_t x = 0; x < 240; ++x) {
            const geom::Vec2 w{map.origin.x + x * map.resolution,
                               map.origin.y + y * map.resolution};
            if ((w - geom::Vec2{12, 0}).norm() < 1.0)
                map.cost[y * 240 + x] = 1.0f;
        }

    LocalPlannerConfig cfg;
    cfg.rollouts = static_cast<std::uint32_t>(GetParam());
    const Trajectory t =
        planLocal(straight(60), {{0, 0}, 0.0}, map, cfg);
    ASSERT_FALSE(t.points.empty());
    if (cfg.rollouts >= 3) {
        // Enough candidates to dodge: no full stop required.
        double min_speed = 1e9;
        for (const double v : t.speeds)
            min_speed = std::min(min_speed, v);
        EXPECT_GT(min_speed, 0.5) << "rollouts " << cfg.rollouts;
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, RolloutCountTest,
                         ::testing::Values(1, 3, 5, 7, 11));

TEST(SpeedProfile, DecelerationBounded)
{
    // The backward pass enforces v_i^2 <= v_{i+1}^2 + 2 a ds.
    perception::Costmap map;
    map.resolution = 0.25;
    map.cellsX = map.cellsY = 240;
    map.origin = {-30.0, -30.0};
    map.cost.assign(240 * 240, 0.0f);
    // Wall at x = 18 across everything.
    for (std::uint32_t y = 0; y < 240; ++y)
        for (std::uint32_t x = 0; x < 240; ++x) {
            const double wx = map.origin.x + x * map.resolution;
            if (wx > 18.0 && wx < 21.0)
                map.cost[y * 240 + x] = 1.0f;
        }
    const Trajectory t =
        planLocal(straight(60), {{0, 0}, 0.0}, map);
    ASSERT_GT(t.speeds.size(), 3u);
    for (std::size_t i = 0; i + 1 < t.speeds.size(); ++i) {
        const double ds =
            (t.points[i + 1] - t.points[i]).norm();
        EXPECT_LE(t.speeds[i] * t.speeds[i],
                  t.speeds[i + 1] * t.speeds[i + 1] +
                      2.0 * 2.5 * ds + 1e-6)
            << "at " << i;
    }
}

TEST(PurePursuitSweep, AngularCommandBounded)
{
    PurePursuitConfig cfg;
    util::Rng rng(8);
    for (int trial = 0; trial < 50; ++trial) {
        Trajectory t;
        for (int i = 0; i <= 20; ++i) {
            t.points.push_back({rng.uniform(-20.0, 20.0),
                                rng.uniform(-20.0, 20.0)});
            t.speeds.push_back(rng.uniform(0.0, 10.0));
        }
        const Twist cmd = purePursuit(
            t, {{rng.uniform(-5, 5), rng.uniform(-5, 5)},
                rng.uniform(-3, 3)},
            rng.uniform(0.0, 10.0), cfg);
        EXPECT_LE(std::fabs(cmd.angular), cfg.maxAngular + 1e-12);
        EXPECT_GE(cmd.linear, 0.0);
    }
}

} // namespace
