/**
 * @file
 * Unit tests for the planning/actuation layer: global route A*,
 * rollout local planner, pure pursuit, twist filter, vehicle model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "planning/local_planner.hh"
#include "planning/pure_pursuit.hh"
#include "planning/route.hh"
#include "planning/vehicle.hh"

namespace {

using namespace av;
using namespace av::plan;

TEST(Route, PlansAlongLoop)
{
    const RouteNetwork net = RouteNetwork::fromLoop(
        {{0, 0}, {100, 0}, {100, 60}, {0, 60}}, 5.0);
    EXPECT_GT(net.nodeCount(), 50u);
    const auto path = net.plan(geom::Vec2{2, 0}, geom::Vec2{98, 0});
    ASSERT_GE(path.size(), 2u);
    EXPECT_NEAR(path.front().x, 0.0, 6.0);
    EXPECT_NEAR(path.back().x, 98.0, 6.0);
    // Monotone along +x on the bottom edge.
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_GE(path[i].x + 1e-9, path[i - 1].x);
}

TEST(Route, RespectsEdgeDirection)
{
    // One-way loop: going "backwards" must go the long way round.
    const RouteNetwork net = RouteNetwork::fromLoop(
        {{0, 0}, {100, 0}, {100, 60}, {0, 60}}, 5.0);
    const auto forward =
        net.plan(geom::Vec2{0, 0}, geom::Vec2{50, 0});
    const auto backward =
        net.plan(geom::Vec2{50, 0}, geom::Vec2{0, 0});
    ASSERT_FALSE(forward.empty());
    ASSERT_FALSE(backward.empty());
    EXPECT_GT(backward.size(), forward.size() * 2);
}

TEST(Route, UnreachableIsEmpty)
{
    RouteNetwork net;
    const auto a = net.addNode({0, 0});
    const auto b = net.addNode({10, 0});
    const auto c = net.addNode({20, 0});
    net.addEdge(a, b); // c unreachable
    EXPECT_TRUE(net.plan(a, c).empty());
    EXPECT_FALSE(net.plan(a, b).empty());
}

TEST(Route, DensifyBoundsSpacing)
{
    const auto dense =
        densifyPath({{0, 0}, {10, 0}, {10, 10}}, 1.0);
    ASSERT_GT(dense.size(), 15u);
    for (std::size_t i = 1; i < dense.size(); ++i)
        EXPECT_LE((dense[i] - dense[i - 1]).norm(), 1.0 + 1e-9);
}

std::vector<geom::Vec2>
straightPath()
{
    std::vector<geom::Vec2> path;
    for (int i = 0; i <= 60; ++i)
        path.push_back({static_cast<double>(i), 0.0});
    return path;
}

TEST(LocalPlanner, EmptyCostmapFollowsCenterline)
{
    const Trajectory t = planLocal(straightPath(), {{0, 0}, 0.0},
                                   perception::Costmap{});
    ASSERT_FALSE(t.points.empty());
    EXPECT_EQ(t.rolloutIndex, 0); // no reason to offset
    for (const auto &p : t.points)
        EXPECT_NEAR(p.y, 0.0, 1e-9);
    for (const double v : t.speeds)
        EXPECT_GT(v, 5.0); // cruises
}

perception::Costmap
costmapWithBlob(const geom::Vec2 &center, double radius)
{
    perception::Costmap map;
    map.resolution = 0.2;
    map.cellsX = map.cellsY = 300;
    map.origin = {-30.0, -30.0};
    map.cost.assign(300 * 300, 0.0f);
    for (std::uint32_t y = 0; y < 300; ++y) {
        for (std::uint32_t x = 0; x < 300; ++x) {
            const geom::Vec2 w{map.origin.x + x * map.resolution,
                               map.origin.y + y * map.resolution};
            if ((w - center).norm() < radius)
                map.cost[y * 300 + x] = 1.0f;
        }
    }
    return map;
}

TEST(LocalPlanner, SwervesAroundObstacle)
{
    // Obstacle on the centerline 10 m ahead: the winning rollout
    // must be offset and keep its cells free.
    const auto map = costmapWithBlob({10, 0}, 1.2);
    const Trajectory t =
        planLocal(straightPath(), {{0, 0}, 0.0}, map);
    ASSERT_FALSE(t.points.empty());
    EXPECT_NE(t.rolloutIndex, 0);
    for (const auto &p : t.points)
        EXPECT_LT(costmapAt(map, p), 0.9);
}

TEST(LocalPlanner, StopsWhenFullyBlocked)
{
    // A wall across every rollout: speeds must reach zero before it.
    const auto map = costmapWithBlob({12, 0}, 6.0);
    const Trajectory t =
        planLocal(straightPath(), {{0, 0}, 0.0}, map);
    ASSERT_FALSE(t.speeds.empty());
    bool stops = false;
    for (const double v : t.speeds)
        stops |= v <= 1e-9;
    EXPECT_TRUE(stops);
}

TEST(PurePursuit, StraightPathGoesStraight)
{
    Trajectory t;
    for (int i = 0; i <= 30; ++i) {
        t.points.push_back({static_cast<double>(i), 0.0});
        t.speeds.push_back(8.0);
    }
    const Twist cmd = purePursuit(t, {{0, 0}, 0.0}, 8.0);
    EXPECT_NEAR(cmd.angular, 0.0, 1e-9);
    EXPECT_GT(cmd.linear, 5.0);
}

TEST(PurePursuit, SteersTowardOffsetPath)
{
    Trajectory t;
    for (int i = 0; i <= 30; ++i) {
        t.points.push_back({static_cast<double>(i), 3.0});
        t.speeds.push_back(8.0);
    }
    const Twist cmd = purePursuit(t, {{0, 0}, 0.0}, 8.0);
    EXPECT_GT(cmd.angular, 0.05); // turn left toward the path
}

TEST(PurePursuit, EmptyTrajectoryStops)
{
    const Twist cmd = purePursuit(Trajectory{}, {{0, 0}, 0.0}, 8.0);
    EXPECT_DOUBLE_EQ(cmd.linear, 0.0);
    EXPECT_DOUBLE_EQ(cmd.angular, 0.0);
}

TEST(TwistFilter, SmoothsStepInput)
{
    TwistFilter filter;
    const Twist step{8.0, 0.5};
    const Twist first = filter.apply(step, 0.1);
    EXPECT_LT(first.linear, 1.0); // rate limited: 2.5 m/s^2 * 0.1 s
    Twist last = first;
    for (int i = 0; i < 100; ++i)
        last = filter.apply(step, 0.1);
    EXPECT_NEAR(last.linear, 8.0, 0.2); // converges
    EXPECT_NEAR(last.angular, 0.5, 0.05);
}

TEST(TwistFilter, RateLimitHolds)
{
    TwistFilter filter;
    Twist prev{};
    for (int i = 0; i < 50; ++i) {
        const Twist cur = filter.apply(Twist{20.0, 2.0}, 0.1);
        EXPECT_LE(cur.linear - prev.linear, 0.25 + 1e-9);
        EXPECT_LE(std::fabs(cur.angular - prev.angular),
                  0.15 + 1e-9);
        prev = cur;
    }
}

TEST(Vehicle, DrivesStraightUnderConstantTwist)
{
    VehicleModel car({{0, 0}, 0.0}, 0.0); // no lag
    for (int i = 0; i < 100; ++i)
        car.step(Twist{5.0, 0.0}, 0.1);
    EXPECT_NEAR(car.pose().p.x, 50.0, 0.5);
    EXPECT_NEAR(car.pose().p.y, 0.0, 1e-6);
}

TEST(Vehicle, TurnsUnderAngularTwist)
{
    VehicleModel car({{0, 0}, 0.0}, 0.0);
    // Quarter circle: v = 5, w = 0.5 -> radius 10 m.
    const double t_quarter = (M_PI / 2.0) / 0.5;
    const int steps = 1000;
    for (int i = 0; i < steps; ++i)
        car.step(Twist{5.0, 0.5}, t_quarter / steps);
    EXPECT_NEAR(car.pose().yaw, M_PI / 2.0, 0.02);
    EXPECT_NEAR(car.pose().p.x, 10.0, 0.3);
    EXPECT_NEAR(car.pose().p.y, 10.0, 0.3);
}

TEST(Vehicle, ActuationLagDelaysResponse)
{
    VehicleModel lagless({{0, 0}, 0.0}, 0.0);
    VehicleModel laggy({{0, 0}, 0.0}, 0.5);
    lagless.step(Twist{8.0, 0.0}, 0.1);
    laggy.step(Twist{8.0, 0.0}, 0.1);
    EXPECT_GT(lagless.speed(), laggy.speed());
}

/** Integration: pure pursuit + vehicle follow a square loop. */
TEST(ClosedLoop, FollowsLoopWithinLaneWidth)
{
    const RouteNetwork net = RouteNetwork::fromLoop(
        {{0, 0}, {80, 0}, {80, 50}, {0, 50}}, 4.0);
    const auto global = densifyPath(
        net.plan(geom::Vec2{0, 0}, geom::Vec2{0, 4}), 1.0);
    ASSERT_GT(global.size(), 100u);

    VehicleModel car({{0, 0}, 0.0});
    TwistFilter filter;
    double worst_offset = 0.0;
    for (int step = 0; step < 3000; ++step) {
        const Trajectory local = planLocal(
            global, car.pose(), perception::Costmap{});
        const Twist raw =
            purePursuit(local, car.pose(), car.speed());
        const Twist cmd = filter.apply(raw, 0.02);
        car.step(cmd, 0.02);
        // Distance to the nearest global waypoint.
        double best = 1e9;
        for (const auto &p : global)
            best = std::min(best, (p - car.pose().p).norm());
        if (step > 200) // after pull-away
            worst_offset = std::max(worst_offset, best);
    }
    EXPECT_LT(worst_offset, 2.5); // stays in lane
    EXPECT_GT(car.speed(), 4.0);  // and keeps moving
}

} // namespace
