/**
 * @file
 * Unit tests for the µarch models: op counting, cache behaviour,
 * branch prediction, pipeline CPI, profiler lifecycle.
 */

#include <gtest/gtest.h>

#include <vector>

#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/opcounts.hh"
#include "uarch/pipeline.hh"
#include "uarch/profiler.hh"
#include "util/random.hh"

namespace {

using namespace av::uarch;

TEST(OpCounts, TotalsAndFractions)
{
    OpCounts ops;
    ops.loads = 30;
    ops.stores = 20;
    ops.branches = 10;
    ops.intAlu = 25;
    ops.fpAlu = 15;
    EXPECT_EQ(ops.total(), 100u);
    EXPECT_DOUBLE_EQ(ops.memFraction(), 0.5);
    EXPECT_DOUBLE_EQ(ops.branchFraction(), 0.1);
}

TEST(OpCounts, AddAndScale)
{
    OpCounts a;
    a.loads = 1;
    a.fpDiv = 2;
    OpCounts b;
    b.loads = 3;
    b.simd = 4;
    const OpCounts c = a + b;
    EXPECT_EQ(c.loads, 4u);
    EXPECT_EQ(c.fpDiv, 2u);
    EXPECT_EQ(c.simd, 4u);
    const OpCounts s = c.scaled(10);
    EXPECT_EQ(s.loads, 40u);
    EXPECT_EQ(s.total(), c.total() * 10);
}

TEST(OpCounts, MixStringEmptyAndNonempty)
{
    EXPECT_EQ(OpCounts().mixString(), "(empty)");
    OpCounts ops;
    ops.loads = 50;
    ops.stores = 50;
    EXPECT_NE(ops.mixString().find("ld 50%"), std::string::npos);
}

TEST(Cache, SequentialStreamMissesOncePerLine)
{
    CacheModel cache(CacheConfig{32 * 1024, 8, 64});
    // 4 KiB sequential read at 8-byte strides: 64 lines, each missed
    // exactly once then hit 7 times.
    for (std::uintptr_t addr = 0; addr < 4096; addr += 8)
        cache.read(addr, 8);
    EXPECT_EQ(cache.stats().readMisses, 64u);
    EXPECT_EQ(cache.stats().readHits, 448u);
}

TEST(Cache, WorkingSetFitsThenThrashes)
{
    CacheModel cache(CacheConfig{32 * 1024, 8, 64});
    // Pass 1 warms 16 KiB; pass 2 over the same set hits fully.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uintptr_t addr = 0; addr < 16 * 1024; addr += 64)
            cache.read(addr, 4);
    EXPECT_EQ(cache.stats().readMisses, 256u);
    EXPECT_EQ(cache.stats().readHits, 256u);

    // A 1 MiB streaming sweep: the 16 KiB (256 lines) still resident
    // from above hit, the rest miss; everything resident gets
    // evicted, so re-touching the 16 KiB misses all 256 lines.
    cache.resetStats();
    for (std::uintptr_t addr = 0; addr < (1u << 20); addr += 64)
        cache.read(addr, 4);
    for (std::uintptr_t addr = 0; addr < 16 * 1024; addr += 64)
        cache.read(addr, 4);
    EXPECT_EQ(cache.stats().readMisses, (16384u - 256u) + 256u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // Direct test on one set: 2-way cache, 64 B lines, 2 sets.
    CacheModel cache(CacheConfig{256, 2, 64});
    EXPECT_EQ(cache.numSets(), 2u);
    // Three lines mapping to set 0 (stride = numSets * line = 128).
    cache.read(0, 4);    // miss, way 0
    cache.read(256, 4);  // miss, way 1
    cache.read(0, 4);    // hit (refreshes line 0)
    cache.read(512, 4);  // miss, evicts 256 (LRU)
    cache.read(0, 4);    // hit
    cache.read(256, 4);  // miss again
    EXPECT_EQ(cache.stats().readMisses, 4u);
    EXPECT_EQ(cache.stats().readHits, 2u);
}

TEST(Cache, WriteMissesTrackedSeparately)
{
    CacheModel cache;
    cache.write(0, 8);
    cache.write(0, 8);
    cache.read(0, 8);
    EXPECT_EQ(cache.stats().writeMisses, 1u);
    EXPECT_EQ(cache.stats().writeHits, 1u);
    EXPECT_EQ(cache.stats().readHits, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().writeMissRate(), 0.5);
}

TEST(Cache, StraddlingAccessTouchesTwoLines)
{
    CacheModel cache;
    cache.read(60, 8); // crosses the 64 B boundary
    EXPECT_EQ(cache.stats().readMisses, 2u);
}

TEST(Cache, ResetClearsContents)
{
    CacheModel cache;
    cache.read(0, 4);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses(), 0u);
    cache.read(0, 4);
    EXPECT_EQ(cache.stats().readMisses, 1u);
}

TEST(Branch, LearnsStablePattern)
{
    GsharePredictor bp;
    // Always-taken branch: cold counters mispredict once per new
    // history state during warmup, then never again.
    for (int i = 0; i < 10000; ++i)
        bp.record(0x1234, true);
    EXPECT_LT(bp.stats().missRate(), 0.005);
}

TEST(Branch, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor bp;
    // T/NT alternation is perfectly predictable with history.
    for (int i = 0; i < 4000; ++i)
        bp.record(0x777, i % 2 == 0);
    EXPECT_LT(bp.stats().missRate(), 0.05);
}

TEST(Branch, RandomOutcomesNearHalfMissRate)
{
    GsharePredictor bp;
    av::util::Rng rng(17);
    for (int i = 0; i < 20000; ++i)
        bp.record(0x42, rng.bernoulli(0.5));
    EXPECT_NEAR(bp.stats().missRate(), 0.5, 0.05);
}

TEST(Branch, BiasedOutcomesLowMissRate)
{
    GsharePredictor bp;
    av::util::Rng rng(18);
    for (int i = 0; i < 20000; ++i)
        bp.record(0x42, rng.bernoulli(0.95));
    EXPECT_LT(bp.stats().missRate(), 0.12);
}

TEST(Branch, BulkPredictableDilutes)
{
    GsharePredictor bp;
    av::util::Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        bp.record(0x1, rng.bernoulli(0.5)); // ~50% misses
    const double before = bp.stats().missRate();
    bp.recordBulkPredictable(100000);
    EXPECT_LT(bp.stats().missRate(), before / 10.0);
    EXPECT_EQ(bp.stats().total(), 101000u);
}

TEST(Pipeline, ComputeBoundKernelNearPeak)
{
    PipelineModel pipe;
    OpCounts ops;
    ops.intAlu = 80;
    ops.fpAlu = 15;
    ops.branches = 5;
    const double cpi = pipe.cpi(ops, 0.0, 0.0, 0.0);
    EXPECT_NEAR(cpi, 1.0 / pipe.config().peakIpc, 0.05);
}

TEST(Pipeline, MissesAndMispredictsStall)
{
    PipelineModel pipe;
    OpCounts ops;
    ops.loads = 35;
    ops.stores = 15;
    ops.branches = 15;
    ops.intAlu = 20;
    ops.fpAlu = 15;
    const double clean = pipe.cpi(ops, 0.0, 0.0, 0.0);
    const double missy = pipe.cpi(ops, 0.05, 0.05, 0.0);
    const double branchy = pipe.cpi(ops, 0.0, 0.0, 0.10);
    EXPECT_GT(missy, clean);
    EXPECT_GT(branchy, clean);
    // Monotone in miss rate.
    EXPECT_GT(pipe.cpi(ops, 0.10, 0.05, 0.0), missy);
}

TEST(Pipeline, DivHeavyKernelsSerialize)
{
    PipelineModel pipe;
    OpCounts light;
    light.fpAlu = 100;
    OpCounts divy = light;
    divy.fpDiv = 3;
    EXPECT_GT(pipe.cpi(divy, 0, 0, 0), pipe.cpi(light, 0, 0, 0));
}

TEST(Pipeline, CyclesScaleWithInstructions)
{
    PipelineModel pipe;
    OpCounts ops;
    ops.intAlu = 1000;
    const double c1 = pipe.cycles(ops, 0, 0, 0);
    const double c2 = pipe.cycles(ops.scaled(10), 0, 0, 0);
    EXPECT_NEAR(c2, 10.0 * c1, 1e-6);
}

TEST(Profiler, DetachedIsNoop)
{
    KernelProfiler prof;
    EXPECT_FALSE(prof.attached());
    EXPECT_FALSE(prof.tracing());
    OpCounts ops;
    ops.loads = 5;
    prof.addOps(ops); // must not crash
    prof.load(1, 0, sizeof(int));
    prof.branch(1, true);
}

TEST(Profiler, InvocationCostReflectsWork)
{
    NodeArchState state;
    state.beginInvocation();
    KernelProfiler prof(&state);
    EXPECT_TRUE(prof.tracing()); // first invocation always traced
    OpCounts ops;
    ops.loads = 400;
    ops.intAlu = 600;
    prof.addOps(ops);
    for (std::size_t i = 0; i < 1000; ++i)
        prof.load(1, i * sizeof(int), sizeof(int));
    const InvocationCost cost = state.endInvocation();
    EXPECT_EQ(cost.ops.total(), 1000u);
    EXPECT_GT(cost.cycles, 0.0);
    EXPECT_GT(state.cacheStats().accesses(), 0u);
}

TEST(Profiler, TracePeriodSkipsTracing)
{
    NodeArchState state(CacheConfig(), BranchConfig(),
                        PipelineConfig(), /*trace_period=*/3);
    int traced = 0;
    for (int i = 0; i < 9; ++i) {
        state.beginInvocation();
        traced += state.tracing() ? 1 : 0;
        state.endInvocation();
    }
    EXPECT_EQ(traced, 3);
}

TEST(Profiler, CumulativeOpsAccumulate)
{
    NodeArchState state;
    for (int i = 0; i < 4; ++i) {
        state.beginInvocation();
        KernelProfiler prof(&state);
        OpCounts ops;
        ops.fpAlu = 100;
        prof.addOps(ops);
        state.endInvocation();
    }
    EXPECT_EQ(state.totalOps().fpAlu, 400u);
    EXPECT_GT(state.lifetimeIpc(), 0.0);
}

TEST(Profiler, EwmaTracksLocality)
{
    // Streaming misses push the EWMA read-miss estimate up; repeated
    // hot-set hits pull it down.
    NodeArchState state(CacheConfig{4096, 4, 64}, BranchConfig(),
                        PipelineConfig(), 1);
    const std::size_t big = 1 << 20;
    for (int inv = 0; inv < 5; ++inv) {
        state.beginInvocation();
        KernelProfiler prof(&state);
        OpCounts ops;
        ops.loads = 16384;
        prof.addOps(ops);
        for (std::size_t i = 0; i < big; i += 64)
            prof.load(1, i, 1);
        state.endInvocation();
    }
    const double streaming_miss = state.ewmaReadMiss();
    EXPECT_GT(streaming_miss, 0.5);

    const std::size_t small = 1024;
    for (int inv = 0; inv < 30; ++inv) {
        state.beginInvocation();
        KernelProfiler prof(&state);
        OpCounts ops;
        ops.loads = 4096;
        prof.addOps(ops);
        for (int rep = 0; rep < 256; ++rep)
            for (std::size_t i = 0; i < small; i += 64)
                prof.load(2, i, 1);
        state.endInvocation();
    }
    EXPECT_LT(state.ewmaReadMiss(), streaming_miss / 4.0);
}

/** Property: cache miss count never exceeds accesses (sweep). */
class CacheGeomTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CacheGeomTest, StatsInvariant)
{
    const auto [size_kb, assoc] = GetParam();
    CacheModel cache(CacheConfig{
        static_cast<std::uint32_t>(size_kb * 1024),
        static_cast<std::uint32_t>(assoc), 64});
    av::util::Rng rng(size_kb * 131 + assoc);
    for (int i = 0; i < 20000; ++i) {
        const auto addr = static_cast<std::uintptr_t>(
            rng.uniformInt(0, 1 << 22));
        cache.access(addr, 8, rng.bernoulli(0.3));
    }
    const CacheStats &s = cache.stats();
    EXPECT_LE(s.readMisses, s.readHits + s.readMisses);
    EXPECT_GT(s.accesses(), 20000u - 1);
    EXPECT_GE(s.readMissRate(), 0.0);
    EXPECT_LE(s.readMissRate(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeomTest,
    ::testing::Combine(::testing::Values(4, 32, 256),
                       ::testing::Values(1, 2, 8)));

} // namespace
