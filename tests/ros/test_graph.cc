/**
 * @file
 * Additional middleware tests: graph introspection, multiple
 * publishers, taps, publisher handles, transport scaling.
 */

#include <gtest/gtest.h>

#include "ros/ros.hh"
#include "sim/ticks.hh"

namespace {

using namespace av;
using namespace av::ros;

struct Msg
{
    int value = 0;
};

struct Fixture
{
    sim::EventQueue eq;
    hw::MachineConfig mcfg;
    hw::Machine machine{eq, mcfg};
    RosGraph graph{machine};
};

TEST(Graph, TopicsEnumerated)
{
    Fixture f;
    f.graph.topic<Msg>("/a");
    f.graph.topic<Msg>("/b");
    f.graph.topic<Msg>("/a"); // same instance
    const auto topics = f.graph.topics();
    ASSERT_EQ(topics.size(), 2u);
    EXPECT_EQ(topics[0]->name(), "/a");
    EXPECT_EQ(topics[1]->name(), "/b");
}

TEST(Graph, SubscriberListedOnTopic)
{
    Fixture f;
    Node node(f.graph, "n");
    node.subscribe<Msg>("/t", 3,
                        [](const Stamped<Msg> &,
                           std::function<void()> done) { done(); });
    const auto subs = f.graph.topic<Msg>("/t").subscribers();
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0]->node()->name(), "n");
    EXPECT_EQ(subs[0]->topicName(), "/t");
}

TEST(Graph, MultiplePublishersShareSequence)
{
    Fixture f;
    Node sink(f.graph, "sink");
    std::vector<std::uint64_t> seqs;
    sink.subscribe<Msg>("/t", 10,
                        [&](const Stamped<Msg> &m,
                            std::function<void()> done) {
                            seqs.push_back(m.header.seq);
                            done();
                        });
    auto a = f.graph.advertise<Msg>("/t");
    auto b = f.graph.advertise<Msg>("/t");
    a.publish(Header{}, Msg{1}, 8);
    b.publish(Header{}, Msg{2}, 8);
    a.publish(Header{}, Msg{3}, 8);
    f.eq.runUntil();
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Graph, TapsSeeEveryMessageSynchronously)
{
    Fixture f;
    int tapped = 0;
    sim::Tick tap_time = 42;
    f.graph.topic<Msg>("/t").addTap(
        [&](const Stamped<Msg> &) {
            ++tapped;
            tap_time = f.eq.now();
        });
    f.graph.advertise<Msg>("/t").publish(Header{}, Msg{}, 8);
    // Tap runs at publish time, before any transport delay.
    EXPECT_EQ(tapped, 1);
    EXPECT_EQ(tap_time, 0u);
}

TEST(Graph, DefaultPublisherInvalid)
{
    Publisher<Msg> pub;
    EXPECT_FALSE(pub.valid());
    EXPECT_DEATH(pub.publish(Header{}, Msg{}, 8), "null Publisher");
}

TEST(Graph, TransportLatencyScalesWithBytes)
{
    Fixture f;
    Node sink(f.graph, "sink");
    std::vector<sim::Tick> arrivals;
    sink.subscribe<Msg>("/t", 10,
                        [&](const Stamped<Msg> &m,
                            std::function<void()> done) {
                            arrivals.push_back(m.arrival);
                            done();
                        });
    auto pub = f.graph.advertise<Msg>("/t");
    pub.publish(Header{}, Msg{}, 1000);
    f.eq.runUntil();
    const sim::Tick small = arrivals.at(0);
    pub.publish(Header{}, Msg{}, 10'000'000);
    const sim::Tick published_at = f.eq.now();
    f.eq.runUntil();
    const sim::Tick big = arrivals.at(1) - published_at;
    // 10 MB at 2 GB/s ~ 5 ms versus ~0.15 ms.
    EXPECT_GT(big, 30 * small);
}

TEST(Graph, UnregisterOnDestruction)
{
    Fixture f;
    {
        Node temp(f.graph, "temp");
        EXPECT_EQ(f.graph.nodes().size(), 1u);
    }
    EXPECT_TRUE(f.graph.nodes().empty());
    // The name is reusable afterwards.
    Node again(f.graph, "temp");
    EXPECT_EQ(f.graph.nodes().size(), 1u);
}

} // namespace
