/**
 * @file
 * Unit tests for the minros middleware: pub/sub, transport latency,
 * bounded queues + drops, node dispatch, origin tracing, bags.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ros/bag.hh"
#include "ros/ros.hh"
#include "sim/ticks.hh"

namespace {

using namespace av::ros;
using av::hw::Machine;
using av::hw::MachineConfig;
using av::sim::EventQueue;
using av::sim::oneMs;
using av::sim::oneUs;
using av::sim::Tick;

struct IntMsg
{
    int value = 0;
};

struct Fixture
{
    EventQueue eq;
    MachineConfig mcfg;
    Machine machine{eq, mcfg};
    RosGraph graph{machine};
};

TEST(Ros, PublishReachesSubscriberAfterTransport)
{
    Fixture f;
    Node node(f.graph, "consumer");
    std::vector<std::pair<Tick, int>> seen;
    node.subscribe<IntMsg>(
        "/numbers", 10,
        [&](const Stamped<IntMsg> &msg, std::function<void()> done) {
            seen.emplace_back(f.eq.now(), msg.data.value);
            done();
        });
    auto pub = f.graph.advertise<IntMsg>("/numbers");
    Header h;
    h.stamp = 0;
    pub.publish(h, IntMsg{42}, 1000);
    f.eq.runUntil();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].second, 42);
    // transport = 150 us base + 1000 B / 2 GB/s = 150.5 us
    EXPECT_NEAR(static_cast<double>(seen[0].first),
                150.0 * oneUs + 500.0, 10.0);
}

TEST(Ros, LargerMessagesArriveLater)
{
    Fixture f;
    Node node(f.graph, "consumer");
    std::vector<Tick> arrivals;
    node.subscribe<IntMsg>(
        "/t", 10,
        [&](const Stamped<IntMsg> &, std::function<void()> done) {
            arrivals.push_back(f.eq.now());
            done();
        });
    auto pub = f.graph.advertise<IntMsg>("/t");
    pub.publish(Header{}, IntMsg{1}, 4u << 20); // 4 MiB
    f.eq.runUntil();
    // 4 MiB at 2 GB/s ~ 2.1 ms plus base.
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_GT(arrivals[0], 2 * oneMs);
}

TEST(Ros, FanOutToMultipleSubscribers)
{
    Fixture f;
    Node a(f.graph, "a"), b(f.graph, "b");
    int count = 0;
    const auto handler =
        [&](const Stamped<IntMsg> &, std::function<void()> done) {
            ++count;
            done();
        };
    a.subscribe<IntMsg>("/t", 5, handler);
    b.subscribe<IntMsg>("/t", 5, handler);
    f.graph.advertise<IntMsg>("/t").publish(Header{}, IntMsg{}, 64);
    f.eq.runUntil();
    EXPECT_EQ(count, 2);
}

TEST(Ros, BusyNodeQueuesMessages)
{
    Fixture f;
    Node node(f.graph, "slow");
    std::vector<Tick> processed;
    node.subscribe<IntMsg>(
        "/t", 10,
        [&](const Stamped<IntMsg> &, std::function<void()> done) {
            processed.push_back(f.eq.now());
            // Simulate 10 ms of work before calling done().
            f.eq.scheduleAfter(10 * oneMs, done);
        });
    auto pub = f.graph.advertise<IntMsg>("/t");
    for (int i = 0; i < 3; ++i)
        pub.publish(Header{}, IntMsg{i}, 64);
    f.eq.runUntil();
    ASSERT_EQ(processed.size(), 3u);
    // Second starts only after first's done() at ~10 ms.
    EXPECT_GE(processed[1], 10 * oneMs);
    EXPECT_GE(processed[2], 20 * oneMs);
}

TEST(Ros, QueueDepthOneDropsOldest)
{
    Fixture f;
    Node node(f.graph, "detector");
    std::vector<int> seen;
    node.subscribe<IntMsg>(
        "/image_raw", 1,
        [&](const Stamped<IntMsg> &msg, std::function<void()> done) {
            seen.push_back(msg.data.value);
            f.eq.scheduleAfter(100 * oneMs, done); // very slow node
        });
    auto pub = f.graph.advertise<IntMsg>("/image_raw");
    // Publish 5 messages back-to-back: first dispatches, then the
    // queue holds one; values 1..3 get overwritten by 4.
    for (int i = 0; i < 5; ++i)
        pub.publish(Header{}, IntMsg{i}, 64);
    f.eq.runUntil();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 0);
    EXPECT_EQ(seen[1], 4);
    const auto &stats = node.subscriptions()[0]->stats();
    EXPECT_EQ(stats.delivered, 5u);
    EXPECT_EQ(stats.dropped, 3u);
    EXPECT_EQ(stats.processed, 2u);
    EXPECT_NEAR(stats.dropRate(), 0.6, 1e-9);
}

TEST(Ros, NoDropsWhenFastEnough)
{
    Fixture f;
    Node node(f.graph, "fast");
    node.subscribe<IntMsg>(
        "/t", 1,
        [&](const Stamped<IntMsg> &, std::function<void()> done) {
            done(); // instantaneous
        });
    auto pub = f.graph.advertise<IntMsg>("/t");
    for (int i = 0; i < 10; ++i) {
        f.eq.scheduleAfter(static_cast<Tick>(i) * oneMs, [&pub] {
            pub.publish(Header{}, IntMsg{}, 64);
        });
    }
    f.eq.runUntil();
    EXPECT_EQ(node.subscriptions()[0]->stats().dropped, 0u);
    EXPECT_EQ(node.subscriptions()[0]->stats().processed, 10u);
}

TEST(Ros, EarliestArrivalDispatchedFirstAcrossSubscriptions)
{
    Fixture f;
    Node node(f.graph, "fusion");
    std::vector<std::string> order;
    bool busy_hold = true;
    node.subscribe<IntMsg>(
        "/first", 5,
        [&](const Stamped<IntMsg> &, std::function<void()> done) {
            order.push_back("first");
            if (busy_hold) {
                busy_hold = false;
                f.eq.scheduleAfter(5 * oneMs, done);
            } else {
                done();
            }
        });
    node.subscribe<IntMsg>(
        "/second", 5,
        [&](const Stamped<IntMsg> &, std::function<void()> done) {
            order.push_back("second");
            done();
        });
    // /first published at t=0 occupies the node; then one message on
    // /second (arrives ~1 ms) and one more on /first (~2 ms). When
    // the node frees at ~5 ms it must take /second first.
    f.graph.advertise<IntMsg>("/first").publish(Header{}, IntMsg{}, 64);
    f.eq.scheduleAfter(1 * oneMs, [&f] {
        f.graph.advertise<IntMsg>("/second").publish(Header{},
                                                     IntMsg{}, 64);
    });
    f.eq.scheduleAfter(2 * oneMs, [&f] {
        f.graph.advertise<IntMsg>("/first").publish(Header{},
                                                    IntMsg{}, 64);
    });
    f.eq.runUntil();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "first");
    EXPECT_EQ(order[1], "second");
    EXPECT_EQ(order[2], "first");
}

TEST(Ros, OriginsMergeKeepsOldest)
{
    Origins a{100, 0};
    Origins b{50, 200};
    const Origins m = a.merged(b);
    EXPECT_EQ(m.lidar, 50u);
    EXPECT_EQ(m.camera, 200u);
    const Origins n = b.merged(a);
    EXPECT_EQ(n.lidar, 50u);
    EXPECT_EQ(n.camera, 200u);
}

TEST(Ros, OriginsCarriedThroughPipeline)
{
    Fixture f;
    Node stage1(f.graph, "stage1");
    Node stage2(f.graph, "stage2");
    Tick seen_origin = 0;
    stage1.subscribe<IntMsg>(
        "/raw", 5,
        [&](const Stamped<IntMsg> &msg, std::function<void()> done) {
            Header h;
            h.stamp = f.eq.now();
            h.origins = msg.header.origins; // forward lineage
            f.graph.advertise<IntMsg>("/derived").publish(
                h, msg.data, 64);
            done();
        });
    stage2.subscribe<IntMsg>(
        "/derived", 5,
        [&](const Stamped<IntMsg> &msg, std::function<void()> done) {
            seen_origin = msg.header.origins.lidar;
            done();
        });
    Header h;
    h.stamp = 0;
    h.origins.lidar = 12345;
    f.graph.advertise<IntMsg>("/raw").publish(h, IntMsg{}, 64);
    f.eq.runUntil();
    EXPECT_EQ(seen_origin, 12345u);
}

TEST(Ros, SequenceNumbersIncrement)
{
    Fixture f;
    Node node(f.graph, "n");
    std::vector<std::uint64_t> seqs;
    node.subscribe<IntMsg>(
        "/t", 10,
        [&](const Stamped<IntMsg> &msg, std::function<void()> done) {
            seqs.push_back(msg.header.seq);
            done();
        });
    auto pub = f.graph.advertise<IntMsg>("/t");
    for (int i = 0; i < 3; ++i)
        pub.publish(Header{}, IntMsg{}, 8);
    f.eq.runUntil();
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(Ros, DuplicateNodeNamePanics)
{
    Fixture f;
    Node a(f.graph, "same");
    EXPECT_DEATH(Node(f.graph, "same"), "duplicate node name");
}

TEST(Ros, TopicTypeMismatchPanics)
{
    Fixture f;
    f.graph.topic<IntMsg>("/typed");
    struct Other
    {
        double d;
    };
    EXPECT_DEATH(f.graph.topic<Other>("/typed"), "different type");
}

TEST(Bag, RecordAndReplayPreservesTiming)
{
    // Record from one graph...
    Fixture rec;
    av::ros::Bag bag;
    bag.record(rec.graph.topic<IntMsg>("/points"));
    auto pub = rec.graph.advertise<IntMsg>("/points");
    for (int i = 0; i < 3; ++i) {
        rec.eq.scheduleAfter(static_cast<Tick>(i) * 100 * oneMs,
                             [&pub, &rec, i] {
                                 Header h;
                                 h.stamp = rec.eq.now();
                                 pub.publish(h, IntMsg{i}, 64);
                             });
    }
    rec.eq.runUntil();
    EXPECT_EQ(bag.totalMessages(), 3u);
    EXPECT_EQ(bag.duration(), 200 * oneMs);

    // ...replay into a fresh graph.
    Fixture play;
    Node node(play.graph, "sink");
    std::vector<std::pair<Tick, int>> seen;
    node.subscribe<IntMsg>(
        "/points", 10,
        [&](const Stamped<IntMsg> &msg, std::function<void()> done) {
            seen.emplace_back(play.eq.now(), msg.data.value);
            done();
        });
    bag.replay(play.graph);
    play.eq.runUntil();
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].second, 0);
    EXPECT_EQ(seen[2].second, 2);
    // Replayed publication at recorded stamps + transport.
    EXPECT_NEAR(av::sim::ticksToMs(seen[2].first), 200.15, 0.1);
}

TEST(Bag, ChannelTypeMismatchPanics)
{
    av::ros::Bag bag;
    bag.channel<IntMsg>("/x");
    struct Other
    {
        int i;
    };
    EXPECT_DEATH(bag.channel<Other>("/x"), "different type");
}

} // namespace
