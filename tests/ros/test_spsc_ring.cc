/**
 * @file
 * Unit tests for the lock-free SPSC drop-oldest ring behind the v2
 * transport's subscription queues: bounded capacity, wraparound,
 * drop-oldest ordering, peek/clear, and a real producer/consumer
 * thread pair (run under TSan by scripts/check.sh to prove the
 * cross-thread acquire/release protocol clean).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "ros/spsc_ring.hh"

namespace {

using av::ros::SpscRing;

TEST(SpscRing, StartsEmpty)
{
    SpscRing<int> ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.peek(), nullptr);
    int out = 0;
    EXPECT_FALSE(ring.pop(&out));
}

TEST(SpscRing, PushPopFifo)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i) {
        int v = i;
        EXPECT_TRUE(ring.tryPush(v));
    }
    EXPECT_EQ(ring.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        int out = -1;
        ASSERT_TRUE(ring.pop(&out));
        EXPECT_EQ(out, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TryPushRefusesWhenLogicallyFull)
{
    // Logical capacity 3 rounds up to 4 physical cells; the logical
    // bound is what tryPush must enforce.
    SpscRing<int> ring(3);
    EXPECT_EQ(ring.capacity(), 3u);
    for (int i = 0; i < 3; ++i) {
        int v = i;
        EXPECT_TRUE(ring.tryPush(v));
    }
    int extra = 99;
    EXPECT_FALSE(ring.tryPush(extra));
    EXPECT_EQ(extra, 99); // not moved from on failure
    EXPECT_EQ(ring.size(), 3u);
}

TEST(SpscRing, DropOldestKeepsNewestInOrder)
{
    SpscRing<int> ring(2);
    std::size_t dropped = 0;
    for (int i = 0; i < 5; ++i)
        dropped += ring.pushDropOldest(i);
    // 0..2 displaced; 3 and 4 remain in FIFO order.
    EXPECT_EQ(dropped, 3u);
    int out = -1;
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out, 3);
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out, 4);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WraparoundManyTimes)
{
    SpscRing<int> ring(3);
    // Push/pop far past the physical size so head/tail wrap the
    // index mask repeatedly; FIFO order must survive every lap.
    for (int i = 0; i < 1000; ++i) {
        int v = i;
        ASSERT_TRUE(ring.tryPush(v));
        int out = -1;
        ASSERT_TRUE(ring.pop(&out));
        ASSERT_EQ(out, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, InterleavedFillDrainWraparound)
{
    SpscRing<int> ring(4);
    int next_push = 0, next_pop = 0;
    for (int lap = 0; lap < 50; ++lap) {
        while (ring.size() < ring.capacity()) {
            int v = next_push++;
            ASSERT_TRUE(ring.tryPush(v));
        }
        // Drain half, keeping the ring partially full across laps.
        for (int i = 0; i < 2; ++i) {
            int out = -1;
            ASSERT_TRUE(ring.pop(&out));
            ASSERT_EQ(out, next_pop++);
        }
    }
    while (!ring.empty()) {
        int out = -1;
        ASSERT_TRUE(ring.pop(&out));
        ASSERT_EQ(out, next_pop++);
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, PeekSeesHeadWithoutConsuming)
{
    SpscRing<int> ring(4);
    int v = 7;
    ASSERT_TRUE(ring.tryPush(v));
    v = 8;
    ASSERT_TRUE(ring.tryPush(v));
    const int *head = ring.peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(*head, 7);
    EXPECT_EQ(ring.size(), 2u);
    int out = -1;
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out, 7);
    head = ring.peek();
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(*head, 8);
}

TEST(SpscRing, ClearDiscardsEverything)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i) {
        int v = i;
        ASSERT_TRUE(ring.tryPush(v));
    }
    EXPECT_EQ(ring.clear(), 4u);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.peek(), nullptr);
    // Still usable after a clear.
    int v = 42;
    ASSERT_TRUE(ring.tryPush(v));
    int out = -1;
    ASSERT_TRUE(ring.pop(&out));
    EXPECT_EQ(out, 42);
}

TEST(SpscRing, MoveOnlyPayloads)
{
    SpscRing<std::unique_ptr<int>> ring(2);
    auto p = std::make_unique<int>(5);
    ASSERT_TRUE(ring.tryPush(p));
    EXPECT_EQ(p, nullptr); // moved from on success
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.pop(&out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 5);
}

TEST(SpscRing, ProducerConsumerThreadsDeliverEverything)
{
    // Real cross-thread traffic: every value pushed must arrive
    // exactly once, in order. scripts/check.sh runs this under TSan,
    // which is what proves the acquire/release protocol has no race.
    constexpr std::uint64_t kOps = 100000;
    SpscRing<std::uint64_t> ring(128);
    std::vector<std::uint64_t> received;
    received.reserve(kOps);

    std::thread producer([&ring] {
        for (std::uint64_t i = 1; i <= kOps; ++i) {
            std::uint64_t v = i;
            while (!ring.tryPush(v))
                std::this_thread::yield();
        }
    });
    std::thread consumer([&ring, &received] {
        while (received.size() < kOps) {
            std::uint64_t out = 0;
            if (ring.pop(&out))
                received.push_back(out);
            else
                std::this_thread::yield();
        }
    });
    producer.join();
    consumer.join();

    ASSERT_EQ(received.size(), kOps);
    for (std::uint64_t i = 0; i < kOps; ++i)
        ASSERT_EQ(received[i], i + 1);
}

TEST(SpscRing, ConcurrentDropOldestNeverLosesNewest)
{
    // Producer uses the drop-oldest path while the consumer drains:
    // totals must reconcile (pushed == popped + dropped) and the
    // consumer must observe a strictly increasing sequence.
    constexpr std::uint64_t kOps = 100000;
    SpscRing<std::uint64_t> ring(8);
    std::atomic<bool> stop{false};
    std::uint64_t dropped = 0;

    std::thread producer([&ring, &dropped, &stop] {
        for (std::uint64_t i = 1; i <= kOps; ++i)
            dropped += ring.pushDropOldest(i);
        stop.store(true, std::memory_order_release);
    });

    std::uint64_t popped = 0, last = 0;
    bool monotonic = true;
    while (!stop.load(std::memory_order_acquire) || !ring.empty()) {
        std::uint64_t out = 0;
        if (ring.pop(&out)) {
            monotonic = monotonic && out > last;
            last = out;
            ++popped;
        }
    }
    producer.join();

    EXPECT_TRUE(monotonic);
    EXPECT_EQ(popped + dropped, kOps);
    EXPECT_EQ(last, kOps); // the newest value always survives
}

} // namespace
