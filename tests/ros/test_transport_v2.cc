/**
 * @file
 * Tests of the v2 zero-copy loaned-message transport: the copy/loan
 * TransportMode switch, the single-subscriber move fast path, shared
 * immutable payloads under fan-out, fault-forced private copies, and
 * the transport counters — plus mode equivalence: Copy and Loan must
 * produce identical simulated behaviour (same arrivals, same drops),
 * differing only in host-side payload handling.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ros/ros.hh"
#include "sim/ticks.hh"

namespace {

using namespace av::ros;
using av::hw::Machine;
using av::hw::MachineConfig;
using av::sim::EventQueue;
using av::sim::oneMs;
using av::sim::Tick;

/**
 * Payload that counts its own copies and moves. The zero-copy
 * contract is asserted on these counters, not on the transport's
 * bookkeeping, so the two instrument each other.
 */
struct CopyCounted
{
    int value = 0;
    static int copies;
    static int moves;

    CopyCounted() = default;
    explicit CopyCounted(int v) : value(v) {}
    CopyCounted(const CopyCounted &o) : value(o.value) { ++copies; }
    CopyCounted &
    operator=(const CopyCounted &o)
    {
        value = o.value;
        ++copies;
        return *this;
    }
    CopyCounted(CopyCounted &&o) noexcept : value(o.value)
    {
        ++moves;
    }
    CopyCounted &
    operator=(CopyCounted &&o) noexcept
    {
        value = o.value;
        ++moves;
        return *this;
    }

    static void
    reset()
    {
        copies = 0;
        moves = 0;
    }
};

int CopyCounted::copies = 0;
int CopyCounted::moves = 0;

struct Fixture
{
    explicit Fixture(TransportMode mode = TransportMode::Loan)
        : graph{machine, transportConfig(mode)}
    {
    }

    static TransportConfig
    transportConfig(TransportMode mode)
    {
        TransportConfig tc;
        tc.mode = mode;
        return tc;
    }

    EventQueue eq;
    MachineConfig mcfg;
    Machine machine{eq, mcfg};
    RosGraph graph;
};

TEST(TransportV2, SingleSubscriberLoanMovesWithoutCopy)
{
    Fixture f(TransportMode::Loan);
    Node node(f.graph, "sink");
    int seen = 0;
    node.subscribe<CopyCounted>(
        "/t", 4,
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            seen = msg.data.value;
            done();
        });
    auto pub = f.graph.advertise<CopyCounted>("/t");

    CopyCounted::reset();
    CopyCounted payload(7);
    pub.publish(Header{}, std::move(payload), 1000);
    f.eq.runUntil();

    EXPECT_EQ(seen, 7);
    // The whole transfer is a chain of moves: caller -> publish
    // argument -> Stamped -> sealed shared payload. Never a copy.
    EXPECT_EQ(CopyCounted::copies, 0);
    EXPECT_GT(CopyCounted::moves, 0);

    const auto c = f.graph.transportCounters();
    EXPECT_EQ(c.published, 1u);
    EXPECT_EQ(c.deliveries, 1u);
    EXPECT_EQ(c.movedPublishes, 1u);
    EXPECT_EQ(c.loanedDeliveries, 1u);
    EXPECT_EQ(c.payloadCopies, 0u);
    EXPECT_EQ(c.forcedCopies, 0u);
}

TEST(TransportV2, FanOutLoanSharesOnePayload)
{
    Fixture f(TransportMode::Loan);
    Node a(f.graph, "a"), b(f.graph, "b"), c(f.graph, "c");
    std::vector<const CopyCounted *> addresses;
    const auto handler =
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            addresses.push_back(&msg.data);
            done();
        };
    a.subscribe<CopyCounted>("/t", 4, handler);
    b.subscribe<CopyCounted>("/t", 4, handler);
    c.subscribe<CopyCounted>("/t", 4, handler);

    CopyCounted::reset();
    f.graph.advertise<CopyCounted>("/t").publish(
        Header{}, CopyCounted{3}, 64);
    f.eq.runUntil();

    ASSERT_EQ(addresses.size(), 3u);
    // All three handlers observed the *same* immutable payload.
    EXPECT_EQ(addresses[0], addresses[1]);
    EXPECT_EQ(addresses[1], addresses[2]);
    EXPECT_EQ(CopyCounted::copies, 0);

    const auto counters = f.graph.transportCounters();
    EXPECT_EQ(counters.deliveries, 3u);
    EXPECT_EQ(counters.loanedDeliveries, 3u);
    EXPECT_EQ(counters.payloadCopies, 0u);
}

TEST(TransportV2, CopyModeDeepCopiesPerSubscriber)
{
    Fixture f(TransportMode::Copy);
    Node a(f.graph, "a"), b(f.graph, "b");
    std::vector<const CopyCounted *> addresses;
    const auto handler =
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            addresses.push_back(&msg.data);
            done();
        };
    a.subscribe<CopyCounted>("/t", 4, handler);
    b.subscribe<CopyCounted>("/t", 4, handler);

    CopyCounted::reset();
    f.graph.advertise<CopyCounted>("/t").publish(
        Header{}, CopyCounted{3}, 64);
    f.eq.runUntil();

    ASSERT_EQ(addresses.size(), 2u);
    EXPECT_NE(addresses[0], addresses[1]); // private copies
    EXPECT_EQ(CopyCounted::copies, 2);

    const auto counters = f.graph.transportCounters();
    EXPECT_EQ(counters.deliveries, 2u);
    EXPECT_EQ(counters.payloadCopies, 2u);
    EXPECT_EQ(counters.loanedDeliveries, 0u);
    EXPECT_EQ(counters.movedPublishes, 0u);
    EXPECT_EQ(counters.forcedCopies, 0u);
}

TEST(TransportV2, DuplicateFaultForcesPrivateCopiesUnderLoan)
{
    Fixture f(TransportMode::Loan);
    Node node(f.graph, "sink");
    std::vector<const CopyCounted *> addresses;
    node.subscribe<CopyCounted>(
        "/t", 8,
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            addresses.push_back(&msg.data);
            done();
        });
    // Every publication gets one duplicate: two independent wire
    // trips, which cannot alias one loaned buffer.
    f.graph.faults().addPolicy("/t", [](const Header &, Tick) {
        Disruption d;
        d.duplicates = 1;
        return d;
    });

    CopyCounted::reset();
    f.graph.advertise<CopyCounted>("/t").publish(
        Header{}, CopyCounted{5}, 64);
    f.eq.runUntil();

    ASSERT_EQ(addresses.size(), 2u);
    EXPECT_NE(addresses[0], addresses[1]);
    EXPECT_EQ(CopyCounted::copies, 2);

    const auto counters = f.graph.transportCounters();
    EXPECT_EQ(counters.deliveries, 2u);
    EXPECT_EQ(counters.payloadCopies, 2u);
    EXPECT_EQ(counters.forcedCopies, 2u);
    EXPECT_EQ(counters.loanedDeliveries, 0u);
    EXPECT_EQ(counters.movedPublishes, 0u);
}

TEST(TransportV2, CorruptFaultDiscardsWithoutCopying)
{
    Fixture f(TransportMode::Loan);
    Node node(f.graph, "sink");
    int seen = 0;
    node.subscribe<CopyCounted>(
        "/t", 4,
        [&](const Stamped<CopyCounted> &,
            std::function<void()> done) {
            ++seen;
            done();
        });
    f.graph.faults().addPolicy("/t", [](const Header &, Tick) {
        Disruption d;
        d.corrupt = true;
        return d;
    });

    CopyCounted::reset();
    f.graph.advertise<CopyCounted>("/t").publish(
        Header{}, CopyCounted{5}, 64);
    f.eq.runUntil();

    EXPECT_EQ(seen, 0);
    EXPECT_EQ(CopyCounted::copies, 0);
    const auto counters = f.graph.transportCounters();
    EXPECT_EQ(counters.published, 1u);
    EXPECT_EQ(counters.deliveries, 0u);
    EXPECT_EQ(counters.payloadCopies, 0u);
}

TEST(TransportV2, TapsObserveMessagesAtRest)
{
    // Bags record via taps before the arrival stamp is sealed into
    // the loan: recorded messages must look exactly like v1's
    // (arrival 0), or bag files would change byte-for-byte.
    Fixture f(TransportMode::Loan);
    Node node(f.graph, "sink");
    node.subscribe<CopyCounted>(
        "/t", 4,
        [&](const Stamped<CopyCounted> &,
            std::function<void()> done) { done(); });
    std::vector<Tick> tapArrivals;
    f.graph.topic<CopyCounted>("/t").addTap(
        [&](const Stamped<CopyCounted> &msg) {
            tapArrivals.push_back(msg.arrival);
        });
    f.graph.advertise<CopyCounted>("/t").publish(
        Header{}, CopyCounted{1}, 64);
    f.eq.runUntil();
    ASSERT_EQ(tapArrivals.size(), 1u);
    EXPECT_EQ(tapArrivals[0], 0u);
}

/** One small drive: two subscribers, one slow (drops), N messages. */
struct ModeTrace
{
    std::vector<std::pair<Tick, int>> fastSeen;
    std::vector<std::pair<Tick, int>> slowSeen;
    std::uint64_t dropped = 0;
    std::uint64_t delivered = 0;
};

ModeTrace
runSmallDrive(TransportMode mode)
{
    Fixture f(mode);
    ModeTrace trace;
    Node fast(f.graph, "fast"), slow(f.graph, "slow");
    fast.subscribe<CopyCounted>(
        "/t", 2,
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            trace.fastSeen.emplace_back(f.eq.now(),
                                        msg.data.value);
            done();
        });
    slow.subscribe<CopyCounted>(
        "/t", 1,
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            trace.slowSeen.emplace_back(f.eq.now(),
                                        msg.data.value);
            f.eq.scheduleAfter(10 * oneMs, done); // slow consumer
        });
    auto pub = f.graph.advertise<CopyCounted>("/t");
    for (int i = 0; i < 20; ++i) {
        f.eq.scheduleAfter(static_cast<Tick>(i) * oneMs,
                           [&pub, i] {
                               pub.publish(Header{},
                                           CopyCounted{i}, 4096);
                           });
    }
    f.eq.runUntil();
    for (const auto &sub : slow.subscriptions()) {
        trace.dropped += sub->stats().dropped;
        trace.delivered += sub->stats().delivered;
    }
    return trace;
}

TEST(TransportV2, CopyAndLoanProduceIdenticalSimulatedBehaviour)
{
    const ModeTrace copyTrace = runSmallDrive(TransportMode::Copy);
    const ModeTrace loanTrace = runSmallDrive(TransportMode::Loan);
    // The transports must be indistinguishable inside the
    // simulation: same arrival ticks, same processing order, same
    // Table III drop accounting.
    EXPECT_EQ(copyTrace.fastSeen, loanTrace.fastSeen);
    EXPECT_EQ(copyTrace.slowSeen, loanTrace.slowSeen);
    EXPECT_EQ(copyTrace.dropped, loanTrace.dropped);
    EXPECT_EQ(copyTrace.delivered, loanTrace.delivered);
    EXPECT_GT(copyTrace.dropped, 0u); // the drive really drops
}

TEST(TransportV2, ArrivalStampMatchesDeliveryTick)
{
    Fixture f(TransportMode::Loan);
    Node node(f.graph, "sink");
    std::vector<std::pair<Tick, Tick>> stamps; // (now, msg.arrival)
    node.subscribe<CopyCounted>(
        "/t", 4,
        [&](const Stamped<CopyCounted> &msg,
            std::function<void()> done) {
            stamps.emplace_back(f.eq.now(), msg.arrival);
            done();
        });
    auto pub = f.graph.advertise<CopyCounted>("/t");
    pub.publish(Header{}, CopyCounted{1}, 2000);
    f.eq.runUntil();
    ASSERT_EQ(stamps.size(), 1u);
    EXPECT_EQ(stamps[0].first, stamps[0].second);
}

TEST(TransportV2, ModeNamesRoundTrip)
{
    EXPECT_STREQ(transportModeName(TransportMode::Copy), "copy");
    EXPECT_STREQ(transportModeName(TransportMode::Loan), "loan");
    TransportMode mode = TransportMode::Copy;
    EXPECT_TRUE(transportModeFromName("loan", mode));
    EXPECT_EQ(mode, TransportMode::Loan);
    EXPECT_TRUE(transportModeFromName("copy", mode));
    EXPECT_EQ(mode, TransportMode::Copy);
    EXPECT_FALSE(transportModeFromName("zero-copy", mode));
}

TEST(TransportV2, CountersAggregateAcrossTopics)
{
    Fixture f(TransportMode::Loan);
    Node node(f.graph, "sink");
    const auto handler =
        [](const Stamped<CopyCounted> &,
           std::function<void()> done) { done(); };
    node.subscribe<CopyCounted>("/a", 4, handler);
    node.subscribe<CopyCounted>("/b", 4, handler);
    f.graph.advertise<CopyCounted>("/a").publish(Header{},
                                                 CopyCounted{}, 8);
    f.graph.advertise<CopyCounted>("/b").publish(Header{},
                                                 CopyCounted{}, 8);
    f.graph.advertise<CopyCounted>("/b").publish(Header{},
                                                 CopyCounted{}, 8);
    f.eq.runUntil();
    const auto total = f.graph.transportCounters();
    EXPECT_EQ(total.published, 3u);
    EXPECT_EQ(total.deliveries, 3u);
    EXPECT_EQ(total.loanedDeliveries, 3u);
    const auto *topicA = f.graph.findTopic("/a");
    ASSERT_NE(topicA, nullptr);
    EXPECT_EQ(topicA->transportCounters().published, 1u);
}

} // namespace
