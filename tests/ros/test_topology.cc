/**
 * @file
 * Topology introspection tests: the registered pub/sub graph must be
 * enumerable exactly — every subscription edge once with its queue
 * depth, advertisers recorded and deduplicated, identical snapshots
 * under Copy and Loan transports, and canonical (sorted) ordering
 * regardless of construction order. This is the runtime half that
 * tools/avgraph cross-validates against.
 */

#include <gtest/gtest.h>

#include "ros/ros.hh"
#include "ros/topology.hh"
#include "sim/ticks.hh"

namespace {

using namespace av;
using namespace av::ros;

struct Msg
{
    int value = 0;
};

struct Fixture
{
    explicit Fixture(TransportMode mode = TransportMode::Loan)
        : graph{machine, transportConfig(mode)}
    {
    }

    static TransportConfig
    transportConfig(TransportMode mode)
    {
        TransportConfig tc;
        tc.mode = mode;
        return tc;
    }

    sim::EventQueue eq;
    hw::MachineConfig mcfg;
    hw::Machine machine{eq, mcfg};
    RosGraph graph;
};

Node::Handler<Msg>
noopHandler()
{
    return [](const Stamped<Msg> &, std::function<void()> done) {
        done();
    };
}

TEST(Topology, AdvertisersRecordedAndDeduplicated)
{
    Fixture f;
    auto p1 = f.graph.advertise<Msg>("/t", "alpha");
    auto p2 = f.graph.advertise<Msg>("/t", "alpha"); // same node
    auto p3 = f.graph.advertise<Msg>("/t", "beta");
    auto p4 = f.graph.advertise<Msg>("/t"); // anonymous: not listed
    (void)p1;
    (void)p2;
    (void)p3;
    (void)p4;
    const TopicBase *topic = f.graph.findTopic("/t");
    ASSERT_NE(topic, nullptr);
    EXPECT_EQ(topic->advertisers(),
              (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Topology, SubscriptionExposesQueueDepth)
{
    Fixture f;
    Node node(f.graph, "sink");
    node.subscribe<Msg>("/t", 7, noopHandler());
    const auto subs = f.graph.topic<Msg>("/t").subscribers();
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0]->queueDepth(), 7u);
}

TEST(Topology, SnapshotListsEveryEdgeExactlyOnce)
{
    Fixture f;
    Node source(f.graph, "source");
    Node fast(f.graph, "fast");
    Node slow(f.graph, "slow");
    auto pub = f.graph.advertise<Msg>("/fanout", "source");
    (void)pub;
    fast.subscribe<Msg>("/fanout", 1, noopHandler());
    slow.subscribe<Msg>("/fanout", 4, noopHandler());

    const TopologySnapshot snap = topologySnapshot(f.graph);
    EXPECT_EQ(snap.nodes, (std::vector<std::string>{"fast", "slow",
                                                    "source"}));
    ASSERT_EQ(snap.topics.size(), 1u);
    EXPECT_EQ(snap.topics[0].name, "/fanout");
    EXPECT_EQ(snap.topics[0].advertisers,
              (std::vector<std::string>{"source"}));
    // One edge per subscription, each with its own queue depth.
    ASSERT_EQ(snap.edges.size(), 2u);
    EXPECT_EQ(snap.edges[0],
              (TopologyEdge{"/fanout", "fast", 1}));
    EXPECT_EQ(snap.edges[1],
              (TopologyEdge{"/fanout", "slow", 4}));
}

TEST(Topology, SnapshotIsCanonicallySortedRegardlessOfOrder)
{
    Fixture f;
    // Construct deliberately out of lexicographic order.
    Node zeta(f.graph, "zeta");
    Node alpha(f.graph, "alpha");
    auto pz = f.graph.advertise<Msg>("/z", "zeta");
    auto pa = f.graph.advertise<Msg>("/a", "alpha");
    (void)pz;
    (void)pa;
    alpha.subscribe<Msg>("/z", 2, noopHandler());
    zeta.subscribe<Msg>("/a", 3, noopHandler());

    const TopologySnapshot snap = topologySnapshot(f.graph);
    EXPECT_EQ(snap.nodes,
              (std::vector<std::string>{"alpha", "zeta"}));
    ASSERT_EQ(snap.topics.size(), 2u);
    EXPECT_EQ(snap.topics[0].name, "/a");
    EXPECT_EQ(snap.topics[1].name, "/z");
    ASSERT_EQ(snap.edges.size(), 2u);
    EXPECT_EQ(snap.edges[0], (TopologyEdge{"/a", "zeta", 3}));
    EXPECT_EQ(snap.edges[1], (TopologyEdge{"/z", "alpha", 2}));
}

TEST(Topology, SnapshotIdenticalUnderCopyAndLoanTransports)
{
    const auto build = [](TransportMode mode) {
        Fixture f(mode);
        Node a(f.graph, "a");
        Node b(f.graph, "b");
        auto pub = f.graph.advertise<Msg>("/t", "a");
        b.subscribe<Msg>("/t", 2, noopHandler());
        // Exercise the transport so the snapshot reflects a graph
        // that actually moved messages in this mode.
        pub.publish(Header{}, Msg{7}, 16);
        f.eq.runUntil();
        return topologySnapshot(f.graph);
    };
    const TopologySnapshot copy = build(TransportMode::Copy);
    const TopologySnapshot loan = build(TransportMode::Loan);
    EXPECT_EQ(copy, loan);
    ASSERT_EQ(copy.edges.size(), 1u);
    EXPECT_EQ(copy.edges[0], (TopologyEdge{"/t", "b", 2}));
}

} // namespace
