/**
 * @file
 * Unit tests for the perception algorithms: ground filtering,
 * clustering, fusion, motion prediction, costmaps, vision model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "perception/costmap.hh"
#include "perception/euclidean_cluster.hh"
#include "perception/fusion.hh"
#include "perception/motion_predict.hh"
#include "perception/ray_ground_filter.hh"
#include "perception/vision_model.hh"
#include "util/random.hh"

namespace {

using namespace av;
using namespace av::perception;

/** A flat ground disc plus box-shaped obstacles. */
pc::PointCloud
syntheticScene(const std::vector<geom::Vec3> &object_centers,
               std::uint64_t seed = 1)
{
    util::Rng rng(seed);
    pc::PointCloud cloud;
    // Ground points out to 30 m.
    for (int i = 0; i < 4000; ++i) {
        const double r = rng.uniform(2.0, 30.0);
        const double a = rng.uniform(0.0, 2 * M_PI);
        cloud.push_back(pc::Point::fromVec(
            {r * std::cos(a), r * std::sin(a),
             rng.gaussian(0.0, 0.015)}));
    }
    // Object points: small dense boxes 1.6 m tall.
    for (const geom::Vec3 &c : object_centers) {
        for (int i = 0; i < 150; ++i) {
            cloud.push_back(pc::Point::fromVec(
                {c.x + rng.uniform(-0.9, 0.9),
                 c.y + rng.uniform(-0.7, 0.7),
                 rng.uniform(0.1, 1.6)}));
        }
    }
    return cloud;
}

TEST(RayGroundFilter, SeparatesGroundFromObstacles)
{
    const pc::PointCloud scene =
        syntheticScene({{10, 0, 0}, {-8, 6, 0}});
    const GroundSplit split =
        rayGroundFilter(scene, RayGroundConfig());
    // All 4000 ground points should be classified ground; most of
    // the 300 object points should not (points at an object's base
    // are genuinely ground-ambiguous for any slope-based filter).
    EXPECT_GT(split.ground.size(), 3500u);
    EXPECT_GT(split.noGround.size(), 200u);
    EXPECT_EQ(split.ground.size() + split.noGround.size(),
              scene.size());
    // Obstacle points are tall; ground points are near zero.
    double max_ground_z = 0.0;
    for (const auto &p : split.ground.points)
        max_ground_z = std::max(max_ground_z, double(p.z));
    EXPECT_LT(max_ground_z, 0.6);
}

TEST(RayGroundFilter, EmptyCloud)
{
    const GroundSplit split =
        rayGroundFilter(pc::PointCloud{}, RayGroundConfig());
    EXPECT_TRUE(split.ground.empty());
    EXPECT_TRUE(split.noGround.empty());
}

TEST(EuclideanCluster, FindsDistinctObjects)
{
    pc::PointCloud obstacles;
    util::Rng rng(3);
    const std::vector<geom::Vec2> centers = {
        {8, 0}, {-6, 5}, {0, -12}};
    for (const auto &c : centers) {
        for (int i = 0; i < 120; ++i)
            obstacles.push_back(pc::Point::fromVec(
                {c.x + rng.uniform(-0.8, 0.8),
                 c.y + rng.uniform(-0.6, 0.6),
                 rng.uniform(0.2, 1.5)}));
    }
    const auto clusters =
        euclideanCluster(obstacles, ClusterConfig());
    ASSERT_EQ(clusters.size(), 3u);
    // Each cluster centroid close to a seeded center.
    for (const auto &cl : clusters) {
        double best = 1e9;
        for (const auto &c : centers)
            best = std::min(best,
                            (geom::Vec2{cl.centroid.x,
                                        cl.centroid.y} -
                             c)
                                .norm());
        EXPECT_LT(best, 0.5);
        EXPECT_GT(cl.height, 1.0);
        EXPECT_GT(cl.pointCount, 100u);
    }
}

TEST(EuclideanCluster, MinPointsRejectsNoise)
{
    pc::PointCloud sparse;
    for (int i = 0; i < 5; ++i)
        sparse.push_back(
            pc::Point::fromVec({i * 10.0, 0.0, 1.0}));
    EXPECT_TRUE(euclideanCluster(sparse, ClusterConfig()).empty());
}

TEST(EuclideanCluster, RejectsWallSizedObjects)
{
    pc::PointCloud wall;
    util::Rng rng(4);
    // Below maxPoints so the wall stays one cluster, but 28 m long:
    // beyond maxObjectDim.
    for (int i = 0; i < 1000; ++i)
        wall.push_back(pc::Point::fromVec(
            {rng.uniform(-14.0, 14.0), rng.gaussian(0.0, 0.05),
             rng.uniform(0.0, 2.0)}));
    EXPECT_TRUE(euclideanCluster(wall, ClusterConfig()).empty());
}

TEST(EuclideanCluster, CropRemovesFarAndTall)
{
    pc::PointCloud cloud;
    cloud.push_back(pc::Point::fromVec({5, 0, 1.0}));   // keep
    cloud.push_back(pc::Point::fromVec({5, 0, 5.0}));   // too tall
    cloud.push_back(pc::Point::fromVec({100, 0, 1.0})); // too far
    const auto cropped =
        cropForClustering(cloud, ClusterConfig());
    EXPECT_EQ(cropped.size(), 1u);
}

TEST(VisionModel, DetectsLargeNearbyObjects)
{
    world::CameraFrame frame;
    frame.width = 1280;
    frame.height = 720;
    world::VisibleObject vo;
    vo.truthId = 7;
    vo.cls = world::ActorClass::Car;
    vo.range = 12.0;
    vo.bearing = 0.1;
    vo.imageHeightPx = 90.0; // large
    frame.truth.push_back(vo);

    int detections = 0;
    for (int t = 0; t < 100; ++t) {
        const ObjectList out = detectObjects(
            frame, t * 100 * sim::oneMs, DetectorKind::Ssd512);
        for (const auto &d : out.objects)
            detections += d.truthId == 7;
    }
    EXPECT_GT(detections, 85); // recallBase 0.96
}

TEST(VisionModel, SmallObjectsRecallOrdering)
{
    // SSD512 must beat SSD300 on small objects (the paper's
    // resolution/latency trade-off).
    world::CameraFrame frame;
    frame.width = 1280;
    frame.height = 720;
    world::VisibleObject vo;
    vo.truthId = 3;
    vo.cls = world::ActorClass::Pedestrian;
    vo.range = 50.0;
    vo.imageHeightPx = 24.0; // small
    frame.truth.push_back(vo);

    int ssd512 = 0, ssd300 = 0;
    for (int t = 0; t < 400; ++t) {
        const auto big = detectObjects(frame, t * sim::oneMs,
                                       DetectorKind::Ssd512);
        const auto small = detectObjects(frame, t * sim::oneMs,
                                         DetectorKind::Ssd300);
        for (const auto &d : big.objects)
            ssd512 += d.truthId == 3;
        for (const auto &d : small.objects)
            ssd300 += d.truthId == 3;
    }
    EXPECT_GT(ssd512, ssd300);
}

TEST(VisionModel, OcclusionSuppressesDetection)
{
    world::CameraFrame frame;
    frame.width = 1280;
    frame.height = 720;
    world::VisibleObject vo;
    vo.truthId = 9;
    vo.range = 10.0;
    vo.imageHeightPx = 100.0;
    vo.occlusion = 0.9;
    frame.truth.push_back(vo);
    int detections = 0;
    for (int t = 0; t < 100; ++t) {
        const auto out = detectObjects(frame, t * sim::oneMs,
                                       DetectorKind::Yolov3);
        for (const auto &d : out.objects)
            detections += d.truthId == 9;
    }
    EXPECT_LT(detections, 45);
}

TEST(Fusion, MatchesClusterWithVisionLabel)
{
    // Ego at origin; a cluster at (10, 0); a vision detection at
    // bearing 0 classifying it as Car.
    ObjectList lidar;
    DetectedObject cluster;
    cluster.position = {10, 0};
    cluster.width = 1.8;
    cluster.length = 4.4;
    lidar.objects.push_back(cluster);

    ObjectList vision;
    DetectedObject vis;
    vis.label = Label::Car;
    vis.confidence = 0.9;
    vis.bearing = 0.0;
    vis.rangeEstimate = 10.5;
    vision.objects.push_back(vis);

    const ObjectList fused = fuseObjects(
        lidar, vision, geom::Pose2{}, FusionConfig());
    ASSERT_EQ(fused.objects.size(), 1u);
    EXPECT_EQ(fused.objects[0].label, Label::Car);
    // Geometry comes from the LiDAR cluster.
    EXPECT_NEAR(fused.objects[0].position.x, 10.0, 1e-9);
}

TEST(Fusion, BearingMismatchKeepsUnknown)
{
    ObjectList lidar;
    DetectedObject cluster;
    cluster.position = {10, 0};
    cluster.width = 1.8;
    lidar.objects.push_back(cluster);

    ObjectList vision;
    DetectedObject vis;
    vis.label = Label::Car;
    vis.confidence = 0.9;
    vis.bearing = 1.2; // way off
    vis.rangeEstimate = 10.0;
    vision.objects.push_back(vis);

    const ObjectList fused = fuseObjects(
        lidar, vision, geom::Pose2{}, FusionConfig());
    // Cluster stays Unknown + a vision-only object is created.
    ASSERT_EQ(fused.objects.size(), 2u);
    EXPECT_EQ(fused.objects[0].label, Label::Unknown);
    EXPECT_EQ(fused.objects[1].label, Label::Car);
}

TEST(Fusion, RespectsEgoFrame)
{
    // Ego rotated 90 deg: a cluster directly "ahead" in world +y.
    ObjectList lidar;
    DetectedObject cluster;
    cluster.position = {0, 10};
    cluster.width = 1.8;
    lidar.objects.push_back(cluster);

    ObjectList vision;
    DetectedObject vis;
    vis.label = Label::Pedestrian;
    vis.confidence = 0.9;
    vis.bearing = 0.0;
    vis.rangeEstimate = 10.0;
    vision.objects.push_back(vis);

    const geom::Pose2 ego{{0, 0}, M_PI / 2};
    const ObjectList fused =
        fuseObjects(lidar, vision, ego, FusionConfig());
    ASSERT_GE(fused.objects.size(), 1u);
    EXPECT_EQ(fused.objects[0].label, Label::Pedestrian);
}

TEST(MotionPredict, ConstantVelocityPath)
{
    ObjectList tracked;
    DetectedObject obj;
    obj.position = {0, 0};
    obj.yaw = 0.0;
    obj.hasVelocity = true;
    obj.velocity = {10, 0};
    tracked.objects.push_back(obj);

    PredictConfig cfg;
    cfg.horizonSec = 3.0;
    cfg.stepSec = 0.15;
    const ObjectList out = predictMotion(tracked, cfg);
    ASSERT_EQ(out.objects.size(), 1u);
    const auto &path = out.objects[0].predictedPath;
    ASSERT_EQ(path.size(), 20u);
    EXPECT_NEAR(path.back().x, 30.0, 0.5);
    EXPECT_NEAR(path.back().y, 0.0, 0.2);
}

TEST(MotionPredict, TurningPathCurves)
{
    ObjectList tracked;
    DetectedObject obj;
    obj.position = {0, 0};
    obj.yaw = 0.0;
    obj.hasVelocity = true;
    obj.velocity = {10, 0};
    obj.yawRate = 0.5;
    tracked.objects.push_back(obj);
    const ObjectList out = predictMotion(tracked, PredictConfig());
    const auto &path = out.objects[0].predictedPath;
    ASSERT_FALSE(path.empty());
    EXPECT_GT(path.back().y, 5.0); // turned left
}

TEST(MotionPredict, NoVelocityNoPath)
{
    ObjectList tracked;
    DetectedObject obj;
    obj.hasVelocity = false;
    tracked.objects.push_back(obj);
    const ObjectList out = predictMotion(tracked, PredictConfig());
    EXPECT_TRUE(out.objects[0].predictedPath.empty());
}

TEST(Costmap, ObjectFootprintMarked)
{
    ObjectList objects;
    DetectedObject obj;
    obj.position = {5, 0};
    obj.length = 4.0;
    obj.width = 2.0;
    obj.yaw = 0.0;
    objects.objects.push_back(obj);

    const Costmap map = generateObjectCostmap(
        objects, geom::Pose2{}, CostmapConfig());
    ASSERT_GT(map.cellsX, 0u);
    // Cell at the object's center must be occupied.
    const auto cx = static_cast<std::uint32_t>(
        (5.0 - map.origin.x) / map.resolution);
    const auto cy = static_cast<std::uint32_t>(
        (0.0 - map.origin.y) / map.resolution);
    EXPECT_GT(map.at(cx, cy), 0.9f);
    // A far empty corner is free.
    EXPECT_FLOAT_EQ(map.at(5, 5), 0.0f);
}

TEST(Costmap, PredictedPathMarkedAtLowerCost)
{
    ObjectList objects;
    DetectedObject obj;
    obj.position = {-10, -10};
    obj.length = 1.0;
    obj.width = 1.0;
    obj.predictedPath = {{5, 5}};
    objects.objects.push_back(obj);
    const Costmap map = generateObjectCostmap(
        objects, geom::Pose2{}, CostmapConfig());
    const auto cx = static_cast<std::uint32_t>(
        (5.0 - map.origin.x) / map.resolution);
    const auto cy = static_cast<std::uint32_t>(
        (5.0 - map.origin.y) / map.resolution);
    EXPECT_GT(map.at(cx, cy), 0.4f);
    EXPECT_LT(map.at(cx, cy), 0.9f);
}

TEST(Costmap, PointsLayerMarksReturns)
{
    pc::PointCloud no_ground;
    no_ground.push_back(pc::Point::fromVec({8, 3, 1.0}));
    const geom::Pose2 ego{{100, 50}, 0.0};
    const Costmap map =
        generatePointsCostmap(no_ground, ego, CostmapConfig());
    const auto cx = static_cast<std::uint32_t>(
        (108.0 - map.origin.x) / map.resolution);
    const auto cy = static_cast<std::uint32_t>(
        (53.0 - map.origin.y) / map.resolution);
    EXPECT_GT(map.at(cx, cy), 0.9f);
}

TEST(Costmap, OverheadStructuresIgnored)
{
    pc::PointCloud no_ground;
    no_ground.push_back(pc::Point::fromVec({8, 3, 4.0})); // bridge
    const Costmap map = generatePointsCostmap(
        no_ground, geom::Pose2{}, CostmapConfig());
    for (float c : map.cost)
        EXPECT_FLOAT_EQ(c, 0.0f);
}

} // namespace
