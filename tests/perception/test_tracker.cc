/**
 * @file
 * Unit tests for the IMM-UKF-PDA tracker: track lifecycle, velocity
 * estimation, IMM mode adaptation, identity persistence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "perception/imm_ukf_pda.hh"
#include "util/random.hh"

namespace {

using namespace av;
using namespace av::perception;

ObjectList
measurementAt(const geom::Vec2 &pos, util::Rng *rng = nullptr)
{
    ObjectList list;
    DetectedObject obj;
    obj.position = pos;
    if (rng) {
        obj.position.x += rng->gaussian(0.0, 0.1);
        obj.position.y += rng->gaussian(0.0, 0.1);
    }
    obj.label = Label::Car;
    obj.length = 4.4;
    obj.width = 1.8;
    list.objects.push_back(obj);
    return list;
}

TEST(Tracker, ConfirmsPersistentObject)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(1);
    ObjectList out;
    for (int f = 0; f < 10; ++f) {
        out = tracker.update(
            measurementAt({10.0 + 0.5 * f, 5.0}, &rng),
            static_cast<sim::Tick>(f) * 100 * sim::oneMs);
    }
    EXPECT_EQ(tracker.confirmedCount(), 1u);
    ASSERT_EQ(out.objects.size(), 1u);
    EXPECT_EQ(out.objects[0].label, Label::Car);
    EXPECT_NEAR(out.objects[0].position.x, 14.5, 1.0);
}

TEST(Tracker, EstimatesVelocity)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(2);
    ObjectList out;
    // Object moving +x at 8 m/s, measured at 10 Hz.
    for (int f = 0; f < 30; ++f) {
        out = tracker.update(
            measurementAt({0.8 * f, 0.0}, &rng),
            static_cast<sim::Tick>(f) * 100 * sim::oneMs);
    }
    ASSERT_EQ(out.objects.size(), 1u);
    EXPECT_TRUE(out.objects[0].hasVelocity);
    EXPECT_NEAR(out.objects[0].velocity.x, 8.0, 1.5);
    EXPECT_NEAR(out.objects[0].velocity.y, 0.0, 1.0);
}

TEST(Tracker, KeepsIdentityAcrossFrames)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(3);
    std::uint32_t id = 0;
    for (int f = 0; f < 20; ++f) {
        const ObjectList out = tracker.update(
            measurementAt({5.0 + 0.3 * f, -2.0}, &rng),
            static_cast<sim::Tick>(f) * 100 * sim::oneMs);
        if (!out.objects.empty()) {
            if (id == 0)
                id = out.objects[0].id;
            EXPECT_EQ(out.objects[0].id, id);
        }
    }
    EXPECT_NE(id, 0u);
}

TEST(Tracker, DropsVanishedObject)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(4);
    for (int f = 0; f < 10; ++f) {
        tracker.update(measurementAt({10, 0}, &rng),
                       static_cast<sim::Tick>(f) * 100 *
                           sim::oneMs);
    }
    EXPECT_EQ(tracker.confirmedCount(), 1u);
    // Object disappears: empty measurement lists.
    for (int f = 10; f < 20; ++f) {
        tracker.update(ObjectList{},
                       static_cast<sim::Tick>(f) * 100 *
                           sim::oneMs);
    }
    EXPECT_EQ(tracker.confirmedCount(), 0u);
    EXPECT_TRUE(tracker.tracks().empty());
}

TEST(Tracker, TracksMultipleObjects)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(5);
    ObjectList out;
    for (int f = 0; f < 15; ++f) {
        ObjectList list;
        // Three well-separated objects.
        for (double y : {-20.0, 0.0, 20.0}) {
            DetectedObject obj;
            obj.position = {0.5 * f, y};
            obj.position.x += rng.gaussian(0.0, 0.08);
            list.objects.push_back(obj);
        }
        out = tracker.update(list, static_cast<sim::Tick>(f) * 100 *
                                       sim::oneMs);
    }
    EXPECT_EQ(tracker.confirmedCount(), 3u);
    EXPECT_EQ(out.objects.size(), 3u);
    // Distinct ids.
    EXPECT_NE(out.objects[0].id, out.objects[1].id);
    EXPECT_NE(out.objects[1].id, out.objects[2].id);
}

TEST(Tracker, SurvivesMissedDetections)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(6);
    for (int f = 0; f < 30; ++f) {
        // Miss every 4th frame (detector recall < 1).
        if (f % 4 == 3) {
            tracker.update(ObjectList{},
                           static_cast<sim::Tick>(f) * 100 *
                               sim::oneMs);
        } else {
            tracker.update(measurementAt({1.0 * f, 3.0}, &rng),
                           static_cast<sim::Tick>(f) * 100 *
                               sim::oneMs);
        }
    }
    EXPECT_EQ(tracker.confirmedCount(), 1u);
}

TEST(Tracker, ImmAdaptsToTurning)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(7);
    // Circle: radius 20 m, angular speed 0.4 rad/s, 10 Hz.
    ObjectList out;
    for (int f = 0; f < 60; ++f) {
        const double theta = 0.04 * f;
        out = tracker.update(
            measurementAt({20.0 * std::cos(theta),
                           20.0 * std::sin(theta)},
                          &rng),
            static_cast<sim::Tick>(f) * 100 * sim::oneMs);
    }
    ASSERT_EQ(out.objects.size(), 1u);
    // Yaw rate should be detected as nonzero (CTRV model engaged).
    EXPECT_GT(std::fabs(out.objects[0].yawRate), 0.1);
    // Speed ~ r * omega = 8 m/s.
    EXPECT_NEAR(out.objects[0].velocity.norm(), 8.0, 2.5);
}

TEST(Tracker, ClutterDoesNotStealTrack)
{
    ImmUkfPdaTracker tracker;
    util::Rng rng(8);
    std::uint32_t id = 0;
    for (int f = 0; f < 30; ++f) {
        ObjectList list = measurementAt({10.0 + 0.2 * f, 0}, &rng);
        // Random clutter far away.
        DetectedObject clutter;
        clutter.position = {rng.uniform(-50.0, 50.0),
                            rng.uniform(20.0, 60.0)};
        list.objects.push_back(clutter);
        const ObjectList out = tracker.update(
            list, static_cast<sim::Tick>(f) * 100 * sim::oneMs);
        for (const auto &o : out.objects) {
            if (std::fabs(o.position.y) < 5.0) {
                if (id == 0)
                    id = o.id;
                EXPECT_EQ(o.id, id);
            }
        }
    }
    EXPECT_NE(id, 0u);
}

} // namespace
