/**
 * @file
 * Focused NDT tests: convergence from perturbed guesses
 * (parameterized sweep), score landscape sanity, degenerate inputs.
 * Uses a synthetic structured environment (ground + walls + posts)
 * rather than the full world, so they run in milliseconds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "perception/ndt.hh"
#include "pointcloud/voxel_grid.hh"
#include "util/random.hh"

namespace {

using namespace av;
using namespace av::perception;

/** World-frame environment cloud: ground, two walls, four posts. */
pc::PointCloud
environment(std::uint64_t seed = 1)
{
    util::Rng rng(seed);
    pc::PointCloud cloud;
    // Ground disc.
    for (int i = 0; i < 20000; ++i) {
        const double r = rng.uniform(1.0, 45.0);
        const double a = rng.uniform(0.0, 2 * M_PI);
        cloud.push_back(pc::Point::fromVec(
            {r * std::cos(a), r * std::sin(a),
             rng.gaussian(0.0, 0.02)}));
    }
    // Walls along x at y = +-12 (with window gaps for longitudinal
    // structure).
    for (int i = 0; i < 12000; ++i) {
        const double x = rng.uniform(-40.0, 40.0);
        if (std::fmod(std::fabs(x), 11.0) < 2.0)
            continue; // gap
        const double y = rng.bernoulli(0.5) ? 12.0 : -12.0;
        cloud.push_back(pc::Point::fromVec(
            {x, y + rng.gaussian(0.0, 0.03),
             rng.uniform(0.0, 4.0)}));
    }
    // Posts (strong point landmarks).
    for (const double px : {-30.0, -10.0, 10.0, 30.0}) {
        for (int i = 0; i < 400; ++i) {
            cloud.push_back(pc::Point::fromVec(
                {px + rng.gaussian(0.0, 0.05),
                 5.0 + rng.gaussian(0.0, 0.05),
                 rng.uniform(0.0, 3.0)}));
        }
    }
    return cloud;
}

/** Vehicle-frame scan of the environment from @p pose. */
pc::PointCloud
scanFrom(const pc::PointCloud &env, const geom::Pose2 &pose,
         std::uint64_t seed)
{
    util::Rng rng(seed);
    pc::PointCloud scan;
    for (const auto &p : env.points) {
        const geom::Vec2 local = pose.toLocal({p.x, p.y});
        const double range = local.norm();
        if (range > 40.0 || !rng.bernoulli(0.35))
            continue;
        scan.push_back(pc::Point::fromVec(
            {local.x + rng.gaussian(0.0, 0.02),
             local.y + rng.gaussian(0.0, 0.02), p.z}));
    }
    return pc::voxelGridDownsample(scan, 1.0);
}

class NdtFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        env_ = new pc::PointCloud(environment());
        matcher_ = new NdtMatcher();
        matcher_->setMap(*env_);
    }

    static pc::PointCloud *env_;
    static NdtMatcher *matcher_;
};

pc::PointCloud *NdtFixture::env_ = nullptr;
NdtMatcher *NdtFixture::matcher_ = nullptr;

TEST_F(NdtFixture, MapBuilt)
{
    EXPECT_TRUE(matcher_->hasMap());
    EXPECT_GT(matcher_->mapVoxels(), 300u);
}

TEST_F(NdtFixture, ConvergesFromModestPerturbation)
{
    const geom::Pose2 truth{{3.0, -2.0}, 0.4};
    const auto scan = scanFrom(*env_, truth, 7);
    geom::Pose2 guess = truth;
    guess.p.x += 0.5;
    guess.p.y -= 0.4;
    guess.yaw += 0.04;
    // Two alignments, as consecutive frames would run (the
    // iteration budget per frame is capped at Autoware-like 8).
    NdtResult r = matcher_->align(scan, guess);
    r = matcher_->align(scan, r.pose);
    EXPECT_TRUE(r.converged);
    EXPECT_LT((r.pose.p - truth.p).norm(), 0.15);
    EXPECT_LT(std::fabs(geom::normalizeAngle(r.pose.yaw -
                                             truth.yaw)),
              0.015);
}

TEST_F(NdtFixture, ScoreHigherAtTruthThanFarAway)
{
    const geom::Pose2 truth{{0, 0}, 0.0};
    const auto scan = scanFrom(*env_, truth, 9);
    const double at_truth = matcher_->score(scan, truth);
    geom::Pose2 off = truth;
    off.p.x += 5.0;
    EXPECT_GT(at_truth, matcher_->score(scan, off) * 1.05);
    geom::Pose2 rotated = truth;
    rotated.yaw += 0.5;
    EXPECT_GT(at_truth, matcher_->score(scan, rotated) * 1.05);
}

TEST_F(NdtFixture, EmptyScanDoesNotCrash)
{
    const NdtResult r =
        matcher_->align(pc::PointCloud{}, geom::Pose2{});
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.matchedPoints, 0u);
}

TEST_F(NdtFixture, ScanOutsideMapDoesNotConverge)
{
    // A scan placed 500 m away finds no voxels: align must return
    // gracefully with zero matches.
    const geom::Pose2 truth{{0, 0}, 0.0};
    const auto scan = scanFrom(*env_, truth, 11);
    geom::Pose2 far;
    far.p = {500.0, 500.0};
    const NdtResult r = matcher_->align(scan, far);
    EXPECT_EQ(r.matchedPoints, 0u);
}

TEST(Ndt, AlignWithoutMapPanics)
{
    NdtMatcher empty;
    EXPECT_DEATH(empty.align(pc::PointCloud{}, geom::Pose2{}),
                 "without a map");
}

/** Sweep: convergence basin across perturbation magnitudes/angles. */
class NdtBasinTest
    : public NdtFixture,
      public ::testing::WithParamInterface<std::tuple<double, double>>
{};

TEST_P(NdtBasinTest, RecoversPose)
{
    const auto [offset, direction] = GetParam();
    const geom::Pose2 truth{{-5.0, 3.0}, 1.1};
    const auto scan = scanFrom(*env_, truth, 13);
    geom::Pose2 guess = truth;
    guess.p.x += offset * std::cos(direction);
    guess.p.y += offset * std::sin(direction);
    NdtResult r = matcher_->align(scan, guess);
    r = matcher_->align(scan, r.pose); // next frame
    EXPECT_LT((r.pose.p - truth.p).norm(), 0.25)
        << "offset " << offset << " dir " << direction;
}

INSTANTIATE_TEST_SUITE_P(
    Basin, NdtBasinTest,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(0.0, 1.57, 2.5, 4.0)));

} // namespace
