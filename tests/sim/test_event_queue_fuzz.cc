/**
 * @file
 * Randomized stress of the event queue: interleaved schedule /
 * deschedule / nested scheduling with invariant checks, plus a
 * voxel-grid property sweep (downsampling is monotone in leaf size
 * and idempotent at the same leaf).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pointcloud/voxel_grid.hh"
#include "sim/event_queue.hh"
#include "util/random.hh"

namespace {

using av::sim::EventId;
using av::sim::EventQueue;
using av::sim::Tick;

class EventQueueFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(EventQueueFuzz, OrderingAndCancellationInvariants)
{
    av::util::Rng rng(GetParam());
    EventQueue eq;
    std::vector<Tick> fired;
    std::vector<EventId> live;
    std::set<EventId> cancelled;

    // Phase 1: random schedule/deschedule churn.
    for (int op = 0; op < 3000; ++op) {
        const double roll = rng.uniform();
        if (roll < 0.70 || live.empty()) {
            const Tick when = static_cast<Tick>(
                rng.uniformInt(0, 1'000'000));
            live.push_back(eq.schedule(
                when, [&fired, &eq] { fired.push_back(eq.now()); }));
        } else {
            const auto idx = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<long>(live.size()) - 1));
            cancelled.insert(live[idx]);
            eq.deschedule(live[idx]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
    }
    const std::size_t expected = live.size();
    eq.runUntil();

    // Every non-cancelled event fired exactly once, in time order.
    EXPECT_EQ(fired.size(), expected);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
    EXPECT_TRUE(eq.empty());
}

TEST_P(EventQueueFuzz, NestedSchedulingFromCallbacks)
{
    av::util::Rng rng(GetParam() * 1000 + 1);
    EventQueue eq;
    int fired = 0;
    int budget = 500;
    std::function<void()> spawner = [&] {
        ++fired;
        if (budget-- > 0) {
            eq.scheduleAfter(
                static_cast<Tick>(rng.uniformInt(1, 100)), spawner);
            if (rng.bernoulli(0.3))
                eq.scheduleAfter(
                    static_cast<Tick>(rng.uniformInt(1, 100)),
                    spawner);
        }
    };
    eq.schedule(0, spawner);
    eq.runUntil();
    EXPECT_GT(fired, 500);
    EXPECT_TRUE(eq.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 7, 42, 1337));

/** Voxel downsample property sweep across leaf sizes. */
class VoxelLeafSweep : public ::testing::TestWithParam<double>
{};

TEST_P(VoxelLeafSweep, MonotoneAndIdempotent)
{
    av::util::Rng rng(3);
    av::pc::PointCloud cloud;
    for (int i = 0; i < 4000; ++i)
        cloud.push_back(av::pc::Point::fromVec(
            {rng.uniform(-30, 30), rng.uniform(-30, 30),
             rng.uniform(-2, 2)}));

    const double leaf = GetParam();
    const auto once = av::pc::voxelGridDownsample(cloud, leaf);
    EXPECT_LE(once.size(), cloud.size());
    EXPECT_GT(once.size(), 0u);

    // Coarser leaf -> no more points than a finer leaf.
    const auto coarser =
        av::pc::voxelGridDownsample(cloud, leaf * 2.0);
    EXPECT_LE(coarser.size(), once.size());

    // Downsampling the downsampled cloud at the same leaf changes
    // little: each voxel already holds one centroid (the centroid
    // can straddle a voxel edge, so allow a small tolerance).
    const auto twice = av::pc::voxelGridDownsample(once, leaf);
    EXPECT_GE(twice.size(),
              once.size() - once.size() / 10);
}

INSTANTIATE_TEST_SUITE_P(Leaves, VoxelLeafSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

} // namespace
