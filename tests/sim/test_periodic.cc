/**
 * @file
 * Unit tests for sim/periodic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic.hh"
#include "sim/ticks.hh"

namespace {

using av::sim::EventQueue;
using av::sim::oneMs;
using av::sim::PeriodicTask;
using av::sim::Tick;

TEST(PeriodicTask, FiresAtExactPeriods)
{
    EventQueue eq;
    std::vector<Tick> times;
    PeriodicTask task(eq, 100 * oneMs,
                      [&](std::uint64_t) { times.push_back(eq.now()); });
    task.start();
    eq.runUntil(350 * oneMs);
    ASSERT_EQ(times.size(), 4u); // t = 0, 100, 200, 300 ms
    EXPECT_EQ(times[0], 0u);
    EXPECT_EQ(times[3], 300 * oneMs);
    EXPECT_EQ(task.firedCount(), 4u);
}

TEST(PeriodicTask, PhaseOffset)
{
    EventQueue eq;
    std::vector<Tick> times;
    PeriodicTask task(eq, 100 * oneMs,
                      [&](std::uint64_t) { times.push_back(eq.now()); });
    task.start(30 * oneMs);
    eq.runUntil(250 * oneMs);
    ASSERT_EQ(times.size(), 3u); // 30, 130, 230
    EXPECT_EQ(times[0], 30 * oneMs);
    EXPECT_EQ(times[2], 230 * oneMs);
}

TEST(PeriodicTask, IndexIncrements)
{
    EventQueue eq;
    std::vector<std::uint64_t> indices;
    PeriodicTask task(eq, oneMs,
                      [&](std::uint64_t i) { indices.push_back(i); });
    task.start();
    eq.runUntil(3 * oneMs);
    EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(PeriodicTask, StopCancels)
{
    EventQueue eq;
    int fired = 0;
    PeriodicTask task(eq, oneMs, [&](std::uint64_t) { ++fired; });
    task.start();
    eq.runUntil(2 * oneMs);
    task.stop();
    eq.runUntil(10 * oneMs);
    EXPECT_EQ(fired, 3);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, CallbackMayStop)
{
    EventQueue eq;
    int fired = 0;
    PeriodicTask task(eq, oneMs, [&](std::uint64_t i) {
        ++fired;
        if (i == 1) {
            // stop() from inside the callback must cancel cleanly
        }
    });
    task.start();
    eq.runUntil(oneMs);
    task.stop();
    eq.runUntil(5 * oneMs);
    EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, JitterStaysBounded)
{
    EventQueue eq;
    std::vector<Tick> times;
    PeriodicTask task(eq, 100 * oneMs,
                      [&](std::uint64_t) { times.push_back(eq.now()); });
    task.start(0, 0.05, 7);
    eq.runUntil(5000 * oneMs);
    ASSERT_GT(times.size(), 10u);
    for (std::size_t i = 1; i < times.size(); ++i) {
        const double gap_ms =
            av::sim::ticksToMs(times[i] - times[i - 1]);
        EXPECT_GE(gap_ms, 95.0 - 1e-6);
        EXPECT_LE(gap_ms, 105.0 + 1e-6);
    }
}

TEST(PeriodicTask, DestructorCancels)
{
    EventQueue eq;
    int fired = 0;
    {
        PeriodicTask task(eq, oneMs, [&](std::uint64_t) { ++fired; });
        task.start();
        eq.runUntil(oneMs);
    }
    eq.runUntil(10 * oneMs);
    EXPECT_EQ(fired, 2);
}

} // namespace
