/**
 * @file
 * Unit tests for the discrete-event core: ordering, cancellation,
 * time semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using av::sim::EventQueue;
using av::sim::maxTick;
using av::sim::Tick;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoAtEqualTime)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, DescheduleSuppresses)
{
    EventQueue eq;
    bool fired = false;
    const auto id = eq.schedule(5, [&] { fired = true; });
    eq.deschedule(id);
    eq.runUntil();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleUnknownIsNoop)
{
    EventQueue eq;
    eq.deschedule(0);
    eq.deschedule(12345);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DoubleDescheduleKeepsLiveCountSane)
{
    EventQueue eq;
    const auto id = eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    eq.deschedule(id);
    eq.deschedule(id);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, EventsScheduledFromEvents)
{
    EventQueue eq;
    std::vector<Tick> fire_times;
    eq.schedule(10, [&] {
        fire_times.push_back(eq.now());
        eq.scheduleAfter(15, [&] { fire_times.push_back(eq.now()); });
    });
    eq.runUntil();
    EXPECT_EQ(fire_times, (std::vector<Tick>{10, 25}));
}

TEST(EventQueue, RunUntilLimitInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(101, [&] { ++fired; });
    eq.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    eq.runUntil(101);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClockAdvancesToHorizon)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
    // Scheduling earlier than the horizon is the past and must die.
    EXPECT_DEATH(eq.schedule(400, [] {}), "past");
}

TEST(EventQueue, NextEventTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), maxTick);
    const auto a = eq.schedule(50, [] {});
    eq.schedule(70, [] {});
    EXPECT_EQ(eq.nextEventTick(), 50u);
    eq.deschedule(a);
    EXPECT_EQ(eq.nextEventTick(), 70u);
}

TEST(EventQueue, StepOneAtATime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executedEvents(), 2u);
}

TEST(EventQueue, ManyEventsStress)
{
    EventQueue eq;
    std::uint64_t sum = 0;
    for (Tick t = 1; t <= 10000; ++t)
        eq.schedule(t, [&sum, t] { sum += t; });
    const auto ran = eq.runUntil();
    EXPECT_EQ(ran, 10000u);
    EXPECT_EQ(sum, 10000ull * 10001ull / 2ull);
}

} // namespace
