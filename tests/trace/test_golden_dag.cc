/**
 * @file
 * End-to-end trace validation on a real fixed-seed drive:
 *
 *  1. Golden canonical-DAG snapshot — the traced drive's structural
 *     DAG (sink, critical-path node sequence, bottleneck classes,
 *     edge set) must match tests/trace/golden_dag.txt, the dynamic
 *     counterpart of avgraph's golden_topology.txt. Timing
 *     calibrations may drift; the traced structure may not.
 *     Regenerate after an intentional change with:
 *       AVSCOPE_WRITE_GOLDEN=1 ./avscope_tests \
 *           --gtest_filter='TraceGolden.*'
 *  2. Static cross-validation — every edge the trace observed at
 *     runtime must project onto the avgraph static topology: the
 *     topic exists, the subscriber has a static subscribe site, and
 *     the publisher (when not the external bag) a static advertise
 *     site. The trace cannot invent communication the source does
 *     not declare.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "avgraph.hh"
#include "core/characterization.hh"
#include "trace/dag.hh"

namespace {

using namespace av;

/** One traced 2 s fixed-seed drive, shared by both tests. */
const trace::Summary &
tracedDrive()
{
    static const trace::Summary summary = [] {
        world::ScenarioConfig scenario;
        scenario.seed = 2020;
        const auto drive =
            prof::makeDrive(scenario, 2 * sim::oneSec);
        prof::RunConfig config;
        config.trace = true;
        prof::CharacterizationRun run(drive, config);
        run.execute();
        return run.traceSummary();
    }();
    return summary;
}

TEST(TraceGolden, CanonicalDagMatchesGoldenSnapshot)
{
    const std::string actual = trace::canonicalDag(tracedDrive());
    ASSERT_FALSE(actual.empty());

    const std::string path =
        std::string(AVSCOPE_SOURCE_DIR) +
        "/tests/trace/golden_dag.txt";
    if (std::getenv("AVSCOPE_WRITE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "golden snapshot regenerated: " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden_dag.txt fixture";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), actual)
        << "traced DAG structure changed; if intentional, "
           "regenerate with AVSCOPE_WRITE_GOLDEN=1";
}

TEST(TraceGolden, TracedEdgesProjectOntoStaticTopology)
{
    const trace::Summary &summary = tracedDrive();
    ASSERT_FALSE(summary.edges.empty());

    const graph::StaticGraph g =
        graph::extractTree(AVSCOPE_SOURCE_DIR);
    ASSERT_FALSE(g.topics.empty());

    for (const trace::EdgeUse &edge : summary.edges) {
        const auto entry = g.topics.find(edge.topic);
        ASSERT_NE(entry, g.topics.end())
            << "traced topic " << edge.topic
            << " missing from the static graph";

        bool subscribed = false;
        for (const graph::SubSite &sub : entry->second.subs)
            subscribed |= sub.node == edge.to;
        EXPECT_TRUE(subscribed)
            << "traced edge " << edge.topic << " -> " << edge.to
            << " has no static subscribe site";

        if (edge.from == trace::kExternalPublisher) {
            // Externally-fed topics must be declared bag channels
            // (or probe injections), never silent.
            EXPECT_FALSE(entry->second.externals.empty() &&
                         !entry->second.pubs.empty())
                << "topic " << edge.topic
                << " traced as external but statically advertised "
                   "only by nodes";
            continue;
        }
        bool advertised = false;
        for (const graph::PubSite &pub : entry->second.pubs)
            advertised |= pub.node == edge.from;
        EXPECT_TRUE(advertised)
            << "traced publisher " << edge.from << " of "
            << edge.topic << " has no static advertise site";
    }
}

} // namespace
