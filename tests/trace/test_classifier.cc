/**
 * @file
 * Bottleneck-classifier unit tests: one synthetic event stream per
 * class (queue / contention / gpu / cpu / idle), the ordered-rule
 * precedence, hardware-owner attribution (including the costmap's
 * suffixed callback owners) and threshold overrides.
 */

#include <gtest/gtest.h>

#include "trace/dag.hh"

namespace {

using namespace av;
using sim::oneMs;

/**
 * Record one activation of @p node with the given shape: trigger
 * arrives at 0, dispatch after @p wait_ms, done @p span_ms later;
 * optional nominal CPU time and one GPU kernel inside the span.
 */
void
addActivation(trace::Recorder &rec, const std::string &node,
              double wait_ms, double span_ms, double cpu_ms = 0.0,
              double gpu_ms = 0.0)
{
    const trace::Id n = rec.intern(node);
    const trace::Id topic = rec.intern("/in_" + node);
    const sim::Tick start = sim::msToTicks(wait_ms);
    const sim::Tick end = start + sim::msToTicks(span_ms);
    trace::Span span = rec.beginActivation(n, topic, 1, 0, start);
    if (cpu_ms > 0.0)
        rec.recordCpuTask(n, start, end, cpu_ms * 1e6);
    if (gpu_ms > 0.0)
        rec.recordGpuKernel(n, start,
                            start + sim::msToTicks(gpu_ms));
    span.end(end);
}

std::string
classOf(const trace::Summary &s, const std::string &node)
{
    const trace::NodeSlack *row = s.findNode(node);
    return row ? row->bottleneck : "<missing>";
}

TEST(TraceClassifier, OneClassPerRule)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    // queue-bound: waits longer for dispatch than it executes.
    addActivation(rec, "queued", 20.0, 10.0, 8.0);
    // contention-bound: span 10 ms but only 4 ms of its own work.
    addActivation(rec, "contended", 0.0, 10.0, 2.0, 2.0);
    // gpu-bound: kernel time dominates nominal CPU time.
    addActivation(rec, "gpu_heavy", 0.0, 10.0, 3.0, 5.0);
    // cpu-bound: the default for a node doing its own CPU work.
    addActivation(rec, "cpu_heavy", 0.0, 10.0, 8.0);
    // idle: delivered to, never activated.
    rec.recordDeliver(rec.intern("/in_idle"), rec.intern("idle"), 1,
                      oneMs);

    const trace::Summary s = trace::analyze(rec);
    EXPECT_EQ(classOf(s, "queued"), "queue");
    EXPECT_EQ(classOf(s, "contended"), "contention");
    EXPECT_EQ(classOf(s, "gpu_heavy"), "gpu");
    EXPECT_EQ(classOf(s, "cpu_heavy"), "cpu");
    EXPECT_EQ(classOf(s, "idle"), "idle");
}

TEST(TraceClassifier, QueueRuleFiresBeforeContentionAndGpu)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    // Queue-bound AND stalled AND gpu-heavy: the ordered rules must
    // label it by the first firing rule — queue.
    addActivation(rec, "worst_of_all", 25.0, 10.0, 1.0, 2.0);
    const trace::Summary s = trace::analyze(rec);
    EXPECT_EQ(classOf(s, "worst_of_all"), "queue");
}

TEST(TraceClassifier, ThresholdOverridesChangeTheVerdict)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    addActivation(rec, "queued", 20.0, 10.0, 8.0);

    // Default rules: waiting 2x its span makes it queue-bound.
    EXPECT_EQ(classOf(trace::analyze(rec), "queued"), "queue");

    // With a 3x tolerance the same node reads as cpu-bound.
    trace::ClassifierRules lax;
    lax.queueBoundRatio = 3.0;
    EXPECT_EQ(classOf(trace::analyze(rec, lax), "queued"), "cpu");

    // And with a zero contention tolerance its 2 ms stall fires the
    // contention rule instead (queue rule still suppressed).
    lax.contentionStallFraction = 0.1;
    EXPECT_EQ(classOf(trace::analyze(rec, lax), "queued"),
              "contention");
}

TEST(TraceClassifier, HardwareOwnersMapOntoSuffixedNodes)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    // The costmap node's two callbacks account hardware work under
    // suffixed owners; both must fold into the node's row.
    addActivation(rec, "costmap_generator", 0.0, 10.0);
    const trace::Id owner_obj = rec.intern("costmap_generator_obj");
    const trace::Id owner_pts =
        rec.intern("costmap_generator_points");
    rec.recordCpuTask(owner_obj, 0, 5 * oneMs, 3e6);
    rec.recordCpuTask(owner_pts, 0, 5 * oneMs, 4e6);
    // Not at an underscore boundary: must NOT be attributed.
    rec.recordCpuTask(rec.intern("costmap_generatorx"), 0, oneMs,
                      50e6);
    // Unknown owner entirely: silently dropped.
    rec.recordCpuTask(rec.intern("someone_else"), 0, oneMs, 50e6);

    const trace::Summary s = trace::analyze(rec);
    const trace::NodeSlack *row = s.findNode("costmap_generator");
    ASSERT_NE(row, nullptr);
    EXPECT_DOUBLE_EQ(row->meanCpuMs, 7.0);
    EXPECT_EQ(row->bottleneck, "cpu");
}

TEST(TraceClassifier, MeansAverageOverActivations)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    // Two activations, 10 ms and 20 ms spans with 2 ms and 4 ms
    // waits: the row must carry the per-activation means.
    const trace::Id n = rec.intern("node");
    const trace::Id t = rec.intern("/in");
    trace::Span s1 = rec.beginActivation(n, t, 1, 0, 2 * oneMs);
    s1.end(12 * oneMs);
    trace::Span s2 = rec.beginActivation(n, t, 2, 20 * oneMs,
                                         24 * oneMs);
    s2.end(44 * oneMs);

    const trace::Summary s = trace::analyze(rec);
    const trace::NodeSlack *row = s.findNode("node");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->activations, 2u);
    EXPECT_DOUBLE_EQ(row->meanQueueWaitMs, 3.0);
    EXPECT_DOUBLE_EQ(row->meanSpanMs, 15.0);
}

} // namespace
