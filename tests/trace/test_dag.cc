/**
 * @file
 * DAG analysis on hand-built event streams: critical-path
 * reconstruction (queue wait vs compute split per step), sink
 * selection, traced edges, idle nodes and the canonical rendering.
 */

#include <gtest/gtest.h>

#include "trace/dag.hh"

namespace {

using namespace av;
using sim::oneMs;

/**
 * A two-stage pipeline with a bystander:
 *
 *   /sensor (external, camera origin 10 ms)
 *     -> A (arrives 12, dispatched 15, done 25; 9 ms nominal CPU)
 *     -> /mid (published 25)
 *     -> B (arrives 26, dispatched 30, done 40; 6 ms GPU kernel)
 *     -> /out (published 40, never delivered: the sink)
 *   /sensor is also delivered to C, which never activates (idle).
 */
void
pipelineStream(trace::Recorder &rec)
{
    rec.setEnabled(true);
    const trace::Id sensor = rec.intern("/sensor");
    const trace::Id mid = rec.intern("/mid");
    const trace::Id out = rec.intern("/out");
    const trace::Id a = rec.intern("A");
    const trace::Id b = rec.intern("B");
    const trace::Id c = rec.intern("C");

    rec.recordPublish(sensor, 0, 5, 10 * oneMs, 0, 10 * oneMs,
                      10 * oneMs);
    rec.recordDeliver(sensor, a, 5, 12 * oneMs);
    rec.recordDeliver(sensor, c, 5, 12 * oneMs);

    trace::Span actA = rec.beginActivation(a, sensor, 5, 12 * oneMs,
                                           15 * oneMs);
    rec.recordCpuTask(a, 15 * oneMs, 24 * oneMs, 9e6);
    rec.recordPublish(mid, a, 5, 25 * oneMs, 0, 10 * oneMs,
                      25 * oneMs);
    actA.end(25 * oneMs);

    rec.recordDeliver(mid, b, 5, 26 * oneMs);
    trace::Span actB = rec.beginActivation(b, mid, 5, 26 * oneMs,
                                           30 * oneMs);
    rec.recordGpuKernel(b, 30 * oneMs, 36 * oneMs);
    rec.recordPublish(out, b, 5, 40 * oneMs, 0, 10 * oneMs,
                      40 * oneMs);
    actB.end(40 * oneMs);
}

TEST(TraceDag, CriticalPathWalksBackToTheExternalSource)
{
    trace::Recorder rec;
    pipelineStream(rec);
    const trace::Summary s = trace::analyze(rec);

    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.terminalTopic, "/out");
    EXPECT_DOUBLE_EQ(s.criticalPathMs, 30.0); // publish 40 − origin 10

    ASSERT_EQ(s.criticalPath.size(), 2u);
    EXPECT_EQ(s.criticalPath[0].node, "A");
    EXPECT_EQ(s.criticalPath[0].topic, "/sensor");
    EXPECT_EQ(s.criticalPath[0].seq, 5u);
    EXPECT_DOUBLE_EQ(s.criticalPath[0].queueWaitMs, 3.0); // 15 − 12
    EXPECT_DOUBLE_EQ(s.criticalPath[0].computeMs, 10.0);  // 25 − 15
    EXPECT_EQ(s.criticalPath[1].node, "B");
    EXPECT_EQ(s.criticalPath[1].topic, "/mid");
    EXPECT_DOUBLE_EQ(s.criticalPath[1].queueWaitMs, 4.0); // 30 − 26
    EXPECT_DOUBLE_EQ(s.criticalPath[1].computeMs, 10.0);  // 40 − 30
}

TEST(TraceDag, SlackRowsSplitWaitComputeAndHardwareShares)
{
    trace::Recorder rec;
    pipelineStream(rec);
    const trace::Summary s = trace::analyze(rec);

    const trace::NodeSlack *a = s.findNode("A");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->activations, 1u);
    EXPECT_DOUBLE_EQ(a->meanQueueWaitMs, 3.0);
    EXPECT_DOUBLE_EQ(a->meanSpanMs, 10.0);
    EXPECT_DOUBLE_EQ(a->meanCpuMs, 9.0);
    EXPECT_DOUBLE_EQ(a->meanGpuMs, 0.0);
    EXPECT_DOUBLE_EQ(a->meanStallMs, 1.0);
    EXPECT_EQ(a->bottleneck, "cpu");

    const trace::NodeSlack *b = s.findNode("B");
    ASSERT_NE(b, nullptr);
    EXPECT_DOUBLE_EQ(b->meanGpuMs, 6.0);
    EXPECT_EQ(b->bottleneck, "gpu");

    // C received a delivery but never ran: idle, zero everything.
    const trace::NodeSlack *c = s.findNode("C");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->activations, 0u);
    EXPECT_EQ(c->bottleneck, "idle");

    EXPECT_EQ(s.findNode("unknown"), nullptr);
}

TEST(TraceDag, EdgesCarryPublisherAttributionAndCounts)
{
    trace::Recorder rec;
    pipelineStream(rec);
    const trace::Summary s = trace::analyze(rec);

    ASSERT_EQ(s.edges.size(), 3u);
    // Sorted by (topic, from, to).
    EXPECT_EQ(s.edges[0].topic, "/mid");
    EXPECT_EQ(s.edges[0].from, "A");
    EXPECT_EQ(s.edges[0].to, "B");
    EXPECT_EQ(s.edges[0].messages, 1u);
    EXPECT_EQ(s.edges[1].topic, "/sensor");
    EXPECT_EQ(s.edges[1].from, trace::kExternalPublisher);
    EXPECT_EQ(s.edges[1].to, "A");
    EXPECT_EQ(s.edges[2].to, "C");
}

TEST(TraceDag, CanonicalRenderingIsStructuralAndStable)
{
    trace::Recorder rec;
    pipelineStream(rec);
    const std::string text = trace::canonicalDag(trace::analyze(rec));
    EXPECT_EQ(text, "dag v1\n"
                    "sink /out\n"
                    "steps 2\n"
                    "step A /sensor\n"
                    "step B /mid\n"
                    "nodes 3\n"
                    "node A cpu\n"
                    "node B gpu\n"
                    "node C idle\n"
                    "edges 3\n"
                    "edge /mid A B\n"
                    "edge /sensor (external) A\n"
                    "edge /sensor (external) C\n");
}

TEST(TraceDag, EmptyStreamYieldsEmptyEnabledSummary)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    const trace::Summary s = trace::analyze(rec);
    EXPECT_TRUE(s.enabled);
    EXPECT_EQ(s.events, 0u);
    EXPECT_EQ(s.terminalTopic, "");
    EXPECT_DOUBLE_EQ(s.criticalPathMs, 0.0);
    EXPECT_TRUE(s.criticalPath.empty());
    EXPECT_TRUE(s.nodes.empty());
    EXPECT_TRUE(s.edges.empty());
    EXPECT_EQ(trace::canonicalDag(s), "dag v1\nsink -\nsteps 0\n"
                                      "nodes 0\nedges 0\n");
}

TEST(TraceDag, WorstFrameTiesResolveToTheEarliestPublication)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    const trace::Id s1 = rec.intern("/sink_b");
    const trace::Id s2 = rec.intern("/sink_a");
    // Same 5 ms end-to-end latency at both sinks; the canonical
    // order puts /sink_a's publication first at the shared tick, so
    // the tie must resolve to it.
    rec.recordPublish(s1, 0, 1, 0, 5 * oneMs, 0, 10 * oneMs);
    rec.recordPublish(s2, 0, 1, 0, 5 * oneMs, 0, 10 * oneMs);
    const trace::Summary sum = trace::analyze(rec);
    EXPECT_EQ(sum.terminalTopic, "/sink_a");
    EXPECT_DOUBLE_EQ(sum.criticalPathMs, 5.0);
}

} // namespace
