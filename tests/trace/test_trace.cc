/**
 * @file
 * Recorder unit tests: interning, the two retention tiers (publish
 * log always on, event stream only when enabled), Span RAII
 * semantics and the byte-stable canonical event order.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace {

using namespace av;
using sim::oneMs;

TEST(TraceRecorder, InternSharesIdsAndZeroIsEmpty)
{
    trace::Recorder rec;
    EXPECT_EQ(rec.name(0), "");
    const trace::Id a = rec.intern("/points_raw");
    const trace::Id b = rec.intern("/image_raw");
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(rec.intern("/points_raw"), a);
    EXPECT_EQ(rec.name(a), "/points_raw");
    EXPECT_EQ(rec.name(b), "/image_raw");
}

TEST(TraceRecorder, PublishLogAlwaysOnEventStreamGated)
{
    trace::Recorder rec;
    ASSERT_FALSE(rec.enabled());
    const trace::Id topic = rec.intern("/t");

    rec.recordPublish(topic, 0, 7, 10 * oneMs, 0, 10 * oneMs,
                      12 * oneMs);
    rec.recordDeliver(topic, rec.intern("n"), 7, 13 * oneMs);

    // Tier 1: the publish log recorded even though tracing is off.
    const auto *log = rec.publishLog(topic);
    ASSERT_NE(log, nullptr);
    ASSERT_EQ(log->size(), 1u);
    EXPECT_EQ(log->front().tick, 12 * oneMs);
    EXPECT_EQ(log->front().stamp, 10 * oneMs);
    EXPECT_EQ(log->front().seq, 7u);
    // Tier 2: no events retained.
    EXPECT_EQ(rec.eventCount(), 0u);

    rec.setEnabled(true);
    rec.recordPublish(topic, 0, 8, 20 * oneMs, 0, 20 * oneMs,
                      22 * oneMs);
    EXPECT_EQ(rec.eventCount(), 1u);
    EXPECT_EQ(rec.publishLog(topic)->size(), 2u);
}

TEST(TraceRecorder, PublishLogByNameAndLastPublish)
{
    trace::Recorder rec;
    const trace::Id topic = rec.intern("/t");
    EXPECT_EQ(rec.publishLog("/t"), nullptr);
    EXPECT_EQ(rec.lastPublish("/t"), nullptr);
    EXPECT_EQ(rec.publishLog("/unknown"), nullptr);

    rec.recordPublish(topic, 0, 1, oneMs, oneMs, 0, 2 * oneMs);
    rec.recordPublish(topic, 0, 2, 5 * oneMs, 5 * oneMs, 0,
                      6 * oneMs);
    ASSERT_NE(rec.publishLog("/t"), nullptr);
    EXPECT_EQ(rec.publishLog("/t"), rec.publishLog(topic));
    ASSERT_NE(rec.lastPublish("/t"), nullptr);
    EXPECT_EQ(rec.lastPublish("/t")->seq, 2u);
    EXPECT_EQ(rec.lastPublish("/t")->stamp, 5 * oneMs);
}

TEST(TraceSpan, RaiiClosesAnOpenSpanZeroLength)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    const trace::Id node = rec.intern("n");
    const trace::Id topic = rec.intern("/t");
    {
        trace::Span span = rec.beginActivation(node, topic, 3,
                                               oneMs, 2 * oneMs);
        EXPECT_TRUE(span.open());
        // Destroyed without end(): the span must close zero-length
        // at its begin tick rather than corrupt the stream.
    }
    const auto events = rec.canonicalEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, trace::EventKind::Activation);
    EXPECT_EQ(events[0].start, 2 * oneMs);
    EXPECT_EQ(events[0].end, 2 * oneMs);
    EXPECT_EQ(events[0].arrival, oneMs);
}

TEST(TraceSpan, EndIsIdempotent)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    trace::Span span = rec.beginActivation(
        rec.intern("n"), rec.intern("/t"), 1, 0, oneMs);
    span.end(4 * oneMs);
    EXPECT_FALSE(span.open());
    span.end(9 * oneMs); // ignored
    const auto events = rec.canonicalEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].end, 4 * oneMs);
}

TEST(TraceSpan, DisabledRecorderHandsOutInertSpans)
{
    trace::Recorder rec;
    trace::Span span = rec.beginActivation(
        rec.intern("n"), rec.intern("/t"), 1, 0, oneMs);
    EXPECT_FALSE(span.open());
    span.end(2 * oneMs);
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, CanonicalOrderSortsByTickTopicNameSeqKindNode)
{
    trace::Recorder rec;
    rec.setEnabled(true);
    // Intern so that id order disagrees with name order: canonical
    // order must follow the *names*, which are stable across runs,
    // not the ids, which depend on interning order.
    const trace::Id zz = rec.intern("/zz");
    const trace::Id aa = rec.intern("/aa");
    const trace::Id node = rec.intern("n");

    rec.recordPublish(zz, 0, 1, 0, oneMs, 0, 5 * oneMs);
    rec.recordPublish(aa, 0, 2, 0, oneMs, 0, 5 * oneMs);
    rec.recordPublish(aa, 0, 1, 0, oneMs, 0, 5 * oneMs);
    rec.recordDeliver(aa, node, 1, 5 * oneMs);
    rec.recordPublish(aa, 0, 1, 0, oneMs, 0, 2 * oneMs);

    const auto events = rec.canonicalEvents();
    ASSERT_EQ(events.size(), 5u);
    // tick 2ms first.
    EXPECT_EQ(events[0].tick, 2 * oneMs);
    // Then tick 5ms sorted by topic name: /aa seq1 publish, /aa seq1
    // deliver (Publish kind < Deliver kind), /aa seq2, /zz.
    EXPECT_EQ(events[1].topic, aa);
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[1].kind, trace::EventKind::Publish);
    EXPECT_EQ(events[2].kind, trace::EventKind::Deliver);
    EXPECT_EQ(events[2].seq, 1u);
    EXPECT_EQ(events[3].topic, aa);
    EXPECT_EQ(events[3].seq, 2u);
    EXPECT_EQ(events[4].topic, zz);
}

} // namespace
