/**
 * @file
 * BenchOptions tests: typed parsing, the fluent declaration API and
 * — the reason the parser throws instead of aborting — the
 * diagnostics for unknown flags, missing values and type mismatches.
 */

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "options.hh"

namespace {

using av::bench::BenchOptions;
using av::bench::commonOptions;

/** Parse the given argv words against @p options. */
BenchOptions &
parse(BenchOptions &options, std::vector<std::string> args)
{
    args.insert(args.begin(), "bench");
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return options.parse(static_cast<int>(argv.size()),
                         argv.data());
}

/** The what() of the std::invalid_argument @p thunk must throw. */
template <typename Thunk>
std::string
diagnostic(Thunk thunk)
{
    try {
        thunk();
    } catch (const std::invalid_argument &error) {
        return error.what();
    }
    ADD_FAILURE() << "expected std::invalid_argument";
    return "";
}

TEST(BenchOptions, TypedValuesAndDefaults)
{
    BenchOptions opts = commonOptions();
    parse(opts, {"--duration", "8", "--csv", "--jobs=3",
                 "--transport", "copy", "positional"});

    EXPECT_EQ(opts.integer("duration"), 8);
    EXPECT_TRUE(opts.flag("csv"));
    EXPECT_EQ(opts.integer("jobs"), 3);
    EXPECT_EQ(opts.text("transport"), "copy");
    // Untouched options keep their declared fallbacks.
    EXPECT_EQ(opts.integer("seed"), 2020);
    EXPECT_FALSE(opts.flag("no-cache"));
    EXPECT_FALSE(opts.flag("trace"));
    // given() distinguishes explicit from default.
    EXPECT_TRUE(opts.given("duration"));
    EXPECT_FALSE(opts.given("seed"));
    ASSERT_EQ(opts.positional().size(), 1u);
    EXPECT_EQ(opts.positional()[0], "positional");
}

TEST(BenchOptions, FluentExtrasChainOntoTheCommonSet)
{
    BenchOptions opts = commonOptions()
                            .text("json", "out.json", "output path")
                            .flag("smoke", "short run")
                            .real("scale", 1.5, "work scale");
    parse(opts, {"--smoke", "--scale", "0.25"});
    EXPECT_EQ(opts.text("json"), "out.json");
    EXPECT_TRUE(opts.flag("smoke"));
    EXPECT_DOUBLE_EQ(opts.real("scale"), 0.25);
}

TEST(BenchOptions, ExplicitBooleanValuesParse)
{
    BenchOptions opts = commonOptions();
    parse(opts, {"--csv=false", "--no-cache=yes"});
    EXPECT_FALSE(opts.flag("csv"));
    EXPECT_TRUE(opts.flag("no-cache"));
}

TEST(BenchOptions, UnknownFlagDiagnosticNamesFlagAndUsage)
{
    const std::string what = diagnostic([] {
        BenchOptions opts = commonOptions();
        parse(opts, {"--bogus", "1"});
    });
    EXPECT_NE(what.find("unknown flag --bogus"), std::string::npos);
    // The usage text rides along so a typo shows the real flags.
    EXPECT_NE(what.find("--duration"), std::string::npos);
    EXPECT_NE(what.find("--transport"), std::string::npos);
}

TEST(BenchOptions, TypeMismatchDiagnosticNamesTheValue)
{
    const std::string what = diagnostic([] {
        BenchOptions opts = commonOptions();
        parse(opts, {"--jobs", "many"});
    });
    EXPECT_NE(what.find("--jobs"), std::string::npos);
    EXPECT_NE(what.find("expects an integer"), std::string::npos);
    EXPECT_NE(what.find("'many'"), std::string::npos);

    const std::string real_what = diagnostic([] {
        BenchOptions opts =
            BenchOptions().real("scale", 1.0, "work scale");
        parse(opts, {"--scale=big"});
    });
    EXPECT_NE(real_what.find("expects a number"),
              std::string::npos);
}

TEST(BenchOptions, MissingValueDiagnostic)
{
    const std::string what = diagnostic([] {
        BenchOptions opts = commonOptions();
        parse(opts, {"--duration"});
    });
    EXPECT_NE(what.find("--duration requires a"),
              std::string::npos);

    // A following flag does not count as the missing value.
    const std::string chained = diagnostic([] {
        BenchOptions opts = commonOptions();
        parse(opts, {"--duration", "--csv"});
    });
    EXPECT_NE(chained.find("--duration requires a"),
              std::string::npos);
}

TEST(BenchOptions, BadBooleanValueDiagnostic)
{
    const std::string what = diagnostic([] {
        BenchOptions opts = commonOptions();
        parse(opts, {"--csv=maybe"});
    });
    EXPECT_NE(what.find("--csv expects true/false"),
              std::string::npos);
}

TEST(BenchOptions, UsageListsEveryDeclaredOption)
{
    const std::string usage = commonOptions().usage();
    for (const char *flag :
         {"--duration", "--seed", "--csv", "--jobs", "--cache-dir",
          "--no-cache", "--transport", "--trace"})
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

} // namespace
