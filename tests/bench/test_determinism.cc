/**
 * @file
 * Runtime determinism smoke test: the contract avlint enforces
 * statically, exercised end to end. Two in-process runs of the
 * findings_summary report over the same scenario config must produce
 * byte-identical output — any wall-clock read, unseeded RNG draw or
 * hash-order dependence in the replay pipeline shows up here as a
 * diff.
 */

#include <array>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "findings.hh"

namespace {

TEST(Determinism, FindingsReportByteIdenticalAcrossRuns)
{
    std::array<std::string, 3> args = {"determinism_test",
                                       "--duration", "8"};
    std::array<char *, 3> argv = {args[0].data(), args[1].data(),
                                  args[2].data()};
    const av::bench::BenchEnv env(
        static_cast<int>(argv.size()), argv.data());

    std::ostringstream first, second;
    av::bench::runFindingsSummary(env, first);
    av::bench::runFindingsSummary(env, second);

    ASSERT_FALSE(first.str().empty());
    EXPECT_EQ(first.str(), second.str());
    // The report must carry real content, not just headers.
    EXPECT_NE(first.str().find("findings reproduced"),
              std::string::npos);
}

} // namespace
