/**
 * @file
 * Runtime determinism smoke test: the contract avlint enforces
 * statically, exercised end to end. Two in-process runs of the
 * findings_summary report over the same scenario config must produce
 * byte-identical output — any wall-clock read, unseeded RNG draw or
 * hash-order dependence in the replay pipeline shows up here as a
 * diff. A second test re-renders the report with a different worker
 * count: the thread-parallel Runner must not change a single byte
 * versus --jobs 1 (the isolation contract of src/exp).
 *
 * Both tests pass --no-cache so every report comes from real
 * replays; cache-path determinism is covered by tests/exp.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "findings.hh"

namespace {

/** Render the findings report once under the given flags. */
std::string
render(std::vector<std::string> args)
{
    args.insert(args.begin(), "determinism_test");
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    av::bench::BenchEnv env(static_cast<int>(argv.size()),
                            argv.data());
    std::ostringstream os;
    av::bench::runFindingsSummary(env, os);
    return os.str();
}

TEST(Determinism, FindingsReportByteIdenticalAcrossRuns)
{
    const std::string first =
        render({"--duration", "8", "--no-cache"});
    const std::string second =
        render({"--duration", "8", "--no-cache"});

    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // The report must carry real content, not just headers.
    EXPECT_NE(first.find("findings reproduced"),
              std::string::npos);
}

TEST(Determinism, FindingsReportIndependentOfWorkerCount)
{
    const std::string serial =
        render({"--duration", "8", "--no-cache", "--jobs", "1"});
    const std::string parallel =
        render({"--duration", "8", "--no-cache", "--jobs", "3"});

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

} // namespace
