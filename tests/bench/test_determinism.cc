/**
 * @file
 * Runtime determinism smoke test: the contract avlint enforces
 * statically, exercised end to end. Two in-process runs of the
 * findings_summary report over the same scenario config must produce
 * byte-identical output — any wall-clock read, unseeded RNG draw or
 * hash-order dependence in the replay pipeline shows up here as a
 * diff. A second test re-renders the report with a different worker
 * count: the thread-parallel Runner must not change a single byte
 * versus --jobs 1 (the isolation contract of src/exp).
 *
 * Both tests pass --no-cache so every report comes from real
 * replays; cache-path determinism is covered by tests/exp.
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/runner.hh"
#include "findings.hh"

namespace {

/** Render the findings report once under the given flags. */
std::string
render(std::vector<std::string> args)
{
    args.insert(args.begin(), "determinism_test");
    std::vector<char *> argv;
    argv.reserve(args.size());
    for (std::string &arg : args)
        argv.push_back(arg.data());
    av::bench::BenchEnv env(static_cast<int>(argv.size()),
                            argv.data());
    std::ostringstream os;
    av::bench::runFindingsSummary(env, os);
    return os.str();
}

TEST(Determinism, FindingsReportByteIdenticalAcrossRuns)
{
    const std::string first =
        render({"--duration", "8", "--no-cache"});
    const std::string second =
        render({"--duration", "8", "--no-cache"});

    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // The report must carry real content, not just headers.
    EXPECT_NE(first.find("findings reproduced"),
              std::string::npos);
}

TEST(Determinism, FindingsReportIndependentOfWorkerCount)
{
    const std::string serial =
        render({"--duration", "8", "--no-cache", "--jobs", "1"});
    const std::string parallel =
        render({"--duration", "8", "--no-cache", "--jobs", "3"});

    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

/** Serialize @p result through a scratch cache; return the bytes. */
std::string
resultBytes(const av::prof::RunResult &result, const char *key)
{
    const std::string dir = "/tmp/avscope_determinism_faults";
    const av::exp::ResultCache cache(dir);
    EXPECT_TRUE(cache.store(key, result));
    std::ifstream is(cache.entryPath(key), std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

TEST(Determinism, FaultedRunsByteIdenticalAcrossWorkerCounts)
{
    namespace exp = av::exp;
    namespace fault = av::fault;
    using av::sim::oneMs;
    using av::sim::oneSec;
    std::filesystem::remove_all("/tmp/avscope_determinism_faults");

    // A schedule mixing every stochastic fault mechanism: seeded
    // frame loss, duplication/corruption draws, a crash/respawn
    // cycle and a throttle window. Degradation responses on, so the
    // fallback/coast/reseed paths are in the replay too.
    const fault::FaultPlan plan =
        fault::FaultPlan()
            .cameraBlackout(2 * oneSec, oneSec)
            .frameLoss(av::world::topics::pointsRaw, 3 * oneSec,
                       oneSec, 0.5)
            .nodeCrash("euclidean_cluster", 4 * oneSec,
                       500 * oneMs)
            .messageDuplicate(av::perception::topics::imageObjects,
                              2 * oneSec, oneSec, 0.5)
            .gpuThrottle(oneSec, oneSec, 0.5);

    std::vector<exp::ExperimentSpec> specs;
    for (const auto kind : {av::perception::DetectorKind::Ssd512,
                            av::perception::DetectorKind::Yolov3})
        specs.push_back(
            exp::spec()
                .detector(kind)
                .durationSeconds(6)
                .seed(2020)
                .faults(plan)
                .degraded()
                // Pin the v2 loaned transport explicitly: faulted
                // runs (duplication forces private copies) must stay
                // byte-identical across worker counts on it.
                .transportMode(av::ros::TransportMode::Loan)
                .named(av::perception::detectorName(kind)));

    exp::Runner serial(exp::RunnerConfig{1, ""});
    exp::Runner parallel(exp::RunnerConfig{4, ""});
    for (const auto &s : specs) {
        serial.submit(s);
        parallel.submit(s);
    }
    const auto from_serial = serial.collect();
    const auto from_parallel = parallel.collect();
    ASSERT_EQ(from_serial.size(), specs.size());
    ASSERT_EQ(from_parallel.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string tag = std::to_string(i);
        const std::string a = resultBytes(*from_serial[i],
                                          ("serial-" + tag).c_str());
        const std::string b = resultBytes(
            *from_parallel[i], ("parallel-" + tag).c_str());
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "faulted run " << i
                        << " differs across worker counts";
        // The entry must carry fault outcomes, not an empty table,
        // and record which transport replayed it.
        EXPECT_NE(a.find("faults 5"), std::string::npos);
        EXPECT_NE(a.find("transport loan"), std::string::npos);
    }
}

TEST(Determinism, ChaosCellsByteIdenticalAcrossWorkerCounts)
{
    namespace exp = av::exp;
    namespace fault = av::fault;
    using av::sim::oneMs;
    using av::sim::oneSec;
    std::filesystem::remove_all("/tmp/avscope_determinism_faults");

    // A compound cell with the safety monitor armed: the serialized
    // entry carries timestamped violations, and those — like every
    // other section — must not move by a byte across worker counts.
    const fault::FaultPlan plan =
        fault::FaultPlan()
            .lidarBlackout(1500 * oneMs, oneSec)
            .cameraBlackout(2 * oneSec, 2 * oneSec)
            .gpuThrottle(1800 * oneMs, 2 * oneSec, 0.5);

    std::vector<exp::ExperimentSpec> specs;
    for (const std::uint64_t seed : {2020ull, 2021ull})
        specs.push_back(exp::spec()
                            .durationSeconds(6)
                            .seed(seed)
                            .faults(plan)
                            .degraded()
                            .invariants()
                            .named("chaos-" +
                                   std::to_string(seed)));

    exp::Runner serial(exp::RunnerConfig{1, ""});
    exp::Runner parallel(exp::RunnerConfig{4, ""});
    for (const auto &s : specs) {
        serial.submit(s);
        parallel.submit(s);
    }
    const auto from_serial = serial.collect();
    const auto from_parallel = parallel.collect();
    ASSERT_EQ(from_serial.size(), specs.size());

    bool any_violation = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string tag = std::to_string(i);
        const std::string a = resultBytes(
            *from_serial[i], ("chaos-serial-" + tag).c_str());
        const std::string b = resultBytes(
            *from_parallel[i], ("chaos-parallel-" + tag).c_str());
        ASSERT_FALSE(a.empty());
        EXPECT_EQ(a, b) << "chaos cell " << i
                        << " differs across worker counts";
        EXPECT_NE(a.find("\nviolations "), std::string::npos);
        any_violation |= !from_serial[i]->violations.empty();
    }
    // A 1 s LiDAR blackout sits far past the ~0.37 s localization
    // knee: at least one cell must actually record a violation, or
    // this test is vacuously comparing empty sections.
    EXPECT_TRUE(any_violation);
}

/** Serialize through a scratch cache rooted at @p dir. */
std::string
tracedBytes(const std::string &dir, const av::prof::RunResult &result,
            const char *key)
{
    const av::exp::ResultCache cache(dir);
    EXPECT_TRUE(cache.store(key, result));
    std::ifstream is(cache.entryPath(key), std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** The serialized trace section ("\ntrace " up to "\nend"). */
std::string
traceSection(const std::string &bytes)
{
    const auto begin = bytes.find("\ntrace ");
    const auto end = bytes.rfind("\nend");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return bytes.substr(begin, end - begin);
}

TEST(Determinism, TracedRunsByteIdenticalAcrossJobsAndTransports)
{
    namespace exp = av::exp;
    const std::string dir = "/tmp/avscope_determinism_trace";
    std::filesystem::remove_all(dir);

    const auto traced = [](av::ros::TransportMode mode) {
        return exp::spec()
            .detector(av::perception::DetectorKind::Ssd512)
            .durationSeconds(4)
            .seed(2020)
            .traced()
            .transportMode(mode)
            .named("traced determinism");
    };

    // Same traced spec through a serial and a 4-worker Runner: the
    // whole result file — trace events, critical path, slack rows,
    // edges — must not differ by a byte.
    exp::Runner serial(exp::RunnerConfig{1, ""});
    exp::Runner parallel(exp::RunnerConfig{4, ""});
    const auto loan = traced(av::ros::TransportMode::Loan);
    const std::string a = tracedBytes(
        dir, serial.result(serial.submit(loan)), "jobs1");
    const std::string b = tracedBytes(
        dir, parallel.result(parallel.submit(loan)), "jobs4");
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "traced run differs across worker counts";
    // The entry must actually carry a trace, not an untraced stub.
    EXPECT_NE(a.find("\ntrace 1 "), std::string::npos);
    EXPECT_NE(a.find("tracepath"), std::string::npos);

    // Copy vs loan transport: the simulated trace is identical; the
    // full files legitimately differ (transport mode + counters), so
    // compare the serialized trace section alone.
    const std::string c = tracedBytes(
        dir,
        serial.result(
            serial.submit(traced(av::ros::TransportMode::Copy))),
        "copy");
    EXPECT_EQ(traceSection(a), traceSection(c))
        << "trace diverged between loan and copy transports";
}

} // namespace
