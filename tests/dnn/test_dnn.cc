/**
 * @file
 * Unit tests for the DNN specs and cost model: layer math, published
 * FLOP/parameter counts, kernel generation, pre/post-processing
 * profiles.
 */

#include <gtest/gtest.h>

#include "dnn/cost.hh"
#include "dnn/network.hh"
#include "uarch/profiler.hh"
#include "util/random.hh"

namespace {

using namespace av::dnn;

TEST(Layer, ConvFlopsAndBytes)
{
    LayerSpec l;
    l.kind = LayerKind::Conv;
    l.inC = 3;
    l.inH = l.inW = 300;
    l.outC = 64;
    l.outH = l.outW = 300;
    l.kernel = 3;
    // 2 * 64*300*300 * 3*3*3 = 311.04e6
    EXPECT_NEAR(l.flops(), 311.04e6, 1e3);
    EXPECT_NEAR(l.weightBytes(), 4.0 * (64 * 3 * 9 + 64), 1.0);
    EXPECT_NEAR(l.outputBytes(), 4.0 * 64 * 300 * 300, 1.0);
}

TEST(Network, Ssd300MatchesPublishedScale)
{
    const NetworkSpec net = buildSsd300();
    EXPECT_EQ(net.numCandidateBoxes, 8732u); // the canonical count
    // ~31 GMACs = ~62 GFLOPs for SSD300-VGG16.
    EXPECT_GT(net.totalFlops(), 55e9);
    EXPECT_LT(net.totalFlops(), 75e9);
    // VGG-16 backbone dominates parameters: ~24-35M params.
    EXPECT_GT(net.totalWeightBytes(), 80e6);
    EXPECT_LT(net.totalWeightBytes(), 180e6);
}

TEST(Network, Ssd512MatchesPublishedScale)
{
    const NetworkSpec net = buildSsd512();
    EXPECT_EQ(net.numCandidateBoxes, 24564u);
    // ~90 GMACs = ~180 GFLOPs.
    EXPECT_GT(net.totalFlops(), 150e9);
    EXPECT_LT(net.totalFlops(), 220e9);
}

TEST(Network, Yolov3MatchesPublishedScale)
{
    const NetworkSpec net = buildYolov3_416();
    EXPECT_EQ(net.numCandidateBoxes, 10647u);
    // darknet reports 65.9 BFLOPs for YOLOv3-416.
    EXPECT_GT(net.totalFlops(), 58e9);
    EXPECT_LT(net.totalFlops(), 75e9);
    // Darknet-53 + heads: ~62M params ~ 248 MB fp32.
    EXPECT_GT(net.totalWeightBytes(), 200e6);
    EXPECT_LT(net.totalWeightBytes(), 300e6);
}

TEST(Network, OrderingBySize)
{
    // The cost ordering the paper's Fig. 5 rests on.
    EXPECT_GT(buildSsd512().totalFlops(), buildSsd300().totalFlops());
    EXPECT_GT(buildSsd512().totalFlops(),
              buildYolov3_416().totalFlops());
}

TEST(Cost, KernelsCoverEveryLayer)
{
    const NetworkSpec net = buildSsd300();
    const auto kernels = networkKernels(net, GpuCostParams{0.5, 1.0});
    EXPECT_EQ(kernels.size(), net.layers.size());
    double flops = 0.0;
    for (const auto &k : kernels)
        flops += k.flops;
    // Efficiency 0.5 doubles the effective FLOPs.
    EXPECT_NEAR(flops, 2.0 * net.totalFlops(), 1e6);
}

TEST(Cost, TransferSizes)
{
    const NetworkSpec ssd = buildSsd512();
    EXPECT_NEAR(networkH2dBytes(ssd), 3.0 * 512 * 512 * 4, 1.0);
    EXPECT_NEAR(networkD2hBytes(ssd), 4.0 * 24564 * 25, 1.0);
}

TEST(Cost, PostprocessSsdHeavierThanYolo)
{
    av::util::Rng rng(1);
    const auto ssd = postprocessFrame(buildSsd512(), rng,
                                      av::uarch::KernelProfiler());
    const auto yolo = postprocessFrame(buildYolov3_416(), rng,
                                       av::uarch::KernelProfiler());
    // The per-class full sort makes SSD512's host postprocess more
    // than an order of magnitude heavier (paper: SSD >50% CPU, YOLO
    // >90% GPU).
    EXPECT_GT(ssd.total(), 10 * yolo.total());
    EXPECT_GT(ssd.total(), 50e6); // tens of ms at ~GHz rates
    EXPECT_LT(yolo.total(), 20e6);
}

TEST(Cost, PostprocessBranchMixSupportsMisprediction)
{
    av::util::Rng rng(2);
    const auto ops = postprocessFrame(buildSsd512(), rng,
                                      av::uarch::KernelProfiler());
    // Sort-dominated: meaningful branch fraction, high mem fraction.
    EXPECT_GT(ops.branchFraction(), 0.10);
    EXPECT_GT(ops.memFraction(), 0.30);
}

TEST(Cost, PostprocessTracingFeedsPredictor)
{
    av::uarch::NodeArchState state(
        av::uarch::CacheConfig(), av::uarch::BranchConfig(),
        av::uarch::PipelineConfig(), /*trace_period=*/1);
    av::util::Rng rng(3);
    av::uarch::InvocationCost cost;
    for (int frame = 0; frame < 10; ++frame) {
        state.beginInvocation();
        postprocessFrame(buildSsd512(), rng,
                         av::uarch::KernelProfiler(&state));
        cost = state.endInvocation();
    }
    // Real sort comparisons produce a markedly nonzero mispredict
    // rate on the data-dependent branch sites: the SSD sort story
    // of the paper's Table VII (9.78% overall for SSD512).
    EXPECT_GT(state.branchStats().total(), 1000u);
    EXPECT_GT(cost.branchMissRate, 0.04);
    EXPECT_LT(cost.branchMissRate, 0.20);
    EXPECT_GT(cost.cycles, 0.0);
}

TEST(Cost, PreprocessScalesWithNetworkInput)
{
    const auto big = preprocessFrame(buildSsd512(), 1280, 720,
                                     av::uarch::KernelProfiler());
    const auto small = preprocessFrame(buildYolov3_416(), 1280, 720,
                                       av::uarch::KernelProfiler());
    EXPECT_GT(big.total(), small.total());
    EXPECT_GT(big.memFraction(), 0.2);
}

TEST(Cost, DeterministicAcrossCalls)
{
    av::util::Rng r1(5), r2(5);
    const auto a = postprocessFrame(buildSsd300(), r1,
                                    av::uarch::KernelProfiler());
    const auto b = postprocessFrame(buildSsd300(), r2,
                                    av::uarch::KernelProfiler());
    EXPECT_EQ(a.total(), b.total());
}

/** Sanity sweep over every network: invariants hold. */
class NetworkInvariantTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    NetworkSpec
    build() const
    {
        const std::string which = GetParam();
        if (which == "ssd300")
            return buildSsd300();
        if (which == "ssd512")
            return buildSsd512();
        return buildYolov3_416();
    }
};

TEST_P(NetworkInvariantTest, ShapesChain)
{
    const NetworkSpec net = build();
    EXPECT_GT(net.convLayers(), 20u);
    for (const LayerSpec &l : net.layers) {
        EXPECT_GT(l.outC, 0u) << l.name;
        EXPECT_GT(l.outH, 0u) << l.name;
        EXPECT_GE(l.flops(), 0.0) << l.name;
    }
    EXPECT_GT(net.totalActivationBytes(), net.inputBytes());
}

INSTANTIATE_TEST_SUITE_P(Networks, NetworkInvariantTest,
                         ::testing::Values("ssd300", "ssd512",
                                           "yolov3"));

} // namespace
