/**
 * @file
 * Tests for av::fault: plan building, deterministic transport
 * disruption (blackout / loss / delay / duplicate / corrupt), node
 * crash + respawn semantics, GPU throttle windows, plan validation,
 * the recovery probe, and whole-stack graceful degradation
 * (LiDAR-only fusion, tracker coasting, NDT reseeding).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/characterization.hh"
#include "core/probes.hh"
#include "fault/fault.hh"
#include "stack/watchdog.hh"
#include "world/recorder.hh"

namespace {

using namespace av;
using av::sim::oneMs;
using av::sim::oneSec;
using av::sim::Tick;

struct IntMsg
{
    int value = 0;
};

struct Rig
{
    sim::EventQueue eq;
    hw::MachineConfig mcfg;
    hw::Machine machine{eq, mcfg};
    ros::RosGraph graph{machine};
};

double
counterOf(const std::vector<std::pair<std::string, double>> &table,
          const std::string &name)
{
    for (const auto &[key, value] : table)
        if (key == name)
            return value;
    return -1.0;
}

TEST(FaultPlan, KindNamesRoundTrip)
{
    const fault::FaultKind all[] = {
        fault::FaultKind::LidarBlackout,
        fault::FaultKind::CameraBlackout,
        fault::FaultKind::GnssBlackout,
        fault::FaultKind::FrameLoss,
        fault::FaultKind::NodeCrash,
        fault::FaultKind::MessageDelay,
        fault::FaultKind::MessageDuplicate,
        fault::FaultKind::MessageCorrupt,
        fault::FaultKind::GpuThrottle,
    };
    for (const fault::FaultKind kind : all) {
        fault::FaultKind back = fault::FaultKind::LidarBlackout;
        ASSERT_TRUE(
            fault::faultKindFromName(fault::faultKindName(kind), back));
        EXPECT_EQ(back, kind);
    }
    fault::FaultKind out;
    EXPECT_FALSE(fault::faultKindFromName("martian_dust", out));
}

TEST(FaultPlan, LabelsAndWindowsDeriveFromSpec)
{
    fault::FaultPlan plan;
    plan.cameraBlackout(2 * oneSec, oneSec)
        .nodeCrash("euclidean_cluster", 3 * oneSec, 500 * oneMs);
    EXPECT_EQ(fault::faultLabel(plan.faults[0]),
              "camera_blackout@2000ms");
    EXPECT_EQ(fault::faultWindowEnd(plan.faults[0]), 3 * oneSec);
    // A crash's disturbance window ends at the respawn.
    EXPECT_EQ(fault::faultWindowEnd(plan.faults[1]),
              3 * oneSec + 500 * oneMs);
    EXPECT_EQ(fault::defaultWatchTopic(plan.faults[0]),
              perception::topics::fusedObjects);
    EXPECT_EQ(fault::defaultWatchTopic(plan.faults[1]),
              perception::topics::objects);
}

TEST(FaultInjector, BlackoutSuppressesOnlyInsideWindow)
{
    Rig rig;
    ros::Node sink(rig.graph, "sink");
    std::vector<int> seen;
    sink.subscribe<IntMsg>(
        world::topics::pointsRaw, 10,
        [&](const ros::Stamped<IntMsg> &msg,
            std::function<void()> done) {
            seen.push_back(msg.data.value);
            done();
        });
    auto pub = rig.graph.advertise<IntMsg>(world::topics::pointsRaw);

    fault::FaultPlan plan;
    plan.lidarBlackout(10 * oneMs, 20 * oneMs); // window [10, 30) ms
    fault::FaultInjector injector(rig.graph, plan);
    injector.arm();

    // Taps observe the publisher's output before the wire loses it.
    std::uint64_t tapped = 0;
    rig.graph.findTopic(world::topics::pointsRaw)
        ->addHeaderTap([&](const ros::Header &) { ++tapped; });

    const Tick at[] = {5 * oneMs, 15 * oneMs, 25 * oneMs, 35 * oneMs};
    for (int i = 0; i < 4; ++i)
        rig.eq.schedule(at[i], [&pub, i] {
            pub.publish(ros::Header{}, IntMsg{i}, 64);
        });
    rig.eq.runUntil();

    EXPECT_EQ(seen, (std::vector<int>{0, 3}));
    EXPECT_EQ(tapped, 4u);
    EXPECT_EQ(injector.outcomes()[0].suppressed, 2u);
}

TEST(FaultInjector, FrameLossIsSeededAndReplayable)
{
    const auto run = [](std::uint64_t seed) {
        Rig rig;
        ros::Node sink(rig.graph, "sink");
        std::vector<int> seen;
        sink.subscribe<IntMsg>(
            "/t", 64,
            [&](const ros::Stamped<IntMsg> &msg,
                std::function<void()> done) {
                seen.push_back(msg.data.value);
                done();
            });
        auto pub = rig.graph.advertise<IntMsg>("/t");
        fault::FaultPlan plan;
        plan.seed = seed;
        plan.frameLoss("/t", 0, oneSec, 0.5);
        fault::FaultInjector injector(rig.graph, plan);
        injector.arm();
        for (int i = 0; i < 40; ++i)
            rig.eq.schedule(static_cast<Tick>(i) * oneMs, [&pub, i] {
                pub.publish(ros::Header{}, IntMsg{i}, 64);
            });
        rig.eq.runUntil();
        return seen;
    };
    const std::vector<int> a = run(7);
    const std::vector<int> b = run(7);
    const std::vector<int> c = run(8);
    EXPECT_EQ(a, b);       // same seed, same losses
    EXPECT_NE(a, c);       // different stream
    EXPECT_GT(a.size(), 0u);
    EXPECT_LT(a.size(), 40u); // p=0.5 drops something
}

TEST(FaultInjector, NodeCrashDrainsQueueAndRespawns)
{
    Rig rig;

    struct RespawnNode : ros::Node
    {
        using ros::Node::Node;
        int respawns = 0;
        void onRespawn() override { ++respawns; }
    };

    RespawnNode node(rig.graph, "victim");
    std::vector<int> seen;
    node.subscribe<IntMsg>(
        "/t", 10,
        [&](const ros::Stamped<IntMsg> &msg,
            std::function<void()> done) {
            seen.push_back(msg.data.value);
            rig.eq.scheduleAfter(20 * oneMs, done); // slow handler
        });
    auto pub = rig.graph.advertise<IntMsg>("/t");

    fault::FaultPlan plan;
    plan.nodeCrash("victim", 5 * oneMs, 10 * oneMs); // down [5, 15) ms
    fault::FaultInjector injector(rig.graph, plan);
    injector.arm();

    const Tick at[] = {0, 1 * oneMs, 10 * oneMs, 30 * oneMs};
    for (int i = 0; i < 4; ++i)
        rig.eq.schedule(at[i], [&pub, i] {
            pub.publish(ros::Header{}, IntMsg{i}, 64);
        });
    rig.eq.runUntil();

    // m0 is in flight at crash time and completes; m1 was queued and
    // is drained by the crash; m2 arrives while down and is
    // discarded; m3 arrives after respawn and processes normally.
    EXPECT_EQ(seen, (std::vector<int>{0, 3}));
    EXPECT_EQ(node.respawns, 1);
    EXPECT_FALSE(node.down());
    EXPECT_EQ(node.subscriptions()[0]->stats().crashDiscarded, 2u);
}

TEST(FaultInjector, MessageDelayAddsTransportLatency)
{
    Rig rig;
    ros::Node sink(rig.graph, "sink");
    std::vector<Tick> arrivals;
    sink.subscribe<IntMsg>(
        "/t", 10,
        [&](const ros::Stamped<IntMsg> &,
            std::function<void()> done) {
            arrivals.push_back(rig.eq.now());
            done();
        });
    auto pub = rig.graph.advertise<IntMsg>("/t");
    fault::FaultPlan plan;
    plan.messageDelay("/t", 0, oneSec, 5 * oneMs);
    fault::FaultInjector injector(rig.graph, plan);
    injector.arm();
    pub.publish(ros::Header{}, IntMsg{}, 64);
    rig.eq.runUntil();
    ASSERT_EQ(arrivals.size(), 1u);
    EXPECT_GE(arrivals[0], 5 * oneMs);
    EXPECT_EQ(injector.outcomes()[0].delayed, 1u);
}

TEST(FaultInjector, DuplicateAndCorruptDisruptDeliveries)
{
    Rig rig;
    ros::Node sink(rig.graph, "sink");
    std::vector<std::uint64_t> seqs;
    sink.subscribe<IntMsg>(
        "/dup", 10,
        [&](const ros::Stamped<IntMsg> &msg,
            std::function<void()> done) {
            seqs.push_back(msg.header.seq);
            done();
        });
    int corrupt_seen = 0;
    sink.subscribe<IntMsg>(
        "/bad", 10,
        [&](const ros::Stamped<IntMsg> &,
            std::function<void()> done) {
            ++corrupt_seen;
            done();
        });
    auto dup_pub = rig.graph.advertise<IntMsg>("/dup");
    auto bad_pub = rig.graph.advertise<IntMsg>("/bad");

    fault::FaultPlan plan;
    plan.messageDuplicate("/dup", 0, oneSec, 1.0)
        .messageCorrupt("/bad", 0, oneSec, 1.0);
    fault::FaultInjector injector(rig.graph, plan);
    injector.arm();

    dup_pub.publish(ros::Header{}, IntMsg{}, 64);
    bad_pub.publish(ros::Header{}, IntMsg{}, 64);
    rig.eq.runUntil();

    // The duplicate arrives as a second delivery of the same seq;
    // the corrupted message crosses the wire but never delivers.
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 0}));
    EXPECT_EQ(corrupt_seen, 0);
    EXPECT_EQ(injector.outcomes()[0].duplicated, 1u);
    EXPECT_EQ(injector.outcomes()[1].corrupted, 1u);
}

TEST(FaultInjector, GpuThrottleWindowScalesKernelRate)
{
    sim::EventQueue eq;
    hw::GpuConfig config;
    config.tflops = 1.0;
    config.computeEfficiency = 1.0;
    config.kernelOverhead = 0;
    hw::GpuModel gpu(eq, config);

    const hw::GpuKernel kernel{1e9, 0.0}; // 1 ms at full rate
    const Tick full = gpu.kernelDuration(kernel);
    gpu.setThrottleFactor(0.5);
    const Tick throttled = gpu.kernelDuration(kernel);
    EXPECT_EQ(throttled, 2 * full);
    gpu.setThrottleFactor(1.0);

    // Injector-scheduled window: factor applies only inside it.
    Rig rig;
    fault::FaultPlan plan;
    plan.gpuThrottle(10 * oneMs, 20 * oneMs, 0.25);
    fault::FaultInjector injector(rig.graph, plan);
    injector.arm();
    hw::GpuModel &dev = rig.machine.gpu();
    rig.eq.runUntil(5 * oneMs);
    EXPECT_DOUBLE_EQ(dev.throttleFactor(), 1.0);
    rig.eq.runUntil(15 * oneMs);
    EXPECT_DOUBLE_EQ(dev.throttleFactor(), 0.25);
    rig.eq.runUntil(40 * oneMs);
    EXPECT_DOUBLE_EQ(dev.throttleFactor(), 1.0);
}

TEST(FaultInjector, InvalidPlansThrowBeforeSimulation)
{
    Rig rig;
    {
        fault::FaultPlan plan;
        plan.nodeCrash("no_such_node", oneSec, oneSec);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
    {
        fault::FaultPlan plan;
        plan.frameLoss("", 0, oneSec, 0.5);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
    {
        fault::FaultPlan plan;
        plan.frameLoss("/t", 0, oneSec, 1.5);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
    {
        fault::FaultPlan plan;
        plan.gpuThrottle(0, oneSec, 0.0);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
}

TEST(FaultInjector, AmbiguousCompositionsRejected)
{
    Rig rig;
    struct CrashNode : ros::Node
    {
        using ros::Node::Node;
    };
    CrashNode node(rig.graph, "victim");
    node.subscribe<IntMsg>(
        "/t", 10,
        [](const ros::Stamped<IntMsg> &,
           std::function<void()> done) { done(); });

    {
        // Byte-identical specs would share one Rng stream.
        fault::FaultPlan plan;
        plan.frameLoss("/t", oneSec, oneSec, 0.5);
        plan.frameLoss("/t", oneSec, oneSec, 0.5);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
    {
        // Overlapping throttle windows: the first window's end
        // would reset the factor mid-way through the second.
        fault::FaultPlan plan;
        plan.gpuThrottle(oneSec, 2 * oneSec, 0.5);
        plan.gpuThrottle(2 * oneSec, 2 * oneSec, 0.25);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
    {
        // Crash-while-down has no defined respawn order.
        fault::FaultPlan plan;
        plan.nodeCrash("victim", oneSec, 2 * oneSec);
        plan.nodeCrash("victim", 2 * oneSec, 2 * oneSec);
        EXPECT_THROW(fault::FaultInjector(rig.graph, plan),
                     std::invalid_argument);
    }
    {
        // Same windows on *different* nodes compose fine — the
        // rejection is specific, not a blanket same-kind ban.
        CrashNode other(rig.graph, "other");
        other.subscribe<IntMsg>(
            "/t", 10,
            [](const ros::Stamped<IntMsg> &,
               std::function<void()> done) { done(); });
        fault::FaultPlan plan;
        plan.nodeCrash("victim", oneSec, 2 * oneSec);
        plan.nodeCrash("other", 2 * oneSec, 2 * oneSec);
        EXPECT_NO_THROW(fault::FaultInjector(rig.graph, plan));
    }
}

TEST(RecoveryProbe, MeasuresOnsetToFirstPostWindowPublication)
{
    Rig rig;
    // The probe reads the recorder's publish log, so the graph
    // needs a recorder attached (the publish log is always on).
    trace::Recorder recorder;
    rig.graph.setTraceRecorder(&recorder);
    auto pub = rig.graph.advertise<IntMsg>("/t");
    fault::FaultPlan plan;
    plan.frameLoss("/t", 10 * oneMs, 20 * oneMs, 0.0);
    prof::RecoveryProbe probe(recorder, plan);
    for (const Tick at : {15 * oneMs, 40 * oneMs, 50 * oneMs})
        rig.eq.schedule(at, [&pub, &rig, at] {
            ros::Header h;
            h.stamp = rig.eq.now();
            pub.publish(h, IntMsg{}, 64);
        });
    rig.eq.runUntil();

    std::vector<fault::FaultOutcome> outcomes(1);
    probe.fill(outcomes);
    EXPECT_EQ(outcomes[0].publishedDuringWindow, 1u);
    // Onset 10 ms, first publication at/after the 30 ms window end
    // is at 40 ms -> 30 ms to recover.
    EXPECT_DOUBLE_EQ(outcomes[0].recoveryMs, 30.0);
}

TEST(StackWatchdog, EdgeTriggersOnFreshToStale)
{
    Rig rig;
    auto pub = rig.graph.advertise<IntMsg>("/watched");
    stack::WatchdogConfig config;
    config.period = 10 * oneMs;
    config.staleAfter = 50 * oneMs;
    stack::StackWatchdog dog(rig.graph, config, {"/watched"});
    dog.start();
    // Publish for 100 ms, then go silent for 200 ms.
    for (int i = 0; i < 10; ++i)
        rig.eq.schedule(static_cast<Tick>(i) * 10 * oneMs,
                        [&pub, &rig] {
                            ros::Header h;
                            h.stamp = rig.eq.now();
                            pub.publish(h, IntMsg{}, 64);
                        });
    rig.eq.runUntil(300 * oneMs);
    dog.stop();
    ASSERT_EQ(dog.watched().size(), 1u);
    EXPECT_TRUE(dog.watched()[0].stale);
    EXPECT_EQ(dog.totalStaleEvents(), 1u);
}

// ---- whole-stack degradation -----------------------------------

TEST(Degradation, CameraBlackoutFallsBackToLidarOnlyFusion)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 6 * oneSec);

    prof::RunConfig cfg;
    cfg.stack.degradation.enabled = true;
    cfg.faults =
        fault::FaultPlan().cameraBlackout(2 * oneSec, 2 * oneSec);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    const auto outcomes = run.faultOutcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_GT(outcomes[0].suppressed, 0u);
    // The degradation contract: fused objects keep flowing during
    // the vision outage (LiDAR-only), and recovery is measurable.
    EXPECT_GT(outcomes[0].publishedDuringWindow, 0u);
    EXPECT_GE(outcomes[0].recoveryMs, 0.0);

    const auto resilience = run.resilienceCounters();
    EXPECT_GT(counterOf(resilience, "fusion_lidar_only"), 0.0);
    EXPECT_GT(counterOf(resilience, "watchdog_stale_events"), 0.0);

    // The staleness probe sampled the watched topics.
    bool sampled = false;
    for (const prof::StalenessRow &row : run.staleness().rows())
        if (row.seen && row.ageMs.count() > 0)
            sampled = true;
    EXPECT_TRUE(sampled);
}

TEST(Degradation, CompoundBlackoutAndThrottleComposeGracefully)
{
    // Camera blackout + GPU throttle over the same window: the
    // fusion falls back to LiDAR-only while the GPU runs slow, both
    // faults recover, and the resilience counters reflect the
    // composition rather than one fault masking the other.
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 6 * oneSec);

    prof::RunConfig cfg;
    cfg.stack.degradation.enabled = true;
    cfg.faults = fault::FaultPlan()
                     .cameraBlackout(2 * oneSec, 2 * oneSec)
                     .gpuThrottle(2 * oneSec, 2 * oneSec, 0.5);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    const auto outcomes = run.faultOutcomes();
    ASSERT_EQ(outcomes.size(), 2u);
    for (const fault::FaultOutcome &out : outcomes)
        EXPECT_GE(out.recoveryMs, 0.0) << out.label;

    const auto resilience = run.resilienceCounters();
    EXPECT_GT(counterOf(resilience, "fusion_lidar_only"), 0.0);
    EXPECT_GT(counterOf(resilience, "watchdog_stale_events"), 0.0);
}

TEST(Degradation, PlanOrderDoesNotChangeOutcomes)
{
    // Fault streams are salted by spec *content*, not plan index:
    // permuting the plan must leave every probabilistic draw — and
    // therefore outcomes and resilience counters — byte-identical.
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 6 * oneSec);

    fault::FaultPlan forward;
    forward.seed = 7;
    forward.lidarBlackout(2 * oneSec, 800 * oneMs)
        .frameLoss(world::topics::pointsRaw, 2500 * oneMs,
                   2 * oneSec, 0.5)
        .gpuThrottle(3 * oneSec, 2 * oneSec, 0.5);

    fault::FaultPlan reversed;
    reversed.seed = 7;
    for (auto it = forward.faults.rbegin();
         it != forward.faults.rend(); ++it)
        reversed.faults.push_back(*it);

    auto outcomesOf = [&](const fault::FaultPlan &plan) {
        prof::RunConfig cfg;
        cfg.stack.degradation.enabled = true;
        cfg.faults = plan;
        prof::CharacterizationRun run(drive, cfg);
        run.execute();
        auto outs = run.faultOutcomes();
        std::sort(outs.begin(), outs.end(),
                  [](const fault::FaultOutcome &a,
                     const fault::FaultOutcome &b) {
                      return a.label < b.label;
                  });
        return std::make_pair(outs, run.resilienceCounters());
    };

    const auto [fwd, fwdCounters] = outcomesOf(forward);
    const auto [rev, revCounters] = outcomesOf(reversed);
    EXPECT_EQ(fwdCounters, revCounters);
    ASSERT_EQ(fwd.size(), rev.size());
    for (std::size_t i = 0; i < fwd.size(); ++i) {
        EXPECT_EQ(fwd[i].label, rev[i].label);
        EXPECT_EQ(fwd[i].suppressed, rev[i].suppressed);
        EXPECT_EQ(fwd[i].publishedDuringWindow,
                  rev[i].publishedDuringWindow);
        EXPECT_EQ(fwd[i].recoveryMs, rev[i].recoveryMs);
    }
}

TEST(Degradation, LidarBlackoutCoastsTrackerAndReseedsNdt)
{
    world::ScenarioConfig scenario;
    auto drive = prof::makeDrive(scenario, 6 * oneSec);

    prof::RunConfig cfg;
    cfg.stack.degradation.enabled = true;
    cfg.faults = fault::FaultPlan().lidarBlackout(
        2 * oneSec, 1500 * oneMs);
    prof::CharacterizationRun run(drive, cfg);
    run.execute();

    const auto resilience = run.resilienceCounters();
    // No LiDAR frames -> no fused detections -> the tracker coasts
    // its confirmed tracks through the gap.
    EXPECT_GT(counterOf(resilience, "tracker_coasts"), 0.0);
    // First scan after the gap reseeds the NDT guess from GNSS.
    EXPECT_GE(counterOf(resilience, "ndt_reseeds"), 1.0);
}

} // namespace

