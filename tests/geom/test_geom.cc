/**
 * @file
 * Unit tests for geom: vectors, matrices/solvers, quaternions,
 * poses, boxes, ray casts.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/mat.hh"
#include "geom/pose.hh"
#include "geom/vec.hh"
#include "util/random.hh"

namespace {

using namespace av::geom;

TEST(Vec3, BasicAlgebra)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_DOUBLE_EQ((a + b).x, 5.0);
    EXPECT_DOUBLE_EQ((b - a).z, 3.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    const Vec3 c = a.cross(b);
    EXPECT_DOUBLE_EQ(c.x, -3.0);
    EXPECT_DOUBLE_EQ(c.y, 6.0);
    EXPECT_DOUBLE_EQ(c.z, -3.0);
    EXPECT_DOUBLE_EQ(a.dot(c), 0.0);
    EXPECT_DOUBLE_EQ(b.dot(c), 0.0);
}

TEST(Vec3, NormAndNormalize)
{
    const Vec3 v{3, 4, 0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(Vec2, RotationQuadrants)
{
    const Vec2 x{1, 0};
    const Vec2 r = x.rotated(M_PI / 2);
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
    EXPECT_NEAR(x.rotated(M_PI).x, -1.0, 1e-12);
    EXPECT_NEAR(x.rotated(2 * M_PI).x, 1.0, 1e-12);
}

TEST(Vec2, HeadingAndCross)
{
    EXPECT_NEAR(Vec2(0, 1).heading(), M_PI / 2, 1e-12);
    EXPECT_DOUBLE_EQ(Vec2(1, 0).cross({0, 1}), 1.0);
}

TEST(Mat3, InverseRoundTrip)
{
    av::util::Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        Mat3 m;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                m(i, j) = rng.uniform(-2.0, 2.0);
        m(0, 0) += 3.0; // keep it well conditioned
        m(1, 1) += 3.0;
        m(2, 2) += 3.0;
        bool ok = false;
        const Mat3 inv = inverse3(m, &ok);
        ASSERT_TRUE(ok);
        const Mat3 prod = m * inv;
        for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j)
                EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
}

TEST(Mat3, SingularDetected)
{
    Mat3 m; // all zeros
    bool ok = true;
    inverse3(m, &ok);
    EXPECT_FALSE(ok);
    EXPECT_NEAR(det3(m), 0.0, 1e-12);
}

TEST(Mat3, RegularizeCovarianceFloorsEigenvalues)
{
    // Rank-1 covariance (all points on a line).
    const Vec3 dir = Vec3{1, 2, 0.5}.normalized();
    Mat3 cov = outer(dir, dir) * 4.0;
    const Mat3 reg = regularizeCovariance(cov, 0.01);
    bool ok = false;
    inverse3(reg, &ok);
    EXPECT_TRUE(ok); // invertible after regularization
    // Still close to the original on the dominant direction.
    const Vec3 rd = mul(reg, dir);
    EXPECT_NEAR(rd.dot(dir), 4.0, 0.2);
}

TEST(MatN, CholeskySolveSpd)
{
    // A = L L^T with known solution.
    Mat<3, 3> a;
    a(0, 0) = 4;  a(0, 1) = 2;  a(0, 2) = 0.6;
    a(1, 0) = 2;  a(1, 1) = 5;  a(1, 2) = 1;
    a(2, 0) = 0.6; a(2, 1) = 1; a(2, 2) = 3;
    const std::array<double, 3> x_true{1.0, -2.0, 0.5};
    const std::array<double, 3> b = a.apply(x_true);
    std::array<double, 3> x{};
    ASSERT_TRUE(solveCholesky(a, b, x));
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(MatN, CholeskySolveDampsIndefinite)
{
    // Indefinite matrix: solver must fall back to damping, not crash.
    Mat<2, 2> a;
    a(0, 0) = 1;  a(0, 1) = 0;
    a(1, 0) = 0;  a(1, 1) = -1;
    std::array<double, 2> x{};
    EXPECT_TRUE(solveCholesky(a, {1.0, 1.0}, x));
    EXPECT_TRUE(std::isfinite(x[0]));
    EXPECT_TRUE(std::isfinite(x[1]));
}

TEST(MatN, CholeskyFactorReconstructs)
{
    Mat<4, 4> a;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j)
            a(i, j) = 0.3 * (i == j ? 10.0 : 1.0 / (1 + i + j));
    }
    Mat<4, 4> l;
    ASSERT_TRUE(choleskyFactor(a, l));
    const auto recon = l * l.transposed();
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
}

TEST(MatN, GaussInverseRoundTrip)
{
    av::util::Rng rng(21);
    Mat<5, 5> a;
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            a(i, j) = rng.uniform(-1.0, 1.0) + (i == j ? 4.0 : 0.0);
    Mat<5, 5> inv;
    ASSERT_TRUE(inverseGauss(a, inv));
    const auto prod = a * inv;
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 5; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Quat, RpyRoundTrip)
{
    const double roll = 0.1, pitch = -0.2, yaw = 1.3;
    const Quat q = Quat::fromRpy(roll, pitch, yaw);
    double r, p, y;
    q.toRpy(r, p, y);
    EXPECT_NEAR(r, roll, 1e-12);
    EXPECT_NEAR(p, pitch, 1e-12);
    EXPECT_NEAR(y, yaw, 1e-12);
    EXPECT_NEAR(q.yaw(), yaw, 1e-12);
}

TEST(Quat, RotationMatchesMatrix)
{
    av::util::Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const Quat q = Quat::fromRpy(rng.uniform(-1, 1),
                                     rng.uniform(-1, 1),
                                     rng.uniform(-3, 3));
        const Vec3 v{rng.uniform(-5, 5), rng.uniform(-5, 5),
                     rng.uniform(-5, 5)};
        const Vec3 a = q.rotate(v);
        const Vec3 b = mul(q.toMatrix(), v);
        EXPECT_NEAR(a.x, b.x, 1e-10);
        EXPECT_NEAR(a.y, b.y, 1e-10);
        EXPECT_NEAR(a.z, b.z, 1e-10);
        // Rotation preserves length.
        EXPECT_NEAR(a.norm(), v.norm(), 1e-10);
    }
}

TEST(Quat, ComposeMatchesSequentialRotation)
{
    const Quat qa = Quat::fromRpy(0, 0, M_PI / 2);
    const Quat qb = Quat::fromRpy(M_PI / 2, 0, 0);
    const Vec3 v{1, 0, 0};
    const Vec3 seq = qa.rotate(qb.rotate(v));
    const Vec3 comp = (qa * qb).rotate(v);
    EXPECT_NEAR(seq.x, comp.x, 1e-12);
    EXPECT_NEAR(seq.y, comp.y, 1e-12);
    EXPECT_NEAR(seq.z, comp.z, 1e-12);
}

TEST(Pose, ApplyInverseIdentity)
{
    const Pose pose = Pose::fromXyzRpy(1, 2, 3, 0.1, 0.2, 0.3);
    const Vec3 p{4, 5, 6};
    const Vec3 round = pose.inverse().apply(pose.apply(p));
    EXPECT_NEAR(round.x, p.x, 1e-10);
    EXPECT_NEAR(round.y, p.y, 1e-10);
    EXPECT_NEAR(round.z, p.z, 1e-10);
}

TEST(Pose, ComposeAssociativeWithApply)
{
    const Pose a = Pose::fromXyzRpy(1, 0, 0, 0, 0, M_PI / 2);
    const Pose b = Pose::fromXyzRpy(0, 2, 0, 0, 0, 0);
    const Vec3 p{1, 1, 1};
    const Vec3 lhs = a.apply(b.apply(p));
    const Vec3 rhs = a.compose(b).apply(p);
    EXPECT_NEAR(lhs.x, rhs.x, 1e-10);
    EXPECT_NEAR(lhs.y, rhs.y, 1e-10);
    EXPECT_NEAR(lhs.z, rhs.z, 1e-10);
}

TEST(Pose2, LocalWorldRoundTrip)
{
    const Pose2 pose{{10, 20}, M_PI / 3};
    const Vec2 w{13, 24};
    const Vec2 round = pose.apply(pose.toLocal(w));
    EXPECT_NEAR(round.x, w.x, 1e-10);
    EXPECT_NEAR(round.y, w.y, 1e-10);
}

TEST(NormalizeAngle, WrapsIntoRange)
{
    EXPECT_NEAR(normalizeAngle(3 * M_PI), M_PI, 1e-12);
    EXPECT_NEAR(normalizeAngle(-3 * M_PI), M_PI, 1e-12);
    EXPECT_NEAR(normalizeAngle(0.5), 0.5, 1e-12);
    EXPECT_NEAR(normalizeAngle(2 * M_PI + 0.1), 0.1, 1e-12);
}

TEST(Aabb, RayHitsAndMisses)
{
    const Aabb box{{0, 0, 0}, {1, 1, 1}};
    double t = 0;
    EXPECT_TRUE(rayAabb({-1, 0.5, 0.5}, {1, 0, 0}, box, t));
    EXPECT_NEAR(t, 1.0, 1e-12);
    EXPECT_FALSE(rayAabb({-1, 2.0, 0.5}, {1, 0, 0}, box, t));
    // Ray pointing away.
    EXPECT_FALSE(rayAabb({-1, 0.5, 0.5}, {-1, 0, 0}, box, t));
    // Origin inside: t = 0.
    EXPECT_TRUE(rayAabb({0.5, 0.5, 0.5}, {1, 0, 0}, box, t));
    EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(OrientedBox, ContainsRespectsYaw)
{
    OrientedBox box;
    box.pose = {{0, 0}, M_PI / 2}; // long axis along +y
    box.length = 4.0;
    box.width = 2.0;
    EXPECT_TRUE(box.containsXy({0, 1.9}));
    EXPECT_FALSE(box.containsXy({1.9, 0}));
    EXPECT_TRUE(box.containsXy({0.9, 0}));
}

TEST(OrientedBox, RayHit)
{
    OrientedBox box;
    box.pose = {{10, 0}, 0.0};
    box.length = 2.0;
    box.width = 2.0;
    box.zMin = 0.0;
    box.zMax = 2.0;
    double t = 0;
    EXPECT_TRUE(rayOrientedBox({0, 0, 1}, {1, 0, 0}, box, t));
    EXPECT_NEAR(t, 9.0, 1e-9);
    EXPECT_FALSE(rayOrientedBox({0, 5, 1}, {1, 0, 0}, box, t));
    // Over the top of the box.
    EXPECT_FALSE(rayOrientedBox({0, 0, 3}, {1, 0, 0}, box, t));
}

TEST(OrientedBox, AabbCoversCorners)
{
    OrientedBox box;
    box.pose = {{0, 0}, M_PI / 4};
    box.length = 2.0;
    box.width = 2.0;
    const Aabb aabb = box.aabb();
    Vec2 corners[4];
    box.corners(corners);
    for (const Vec2 &c : corners) {
        EXPECT_LE(aabb.lo.x, c.x + 1e-12);
        EXPECT_GE(aabb.hi.x, c.x - 1e-12);
        EXPECT_LE(aabb.lo.y, c.y + 1e-12);
        EXPECT_GE(aabb.hi.y, c.y - 1e-12);
    }
}

} // namespace
