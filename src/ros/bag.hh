/**
 * @file
 * ROSBAG equivalent: record topics during a drive, replay them later.
 *
 * The paper's whole methodology rests on replaying one fixed ROSBAG
 * into differently-configured stacks (§III-A, Fig. 3): every detector
 * scenario sees byte-identical sensor input. Bag gives avscope the
 * same property — the world simulator records a drive once, and the
 * three detector configurations replay it.
 */

#ifndef AVSCOPE_ROS_BAG_HH
#define AVSCOPE_ROS_BAG_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ros/ros.hh"

namespace av::ros {

/** Type-erased channel interface. */
class BagChannelBase
{
  public:
    explicit BagChannelBase(std::string name) : name_(std::move(name)) {}
    virtual ~BagChannelBase() = default;

    const std::string &name() const { return name_; }
    virtual std::size_t count() const = 0;
    virtual sim::Tick lastStamp() const = 0;

    /**
     * Schedule every stored message for publication into @p graph at
     * its recorded stamp shifted by @p offset.
     */
    virtual void scheduleReplay(RosGraph &graph,
                                sim::Tick offset) const = 0;

  protected:
    std::string name_;
};

/** Typed channel holding recorded messages in stamp order. */
template <typename T>
class BagChannel final : public BagChannelBase
{
  public:
    using BagChannelBase::BagChannelBase;

    void
    add(Stamped<T> msg)
    {
        messages_.push_back(std::move(msg));
    }

    std::size_t count() const override { return messages_.size(); }

    sim::Tick
    lastStamp() const override
    {
        return messages_.empty() ? 0 : messages_.back().header.stamp;
    }

    void
    scheduleReplay(RosGraph &graph, sim::Tick offset) const override
    {
        Topic<T> &topic = graph.topic<T>(name_);
        sim::EventQueue &eq = graph.eventQueue();
        for (const Stamped<T> &msg : messages_) {
            const sim::Tick when = msg.header.stamp + offset;
            // One copy per replayed message — the "sensor driver"
            // producing a fresh frame from the recording. The copy
            // is made at schedule time (lambda capture) and *moved*
            // into the transport at fire time; the bag's own copy
            // stays pristine for the next replay.
            eq.schedule(std::max(when, eq.now()),
                        [&topic, msg]() mutable {
                            topic.publish(std::move(msg));
                        });
        }
    }

    const std::vector<Stamped<T>> &messages() const
    {
        return messages_;
    }

  private:
    std::vector<Stamped<T>> messages_;
};

/**
 * A collection of recorded channels.
 */
class Bag
{
  public:
    /** Get-or-create the typed channel @p name. */
    template <typename T>
    BagChannel<T> &
    channel(const std::string &name)
    {
        auto it = channels_.find(name);
        if (it == channels_.end()) {
            auto created = std::make_unique<BagChannel<T>>(name);
            BagChannel<T> *raw = created.get();
            channels_.emplace(name, std::move(created));
            return *raw;
        }
        auto *typed =
            dynamic_cast<BagChannel<T> *>(it->second.get());
        if (!typed)
            util::panic("bag channel '", name,
                        "' used with a different type");
        return *typed;
    }

    /** Start recording @p topic into the same-named channel. */
    template <typename T>
    void
    record(Topic<T> &topic)
    {
        BagChannel<T> &chan = channel<T>(topic.name());
        topic.addTap([&chan](const Stamped<T> &msg) {
            chan.add(msg);
        });
    }

    /** Schedule all channels for replay into @p graph. */
    void
    replay(RosGraph &graph, sim::Tick offset = 0) const
    {
        for (const auto &[name, chan] : channels_)
            chan->scheduleReplay(graph, offset);
    }

    /** Latest stamp across channels (drive duration). */
    sim::Tick
    duration() const
    {
        sim::Tick last = 0;
        for (const auto &[name, chan] : channels_)
            last = std::max(last, chan->lastStamp());
        return last;
    }

    /** Total recorded messages. */
    std::size_t
    totalMessages() const
    {
        std::size_t n = 0;
        for (const auto &[name, chan] : channels_)
            n += chan->count();
        return n;
    }

    std::vector<const BagChannelBase *>
    channels() const
    {
        std::vector<const BagChannelBase *> out;
        for (const auto &[name, chan] : channels_)
            out.push_back(chan.get());
        return out;
    }

  private:
    std::map<std::string, std::unique_ptr<BagChannelBase>> channels_;
};

} // namespace av::ros

#endif // AVSCOPE_ROS_BAG_HH
