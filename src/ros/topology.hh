/**
 * @file
 * Runtime topology introspection: a canonical, sorted snapshot of
 * what the middleware has actually registered — nodes, topics (with
 * the advertisers that declared them), and subscription edges with
 * their queue depths.
 *
 * This is the runtime half of avgraph (tools/avgraph): the static
 * analyzer extracts the same structure from source text, and a
 * cross-validation test asserts the two are identical after a live
 * drive. Everything is sorted by name so two snapshots of the same
 * graph compare byte-for-byte.
 */

#ifndef AVSCOPE_ROS_TOPOLOGY_HH
#define AVSCOPE_ROS_TOPOLOGY_HH

#include <cstddef>
#include <string>
#include <vector>

namespace av::ros {

class RosGraph;

/** One subscription: @p subscriber consumes @p topic. */
struct TopologyEdge
{
    std::string topic;
    std::string subscriber;   ///< subscribing node's name
    std::size_t queueDepth = 0;

    bool
    operator==(const TopologyEdge &o) const
    {
        return topic == o.topic && subscriber == o.subscriber &&
               queueDepth == o.queueDepth;
    }
};

/** One topic with the nodes that advertised it. */
struct TopologyTopic
{
    std::string name;
    /** Advertising node names, sorted. Empty means the topic is fed
     *  externally (bag replay, probes) — no node advertised it. */
    std::vector<std::string> advertisers;

    bool
    operator==(const TopologyTopic &o) const
    {
        return name == o.name && advertisers == o.advertisers;
    }
};

/** The registered pub/sub graph in canonical (sorted) form. */
struct TopologySnapshot
{
    std::vector<std::string> nodes;     ///< sorted node names
    std::vector<TopologyTopic> topics;  ///< sorted by name
    std::vector<TopologyEdge> edges;    ///< sorted (topic, subscriber)

    bool
    operator==(const TopologySnapshot &o) const
    {
        return nodes == o.nodes && topics == o.topics &&
               edges == o.edges;
    }
};

/**
 * Enumerate @p graph's registered topology. Every subscription edge
 * appears exactly once (a subscription lives under exactly one
 * topic), regardless of fan-out or transport mode.
 */
TopologySnapshot topologySnapshot(const RosGraph &graph);

} // namespace av::ros

#endif // AVSCOPE_ROS_TOPOLOGY_HH
