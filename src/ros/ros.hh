/**
 * @file
 * "minros": the publish/subscribe middleware the stack runs on.
 *
 * Reproduces the ROS 1 semantics the paper's methodology depends on:
 *
 *  - typed topics with multiple subscribers (Fig. 2);
 *  - bounded per-subscription queues that drop the *oldest* message
 *    when a new one arrives unconsumed — the drop statistics of
 *    Table III fall out of these counters;
 *  - transport latency proportional to message size, so
 *    communication cost is part of every computation path (the
 *    paper's critique of prior work that sums isolated node times);
 *  - single-threaded nodes: one callback in flight per node, queued
 *    inputs wait (the Autoware/ROS spinner model);
 *  - headers that carry the originating sensor timestamps through
 *    the pipeline, which is exactly how the paper traces end-to-end
 *    computation paths (§III-B).
 *
 * Node *callbacks do not execute on the host clock*: a handler runs
 * its algorithm functionally, then reports simulated work (hw::Phase
 * chains) and calls done() when the virtual-time execution finishes.
 */

#ifndef AVSCOPE_ROS_ROS_HH
#define AVSCOPE_ROS_ROS_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.hh"
#include "ros/spsc_ring.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace av::ros {

class Node;
class RosGraph;

/**
 * Sensor-origin timestamps a message's payload derives from. A
 * fused detection carries both its camera's and its LiDAR scan's
 * acquisition times so every computation path of Table IV can be
 * traced to its sensor input.
 */
struct Origins
{
    sim::Tick lidar = 0;  ///< 0 = not derived from LiDAR
    sim::Tick camera = 0; ///< 0 = not derived from a camera frame

    /** Merge: keep the *oldest* nonzero origin per sensor. */
    Origins merged(const Origins &o) const;
};

/** ROS-style message header. */
struct Header
{
    std::uint64_t seq = 0;
    sim::Tick stamp = 0;   ///< creation time of this message
    Origins origins;       ///< carried through the pipeline
    std::string frameId;
};

/** A payload with its header and serialized size. */
template <typename T>
struct Stamped
{
    Header header;
    T data{};
    std::size_t bytes = 0;
    /**
     * Delivery time at the consuming subscription (set by the
     * middleware on deliver; 0 for messages at rest in a bag).
     * Node latency probes measure from here, so queue wait counts —
     * "from the moment an input arrives at the node until the
     * output is ready" (paper §III-B).
     */
    sim::Tick arrival = 0;
};

/**
 * A published payload at rest in the middleware: immutable and
 * shared. In the loaned (zero-copy) transport every subscriber of a
 * topic holds the *same* Stamped<T> the publisher produced; the
 * const in the alias is the whole contract — once published, nobody
 * writes the payload again (avlint's mutable-loan rule enforces the
 * publisher side statically).
 */
template <typename T>
using MessagePtr = std::shared_ptr<const Stamped<T>>;

/**
 * How messages move between nodes inside one process.
 *
 *  - Copy: the v1 semantics — every delivery deep-copies the payload
 *    (one private Stamped<T> per subscriber per duplicate), modeling
 *    a serialize+copy middleware. Kept selectable so old-vs-new is
 *    benchmarkable forever.
 *  - Loan: the v2 zero-copy path — the publisher's message moves
 *    into one immutable shared payload and subscribers borrow it.
 *
 * The *simulated* cost model is identical in both modes: transport
 * delay is still proportional to the serialized size (the paper's
 * "communication cost is part of every path"), so figures and
 * tables are byte-identical across modes; only host-side work and
 * allocation change.
 */
enum class TransportMode {
    Copy,
    Loan,
};

/** Stable name for reports/flags ("copy" / "loan"). */
const char *transportModeName(TransportMode mode);

/** Parse a transport-mode name; false when unknown. */
bool transportModeFromName(const std::string &name,
                           TransportMode &out);

/** Inter-node communication cost parameters. */
struct TransportConfig
{
    sim::Tick baseLatency = 150 * sim::oneUs; ///< notify + wakeup
    double bandwidthGBs = 2.0; ///< intra-host serialize/copy rate
    TransportMode mode = TransportMode::Loan; ///< copy vs zero-copy
};

/**
 * What the transport actually did to payloads, host-side: the
 * receipts behind the zero-copy claim. Deterministic for a given
 * run configuration (counts follow the simulated message flow, not
 * the host scheduler), so they serialize into cached results.
 */
struct TransportCounters
{
    std::uint64_t published = 0;  ///< messages entering publish()
    std::uint64_t deliveries = 0; ///< per-subscriber deliveries
    /** Deep payload copies made by the transport (Copy mode, or
     *  fault-forced private copies in Loan mode). */
    std::uint64_t payloadCopies = 0;
    /** Deliveries that shared the publisher's immutable payload. */
    std::uint64_t loanedDeliveries = 0;
    /** Publishes that moved the payload without any copy (Loan
     *  mode; includes the single-subscriber fast path). */
    std::uint64_t movedPublishes = 0;
    /** Copies forced by transport faults (duplicate deliveries must
     *  not alias the loaned buffer). Subset of payloadCopies when
     *  in Loan mode. */
    std::uint64_t forcedCopies = 0;

    void
    add(const TransportCounters &o)
    {
        published += o.published;
        deliveries += o.deliveries;
        payloadCopies += o.payloadCopies;
        loanedDeliveries += o.loanedDeliveries;
        movedPublishes += o.movedPublishes;
        forcedCopies += o.forcedCopies;
    }
};

/** Per-subscription queue statistics (Table III source). */
struct SubscriptionStats
{
    std::uint64_t delivered = 0; ///< entered the queue
    std::uint64_t dropped = 0;   ///< overwritten before consumption
    std::uint64_t processed = 0; ///< handler invocations
    std::uint64_t crashDiscarded = 0; ///< lost to a node crash window

    double dropRate() const
    {
        return delivered ? static_cast<double>(dropped) /
                               static_cast<double>(delivered)
                         : 0.0;
    }
};

/**
 * What the transport does to one message on one topic. Policies are
 * merged: any drop wins, any corrupt wins, delays add, duplicate
 * counts add.
 */
struct Disruption
{
    bool drop = false;        ///< never leaves the publisher
    bool corrupt = false;     ///< arrives, fails validation, discarded
    sim::Tick extraDelay = 0; ///< added to the transport delay
    unsigned duplicates = 0;  ///< extra deliveries of the same seq
};

/**
 * Fault hub the injector installs transport policies into. Topics
 * consult it on every publish; with no policy registered for a topic
 * the publish path is byte-for-byte the unfaulted one.
 */
class TransportFaults
{
  public:
    using Policy =
        std::function<Disruption(const Header &, sim::Tick now)>;

    /** Install @p policy for @p topic (stacked; all consulted). */
    void addPolicy(const std::string &topic, Policy policy);

    bool hasPoliciesFor(const std::string &topic) const
    {
        return policies_.count(topic) != 0;
    }

    /** Merge every policy's verdict for this publication. */
    Disruption disruptionFor(const std::string &topic,
                             const Header &header,
                             sim::Tick now) const;

  private:
    std::map<std::string, std::vector<Policy>> policies_;
};

/**
 * One runtime subscription-queue-depth override, keyed by
 * (topic, subscriber node). Installed on the RosGraph *before* nodes
 * subscribe (RunConfig::queueDepths); Node::subscribe consults
 * RosGraph::effectiveQueueDepth so the declared literal in the stack
 * source stays intact — avgraph's static extraction keeps reading
 * the source of truth while the closed-loop optimizer explores
 * alternatives at runtime.
 */
struct QueueDepthOverride
{
    std::string topic;
    std::string node;
    std::size_t depth = 1;
};

/** Type-erased subscription interface the Node dispatcher uses. */
class SubscriptionBase
{
  public:
    SubscriptionBase(std::string topic, Node *node, std::size_t depth)
        : topicName_(std::move(topic)), node_(node), depth_(depth)
    {}
    virtual ~SubscriptionBase() = default;

    virtual bool hasPending() const = 0;
    /** Arrival time of the oldest queued message (valid if pending). */
    virtual sim::Tick headArrival() const = 0;
    /** Sequence number of the oldest queued message (valid if
     *  pending) — identifies the activation's trigger in traces. */
    virtual std::uint64_t headSeq() const = 0;
    /**
     * Pop the head and invoke the handler, passing it @p done to
     * call when the node's simulated execution finishes.
     */
    virtual void dispatchHead(std::function<void()> done) = 0;
    /**
     * Discard all queued messages (node crash). Returns the number
     * discarded; they count as crashDiscarded, not dropped.
     */
    virtual std::size_t clearPending() = 0;

    const std::string &topicName() const { return topicName_; }
    const SubscriptionStats &stats() const { return stats_; }
    Node *node() const { return node_; }
    /** Bounded queue capacity (static analysis cross-checks this). */
    std::size_t queueDepth() const { return depth_; }

  protected:
    std::string topicName_;
    Node *node_;
    std::size_t depth_;
    SubscriptionStats stats_;
};

/** Type-erased topic interface for enumeration/reporting. */
class TopicBase
{
  public:
    explicit TopicBase(std::string name) : name_(std::move(name)) {}
    virtual ~TopicBase() = default;

    const std::string &name() const { return name_; }
    std::uint64_t published() const { return published_; }
    virtual std::vector<const SubscriptionBase *> subscribers()
        const = 0;

    /** Host-side payload accounting for this topic. */
    const TransportCounters &transportCounters() const
    {
        return counters_;
    }

    /**
     * Observe every publication's header synchronously, regardless
     * of payload type (staleness probes, watchdogs).
     */
    virtual void addHeaderTap(
        std::function<void(const Header &)> tap) = 0;

    /**
     * Node names that advertised this topic, in advertise order.
     * Empty for topics only ever published externally (bag replay,
     * probes) — those never pass a publisher name.
     */
    const std::vector<std::string> &advertisers() const
    {
        return advertisers_;
    }

    /** Record @p publisher as an advertiser ("" is anonymous). */
    void
    recordAdvertiser(const std::string &publisher)
    {
        if (publisher.empty())
            return;
        for (const std::string &a : advertisers_)
            if (a == publisher)
                return;
        advertisers_.push_back(publisher);
        // Publications are attributed to the first advertiser; a
        // topic nobody advertised traces as externally published.
        if (recorder_ && tracePublisher_ == 0)
            tracePublisher_ = recorder_->intern(advertisers_.front());
    }

    /**
     * Attach the per-drive recorder. Every publication feeds its
     * publish log from here on (and the full event stream when
     * tracing is enabled). Installed by RosGraph on creation and on
     * every already-registered topic.
     */
    void
    setTraceRecorder(trace::Recorder *recorder)
    {
        recorder_ = recorder;
        if (!recorder_)
            return;
        traceTopic_ = recorder_->intern(name_);
        if (!advertisers_.empty())
            tracePublisher_ =
                recorder_->intern(advertisers_.front());
    }

  protected:
    std::string name_;
    std::uint64_t published_ = 0;
    TransportCounters counters_;
    std::vector<std::string> advertisers_;
    trace::Recorder *recorder_ = nullptr;
    trace::Id traceTopic_ = 0;     ///< interned name_
    trace::Id tracePublisher_ = 0; ///< interned first advertiser
};

/**
 * A node: owns subscriptions, processes one message at a time.
 */
class Node
{
  public:
    /**
     * @param graph the middleware instance
     * @param name  unique node name (also the hw accounting owner)
     */
    Node(RosGraph &graph, std::string name);
    virtual ~Node();

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    const std::string &name() const { return name_; }
    RosGraph &graph() { return graph_; }
    bool busy() const { return busy_; }

    /**
     * Handler signature: receives the message and a done() callback
     * that MUST be invoked exactly once when the node's simulated
     * execution for this message finishes (typically from the last
     * hw::Phase completion).
     */
    template <typename T>
    using Handler =
        std::function<void(const Stamped<T> &, std::function<void()>)>;

    /** Subscribe to @p topic with a bounded queue. */
    template <typename T>
    void subscribe(const std::string &topic, std::size_t queue_depth,
                   Handler<T> handler);

    /** Subscriptions (for drop-stat reporting). */
    const std::vector<std::unique_ptr<SubscriptionBase>> &
    subscriptions() const
    {
        return subs_;
    }

    /** Called by subscriptions when new data arrives / node frees. */
    void tryDispatch();

    /**
     * Crash the node: queued inputs drain (counted as
     * crashDiscarded), new deliveries are discarded, and no handler
     * dispatches until respawn(). A handler already in flight runs to
     * completion — the process dies, the simulated work it already
     * scheduled does not un-happen.
     */
    void crash();

    /** Restart after a crash: onRespawn() state reset, then resume. */
    void respawn();

    bool down() const { return down_; }

    /**
     * Node-local state reset hook invoked by respawn(). Override to
     * model a fresh process image (cleared caches, lost tracks).
     */
    virtual void onRespawn() {}

  protected:
    friend class RosGraph;
    RosGraph &graph_;
    std::string name_;
    std::vector<std::unique_ptr<SubscriptionBase>> subs_;
    bool busy_ = false;
    bool down_ = false;
};

/**
 * Typed subscription with a drop-oldest bounded queue.
 *
 * The queue is a lock-free SPSC ring (spsc_ring.hh) of borrowed
 * payloads: entries share ownership of the publisher's immutable
 * message instead of holding private copies, so a point cloud
 * sitting in three queues exists once. Drop/delivery accounting is
 * unchanged from v1 — Table III falls out of the same counters.
 */
template <typename T>
class Subscription final : public SubscriptionBase
{
  public:
    Subscription(std::string topic, Node *node, std::size_t depth,
                 Node::Handler<T> handler)
        : SubscriptionBase(std::move(topic), node, depth),
          pending_(depth), handler_(std::move(handler))
    {
        AV_ASSERT(depth_ > 0, "queue depth must be positive");
    }

    /** Called by Topic<T> when a message reaches this subscriber. */
    void
    deliver(MessagePtr<T> msg, sim::Tick arrival)
    {
        recordDeliver(msg->header.seq, arrival);
        if (node_->down()) {
            ++stats_.crashDiscarded;
            return;
        }
        ++stats_.delivered;
        stats_.dropped +=
            pending_.pushDropOldest(Pending{arrival, std::move(msg)});
        node_->tryDispatch();
    }

    bool hasPending() const override { return !pending_.empty(); }

    sim::Tick
    headArrival() const override
    {
        const Pending *head = pending_.peek();
        AV_ASSERT(head != nullptr, "headArrival on empty queue");
        return head->arrival;
    }

    std::uint64_t
    headSeq() const override
    {
        const Pending *head = pending_.peek();
        AV_ASSERT(head != nullptr, "headSeq on empty queue");
        return head->msg->header.seq;
    }

    void
    dispatchHead(std::function<void()> done) override
    {
        Pending p;
        const bool had = pending_.pop(&p);
        AV_ASSERT(had, "dispatchHead on empty queue");
        ++stats_.processed;
        handler_(*p.msg, std::move(done));
    }

    std::size_t
    clearPending() override
    {
        const std::size_t n = pending_.clear();
        stats_.crashDiscarded += n;
        return n;
    }

  private:
    /**
     * Trace the message entering this queue. Defined inline in a
     * template member on purpose: it needs the complete RosGraph,
     * which is declared below — the body only instantiates at
     * deliver()'s use sites, where the whole header is visible.
     */
    void recordDeliver(std::uint64_t seq, sim::Tick arrival);

    struct Pending
    {
        sim::Tick arrival = 0;
        MessagePtr<T> msg;
    };
    SpscRing<Pending> pending_;
    Node::Handler<T> handler_;
};

/** Typed topic: fan-out with per-subscriber transport delay. */
template <typename T>
class Topic final : public TopicBase
{
  public:
    using Message = Stamped<T>;
    using Tap = std::function<void(const Message &)>;

    Topic(std::string name, sim::EventQueue &eq,
          const TransportConfig &transport,
          const TransportFaults *faults = nullptr)
        : TopicBase(std::move(name)), eq_(eq), transport_(transport),
          faults_(faults)
    {}

    /** Register a subscriber (middleware-internal). */
    void addSubscriber(Subscription<T> *sub)
    {
        subs_.push_back(sub);
    }

    /**
     * Observe every publication synchronously with zero simulated
     * cost (bag recording, probes).
     */
    void addTap(Tap tap) { taps_.push_back(std::move(tap)); }

    void
    addHeaderTap(std::function<void(const Header &)> tap) override
    {
        addTap([tap = std::move(tap)](const Message &msg) {
            tap(msg.header);
        });
    }

    /**
     * Publish. Subscribers receive the message after the transport
     * delay for its size. Taps observe the publication even when a
     * transport fault suppresses delivery — the publisher produced
     * the message; the wire lost it.
     *
     * Ownership: the message is *loaned* to the transport. In Loan
     * mode it moves into one immutable shared payload that every
     * subscriber borrows (zero per-subscriber copies; with exactly
     * one subscriber the move is the whole transfer). In Copy mode
     * — and for fault-duplicated deliveries, which model a second,
     * independent trip through the wire — each delivery gets a
     * private deep copy. Either way the caller's object is consumed:
     * touching it after publish is a bug (avlint: mutable-loan).
     */
    void
    publish(Message msg)
    {
        msg.header.seq = published_++;
        ++counters_.published;
        for (const Tap &tap : taps_)
            tap(msg);
        // Recorded before the fault consult, like the taps: the
        // publisher produced the message even if the wire loses it.
        if (recorder_)
            recorder_->recordPublish(
                traceTopic_, tracePublisher_, msg.header.seq,
                msg.header.stamp, msg.header.origins.lidar,
                msg.header.origins.camera, eq_.now());
        Disruption bad;
        if (faults_ && faults_->hasPoliciesFor(name_))
            bad = faults_->disruptionFor(name_, msg.header,
                                         eq_.now());
        if (bad.drop)
            return;
        const double bytes = static_cast<double>(msg.bytes);
        const sim::Tick delay =
            transport_.baseLatency +
            static_cast<sim::Tick>(bytes /
                                   transport_.bandwidthGBs) +
            bad.extraDelay;
        if (bad.corrupt) {
            // The bytes cross the wire but fail validation at the
            // receiver; schedule the arrival so event timing matches
            // a real mangled frame, then discard.
            eq_.scheduleAfter(delay, [] {});
            return;
        }
        if (subs_.empty())
            return;
        // Every subscriber of one publication sees the same arrival
        // tick, so the delivery stamp can live in the immutable
        // payload itself — set before the loan is sealed. Taps run
        // first: bags record messages at rest (arrival 0), exactly
        // as v1 did.
        msg.arrival = eq_.now() + delay;
        const unsigned copies = 1 + bad.duplicates;
        if (transport_.mode == TransportMode::Loan &&
            bad.duplicates == 0) {
            // Zero-copy path: seal the payload once (a move — for
            // a point cloud this steals the buffer) and loan it to
            // every subscriber.
            ++counters_.movedPublishes;
            MessagePtr<T> loan =
                std::make_shared<const Stamped<T>>(std::move(msg));
            for (Subscription<T> *sub : subs_) {
                ++counters_.deliveries;
                ++counters_.loanedDeliveries;
                scheduleDelivery(sub, loan, delay);
            }
            return;
        }
        for (Subscription<T> *sub : subs_) {
            for (unsigned i = 0; i < copies; ++i) {
                ++counters_.deliveries;
                ++counters_.payloadCopies;
                if (transport_.mode == TransportMode::Loan)
                    ++counters_.forcedCopies;
                scheduleDelivery(
                    sub, std::make_shared<const Stamped<T>>(msg),
                    delay);
            }
        }
    }

    std::vector<const SubscriptionBase *>
    subscribers() const override
    {
        std::vector<const SubscriptionBase *> out;
        for (const auto *s : subs_)
            out.push_back(s);
        return out;
    }

  private:
    void
    scheduleDelivery(Subscription<T> *sub, MessagePtr<T> msg,
                     sim::Tick delay)
    {
        eq_.scheduleAfter(delay,
                          [this, sub, msg = std::move(msg)] {
                              sub->deliver(msg, eq_.now());
                          });
    }

    sim::EventQueue &eq_;
    TransportConfig transport_;
    const TransportFaults *faults_;
    std::vector<Subscription<T> *> subs_;
    std::vector<Tap> taps_;
};

/** Handle for publishing to a topic. */
template <typename T>
class Publisher
{
  public:
    Publisher() = default;
    explicit Publisher(Topic<T> *topic) : topic_(topic) {}

    /** Publish @p data with explicit serialized size. */
    void
    publish(Header header, T data, std::size_t bytes)
    {
        AV_ASSERT(topic_, "publishing through a null Publisher");
        Stamped<T> msg;
        msg.header = std::move(header);
        msg.data = std::move(data);
        msg.bytes = bytes;
        topic_->publish(std::move(msg));
    }

    bool valid() const { return topic_ != nullptr; }
    const std::string &topicName() const { return topic_->name(); }

  private:
    Topic<T> *topic_ = nullptr;
};

/**
 * The middleware instance: topic registry + node registry, bound to
 * one Machine.
 */
class RosGraph
{
  public:
    explicit RosGraph(hw::Machine &machine,
                      const TransportConfig &transport =
                          TransportConfig());

    RosGraph(const RosGraph &) = delete;
    RosGraph &operator=(const RosGraph &) = delete;

    hw::Machine &machine() { return machine_; }
    sim::EventQueue &eventQueue() { return machine_.eventQueue(); }
    const TransportConfig &transport() const { return transport_; }

    /** Get-or-create the typed topic @p name. */
    template <typename T>
    Topic<T> &
    topic(const std::string &name)
    {
        auto it = topics_.find(name);
        if (it == topics_.end()) {
            auto created = std::make_unique<Topic<T>>(
                name, eventQueue(), transport_, &faults_);
            Topic<T> *raw = created.get();
            raw->setTraceRecorder(recorder_);
            topics_.emplace(name, std::move(created));
            return *raw;
        }
        auto *typed = dynamic_cast<Topic<T> *>(it->second.get());
        if (!typed)
            util::panic("topic '", name,
                        "' re-declared with a different type");
        return *typed;
    }

    /**
     * Create a Publisher for @p name. @p publisher, when given, is
     * the advertising node's name — the middleware records it so the
     * registered topology can be enumerated (topology.hh) and
     * cross-checked against avgraph's static extraction.
     */
    template <typename T>
    Publisher<T>
    advertise(const std::string &name,
              const std::string &publisher = {})
    {
        Topic<T> &t = topic<T>(name);
        t.recordAdvertiser(publisher);
        return Publisher<T>(&t);
    }

    /** All topics, for reporting. */
    std::vector<const TopicBase *> topics() const;

    /** Host-side payload accounting summed across all topics. */
    TransportCounters transportCounters() const;

    /** The named topic if it exists (type-erased), else nullptr. */
    TopicBase *findTopic(const std::string &name);

    /** All registered nodes. */
    const std::vector<Node *> &nodes() const { return nodes_; }

    /** The named node if registered, else nullptr. */
    Node *findNode(const std::string &name);

    /** Transport-fault hub every topic of this graph consults. */
    TransportFaults &faults() { return faults_; }

    /**
     * Attach @p recorder as the graph's single recording surface:
     * every existing and future topic feeds it. Pass nullptr to
     * detach. The recorder must outlive the graph's topics.
     */
    void setTraceRecorder(trace::Recorder *recorder);

    /** The attached recorder, or nullptr. */
    trace::Recorder *traceRecorder() const { return recorder_; }

    /**
     * Install runtime queue-depth overrides. Must be called before
     * the affected nodes subscribe; Node::subscribe consults
     * effectiveQueueDepth at subscription time.
     */
    void setQueueDepthOverrides(
        std::vector<QueueDepthOverride> overrides);

    const std::vector<QueueDepthOverride> &
    queueDepthOverrides() const
    {
        return queueOverrides_;
    }

    /**
     * The queue depth one (topic, node) subscription actually gets:
     * the last matching override, or the @p declared source literal.
     */
    std::size_t effectiveQueueDepth(const std::string &topic,
                                    const std::string &node,
                                    std::size_t declared) const;

    void registerNode(Node *node);
    void unregisterNode(Node *node);

  private:
    hw::Machine &machine_;
    TransportConfig transport_;
    TransportFaults faults_;
    std::map<std::string, std::unique_ptr<TopicBase>> topics_;
    std::vector<Node *> nodes_;
    trace::Recorder *recorder_ = nullptr;
    std::vector<QueueDepthOverride> queueOverrides_;
};

// Node template methods -------------------------------------------------

template <typename T>
void
Node::subscribe(const std::string &topic_name, std::size_t queue_depth,
                Handler<T> handler)
{
    const std::size_t depth =
        graph_.effectiveQueueDepth(topic_name, name_, queue_depth);
    auto sub = std::make_unique<Subscription<T>>(
        topic_name, this, depth, std::move(handler));
    graph_.topic<T>(topic_name).addSubscriber(sub.get());
    subs_.push_back(std::move(sub));
}

// Subscription template methods ------------------------------------------

template <typename T>
void
Subscription<T>::recordDeliver(std::uint64_t seq, sim::Tick arrival)
{
    trace::Recorder *rec = node_->graph().traceRecorder();
    if (!rec || !rec->enabled())
        return;
    rec->recordDeliver(rec->intern(topicName_),
                       rec->intern(node_->name()), seq, arrival);
}

} // namespace av::ros

#endif // AVSCOPE_ROS_ROS_HH
