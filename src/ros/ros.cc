#include "ros/ros.hh"

#include <algorithm>

namespace av::ros {

Origins
Origins::merged(const Origins &o) const
{
    Origins out = *this;
    if (o.lidar && (!out.lidar || o.lidar < out.lidar))
        out.lidar = o.lidar;
    if (o.camera && (!out.camera || o.camera < out.camera))
        out.camera = o.camera;
    return out;
}

const char *
transportModeName(TransportMode mode)
{
    switch (mode) {
    case TransportMode::Copy:
        return "copy";
    case TransportMode::Loan:
        return "loan";
    }
    util::panic("unknown TransportMode");
}

bool
transportModeFromName(const std::string &name, TransportMode &out)
{
    if (name == "copy") {
        out = TransportMode::Copy;
        return true;
    }
    if (name == "loan") {
        out = TransportMode::Loan;
        return true;
    }
    return false;
}

void
TransportFaults::addPolicy(const std::string &topic, Policy policy)
{
    policies_[topic].push_back(std::move(policy));
}

Disruption
TransportFaults::disruptionFor(const std::string &topic,
                               const Header &header,
                               sim::Tick now) const
{
    Disruption out;
    auto it = policies_.find(topic);
    if (it == policies_.end())
        return out;
    for (const Policy &policy : it->second) {
        const Disruption d = policy(header, now);
        out.drop = out.drop || d.drop;
        out.corrupt = out.corrupt || d.corrupt;
        out.extraDelay += d.extraDelay;
        out.duplicates += d.duplicates;
    }
    return out;
}

Node::Node(RosGraph &graph, std::string name)
    : graph_(graph), name_(std::move(name))
{
    graph_.registerNode(this);
}

Node::~Node()
{
    graph_.unregisterNode(this);
}

void
Node::crash()
{
    if (down_)
        return;
    down_ = true;
    for (const auto &sub : subs_)
        sub->clearPending();
}

void
Node::respawn()
{
    if (!down_)
        return;
    down_ = false;
    onRespawn();
    tryDispatch();
}

void
Node::tryDispatch()
{
    if (busy_ || down_)
        return;
    SubscriptionBase *best = nullptr;
    for (const auto &sub : subs_) {
        if (!sub->hasPending())
            continue;
        if (!best || sub->headArrival() < best->headArrival())
            best = sub.get();
    }
    if (!best)
        return;
    trace::Recorder *rec = graph_.traceRecorder();
    if (rec && rec->enabled()) {
        // The activation span opens at dispatch and closes when the
        // handler's simulated execution calls done(). The Span rides
        // in a shared_ptr because done() is a copyable std::function
        // and the span handle is move-only.
        auto span =
            std::make_shared<trace::Span>(rec->beginActivation(
                rec->intern(name_), rec->intern(best->topicName()),
                best->headSeq(), best->headArrival(),
                graph_.eventQueue().now()));
        busy_ = true;
        best->dispatchHead([this, span] {
            AV_ASSERT(busy_,
                      "done() called while node idle: ", name_);
            span->end(graph_.eventQueue().now());
            busy_ = false;
            tryDispatch();
        });
        return;
    }
    busy_ = true;
    best->dispatchHead([this] {
        AV_ASSERT(busy_, "done() called while node idle: ", name_);
        busy_ = false;
        tryDispatch();
    });
}

RosGraph::RosGraph(hw::Machine &machine,
                   const TransportConfig &transport)
    : machine_(machine), transport_(transport)
{
}

std::vector<const TopicBase *>
RosGraph::topics() const
{
    std::vector<const TopicBase *> out;
    out.reserve(topics_.size());
    for (const auto &[name, topic] : topics_)
        out.push_back(topic.get());
    return out;
}

TransportCounters
RosGraph::transportCounters() const
{
    TransportCounters out;
    for (const auto &[name, topic] : topics_)
        out.add(topic->transportCounters());
    return out;
}

void
RosGraph::setTraceRecorder(trace::Recorder *recorder)
{
    recorder_ = recorder;
    for (const auto &[name, topic] : topics_)
        topic->setTraceRecorder(recorder);
}

void
RosGraph::setQueueDepthOverrides(
    std::vector<QueueDepthOverride> overrides)
{
    queueOverrides_ = std::move(overrides);
}

std::size_t
RosGraph::effectiveQueueDepth(const std::string &topic,
                              const std::string &node,
                              std::size_t declared) const
{
    std::size_t depth = declared;
    for (const QueueDepthOverride &o : queueOverrides_) {
        if (o.topic == topic && o.node == node)
            depth = o.depth;
    }
    return depth;
}

TopicBase *
RosGraph::findTopic(const std::string &name)
{
    auto it = topics_.find(name);
    return it == topics_.end() ? nullptr : it->second.get();
}

Node *
RosGraph::findNode(const std::string &name)
{
    for (Node *n : nodes_) {
        if (n->name() == name)
            return n;
    }
    return nullptr;
}

void
RosGraph::registerNode(Node *node)
{
    for (const Node *n : nodes_) {
        if (n->name() == node->name())
            util::panic("duplicate node name: ", node->name());
    }
    nodes_.push_back(node);
}

void
RosGraph::unregisterNode(Node *node)
{
    nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node),
                 nodes_.end());
}

} // namespace av::ros
