#include "ros/ros.hh"

#include <algorithm>

namespace av::ros {

Origins
Origins::merged(const Origins &o) const
{
    Origins out = *this;
    if (o.lidar && (!out.lidar || o.lidar < out.lidar))
        out.lidar = o.lidar;
    if (o.camera && (!out.camera || o.camera < out.camera))
        out.camera = o.camera;
    return out;
}

Node::Node(RosGraph &graph, std::string name)
    : graph_(graph), name_(std::move(name))
{
    graph_.registerNode(this);
}

Node::~Node()
{
    graph_.unregisterNode(this);
}

void
Node::tryDispatch()
{
    if (busy_)
        return;
    SubscriptionBase *best = nullptr;
    for (const auto &sub : subs_) {
        if (!sub->hasPending())
            continue;
        if (!best || sub->headArrival() < best->headArrival())
            best = sub.get();
    }
    if (!best)
        return;
    busy_ = true;
    best->dispatchHead([this] {
        AV_ASSERT(busy_, "done() called while node idle: ", name_);
        busy_ = false;
        tryDispatch();
    });
}

RosGraph::RosGraph(hw::Machine &machine,
                   const TransportConfig &transport)
    : machine_(machine), transport_(transport)
{
}

std::vector<const TopicBase *>
RosGraph::topics() const
{
    std::vector<const TopicBase *> out;
    out.reserve(topics_.size());
    for (const auto &[name, topic] : topics_)
        out.push_back(topic.get());
    return out;
}

void
RosGraph::registerNode(Node *node)
{
    for (const Node *n : nodes_) {
        if (n->name() == node->name())
            util::panic("duplicate node name: ", node->name());
    }
    nodes_.push_back(node);
}

void
RosGraph::unregisterNode(Node *node)
{
    nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node),
                 nodes_.end());
}

} // namespace av::ros
