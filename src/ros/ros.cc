#include "ros/ros.hh"

#include <algorithm>

namespace av::ros {

Origins
Origins::merged(const Origins &o) const
{
    Origins out = *this;
    if (o.lidar && (!out.lidar || o.lidar < out.lidar))
        out.lidar = o.lidar;
    if (o.camera && (!out.camera || o.camera < out.camera))
        out.camera = o.camera;
    return out;
}

const char *
transportModeName(TransportMode mode)
{
    switch (mode) {
    case TransportMode::Copy:
        return "copy";
    case TransportMode::Loan:
        return "loan";
    }
    util::panic("unknown TransportMode");
}

bool
transportModeFromName(const std::string &name, TransportMode &out)
{
    if (name == "copy") {
        out = TransportMode::Copy;
        return true;
    }
    if (name == "loan") {
        out = TransportMode::Loan;
        return true;
    }
    return false;
}

void
TransportFaults::addPolicy(const std::string &topic, Policy policy)
{
    policies_[topic].push_back(std::move(policy));
}

Disruption
TransportFaults::disruptionFor(const std::string &topic,
                               const Header &header,
                               sim::Tick now) const
{
    Disruption out;
    auto it = policies_.find(topic);
    if (it == policies_.end())
        return out;
    for (const Policy &policy : it->second) {
        const Disruption d = policy(header, now);
        out.drop = out.drop || d.drop;
        out.corrupt = out.corrupt || d.corrupt;
        out.extraDelay += d.extraDelay;
        out.duplicates += d.duplicates;
    }
    return out;
}

Node::Node(RosGraph &graph, std::string name)
    : graph_(graph), name_(std::move(name))
{
    graph_.registerNode(this);
}

Node::~Node()
{
    graph_.unregisterNode(this);
}

void
Node::crash()
{
    if (down_)
        return;
    down_ = true;
    for (const auto &sub : subs_)
        sub->clearPending();
}

void
Node::respawn()
{
    if (!down_)
        return;
    down_ = false;
    onRespawn();
    tryDispatch();
}

void
Node::tryDispatch()
{
    if (busy_ || down_)
        return;
    SubscriptionBase *best = nullptr;
    for (const auto &sub : subs_) {
        if (!sub->hasPending())
            continue;
        if (!best || sub->headArrival() < best->headArrival())
            best = sub.get();
    }
    if (!best)
        return;
    busy_ = true;
    best->dispatchHead([this] {
        AV_ASSERT(busy_, "done() called while node idle: ", name_);
        busy_ = false;
        tryDispatch();
    });
}

RosGraph::RosGraph(hw::Machine &machine,
                   const TransportConfig &transport)
    : machine_(machine), transport_(transport)
{
}

std::vector<const TopicBase *>
RosGraph::topics() const
{
    std::vector<const TopicBase *> out;
    out.reserve(topics_.size());
    for (const auto &[name, topic] : topics_)
        out.push_back(topic.get());
    return out;
}

TransportCounters
RosGraph::transportCounters() const
{
    TransportCounters out;
    for (const auto &[name, topic] : topics_)
        out.add(topic->transportCounters());
    return out;
}

TopicBase *
RosGraph::findTopic(const std::string &name)
{
    auto it = topics_.find(name);
    return it == topics_.end() ? nullptr : it->second.get();
}

Node *
RosGraph::findNode(const std::string &name)
{
    for (Node *n : nodes_) {
        if (n->name() == name)
            return n;
    }
    return nullptr;
}

void
RosGraph::registerNode(Node *node)
{
    for (const Node *n : nodes_) {
        if (n->name() == node->name())
            util::panic("duplicate node name: ", node->name());
    }
    nodes_.push_back(node);
}

void
RosGraph::unregisterNode(Node *node)
{
    nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node),
                 nodes_.end());
}

} // namespace av::ros
