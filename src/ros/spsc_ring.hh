/**
 * @file
 * Lock-free bounded single-producer/single-consumer ring with
 * drop-oldest overflow — the v2 hot-path queue behind every
 * Subscription (DESIGN.md §12).
 *
 * The structure is the classic sequence-stamped bounded queue
 * (Vyukov): each cell carries an atomic sequence number that hands
 * the cell back and forth between producer and consumer, so an
 * enqueue and a dequeue never touch the same cell without an
 * acquire/release edge between them. On top of that the ring
 * enforces a *logical* capacity (the subscription's queue depth,
 * which need not be a power of two) with the same drop-oldest
 * semantics the paper's Table III counts: when a push would exceed
 * the depth, the oldest entry is popped and discarded first.
 *
 * Within one simulated drive the ring is only ever touched from the
 * event-loop thread, where its behaviour is exactly the old
 * std::deque path (bit-for-bit: same drops, same order) minus the
 * per-node allocations. The lock-free protocol is what lets probes,
 * watchdogs or future multi-process shims observe queues from other
 * threads without a mutex on the hot path; tests/ros stress it with
 * a real producer/consumer thread pair under TSan.
 */

#ifndef AVSCOPE_ROS_SPSC_RING_HH
#define AVSCOPE_ROS_SPSC_RING_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace av::ros {

template <typename T>
class SpscRing
{
  public:
    /** @param capacity logical bound (> 0); storage rounds up to a
     *  power of two internally. */
    explicit SpscRing(std::size_t capacity)
        : capacity_(capacity)
    {
        AV_ASSERT(capacity > 0, "ring capacity must be positive");
        std::size_t physical = 1;
        while (physical < capacity)
            physical <<= 1;
        cells_ = std::vector<Cell>(physical);
        mask_ = physical - 1;
        for (std::size_t i = 0; i < physical; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return capacity_; }

    /**
     * Producer: append @p value unless the ring already holds
     * capacity() entries. @p value is moved from only on success.
     */
    bool
    tryPush(T &value)
    {
        if (size() >= capacity_)
            return false;
        return enqueue(value);
    }

    /**
     * Producer: append @p value, discarding oldest entries as needed
     * to respect the logical capacity.
     * @return the number of entries discarded (0 when there was room).
     */
    std::size_t
    pushDropOldest(T value)
    {
        std::size_t dropped = 0;
        while (size() >= capacity_) {
            T junk;
            if (!dequeue(&junk))
                break; // consumer drained it concurrently
            ++dropped;
        }
        while (!enqueue(value)) {
            // Physically full (concurrent consumer raced the size
            // check): make room the same drop-oldest way.
            T junk;
            if (dequeue(&junk))
                ++dropped;
        }
        return dropped;
    }

    /** Consumer: move the oldest entry into @p out. */
    bool pop(T *out) { return dequeue(out); }

    /**
     * Consumer: the oldest entry, or nullptr when empty. Only the
     * (single) consumer may hold this pointer, and only until its
     * next pop()/clear().
     */
    const T *
    peek() const
    {
        const std::uint64_t pos =
            head_.load(std::memory_order_relaxed);
        const Cell &cell = cells_[pos & mask_];
        if (cell.seq.load(std::memory_order_acquire) != pos + 1)
            return nullptr;
        return &cell.value;
    }

    /** Consumer: discard everything; @return entries discarded. */
    std::size_t
    clear()
    {
        std::size_t n = 0;
        T junk;
        while (dequeue(&junk))
            ++n;
        return n;
    }

    bool empty() const { return size() == 0; }

    /** Entries currently queued (exact when quiescent; a snapshot
     *  under concurrent access). */
    std::size_t
    size() const
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_acquire);
        const std::uint64_t head =
            head_.load(std::memory_order_acquire);
        if (tail <= head)
            return 0;
        const std::uint64_t used = tail - head;
        return used > cells_.size() ? cells_.size()
                                    : static_cast<std::size_t>(used);
    }

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> seq{0};
        T value{};
    };

    bool
    enqueue(T &value)
    {
        std::uint64_t pos = tail_.load(std::memory_order_relaxed);
        Cell *cell = nullptr;
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::uint64_t seq =
                cell->seq.load(std::memory_order_acquire);
            const auto dif =
                static_cast<std::int64_t>(seq - pos);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // physically full
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->seq.store(pos + 1, std::memory_order_release);
        return true;
    }

    bool
    dequeue(T *out)
    {
        std::uint64_t pos = head_.load(std::memory_order_relaxed);
        Cell *cell = nullptr;
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::uint64_t seq =
                cell->seq.load(std::memory_order_acquire);
            const auto dif =
                static_cast<std::int64_t>(seq - (pos + 1));
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        *out = std::move(cell->value);
        cell->seq.store(pos + mask_ + 1,
                        std::memory_order_release);
        return true;
    }

    std::size_t capacity_;
    std::size_t mask_ = 0;
    std::vector<Cell> cells_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace av::ros

#endif // AVSCOPE_ROS_SPSC_RING_HH
