/**
 * @file
 * Canonical enumeration of the registered pub/sub graph.
 */

#include "ros/topology.hh"

#include <algorithm>

#include "ros/ros.hh"

namespace av::ros {

TopologySnapshot
topologySnapshot(const RosGraph &graph)
{
    TopologySnapshot snap;
    for (const Node *node : graph.nodes())
        snap.nodes.push_back(node->name());
    std::sort(snap.nodes.begin(), snap.nodes.end());

    for (const TopicBase *topic : graph.topics()) {
        TopologyTopic t;
        t.name = topic->name();
        t.advertisers = topic->advertisers();
        std::sort(t.advertisers.begin(), t.advertisers.end());
        snap.topics.push_back(std::move(t));
        for (const SubscriptionBase *sub : topic->subscribers())
            snap.edges.push_back(TopologyEdge{topic->name(),
                                              sub->node()->name(),
                                              sub->queueDepth()});
    }
    std::sort(snap.topics.begin(), snap.topics.end(),
              [](const TopologyTopic &a, const TopologyTopic &b) {
                  return a.name < b.name;
              });
    std::sort(snap.edges.begin(), snap.edges.end(),
              [](const TopologyEdge &a, const TopologyEdge &b) {
                  if (a.topic != b.topic)
                      return a.topic < b.topic;
                  return a.subscriber < b.subscriber;
              });
    return snap;
}

} // namespace av::ros
