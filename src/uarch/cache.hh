/**
 * @file
 * Set-associative cache model.
 *
 * Stands in for the PAPI L1 counters of the paper's Table VII. Fed
 * with the (sampled) address streams that the instrumented perception
 * algorithms emit, it measures read/write miss rates that reflect the
 * algorithms' real data layouts: kd-tree chasing in
 * euclidean_cluster shows poor locality, the costmap's sequential
 * grid writes show almost none.
 */

#ifndef AVSCOPE_UARCH_CACHE_HH
#define AVSCOPE_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

namespace av::uarch {

/** Geometry of one cache level. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 8;
    std::uint32_t lineBytes = 64;
};

/** Hit/miss counters split by access type. */
struct CacheStats
{
    std::uint64_t readHits = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writeHits = 0;
    std::uint64_t writeMisses = 0;

    double readMissRate() const;
    double writeMissRate() const;
    std::uint64_t accesses() const
    {
        return readHits + readMisses + writeHits + writeMisses;
    }
    std::uint64_t misses() const { return readMisses + writeMisses; }

    CacheStats &operator+=(const CacheStats &o);
};

/**
 * A single-level, write-allocate, LRU, set-associative cache.
 */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config = CacheConfig());

    /**
     * Simulate one access covering [addr, addr + bytes). Accesses
     * spanning line boundaries touch every covered line.
     */
    void access(std::uintptr_t addr, std::uint32_t bytes, bool is_write);

    /** Convenience wrappers. */
    void read(std::uintptr_t addr, std::uint32_t bytes)
    { access(addr, bytes, false); }
    void write(std::uintptr_t addr, std::uint32_t bytes)
    { access(addr, bytes, true); }

    /**
     * Credit @p n guaranteed hits without simulating them. Used by
     * instrumented algorithms for the register-adjacent / hot-stack
     * accesses that always hit, so traced miss *rates* stay
     * proportional to the real access population.
     */
    void
    creditHits(std::uint64_t n, bool is_write)
    {
        if (is_write)
            stats_.writeHits += n;
        else
            stats_.readHits += n;
    }

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    /** Number of sets. */
    std::uint32_t numSets() const { return numSets_; }

    /** Drop all cached lines and zero the statistics. */
    void reset();

    /** Zero the statistics, keep cache contents warm. */
    void resetStats() { stats_ = CacheStats(); }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major
    CacheStats stats_;
    std::uint64_t useClock_ = 0;

    bool lookupInsert(std::uint64_t line_addr);
};

} // namespace av::uarch

#endif // AVSCOPE_UARCH_CACHE_HH
