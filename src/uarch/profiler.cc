#include "uarch/profiler.hh"

#include "util/logging.hh"

namespace av::uarch {

namespace {
constexpr double ewmaAlpha = 0.2;
}

NodeArchState::NodeArchState(const CacheConfig &cache,
                             const BranchConfig &branch,
                             const PipelineConfig &pipe,
                             std::uint32_t trace_period)
    : l1d_(cache), bp_(branch), pipe_(pipe),
      tracePeriod_(trace_period ? trace_period : 1)
{
}

void
NodeArchState::beginInvocation()
{
    AV_ASSERT(!inInvocation_, "nested invocation on NodeArchState");
    inInvocation_ = true;
    tracing_ = (invocations_ % tracePeriod_) == 0;
    ++invocations_;
    invOps_ = OpCounts();
    cacheAtBegin_ = l1d_.stats();
    branchAtBegin_ = bp_.stats();
}

InvocationCost
NodeArchState::endInvocation()
{
    AV_ASSERT(inInvocation_, "endInvocation without beginInvocation");
    inInvocation_ = false;

    if (tracing_) {
        // Per-invocation deltas of the trace-driven simulators.
        const CacheStats &c = l1d_.stats();
        const BranchStats &b = bp_.stats();
        const std::uint64_t rd =
            (c.readHits + c.readMisses) -
            (cacheAtBegin_.readHits + cacheAtBegin_.readMisses);
        const std::uint64_t wr =
            (c.writeHits + c.writeMisses) -
            (cacheAtBegin_.writeHits + cacheAtBegin_.writeMisses);
        const std::uint64_t br = b.total() - branchAtBegin_.total();
        if (rd > 0) {
            const double rate =
                static_cast<double>(c.readMisses -
                                    cacheAtBegin_.readMisses) /
                static_cast<double>(rd);
            ewmaReadMiss_ += ewmaAlpha * (rate - ewmaReadMiss_);
        }
        if (wr > 0) {
            const double rate =
                static_cast<double>(c.writeMisses -
                                    cacheAtBegin_.writeMisses) /
                static_cast<double>(wr);
            ewmaWriteMiss_ += ewmaAlpha * (rate - ewmaWriteMiss_);
        }
        if (br > 0) {
            const double rate =
                static_cast<double>(b.mispredicted -
                                    branchAtBegin_.mispredicted) /
                static_cast<double>(br);
            ewmaBranchMiss_ += ewmaAlpha * (rate - ewmaBranchMiss_);
        }
        tracing_ = false;
    }

    InvocationCost cost;
    cost.ops = invOps_;
    cost.l1ReadMissRate = ewmaReadMiss_;
    cost.l1WriteMissRate = ewmaWriteMiss_;
    cost.branchMissRate = ewmaBranchMiss_;
    cost.cycles = pipe_.cycles(invOps_, ewmaReadMiss_, ewmaWriteMiss_,
                               ewmaBranchMiss_);
    cost.dramBytes =
        (ewmaReadMiss_ * static_cast<double>(invOps_.loads) +
         ewmaWriteMiss_ * static_cast<double>(invOps_.stores)) *
        static_cast<double>(l1d_.config().lineBytes) *
        pipe_.config().l2MissFactor;

    totalOps_ += invOps_;
    totalCycles_ += cost.cycles;
    return cost;
}

double
NodeArchState::lifetimeIpc() const
{
    if (totalCycles_ <= 0.0)
        return 0.0;
    return static_cast<double>(totalOps_.total()) / totalCycles_;
}

} // namespace av::uarch
