/**
 * @file
 * Gshare branch predictor model.
 *
 * Stands in for the PAPI branch-misprediction counters of Table VII.
 * Instrumented algorithms report the outcome of their *data-dependent*
 * branches (the compare inside SSD's output-layer sort, kd-tree
 * descent direction, clustering frontier tests); loop back-edges and
 * other trivially predictable branches are reported in bulk as
 * predictable so they dilute the rate exactly as a real predictor
 * would absorb them.
 */

#ifndef AVSCOPE_UARCH_BRANCH_HH
#define AVSCOPE_UARCH_BRANCH_HH

#include <cstdint>
#include <vector>

namespace av::uarch {

/** Predictor sizing. */
struct BranchConfig
{
    std::uint32_t tableBits = 12;   ///< 4K two-bit counters
    std::uint32_t historyBits = 12; ///< global history length
};

/** Outcome counters. */
struct BranchStats
{
    std::uint64_t predicted = 0;
    std::uint64_t mispredicted = 0;

    std::uint64_t total() const { return predicted + mispredicted; }
    double missRate() const
    {
        return total() ? static_cast<double>(mispredicted) /
                             static_cast<double>(total())
                       : 0.0;
    }
    BranchStats &operator+=(const BranchStats &o)
    {
        predicted += o.predicted;
        mispredicted += o.mispredicted;
        return *this;
    }
};

/**
 * Classic gshare: global history XOR branch site indexes a table of
 * two-bit saturating counters.
 */
class GsharePredictor
{
  public:
    explicit GsharePredictor(const BranchConfig &config = BranchConfig());

    /**
     * Record one dynamic branch.
     * @param site  static identity of the branch (any stable value)
     * @param taken actual outcome
     * @return true when the prediction was correct
     */
    bool record(std::uint64_t site, bool taken);

    /**
     * Record @p count statically well-behaved branches (loop
     * back-edges and similar) without simulating them individually;
     * they count as predicted with probability @p accuracy.
     */
    void recordBulkPredictable(std::uint64_t count,
                               double accuracy = 0.999);

    const BranchStats &stats() const { return stats_; }

    void reset();
    void resetStats() { stats_ = BranchStats(); }

  private:
    BranchConfig config_;
    std::vector<std::uint8_t> table_; ///< 2-bit counters
    std::uint32_t history_ = 0;
    std::uint32_t historyMask_;
    std::uint32_t tableMask_;
    BranchStats stats_;
    // Deterministic fractional accounting of bulk accuracy.
    double bulkResidual_ = 0.0;
};

} // namespace av::uarch

#endif // AVSCOPE_UARCH_BRANCH_HH
