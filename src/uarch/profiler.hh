/**
 * @file
 * Instrumentation interface between algorithms and the µarch models.
 *
 * Perception algorithms are written once, against KernelProfiler, and
 * run in two modes:
 *
 *  - detached (null state): every probe is a no-op; the algorithm is
 *    a plain library function (used by unit tests and by downstream
 *    users who only want the functionality);
 *  - attached (NodeArchState): bulk op counts accumulate always, and
 *    on *traced* invocations the reported addresses / branch outcomes
 *    additionally drive the cache and branch-predictor simulators, so
 *    miss rates reflect the real data structures the algorithm
 *    touched (the paper's PAPI/valgrind step, §III-B).
 *
 * Convention: addOps() supplies the dynamic instruction counts;
 * load()/store()/branch() supply *behaviour* (addresses, outcomes)
 * and do not count instructions, so instrumenting only the hot loop
 * never double-counts.
 */

#ifndef AVSCOPE_UARCH_PROFILER_HH
#define AVSCOPE_UARCH_PROFILER_HH

#include <cstdint>
#include <string>

#include "uarch/branch.hh"
#include "uarch/cache.hh"
#include "uarch/opcounts.hh"
#include "uarch/pipeline.hh"

namespace av::uarch {

/** Cost of one node invocation, derived by NodeArchState. */
struct InvocationCost
{
    OpCounts ops;          ///< dynamic instructions this invocation
    double cycles = 0.0;   ///< pipeline-model cycle estimate
    double dramBytes = 0.0;///< estimated traffic past L1 (miss * line)
    double l1ReadMissRate = 0.0;
    double l1WriteMissRate = 0.0;
    double branchMissRate = 0.0;
};

/**
 * Persistent per-node microarchitectural state: one L1D, one branch
 * predictor, cumulative counters. Lives as long as the node so caches
 * stay warm across invocations, like a real pinned process.
 */
class NodeArchState
{
  public:
    /**
     * @param trace_period simulate traces on every Nth invocation
     *                     (1 = always); others reuse the EWMA rates
     */
    explicit NodeArchState(const CacheConfig &cache = CacheConfig(),
                           const BranchConfig &branch = BranchConfig(),
                           const PipelineConfig &pipe = PipelineConfig(),
                           std::uint32_t trace_period = 2);

    /** Start an invocation; decides whether this one is traced. */
    void beginInvocation();

    /** Finish and cost the invocation started last. */
    InvocationCost endInvocation();

    /** True while inside a traced invocation. */
    bool tracing() const { return tracing_; }

    /** Cumulative mix across all invocations (Fig. 7). */
    const OpCounts &totalOps() const { return totalOps_; }

    /** Lifetime cache statistics over traced invocations. */
    const CacheStats &cacheStats() const { return l1d_.stats(); }

    /** Lifetime branch statistics over traced invocations. */
    const BranchStats &branchStats() const { return bp_.stats(); }

    /** Smoothed L1 read miss rate currently in effect. */
    double ewmaReadMiss() const { return ewmaReadMiss_; }
    double ewmaWriteMiss() const { return ewmaWriteMiss_; }
    double ewmaBranchMiss() const { return ewmaBranchMiss_; }

    /** Average IPC over everything recorded so far. */
    double lifetimeIpc() const;

    /**
     * Expansion factor applied to every recorded op count.
     * Calibrates abstract algorithm operations to the machine
     * instructions a real (PCL/OpenCV-based) implementation
     * executes, and folds in the sensor-density scaling documented
     * in DESIGN.md.
     */
    void setOpScale(double scale) { opScale_ = scale; }
    double opScale() const { return opScale_; }

    // Interface used by KernelProfiler -------------------------------
    void
    recordOps(const OpCounts &ops)
    {
        if (opScale_ == 1.0) {
            invOps_ += ops;
            return;
        }
        OpCounts scaled;
        scaled.loads = static_cast<std::uint64_t>(
            static_cast<double>(ops.loads) * opScale_);
        scaled.stores = static_cast<std::uint64_t>(
            static_cast<double>(ops.stores) * opScale_);
        scaled.branches = static_cast<std::uint64_t>(
            static_cast<double>(ops.branches) * opScale_);
        scaled.intAlu = static_cast<std::uint64_t>(
            static_cast<double>(ops.intAlu) * opScale_);
        scaled.fpAlu = static_cast<std::uint64_t>(
            static_cast<double>(ops.fpAlu) * opScale_);
        scaled.fpDiv = static_cast<std::uint64_t>(
            static_cast<double>(ops.fpDiv) * opScale_);
        scaled.simd = static_cast<std::uint64_t>(
            static_cast<double>(ops.simd) * opScale_);
        scaled.other = static_cast<std::uint64_t>(
            static_cast<double>(ops.other) * opScale_);
        invOps_ += scaled;
    }
    void recordLoad(std::uintptr_t addr, std::uint32_t bytes)
    { l1d_.read(addr, bytes); }
    void recordStore(std::uintptr_t addr, std::uint32_t bytes)
    { l1d_.write(addr, bytes); }
    void recordHotLoads(std::uint64_t n) { l1d_.creditHits(n, false); }
    void recordHotStores(std::uint64_t n) { l1d_.creditHits(n, true); }
    void recordBranch(std::uint64_t site, bool taken)
    { bp_.record(site, taken); }
    void recordBulkBranches(std::uint64_t count)
    { bp_.recordBulkPredictable(count); }

    const PipelineModel &pipeline() const { return pipe_; }

  private:
    CacheModel l1d_;
    GsharePredictor bp_;
    PipelineModel pipe_;
    std::uint32_t tracePeriod_;
    std::uint64_t invocations_ = 0;
    bool tracing_ = false;
    bool inInvocation_ = false;

    OpCounts invOps_;
    OpCounts totalOps_;
    double totalCycles_ = 0.0;

    // Snapshot of sim stats at beginInvocation for per-invocation
    // deltas.
    CacheStats cacheAtBegin_;
    BranchStats branchAtBegin_;

    double ewmaReadMiss_ = 0.01;
    double ewmaWriteMiss_ = 0.01;
    double ewmaBranchMiss_ = 0.01;
    double opScale_ = 1.0;
};

/**
 * The handle algorithms receive. Copyable, cheap, possibly detached.
 */
class KernelProfiler
{
  public:
    /** Detached profiler: all probes are no-ops. */
    KernelProfiler() = default;

    /** Attached profiler feeding @p state. */
    explicit KernelProfiler(NodeArchState *state) : state_(state) {}

    /** True when address/branch probes should be emitted. */
    bool
    tracing() const
    {
        return state_ != nullptr && state_->tracing();
    }

    /** Bulk dynamic-instruction accounting (always honoured). */
    void
    addOps(const OpCounts &ops)
    {
        if (state_)
            state_->recordOps(ops);
    }

    /**
     * Identifier of one logical data region inside a node's probe
     * address space — an input cloud, an output buffer, a tree's
     * node pool. Distinct regions never alias. Instrumented
     * algorithms that can feed the same NodeArchState must use
     * disjoint ids; each translation unit owns a block of eight:
     * dnn/cost.cc 1-7, pointcloud/kdtree.cc 8-15,
     * pointcloud/voxel_grid.cc 16-23,
     * perception/euclidean_cluster.cc 24-31,
     * perception/imm_ukf_pda.cc 32-39,
     * perception/motion_predict.cc 40-47, perception/ndt.cc 48-55,
     * perception/costmap.cc 56-63,
     * perception/ray_ground_filter.cc 64-71.
     */
    using Region = std::uint32_t;

    /**
     * Report a (sampled) data load at byte @p offset of @p region.
     *
     * Probes address a *logical* space, never host pointers: the
     * host allocator's layout differs run to run (co-location,
     * chunk reuse, alignment), which would make modelled miss
     * rates — and every latency derived from them —
     * nondeterministic. Offsets derived from indices, keys or
     * cursors carry exactly the locality the model needs
     * (sequential scans stay sequential, pointer chasing stays
     * scattered) while keeping replays bit-identical.
     */
    void
    load(Region region, std::uint64_t offset, std::uint32_t bytes)
    {
        if (tracing())
            state_->recordLoad(logicalAddr(region, offset), bytes);
    }

    /** Report a (sampled) data store at @p offset of @p region. */
    void
    store(Region region, std::uint64_t offset, std::uint32_t bytes)
    {
        if (tracing())
            state_->recordStore(logicalAddr(region, offset), bytes);
    }

    /** Report a data-dependent branch outcome. */
    void
    branch(std::uint64_t site, bool taken)
    {
        if (tracing())
            state_->recordBranch(site, taken);
    }

    /**
     * Report @p n loads that are guaranteed L1 hits (hot locals,
     * just-touched data). Keeps traced miss rates representative.
     */
    void
    hotLoads(std::uint64_t n)
    {
        if (tracing())
            state_->recordHotLoads(n);
    }

    /** Report @p n guaranteed-hit stores. */
    void
    hotStores(std::uint64_t n)
    {
        if (tracing())
            state_->recordHotStores(n);
    }

    /** Report @p count trivially predictable branches. */
    void
    bulkBranches(std::uint64_t count)
    {
        if (tracing())
            state_->recordBulkBranches(count);
    }

    /** Attached at all? */
    bool attached() const { return state_ != nullptr; }

  private:
    /**
     * Region bases are staggered by an odd number of cache lines so
     * the regions of one node do not all map to set 0.
     */
    static constexpr std::uintptr_t
    logicalAddr(Region region, std::uint64_t offset)
    {
        return (std::uintptr_t{region} << 40) +
               std::uintptr_t{region} * (11 * 64) + offset;
    }

    NodeArchState *state_ = nullptr;
};

} // namespace av::uarch

#endif // AVSCOPE_UARCH_PROFILER_HH
