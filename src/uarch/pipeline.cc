#include "uarch/pipeline.hh"

#include <algorithm>

namespace av::uarch {

double
PipelineModel::cpi(const OpCounts &ops, double l1_read_miss,
                   double l1_write_miss, double br_miss) const
{
    const double total = static_cast<double>(ops.total());
    if (total <= 0.0)
        return 1.0 / config_.peakIpc;

    const double load_frac = static_cast<double>(ops.loads) / total;
    const double store_frac = static_cast<double>(ops.stores) / total;
    const double branch_frac =
        static_cast<double>(ops.branches) / total;
    const double div_frac = static_cast<double>(ops.fpDiv) / total;
    const double simd_frac = static_cast<double>(ops.simd) / total;

    double cpi = 1.0 / config_.peakIpc;
    cpi += (load_frac + store_frac) * config_.memIssueCost;
    cpi += load_frac * l1_read_miss * config_.readMissPenalty;
    cpi += store_frac * l1_write_miss * config_.writeMissPenalty;
    cpi += branch_frac * br_miss * config_.flushPenalty;
    cpi += div_frac * config_.divExtraLatency;
    cpi -= simd_frac * config_.simdBonus / config_.peakIpc;
    return std::max(cpi, 1.0 / (2.0 * config_.peakIpc));
}

double
PipelineModel::cycles(const OpCounts &ops, double l1_read_miss,
                      double l1_write_miss, double br_miss) const
{
    return cpi(ops, l1_read_miss, l1_write_miss, br_miss) *
           static_cast<double>(ops.total());
}

} // namespace av::uarch
