#include "uarch/opcounts.hh"

#include <sstream>

namespace av::uarch {

OpCounts &
OpCounts::operator+=(const OpCounts &o)
{
    loads += o.loads;
    stores += o.stores;
    branches += o.branches;
    intAlu += o.intAlu;
    fpAlu += o.fpAlu;
    fpDiv += o.fpDiv;
    simd += o.simd;
    other += o.other;
    return *this;
}

OpCounts
OpCounts::operator+(const OpCounts &o) const
{
    OpCounts out = *this;
    out += o;
    return out;
}

OpCounts
OpCounts::scaled(std::uint64_t factor) const
{
    OpCounts out = *this;
    out.loads *= factor;
    out.stores *= factor;
    out.branches *= factor;
    out.intAlu *= factor;
    out.fpAlu *= factor;
    out.fpDiv *= factor;
    out.simd *= factor;
    out.other *= factor;
    return out;
}

double
OpCounts::memFraction() const
{
    const std::uint64_t t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(loads + stores) / static_cast<double>(t);
}

double
OpCounts::branchFraction() const
{
    const std::uint64_t t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(branches) / static_cast<double>(t);
}

std::string
OpCounts::mixString() const
{
    const double t = static_cast<double>(total());
    if (t == 0.0)
        return "(empty)";
    std::ostringstream os;
    const auto pct = [&](std::uint64_t v) {
        return static_cast<int>(100.0 * static_cast<double>(v) / t + 0.5);
    };
    os << "ld " << pct(loads) << "% st " << pct(stores) << "% br "
       << pct(branches) << "% int " << pct(intAlu) << "% fp "
       << pct(fpAlu + fpDiv) << "% simd " << pct(simd) << "% other "
       << pct(other) << "%";
    return os.str();
}

} // namespace av::uarch
