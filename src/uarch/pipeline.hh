/**
 * @file
 * Analytic superscalar pipeline model.
 *
 * Converts a kernel's dynamic instruction profile plus its measured
 * L1 miss and branch misprediction rates into cycles-per-instruction.
 * This is the piece that turns the instrumented algorithms' work into
 * simulated CPU time, and it reproduces the IPC column of the paper's
 * Table VII.
 *
 * The model is a first-order stall decomposition:
 *
 *   CPI = 1/peakIpc                      (ideal issue)
 *       + memFrac * memIssueCost         (address dependences, AGUs)
 *       + loadFrac * missRateRd * readMissPenalty    (MLP-discounted)
 *       + storeFrac * missRateWr * writeMissPenalty  (write buffered)
 *       + branchFrac * mispredRate * flushPenalty
 *       + divFrac * divExtraLatency      (unpipelined div/sqrt)
 *
 * Parameters default to a 2019-class 4-wide out-of-order core and are
 * documented in EXPERIMENTS.md.
 */

#ifndef AVSCOPE_UARCH_PIPELINE_HH
#define AVSCOPE_UARCH_PIPELINE_HH

#include "uarch/opcounts.hh"

namespace av::uarch {

/** Tunable stall-model parameters. */
struct PipelineConfig
{
    double peakIpc = 2.5;          ///< sustained issue ceiling
    double memIssueCost = 0.30;    ///< cycles/inst per mem-fraction
    double readMissPenalty = 10.0; ///< effective (MLP folded in)
    double writeMissPenalty = 2.0; ///< mostly hidden by write buffer
    double flushPenalty = 15.0;    ///< pipeline refill on mispredict
    double divExtraLatency = 20.0; ///< unpipelined fdiv/fsqrt
    double simdBonus = 0.5;        ///< SIMD ops retire wider
    /**
     * Fraction of L1 misses that reach DRAM (the rest hit in the
     * L2/LLC). Scales the dramBytes estimate that drives
     * memory-bandwidth interference and memory power.
     */
    double l2MissFactor = 0.30;
};

/**
 * Pure function object computing CPI from a profile.
 */
class PipelineModel
{
  public:
    explicit PipelineModel(const PipelineConfig &config = PipelineConfig())
        : config_(config)
    {}

    /**
     * Cycles per instruction for work with the given mix and
     * measured memory/branch behaviour.
     *
     * @param ops          dynamic instruction mix
     * @param l1_read_miss L1D read miss rate in [0,1]
     * @param l1_write_miss L1D write miss rate in [0,1]
     * @param br_miss      branch misprediction rate in [0,1]
     */
    double cpi(const OpCounts &ops, double l1_read_miss,
               double l1_write_miss, double br_miss) const;

    /** Total cycles for the profile (cpi * instructions). */
    double cycles(const OpCounts &ops, double l1_read_miss,
                  double l1_write_miss, double br_miss) const;

    const PipelineConfig &config() const { return config_; }

  private:
    PipelineConfig config_;
};

} // namespace av::uarch

#endif // AVSCOPE_UARCH_PIPELINE_HH
