#include "uarch/branch.hh"

#include "util/logging.hh"

namespace av::uarch {

GsharePredictor::GsharePredictor(const BranchConfig &config)
    : config_(config)
{
    AV_ASSERT(config_.tableBits >= 4 && config_.tableBits <= 24,
              "gshare table bits out of range");
    AV_ASSERT(config_.historyBits <= 32, "history too long");
    table_.assign(std::size_t(1) << config_.tableBits, 1); // weakly NT
    historyMask_ = config_.historyBits >= 32
                       ? ~0u
                       : ((1u << config_.historyBits) - 1);
    tableMask_ = (1u << config_.tableBits) - 1;
}

bool
GsharePredictor::record(std::uint64_t site, bool taken)
{
    // Fold the 64-bit site down and XOR with history (gshare).
    const std::uint32_t folded =
        static_cast<std::uint32_t>(site ^ (site >> 17) ^ (site >> 31));
    const std::uint32_t index = (folded ^ history_) & tableMask_;
    std::uint8_t &counter = table_[index];
    const bool prediction = counter >= 2;
    const bool correct = prediction == taken;

    if (taken && counter < 3)
        ++counter;
    else if (!taken && counter > 0)
        --counter;
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;

    correct ? ++stats_.predicted : ++stats_.mispredicted;
    return correct;
}

void
GsharePredictor::recordBulkPredictable(std::uint64_t count,
                                       double accuracy)
{
    const double expected_miss =
        static_cast<double>(count) * (1.0 - accuracy) + bulkResidual_;
    const std::uint64_t misses =
        static_cast<std::uint64_t>(expected_miss);
    bulkResidual_ = expected_miss - static_cast<double>(misses);
    stats_.mispredicted += misses;
    stats_.predicted += count - misses;
}

void
GsharePredictor::reset()
{
    table_.assign(table_.size(), 1);
    history_ = 0;
    stats_ = BranchStats();
    bulkResidual_ = 0.0;
}

} // namespace av::uarch
