/**
 * @file
 * Abstract dynamic-instruction accounting.
 *
 * Every algorithm in the perception stack reports the operations it
 * executes through these counters. They power two experiments from
 * the paper: the instruction-mix breakdown (Fig. 7) and, combined
 * with the cache/branch models, the IPC estimate of Table VII that
 * converts work into simulated CPU cycles.
 */

#ifndef AVSCOPE_UARCH_OPCOUNTS_HH
#define AVSCOPE_UARCH_OPCOUNTS_HH

#include <cstdint>
#include <string>

namespace av::uarch {

/**
 * Dynamic operation counts of one kernel/invocation/node.
 *
 * Categories follow the paper's Fig. 7 mix (loads, stores, branches,
 * and "other" split into integer/floating-point/etc. classes).
 */
struct OpCounts
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t intAlu = 0;
    std::uint64_t fpAlu = 0;   ///< add/sub/mul treated uniformly
    std::uint64_t fpDiv = 0;   ///< divide/sqrt class (long latency)
    std::uint64_t simd = 0;    ///< packed ops (vectorized kernels)
    std::uint64_t other = 0;   ///< moves, address-gen leftovers

    /** Total dynamic instructions. */
    std::uint64_t total() const
    {
        return loads + stores + branches + intAlu + fpAlu + fpDiv +
               simd + other;
    }

    OpCounts &operator+=(const OpCounts &o);
    OpCounts operator+(const OpCounts &o) const;

    /** Scale all categories by an integer factor (trace expansion). */
    OpCounts scaled(std::uint64_t factor) const;

    /** Fraction of total that are loads+stores; 0 when empty. */
    double memFraction() const;

    /** Fraction of total that are branches; 0 when empty. */
    double branchFraction() const;

    /** One-line mix summary, e.g. "ld 32% st 18% br 12% ...". */
    std::string mixString() const;
};

} // namespace av::uarch

#endif // AVSCOPE_UARCH_OPCOUNTS_HH
