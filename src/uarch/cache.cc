#include "uarch/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace av::uarch {

double
CacheStats::readMissRate() const
{
    const std::uint64_t total = readHits + readMisses;
    return total ? static_cast<double>(readMisses) /
                       static_cast<double>(total)
                 : 0.0;
}

double
CacheStats::writeMissRate() const
{
    const std::uint64_t total = writeHits + writeMisses;
    return total ? static_cast<double>(writeMisses) /
                       static_cast<double>(total)
                 : 0.0;
}

CacheStats &
CacheStats::operator+=(const CacheStats &o)
{
    readHits += o.readHits;
    readMisses += o.readMisses;
    writeHits += o.writeHits;
    writeMisses += o.writeMisses;
    return *this;
}

CacheModel::CacheModel(const CacheConfig &config) : config_(config)
{
    AV_ASSERT(config_.lineBytes > 0 &&
                  std::has_single_bit(config_.lineBytes),
              "cache line size must be a power of two");
    AV_ASSERT(config_.assoc > 0, "cache associativity must be positive");
    const std::uint32_t lines = config_.sizeBytes / config_.lineBytes;
    AV_ASSERT(lines >= config_.assoc, "cache smaller than one set");
    numSets_ = lines / config_.assoc;
    AV_ASSERT(std::has_single_bit(numSets_),
              "number of cache sets must be a power of two");
    lineShift_ =
        static_cast<std::uint32_t>(std::countr_zero(config_.lineBytes));
    lines_.resize(static_cast<std::size_t>(numSets_) * config_.assoc);
}

bool
CacheModel::lookupInsert(std::uint64_t line_addr)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(line_addr & (numSets_ - 1));
    const std::uint64_t tag = line_addr >> std::countr_zero(numSets_);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    ++useClock_;

    Line *victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return false;
}

void
CacheModel::access(std::uintptr_t addr, std::uint32_t bytes, bool is_write)
{
    if (bytes == 0)
        bytes = 1;
    const std::uint64_t first = addr >> lineShift_;
    const std::uint64_t last = (addr + bytes - 1) >> lineShift_;
    for (std::uint64_t line = first; line <= last; ++line) {
        const bool hit = lookupInsert(line);
        if (is_write) {
            hit ? ++stats_.writeHits : ++stats_.writeMisses;
        } else {
            hit ? ++stats_.readHits : ++stats_.readMisses;
        }
    }
}

void
CacheModel::reset()
{
    for (auto &line : lines_)
        line.valid = false;
    stats_ = CacheStats();
    useClock_ = 0;
}

} // namespace av::uarch
