/**
 * @file
 * Normal Distributions Transform scan matching (Magnusson's P2D
 * formulation), the algorithm inside Autoware's ndt_matching node.
 *
 * The map is summarized as per-voxel Gaussians
 * (pc::GaussianVoxelGrid); alignment maximizes the sum of Gaussian
 * likelihoods of the transformed scan points by Newton iterations.
 * Our world is planar, so the pose is optimized over (x, y, yaw);
 * the score itself is evaluated in full 3-D against the 3-D voxel
 * statistics. Instrumented: the per-point voxel lookups are the
 * tree-like PCL data-structure traffic the paper traces >90% of
 * ndt_matching's CPU time to (§IV-C).
 */

#ifndef AVSCOPE_PERCEPTION_NDT_HH
#define AVSCOPE_PERCEPTION_NDT_HH

#include "geom/pose.hh"
#include "pointcloud/cloud.hh"
#include "pointcloud/voxel_grid.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** NDT optimization parameters (Autoware defaults where they
 *  exist). */
struct NdtConfig
{
    double voxelLeaf = 2.0;      ///< map voxel size (m)
    std::uint32_t maxIterations = 8;
    double translationEps = 0.01; ///< convergence threshold (m)
    double rotationEps = 0.001;   ///< radians
    double outlierRatio = 0.55;
    double maxStepXy = 0.5;       ///< Newton step clamp (m)
    double maxStepYaw = 0.1;      ///< radians
};

/** Alignment outcome. */
struct NdtResult
{
    geom::Pose2 pose;
    double score = 0.0;       ///< higher is better
    double fitness = 0.0;     ///< score per matched point
    std::uint32_t iterations = 0;
    std::uint32_t matchedPoints = 0;
    bool converged = false;
};

/**
 * The matcher. setMap() once, align() per scan.
 */
class NdtMatcher
{
  public:
    explicit NdtMatcher(const NdtConfig &config = NdtConfig())
        : config_(config)
    {}

    /** Build the Gaussian voxel map from a world-frame cloud. */
    void setMap(const pc::PointCloud &map,
                uarch::KernelProfiler prof = uarch::KernelProfiler());

    bool hasMap() const { return grid_.voxelCount() > 0; }
    std::size_t mapVoxels() const { return grid_.voxelCount(); }

    /**
     * Align @p source (vehicle frame, z above ground) to the map,
     * starting from @p guess.
     */
    NdtResult align(const pc::PointCloud &source,
                    const geom::Pose2 &guess,
                    uarch::KernelProfiler prof =
                        uarch::KernelProfiler()) const;

    /**
     * Evaluate the NDT score of @p source at @p pose without
     * optimizing (used by tests and the fitness probe).
     */
    double score(const pc::PointCloud &source, const geom::Pose2 &pose,
                 uarch::KernelProfiler prof =
                     uarch::KernelProfiler()) const;

    const NdtConfig &config() const { return config_; }

  private:
    NdtConfig config_;
    pc::GaussianVoxelGrid grid_;
    double d1_ = 1.0, d2_ = 1.0; ///< Magnusson's mixture constants

    void computeConstants();
};

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_NDT_HH
