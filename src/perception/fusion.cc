#include "perception/fusion.hh"

#include <cmath>
#include <vector>

namespace av::perception {

namespace {

enum Site : std::uint64_t {
    siteMatch = 0x75001,
};

} // namespace

ObjectList
fuseObjects(const ObjectList &lidar_objects,
            const ObjectList &vision_objects,
            const geom::Pose2 &ego, const FusionConfig &config,
            uarch::KernelProfiler prof)
{
    ObjectList out;
    std::vector<std::uint8_t> vision_used(
        vision_objects.objects.size(), 0);

    for (const DetectedObject &cluster : lidar_objects.objects) {
        const geom::Vec2 rel = ego.toLocal(cluster.position);
        const double range = rel.norm();
        const double bearing = std::atan2(rel.y, rel.x);
        const double half_width =
            range > 0.5
                ? std::atan2(std::max(cluster.width, 0.5), 2.0 * range)
                : 0.5;

        // Best vision match by bearing proximity.
        std::int64_t best = -1;
        double best_diff = 1e9;
        for (std::size_t vi = 0;
             vi < vision_objects.objects.size(); ++vi) {
            const DetectedObject &v = vision_objects.objects[vi];
            if (v.confidence < config.minVisionConfidence)
                continue;
            const double diff =
                std::fabs(geom::normalizeAngle(v.bearing - bearing));
            const bool in_window =
                diff < half_width + config.bearingSlackRad &&
                std::fabs(v.rangeEstimate - range) <
                    config.maxRangeRatio * range;
            prof.branch(siteMatch, in_window);
            if (in_window && diff < best_diff) {
                best_diff = diff;
                best = static_cast<std::int64_t>(vi);
            }
        }

        DetectedObject fused = cluster;
        if (best >= 0) {
            const DetectedObject &v =
                vision_objects.objects[static_cast<std::size_t>(
                    best)];
            vision_used[static_cast<std::size_t>(best)] = 1;
            fused.label = v.label;
            fused.confidence = std::max(cluster.confidence,
                                        v.confidence);
            if (!fused.truthId)
                fused.truthId = v.truthId;
        }
        out.objects.push_back(std::move(fused));
    }

    // Vision-only detections (no LiDAR support): project to the
    // estimated range along the bearing.
    if (config.keepUnmatchedVision) {
        for (std::size_t vi = 0;
             vi < vision_objects.objects.size(); ++vi) {
            if (vision_used[vi])
                continue;
            const DetectedObject &v = vision_objects.objects[vi];
            if (v.confidence < config.minVisionConfidence ||
                v.rangeEstimate <= 0.0)
                continue;
            DetectedObject obj = v;
            const geom::Vec2 local{
                v.rangeEstimate * std::cos(v.bearing),
                v.rangeEstimate * std::sin(v.bearing)};
            obj.position = ego.apply(local);
            obj.length = obj.length > 0 ? obj.length : 1.5;
            obj.width = obj.width > 0 ? obj.width : 1.5;
            obj.confidence *= 0.8; // range is only estimated
            out.objects.push_back(std::move(obj));
        }
    }

    uarch::OpCounts ops;
    const std::uint64_t pairs =
        std::max<std::uint64_t>(1, lidar_objects.objects.size() *
                                       vision_objects.objects
                                           .size());
    const std::uint64_t n =
        lidar_objects.objects.size() +
        vision_objects.objects.size();
    ops.loads = 30 * pairs + 40 * n;
    ops.stores = 4 * pairs + 30 * n;
    ops.branches = 8 * pairs + 10 * n;
    ops.fpAlu = 45 * pairs + 30 * n;
    ops.fpDiv = 3 * pairs;
    ops.intAlu = 10 * pairs + 10 * n;
    prof.addOps(ops);
    prof.bulkBranches(6 * pairs);
    return out;
}

} // namespace av::perception
