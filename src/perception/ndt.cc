#include "perception/ndt.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace av::perception {

namespace {

enum Site : std::uint64_t {
    siteVoxelFound = 0x71001,
    siteConverged = 0x71002,
};

/** Abstract per-(point,voxel) scoring cost. */
const uarch::OpCounts scoreOps{/*loads=*/38, /*stores=*/10,
                               /*branches=*/4, /*intAlu=*/8,
                               /*fpAlu=*/38, /*fpDiv=*/1,
                               /*simd=*/0, /*other=*/2};

/** Logical probe region (block 48-55, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionScratch = 48;

} // namespace

void
NdtMatcher::computeConstants()
{
    // Magnusson 2009, eq. 6.8: fit the log-likelihood of the
    // Gaussian + uniform-outlier mixture with an exponential.
    const double outlier = config_.outlierRatio;
    const double resolution = config_.voxelLeaf;
    const double c1 = 10.0 * (1.0 - outlier);
    const double c2 =
        outlier / (resolution * resolution * resolution);
    const double d3 = -std::log(c2);
    d1_ = -std::log(c1 + c2) - d3;
    d2_ = -2.0 *
          std::log((-std::log(c1 * std::exp(-0.5) + c2) - d3) / d1_);
}

void
NdtMatcher::setMap(const pc::PointCloud &map,
                   uarch::KernelProfiler prof)
{
    grid_.build(map, config_.voxelLeaf, prof);
    computeConstants();
}

namespace {

/** Accumulated derivatives of the NDT score wrt (tx, ty, yaw). */
struct Derivatives
{
    double score = 0.0;
    std::array<double, 3> gradient{};
    geom::Mat<3, 3> hessian;
    std::uint32_t matched = 0;
};

} // namespace

NdtResult
NdtMatcher::align(const pc::PointCloud &source,
                  const geom::Pose2 &guess,
                  uarch::KernelProfiler prof) const
{
    AV_ASSERT(hasMap(), "NdtMatcher::align without a map");
    NdtResult result;
    result.pose = guess;

    std::vector<const pc::GaussianVoxelGrid::Voxel *> hood;
    hood.reserve(7);

    for (std::uint32_t iter = 0; iter < config_.maxIterations;
         ++iter) {
        const double c = std::cos(result.pose.yaw);
        const double s = std::sin(result.pose.yaw);
        Derivatives d;
        std::uint64_t pairs = 0;

        for (const pc::Point &p : source.points) {
            // Transformed point (planar pose, z preserved).
            const double lx = p.x, ly = p.y;
            const geom::Vec3 x{
                c * lx - s * ly + result.pose.p.x,
                s * lx + c * ly + result.pose.p.y, p.z};
            // Jacobian columns of x wrt (tx, ty, yaw).
            const geom::Vec3 j_yaw{-s * lx - c * ly,
                                   c * lx - s * ly, 0.0};

            grid_.neighborhood(x, hood, prof);
            const bool any = !hood.empty();
            prof.branch(siteVoxelFound, any);
            if (!any)
                continue;

            for (const auto *voxel : hood) {
                const geom::Vec3 q = x - voxel->mean;
                const geom::Vec3 siq =
                    geom::mul(voxel->inverseCovariance, q);
                const double qsq = q.dot(siq);
                if (qsq > 40.0)
                    continue; // numerically zero contribution
                const double e = std::exp(-0.5 * d2_ * qsq);
                // d1_ is negative (log of a probability ratio);
                // factor > 0 makes gradient/hessian those of the
                // *minimized* objective L = d1 * sum(e), so the
                // Hessian is positive definite near the optimum and
                // the Cholesky solve below is well posed.
                const double factor = -d1_ * d2_ * e;
                d.score += -d1_ * e; // positive, higher = better
                ++d.matched;

                // dq/dtheta columns: (1,0,0), (0,1,0), j_yaw.
                const double a0 = siq.x;
                const double a1 = siq.y;
                const double a2 = siq.dot(j_yaw);
                const double grad[3] = {factor * a0, factor * a1,
                                        factor * a2};
                d.gradient[0] += grad[0];
                d.gradient[1] += grad[1];
                d.gradient[2] += grad[2];

                // Gauss-Newton Hessian: keep only the
                // J^T Sigma^-1 J part (plus the yaw second
                // derivative), dropping the -d2 a_i a_j term. The
                // full Newton Hessian turns indefinite for points
                // beyond a stiff voxel's sigma (thin wall
                // covariances), which stalls the solve exactly when
                // the guess is worst; Gauss-Newton keeps it PSD.
                const geom::Mat3 &si = voxel->inverseCovariance;
                const double jtsj[3][3] = {
                    {si(0, 0), si(0, 1),
                     si(0, 0) * j_yaw.x + si(0, 1) * j_yaw.y},
                    {si(1, 0), si(1, 1),
                     si(1, 0) * j_yaw.x + si(1, 1) * j_yaw.y},
                    {0, 0, 0}};
                // Row 2 via symmetry computed below.
                // Second derivative only for (yaw, yaw):
                // d2x/dyaw2 = -(R p) = -(x - t).
                const geom::Vec3 d2yaw{
                    -(c * lx - s * ly), -(s * lx + c * ly), 0.0};
                for (int i = 0; i < 3; ++i) {
                    for (int j = 0; j < 3; ++j) {
                        double jt = 0.0;
                        if (i < 2 && j < 2) {
                            jt = jtsj[i][j];
                        } else if (i == 2 && j == 2) {
                            jt = j_yaw.dot(
                                     geom::mul(si, j_yaw)) +
                                 siq.dot(d2yaw);
                        } else if (i == 2) {
                            jt = jtsj[j][2];
                        } else {
                            jt = jtsj[i][2];
                        }
                        d.hessian(i, j) += factor * jt;
                    }
                }
            }
            pairs += std::max<std::uint64_t>(hood.size(), 1);
        }
        // Batched accounting for the whole scoring pass; the
        // derivative algebra runs on registers / hot stack, and the
        // inner-loop control is well predicted.
        prof.addOps(scoreOps.scaled(pairs));
        if (prof.tracing()) {
            prof.hotLoads(45 * pairs + 10 * source.size());
            prof.hotStores(12 * pairs + 4 * source.size());
            // Occasional spill stores over a rotating working
            // buffer (Eigen temporaries in the real code). The
            // cursor restarts per scoring pass: state carried
            // across align() calls would leak one replay's access
            // pattern into the next and break determinism.
            constexpr std::size_t scratchDoubles = 16384;
            std::size_t cursor = 0;
            for (std::uint64_t k = 0; k < pairs / 6; ++k) {
                prof.store(regionScratch, cursor * sizeof(double),
                           sizeof(double));
                cursor = (cursor + 23) % scratchDoubles;
            }
        }
        prof.bulkBranches(28 * source.size());

        ++result.iterations;
        if (d.matched == 0)
            break;

        // Newton step on L: solve (grad^2 L) delta = -grad L.
        std::array<double, 3> delta{};
        const std::array<double, 3> rhs{-d.gradient[0],
                                        -d.gradient[1],
                                        -d.gradient[2]};
        if (!geom::solveCholesky(d.hessian, rhs, delta))
            break;

        delta[0] = std::clamp(delta[0], -config_.maxStepXy,
                              config_.maxStepXy);
        delta[1] = std::clamp(delta[1], -config_.maxStepXy,
                              config_.maxStepXy);
        delta[2] = std::clamp(delta[2], -config_.maxStepYaw,
                              config_.maxStepYaw);

        result.pose.p.x += delta[0];
        result.pose.p.y += delta[1];
        result.pose.yaw =
            geom::normalizeAngle(result.pose.yaw + delta[2]);

        result.score = d.score; // positive = better
        result.matchedPoints = d.matched;

        const bool converged =
            std::fabs(delta[0]) < config_.translationEps &&
            std::fabs(delta[1]) < config_.translationEps &&
            std::fabs(delta[2]) < config_.rotationEps;
        prof.branch(siteConverged, converged);
        if (converged) {
            result.converged = true;
            break;
        }
    }
    if (result.matchedPoints > 0)
        result.fitness =
            result.score / static_cast<double>(result.matchedPoints);
    return result;
}

double
NdtMatcher::score(const pc::PointCloud &source,
                  const geom::Pose2 &pose,
                  uarch::KernelProfiler prof) const
{
    AV_ASSERT(hasMap(), "NdtMatcher::score without a map");
    const double c = std::cos(pose.yaw);
    const double s = std::sin(pose.yaw);
    std::vector<const pc::GaussianVoxelGrid::Voxel *> hood;
    double total = 0.0;
    for (const pc::Point &p : source.points) {
        const geom::Vec3 x{c * p.x - s * p.y + pose.p.x,
                           s * p.x + c * p.y + pose.p.y, p.z};
        grid_.neighborhood(x, hood, prof);
        for (const auto *voxel : hood) {
            const geom::Vec3 q = x - voxel->mean;
            const double qsq =
                q.dot(geom::mul(voxel->inverseCovariance, q));
            if (qsq > 40.0)
                continue;
            total += d1_ * std::exp(-0.5 * d2_ * qsq);
        }
        prof.addOps(scoreOps);
    }
    return -total;
}

} // namespace av::perception
