/**
 * @file
 * Ray ground filter: split a scan into ground and obstacle points —
 * Autoware's ray_ground_filter node, a key member of both LiDAR
 * computation paths (Table IV) and one of the three
 * optimization-priority nodes the paper identifies (§IV-A).
 *
 * Algorithm (Autoware's): bucket points into azimuth rays, sort each
 * ray by radial distance, then walk outward comparing the local
 * slope against a threshold; points continuing the ground surface
 * are ground, the rest are obstacles.
 */

#ifndef AVSCOPE_PERCEPTION_RAY_GROUND_FILTER_HH
#define AVSCOPE_PERCEPTION_RAY_GROUND_FILTER_HH

#include "pointcloud/cloud.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** Filter parameters (Autoware defaults). */
struct RayGroundConfig
{
    std::uint32_t rays = 360;       ///< azimuth buckets
    double slopeThresholdDeg = 9.0; ///< local ground slope limit
    double initialHeight = 0.0;     ///< ground height at the car
    double minPointDistance = 1.5;  ///< ignore self-returns
    double clippingHeight = 3.5;    ///< everything above: obstacle
    /** General slope limit versus the vehicle's ground plane:
     *  points higher than generalOffset + tan(generalSlopeDeg) * r
     *  can never be ground (catches the first return of a ray
     *  landing on an obstacle). */
    double generalSlopeDeg = 1.5;
    double generalOffset = 0.25;
};

/** Output: the two clouds Autoware publishes. */
struct GroundSplit
{
    pc::PointCloud ground;
    pc::PointCloud noGround;
};

/**
 * Run the filter on a vehicle-frame scan (z = height above ground).
 */
GroundSplit rayGroundFilter(const pc::PointCloud &scan,
                            const RayGroundConfig &config,
                            uarch::KernelProfiler prof =
                                uarch::KernelProfiler());

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_RAY_GROUND_FILTER_HH
