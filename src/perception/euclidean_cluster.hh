/**
 * @file
 * Euclidean clustering: group obstacle points into objects —
 * Autoware's lidar_euclidean_cluster_detect. The paper singles this
 * node out twice: worst L1 locality of the stack (kd-tree chasing,
 * Table VII) and a large tail latency that scales with the number of
 * traffic participants (§IV-A).
 */

#ifndef AVSCOPE_PERCEPTION_EUCLIDEAN_CLUSTER_HH
#define AVSCOPE_PERCEPTION_EUCLIDEAN_CLUSTER_HH

#include <vector>

#include "perception/objects.hh"
#include "pointcloud/cloud.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** Clustering parameters (Autoware defaults). */
struct ClusterConfig
{
    double tolerance = 0.6;    ///< neighbour radius (m)
    std::uint32_t minPoints = 8;
    std::uint32_t maxPoints = 1200;
    double maxObjectDim = 12.0; ///< reject building walls
    double minHeight = 0.25;    ///< reject road debris
    /** Pre-crop (Autoware removes points beyond the detection range
     *  and above vehicle height before clustering). */
    double detectRange = 24.0;
    double clipHeight = 2.2;
};

/** Apply the pre-crop of ClusterConfig to an obstacle cloud. */
pc::PointCloud cropForClustering(const pc::PointCloud &cloud,
                                 const ClusterConfig &config,
                                 uarch::KernelProfiler prof =
                                     uarch::KernelProfiler());

/** One cluster with its geometry. */
struct Cluster
{
    geom::Vec3 centroid;
    double length = 0.0, width = 0.0, height = 0.0;
    double yaw = 0.0; ///< principal-axis orientation
    std::uint32_t pointCount = 0;
};

/**
 * Cluster a vehicle-frame obstacle cloud. Kd-tree radius expansion
 * (BFS), then per-cluster centroid + oriented bounding box.
 */
std::vector<Cluster> euclideanCluster(const pc::PointCloud &cloud,
                                      const ClusterConfig &config,
                                      uarch::KernelProfiler prof =
                                          uarch::KernelProfiler());

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_EUCLIDEAN_CLUSTER_HH
