#include "perception/objects.hh"

namespace av::perception {

const char *
labelName(Label label)
{
    switch (label) {
      case Label::Unknown: return "unknown";
      case Label::Car: return "car";
      case Label::Truck: return "truck";
      case Label::Pedestrian: return "pedestrian";
      case Label::Cyclist: return "cyclist";
    }
    return "?";
}

} // namespace av::perception
