/**
 * @file
 * Base class for all perception/actuation nodes.
 *
 * Wires a ros::Node to its persistent microarchitectural state and
 * the machine: a handler runs its algorithm functionally (in zero
 * virtual time, instrumented through the profiler), then converts
 * the recorded work into a CPU task (and optionally GPU phases) on
 * the shared machine. Each node also keeps its own latency
 * distribution — the paper's per-node chrono probes (§III-B).
 */

#ifndef AVSCOPE_PERCEPTION_NODE_BASE_HH
#define AVSCOPE_PERCEPTION_NODE_BASE_HH

#include <functional>
#include <string>

#include "ros/ros.hh"
#include "uarch/profiler.hh"
#include "util/random.hh"
#include "util/stats.hh"

namespace av::perception {

/** Per-node execution-model knobs. */
struct NodeConfig
{
    /**
     * Abstract-op to machine-instruction expansion (see
     * NodeArchState::setOpScale); calibrated per node in
     * stack/config.cc against the paper's Fig. 5 means.
     */
    double workScale = 1.0;
    /** µarch trace sampling period (1 = every invocation). */
    std::uint32_t tracePeriod = 1;
    /**
     * Residual per-invocation cost jitter (coefficient of
     * variation): the OS/DVFS/cache-weather noise a real node shows
     * even in isolation (the paper measures ~1 ms of stddev on an
     * isolated 73 ms detector). Log-normal, deterministic per node.
     */
    double costJitterCv = 0.015;
    uarch::CacheConfig cache;
    uarch::BranchConfig branch;
    uarch::PipelineConfig pipeline;
};

/**
 * Common machinery for stack nodes.
 */
class PerceptionNode : public ros::Node
{
  public:
    PerceptionNode(ros::RosGraph &graph, std::string name,
                   const NodeConfig &config = NodeConfig());

    /** Latency distribution (arrival -> output ready), in ms. */
    const util::SampleSeries &latencySeries() const
    {
        return latency_;
    }

    /** Persistent µarch state (Table VII / Fig. 7 source). */
    const uarch::NodeArchState &arch() const { return arch_; }
    uarch::NodeArchState &arch() { return arch_; }

    const NodeConfig &nodeConfig() const { return config_; }

  protected:
    /** Start instrumented functional work for one invocation. */
    void
    beginWork()
    {
        arch_.beginInvocation();
    }

    /** Profiler handle to pass into algorithms. */
    uarch::KernelProfiler
    profiler()
    {
        return uarch::KernelProfiler(&arch_);
    }

    /**
     * Finish the invocation and run its cost as one CPU task.
     * @p then fires when the simulated execution completes.
     */
    void finishWorkOnCpu(std::function<void()> then);

    /**
     * Finish the invocation and return the cost so the caller can
     * build a multi-phase (CPU/GPU) execution.
     */
    uarch::InvocationCost
    finishWork()
    {
        return arch_.endInvocation();
    }

    /** Build a CPU task from an invocation cost. */
    hw::CpuTask makeCpuTask(const uarch::InvocationCost &cost,
                            std::function<void()> on_complete);

    /** Record one processed-message latency sample. */
    void recordLatency(sim::Tick arrival);

    /** Derive an output header continuing @p input's lineage. */
    ros::Header
    deriveHeader(const ros::Header &input) const
    {
        ros::Header h;
        h.stamp = graph_.eventQueue().now();
        h.origins = input.origins;
        return h;
    }

    hw::Machine &machine() { return graph_.machine(); }

    /** One residual-jitter factor (see NodeConfig::costJitterCv). */
    double
    costJitter()
    {
        return config_.costJitterCv > 0.0
                   ? jitterRng_.logNormalMeanCv(
                         1.0, config_.costJitterCv)
                   : 1.0;
    }

  private:
    NodeConfig config_;
    uarch::NodeArchState arch_;
    util::SampleSeries latency_;
    util::Rng jitterRng_;
};

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_NODE_BASE_HH
