#include "perception/nodes.hh"

#include <cmath>

#include "util/logging.hh"
#include "world/recorder.hh"

namespace av::perception {

namespace {

/** Wrap a payload in a shared_ptr for cheap capture in callbacks. */
template <typename T>
std::shared_ptr<T>
share(T value)
{
    return std::make_shared<T>(std::move(value));
}

} // namespace

// ---------------------------------------------------------------- voxel

VoxelGridFilterNode::VoxelGridFilterNode(ros::RosGraph &graph,
                                         const NodeConfig &config,
                                         double leaf)
    : PerceptionNode(graph, "voxel_grid_filter", config), leaf_(leaf),
      pub_(graph.advertise<pc::PointCloud>(topics::filteredPoints, name()))
{
    subscribe<pc::PointCloud>(
        world::topics::pointsRaw, 1,
        [this](const ros::Stamped<pc::PointCloud> &msg,
               std::function<void()> done) {
            beginWork();
            auto out =
                share(pc::voxelGridDownsample(msg.data, leaf_,
                                              profiler()));
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, out, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                // Loan the payload: byteSize() is hoisted because
                // argument evaluation order is unspecified and the
                // move hollows out *out.
                const std::size_t bytes = out->byteSize();
                pub_.publish(header, std::move(*out), bytes);
                done();
            });
        });
}

// ------------------------------------------------------------------ ndt

NdtMatchingNode::NdtMatchingNode(ros::RosGraph &graph,
                                 const NodeConfig &config,
                                 const pc::PointCloud &map,
                                 std::optional<geom::Pose2> initial_pose,
                                 const NdtConfig &ndt,
                                 sim::Tick reseed_after)
    : PerceptionNode(graph, "ndt_matching", config), matcher_(ndt),
      initialPose_(initial_pose), reseedAfter_(reseed_after),
      pub_(graph.advertise<PoseEstimate>(topics::ndtPose, name()))
{
    matcher_.setMap(map);

    subscribe<world::GnssFix>(
        world::topics::gnss, 1,
        [this](const ros::Stamped<world::GnssFix> &msg,
               std::function<void()> done) {
            if (!gnssInit_)
                gnssInit_ = msg.data.position;
            lastGnss_ = msg.data.position;
            done();
        });

    subscribe<world::ImuSample>(
        world::topics::imu, 10,
        [this](const ros::Stamped<world::ImuSample> &msg,
               std::function<void()> done) {
            imu_ = msg.data;
            done();
        });

    subscribe<pc::PointCloud>(
        topics::filteredPoints, 1,
        [this](const ros::Stamped<pc::PointCloud> &msg,
               std::function<void()> done) {
            if (!lastPose_ && !gnssInit_ && !initialPose_) {
                done(); // cannot localize before the first fix
                return;
            }
            // Initial guess. Preferred: dead-reckon the previous
            // estimate with IMU/odometry (speed + yaw rate); the
            // street corridor is longitudinally weakly observable,
            // so NDT needs a guess within its narrow basin (paper
            // SII-A: the IMU anticipates the next position).
            geom::Pose2 guess;
            const bool reseed =
                reseedAfter_ > 0 && lastPose_ && lastGnss_ &&
                msg.header.stamp - lastStamp_ > reseedAfter_;
            if (reseed) {
                // Localization dropout: a dead-reckoned guess this
                // old is outside NDT's convergence basin. Reseed the
                // translation from GNSS, keep the last good heading,
                // and forget the stale velocity estimate.
                guess.p = {lastGnss_->x, lastGnss_->y};
                guess.yaw = lastPose_->yaw;
                velocity_ = {};
                yawRate_ = 0.0;
                ++reseeds_;
            } else if (lastPose_ && imu_) {
                const double dt = sim::ticksToSeconds(
                    msg.header.stamp - lastStamp_);
                const double yaw = geom::normalizeAngle(
                    lastPose_->yaw + imu_->yawRate * dt);
                guess.yaw = yaw;
                guess.p = lastPose_->position +
                          geom::Vec2{std::cos(yaw), std::sin(yaw)} *
                              (imu_->speed * dt);
            } else if (lastPose_) {
                const double dt = sim::ticksToSeconds(
                    msg.header.stamp - lastStamp_);
                guess.p = lastPose_->position + velocity_ * dt;
                guess.yaw = geom::normalizeAngle(
                    lastPose_->yaw + yawRate_ * dt);
            } else if (initialPose_) {
                guess = *initialPose_;
            } else {
                guess.p = {gnssInit_->x, gnssInit_->y};
                guess.yaw = 0.0;
            }

            beginWork();
            const NdtResult result =
                matcher_.align(msg.data, guess, profiler());
            util::debug("[ndt] t=",
                        sim::ticksToSeconds(msg.header.stamp),
                        " imu=", imu_.has_value(), " guess=(",
                        guess.p.x, ",", guess.p.y, ",", guess.yaw,
                        ") est=(", result.pose.p.x, ",",
                        result.pose.p.y, ",", result.pose.yaw,
                        ") it=", result.iterations, " conv=",
                        result.converged, " fit=", result.fitness,
                        " n=", msg.data.size());

            PoseEstimate estimate;
            estimate.position = result.pose.p;
            estimate.yaw = result.pose.yaw;
            estimate.fitnessScore = result.fitness;
            estimate.iterations = result.iterations;
            estimate.converged = result.converged;

            // Velocity bookkeeping for the next guess.
            if (lastPose_) {
                const double dt = sim::ticksToSeconds(
                    msg.header.stamp - lastStamp_);
                if (dt > 1e-3) {
                    velocity_ =
                        (estimate.position - lastPose_->position) /
                        dt;
                    yawRate_ = geom::normalizeAngle(
                                   estimate.yaw - lastPose_->yaw) /
                               dt;
                }
            }
            lastPose_ = estimate;
            lastStamp_ = msg.header.stamp;

            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, estimate, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                pub_.publish(header, estimate, 96);
                done();
            });
        });
}

// ----------------------------------------------------------- ray ground

RayGroundFilterNode::RayGroundFilterNode(ros::RosGraph &graph,
                                         const NodeConfig &config,
                                         const RayGroundConfig &filter)
    : PerceptionNode(graph, "ray_ground_filter", config),
      filter_(filter),
      pubNoGround_(
          graph.advertise<pc::PointCloud>(topics::pointsNoGround,
                                          name())),
      pubGround_(graph.advertise<pc::PointCloud>(topics::pointsGround,
                                                 name()))
{
    subscribe<pc::PointCloud>(
        world::topics::pointsRaw, 1,
        [this](const ros::Stamped<pc::PointCloud> &msg,
               std::function<void()> done) {
            beginWork();
            auto split = share(
                rayGroundFilter(msg.data, filter_, profiler()));
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, split, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t ngBytes =
                    split->noGround.byteSize();
                const std::size_t gBytes = split->ground.byteSize();
                pubNoGround_.publish(header,
                                     std::move(split->noGround),
                                     ngBytes);
                pubGround_.publish(header, std::move(split->ground),
                                   gBytes);
                done();
            });
        });
}

// -------------------------------------------------------------- cluster

EuclideanClusterNode::EuclideanClusterNode(ros::RosGraph &graph,
                                           const NodeConfig &config,
                                           const ClusterConfig &cluster,
                                           bool use_gpu)
    : PerceptionNode(graph, "euclidean_cluster", config),
      cluster_(cluster), useGpu_(use_gpu),
      pub_(graph.advertise<ObjectList>(topics::lidarObjects, name()))
{
    subscribe<PoseEstimate>(
        topics::ndtPose, 2,
        [this](const ros::Stamped<PoseEstimate> &msg,
               std::function<void()> done) {
            pose_ = msg.data;
            done();
        });

    subscribe<pc::PointCloud>(
        topics::pointsNoGround, 1,
        [this](const ros::Stamped<pc::PointCloud> &msg,
               std::function<void()> done) {
            beginWork();
            const pc::PointCloud cropped =
                cropForClustering(msg.data, cluster_, profiler());
            const auto clusters =
                euclideanCluster(cropped, cluster_, profiler());

            // Clusters are vehicle-frame; ground them in the world
            // with the latest localization estimate.
            const geom::Pose2 ego =
                pose_ ? geom::Pose2{pose_->position, pose_->yaw}
                      : geom::Pose2{};
            auto list = share(ObjectList{});
            for (const Cluster &cl : clusters) {
                DetectedObject obj;
                obj.label = Label::Unknown;
                obj.confidence = 0.5;
                obj.position =
                    ego.apply({cl.centroid.x, cl.centroid.y});
                obj.yaw =
                    geom::normalizeAngle(cl.yaw + ego.yaw);
                obj.length = cl.length;
                obj.width = cl.width;
                obj.height = cl.height;
                obj.pointCount = cl.pointCount;
                list->objects.push_back(std::move(obj));
            }

            const auto cost = finishWork();
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            const auto publish = [this, list, header, arrival,
                                  done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = list->byteSize();
                pub_.publish(header, std::move(*list), bytes);
                done();
            };

            if (!useGpu_) {
                machine().cpu().submit(makeCpuTask(cost, publish));
                return;
            }
            // GPU path: ~35% of the work stays on the CPU
            // (transforms, extraction); the neighbour search runs as
            // two kernels on the device.
            const double n = static_cast<double>(cropped.size());
            hw::GpuJob job;
            job.owner = name();
            job.h2dBytes = n * 16.0;
            const double kflops = 1.1e10 * (n / 3000.0) + 5.0e8;
            job.kernels = {hw::GpuKernel{kflops, n * 64.0, 0.8},
                           hw::GpuKernel{kflops, n * 32.0, 0.8}};
            job.d2hBytes =
                64.0 * static_cast<double>(clusters.size()) +
                1024.0;

            auto pre = cost;
            pre.cycles *= 0.50;
            pre.dramBytes *= 0.50;
            auto post = cost;
            post.cycles *= 0.45;
            post.dramBytes *= 0.45;

            std::vector<hw::Phase> phases;
            phases.push_back(hw::Phase::makeCpu(
                makeCpuTask(pre, nullptr)));
            phases.push_back(hw::Phase::makeGpu(std::move(job)));
            phases.push_back(hw::Phase::makeCpu(
                makeCpuTask(post, nullptr)));
            hw::runPhases(machine(), std::move(phases), publish);
        });
}

// --------------------------------------------------------------- vision

VisionDetectorNode::VisionDetectorNode(
    ros::RosGraph &graph, const NodeConfig &config, DetectorKind kind,
    const dnn::GpuCostParams &gpu_params)
    : PerceptionNode(graph, "vision_detection", config), kind_(kind),
      network_(kind == DetectorKind::Ssd512
                   ? dnn::buildSsd512()
                   : (kind == DetectorKind::Ssd300
                          ? dnn::buildSsd300()
                          : dnn::buildYolov3_416())),
      kernels_(dnn::networkKernels(network_, gpu_params)),
      rng_(0xde7ec7 ^ static_cast<std::uint64_t>(kind)),
      pub_(graph.advertise<ObjectList>(topics::imageObjects, name()))
{
    subscribe<world::CameraFrame>(
        world::topics::imageRaw, 1,
        [this](const ros::Stamped<world::CameraFrame> &msg,
               std::function<void()> done) {
            // Functional detection (zero virtual time).
            auto detections = share(detectObjects(
                msg.data, msg.header.stamp, kind_));

            // Costs: preprocess / inference / postprocess.
            beginWork();
            dnn::preprocessFrame(network_, msg.data.width,
                                 msg.data.height, profiler());
            const auto pre_cost = finishWork();

            beginWork();
            dnn::postprocessFrame(network_, rng_, profiler());
            const auto post_cost = finishWork();

            hw::GpuJob job;
            job.owner = name();
            job.h2dBytes = dnn::networkH2dBytes(network_);
            job.kernels = kernels_;
            // Residual run-to-run inference jitter (clock/thermal
            // variation real GPUs show even on fixed input sizes).
            const double gpu_jitter = costJitter();
            for (hw::GpuKernel &k : job.kernels)
                k.flops *= gpu_jitter;
            job.d2hBytes = dnn::networkD2hBytes(network_);

            std::vector<hw::Phase> phases;
            phases.push_back(hw::Phase::makeCpu(
                makeCpuTask(pre_cost, nullptr)));
            phases.push_back(hw::Phase::makeGpu(std::move(job)));
            phases.push_back(hw::Phase::makeCpu(
                makeCpuTask(post_cost, nullptr)));

            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            hw::runPhases(
                machine(), std::move(phases),
                [this, detections, header, arrival,
                 done = std::move(done)] {
                    recordLatency(arrival);
                    const std::size_t bytes =
                        detections->byteSize();
                    pub_.publish(header, std::move(*detections),
                                 bytes);
                    done();
                });
        });
}

// --------------------------------------------------------------- fusion

RangeVisionFusionNode::RangeVisionFusionNode(ros::RosGraph &graph,
                                             const NodeConfig &config,
                                             const FusionConfig &fusion,
                                             sim::Tick vision_stale_after)
    : PerceptionNode(graph, "range_vision_fusion", config),
      fusion_(fusion), visionStaleAfter_(vision_stale_after),
      pub_(graph.advertise<ObjectList>(topics::fusedObjects, name()))
{
    subscribe<PoseEstimate>(
        topics::ndtPose, 2,
        [this](const ros::Stamped<PoseEstimate> &msg,
               std::function<void()> done) {
            pose_ = msg.data;
            done();
        });

    // LiDAR clusters are cached; the *vision* callback triggers the
    // fusion (Autoware's range_vision_fusion behaviour). The cached
    // cluster list therefore ages up to one camera period before it
    // reaches the tracker — a real contributor to the LiDAR object
    // path's end-to-end latency (paper Fig. 6).
    //
    // Degradation: with visionStaleAfter_ set, a cluster list
    // arriving while the image detections are older than the
    // threshold is published LiDAR-only instead of parking in the
    // cache — a camera blackout must not starve the tracker.
    subscribe<ObjectList>(
        topics::lidarObjects, 2,
        [this](const ros::Stamped<ObjectList> &msg,
               std::function<void()> done) {
            lastLidar_ = msg;
            const sim::Tick now = this->graph().eventQueue().now();
            const bool vision_stale =
                visionStaleAfter_ > 0 &&
                (!sawVision_ ||
                 now - lastVisionStamp_ > visionStaleAfter_);
            if (!vision_stale) {
                done();
                return;
            }
            beginWork();
            const geom::Pose2 ego =
                pose_ ? geom::Pose2{pose_->position, pose_->yaw}
                      : geom::Pose2{};
            static const ObjectList no_vision;
            auto fused = share(fuseObjects(msg.data, no_vision, ego,
                                           fusion_, profiler()));
            ++lidarOnly_;
            const ros::Header header = deriveHeader(msg.header);
            const auto arrival = now;
            finishWorkOnCpu([this, fused, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = fused->byteSize();
                pub_.publish(header, std::move(*fused), bytes);
                done();
            });
        });

    subscribe<ObjectList>(
        topics::imageObjects, 2,
        [this](const ros::Stamped<ObjectList> &msg,
               std::function<void()> done) {
            sawVision_ = true;
            lastVisionStamp_ = msg.header.stamp;
            beginWork();
            const geom::Pose2 ego =
                pose_ ? geom::Pose2{pose_->position, pose_->yaw}
                      : geom::Pose2{};
            static const ObjectList empty;
            const ObjectList &lidar =
                lastLidar_ ? lastLidar_->data : empty;
            auto fused = share(fuseObjects(lidar, msg.data, ego,
                                           fusion_, profiler()));

            // Lineage: the fused output derives from this camera
            // list *and* the cached LiDAR list (paper Table IV:
            // both computation paths cross this node).
            ros::Header header = deriveHeader(msg.header);
            if (lastLidar_)
                header.origins = header.origins.merged(
                    lastLidar_->header.origins);

            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, fused, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = fused->byteSize();
                pub_.publish(header, std::move(*fused), bytes);
                done();
            });
        });
}

// -------------------------------------------------------------- tracker

ImmUkfPdaNode::ImmUkfPdaNode(ros::RosGraph &graph,
                             const NodeConfig &config,
                             const TrackerConfig &tracker,
                             sim::Tick coast_after,
                             sim::Tick coast_period)
    : PerceptionNode(graph, "imm_ukf_pda_tracker", config),
      tracker_(tracker), coastAfter_(coast_after),
      pub_(graph.advertise<ObjectList>(topics::trackedObjects, name()))
{
    subscribe<ObjectList>(
        topics::fusedObjects, 1,
        [this](const ros::Stamped<ObjectList> &msg,
               std::function<void()> done) {
            sawFused_ = true;
            lastFusedStamp_ = msg.header.stamp;
            lastOrigins_ = msg.header.origins;
            beginWork();
            auto tracked = share(tracker_.update(
                msg.data, msg.header.stamp, profiler()));
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, tracked, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = tracked->byteSize();
                pub_.publish(header, std::move(*tracked), bytes);
                done();
            });
        });

    if (coast_after > 0 && coast_period > 0) {
        coastTask_.emplace(graph.eventQueue(), coast_period,
                           [this](std::uint64_t) { maybeCoast(); });
        coastTask_->start(coast_period);
    }
}

void
ImmUkfPdaNode::maybeCoast()
{
    // Fires as its own event, never inside a message handler, so it
    // cannot interleave with an update() in flight (busy() is the
    // simulated-execution flag; the functional tracker state is
    // consistent between events).
    const sim::Tick now = graph().eventQueue().now();
    if (down() || !sawFused_ || now - lastFusedStamp_ <= coastAfter_)
        return;
    if (tracker_.confirmedCount() == 0)
        return;
    auto coasted = share(tracker_.coast(now));
    lastFusedStamp_ = now; // next coast after another full gap
    ++coasts_;
    ros::Header header;
    header.stamp = now;
    header.origins = lastOrigins_;
    const std::size_t bytes = coasted->byteSize();
    pub_.publish(header, std::move(*coasted), bytes);
}

// ---------------------------------------------------------------- relay

TrackRelayNode::TrackRelayNode(ros::RosGraph &graph,
                               const NodeConfig &config)
    : PerceptionNode(graph, "ukf_track_relay", config),
      pub_(graph.advertise<ObjectList>(topics::objects, name()))
{
    subscribe<ObjectList>(
        topics::trackedObjects, 5,
        [this](const ros::Stamped<ObjectList> &msg,
               std::function<void()> done) {
            beginWork();
            uarch::OpCounts ops;
            ops.loads = 20 * msg.data.objects.size() + 2000;
            ops.stores = 20 * msg.data.objects.size() + 2000;
            ops.intAlu = 10 * msg.data.objects.size() + 1000;
            ops.branches = 2 * msg.data.objects.size() + 500;
            profiler().addOps(ops);
            auto list = share(msg.data);
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, list, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = list->byteSize();
                pub_.publish(header, std::move(*list), bytes);
                done();
            });
        });
}

// -------------------------------------------------------------- predict

NaiveMotionPredictNode::NaiveMotionPredictNode(
    ros::RosGraph &graph, const NodeConfig &config,
    const PredictConfig &predict)
    : PerceptionNode(graph, "naive_motion_prediction", config),
      predict_(predict),
      pub_(graph.advertise<ObjectList>(topics::predictedObjects, name()))
{
    subscribe<ObjectList>(
        topics::objects, 1,
        [this](const ros::Stamped<ObjectList> &msg,
               std::function<void()> done) {
            beginWork();
            auto predicted = share(
                predictMotion(msg.data, predict_, profiler()));
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            finishWorkOnCpu([this, predicted, header, arrival,
                             done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = predicted->byteSize();
                pub_.publish(header, std::move(*predicted), bytes);
                done();
            });
        });
}

// -------------------------------------------------------------- costmap

CostmapGeneratorNode::CostmapGeneratorNode(ros::RosGraph &graph,
                                           const NodeConfig &config,
                                           const CostmapConfig &costmap)
    : PerceptionNode(graph, "costmap_generator", config),
      costmap_(costmap), pointsLatency_(1u << 15),
      pub_(graph.advertise<Costmap>(topics::costmap, name()))
{
    subscribe<PoseEstimate>(
        topics::ndtPose, 2,
        [this](const ros::Stamped<PoseEstimate> &msg,
               std::function<void()> done) {
            pose_ = msg.data;
            done();
        });

    // Object callback: the latency-heavy one (Fig. 5's
    // costmap_generator_obj).
    subscribe<ObjectList>(
        topics::predictedObjects, 1,
        [this](const ros::Stamped<ObjectList> &msg,
               std::function<void()> done) {
            beginWork();
            const geom::Pose2 ego =
                pose_ ? geom::Pose2{pose_->position, pose_->yaw}
                      : geom::Pose2{};
            auto map = share(generateObjectCostmap(
                msg.data, ego, costmap_, profiler()));
            const auto cost = finishWork();
            auto task = makeCpuTask(cost, nullptr);
            task.owner = "costmap_generator_obj";
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            task.onComplete = [this, map, header, arrival,
                               done = std::move(done)] {
                recordLatency(arrival);
                const std::size_t bytes = map->byteSize();
                pub_.publish(header, std::move(*map), bytes);
                done();
            };
            machine().cpu().submit(std::move(task));
        });

    // Points callback (costmap_generator_points).
    subscribe<pc::PointCloud>(
        topics::pointsNoGround, 1,
        [this](const ros::Stamped<pc::PointCloud> &msg,
               std::function<void()> done) {
            beginWork();
            const geom::Pose2 ego =
                pose_ ? geom::Pose2{pose_->position, pose_->yaw}
                      : geom::Pose2{};
            auto map = share(generatePointsCostmap(
                msg.data, ego, costmap_, profiler()));
            const auto cost = finishWork();
            auto task = makeCpuTask(cost, nullptr);
            task.owner = "costmap_generator_points";
            const auto header = deriveHeader(msg.header);
            const auto arrival = this->graph().eventQueue().now();
            task.onComplete = [this, map, header, arrival,
                               done = std::move(done)] {
                const sim::Tick now =
                    this->graph().eventQueue().now();
                if (now >= arrival)
                    pointsLatency_.add(
                        sim::ticksToMs(now - arrival));
                const std::size_t bytes = map->byteSize();
                pub_.publish(header, std::move(*map), bytes);
                done();
            };
            machine().cpu().submit(std::move(task));
        });
}

} // namespace av::perception
