#include "perception/motion_predict.hh"

#include <cmath>

#include "geom/pose.hh"

namespace av::perception {

namespace {

/** Logical probe region (block 40-47, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionPaths = 40;

} // namespace

ObjectList
predictMotion(const ObjectList &tracked, const PredictConfig &config,
              uarch::KernelProfiler prof)
{
    ObjectList out = tracked;
    const auto steps = static_cast<std::size_t>(
        config.horizonSec / config.stepSec);

    std::uint64_t emitted = 0;
    for (DetectedObject &obj : out.objects) {
        obj.predictedPath.clear();
        if (!obj.hasVelocity)
            continue;
        obj.predictedPath.reserve(steps);
        const double speed = obj.velocity.norm();
        double yaw = obj.yaw;
        geom::Vec2 pos = obj.position;
        for (std::size_t s = 0; s < steps; ++s) {
            // CTRV extrapolation with the tracked yaw rate.
            yaw = geom::normalizeAngle(
                yaw + obj.yawRate * config.stepSec);
            pos += geom::Vec2{std::cos(yaw), std::sin(yaw)} *
                   (speed * config.stepSec);
            obj.predictedPath.push_back(pos);
            if (prof.tracing())
                prof.store(regionPaths,
                           (static_cast<std::uint64_t>(
                                &obj - out.objects.data()) *
                                steps +
                            s) * sizeof(geom::Vec2),
                           sizeof(geom::Vec2));
            ++emitted;
        }
    }

    uarch::OpCounts ops;
    ops.loads = 6 * emitted + 30 * out.objects.size();
    ops.stores = 4 * emitted + 10 * out.objects.size();
    ops.branches = 2 * emitted + 6 * out.objects.size();
    ops.fpAlu = 18 * emitted;
    ops.intAlu = 4 * emitted;
    prof.addOps(ops);
    prof.bulkBranches(2 * emitted);
    return out;
}

} // namespace av::perception
