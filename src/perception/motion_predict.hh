/**
 * @file
 * Naive motion prediction — Autoware's naive_motion_predict:
 * extrapolate each tracked object under a constant-velocity /
 * constant-turn assumption (the paper notes Autoware assumes
 * constant velocity both when driving straight and when turning,
 * §II-B).
 */

#ifndef AVSCOPE_PERCEPTION_MOTION_PREDICT_HH
#define AVSCOPE_PERCEPTION_MOTION_PREDICT_HH

#include "perception/objects.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** Prediction horizon parameters (Autoware defaults). */
struct PredictConfig
{
    double horizonSec = 3.0;
    double stepSec = 0.15;
};

/**
 * Fill predictedPath on every object (in place) and return the
 * enriched list.
 */
ObjectList predictMotion(const ObjectList &tracked,
                         const PredictConfig &config,
                         uarch::KernelProfiler prof =
                             uarch::KernelProfiler());

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_MOTION_PREDICT_HH
