/**
 * @file
 * Functional detection model for the vision detectors.
 *
 * The DNN's *cost* comes from dnn::networkKernels / pre/postprocess;
 * its *output* is synthesized here from the camera frame's
 * ground-truth visible objects using per-network detection quality
 * (recall vs apparent size, occlusion sensitivity, classification
 * accuracy, box noise). This preserves the property the paper's
 * pipeline depends on: detector choice changes both load and what
 * the downstream fusion/tracking nodes have to chew on.
 */

#ifndef AVSCOPE_PERCEPTION_VISION_MODEL_HH
#define AVSCOPE_PERCEPTION_VISION_MODEL_HH

#include <string>

#include "perception/objects.hh"
#include "world/sensors.hh"

namespace av::perception {

/** Detector identity (selects network + quality + cost). */
enum class DetectorKind {
    Ssd512,
    Ssd300,
    Yolov3,
};

const char *detectorName(DetectorKind kind);

/** Detection-quality parameters of one network. */
struct DetectorQuality
{
    double recallBase = 0.95;  ///< for large, unoccluded objects
    double heightPx50 = 20.0;  ///< apparent size at 50% recall
    double classAccuracy = 0.9;
    double bearingNoise = 0.004; ///< radians
    double sizeNoise = 0.08;     ///< relative
    double falsePositiveRate = 0.05; ///< per frame
};

/** Published quality presets. */
DetectorQuality qualityOf(DetectorKind kind);

/**
 * Produce the detection list for one camera frame.
 * Deterministic in (frame contents, t, kind).
 *
 * Output objects are in *bearing space*: bearing, rangeEstimate,
 * label, confidence; fusion later grounds them in the world.
 */
ObjectList detectObjects(const world::CameraFrame &frame,
                         sim::Tick t, DetectorKind kind);

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_VISION_MODEL_HH
