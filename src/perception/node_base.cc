#include "perception/node_base.hh"

#include "sim/ticks.hh"

namespace av::perception {

PerceptionNode::PerceptionNode(ros::RosGraph &graph, std::string name,
                               const NodeConfig &config)
    : ros::Node(graph, std::move(name)), config_(config),
      arch_(config.cache, config.branch, config.pipeline,
            config.tracePeriod),
      latency_(1u << 15), jitterRng_(std::hash<std::string>{}(
                              this->name()))
{
    arch_.setOpScale(config_.workScale);
}

hw::CpuTask
PerceptionNode::makeCpuTask(const uarch::InvocationCost &cost,
                            std::function<void()> on_complete)
{
    hw::CpuTask task;
    task.owner = name();
    task.cycles = cost.cycles;
    if (config_.costJitterCv > 0.0)
        task.cycles *= jitterRng_.logNormalMeanCv(
            1.0, config_.costJitterCv);
    task.memBytesPerCycle =
        cost.cycles > 0.0 ? cost.dramBytes / cost.cycles : 0.0;
    // Sensitivity: the full L1-miss traffic (DRAM estimate divided
    // back by the L2 absorption factor).
    const double l2_factor =
        arch_.pipeline().config().l2MissFactor;
    task.l1BytesPerCycle =
        l2_factor > 0.0 ? task.memBytesPerCycle / l2_factor : 0.0;
    task.onComplete = std::move(on_complete);
    return task;
}

void
PerceptionNode::finishWorkOnCpu(std::function<void()> then)
{
    const uarch::InvocationCost cost = arch_.endInvocation();
    machine().cpu().submit(makeCpuTask(cost, std::move(then)));
}

void
PerceptionNode::recordLatency(sim::Tick arrival)
{
    const sim::Tick now = graph_.eventQueue().now();
    if (now >= arrival)
        latency_.add(sim::ticksToMs(now - arrival));
}

} // namespace av::perception
