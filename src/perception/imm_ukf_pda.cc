#include "perception/imm_ukf_pda.hh"

#include <algorithm>
#include <cmath>

#include "geom/pose.hh"
#include "util/logging.hh"

namespace av::perception {

namespace {

enum Site : std::uint64_t {
    siteGate = 0x74001,
    siteConfirm = 0x74002,
    siteDrop = 0x74003,
};

/** Logical probe region (block 32-39, see profiler.hh). */
constexpr av::uarch::KernelProfiler::Region regionTracks = 32;

/** Model indices. */
enum Model : std::size_t { modelCv = 0, modelCtrv = 1, modelRm = 2 };

/** IMM transition probabilities (sticky diagonal). */
constexpr double transition[nModels][nModels] = {
    {0.90, 0.08, 0.02},
    {0.08, 0.90, 0.02},
    {0.05, 0.05, 0.90},
};

using StateVec = std::array<double, nState>;
using StateMat = av::geom::Mat<nState, nState>;

/** CTRV / CV / RM process model for one sigma point. */
StateVec
processModel(const StateVec &x, double dt, std::size_t model)
{
    StateVec out = x;
    const double v = x[2];
    const double yaw = x[3];
    const double yawd = model == modelCtrv ? x[4] : 0.0;

    if (model == modelRm) {
        // Random motion: position fixed, velocity decays.
        out[2] = v * 0.7;
        return out;
    }
    if (std::fabs(yawd) > 1e-3) {
        out[0] += v / yawd *
                  (std::sin(yaw + yawd * dt) - std::sin(yaw));
        out[1] += v / yawd *
                  (std::cos(yaw) - std::cos(yaw + yawd * dt));
    } else {
        out[0] += v * std::cos(yaw) * dt;
        out[1] += v * std::sin(yaw) * dt;
    }
    out[3] = av::geom::normalizeAngle(yaw + yawd * dt);
    out[4] = model == modelCtrv ? x[4] : 0.0;
    return out;
}

/** Per-track per-frame abstract op cost (UKF algebra). */
const av::uarch::OpCounts trackOps{/*loads=*/800, /*stores=*/500,
                                   /*branches=*/550, /*intAlu=*/700,
                                   /*fpAlu=*/750, /*fpDiv=*/65,
                                   /*simd=*/0, /*other=*/160};

/** Per-(track,measurement) gating cost. */
const av::uarch::OpCounts gateOps{/*loads=*/24, /*stores=*/4,
                                  /*branches=*/6, /*intAlu=*/10,
                                  /*fpAlu=*/60, /*fpDiv=*/2,
                                  /*simd=*/0, /*other=*/4};

} // namespace

ImmUkfPdaTracker::ImmUkfPdaTracker(const TrackerConfig &config)
    : config_(config)
{
}

std::vector<Track>
ImmUkfPdaTracker::tracks() const
{
    std::vector<Track> out;
    out.reserve(tracks_.size());
    for (const auto &t : tracks_)
        out.push_back(t.pub);
    return out;
}

std::size_t
ImmUkfPdaTracker::confirmedCount() const
{
    std::size_t n = 0;
    for (const auto &t : tracks_)
        n += t.pub.confirmed;
    return n;
}

ImmUkfPdaTracker::InternalTrack
ImmUkfPdaTracker::makeTrack(const DetectedObject &detection)
{
    InternalTrack track;
    track.pub.id = nextId_++;
    track.pub.hits = 1;
    track.pub.state = {detection.position.x, detection.position.y,
                       config_.initVelocity, detection.yaw, 0.0};
    track.pub.modeProb = {0.4, 0.4, 0.2};
    track.pub.appearance = detection;

    StateMat p;
    p(0, 0) = p(1, 1) = 1.0;
    p(2, 2) = 9.0;
    p(3, 3) = 1.0;
    p(4, 4) = 0.5;
    track.pub.covariance = p;
    for (auto &m : track.models) {
        m.x = track.pub.state;
        m.p = p;
    }
    return track;
}

void
ImmUkfPdaTracker::mixModels(InternalTrack &track,
                            uarch::KernelProfiler &prof)
{
    (void)prof;
    // IMM interaction: mixed initial conditions per model.
    const auto &mu = track.pub.modeProb;
    std::array<double, nModels> cbar{};
    for (std::size_t j = 0; j < nModels; ++j) {
        for (std::size_t i = 0; i < nModels; ++i)
            cbar[j] += transition[i][j] * mu[i];
        cbar[j] = std::max(cbar[j], 1e-12);
    }
    std::array<StateVec, nModels> mixed_x{};
    std::array<StateMat, nModels> mixed_p{};
    for (std::size_t j = 0; j < nModels; ++j) {
        for (std::size_t i = 0; i < nModels; ++i) {
            const double w = transition[i][j] * mu[i] / cbar[j];
            for (std::size_t k = 0; k < nState; ++k)
                mixed_x[j][k] += w * track.models[i].x[k];
        }
        for (std::size_t i = 0; i < nModels; ++i) {
            const double w = transition[i][j] * mu[i] / cbar[j];
            for (std::size_t r = 0; r < nState; ++r) {
                for (std::size_t c = 0; c < nState; ++c) {
                    const double dx =
                        track.models[i].x[r] - mixed_x[j][r];
                    const double dy =
                        track.models[i].x[c] - mixed_x[j][c];
                    mixed_p[j](r, c) +=
                        w * (track.models[i].p(r, c) + dx * dy);
                }
            }
        }
    }
    for (std::size_t j = 0; j < nModels; ++j) {
        track.models[j].x = mixed_x[j];
        track.models[j].p = mixed_p[j];
    }
}

void
ImmUkfPdaTracker::predictTrack(InternalTrack &track, double dt,
                               uarch::KernelProfiler &prof)
{
    mixModels(track, prof);

    for (std::size_t mi = 0; mi < nModels; ++mi) {
        ModelState &m = track.models[mi];

        // Unscented transform: 2n+1 sigma points.
        constexpr double lambda = 3.0 - double(nState);
        StateMat sqrt_p;
        StateMat scaled = m.p * (lambda + double(nState));
        if (!geom::choleskyFactor(scaled, sqrt_p)) {
            // Regularize and retry once.
            for (std::size_t k = 0; k < nState; ++k)
                scaled(k, k) += 1e-6 * (lambda + double(nState));
            if (!geom::choleskyFactor(scaled, sqrt_p))
                continue;
        }

        std::array<StateVec, 2 * nState + 1> sigma;
        sigma[0] = m.x;
        for (std::size_t k = 0; k < nState; ++k) {
            for (std::size_t r = 0; r < nState; ++r) {
                sigma[1 + k][r] = m.x[r] + sqrt_p(r, k);
                sigma[1 + nState + k][r] = m.x[r] - sqrt_p(r, k);
            }
        }

        const double w0 = lambda / (lambda + double(nState));
        const double wi = 0.5 / (lambda + double(nState));

        std::array<StateVec, 2 * nState + 1> propagated;
        for (std::size_t sp = 0; sp < sigma.size(); ++sp)
            propagated[sp] = processModel(sigma[sp], dt, mi);

        StateVec mean{};
        for (std::size_t sp = 0; sp < propagated.size(); ++sp) {
            const double w = sp == 0 ? w0 : wi;
            for (std::size_t r = 0; r < nState; ++r)
                mean[r] += w * propagated[sp][r];
        }
        mean[3] = geom::normalizeAngle(mean[3]);

        StateMat cov;
        for (std::size_t sp = 0; sp < propagated.size(); ++sp) {
            const double w = sp == 0 ? w0 : wi;
            StateVec d;
            for (std::size_t r = 0; r < nState; ++r)
                d[r] = propagated[sp][r] - mean[r];
            d[3] = geom::normalizeAngle(d[3]);
            for (std::size_t r = 0; r < nState; ++r)
                for (std::size_t cc = 0; cc < nState; ++cc)
                    cov(r, cc) += w * d[r] * d[cc];
        }

        // Additive process noise.
        const double sa = config_.stdAccel;
        const double sy = config_.stdYawAccel;
        const double dt2 = dt * dt;
        cov(0, 0) += 0.25 * dt2 * dt2 * sa * sa;
        cov(1, 1) += 0.25 * dt2 * dt2 * sa * sa;
        cov(2, 2) += dt2 * sa * sa;
        cov(3, 3) += 0.25 * dt2 * dt2 * sy * sy;
        cov(4, 4) += dt2 * sy * sy;
        if (mi == modelRm) {
            cov(0, 0) += 0.4 * dt2;
            cov(1, 1) += 0.4 * dt2;
        }

        m.x = mean;
        m.p = cov;
        if (prof.tracing()) {
            // Track state/covariance reads; hot after first touch
            // but scattered across the track population. The track
            // id + model index locate the state logically.
            const std::uint64_t at =
                (std::uint64_t{track.pub.id} * nModels + mi) *
                sizeof(ModelState);
            prof.load(regionTracks, at, sizeof(StateMat));
            prof.load(regionTracks, at + sizeof(StateMat),
                      sizeof(StateVec));
            prof.store(regionTracks, at, sizeof(StateMat));
            prof.hotLoads(360);
            prof.hotStores(220);
        }
    }
    prof.addOps(trackOps);
    prof.bulkBranches(140);
}

bool
ImmUkfPdaTracker::updateTrack(
    InternalTrack &track,
    const std::vector<const DetectedObject *> &gated,
    uarch::KernelProfiler &prof)
{
    const double r_var = config_.measNoise * config_.measNoise;
    bool any = false;

    for (std::size_t mi = 0; mi < nModels; ++mi) {
        ModelState &m = track.models[mi];
        // Linear measurement z = (px, py):
        // S = P(0:1,0:1) + R.
        double s00 = m.p(0, 0) + r_var;
        double s01 = m.p(0, 1);
        double s11 = m.p(1, 1) + r_var;
        const double det = s00 * s11 - s01 * s01;
        if (det <= 1e-12) {
            m.likelihood = 1e-9;
            continue;
        }
        const double i00 = s11 / det;
        const double i01 = -s01 / det;
        const double i11 = s00 / det;

        // PDA: association weights over gated measurements.
        std::vector<double> weight(gated.size());
        double weight_sum = 0.0;
        std::vector<std::array<double, 2>> innovations(
            gated.size());
        for (std::size_t g = 0; g < gated.size(); ++g) {
            const double nx = gated[g]->position.x - m.x[0];
            const double ny = gated[g]->position.y - m.x[1];
            innovations[g] = {nx, ny};
            const double d2 = nx * (i00 * nx + i01 * ny) +
                              ny * (i01 * nx + i11 * ny);
            const double gauss =
                std::exp(-0.5 * d2) /
                (2.0 * M_PI * std::sqrt(det));
            weight[g] = config_.detectProb * gauss;
            weight_sum += weight[g];
        }
        // PDAF "none correct" mass in density units (Bar-Shalom):
        // b = lambda * (1 - P_D * P_G) / P_D, with the gate
        // probability folded into detectProb.
        const double beta0 = config_.clutterDensity *
                             (1.0 - config_.detectProb) /
                             config_.detectProb;
        const double denom = weight_sum + beta0;

        if (gated.empty() || weight_sum <= 0.0) {
            m.likelihood = beta0;
            continue;
        }
        any = true;

        // Combined innovation.
        double cx = 0.0, cy = 0.0, spread00 = 0.0, spread01 = 0.0,
               spread11 = 0.0;
        for (std::size_t g = 0; g < gated.size(); ++g) {
            const double beta = weight[g] / denom;
            cx += beta * innovations[g][0];
            cy += beta * innovations[g][1];
            spread00 += beta * innovations[g][0] *
                        innovations[g][0];
            spread01 += beta * innovations[g][0] *
                        innovations[g][1];
            spread11 += beta * innovations[g][1] *
                        innovations[g][1];
        }

        // Kalman gain K = P H^T S^-1 (H selects rows 0,1).
        std::array<double, nState> k0, k1;
        for (std::size_t r = 0; r < nState; ++r) {
            k0[r] = m.p(r, 0) * i00 + m.p(r, 1) * i01;
            k1[r] = m.p(r, 0) * i01 + m.p(r, 1) * i11;
        }
        for (std::size_t r = 0; r < nState; ++r)
            m.x[r] += k0[r] * cx + k1[r] * cy;
        m.x[3] = geom::normalizeAngle(m.x[3]);

        // Covariance: standard update plus PDA spread term.
        StateMat newp = m.p;
        for (std::size_t r = 0; r < nState; ++r) {
            for (std::size_t c = 0; c < nState; ++c) {
                newp(r, c) -= k0[r] * (s00 * k0[c] + s01 * k1[c]) +
                              k1[r] * (s01 * k0[c] + s11 * k1[c]);
                const double sp_term =
                    k0[r] * ((spread00 - cx * cx) * k0[c] +
                             (spread01 - cx * cy) * k1[c]) +
                    k1[r] * ((spread01 - cx * cy) * k0[c] +
                             (spread11 - cy * cy) * k1[c]);
                newp(r, c) += sp_term;
            }
        }
        m.p = newp;
        m.likelihood = std::max(weight_sum + beta0, 1e-12);
    }

    // IMM mode-probability update.
    double total = 0.0;
    std::array<double, nModels> cbar{};
    for (std::size_t j = 0; j < nModels; ++j) {
        for (std::size_t i = 0; i < nModels; ++i)
            cbar[j] += transition[i][j] * track.pub.modeProb[i];
        cbar[j] *= track.models[j].likelihood;
        total += cbar[j];
    }
    if (total > 0.0) {
        for (std::size_t j = 0; j < nModels; ++j)
            track.pub.modeProb[j] = cbar[j] / total;
    }
    prof.addOps(gateOps.scaled(std::max<std::size_t>(
        gated.size() * nModels, 1)));
    return any;
}

void
ImmUkfPdaTracker::combineEstimate(InternalTrack &track)
{
    StateVec mean{};
    for (std::size_t j = 0; j < nModels; ++j)
        for (std::size_t r = 0; r < nState; ++r)
            mean[r] += track.pub.modeProb[j] * track.models[j].x[r];
    StateMat cov;
    for (std::size_t j = 0; j < nModels; ++j) {
        for (std::size_t r = 0; r < nState; ++r) {
            for (std::size_t c = 0; c < nState; ++c) {
                const double dr = track.models[j].x[r] - mean[r];
                const double dc = track.models[j].x[c] - mean[c];
                cov(r, c) += track.pub.modeProb[j] *
                             (track.models[j].p(r, c) + dr * dc);
            }
        }
    }
    track.pub.state = mean;
    track.pub.covariance = cov;
}

ObjectList
ImmUkfPdaTracker::update(const ObjectList &detections, sim::Tick t,
                         uarch::KernelProfiler prof)
{
    const double dt =
        first_ ? 0.1
               : std::max(1e-3, sim::ticksToSeconds(t - lastUpdate_));
    first_ = false;
    lastUpdate_ = t;

    // Predict every track forward.
    for (InternalTrack &track : tracks_)
        predictTrack(track, dt, prof);

    // Gate measurements per track (using the CTRV model estimate).
    std::vector<std::vector<const DetectedObject *>> gated(
        tracks_.size());
    std::vector<std::uint8_t> associated(
        detections.objects.size(), 0);
    for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
        const ModelState &m = tracks_[ti].models[modelCtrv];
        const double r_var =
            config_.measNoise * config_.measNoise;
        const double s00 = m.p(0, 0) + r_var;
        const double s01 = m.p(0, 1);
        const double s11 = m.p(1, 1) + r_var;
        const double det =
            std::max(s00 * s11 - s01 * s01, 1e-12);
        for (std::size_t di = 0; di < detections.objects.size();
             ++di) {
            const DetectedObject &d = detections.objects[di];
            const double nx = d.position.x - m.x[0];
            const double ny = d.position.y - m.x[1];
            const double d2 =
                (nx * (s11 * nx - s01 * ny) +
                 ny * (s00 * ny - s01 * nx)) /
                det;
            const bool inside = d2 < config_.gateChi2;
            prof.branch(siteGate, inside);
            if (inside) {
                gated[ti].push_back(&d);
                associated[di] = 1;
            }
        }
    }

    // Update tracks; manage hit/miss counters.
    for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
        InternalTrack &track = tracks_[ti];
        const bool hit = updateTrack(track, gated[ti], prof);
        if (hit) {
            ++track.pub.hits;
            track.pub.misses = 0;
            // Refresh appearance from the nearest gated detection.
            const DetectedObject *best = nullptr;
            double best_d = 1e18;
            for (const DetectedObject *d : gated[ti]) {
                const double dd =
                    (d->position - geom::Vec2{track.models[0].x[0],
                                              track.models[0].x[1]})
                        .squaredNorm();
                if (dd < best_d) {
                    best_d = dd;
                    best = d;
                }
            }
            if (best) {
                // Keep semantic label once known.
                const Label old_label =
                    track.pub.appearance.label;
                track.pub.appearance = *best;
                if (best->label == Label::Unknown &&
                    old_label != Label::Unknown)
                    track.pub.appearance.label = old_label;
            }
        } else {
            ++track.pub.misses;
        }
        const bool confirm =
            !track.pub.confirmed &&
            track.pub.hits >= config_.confirmHits;
        prof.branch(siteConfirm, confirm);
        if (confirm)
            track.pub.confirmed = true;
        combineEstimate(track);
    }

    // Drop stale tracks.
    std::vector<InternalTrack> alive;
    alive.reserve(tracks_.size());
    for (InternalTrack &track : tracks_) {
        const bool drop = track.pub.misses >= config_.dropMisses;
        prof.branch(siteDrop, drop);
        if (!drop)
            alive.push_back(std::move(track));
    }
    tracks_ = std::move(alive);

    // Spawn tentative tracks from unassociated detections.
    for (std::size_t di = 0; di < detections.objects.size(); ++di) {
        if (!associated[di])
            tracks_.push_back(makeTrack(detections.objects[di]));
    }

    return emitConfirmed();
}

ObjectList
ImmUkfPdaTracker::coast(sim::Tick t, uarch::KernelProfiler prof)
{
    if (first_)
        return ObjectList{};
    const double dt =
        std::max(1e-3, sim::ticksToSeconds(t - lastUpdate_));
    lastUpdate_ = t;
    // Prediction only: no association, no hit/miss bookkeeping, so
    // a detector outage does not strip the track table.
    for (InternalTrack &track : tracks_) {
        predictTrack(track, dt, prof);
        combineEstimate(track);
    }
    return emitConfirmed();
}

ObjectList
ImmUkfPdaTracker::emitConfirmed() const
{
    ObjectList out;
    for (const InternalTrack &track : tracks_) {
        if (!track.pub.confirmed)
            continue;
        DetectedObject o = track.pub.appearance;
        o.id = track.pub.id;
        o.position = {track.pub.state[0], track.pub.state[1]};
        o.yaw = track.pub.state[3];
        o.hasVelocity = true;
        const double v = track.pub.state[2];
        o.velocity = geom::Vec2{std::cos(o.yaw), std::sin(o.yaw)} * v;
        o.yawRate = track.pub.state[4];
        out.objects.push_back(std::move(o));
    }
    return out;
}

} // namespace av::perception
