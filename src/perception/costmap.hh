/**
 * @file
 * Costmap generation — Autoware's costmap_generator: rasterize the
 * drivable area around the ego vehicle from (a) predicted objects
 * and (b) the obstacle point cloud. The paper profiles the two
 * callbacks separately (costmap_generator_obj is the latency-heavy
 * one, Fig. 5) and finds the node compute-bound with excellent
 * locality (IPC 2.07, Table VII) — which is what sequential raster
 * sweeps over a dense grid give.
 */

#ifndef AVSCOPE_PERCEPTION_COSTMAP_HH
#define AVSCOPE_PERCEPTION_COSTMAP_HH

#include "geom/pose.hh"
#include "perception/objects.hh"
#include "pointcloud/cloud.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** Grid geometry (Autoware defaults: 60x60 m around the ego). */
struct CostmapConfig
{
    double sizeX = 60.0;      ///< meters
    double sizeY = 60.0;
    double resolution = 0.1;  ///< m/cell -> 600x600 cells
    double inflation = 0.6;   ///< obstacle inflation radius (m)
    double pathCost = 0.6;    ///< cost of predicted-path cells
    double objectCost = 1.0;
    /** Point-layer inflation is finer (single LiDAR returns). */
    double pointInflation = 0.33;
};

/**
 * Rasterize predicted objects (footprints + predicted paths).
 * @param ego grid is centered on this pose
 */
Costmap generateObjectCostmap(const ObjectList &objects,
                              const geom::Pose2 &ego,
                              const CostmapConfig &config,
                              uarch::KernelProfiler prof =
                                  uarch::KernelProfiler());

/**
 * Rasterize the obstacle cloud (vehicle-frame points).
 */
Costmap generatePointsCostmap(const pc::PointCloud &no_ground,
                              const geom::Pose2 &ego,
                              const CostmapConfig &config,
                              uarch::KernelProfiler prof =
                                  uarch::KernelProfiler());

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_COSTMAP_HH
