#include "perception/costmap.hh"

#include <algorithm>
#include <cmath>

namespace av::perception {

namespace {

/** Logical probe region (block 56-63, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionGrid = 56;

Costmap
emptyGrid(const geom::Pose2 &ego, const CostmapConfig &config,
          uarch::KernelProfiler &prof)
{
    Costmap map;
    map.cellsX = static_cast<std::uint32_t>(config.sizeX /
                                            config.resolution);
    map.cellsY = static_cast<std::uint32_t>(config.sizeY /
                                            config.resolution);
    map.resolution = config.resolution;
    map.origin = ego.p - geom::Vec2{config.sizeX / 2.0,
                                    config.sizeY / 2.0};
    map.cost.assign(static_cast<std::size_t>(map.cellsX) *
                        map.cellsY,
                    0.0f);
    // Grid clear: a vectorized memset with non-temporal stores —
    // it moves DRAM traffic but does not pollute (or miss in) the
    // cache, so it is accounted as SIMD work only.
    uarch::OpCounts ops;
    ops.simd = map.cost.size() / 8;
    ops.intAlu = map.cost.size() / 16;
    prof.addOps(ops);
    return map;
}

/** Paint a filled disc of @p radius meters at world position. */
void
paintDisc(Costmap &map, const geom::Vec2 &world, double radius,
          float value, uarch::KernelProfiler &prof,
          std::uint64_t &painted)
{
    const double gx = (world.x - map.origin.x) / map.resolution;
    const double gy = (world.y - map.origin.y) / map.resolution;
    const int r_cells = std::max(
        1, static_cast<int>(radius / map.resolution));
    const int cx = static_cast<int>(gx);
    const int cy = static_cast<int>(gy);
    for (int y = cy - r_cells; y <= cy + r_cells; ++y) {
        if (y < 0 || y >= static_cast<int>(map.cellsY))
            continue;
        for (int x = cx - r_cells; x <= cx + r_cells; ++x) {
            if (x < 0 || x >= static_cast<int>(map.cellsX))
                continue;
            const double dx = x - gx;
            const double dy = y - gy;
            if (dx * dx + dy * dy >
                double(r_cells) * r_cells)
                continue;
            const std::size_t cell_idx =
                static_cast<std::size_t>(y) * map.cellsX +
                static_cast<std::size_t>(x);
            float &cell = map.cost[cell_idx];
            cell = std::max(cell, value);
            ++painted;
            if (prof.tracing() && painted % 8 == 0) {
                prof.store(regionGrid, cell_idx * sizeof(float),
                           sizeof(float));
                prof.load(regionGrid, cell_idx * sizeof(float),
                          sizeof(float));
                prof.hotLoads(24); // row-local raster arithmetic
                prof.hotStores(7);
            }
        }
    }
}

} // namespace

Costmap
generateObjectCostmap(const ObjectList &objects,
                      const geom::Pose2 &ego,
                      const CostmapConfig &config,
                      uarch::KernelProfiler prof)
{
    Costmap map = emptyGrid(ego, config, prof);
    std::uint64_t painted = 0;

    for (const DetectedObject &obj : objects.objects) {
        // Footprint: paint the oriented rectangle by sampling its
        // area at cell resolution.
        const double half_l = std::max(obj.length, 0.5) / 2.0;
        const double half_w = std::max(obj.width, 0.5) / 2.0;
        const double step = config.resolution;
        const double c = std::cos(obj.yaw);
        const double s = std::sin(obj.yaw);
        for (double u = -half_l; u <= half_l; u += step) {
            for (double v = -half_w; v <= half_w; v += step) {
                const geom::Vec2 w{
                    obj.position.x + c * u - s * v,
                    obj.position.y + s * u + c * v};
                paintDisc(map, w, config.inflation,
                          static_cast<float>(config.objectCost),
                          prof, painted);
            }
        }
        // Predicted path: inflated waypoints at lower cost.
        for (const geom::Vec2 &wp : obj.predictedPath) {
            paintDisc(map, wp,
                      config.inflation +
                          std::max(half_w, half_l) * 0.5,
                      static_cast<float>(config.pathCost), prof,
                      painted);
        }
    }

    uarch::OpCounts ops;
    ops.loads = 2 * painted;
    ops.stores = painted;
    ops.branches = 2 * painted;
    ops.fpAlu = 6 * painted;
    ops.intAlu = 5 * painted;
    prof.addOps(ops);
    prof.bulkBranches(2 * painted);
    return map;
}

Costmap
generatePointsCostmap(const pc::PointCloud &no_ground,
                      const geom::Pose2 &ego,
                      const CostmapConfig &config,
                      uarch::KernelProfiler prof)
{
    Costmap map = emptyGrid(ego, config, prof);
    std::uint64_t painted = 0;

    for (const pc::Point &p : no_ground.points) {
        if (p.z > 2.5)
            continue; // overhanging structures don't block
        const geom::Vec2 world = ego.apply({p.x, p.y});
        paintDisc(map, world, config.pointInflation,
                  static_cast<float>(config.objectCost), prof,
                  painted);
    }

    uarch::OpCounts ops;
    const std::uint64_t n = no_ground.size();
    ops.loads = 4 * n + 2 * painted;
    ops.stores = painted;
    ops.branches = 2 * n + painted;
    ops.fpAlu = 10 * n + 4 * painted;
    ops.intAlu = 4 * n + 4 * painted;
    prof.addOps(ops);
    prof.bulkBranches(2 * n + painted);
    return map;
}

} // namespace av::perception
