/**
 * @file
 * The Autoware-equivalent perception nodes (Table I of the paper),
 * each wiring one algorithm into the middleware + machine:
 * subscriptions, functional execution, simulated cost, publication.
 *
 * Topic names follow the paper's Table IV.
 */

#ifndef AVSCOPE_PERCEPTION_NODES_HH
#define AVSCOPE_PERCEPTION_NODES_HH

#include <memory>
#include <optional>

#include "dnn/cost.hh"
#include "dnn/network.hh"
#include "perception/costmap.hh"
#include "perception/euclidean_cluster.hh"
#include "perception/fusion.hh"
#include "perception/imm_ukf_pda.hh"
#include "perception/motion_predict.hh"
#include "perception/ndt.hh"
#include "perception/node_base.hh"
#include "perception/objects.hh"
#include "perception/ray_ground_filter.hh"
#include "perception/vision_model.hh"
#include "pointcloud/voxel_grid.hh"
#include "sim/periodic.hh"
#include "world/sensors.hh"

namespace av::perception {

/** Internal topic names (paper Table IV spelling). */
namespace topics {
inline constexpr const char *filteredPoints = "/filtered_points";
inline constexpr const char *ndtPose = "/ndt_pose";
inline constexpr const char *pointsNoGround = "/points_no_ground";
inline constexpr const char *pointsGround = "/points_ground";
inline constexpr const char *lidarObjects =
    "/detection/lidar_detector/objects";
inline constexpr const char *imageObjects =
    "/detection/image_detector/objects";
inline constexpr const char *fusedObjects =
    "/detection/fusion_tools/objects";
inline constexpr const char *trackedObjects =
    "/detection/object_tracker/objects";
inline constexpr const char *objects = "/detection/objects";
inline constexpr const char *predictedObjects =
    "/prediction/motion_predictor/objects";
inline constexpr const char *costmap = "/semantics/costmap";
} // namespace topics

/**
 * voxel_grid_filter: downsample /points_raw -> /filtered_points.
 */
class VoxelGridFilterNode : public PerceptionNode
{
  public:
    VoxelGridFilterNode(ros::RosGraph &graph, const NodeConfig &config,
                        double leaf = 1.5);

  private:
    double leaf_;
    ros::Publisher<pc::PointCloud> pub_;
};

/**
 * ndt_matching: localize /filtered_points against the map ->
 * /ndt_pose. Initializes from the first GNSS fix plus the
 * operator-provided initial heading (Autoware's rviz initial pose).
 */
class NdtMatchingNode : public PerceptionNode
{
  public:
    /**
     * @param initial_pose operator-provided initial pose (Autoware's
     *        rviz "2D Pose Estimate"); when absent, initialization
     *        falls back to the first GNSS fix with yaw 0
     * @param reseed_after after a localization gap longer than this,
     *        the next alignment reseeds its guess from the latest
     *        GNSS fix instead of dead-reckoning a stale pose
     *        (0 disables — the seed-default behaviour)
     */
    NdtMatchingNode(ros::RosGraph &graph, const NodeConfig &config,
                    const pc::PointCloud &map,
                    std::optional<geom::Pose2> initial_pose = {},
                    const NdtConfig &ndt = NdtConfig(),
                    sim::Tick reseed_after = 0);

    /** Latest pose estimate (for tests / examples). */
    const std::optional<PoseEstimate> &lastPose() const
    {
        return lastPose_;
    }

    /** GNSS reseeds performed after localization dropouts. */
    std::uint64_t reseedCount() const { return reseeds_; }

  private:
    NdtMatcher matcher_;
    std::optional<geom::Pose2> initialPose_;
    std::optional<geom::Vec3> gnssInit_;
    std::optional<PoseEstimate> lastPose_;
    geom::Vec2 velocity_;
    double yawRate_ = 0.0;
    /** Latest IMU/odometry sample (paper SII-A: the IMU anticipates
     *  where subsequent positions are likely to be). */
    std::optional<world::ImuSample> imu_;
    sim::Tick lastStamp_ = 0;
    sim::Tick reseedAfter_ = 0;
    std::optional<geom::Vec3> lastGnss_;
    std::uint64_t reseeds_ = 0;
    ros::Publisher<PoseEstimate> pub_;
};

/**
 * ray_ground_filter: /points_raw -> /points_no_ground (+ ground).
 */
class RayGroundFilterNode : public PerceptionNode
{
  public:
    RayGroundFilterNode(ros::RosGraph &graph,
                        const NodeConfig &config,
                        const RayGroundConfig &filter =
                            RayGroundConfig());

  private:
    RayGroundConfig filter_;
    ros::Publisher<pc::PointCloud> pubNoGround_;
    ros::Publisher<pc::PointCloud> pubGround_;
};

/**
 * euclidean_cluster: /points_no_ground -> LiDAR objects, with the
 * GPU-accelerated nearest-neighbour stage of Autoware's
 * lidar_euclidean_cluster_detect.
 */
class EuclideanClusterNode : public PerceptionNode
{
  public:
    EuclideanClusterNode(ros::RosGraph &graph,
                         const NodeConfig &config,
                         const ClusterConfig &cluster =
                             ClusterConfig(),
                         bool use_gpu = true);

  private:
    ClusterConfig cluster_;
    bool useGpu_;
    std::optional<PoseEstimate> pose_;
    ros::Publisher<ObjectList> pub_;
};

/**
 * vision_detection: /image_raw -> image objects. CPU preprocess,
 * GPU inference (layer kernels), CPU postprocess (the SSD sort).
 */
class VisionDetectorNode : public PerceptionNode
{
  public:
    VisionDetectorNode(ros::RosGraph &graph, const NodeConfig &config,
                       DetectorKind kind,
                       const dnn::GpuCostParams &gpu_params);

    DetectorKind kind() const { return kind_; }
    const dnn::NetworkSpec &network() const { return network_; }

  private:
    DetectorKind kind_;
    dnn::NetworkSpec network_;
    std::vector<hw::GpuKernel> kernels_;
    util::Rng rng_;
    ros::Publisher<ObjectList> pub_;
};

/**
 * range_vision_fusion: LiDAR objects (trigger) + cached image
 * objects -> fused objects carrying both sensor origins.
 */
class RangeVisionFusionNode : public PerceptionNode
{
  public:
    /**
     * @param vision_stale_after with a nonzero value, a LiDAR
     *        cluster list arriving while the newest image objects
     *        are older than this triggers a LiDAR-only publication
     *        instead of waiting for vision — the fusion keeps the
     *        tracker fed through a camera outage (0 disables)
     */
    RangeVisionFusionNode(ros::RosGraph &graph,
                          const NodeConfig &config,
                          const FusionConfig &fusion =
                              FusionConfig(),
                          sim::Tick vision_stale_after = 0);

    /** LiDAR-only fallback publications (vision stale). */
    std::uint64_t lidarOnlyCount() const { return lidarOnly_; }

  private:
    FusionConfig fusion_;
    std::optional<ros::Stamped<ObjectList>> lastLidar_;
    std::optional<PoseEstimate> pose_;
    sim::Tick visionStaleAfter_ = 0;
    sim::Tick lastVisionStamp_ = 0;
    bool sawVision_ = false;
    std::uint64_t lidarOnly_ = 0;
    ros::Publisher<ObjectList> pub_;
};

/**
 * imm_ukf_pda_tracker: fused objects -> tracked objects.
 */
class ImmUkfPdaNode : public PerceptionNode
{
  public:
    /**
     * @param coast_after with nonzero values, a periodic check (every
     *        @p coast_period) publishes predict-only track estimates
     *        whenever no fused detections arrived for longer than
     *        @p coast_after — the tracker coasts through detection
     *        gaps instead of going silent (0 disables)
     */
    ImmUkfPdaNode(ros::RosGraph &graph, const NodeConfig &config,
                  const TrackerConfig &tracker = TrackerConfig(),
                  sim::Tick coast_after = 0,
                  sim::Tick coast_period = 0);

    const ImmUkfPdaTracker &tracker() const { return tracker_; }

    /** Coast publications through detection gaps. */
    std::uint64_t coastCount() const { return coasts_; }

  private:
    void maybeCoast();

    ImmUkfPdaTracker tracker_;
    sim::Tick coastAfter_ = 0;
    sim::Tick lastFusedStamp_ = 0;
    bool sawFused_ = false;
    std::uint64_t coasts_ = 0;
    ros::Origins lastOrigins_;
    std::optional<sim::PeriodicTask> coastTask_;
    ros::Publisher<ObjectList> pub_;
};

/**
 * ukf_track_relay: republishes tracked objects on /detection/objects
 * (present in the paper's computation paths; adds one transport
 * hop).
 */
class TrackRelayNode : public PerceptionNode
{
  public:
    TrackRelayNode(ros::RosGraph &graph, const NodeConfig &config);

  private:
    ros::Publisher<ObjectList> pub_;
};

/**
 * naive_motion_predict: tracked objects -> objects with predicted
 * paths.
 */
class NaiveMotionPredictNode : public PerceptionNode
{
  public:
    NaiveMotionPredictNode(ros::RosGraph &graph,
                           const NodeConfig &config,
                           const PredictConfig &predict =
                               PredictConfig());

  private:
    PredictConfig predict_;
    ros::Publisher<ObjectList> pub_;
};

/**
 * costmap_generator: two callbacks, profiled separately as the
 * paper does (costmap_generator_obj / costmap_generator_points).
 * The object callback owns the node's main latency series; the
 * points callback has its own.
 */
class CostmapGeneratorNode : public PerceptionNode
{
  public:
    CostmapGeneratorNode(ros::RosGraph &graph,
                         const NodeConfig &config,
                         const CostmapConfig &costmap =
                             CostmapConfig());

    /** Latency of the points callback (obj is latencySeries()). */
    const util::SampleSeries &pointsLatencySeries() const
    {
        return pointsLatency_;
    }

  private:
    CostmapConfig costmap_;
    std::optional<PoseEstimate> pose_;
    util::SampleSeries pointsLatency_;
    ros::Publisher<Costmap> pub_;
};

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_NODES_HH
