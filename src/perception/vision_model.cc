#include "perception/vision_model.hh"

#include <cmath>

#include "util/random.hh"

namespace av::perception {

const char *
detectorName(DetectorKind kind)
{
    switch (kind) {
      case DetectorKind::Ssd512: return "SSD512";
      case DetectorKind::Ssd300: return "SSD300";
      case DetectorKind::Yolov3: return "YOLOv3";
    }
    return "?";
}

DetectorQuality
qualityOf(DetectorKind kind)
{
    DetectorQuality q;
    switch (kind) {
      case DetectorKind::Ssd512:
        // Highest input resolution: best small-object recall.
        q.recallBase = 0.96;
        q.heightPx50 = 14.0;
        q.classAccuracy = 0.92;
        break;
      case DetectorKind::Ssd300:
        q.recallBase = 0.92;
        q.heightPx50 = 26.0;
        q.classAccuracy = 0.90;
        break;
      case DetectorKind::Yolov3:
        q.recallBase = 0.94;
        q.heightPx50 = 19.0;
        q.classAccuracy = 0.91;
        break;
    }
    return q;
}

namespace {

Label
classify(world::ActorClass cls)
{
    switch (cls) {
      case world::ActorClass::Car: return Label::Car;
      case world::ActorClass::Truck: return Label::Truck;
      case world::ActorClass::Pedestrian: return Label::Pedestrian;
      case world::ActorClass::Cyclist: return Label::Cyclist;
    }
    return Label::Unknown;
}

Label
confuse(Label truth, util::Rng &rng)
{
    // Misclassification swaps within coarse categories.
    switch (truth) {
      case Label::Car:
        return rng.bernoulli(0.7) ? Label::Truck : Label::Unknown;
      case Label::Truck:
        return Label::Car;
      case Label::Pedestrian:
        return rng.bernoulli(0.6) ? Label::Cyclist
                                  : Label::Unknown;
      case Label::Cyclist:
        return Label::Pedestrian;
      default:
        return Label::Unknown;
    }
}

} // namespace

ObjectList
detectObjects(const world::CameraFrame &frame, sim::Tick t,
              DetectorKind kind)
{
    const DetectorQuality q = qualityOf(kind);
    ObjectList out;

    for (const world::VisibleObject &vo : frame.truth) {
        util::Rng rng(static_cast<std::uint64_t>(t) * 1000003u +
                      vo.truthId * 7919u +
                      static_cast<std::uint64_t>(kind) * 104729u);
        // Recall: logistic in apparent size, scaled by occlusion.
        const double size_term =
            1.0 /
            (1.0 + std::exp(-(vo.imageHeightPx - q.heightPx50) /
                            (0.35 * q.heightPx50)));
        const double p_detect =
            q.recallBase * size_term * (1.0 - 0.8 * vo.occlusion);
        if (!rng.bernoulli(p_detect))
            continue;

        DetectedObject obj;
        const Label truth_label = classify(vo.cls);
        obj.label = rng.bernoulli(q.classAccuracy)
                        ? truth_label
                        : confuse(truth_label, rng);
        obj.confidence =
            std::min(0.99, 0.4 + 0.6 * size_term -
                               0.3 * vo.occlusion +
                               rng.gaussian(0.0, 0.05));
        obj.bearing =
            vo.bearing + rng.gaussian(0.0, q.bearingNoise);
        obj.rangeEstimate =
            vo.range * (1.0 + rng.gaussian(0.0, q.sizeNoise));
        obj.height = 1.6 * (1.0 + rng.gaussian(0.0, q.sizeNoise));
        obj.truthId = vo.truthId;
        out.objects.push_back(obj);
    }

    // Occasional false positive.
    util::Rng fp_rng(static_cast<std::uint64_t>(t) * 60013u +
                     static_cast<std::uint64_t>(kind));
    if (fp_rng.bernoulli(q.falsePositiveRate)) {
        DetectedObject ghost;
        ghost.label = Label::Car;
        ghost.confidence = fp_rng.uniform(0.3, 0.55);
        ghost.bearing = fp_rng.uniform(-0.6, 0.6);
        ghost.rangeEstimate = fp_rng.uniform(15.0, 50.0);
        out.objects.push_back(ghost);
    }
    return out;
}

} // namespace av::perception
