/**
 * @file
 * Range-vision fusion — Autoware's range_vision_fusion node: match
 * LiDAR clusters with image detections so objects get both 3-D
 * geometry (from LiDAR) and semantics (from vision), paper §II-B.
 */

#ifndef AVSCOPE_PERCEPTION_FUSION_HH
#define AVSCOPE_PERCEPTION_FUSION_HH

#include "geom/pose.hh"
#include "perception/objects.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** Fusion matching parameters. */
struct FusionConfig
{
    double bearingSlackRad = 0.035; ///< extra matching tolerance
    double maxRangeRatio = 0.5;     ///< |r_lidar - r_vis| / r limit
    double minVisionConfidence = 0.30;
    bool keepUnmatchedVision = true;
};

/**
 * Fuse.
 * @param lidar_objects world-frame clusters (Unknown labels)
 * @param vision_objects bearing-space detections
 * @param ego          pose the bearings are relative to
 */
ObjectList fuseObjects(const ObjectList &lidar_objects,
                       const ObjectList &vision_objects,
                       const geom::Pose2 &ego,
                       const FusionConfig &config,
                       uarch::KernelProfiler prof =
                           uarch::KernelProfiler());

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_FUSION_HH
