#include "perception/euclidean_cluster.hh"

#include <algorithm>
#include <cmath>

#include "pointcloud/kdtree.hh"

namespace av::perception {

namespace {

enum Site : std::uint64_t {
    siteUnvisited = 0x73001,
    siteClusterAccept = 0x73002,
};

/** Logical probe regions (block 24-31, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionVisited = 24;
constexpr uarch::KernelProfiler::Region regionMembers = 25;

} // namespace

pc::PointCloud
cropForClustering(const pc::PointCloud &cloud,
                  const ClusterConfig &config,
                  uarch::KernelProfiler prof)
{
    pc::PointCloud out;
    out.stampNs = cloud.stampNs;
    const double r2 = config.detectRange * config.detectRange;
    for (const pc::Point &p : cloud.points) {
        if (p.z > config.clipHeight)
            continue;
        if (double(p.x) * p.x + double(p.y) * p.y > r2)
            continue;
        out.push_back(p);
    }
    uarch::OpCounts ops;
    ops.loads = 4 * cloud.size();
    ops.stores = 2 * out.size();
    ops.branches = 2 * cloud.size();
    ops.fpAlu = 4 * cloud.size();
    prof.addOps(ops);
    prof.bulkBranches(2 * cloud.size());
    return out;
}

std::vector<Cluster>
euclideanCluster(const pc::PointCloud &cloud,
                 const ClusterConfig &config,
                 uarch::KernelProfiler prof)
{
    std::vector<Cluster> clusters;
    if (cloud.empty())
        return clusters;

    pc::KdTree tree;
    tree.build(cloud, prof);

    std::vector<std::uint8_t> visited(cloud.size(), 0);
    std::vector<std::uint32_t> frontier;
    std::vector<std::uint32_t> members;
    std::vector<std::uint32_t> found;

    for (std::uint32_t seed = 0; seed < cloud.size(); ++seed) {
        const bool fresh = !visited[seed];
        prof.branch(siteUnvisited, fresh);
        if (!fresh)
            continue;
        visited[seed] = 1;
        members.clear();
        members.push_back(seed);
        frontier.clear();
        frontier.push_back(seed);

        while (!frontier.empty() &&
               members.size() < config.maxPoints) {
            const std::uint32_t idx = frontier.back();
            frontier.pop_back();
            tree.radiusSearch(cloud[idx].vec(), config.tolerance,
                              found, prof);
            for (const std::uint32_t n : found) {
                if (prof.tracing()) {
                    prof.load(regionVisited, n, 1);
                    prof.hotLoads(3);
                }
                if (visited[n])
                    continue;
                visited[n] = 1;
                if (prof.tracing()) {
                    // The visited flags and the growing member /
                    // frontier vectors all write scattered lines —
                    // the poor write locality of Table VII.
                    prof.store(regionVisited, n, 1);
                    prof.store(regionMembers,
                               members.size() *
                                   sizeof(std::uint32_t),
                               sizeof(std::uint32_t));
                }
                members.push_back(n);
                frontier.push_back(n);
            }
        }

        if (members.size() < config.minPoints)
            continue;

        // Geometry: centroid, planar principal axis, extents.
        geom::Vec3 centroid;
        for (const std::uint32_t i : members)
            centroid += cloud[i].vec();
        centroid = centroid /
                   static_cast<double>(members.size());

        double sxx = 0, sxy = 0, syy = 0;
        double z_min = 1e9, z_max = -1e9;
        for (const std::uint32_t i : members) {
            const double dx = cloud[i].x - centroid.x;
            const double dy = cloud[i].y - centroid.y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
            z_min = std::min(z_min, double(cloud[i].z));
            z_max = std::max(z_max, double(cloud[i].z));
        }
        const double yaw =
            0.5 * std::atan2(2.0 * sxy, sxx - syy);

        double e_min = 1e9, e_max = -1e9;
        double f_min = 1e9, f_max = -1e9;
        const double c = std::cos(yaw), s = std::sin(yaw);
        for (const std::uint32_t i : members) {
            const double dx = cloud[i].x - centroid.x;
            const double dy = cloud[i].y - centroid.y;
            const double u = c * dx + s * dy;
            const double v = -s * dx + c * dy;
            e_min = std::min(e_min, u);
            e_max = std::max(e_max, u);
            f_min = std::min(f_min, v);
            f_max = std::max(f_max, v);
        }

        Cluster cl;
        cl.centroid = centroid;
        cl.yaw = yaw;
        cl.length = e_max - e_min;
        cl.width = f_max - f_min;
        cl.height = z_max - z_min;
        cl.pointCount =
            static_cast<std::uint32_t>(members.size());

        const bool accept =
            cl.height >= config.minHeight &&
            std::max(cl.length, cl.width) <= config.maxObjectDim;
        prof.branch(siteClusterAccept, accept);
        if (accept)
            clusters.push_back(cl);

        // Geometry passes: three sweeps over the member points.
        uarch::OpCounts geo;
        geo.loads = 9 * members.size();
        geo.fpAlu = 22 * members.size();
        geo.branches = 4 * members.size();
        geo.intAlu = 3 * members.size();
        geo.fpDiv = 3;
        prof.addOps(geo);
    }
    prof.bulkBranches(2 * cloud.size());
    return clusters;
}

} // namespace av::perception
