#include "perception/ray_ground_filter.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace av::perception {

namespace {

enum Site : std::uint64_t {
    siteIsGround = 0x72001,
    siteSortCompare = 0x72002,
};

struct RadialPoint
{
    float radius;
    float z;
    std::uint32_t index;
};

/** Logical probe regions (block 64-71, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionScan = 64;
constexpr uarch::KernelProfiler::Region regionRays = 65;
constexpr uarch::KernelProfiler::Region regionGround = 66;
constexpr uarch::KernelProfiler::Region regionNoGround = 67;

/** 64 KiB of logical space per azimuth ray. */
std::uint64_t
rayOffset(std::uint64_t ray, std::uint64_t element)
{
    return (ray << 16) + element * sizeof(RadialPoint);
}

} // namespace

GroundSplit
rayGroundFilter(const pc::PointCloud &scan,
                const RayGroundConfig &config,
                uarch::KernelProfiler prof)
{
    GroundSplit out;
    out.ground.stampNs = scan.stampNs;
    out.noGround.stampNs = scan.stampNs;

    // Bucket into azimuth rays.
    std::vector<std::vector<RadialPoint>> rays(config.rays);
    for (std::uint32_t i = 0; i < scan.size(); ++i) {
        const pc::Point &p = scan[i];
        const double r = std::hypot(p.x, p.y);
        if (r < config.minPointDistance)
            continue;
        const double az = std::atan2(p.y, p.x) + M_PI;
        auto bucket = static_cast<std::uint32_t>(
            az / (2.0 * M_PI) * config.rays);
        if (bucket >= config.rays)
            bucket = config.rays - 1;
        rays[bucket].push_back(
            {static_cast<float>(r), p.z, i});
        if (prof.tracing()) {
            prof.load(regionScan, i * sizeof(pc::Point),
                      sizeof(pc::Point));
            prof.store(regionRays,
                       rayOffset(bucket, rays[bucket].size() - 1),
                       sizeof(RadialPoint));
        }
    }

    const double slope_tan =
        std::tan(config.slopeThresholdDeg * M_PI / 180.0);
    const double general_tan =
        std::tan(config.generalSlopeDeg * M_PI / 180.0);

    std::uint64_t sort_comparisons = 0;
    for (auto &ray : rays) {
        // Radial sort; a sampled quarter of the comparisons is
        // traced (spinning LiDAR emits in azimuth order, so rays
        // arrive nearly radially sorted and the compare branch is
        // fairly predictable in practice).
        std::sort(ray.begin(), ray.end(),
                  [&](const RadialPoint &a, const RadialPoint &b) {
                      const bool less = a.radius < b.radius;
                      if ((sort_comparisons & 3u) == 0)
                          prof.branch(siteSortCompare, less);
                      ++sort_comparisons;
                      return less;
                  });

        // Walk outward tracking the ground height.
        double prev_r = 0.0;
        double prev_ground_z = config.initialHeight;
        for (const RadialPoint &rp : ray) {
            if (prof.tracing()) {
                prof.load(regionRays,
                          rayOffset(static_cast<std::uint64_t>(
                                        &ray - rays.data()),
                                    static_cast<std::uint64_t>(
                                        &rp - ray.data())),
                          sizeof(RadialPoint));
                prof.hotLoads(10);
                prof.hotStores(4);
            }
            bool is_ground = false;
            if (rp.z < config.clippingHeight) {
                const double dr =
                    std::max(0.5, double(rp.radius) - prev_r);
                const double allowed = slope_tan * dr + 0.12;
                const double general_limit =
                    config.initialHeight + config.generalOffset +
                    general_tan * double(rp.radius);
                is_ground =
                    std::fabs(double(rp.z) - prev_ground_z) <=
                        allowed &&
                    double(rp.z) <= general_limit;
            }
            prof.branch(siteIsGround, is_ground);
            const pc::Point &p = scan[rp.index];
            if (is_ground) {
                out.ground.push_back(p);
                prev_ground_z = rp.z;
                prev_r = rp.radius;
            } else {
                out.noGround.push_back(p);
            }
            if (prof.tracing()) {
                const auto &dst =
                    is_ground ? out.ground : out.noGround;
                prof.store(is_ground ? regionGround
                                     : regionNoGround,
                           (dst.points.size() - 1) *
                               sizeof(pc::Point),
                           sizeof(pc::Point));
            }
        }
    }

    // Abstract accounting: bucketing + sort + walk.
    const std::uint64_t n = scan.size();
    uarch::OpCounts ops;
    ops.loads = 8 * n + 5 * sort_comparisons;
    ops.stores = 4 * n + 2 * sort_comparisons;
    ops.branches = 3 * n + 2 * sort_comparisons;
    ops.intAlu = 6 * n + 3 * sort_comparisons;
    ops.fpAlu = 14 * n; // atan2/hypot folded in
    ops.fpDiv = n / 4;
    prof.addOps(ops);
    prof.bulkBranches(6 * n + 2 * sort_comparisons);
    return out;
}

} // namespace av::perception
