/**
 * @file
 * Object message payloads exchanged between perception nodes — the
 * equivalents of autoware_msgs::DetectedObject(Array).
 */

#ifndef AVSCOPE_PERCEPTION_OBJECTS_HH
#define AVSCOPE_PERCEPTION_OBJECTS_HH

#include <cstdint>
#include <vector>

#include "geom/vec.hh"

namespace av::perception {

/** Semantic class labels (vision adds these; LiDAR alone cannot,
 *  paper §II-B). */
enum class Label : std::uint8_t {
    Unknown,
    Car,
    Truck,
    Pedestrian,
    Cyclist,
};

const char *labelName(Label label);

/** One perceived object at some stage of the pipeline. */
struct DetectedObject
{
    std::uint32_t id = 0;        ///< tracker id (0 before tracking)
    Label label = Label::Unknown;
    double confidence = 0.0;

    geom::Vec2 position;          ///< center, world frame
    double yaw = 0.0;
    double length = 0.0, width = 0.0, height = 0.0;

    bool hasVelocity = false;
    geom::Vec2 velocity;
    double yawRate = 0.0;

    /** Future positions (naive_motion_predict output), 150 ms
     *  spacing. */
    std::vector<geom::Vec2> predictedPath;

    /** Vision-only info (bearing space) before fusion. */
    double bearing = 0.0;
    double rangeEstimate = 0.0;

    /** Ground-truth actor id for accuracy evaluation (0 = none). */
    std::uint32_t truthId = 0;

    /** LiDAR points supporting this object (clusters). */
    std::uint32_t pointCount = 0;
};

/** A list of objects — the DetectedObjectArray equivalent. */
struct ObjectList
{
    std::vector<DetectedObject> objects;

    std::size_t
    byteSize() const
    {
        std::size_t bytes = 64;
        for (const DetectedObject &o : objects)
            bytes += 160 + o.predictedPath.size() * 16;
        return bytes;
    }
};

/** Pose estimate message (ndt_matching output). */
struct PoseEstimate
{
    geom::Vec2 position;
    double yaw = 0.0;
    double fitnessScore = 0.0; ///< NDT matching quality
    std::uint32_t iterations = 0;
    bool converged = false;
};

/** Occupancy costmap message (costmap_generator output). */
struct Costmap
{
    std::uint32_t cellsX = 0;
    std::uint32_t cellsY = 0;
    double resolution = 0.0; ///< m per cell
    geom::Vec2 origin;       ///< world position of cell (0,0)
    std::vector<float> cost; ///< row-major, [0,1]

    float
    at(std::uint32_t x, std::uint32_t y) const
    {
        return cost[static_cast<std::size_t>(y) * cellsX + x];
    }

    std::size_t byteSize() const { return cost.size() * 4 + 64; }
};

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_OBJECTS_HH
