/**
 * @file
 * IMM-UKF-PDA multi-object tracker — Autoware's imm_ukf_pda_tracker
 * (paper §II-B, Table I), combining three interacting motion models
 * (constant velocity, constant turn-rate & velocity, random motion)
 * estimated by unscented Kalman filters, with probabilistic data
 * association to cope with clutter and missed detections.
 *
 * State per track: [px, py, v, yaw, yawRate]. Measurements are the
 * fused detections' positions.
 */

#ifndef AVSCOPE_PERCEPTION_IMM_UKF_PDA_HH
#define AVSCOPE_PERCEPTION_IMM_UKF_PDA_HH

#include <array>
#include <cstdint>
#include <vector>

#include "geom/mat.hh"
#include "perception/objects.hh"
#include "sim/ticks.hh"
#include "uarch/profiler.hh"

namespace av::perception {

/** Tracker tuning (Autoware-flavoured defaults). */
struct TrackerConfig
{
    double gateChi2 = 9.21;      ///< 99% chi-square, 2 dof
    double detectProb = 0.9;     ///< P_D for PDA
    double clutterDensity = 1e-3;
    double measNoise = 0.35;      ///< position sigma (m)
    double stdAccel = 2.0;        ///< CTRV/CV accel noise
    double stdYawAccel = 0.6;
    std::uint32_t confirmHits = 3;
    std::uint32_t dropMisses = 4;
    double initVelocity = 0.0;
};

/** Number of IMM motion models. */
inline constexpr std::size_t nModels = 3;
/** Tracker state dimension. */
inline constexpr std::size_t nState = 5;

/** One track (public view). */
struct Track
{
    std::uint32_t id = 0;
    bool confirmed = false;
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;

    std::array<double, nState> state{}; ///< combined IMM estimate
    geom::Mat<nState, nState> covariance;
    std::array<double, nModels> modeProb{};

    /** Latest associated appearance (bbox, label). */
    DetectedObject appearance;
};

/**
 * The tracker. Feed measurement lists in time order.
 */
class ImmUkfPdaTracker
{
  public:
    explicit ImmUkfPdaTracker(const TrackerConfig &config =
                                  TrackerConfig());

    /**
     * Process one detection list.
     * @param detections fused objects (world frame)
     * @param t          measurement time
     * @param prof       instrumentation
     * @return confirmed tracks as detected objects with velocity
     */
    ObjectList update(const ObjectList &detections, sim::Tick t,
                      uarch::KernelProfiler prof =
                          uarch::KernelProfiler());

    /**
     * Predict-only step through a detection gap: advance every track
     * to time @p t and emit the confirmed ones, without counting
     * misses or dropping tracks — the graceful-degradation path that
     * keeps downstream consumers fed while the detector is dark.
     */
    ObjectList coast(sim::Tick t, uarch::KernelProfiler prof =
                                      uarch::KernelProfiler());

    /** Snapshot of the current tracks (public view). */
    std::vector<Track> tracks() const;
    std::size_t confirmedCount() const;

  private:
    /** Per-model UKF state of one track. */
    struct ModelState
    {
        std::array<double, nState> x{};
        geom::Mat<nState, nState> p;
        double likelihood = 1.0;
    };

    struct InternalTrack
    {
        Track pub;
        std::array<ModelState, nModels> models;
    };

    TrackerConfig config_;
    std::vector<InternalTrack> tracks_;
    std::uint32_t nextId_ = 1;
    sim::Tick lastUpdate_ = 0;
    bool first_ = true;

    void predictTrack(InternalTrack &track, double dt,
                      uarch::KernelProfiler &prof);
    /**
     * PDA update of one track against the gated measurements.
     * @return true when at least one measurement fell in the gate
     */
    bool updateTrack(InternalTrack &track,
                     const std::vector<const DetectedObject *> &gated,
                     uarch::KernelProfiler &prof);
    void mixModels(InternalTrack &track,
                   uarch::KernelProfiler &prof);
    void combineEstimate(InternalTrack &track);
    InternalTrack makeTrack(const DetectedObject &detection);
    ObjectList emitConfirmed() const;
};

} // namespace av::perception

#endif // AVSCOPE_PERCEPTION_IMM_UKF_PDA_HH
