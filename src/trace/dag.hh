/**
 * @file
 * Execution-DAG analysis over a recorded drive: longest (critical)
 * path, per-node slack, and a deterministic rule-based bottleneck
 * classifier — the rocm-perf-lab architecture (trace → DAG →
 * critical path → classifier) ported onto the AV stack.
 *
 * The DAG's nodes are node activations (and the CPU tasks / GPU
 * kernels they schedule); its edges are the pub/sub hops keyed by
 * (topic, seq) plus the node-serialization implied by one callback
 * in flight per node. The critical path is reconstructed backwards
 * from the worst end-to-end frame at a sink topic: each publication
 * is attributed to the activation whose span produced it, and each
 * activation to the publication of its trigger message, down to the
 * externally-published sensor input. Per step the waiting share
 * (queue wait, from Stamped::arrival semantics: trigger arrival →
 * dispatch) is split from the compute share (dispatch → output).
 *
 * Everything here is a pure function of the recorder's canonical
 * event stream, so analyses are byte-identical across worker counts
 * and transport modes.
 */

#ifndef AVSCOPE_TRACE_DAG_HH
#define AVSCOPE_TRACE_DAG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace av::trace {

/** Publisher name used for externally-fed topics (bag replay). */
inline const char *const kExternalPublisher = "(external)";

/**
 * Thresholds of the rule-based bottleneck classifier. Rules fire in
 * a fixed order, so every node gets exactly one deterministic label:
 *
 *  1. queue-bound:      meanQueueWait > queueBoundRatio * meanSpan —
 *     the node spends longer waiting for dispatch than executing
 *     (the R-TOD "waiting, not compute" signature).
 *  2. contention-bound: stall > contentionStallFraction * span,
 *     where stall = span − nominal CPU time − GPU kernel time —
 *     the span is inflated by interference (memory contention, core
 *     queueing, GPU queue wait) rather than by its own work.
 *  3. gpu-bound:        GPU kernel time exceeds nominal CPU time.
 *  4. cpu-bound:        everything else with at least one activation.
 *
 * Nodes that never activated are labeled "idle".
 */
struct ClassifierRules
{
    double queueBoundRatio = 1.0;
    double contentionStallFraction = 0.4;
};

/** One critical-path step (source → sink order). */
struct PathStep
{
    std::string node;    ///< activation that produced the hop
    std::string topic;   ///< trigger message's topic
    std::uint64_t seq = 0; ///< trigger message's seq
    double queueWaitMs = 0.0; ///< trigger arrival → dispatch
    double computeMs = 0.0;   ///< dispatch → output publication
};

/** One node's slack summary + bottleneck label. */
struct NodeSlack
{
    std::string node;
    std::uint64_t activations = 0;
    double meanQueueWaitMs = 0.0; ///< arrival → dispatch
    double meanSpanMs = 0.0;      ///< dispatch → done
    double meanCpuMs = 0.0;       ///< nominal (contention-free) CPU
    double meanGpuMs = 0.0;       ///< GPU kernel execution
    double meanStallMs = 0.0;     ///< span − cpu − gpu (≥ 0)
    std::string bottleneck;       ///< queue/contention/gpu/cpu/idle
};

/** One traced pub/sub edge with its message count. */
struct EdgeUse
{
    std::string topic;
    std::string from; ///< publisher node, or kExternalPublisher
    std::string to;   ///< subscriber node
    std::uint64_t messages = 0;
};

/** The complete analysis of one traced drive. */
struct Summary
{
    bool enabled = false;     ///< false when the run was untraced
    std::uint64_t events = 0; ///< retained trace events
    double criticalPathMs = 0.0; ///< worst sink-frame E2E latency
    std::string terminalTopic;   ///< sink of the worst frame ("" if none)
    std::vector<PathStep> criticalPath; ///< source → sink
    std::vector<NodeSlack> nodes;       ///< sorted by node name
    std::vector<EdgeUse> edges;         ///< sorted (topic, from, to)

    /** Slack row of one node; nullptr when untraced/unknown. */
    const NodeSlack *findNode(const std::string &name) const;
};

/**
 * Analyze @p recorder's event stream. Requires tracing to have been
 * enabled; with an empty stream the summary is enabled but empty.
 */
Summary analyze(const Recorder &recorder,
                const ClassifierRules &rules = ClassifierRules());

/**
 * Structural canonical rendering of a summary — the sink, the
 * critical path's node sequence, every node's bottleneck class and
 * every traced edge, without counts or timings. This is the form the
 * golden-DAG snapshot test pins (tests/trace/golden_dag.txt), like
 * avgraph's golden_topology.txt: timing calibrations may drift, the
 * traced structure may not.
 */
std::string canonicalDag(const Summary &summary);

} // namespace av::trace

#endif // AVSCOPE_TRACE_DAG_HH
