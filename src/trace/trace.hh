/**
 * @file
 * av::trace — the single per-drive recording surface.
 *
 * The paper's methodology instruments every layer separately (chrono
 * probes per node, atop for utilization, header lineage for paths).
 * This recorder unifies the event-shaped part of that instrumentation
 * behind one API: the middleware reports message publish/deliver hops
 * keyed by (topic, seq), nodes report activation spans (dispatch →
 * done) through RAII handles, and the hardware models report CPU-task
 * and GPU-kernel executions. From those events src/trace/dag.hh
 * assembles the per-frame execution DAG, the longest path, per-node
 * slack and a rule-based bottleneck classification.
 *
 * Two retention tiers:
 *
 *  - The per-topic *publish log* ({tick, stamp, seq} per publication)
 *    is always on once a recorder is attached. It is cheap, and it is
 *    the data source the staleness and recovery probes read — their
 *    bespoke header-tap buffers were deleted in favour of this one
 *    recording path.
 *  - The full *event stream* (deliveries, activations, CPU tasks,
 *    GPU kernels) is retained only when tracing is enabled
 *    (RunConfig::trace), keeping untraced replays lean.
 *
 * Determinism: the recorder is write-only with respect to the
 * simulation — recording never schedules events, reads the host
 * clock or perturbs timing. canonicalEvents() returns the stream in
 * a byte-stable canonical order (tick, topic, seq, kind, node), so
 * traced results serialize identically for any worker count and
 * either transport mode.
 */

#ifndef AVSCOPE_TRACE_TRACE_HH
#define AVSCOPE_TRACE_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace av::trace {

/** Interned string handle; 0 is always the empty string. */
using Id = std::uint32_t;

/** What one trace event describes. */
enum class EventKind : std::uint8_t {
    Publish,    ///< a message entered a topic
    Deliver,    ///< a message reached one subscription's queue
    Activation, ///< one node callback span (dispatch -> done)
    CpuTask,    ///< one hw::CpuTask execution (submit -> retire)
    GpuKernel,  ///< one GPU kernel execution (start -> end)
};

/** Stable name for reports and canonical renderings. */
const char *eventKindName(EventKind kind);

/**
 * One recorded event. A single POD shape for every kind keeps the
 * stream sortable and serializable; unused fields stay zero.
 *
 * Field use by kind:
 *  - Publish:    tick (publish time), topic, seq, node (publisher,
 *                0 = external), stamp, originLidar/originCamera
 *  - Deliver:    tick (= arrival), topic, seq, node (subscriber)
 *  - Activation: tick (= start), topic + seq (trigger message),
 *                node, arrival (trigger's arrival), start, end
 *  - CpuTask:    tick (= start = submit time), node (owner), end,
 *                nominalNs (contention-free duration)
 *  - GpuKernel:  tick (= start), node (owner), end
 */
struct Event
{
    EventKind kind = EventKind::Publish;
    sim::Tick tick = 0; ///< primary timestamp (canonical sort key)
    Id topic = 0;
    std::uint64_t seq = 0;
    Id node = 0;
    sim::Tick arrival = 0;
    sim::Tick start = 0;
    sim::Tick end = 0;
    sim::Tick stamp = 0;
    sim::Tick originLidar = 0;
    sim::Tick originCamera = 0;
    double nominalNs = 0.0;
};

/** One publication in the always-on per-topic publish log. */
struct PublishRecord
{
    sim::Tick tick = 0;  ///< when publish() ran
    sim::Tick stamp = 0; ///< the message header's stamp
    std::uint64_t seq = 0;
};

class Recorder;

/**
 * RAII handle for one open node-activation span. Obtained from
 * Recorder::beginActivation when the middleware dispatches a
 * message; end() closes it when the node's simulated execution
 * finishes (the done() callback). A Span destroyed while still open
 * closes zero-length at its begin tick, so a handler that never
 * completes (crashed node draining) cannot corrupt the stream.
 */
class Span
{
  public:
    Span() = default;
    Span(Recorder *recorder, std::size_t index)
        : recorder_(recorder), index_(index)
    {}
    Span(Span &&o) noexcept { *this = std::move(o); }
    Span &operator=(Span &&o) noexcept
    {
        recorder_ = o.recorder_;
        index_ = o.index_;
        o.recorder_ = nullptr;
        return *this;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span();

    /** Close the span at @p now. Idempotent. */
    void end(sim::Tick now);

    /** True while the span has not been closed. */
    bool open() const { return recorder_ != nullptr; }

  private:
    Recorder *recorder_ = nullptr;
    std::size_t index_ = 0;
};

/**
 * The per-drive event recorder. One instance per CharacterizationRun,
 * attached to the middleware (RosGraph::setTraceRecorder) and the
 * hardware models (Machine::setTraceRecorder) before the stack is
 * built.
 */
class Recorder
{
  public:
    Recorder() { names_.emplace_back(); } // Id 0 = ""

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /** Retain the full event stream (RunConfig::trace). */
    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Intern @p name; equal strings share one Id. */
    Id intern(const std::string &name);

    /** The string behind @p id. */
    const std::string &name(Id id) const;

    // ---- emission surface ---------------------------------------

    /**
     * Record one publication. Always feeds the publish log; appends
     * a full event only when tracing is enabled.
     * @param publisher the advertising node (0 = external source:
     *        bag replay, probes)
     */
    void recordPublish(Id topic, Id publisher, std::uint64_t seq,
                       sim::Tick stamp, sim::Tick origin_lidar,
                       sim::Tick origin_camera, sim::Tick now);

    /** Record one message entering @p subscriber's queue. */
    void recordDeliver(Id topic, Id subscriber, std::uint64_t seq,
                       sim::Tick arrival);

    /**
     * Open an activation span: @p node starts processing the
     * (topic, seq) message that arrived at @p arrival. Returns an
     * inert Span when tracing is disabled.
     */
    Span beginActivation(Id node, Id topic, std::uint64_t seq,
                         sim::Tick arrival, sim::Tick now);

    /** Record one retired CPU task of @p owner. */
    void recordCpuTask(Id owner, sim::Tick submitted, sim::Tick now,
                       double nominal_ns);

    /** Record one executed GPU kernel of @p owner. */
    void recordGpuKernel(Id owner, sim::Tick started, sim::Tick now);

    // ---- always-on publish log (probe surface) ------------------

    /** All publications of @p topic in publish order; nullptr when
     *  the topic never published. */
    const std::vector<PublishRecord> *publishLog(Id topic) const;
    const std::vector<PublishRecord> *
    publishLog(const std::string &topic) const;

    /** Newest publication of @p topic; nullptr before the first. */
    const PublishRecord *lastPublish(Id topic) const;
    const PublishRecord *lastPublish(const std::string &topic) const;

    // ---- full event stream (trace mode) -------------------------

    /** Events retained so far (0 when tracing is disabled). */
    std::uint64_t eventCount() const { return events_.size(); }

    /**
     * The event stream in byte-stable canonical order: sorted by
     * (tick, topic name, seq, kind, node name). Identical for any
     * worker count and either transport mode of the same replay.
     */
    std::vector<Event> canonicalEvents() const;

  private:
    friend class Span;
    void endActivation(std::size_t index, sim::Tick now);

    bool enabled_ = false;
    std::vector<std::string> names_;
    std::map<std::string, Id> ids_;
    std::vector<Event> events_;
    std::map<Id, std::vector<PublishRecord>> publishes_;
};

} // namespace av::trace

#endif // AVSCOPE_TRACE_TRACE_HH
