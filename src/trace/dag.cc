#include "trace/dag.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace av::trace {

namespace {

/** Key of one publication: (topic, seq) identifies it uniquely. */
using PubKey = std::pair<Id, std::uint64_t>;

double
ms(sim::Tick ticks)
{
    return sim::ticksToMs(ticks);
}

sim::Tick
saturatingSub(sim::Tick a, sim::Tick b)
{
    return a > b ? a - b : 0;
}

/**
 * The activation of one node whose span produced the publication at
 * @p tick: the earliest activation with start <= tick <= end. When a
 * publication lands exactly on a span boundary (the producing
 * activation ends and the next dispatch begins on the same tick),
 * scanning in start order picks the producer, not the successor.
 */
const Event *
containingActivation(const std::vector<const Event *> &activations,
                     sim::Tick tick)
{
    for (const Event *act : activations) {
        if (act->start > tick)
            break;
        if (act->end >= tick)
            return act;
    }
    return nullptr;
}

std::string
classify(const NodeSlack &row, const ClassifierRules &rules)
{
    if (row.activations == 0)
        return "idle";
    if (row.meanQueueWaitMs >
        rules.queueBoundRatio * row.meanSpanMs)
        return "queue";
    if (row.meanStallMs >
        rules.contentionStallFraction * row.meanSpanMs)
        return "contention";
    if (row.meanGpuMs > row.meanCpuMs)
        return "gpu";
    return "cpu";
}

/**
 * Map a hardware-accounting owner onto the node whose activations it
 * belongs to. Owners usually equal the node name; the costmap node
 * splits its two callbacks into costmap_generator_obj /
 * costmap_generator_points, so the longest node name that prefixes
 * the owner (at an underscore boundary) wins.
 */
const std::string *
ownerNode(const std::string &owner,
          const std::set<std::string> &node_names)
{
    const auto exact = node_names.find(owner);
    if (exact != node_names.end())
        return &*exact;
    const std::string *best = nullptr;
    for (const std::string &node : node_names) {
        if (owner.size() <= node.size() ||
            owner.compare(0, node.size(), node) != 0 ||
            owner[node.size()] != '_')
            continue;
        if (!best || node.size() > best->size())
            best = &node;
    }
    return best;
}

} // namespace

const NodeSlack *
Summary::findNode(const std::string &name) const
{
    for (const NodeSlack &row : nodes)
        if (row.node == name)
            return &row;
    return nullptr;
}

Summary
analyze(const Recorder &recorder, const ClassifierRules &rules)
{
    Summary out;
    out.enabled = true;

    const std::vector<Event> events = recorder.canonicalEvents();
    out.events = events.size();

    // ---- index the stream ---------------------------------------
    std::map<PubKey, const Event *> pub_by_key;
    std::map<Id, std::vector<const Event *>> acts_by_node;
    std::set<Id> published_topics;
    std::set<Id> delivered_topics;
    std::vector<const Event *> delivers;
    std::map<std::string, double> cpu_nominal_ns;
    std::map<std::string, double> gpu_ns;

    for (const Event &ev : events) {
        switch (ev.kind) {
          case EventKind::Publish:
            pub_by_key.emplace(PubKey{ev.topic, ev.seq}, &ev);
            published_topics.insert(ev.topic);
            break;
          case EventKind::Deliver:
            delivered_topics.insert(ev.topic);
            delivers.push_back(&ev);
            break;
          case EventKind::Activation:
            acts_by_node[ev.node].push_back(&ev);
            break;
          case EventKind::CpuTask:
            cpu_nominal_ns[recorder.name(ev.node)] += ev.nominalNs;
            break;
          case EventKind::GpuKernel:
            gpu_ns[recorder.name(ev.node)] +=
                static_cast<double>(ev.end - ev.start);
            break;
        }
    }
    // Canonical order sorts activations by tick (= start) already;
    // keep the per-node lists in start order explicitly.
    for (auto &[node, acts] : acts_by_node)
        std::stable_sort(acts.begin(), acts.end(),
                         [](const Event *a, const Event *b) {
                             return a->start < b->start;
                         });

    // ---- traced edges (topic, from, to) -------------------------
    std::map<std::tuple<std::string, std::string, std::string>,
             std::uint64_t>
        edge_count;
    for (const Event *ev : delivers) {
        const auto pub = pub_by_key.find(PubKey{ev->topic, ev->seq});
        const std::string from =
            (pub != pub_by_key.end() && pub->second->node != 0)
                ? recorder.name(pub->second->node)
                : kExternalPublisher;
        ++edge_count[{recorder.name(ev->topic), from,
                      recorder.name(ev->node)}];
    }
    for (const auto &[key, count] : edge_count)
        out.edges.push_back(EdgeUse{std::get<0>(key),
                                    std::get<1>(key),
                                    std::get<2>(key), count});

    // ---- per-node slack + bottleneck class ----------------------
    std::set<std::string> node_names;
    for (const auto &[node, acts] : acts_by_node)
        node_names.insert(recorder.name(node));

    std::map<std::string, NodeSlack> rows;
    for (const auto &[node, acts] : acts_by_node) {
        NodeSlack row;
        row.node = recorder.name(node);
        row.activations = acts.size();
        sim::Tick wait = 0, span = 0;
        for (const Event *act : acts) {
            wait += saturatingSub(act->start, act->arrival);
            span += saturatingSub(act->end, act->start);
        }
        const double n = static_cast<double>(acts.size());
        row.meanQueueWaitMs = ms(wait) / n;
        row.meanSpanMs = ms(span) / n;
        rows.emplace(row.node, std::move(row));
    }
    // A node that received deliveries but never activated (crashed,
    // or down for the whole drive) still gets a row: zero
    // activations, classified "idle".
    for (const Event *ev : delivers) {
        const std::string &name = recorder.name(ev->node);
        if (rows.count(name))
            continue;
        NodeSlack row;
        row.node = name;
        rows.emplace(name, std::move(row));
    }
    // Attribute hardware work to the owning node's activations.
    for (const auto &[owner, nominal] : cpu_nominal_ns) {
        if (const std::string *node = ownerNode(owner, node_names))
            rows[*node].meanCpuMs +=
                nominal / 1e6 /
                static_cast<double>(rows[*node].activations);
    }
    for (const auto &[owner, active] : gpu_ns) {
        if (const std::string *node = ownerNode(owner, node_names))
            rows[*node].meanGpuMs +=
                active / 1e6 /
                static_cast<double>(rows[*node].activations);
    }
    for (auto &[name, row] : rows) {
        row.meanStallMs = std::max(
            0.0, row.meanSpanMs - row.meanCpuMs - row.meanGpuMs);
        row.bottleneck = classify(row, rules);
        out.nodes.push_back(row);
    }

    // ---- worst frame at a sink topic ----------------------------
    // Sinks are topics that are published but never delivered to any
    // subscription — the pipeline's terminal outputs.
    const Event *worst = nullptr;
    sim::Tick worst_e2e = 0;
    for (const Event &ev : events) {
        if (ev.kind != EventKind::Publish)
            continue;
        if (delivered_topics.count(ev.topic))
            continue;
        sim::Tick origin = 0;
        if (ev.originLidar && ev.originCamera)
            origin = std::min(ev.originLidar, ev.originCamera);
        else
            origin = ev.originLidar ? ev.originLidar
                                    : ev.originCamera;
        if (origin == 0 || ev.tick < origin)
            continue;
        const sim::Tick e2e = ev.tick - origin;
        // Strict >: ties resolve to the earliest publication in
        // canonical order, keeping the walk deterministic.
        if (!worst || e2e > worst_e2e) {
            worst = &ev;
            worst_e2e = e2e;
        }
    }

    if (!worst)
        return out;
    out.criticalPathMs = ms(worst_e2e);
    out.terminalTopic = recorder.name(worst->topic);

    // ---- backward walk to the sensor source ---------------------
    std::set<const Event *> visited;
    const Event *pub = worst;
    while (pub) {
        if (pub->node == 0)
            break; // externally published (bag replay): the source
        const auto acts = acts_by_node.find(pub->node);
        const Event *act =
            acts == acts_by_node.end()
                ? nullptr
                : containingActivation(acts->second, pub->tick);
        if (!act)
            break; // published outside any activation (timer-driven)
        PathStep step;
        step.node = recorder.name(act->node);
        step.topic = recorder.name(act->topic);
        step.seq = act->seq;
        step.queueWaitMs =
            ms(saturatingSub(act->start, act->arrival));
        step.computeMs = ms(saturatingSub(pub->tick, act->start));
        out.criticalPath.push_back(std::move(step));

        const auto prev =
            pub_by_key.find(PubKey{act->topic, act->seq});
        pub = prev == pub_by_key.end() ? nullptr : prev->second;
        if (pub && !visited.insert(pub).second)
            break; // defensive: a malformed stream must not loop
    }
    std::reverse(out.criticalPath.begin(), out.criticalPath.end());
    return out;
}

std::string
canonicalDag(const Summary &summary)
{
    std::ostringstream os;
    os << "dag v1\n";
    os << "sink "
       << (summary.terminalTopic.empty() ? "-"
                                         : summary.terminalTopic)
       << '\n';
    os << "steps " << summary.criticalPath.size() << '\n';
    for (const PathStep &step : summary.criticalPath)
        os << "step " << step.node << ' ' << step.topic << '\n';
    os << "nodes " << summary.nodes.size() << '\n';
    for (const NodeSlack &row : summary.nodes)
        os << "node " << row.node << ' ' << row.bottleneck << '\n';
    os << "edges " << summary.edges.size() << '\n';
    for (const EdgeUse &edge : summary.edges)
        os << "edge " << edge.topic << ' ' << edge.from << ' '
           << edge.to << '\n';
    return os.str();
}

} // namespace av::trace
