#include "trace/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace av::trace {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Publish: return "publish";
      case EventKind::Deliver: return "deliver";
      case EventKind::Activation: return "activation";
      case EventKind::CpuTask: return "cpu_task";
      case EventKind::GpuKernel: return "gpu_kernel";
    }
    return "?";
}

Span::~Span()
{
    if (recorder_)
        recorder_->endActivation(index_, 0);
}

void
Span::end(sim::Tick now)
{
    if (!recorder_)
        return;
    recorder_->endActivation(index_, now);
    recorder_ = nullptr;
}

Id
Recorder::intern(const std::string &name)
{
    const auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const Id id = static_cast<Id>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
}

const std::string &
Recorder::name(Id id) const
{
    AV_ASSERT(id < names_.size(), "unknown trace id ", id);
    return names_[id];
}

void
Recorder::recordPublish(Id topic, Id publisher, std::uint64_t seq,
                        sim::Tick stamp, sim::Tick origin_lidar,
                        sim::Tick origin_camera, sim::Tick now)
{
    publishes_[topic].push_back(PublishRecord{now, stamp, seq});
    if (!enabled_)
        return;
    Event ev;
    ev.kind = EventKind::Publish;
    ev.tick = now;
    ev.topic = topic;
    ev.seq = seq;
    ev.node = publisher;
    ev.stamp = stamp;
    ev.originLidar = origin_lidar;
    ev.originCamera = origin_camera;
    events_.push_back(ev);
}

void
Recorder::recordDeliver(Id topic, Id subscriber, std::uint64_t seq,
                        sim::Tick arrival)
{
    if (!enabled_)
        return;
    Event ev;
    ev.kind = EventKind::Deliver;
    ev.tick = arrival;
    ev.topic = topic;
    ev.seq = seq;
    ev.node = subscriber;
    ev.arrival = arrival;
    events_.push_back(ev);
}

Span
Recorder::beginActivation(Id node, Id topic, std::uint64_t seq,
                          sim::Tick arrival, sim::Tick now)
{
    if (!enabled_)
        return Span();
    Event ev;
    ev.kind = EventKind::Activation;
    ev.tick = now;
    ev.topic = topic;
    ev.seq = seq;
    ev.node = node;
    ev.arrival = arrival;
    ev.start = now;
    ev.end = now; // patched by endActivation
    events_.push_back(ev);
    return Span(this, events_.size() - 1);
}

void
Recorder::endActivation(std::size_t index, sim::Tick now)
{
    AV_ASSERT(index < events_.size(),
              "activation span index out of range");
    Event &ev = events_[index];
    AV_ASSERT(ev.kind == EventKind::Activation,
              "span index does not name an activation");
    if (now > ev.start)
        ev.end = now;
}

void
Recorder::recordCpuTask(Id owner, sim::Tick submitted, sim::Tick now,
                        double nominal_ns)
{
    if (!enabled_)
        return;
    Event ev;
    ev.kind = EventKind::CpuTask;
    ev.tick = submitted;
    ev.node = owner;
    ev.start = submitted;
    ev.end = now;
    ev.nominalNs = nominal_ns;
    events_.push_back(ev);
}

void
Recorder::recordGpuKernel(Id owner, sim::Tick started, sim::Tick now)
{
    if (!enabled_)
        return;
    Event ev;
    ev.kind = EventKind::GpuKernel;
    ev.tick = started;
    ev.node = owner;
    ev.start = started;
    ev.end = now;
    events_.push_back(ev);
}

const std::vector<PublishRecord> *
Recorder::publishLog(Id topic) const
{
    const auto it = publishes_.find(topic);
    return it == publishes_.end() ? nullptr : &it->second;
}

const std::vector<PublishRecord> *
Recorder::publishLog(const std::string &topic) const
{
    const auto it = ids_.find(topic);
    return it == ids_.end() ? nullptr : publishLog(it->second);
}

const PublishRecord *
Recorder::lastPublish(Id topic) const
{
    const std::vector<PublishRecord> *log = publishLog(topic);
    return (log && !log->empty()) ? &log->back() : nullptr;
}

const PublishRecord *
Recorder::lastPublish(const std::string &topic) const
{
    const std::vector<PublishRecord> *log = publishLog(topic);
    return (log && !log->empty()) ? &log->back() : nullptr;
}

std::vector<Event>
Recorder::canonicalEvents() const
{
    std::vector<Event> out = events_;
    std::stable_sort(
        out.begin(), out.end(),
        [this](const Event &a, const Event &b) {
            if (a.tick != b.tick)
                return a.tick < b.tick;
            const std::string &ta = name(a.topic);
            const std::string &tb = name(b.topic);
            if (ta != tb)
                return ta < tb;
            if (a.seq != b.seq)
                return a.seq < b.seq;
            if (a.kind != b.kind)
                return static_cast<int>(a.kind) <
                       static_cast<int>(b.kind);
            return name(a.node) < name(b.node);
        });
    return out;
}

} // namespace av::trace
