/**
 * @file
 * av::chaos — compound-fault campaign engine.
 *
 * bench/fault_resilience (PR 5) measures one hand-written FaultPlan
 * at a time; the safety monitor (src/stack/safety.hh) turns "did the
 * stack stay safe?" into typed invariants. This layer closes the
 * loop: it *searches* the compound-fault space automatically.
 *
 *  - CampaignRunner deterministically samples seeded compound plans
 *    (2–4 simultaneous fault kinds, overlapping windows, scaled
 *    intensities) from a typed CampaignSpec, executes them through
 *    the cached exp::Runner and classifies every cell as Recovered,
 *    Degraded or Violated;
 *  - resilienceFrontier() folds the classified cells into the max
 *    survivable intensity per fault kind;
 *  - minimizeViolation() delta-debugs any violating plan down to a
 *    locally-minimal repro — drop faults, halve windows, weaken
 *    intensities — re-validating every step through the result
 *    cache, so the repro a campaign reports is the *smallest* plan
 *    that still breaches the same invariant.
 *
 * Everything here is a pure function of (CampaignSpec, seed): cells
 * are sampled from forked util::Rng streams, execution goes through
 * the deterministic replay engine, and classification reads only
 * RunResult content — so an entire campaign, including every minimal
 * repro, is byte-identical across worker counts and fully cache-warm
 * on a second invocation.
 */

#ifndef AVSCOPE_CHAOS_CHAOS_HH
#define AVSCOPE_CHAOS_CHAOS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace av::chaos {

/** Outcome class of one campaign cell. */
enum class CellClass : std::uint8_t {
    Recovered, ///< no violations, every fault recovered
    Degraded,  ///< no violations, but ≥1 fault never recovered
    Violated,  ///< ≥1 safety-invariant violation
};

/** Stable lowercase name, e.g. "degraded". */
const char *cellClassName(CellClass cls);

/** One sampled fault: which kind, at what scaled severity. */
struct SampledFault
{
    fault::FaultKind kind = fault::FaultKind::LidarBlackout;
    /** Severity scalar in [minIntensity, maxIntensity], quantized to
     *  1/64 so it renders and hashes exactly. */
    double intensity = 0.0;
};

/** One sampled campaign cell: the concrete plan plus its pedigree. */
struct CampaignCell
{
    std::size_t index = 0;
    fault::FaultPlan plan;
    /** Sampled (kind, intensity) pairs, in sampling order. */
    std::vector<SampledFault> sampled;
};

/**
 * A campaign: how many cells to sample from which base experiment.
 * The base spec must have the safety monitor armed (invariants());
 * without invariants there is nothing to violate and the campaign
 * could never classify a cell as Violated — the ctor rejects that.
 */
struct CampaignSpec
{
    /** Root seed; cell i samples from Rng(seed).fork(i). */
    std::uint64_t seed = 2028;
    /** Number of cells to sample and execute. */
    std::size_t cells = 12;
    /** Simultaneous fault kinds per cell (inclusive bounds). */
    std::size_t minFaults = 2;
    std::size_t maxFaults = 4;
    /** Severity range; intensities sample uniformly inside it. */
    double minIntensity = 0.3;
    double maxIntensity = 1.0;
    /** The experiment every cell perturbs (safety must be armed). */
    exp::ExperimentSpec base;
};

/** Number of distinct fault kinds the sampler draws from. */
std::size_t paletteSize();

/** Classified outcome of one executed cell. */
struct CellOutcome
{
    CampaignCell cell;
    CellClass cls = CellClass::Recovered;
    std::uint64_t violationCount = 0;
    /** violationLabel() of the first breach; "-" when none. */
    std::string firstViolation = "-";
    /** Fault outcomes with recoveryMs < 0 (never recovered). */
    std::uint64_t unrecovered = 0;
    /** Worst-path p99 of the cell's replay (ms). */
    double worstPathMs = 0.0;
};

/**
 * Executes a CampaignSpec through a (shared, usually cached)
 * exp::Runner. Cells are all submitted before any result is
 * collected, so they parallelize across the runner's workers; the
 * classification reads only RunResult content, so outcomes() is
 * byte-identical for any worker count.
 */
class CampaignRunner
{
  public:
    /** Throws std::invalid_argument for an unsatisfiable spec (zero
     *  cells, fault-count bounds outside [1, paletteSize()],
     *  intensities outside (0, 1], or safety not armed on base). */
    CampaignRunner(exp::Runner &runner, CampaignSpec spec);

    CampaignRunner(const CampaignRunner &) = delete;
    CampaignRunner &operator=(const CampaignRunner &) = delete;

    /** Deterministic sample of cell @p index (pure function of the
     *  spec seed; does not execute anything). */
    CampaignCell cellFor(std::size_t index) const;

    /** The ExperimentSpec a cell executes: base + the cell's plan. */
    exp::ExperimentSpec specFor(const CampaignCell &cell) const;

    /** Execute every cell and classify; idempotent. */
    const std::vector<CellOutcome> &run();

    /** Classified outcomes in cell order (empty before run()). */
    const std::vector<CellOutcome> &outcomes() const
    {
        return outcomes_;
    }

    const CampaignSpec &spec() const { return spec_; }

  private:
    exp::Runner &runner_;
    CampaignSpec spec_;
    std::vector<CellOutcome> outcomes_;
    bool ran_ = false;
};

/** Classification rule, exposed for tests: Violated on any recorded
 *  safety violation, else Degraded on any unrecovered fault, else
 *  Recovered. */
CellClass classify(const prof::RunResult &result);

/**
 * One resilience-frontier row: how a fault kind fared across every
 * cell that included it. A violation in a compound cell counts
 * against *each* kind in that cell (the campaign cannot attribute a
 * breach to one member of a compound fault — minimizeViolation()
 * does that).
 */
struct FrontierRow
{
    fault::FaultKind kind = fault::FaultKind::LidarBlackout;
    std::uint64_t cells = 0;    ///< cells including this kind
    std::uint64_t violated = 0; ///< of those, classified Violated
    /** Highest sampled intensity among non-Violated cells (0 when
     *  every cell with this kind violated). */
    double maxSurvivedIntensity = 0.0;
    /** Lowest sampled intensity among Violated cells (0 when none
     *  violated). */
    double minViolatedIntensity = 0.0;
};

/** Frontier rows in FaultKind order, kinds never sampled omitted. */
std::vector<FrontierRow>
resilienceFrontier(const std::vector<CellOutcome> &outcomes);

/** One attempted shrink step, for the audit trail. */
struct MinimizeStep
{
    /** e.g. "drop:camera_blackout@2000ms" or
     *  "shorten:lidar_blackout@1500ms->700ms". */
    std::string action;
    /** true = the shrunk plan still violated, step adopted. */
    bool kept = false;
};

/** Result of delta-debugging one violating plan. */
struct MinimizeResult
{
    /** The locally-minimal plan: no single drop, halving or
     *  weakening step preserves the violation. */
    fault::FaultPlan plan;
    /** The invariant the repro preserves (the original plan's first
     *  recorded violation). */
    stack::InvariantKind invariant =
        stack::InvariantKind::PipelineLiveness;
    /** Distinct candidate replays submitted (cache hits included). */
    std::uint64_t evaluations = 0;
    std::vector<MinimizeStep> steps;
};

/**
 * Shrink @p plan to a locally-minimal plan that still violates the
 * same invariant the full plan violated first, re-validating every
 * candidate through @p runner (serially, so the search is identical
 * for any worker count; with a cache directory every candidate warms
 * the cache for the next invocation). Greedy fixed point over three
 * step shapes: drop one fault, halve one window (50 ms quantized,
 * 100 ms floor), weaken one intensity field. Throws
 * std::invalid_argument when the initial plan does not violate.
 */
MinimizeResult minimizeViolation(exp::Runner &runner,
                                 const exp::ExperimentSpec &base,
                                 const fault::FaultPlan &plan);

/**
 * Canonical one-line-per-fault rendering of a plan, for goldens and
 * reports. Integer milliseconds for every window field (the sampler
 * and minimizer quantize to ≥10 ms grids) and default ostream
 * formatting for probabilities/factors — deterministic for equal
 * plans by construction.
 */
std::string canonicalPlan(const fault::FaultPlan &plan);

} // namespace av::chaos

#endif // AVSCOPE_CHAOS_CHAOS_HH
