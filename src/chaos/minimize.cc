#include "chaos/chaos.hh"

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "stack/safety.hh"

namespace av::chaos {

namespace {

constexpr sim::Tick kGrid = 50 * sim::oneMs;
constexpr sim::Tick kDurationFloor = 100 * sim::oneMs;
constexpr sim::Tick kRespawnFloor = 200 * sim::oneMs;
constexpr sim::Tick kDelayFloor = 20 * sim::oneMs;
constexpr double kProbabilityFloor = 1.0 / 16.0;

/** Round to the 1/64 intensity grid (exact in binary). */
double
quant64(double value)
{
    return static_cast<double>(std::llround(value * 64.0)) / 64.0;
}

/** Halve a window, quantized down to the 50 ms grid, floored. */
sim::Tick
halveTick(sim::Tick value, sim::Tick floor)
{
    const sim::Tick half = (value / 2 / kGrid) * kGrid;
    return std::max(half, floor);
}

sim::Tick
halveDelay(sim::Tick value)
{
    constexpr sim::Tick grid = 10 * sim::oneMs;
    const sim::Tick half = (value / 2 / grid) * grid;
    return std::max(half, kDelayFloor);
}

/**
 * Serial candidate evaluator: one submit/result round-trip per
 * distinct candidate (memoized by cache key within the search), so
 * the minimization executes identically for any --jobs value and
 * every candidate it replays lands in the shared result cache.
 */
class Evaluator
{
  public:
    Evaluator(exp::Runner &runner, const exp::ExperimentSpec &base)
        : runner_(runner), base_(base)
    {
    }

    exp::ExperimentSpec specFor(const fault::FaultPlan &plan)
    {
        exp::ExperimentSpec out = base_;
        out.config.faults = plan;
        out.label = base_.label + "/minimize";
        return out;
    }

    const prof::RunResult &run(const fault::FaultPlan &plan)
    {
        ++evaluations_;
        return runner_.result(runner_.submit(specFor(plan)));
    }

    bool violates(const fault::FaultPlan &plan,
                  stack::InvariantKind target)
    {
        const std::string key = exp::cacheKey(specFor(plan));
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        const bool hit = run(plan).violationsOf(target) > 0;
        memo_.emplace(key, hit);
        return hit;
    }

    void memoize(const fault::FaultPlan &plan, bool violates)
    {
        memo_.emplace(exp::cacheKey(specFor(plan)), violates);
    }

    std::uint64_t evaluations() const { return evaluations_; }

  private:
    exp::Runner &runner_;
    const exp::ExperimentSpec &base_;
    std::map<std::string, bool> memo_;
    std::uint64_t evaluations_ = 0;
};

std::string
msText(sim::Tick ticks)
{
    std::ostringstream os;
    os << ticks / sim::oneMs << "ms";
    return os.str();
}

} // namespace

MinimizeResult
minimizeViolation(exp::Runner &runner,
                  const exp::ExperimentSpec &base,
                  const fault::FaultPlan &plan)
{
    Evaluator eval(runner, base);
    const prof::RunResult &first = eval.run(plan);
    if (first.violations.empty())
        throw std::invalid_argument(
            "minimizeViolation: the plan does not violate any "
            "armed invariant — nothing to shrink");

    MinimizeResult result;
    result.invariant = first.violations.front().kind;
    const stack::InvariantKind target = result.invariant;
    eval.memoize(plan, true);

    fault::FaultPlan current = plan;
    bool changed = true;
    while (changed) {
        changed = false;

        // Pass 1 — drop whole faults (never below one: an empty
        // plan is not a fault repro).
        for (std::size_t i = 0;
             current.faults.size() > 1 && i < current.faults.size();) {
            fault::FaultPlan cand = current;
            cand.faults.erase(cand.faults.begin() +
                              static_cast<std::ptrdiff_t>(i));
            MinimizeStep step;
            step.action =
                "drop:" + fault::faultLabel(current.faults[i]);
            step.kept = eval.violates(cand, target);
            result.steps.push_back(step);
            if (step.kept) {
                current = std::move(cand);
                changed = true;
            } else {
                ++i;
            }
        }

        // Pass 2 — halve windows (duration, crash respawn).
        for (std::size_t i = 0; i < current.faults.size(); ++i) {
            const fault::FaultSpec &spec = current.faults[i];
            if (spec.duration > kDurationFloor) {
                const sim::Tick half =
                    halveTick(spec.duration, kDurationFloor);
                if (half < spec.duration) {
                    fault::FaultPlan cand = current;
                    cand.faults[i].duration = half;
                    MinimizeStep step;
                    step.action = "shorten:" +
                                  fault::faultLabel(spec) + "->" +
                                  msText(half);
                    step.kept = eval.violates(cand, target);
                    result.steps.push_back(step);
                    if (step.kept) {
                        current = std::move(cand);
                        changed = true;
                    }
                }
            }
            const fault::FaultSpec &again = current.faults[i];
            if (again.respawnDelay > kRespawnFloor) {
                const sim::Tick half =
                    halveTick(again.respawnDelay, kRespawnFloor);
                if (half < again.respawnDelay) {
                    fault::FaultPlan cand = current;
                    cand.faults[i].respawnDelay = half;
                    MinimizeStep step;
                    step.action = "respawn:" +
                                  fault::faultLabel(again) + "->" +
                                  msText(half);
                    step.kept = eval.violates(cand, target);
                    result.steps.push_back(step);
                    if (step.kept) {
                        current = std::move(cand);
                        changed = true;
                    }
                }
            }
        }

        // Pass 3 — weaken intensities (probability, throttle
        // factor, delay surcharge).
        for (std::size_t i = 0; i < current.faults.size(); ++i) {
            const fault::FaultSpec spec = current.faults[i];
            const bool probabilistic =
                spec.kind == fault::FaultKind::FrameLoss ||
                spec.kind == fault::FaultKind::MessageDuplicate ||
                spec.kind == fault::FaultKind::MessageCorrupt;
            if (probabilistic &&
                spec.probability > kProbabilityFloor) {
                const double weaker = std::max(
                    kProbabilityFloor,
                    quant64(spec.probability / 2.0));
                if (weaker < spec.probability) {
                    fault::FaultPlan cand = current;
                    cand.faults[i].probability = weaker;
                    std::ostringstream action;
                    action << "weaken:" << fault::faultLabel(spec)
                           << "->p=" << weaker;
                    MinimizeStep step;
                    step.action = action.str();
                    step.kept = eval.violates(cand, target);
                    result.steps.push_back(step);
                    if (step.kept) {
                        current = std::move(cand);
                        changed = true;
                    }
                }
            }
            if (spec.kind == fault::FaultKind::GpuThrottle) {
                const double weaker =
                    quant64((spec.factor + 1.0) / 2.0);
                if (weaker > spec.factor && weaker < 1.0) {
                    fault::FaultPlan cand = current;
                    cand.faults[i].factor = weaker;
                    std::ostringstream action;
                    action << "weaken:" << fault::faultLabel(spec)
                           << "->factor=" << weaker;
                    MinimizeStep step;
                    step.action = action.str();
                    step.kept = eval.violates(cand, target);
                    result.steps.push_back(step);
                    if (step.kept) {
                        current = std::move(cand);
                        changed = true;
                    }
                }
            }
            if (spec.kind == fault::FaultKind::MessageDelay &&
                spec.extraDelay > kDelayFloor) {
                const sim::Tick weaker =
                    halveDelay(spec.extraDelay);
                if (weaker < spec.extraDelay) {
                    fault::FaultPlan cand = current;
                    cand.faults[i].extraDelay = weaker;
                    MinimizeStep step;
                    step.action = "weaken:" +
                                  fault::faultLabel(spec) +
                                  "->extra=" + msText(weaker);
                    step.kept = eval.violates(cand, target);
                    result.steps.push_back(step);
                    if (step.kept) {
                        current = std::move(cand);
                        changed = true;
                    }
                }
            }
        }
    }

    result.plan = std::move(current);
    result.evaluations = eval.evaluations();
    return result;
}

} // namespace av::chaos
