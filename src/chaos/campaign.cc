#include "chaos/chaos.hh"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "perception/nodes.hh"
#include "stack/safety.hh"
#include "util/random.hh"
#include "world/recorder.hh"

namespace av::chaos {

namespace {

/**
 * The sampling palette: every FaultKind, each with an intensity →
 * FaultSpec mapping. Kinds are distinct within a cell by
 * construction (sampling without replacement), so a sampled plan can
 * never trip the FaultInjector's ambiguity rejections — those only
 * concern same-kind overlaps and byte-identical duplicates.
 */
constexpr std::size_t kPalette = 9;

/** Window grid: every sampled start/duration lands on 50 ms. */
constexpr sim::Tick kGrid = 50 * sim::oneMs;

sim::Tick
quantTick(double ticks)
{
    const auto cells = static_cast<sim::Tick>(ticks / kGrid);
    return std::max<sim::Tick>(1, cells) * kGrid;
}

/** Extra-delay grid: 10 ms. */
sim::Tick
quantDelay(double ticks)
{
    constexpr sim::Tick grid = 10 * sim::oneMs;
    const auto cells = static_cast<sim::Tick>(ticks / grid);
    return std::max<sim::Tick>(1, cells) * grid;
}

double
seconds(double s)
{
    return s * static_cast<double>(sim::oneSec);
}

/** Append the palette entry @p slot at @p intensity to @p plan. */
void
appendFault(fault::FaultPlan &plan, std::size_t slot,
            double intensity, sim::Tick start)
{
    const double i = intensity;
    switch (slot) {
    case 0:
        // The ego covers ~8 m/s, so a stale NDT pose diverges at
        // that rate: the default 3 m bound survives ~0.37 s of
        // LiDAR silence. Scale the window across that knee so the
        // frontier has both survivable and violating intensities.
        plan.lidarBlackout(start, quantTick(seconds(0.1 + 0.5 * i)));
        break;
    case 1:
        plan.cameraBlackout(start, quantTick(seconds(3.0 * i)));
        break;
    case 2:
        plan.gnssBlackout(start, quantTick(seconds(4.0 * i)));
        break;
    case 3:
        plan.frameLoss(world::topics::pointsRaw, start,
                       quantTick(seconds(1.0 + 1.5 * i)),
                       0.1 + 0.35 * i);
        break;
    case 4:
        plan.nodeCrash("euclidean_cluster", start,
                       quantTick(seconds(0.4 + 1.6 * i)));
        break;
    case 5:
        plan.messageDelay(perception::topics::filteredPoints, start,
                          quantTick(seconds(1.2 + 1.2 * i)),
                          quantDelay(seconds(0.18 * i)));
        break;
    case 6:
        plan.messageDuplicate(perception::topics::imageObjects,
                              start,
                              quantTick(seconds(1.0 + 1.0 * i)), i);
        break;
    case 7:
        plan.messageCorrupt(perception::topics::lidarObjects, start,
                            quantTick(seconds(1.0 + 1.0 * i)),
                            0.2 + 0.6 * i);
        break;
    case 8:
        plan.gpuThrottle(start, quantTick(seconds(1.0 + 2.0 * i)),
                         1.0 - 0.75 * i);
        break;
    default:
        break;
    }
}

} // namespace

std::size_t
paletteSize()
{
    return kPalette;
}

const char *
cellClassName(CellClass cls)
{
    switch (cls) {
    case CellClass::Recovered:
        return "recovered";
    case CellClass::Degraded:
        return "degraded";
    case CellClass::Violated:
        return "violated";
    }
    return "unknown";
}

CampaignRunner::CampaignRunner(exp::Runner &runner,
                               CampaignSpec spec)
    : runner_(runner), spec_(std::move(spec))
{
    if (spec_.cells == 0)
        throw std::invalid_argument("campaign needs >= 1 cell");
    if (spec_.minFaults < 1 || spec_.minFaults > spec_.maxFaults ||
        spec_.maxFaults > kPalette)
        throw std::invalid_argument(
            "campaign fault-count bounds must satisfy 1 <= min <= "
            "max <= palette size");
    if (!(spec_.minIntensity > 0.0) ||
        spec_.minIntensity > spec_.maxIntensity ||
        spec_.maxIntensity > 1.0)
        throw std::invalid_argument(
            "campaign intensities must satisfy 0 < min <= max <= 1");
    if (!spec_.base.config.safety.enabled)
        throw std::invalid_argument(
            "campaign base spec must arm the safety monitor "
            "(ExperimentSpec::invariants()) — without invariants no "
            "cell could ever be classified as violated");
}

CampaignCell
CampaignRunner::cellFor(std::size_t index) const
{
    util::Rng rng = util::Rng(spec_.seed).fork(index);
    CampaignCell cell;
    cell.index = index;
    cell.plan.seed = rng.next();

    const auto span = static_cast<std::int64_t>(spec_.maxFaults -
                                                spec_.minFaults);
    const std::size_t count =
        spec_.minFaults +
        (span > 0
             ? static_cast<std::size_t>(rng.uniformInt(0, span))
             : 0);

    // Sample without replacement so kinds are distinct per cell.
    std::vector<std::size_t> pool(kPalette);
    std::iota(pool.begin(), pool.end(), 0);

    // Intensities live on a 1/64 grid: exact in binary, so they
    // render, hash and halve without rounding drift.
    const auto lo = static_cast<std::int64_t>(
        spec_.minIntensity * 64.0 + 0.999999);
    const auto hi =
        static_cast<std::int64_t>(spec_.maxIntensity * 64.0);

    for (std::size_t j = 0; j < count; ++j) {
        const auto pick = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(pool.size()) - 1));
        const std::size_t slot = pool[pick];
        pool.erase(pool.begin() +
                   static_cast<std::ptrdiff_t>(pick));

        const double intensity =
            static_cast<double>(lo >= hi ? lo
                                         : rng.uniformInt(lo, hi)) /
            64.0;
        // Onsets cluster in the drive's first half so the sampled
        // windows overlap — the whole point of a *compound* cell.
        const sim::Tick start = quantTick(
            static_cast<double>(spec_.base.driveDuration) *
            rng.uniform(0.2, 0.45));

        appendFault(cell.plan, slot, intensity, start);
        cell.sampled.push_back(SampledFault{
            cell.plan.faults.back().kind, intensity});
    }
    return cell;
}

exp::ExperimentSpec
CampaignRunner::specFor(const CampaignCell &cell) const
{
    exp::ExperimentSpec out = spec_.base;
    out.config.faults = cell.plan;
    std::ostringstream label;
    label << spec_.base.label << "/cell" << cell.index;
    out.label = label.str();
    return out;
}

const std::vector<CellOutcome> &
CampaignRunner::run()
{
    if (ran_)
        return outcomes_;
    std::vector<CampaignCell> cells;
    std::vector<std::size_t> ids;
    cells.reserve(spec_.cells);
    ids.reserve(spec_.cells);
    for (std::size_t i = 0; i < spec_.cells; ++i) {
        cells.push_back(cellFor(i));
        ids.push_back(runner_.submit(specFor(cells.back())));
    }
    outcomes_.reserve(spec_.cells);
    for (std::size_t i = 0; i < spec_.cells; ++i) {
        const prof::RunResult &result = runner_.result(ids[i]);
        CellOutcome out;
        out.cell = std::move(cells[i]);
        out.cls = classify(result);
        out.violationCount = result.violations.size();
        if (!result.violations.empty())
            out.firstViolation =
                stack::violationLabel(result.violations.front());
        for (const fault::FaultOutcome &fo : result.faults)
            if (fo.recoveryMs < 0.0)
                ++out.unrecovered;
        out.worstPathMs = result.worstCaseP99();
        outcomes_.push_back(std::move(out));
    }
    ran_ = true;
    return outcomes_;
}

CellClass
classify(const prof::RunResult &result)
{
    if (!result.violations.empty())
        return CellClass::Violated;
    for (const fault::FaultOutcome &fo : result.faults)
        if (fo.recoveryMs < 0.0)
            return CellClass::Degraded;
    return CellClass::Recovered;
}

std::vector<FrontierRow>
resilienceFrontier(const std::vector<CellOutcome> &outcomes)
{
    // Indexed by FaultKind's underlying value; emitted in kind order.
    std::vector<FrontierRow> rows(kPalette);
    for (std::size_t k = 0; k < kPalette; ++k)
        rows[k].kind = static_cast<fault::FaultKind>(k);
    for (const CellOutcome &out : outcomes) {
        for (const SampledFault &sf : out.cell.sampled) {
            FrontierRow &row =
                rows[static_cast<std::size_t>(sf.kind)];
            ++row.cells;
            if (out.cls == CellClass::Violated) {
                ++row.violated;
                if (row.violated == 1 ||
                    sf.intensity < row.minViolatedIntensity)
                    row.minViolatedIntensity = sf.intensity;
            } else {
                row.maxSurvivedIntensity = std::max(
                    row.maxSurvivedIntensity, sf.intensity);
            }
        }
    }
    std::vector<FrontierRow> present;
    for (const FrontierRow &row : rows)
        if (row.cells != 0)
            present.push_back(row);
    return present;
}

std::string
canonicalPlan(const fault::FaultPlan &plan)
{
    std::ostringstream os;
    os << "seed " << plan.seed << '\n';
    for (const fault::FaultSpec &spec : plan.faults) {
        os << fault::faultKindName(spec.kind) << " start="
           << spec.start / sim::oneMs << "ms dur="
           << spec.duration / sim::oneMs << "ms target="
           << (spec.target.empty() ? "-" : spec.target)
           << " p=" << spec.probability
           << " factor=" << spec.factor
           << " extra=" << spec.extraDelay / sim::oneMs
           << "ms respawn=" << spec.respawnDelay / sim::oneMs
           << "ms watch="
           << (spec.watchTopic.empty() ? "-" : spec.watchTopic)
           << '\n';
    }
    return os.str();
}

} // namespace av::chaos
