/**
 * @file
 * Safety-invariant monitor: machine-checked resilience bounds.
 *
 * bench/fault_resilience (PR 5) *measures* degradation — recovery
 * times, drop inflation — but leaves "did the stack stay safe?" to a
 * human reading tables. This monitor turns that judgment into typed,
 * threshold-configurable invariants checked against ground truth
 * during the replay:
 *
 *  - TrackContinuity: an in-range actor the tracker had confirmed
 *    must not stay uncovered longer than N consecutive samples;
 *  - LocalizationError: the NDT pose must stay within a bound of the
 *    scenario's ground-truth ego pose (a *stale* pose diverges at
 *    ego speed, so silence shows up here too);
 *  - DeadlineStreak: the terminal costmap topic must not miss the
 *    E2E deadline (LiDAR origin -> publication) M times in a row;
 *  - PipelineLiveness: no watched inter-node topic that has started
 *    publishing may go silent beyond the liveness threshold — the
 *    escalation tier above StackWatchdog's staleness accounting.
 *
 * Violations are recorded as timestamped, token-safe records that
 * serialize into the result cache; av::chaos classifies campaign
 * cells by them. The monitor is a pure observer (taps + a periodic
 * sample on the shared EventQueue, no ros::Node, no simulated cost),
 * so enabling it cannot perturb any measurement.
 */

#ifndef AVSCOPE_STACK_SAFETY_HH
#define AVSCOPE_STACK_SAFETY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ros/ros.hh"
#include "sim/periodic.hh"

namespace av::world {
class Scenario;
}

namespace av::stack {

class AutowareStack;

/** The invariant classes the monitor checks. */
enum class InvariantKind : std::uint8_t {
    TrackContinuity,   ///< confirmed track lost while actor in range
    LocalizationError, ///< NDT pose error vs ground truth
    DeadlineStreak,    ///< consecutive E2E deadline misses
    PipelineLiveness,  ///< watched topic silent beyond threshold
};

/** Stable lowercase name, e.g. "localization_error". */
const char *invariantName(InvariantKind kind);

/** Inverse of invariantName(); false when @p name is unknown. */
bool invariantFromName(const std::string &name, InvariantKind &out);

/**
 * Invariant thresholds. Default-off (like DegradationOptions) so the
 * seed behaviour and every cached result reproduce unchanged; fault
 * campaigns opt in. Every field folds into the experiment cache key.
 */
struct SafetyOptions
{
    bool enabled = false;
    /** Sampling period for the polled invariants. */
    sim::Tick samplePeriod = 100 * sim::oneMs;
    /** TrackContinuity: actors within this range (m) must be kept. */
    double trackRange = 18.0;
    /** TrackContinuity: track-to-truth association gate (m). */
    double trackGate = 4.0;
    /** TrackContinuity: tolerated consecutive uncovered samples. */
    std::uint64_t trackLossSamples = 8;
    /** LocalizationError: NDT-vs-ground-truth bound (m). */
    double maxLocalizationError = 3.0;
    /** DeadlineStreak: E2E budget (ms; the paper's 100 ms). */
    double deadlineMs = 100.0;
    /** DeadlineStreak: tolerated consecutive misses. */
    std::uint64_t deadlineMissStreak = 10;
    /** PipelineLiveness: silence beyond this escalates (> watchdog
     *  staleAfter, which merely counts). */
    sim::Tick livenessAfter = 2 * sim::oneSec;
};

/**
 * One recorded invariant breach. subject is token-safe (a topic name
 * or "actor_<id>") so the record serializes on one cache line.
 */
struct SafetyViolation
{
    InvariantKind kind = InvariantKind::PipelineLiveness;
    sim::Tick time = 0;   ///< virtual time of detection
    std::string subject;  ///< topic or actor the breach concerns
    double value = 0.0;   ///< measured quantity at detection
    double bound = 0.0;   ///< the configured threshold it crossed
};

/** Report label, e.g. "localization_error@2500ms:/ndt_pose". */
std::string violationLabel(const SafetyViolation &violation);

/**
 * The monitor. Construct after the stack (taps attach to existing
 * topics; disabled subsystems are skipped per invariant), start()
 * before the replay. Each invariant re-arms only after its condition
 * clears, so one sustained breach yields one violation record.
 *
 * @p horizon is the end of sensor input (the drive duration):
 * invariants are only judged while the bag is still feeding the
 * stack. Past the horizon every topic legitimately falls silent and
 * the ground-truth ego keeps moving, so liveness, localization and
 * deadline checks would all fire spuriously during the drain-grace
 * window; 0 means no horizon.
 */
class SafetyMonitor
{
  public:
    SafetyMonitor(ros::RosGraph &graph, const AutowareStack &stack,
                  const world::Scenario &scenario,
                  const SafetyOptions &options, sim::Tick horizon);

    SafetyMonitor(const SafetyMonitor &) = delete;
    SafetyMonitor &operator=(const SafetyMonitor &) = delete;

    void start();
    void stop();

    /** Violations in detection order (deterministic). */
    const std::vector<SafetyViolation> &violations() const
    {
        return violations_;
    }

    /** Violations of one kind. */
    std::uint64_t count(InvariantKind kind) const;

  private:
    /** Per-actor continuity episode state. */
    struct ActorCover
    {
        std::uint64_t lostStreak = 0;
        bool everCovered = false;
        bool inViolation = false;
    };

    /** Per-topic liveness state. */
    struct TopicPulse
    {
        std::string topic;
        sim::Tick lastStamp = 0;
        bool seen = false;
        bool inViolation = false;
    };

    void sample();
    void sampleLocalization(sim::Tick now);
    void sampleContinuity(sim::Tick now);
    void sampleLiveness(sim::Tick now);
    void onTerminal(const ros::Header &header);
    void record(InvariantKind kind, sim::Tick time,
                const std::string &subject, double value,
                double bound);

    ros::RosGraph &graph_;
    const AutowareStack &stack_;
    const world::Scenario &scenario_;
    SafetyOptions options_;
    sim::Tick horizon_ = 0; ///< end of sensor input; 0 = none
    bool running_ = false;
    sim::PeriodicTask task_;
    std::vector<SafetyViolation> violations_;
    /** Liveness pulse per watched topic; taps point into this. */
    std::vector<TopicPulse> pulses_;
    /** Continuity state per truth-actor id (sorted map semantics via
     *  linear scan: actor counts are tens, not thousands). */
    std::vector<std::pair<std::uint32_t, ActorCover>> covers_;
    /** DeadlineStreak state on the terminal topic. */
    std::string terminalTopic_;
    std::uint64_t missStreak_ = 0;
    bool deadlineInViolation_ = false;
    /** LocalizationError re-arm latch. */
    bool locInViolation_ = false;
};

} // namespace av::stack

#endif // AVSCOPE_STACK_SAFETY_HH
