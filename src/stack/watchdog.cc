#include "stack/watchdog.hh"

#include "perception/nodes.hh"

namespace av::stack {

std::vector<std::string>
StackWatchdog::defaultTopics()
{
    namespace t = perception::topics;
    return {t::ndtPose,        t::lidarObjects, t::imageObjects,
            t::fusedObjects,   t::trackedObjects, t::objects,
            t::costmap};
}

StackWatchdog::StackWatchdog(ros::RosGraph &graph,
                             const WatchdogConfig &config,
                             std::vector<std::string> topics)
    : ros::Node(graph, "stack_watchdog"), config_(config),
      task_(graph.eventQueue(), config.period,
            [this](std::uint64_t) { sample(); })
{
    if (topics.empty())
        topics = defaultTopics();
    // Reserve up front: taps capture pointers into watched_.
    watched_.reserve(topics.size());
    for (const std::string &name : topics) {
        ros::TopicBase *topic = graph.findTopic(name);
        if (!topic)
            continue; // subsystem disabled; nothing to watch
        watched_.push_back(WatchedTopic{name, 0, false, false, 0});
        WatchedTopic *state = &watched_.back();
        topic->addHeaderTap([state](const ros::Header &header) {
            state->lastStamp = header.stamp;
            state->seen = true;
        });
    }
}

void
StackWatchdog::start()
{
    task_.start(config_.period);
}

void
StackWatchdog::stop()
{
    task_.stop();
}

void
StackWatchdog::sample()
{
    if (down())
        return;
    const sim::Tick now = graph().eventQueue().now();
    for (WatchedTopic &w : watched_) {
        if (!w.seen)
            continue; // silence before first publication ≠ outage
        const bool stale_now = now - w.lastStamp > config_.staleAfter;
        if (stale_now && !w.stale)
            ++w.staleEvents;
        w.stale = stale_now;
    }
}

std::uint64_t
StackWatchdog::totalStaleEvents() const
{
    std::uint64_t total = 0;
    for (const WatchedTopic &w : watched_)
        total += w.staleEvents;
    return total;
}

} // namespace av::stack
