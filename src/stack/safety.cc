#include "stack/safety.hh"

#include "perception/nodes.hh"
#include "stack/autoware_stack.hh"
#include "stack/watchdog.hh"
#include "world/scenario.hh"

namespace av::stack {

const char *
invariantName(InvariantKind kind)
{
    switch (kind) {
      case InvariantKind::TrackContinuity:
        return "track_continuity";
      case InvariantKind::LocalizationError:
        return "localization_error";
      case InvariantKind::DeadlineStreak: return "deadline_streak";
      case InvariantKind::PipelineLiveness:
        return "pipeline_liveness";
    }
    return "?";
}

bool
invariantFromName(const std::string &name, InvariantKind &out)
{
    static constexpr InvariantKind kAll[] = {
        InvariantKind::TrackContinuity,
        InvariantKind::LocalizationError,
        InvariantKind::DeadlineStreak,
        InvariantKind::PipelineLiveness,
    };
    for (InvariantKind kind : kAll) {
        if (name == invariantName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::string
violationLabel(const SafetyViolation &violation)
{
    return std::string(invariantName(violation.kind)) + "@" +
           std::to_string(violation.time / sim::oneMs) + "ms:" +
           violation.subject;
}

SafetyMonitor::SafetyMonitor(ros::RosGraph &graph,
                             const AutowareStack &stack,
                             const world::Scenario &scenario,
                             const SafetyOptions &options,
                             sim::Tick horizon)
    : graph_(graph), stack_(stack), scenario_(scenario),
      options_(options), horizon_(horizon),
      task_(graph.eventQueue(), options.samplePeriod,
            [this](std::uint64_t) { sample(); })
{
    // Liveness pulses over the watchdog's inter-node topic set.
    // Reserve up front: taps capture pointers into pulses_.
    const std::vector<std::string> watched =
        StackWatchdog::defaultTopics();
    pulses_.reserve(watched.size());
    for (const std::string &name : watched) {
        ros::TopicBase *topic = graph.findTopic(name);
        if (!topic)
            continue; // subsystem disabled; invariant not in force
        pulses_.push_back(TopicPulse{name, 0, false, false});
        TopicPulse *pulse = &pulses_.back();
        topic->addHeaderTap([pulse](const ros::Header &header) {
            pulse->lastStamp = header.stamp;
            pulse->seen = true;
        });
    }
    // E2E deadline on the terminal topic: the costmap when present,
    // else the predicted-objects output.
    terminalTopic_ = perception::topics::costmap;
    ros::TopicBase *terminal = graph.findTopic(terminalTopic_);
    if (!terminal) {
        terminalTopic_ = perception::topics::objects;
        terminal = graph.findTopic(terminalTopic_);
    }
    if (terminal)
        terminal->addHeaderTap([this](const ros::Header &header) {
            onTerminal(header);
        });
    else
        terminalTopic_.clear();
}

void
SafetyMonitor::start()
{
    running_ = true;
    task_.start(options_.samplePeriod);
}

void
SafetyMonitor::stop()
{
    running_ = false;
    task_.stop();
}

std::uint64_t
SafetyMonitor::count(InvariantKind kind) const
{
    std::uint64_t n = 0;
    for (const SafetyViolation &v : violations_)
        n += v.kind == kind;
    return n;
}

void
SafetyMonitor::record(InvariantKind kind, sim::Tick time,
                      const std::string &subject, double value,
                      double bound)
{
    SafetyViolation v;
    v.kind = kind;
    v.time = time;
    v.subject = subject;
    v.value = value;
    v.bound = bound;
    violations_.push_back(std::move(v));
}

void
SafetyMonitor::sample()
{
    const sim::Tick now = graph_.eventQueue().now();
    // Past the horizon the bag has stopped feeding the stack: every
    // topic legitimately falls silent while the ground-truth ego
    // keeps moving, so judging invariants there would manufacture
    // violations out of the drain-grace window.
    if (horizon_ != 0 && now > horizon_)
        return;
    sampleLocalization(now);
    sampleContinuity(now);
    sampleLiveness(now);
}

void
SafetyMonitor::sampleLocalization(sim::Tick now)
{
    const perception::NdtMatchingNode *ndt = stack_.ndt();
    if (!ndt || !ndt->lastPose())
        return;
    // Compare the latest estimate against ground truth *now*: a pose
    // that stopped updating diverges at ego speed, so a silent
    // localizer breaches this bound exactly like a wrong one.
    const double err =
        (ndt->lastPose()->position - scenario_.egoPoseAt(now).p)
            .norm();
    if (err > options_.maxLocalizationError) {
        if (!locInViolation_)
            record(InvariantKind::LocalizationError, now,
                   perception::topics::ndtPose, err,
                   options_.maxLocalizationError);
        locInViolation_ = true;
    } else {
        locInViolation_ = false;
    }
}

void
SafetyMonitor::sampleContinuity(sim::Tick now)
{
    const perception::ImmUkfPdaNode *node = stack_.trackerNode();
    if (!node)
        return;
    const geom::Pose2 ego = scenario_.egoPoseAt(now);
    const std::vector<perception::Track> tracks =
        node->tracker().tracks();
    for (const world::ActorState &actor : scenario_.actorsAt(now)) {
        const geom::Vec2 pos = actor.box.pose.p;
        ActorCover *cover = nullptr;
        for (auto &entry : covers_)
            if (entry.first == actor.id)
                cover = &entry.second;
        if (!cover) {
            covers_.emplace_back(actor.id, ActorCover{});
            cover = &covers_.back().second;
        }
        if ((pos - ego.p).norm() > options_.trackRange) {
            // Out of range: the invariant is not in force; a fresh
            // episode starts when the actor comes back.
            cover->lostStreak = 0;
            cover->inViolation = false;
            continue;
        }
        bool covered = false;
        for (const perception::Track &track : tracks) {
            if (!track.confirmed)
                continue;
            const geom::Vec2 est{track.state[0], track.state[1]};
            if ((est - pos).norm() <= options_.trackGate) {
                covered = true;
                break;
            }
        }
        if (covered) {
            cover->everCovered = true;
            cover->lostStreak = 0;
            cover->inViolation = false;
        } else if (cover->everCovered) {
            ++cover->lostStreak;
            if (cover->lostStreak > options_.trackLossSamples &&
                !cover->inViolation) {
                record(InvariantKind::TrackContinuity, now,
                       "actor_" + std::to_string(actor.id),
                       static_cast<double>(cover->lostStreak),
                       static_cast<double>(
                           options_.trackLossSamples));
                cover->inViolation = true;
            }
        }
    }
}

void
SafetyMonitor::sampleLiveness(sim::Tick now)
{
    for (TopicPulse &pulse : pulses_) {
        if (!pulse.seen)
            continue; // silence before first publication ≠ outage
        const sim::Tick age = now - pulse.lastStamp;
        if (age > options_.livenessAfter) {
            if (!pulse.inViolation)
                record(InvariantKind::PipelineLiveness, now,
                       pulse.topic, sim::ticksToMs(age),
                       sim::ticksToMs(options_.livenessAfter));
            pulse.inViolation = true;
        } else {
            pulse.inViolation = false;
        }
    }
}

void
SafetyMonitor::onTerminal(const ros::Header &header)
{
    if (!running_)
        return;
    if (header.origins.lidar == 0)
        return; // not derived from a LiDAR scan: no E2E lineage
    const sim::Tick now = graph_.eventQueue().now();
    if (horizon_ != 0 && now > horizon_)
        return; // drain-grace publications are expected to be late
    const double e2e = sim::ticksToMs(now - header.origins.lidar);
    if (e2e > options_.deadlineMs) {
        ++missStreak_;
        if (missStreak_ >= options_.deadlineMissStreak &&
            !deadlineInViolation_) {
            record(InvariantKind::DeadlineStreak, now,
                   terminalTopic_,
                   static_cast<double>(missStreak_),
                   static_cast<double>(options_.deadlineMissStreak));
            deadlineInViolation_ = true;
        }
    } else {
        missStreak_ = 0;
        deadlineInViolation_ = false;
    }
}

} // namespace av::stack
