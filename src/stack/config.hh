/**
 * @file
 * Platform and calibration configuration.
 *
 * defaultMachine() is our analogue of the paper's Table II rig: a
 * 2019-class 6-core workstation with a high-end discrete GPU.
 * defaultNodeConfigs() holds the per-node calibration constants
 * (work scales, detector GPU efficiencies, power weights) that place
 * the simulated node costs in the paper's measured ranges; the
 * derivation is documented in EXPERIMENTS.md and exercised by
 * bench/ablation_platform.
 */

#ifndef AVSCOPE_STACK_CONFIG_HH
#define AVSCOPE_STACK_CONFIG_HH

#include "dnn/cost.hh"
#include "hw/machine.hh"
#include "perception/node_base.hh"
#include "perception/vision_model.hh"

namespace av::stack {

/** The reference platform (paper Table II analogue). */
hw::MachineConfig defaultMachine();

/** Calibrated per-node execution parameters. */
struct NodeCalibration
{
    perception::NodeConfig voxelGridFilter;
    perception::NodeConfig ndtMatching;
    perception::NodeConfig rayGroundFilter;
    perception::NodeConfig euclideanCluster;
    perception::NodeConfig visionDetector;
    perception::NodeConfig rangeVisionFusion;
    perception::NodeConfig immUkfPda;
    perception::NodeConfig trackRelay;
    perception::NodeConfig naiveMotionPredict;
    perception::NodeConfig costmapGenerator;
};

/** Calibrated defaults. */
NodeCalibration defaultCalibration();

/**
 * GPU cost parameters per detector: achieved efficiency (cuDNN for
 * SSD, darknet for YOLO) and the occupancy weight driving GPU power
 * (Table VI shapes).
 */
dnn::GpuCostParams gpuParamsFor(perception::DetectorKind kind);

} // namespace av::stack

#endif // AVSCOPE_STACK_CONFIG_HH
