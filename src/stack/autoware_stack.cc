#include "stack/autoware_stack.hh"

namespace av::stack {

AutowareStack::AutowareStack(ros::RosGraph &graph,
                             const pc::PointCloud &map,
                             const StackOptions &options,
                             const NodeCalibration &calibration,
                             std::optional<geom::Pose2> initial_pose)
    : options_(options)
{
    using namespace perception;

    // Degradation knobs collapse to 0 (= disabled inside the nodes)
    // unless the study opted in, so seed runs replay unchanged.
    const DegradationOptions &deg = options.degradation;
    const sim::Tick reseed_after =
        deg.enabled ? deg.ndtReseedAfter : 0;
    const sim::Tick vision_stale_after =
        deg.enabled ? deg.visionStaleAfter : 0;
    const sim::Tick coast_after =
        deg.enabled ? deg.trackerCoastAfter : 0;
    const sim::Tick coast_period =
        deg.enabled ? deg.trackerCoastPeriod : 0;

    if (options.enableLocalization) {
        voxel_ = std::make_unique<VoxelGridFilterNode>(
            graph, calibration.voxelGridFilter);
        ndt_ = std::make_unique<NdtMatchingNode>(
            graph, calibration.ndtMatching, map, initial_pose,
            NdtConfig(), reseed_after);
    }
    if (options.enableLidarDetection) {
        rayGround_ = std::make_unique<RayGroundFilterNode>(
            graph, calibration.rayGroundFilter);
        cluster_ = std::make_unique<EuclideanClusterNode>(
            graph, calibration.euclideanCluster, ClusterConfig(),
            options.clusterOnGpu);
    }
    if (options.enableVision) {
        vision_ = std::make_unique<VisionDetectorNode>(
            graph, calibration.visionDetector, options.detector,
            gpuParamsFor(options.detector));
    }
    if (options.enableTracking) {
        fusion_ = std::make_unique<RangeVisionFusionNode>(
            graph, calibration.rangeVisionFusion, FusionConfig(),
            vision_stale_after);
        tracker_ = std::make_unique<ImmUkfPdaNode>(
            graph, calibration.immUkfPda, TrackerConfig(),
            coast_after, coast_period);
        relay_ = std::make_unique<TrackRelayNode>(
            graph, calibration.trackRelay);
        predict_ = std::make_unique<NaiveMotionPredictNode>(
            graph, calibration.naiveMotionPredict);
    }
    if (options.enableCostmap) {
        costmap_ = std::make_unique<CostmapGeneratorNode>(
            graph, calibration.costmapGenerator);
    }
    if (deg.enabled) {
        WatchdogConfig wd;
        wd.period = deg.watchdogPeriod;
        wd.staleAfter = deg.watchdogStaleAfter;
        watchdog_ = std::make_unique<StackWatchdog>(graph, wd);
        watchdog_->start();
    }

    const auto collect = [this](PerceptionNode *node) {
        if (node)
            all_.push_back(node);
    };
    collect(voxel_.get());
    collect(ndt_.get());
    collect(rayGround_.get());
    collect(cluster_.get());
    collect(vision_.get());
    collect(fusion_.get());
    collect(tracker_.get());
    collect(relay_.get());
    collect(predict_.get());
    collect(costmap_.get());
}

AutowareStack::~AutowareStack() = default;

perception::PerceptionNode *
AutowareStack::find(const std::string &name) const
{
    for (perception::PerceptionNode *node : all_) {
        if (node->name() == name)
            return node;
    }
    return nullptr;
}

} // namespace av::stack
