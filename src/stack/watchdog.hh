/**
 * @file
 * Stack watchdog: detects stale topics from header timestamps.
 *
 * A real AV safety monitor (Autoware's health checker, the paper's
 * deadline framing in §IV) watches for pipeline stages going silent.
 * This node taps the key inter-node topics, samples their publication
 * age on a fixed period, and counts *stale transitions* — a topic that
 * was flowing and then exceeded the stale threshold. Degradation
 * responses elsewhere in the stack (LiDAR-only fusion, tracker
 * coasting, NDT reseeding) are the reactions; the watchdog is the
 * detector and the metric source.
 */

#ifndef AVSCOPE_STACK_WATCHDOG_HH
#define AVSCOPE_STACK_WATCHDOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ros/ros.hh"
#include "sim/periodic.hh"

namespace av::stack {

/** Watchdog tuning. */
struct WatchdogConfig
{
    sim::Tick period = 100 * sim::oneMs;     ///< sampling interval
    sim::Tick staleAfter = 500 * sim::oneMs; ///< silence threshold
};

/** Per-topic watchdog state (reporting view). */
struct WatchedTopic
{
    std::string topic;
    sim::Tick lastStamp = 0;        ///< latest publication stamp
    bool seen = false;              ///< published at least once
    bool stale = false;             ///< currently beyond threshold
    std::uint64_t staleEvents = 0;  ///< fresh->stale transitions
};

/**
 * The watchdog node. Construct after the stack so the watched topics
 * exist; topics absent from the graph (disabled subsystems) are
 * skipped. Registered as a node so it is visible in the graph — and
 * crashable like everything else.
 */
class StackWatchdog : public ros::Node
{
  public:
    /**
     * @param topics topic names to watch; empty selects the default
     *        inter-node set (poses, detections, tracks, costmap)
     */
    StackWatchdog(ros::RosGraph &graph,
                  const WatchdogConfig &config = WatchdogConfig(),
                  std::vector<std::string> topics = {});

    /** The default watched-topic set. */
    static std::vector<std::string> defaultTopics();

    void start();
    void stop();

    /** Per-topic state, in construction order. */
    const std::vector<WatchedTopic> &watched() const
    {
        return watched_;
    }

    /** Total fresh->stale transitions across all topics. */
    std::uint64_t totalStaleEvents() const;

  private:
    void sample();

    WatchdogConfig config_;
    std::vector<WatchedTopic> watched_;
    sim::PeriodicTask task_;
};

} // namespace av::stack

#endif // AVSCOPE_STACK_WATCHDOG_HH
