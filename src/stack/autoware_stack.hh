/**
 * @file
 * The assembled stack: every perception node of the paper's Fig. 1
 * wired per Table IV, on one machine, with a selectable vision
 * detector. Also supports the isolation mode of the paper's Fig. 8
 * (run the detector alone against the same bag).
 */

#ifndef AVSCOPE_STACK_AUTOWARE_STACK_HH
#define AVSCOPE_STACK_AUTOWARE_STACK_HH

#include <memory>
#include <vector>

#include "perception/nodes.hh"
#include "ros/ros.hh"
#include "stack/config.hh"
#include "stack/watchdog.hh"

namespace av::stack {

/**
 * Graceful-degradation knobs. Default-off so the seed behaviour —
 * and every calibrated finding — reproduces unchanged; fault studies
 * opt in.
 */
struct DegradationOptions
{
    bool enabled = false;
    /** Fusion publishes LiDAR-only when vision is older than this. */
    sim::Tick visionStaleAfter = 300 * sim::oneMs;
    /** Tracker coasts when fused input is older than this... */
    sim::Tick trackerCoastAfter = 250 * sim::oneMs;
    /** ...checking on this period. */
    sim::Tick trackerCoastPeriod = 100 * sim::oneMs;
    /** NDT reseeds from GNSS after a localization gap this long. */
    sim::Tick ndtReseedAfter = 500 * sim::oneMs;
    /** Watchdog sampling period / per-topic silence threshold. */
    sim::Tick watchdogPeriod = 100 * sim::oneMs;
    sim::Tick watchdogStaleAfter = 500 * sim::oneMs;
};

/** Which parts of the stack to launch. */
struct StackOptions
{
    perception::DetectorKind detector =
        perception::DetectorKind::Ssd512;
    bool enableVision = true;
    bool enableLocalization = true;  ///< voxel filter + NDT
    bool enableLidarDetection = true;///< ray ground + clustering
    bool enableTracking = true;      ///< fusion + tracker + predict
    bool enableCostmap = true;
    bool clusterOnGpu = true;
    DegradationOptions degradation;
};

/**
 * Owns the node graph.
 */
class AutowareStack
{
  public:
    /**
     * @param graph middleware bound to the machine under test
     * @param map   point-cloud map for NDT (ndt_mapping output)
     * @param initial_pose operator-provided initial pose for NDT
     */
    AutowareStack(ros::RosGraph &graph, const pc::PointCloud &map,
                  const StackOptions &options = StackOptions(),
                  const NodeCalibration &calibration =
                      defaultCalibration(),
                  std::optional<geom::Pose2> initial_pose = {});

    ~AutowareStack();

    /** All live perception nodes (probe attachment). */
    const std::vector<perception::PerceptionNode *> &nodes() const
    {
        return all_;
    }

    /** Node lookup by ros name; nullptr when absent/disabled. */
    perception::PerceptionNode *find(const std::string &name) const;

    const StackOptions &options() const { return options_; }

    perception::VisionDetectorNode *vision() const
    {
        return vision_.get();
    }
    perception::NdtMatchingNode *ndt() const { return ndt_.get(); }
    perception::CostmapGeneratorNode *costmap() const
    {
        return costmap_.get();
    }
    perception::ImmUkfPdaNode *trackerNode() const
    {
        return tracker_.get();
    }
    perception::RangeVisionFusionNode *fusion() const
    {
        return fusion_.get();
    }
    /** Stale-topic watchdog; nullptr unless degradation is enabled. */
    StackWatchdog *watchdog() const { return watchdog_.get(); }

  private:
    StackOptions options_;
    std::unique_ptr<perception::VoxelGridFilterNode> voxel_;
    std::unique_ptr<perception::NdtMatchingNode> ndt_;
    std::unique_ptr<perception::RayGroundFilterNode> rayGround_;
    std::unique_ptr<perception::EuclideanClusterNode> cluster_;
    std::unique_ptr<perception::VisionDetectorNode> vision_;
    std::unique_ptr<perception::RangeVisionFusionNode> fusion_;
    std::unique_ptr<perception::ImmUkfPdaNode> tracker_;
    std::unique_ptr<perception::TrackRelayNode> relay_;
    std::unique_ptr<perception::NaiveMotionPredictNode> predict_;
    std::unique_ptr<perception::CostmapGeneratorNode> costmap_;
    std::unique_ptr<StackWatchdog> watchdog_;
    std::vector<perception::PerceptionNode *> all_;
};

} // namespace av::stack

#endif // AVSCOPE_STACK_AUTOWARE_STACK_HH
