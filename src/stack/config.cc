#include "stack/config.hh"

namespace av::stack {

hw::MachineConfig
defaultMachine()
{
    hw::MachineConfig cfg;
    cfg.cpu.cores = 4;
    cfg.cpu.freqGhz = 3.7;
    cfg.cpu.quantum = 2 * sim::oneMs;
    cfg.cpu.memBandwidthGBs = 20.0;
    cfg.cpu.memPenaltyCyclesPerByte = 18.0;

    cfg.gpu.tflops = 11.0;
    cfg.gpu.computeEfficiency = 1.0; // per-framework derate in dnn
    cfg.gpu.memBandwidthGBs = 480.0;
    cfg.gpu.pcieGBs = 12.0;

    cfg.power = hw::PowerConfig{};
    return cfg;
}

NodeCalibration
defaultCalibration()
{
    // workScale = (sensor-density scale: the simulated LiDAR runs at
    // ~8.5k points/scan versus the ~110k of the paper's unit) x
    // (implementation expansion: PCL/OpenCV instruction overhead per
    // abstract op). Values set by bench/calibrate against the Fig. 5
    // means; see EXPERIMENTS.md.
    NodeCalibration cal;
    cal.voxelGridFilter.workScale = 22.0;
    cal.ndtMatching.workScale = 28.0;
    cal.rayGroundFilter.workScale = 27.0;
    cal.euclideanCluster.workScale = 8.0;
    cal.visionDetector.workScale = 1.0; // dnn costs are absolute
    cal.rangeVisionFusion.workScale = 5000.0;
    cal.immUkfPda.workScale = 280.0;
    cal.trackRelay.workScale = 150.0;
    cal.naiveMotionPredict.workScale = 1800.0;
    cal.costmapGenerator.workScale = 22.0;

    // µarch trace sampling: heavyweight point-cloud nodes sample
    // every third invocation (their EWMA miss rates are stable);
    // the vision node runs two sub-invocations per frame and must
    // trace every one.
    cal.voxelGridFilter.tracePeriod = 2;
    cal.ndtMatching.tracePeriod = 3;
    cal.rayGroundFilter.tracePeriod = 3;
    cal.euclideanCluster.tracePeriod = 3;
    cal.visionDetector.tracePeriod = 1;
    cal.immUkfPda.tracePeriod = 2;
    cal.naiveMotionPredict.tracePeriod = 2;
    cal.costmapGenerator.tracePeriod = 2;
    return cal;
}

dnn::GpuCostParams
gpuParamsFor(perception::DetectorKind kind)
{
    dnn::GpuCostParams params;
    switch (kind) {
      case perception::DetectorKind::Ssd512:
        // cuDNN VGG kernels sustain near half of peak; heavyweight
        // kernels keep occupancy (and board power) high.
        params.efficiency = 0.66;
        params.powerWeight = 1.10;
        break;
      case perception::DetectorKind::Ssd300:
        params.efficiency = 0.40;
        params.powerWeight = 0.33;
        break;
      case perception::DetectorKind::Yolov3:
        // darknet's hand-rolled kernels reach ~0.2 of peak but run
        // at high occupancy.
        params.efficiency = 0.21;
        params.powerWeight = 0.74;
        break;
    }
    return params;
}

} // namespace av::stack
