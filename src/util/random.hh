/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic component in avscope draws from an av::util::Rng
 * seeded explicitly, so whole-system runs are reproducible bit-for-bit
 * (the paper replays the same ROSBAG for the same reason, §III-A).
 */

#ifndef AVSCOPE_UTIL_RANDOM_HH
#define AVSCOPE_UTIL_RANDOM_HH

#include <cstdint>

namespace av::util {

/**
 * Small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographic. Copyable; copies diverge independently from the
 * copied state, which is handy for forking per-component streams.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached spare). */
    double gaussian();

    /** Normal with mean @p mu and standard deviation @p sigma. */
    double gaussian(double mu, double sigma);

    /** Exponential with rate @p lambda (mean 1/lambda). */
    double exponential(double lambda);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /**
     * Log-normal such that the *mean* of the distribution is
     * @p mean and the coefficient of variation is @p cv. Used for
     * heavy-tailed cost jitter.
     */
    double logNormalMeanCv(double mean, double cv);

    /**
     * Fork an independent stream: hashes this stream's next output
     * with @p salt so sibling components never share a sequence.
     */
    Rng fork(std::uint64_t salt);

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace av::util

#endif // AVSCOPE_UTIL_RANDOM_HH
