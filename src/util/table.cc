#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace av::util {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    AV_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    AV_ASSERT(cells.size() == headers_.size(),
              "row width ", cells.size(), " != header width ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    const auto print_row = [&](const std::vector<std::string> &row) {
        os << "  ";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };

    if (!title_.empty())
        os << title_ << "\n";
    print_row(headers_);
    std::size_t total = 2;
    for (std::size_t w : widths)
        total += w + 2;
    os << "  " << std::string(total - 4, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::string cell = row[c];
            const bool quote =
                cell.find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                std::string escaped = "\"";
                for (char ch : cell) {
                    if (ch == '"')
                        escaped += '"';
                    escaped += ch;
                }
                escaped += '"';
                cell = escaped;
            }
            os << cell;
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
sketchDistribution(const std::vector<std::size_t> &histogram,
                   std::size_t width)
{
    if (histogram.empty())
        return "";
    static const char *shades[] = {" ", ".", ":", "-", "=", "#"};
    const std::size_t levels = 6;
    std::size_t peak = 1;
    for (std::size_t v : histogram)
        peak = std::max(peak, v);

    std::string out;
    out.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
        // Resample the histogram to the requested width.
        const std::size_t b = i * histogram.size() / width;
        const std::size_t level =
            histogram[b] == 0
                ? 0
                : 1 + (histogram[b] * (levels - 2)) / peak;
        out += shades[std::min(level, levels - 1)];
    }
    return out;
}

} // namespace av::util
