#include "util/flags.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"

namespace av::util {

Flags::Flags(int argc, char **argv, const std::vector<std::string> &known)
{
    const auto is_known = [&](const std::string &k) {
        return std::find(known.begin(), known.end(), k) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            pos_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        std::string key = arg;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)
                   != 0) {
            value = argv[++i];
        } else {
            value = "true";
        }
        if (!is_known(key)) {
            std::string usage = "unknown flag --" + key + "; known flags:";
            for (const auto &k : known)
                usage += " --" + k;
            fatal(usage);
        }
        values_[key] = value;
    }
}

bool
Flags::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Flags::getString(const std::string &key, const std::string &def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

long
Flags::getInt(const std::string &key, long def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return std::strtol(it->second.c_str(), nullptr, 10);
}

double
Flags::getDouble(const std::string &key, double def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Flags::getBool(const std::string &key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return it->second == "true" || it->second == "1" ||
           it->second == "yes" || it->second == "on";
}

} // namespace av::util
