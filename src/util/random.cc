#include "util/random.hh"

#include <cmath>

namespace av::util {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mu, double sigma)
{
    return mu + sigma * gaussian();
}

double
Rng::exponential(double lambda)
{
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::logNormalMeanCv(double mean, double cv)
{
    // For LogNormal(mu, sigma): mean = exp(mu + sigma^2/2),
    // cv^2 = exp(sigma^2) - 1.
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * gaussian());
}

Rng
Rng::fork(std::uint64_t salt)
{
    return Rng(next() ^ (salt * 0x2545f4914f6cdd1dull));
}

} // namespace av::util
