/**
 * @file
 * Plain-text and CSV table rendering for benchmark reports.
 *
 * Every bench binary regenerating a paper table/figure prints its rows
 * through this so outputs are uniform and machine-parsable.
 */

#ifndef AVSCOPE_UTIL_TABLE_HH
#define AVSCOPE_UTIL_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace av::util {

/**
 * A small column-aligned table builder.
 */
class Table
{
  public:
    /** Create a table titled @p title with the given column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with aligned columns and a rule under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (header row first, title omitted). */
    void printCsv(std::ostream &os) const;

    /** Format a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 2);

    /** Format a value as a percentage string, e.g. "12.95%". */
    static std::string pct(double fraction, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Render a horizontal ASCII distribution sketch ("violin" stand-in):
 * density bars between min and max with markers for Q1/mean/Q3.
 */
std::string sketchDistribution(const std::vector<std::size_t> &histogram,
                               std::size_t width = 40);

} // namespace av::util

#endif // AVSCOPE_UTIL_TABLE_HH
