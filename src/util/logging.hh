/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() aborts on user error (bad
 * configuration, invalid arguments), panic() aborts on internal
 * invariant violation (a bug in avscope itself), warn()/inform()
 * report non-fatal conditions.
 */

#ifndef AVSCOPE_UTIL_LOGGING_HH
#define AVSCOPE_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace av::util {

/** Severity of a log record. */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log threshold; records below it are suppressed.
 * Defaults to Info. Tests may lower or raise it.
 */
LogLevel logThreshold();

/** Set the global log threshold. */
void setLogThreshold(LogLevel level);

/** Emit one log record to stderr if @p level passes the threshold. */
void logRecord(LogLevel level, std::string_view msg);

namespace detail {

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Informational message; normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    logRecord(LogLevel::Info, detail::format(std::forward<Args>(args)...));
}

/** Debug message; suppressed unless the threshold is lowered. */
template <typename... Args>
void
debug(Args &&...args)
{
    logRecord(LogLevel::Debug, detail::format(std::forward<Args>(args)...));
}

/** Something is off but the run can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    logRecord(LogLevel::Warn, detail::format(std::forward<Args>(args)...));
}

/**
 * Unrecoverable *user* error (bad config, invalid argument).
 * Exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logRecord(LogLevel::Error,
              "fatal: " + detail::format(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Unrecoverable *internal* error (avscope bug). Calls abort() so a
 * core dump / debugger can catch it.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logRecord(LogLevel::Error,
              "panic: " + detail::format(std::forward<Args>(args)...));
    std::abort();
}

/** panic() if @p cond is false. Cheap enough to keep in release builds. */
#define AV_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::av::util::panic("assertion failed: " #cond " "            \
                              __VA_OPT__(, ) __VA_ARGS__);              \
        }                                                               \
    } while (0)

} // namespace av::util

#endif // AVSCOPE_UTIL_LOGGING_HH
