#include "util/logging.hh"

#include <mutex>

namespace av::util {

namespace {

LogLevel gThreshold = LogLevel::Info;
std::mutex gLogMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return gThreshold;
}

void
setLogThreshold(LogLevel level)
{
    gThreshold = level;
}

void
logRecord(LogLevel level, std::string_view msg)
{
    if (level < gThreshold)
        return;
    std::lock_guard<std::mutex> lock(gLogMutex);
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace av::util
