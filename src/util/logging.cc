#include "util/logging.hh"

#include <atomic>
#include <mutex>

namespace av::util {

namespace {

// The logger is the one deliberately shared service of the process:
// experiment worker threads (src/exp) log concurrently, so the
// threshold is atomic and emission is serialized by a mutex. Neither
// feeds back into any measurement, so determinism is unaffected.
// avlint: allow(mutable-global)
std::atomic<LogLevel> gThreshold{LogLevel::Info};
// avlint: allow(mutable-global)
std::mutex gLogMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

LogLevel
logThreshold()
{
    return gThreshold.load(std::memory_order_relaxed);
}

void
setLogThreshold(LogLevel level)
{
    gThreshold.store(level, std::memory_order_relaxed);
}

void
logRecord(LogLevel level, std::string_view msg)
{
    if (level < gThreshold.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(gLogMutex);
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

} // namespace av::util
