/**
 * @file
 * Statistics containers used by the characterization harness.
 *
 * The paper reports latency *distributions* (Fig. 5/6 violins: min,
 * first quartile, mean, third quartile, max) plus mean/σ pairs
 * (Fig. 8) and tail percentiles in the text. SampleSeries keeps the
 * raw samples (with optional reservoir capping) so all of those can
 * be derived after a run; RunningStats is the cheap streaming
 * companion for high-rate integration (power, utilization).
 */

#ifndef AVSCOPE_UTIL_STATS_HH
#define AVSCOPE_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace av::util {

/**
 * Streaming mean/variance/min/max accumulator (Welford).
 */
class RunningStats
{
  public:
    /**
     * Serializable snapshot of the accumulator. The result cache
     * (src/exp) persists these so a reloaded run reproduces every
     * derived statistic bit-for-bit.
     */
    struct State
    {
        std::size_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double sum = 0.0;
        double min = std::numeric_limits<double>::infinity();
        double max = -std::numeric_limits<double>::infinity();
    };

    /** Snapshot the full internal state. */
    State state() const;

    /** Rebuild an accumulator from a snapshot. */
    static RunningStats fromState(const State &state);

    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats &other);

    /** Forget everything. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Five-number-plus summary of a distribution, matching the violin
 * annotations in the paper's Fig. 5/6.
 */
struct DistributionSummary
{
    std::size_t count = 0;
    double min = 0.0;
    double q1 = 0.0;     ///< first quartile (dashed line in Fig. 5)
    double median = 0.0;
    double mean = 0.0;   ///< white circle in Fig. 5
    double q3 = 0.0;     ///< third quartile
    double p99 = 0.0;    ///< tail latency the text discusses
    double max = 0.0;    ///< solid line in Fig. 5
    double stddev = 0.0; ///< error bars in Fig. 8
};

/**
 * Sample container that can answer arbitrary quantile queries.
 *
 * Stores samples verbatim up to @p capacity, then switches to
 * reservoir sampling (Vitter's algorithm R) so memory stays bounded
 * on long drives while quantiles stay unbiased. Exact min/max/mean
 * are tracked separately and are never approximated.
 */
class SampleSeries
{
  public:
    explicit SampleSeries(std::size_t capacity = 1u << 16,
                          std::uint64_t seed = 12345);

    /** Add one observation. */
    void add(double x);

    /** Total observations offered (not just retained). */
    std::size_t count() const { return stats_.count(); }

    /** Exact streaming stats (mean/min/max/σ over *all* samples). */
    const RunningStats &running() const { return stats_; }

    /**
     * Quantile in [0, 1] by linear interpolation over retained
     * samples. q=0 / q=1 return the exact min / max.
     */
    double quantile(double q) const;

    /** Full summary for reporting. */
    DistributionSummary summarize() const;

    /**
     * Rebuild a series from persisted state (the result cache):
     * exact streaming stats plus the retained sample multiset.
     * Quantiles, summaries and histograms of the rebuilt series are
     * identical to the original's; reservoir admission for *further*
     * add() calls is not replayed, so rebuilt series are treated as
     * read-only measurement results.
     */
    static SampleSeries fromState(const RunningStats::State &stats,
                                  std::vector<double> samples);

    /**
     * Histogram with @p bins equal-width buckets over [min, max];
     * used to render the violin thickness profiles.
     */
    std::vector<std::size_t> histogram(std::size_t bins) const;

    /** Retained (possibly subsampled) raw values. */
    const std::vector<double> &samples() const { return samples_; }

    /** Forget everything. */
    void reset();

  private:
    /** Sorts the retained samples if new data arrived since last sort. */
    void ensureSorted() const;

    std::size_t capacity_;
    std::uint64_t rngState_;
    RunningStats stats_;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Render a summary as a one-line human-readable string (ms units). */
std::string toString(const DistributionSummary &s);

} // namespace av::util

#endif // AVSCOPE_UTIL_STATS_HH
