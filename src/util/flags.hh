/**
 * @file
 * Minimal command-line flag parsing for bench/example binaries.
 *
 * Accepts "--key=value" and "--key value" forms plus bare "--key" for
 * booleans. Unknown flags are fatal so typos in experiment sweeps do
 * not silently fall back to defaults.
 */

#ifndef AVSCOPE_UTIL_FLAGS_HH
#define AVSCOPE_UTIL_FLAGS_HH

#include <map>
#include <string>
#include <vector>

namespace av::util {

/**
 * Parsed command line.
 */
class Flags
{
  public:
    /**
     * Parse argv. @p known lists every accepted flag name (without
     * leading dashes); anything else aborts with a usage message.
     */
    Flags(int argc, char **argv, const std::vector<std::string> &known);

    /** True if the flag was present at all. */
    bool has(const std::string &key) const;

    /** String value or @p def. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer value or @p def. */
    long getInt(const std::string &key, long def) const;

    /** Double value or @p def. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean value; bare "--key" counts as true. */
    bool getBool(const std::string &key, bool def = false) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return pos_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> pos_;
};

} // namespace av::util

#endif // AVSCOPE_UTIL_FLAGS_HH
