#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace av::util {

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

RunningStats::State
RunningStats::state() const
{
    return State{n_, mean_, m2_, sum_, min_, max_};
}

RunningStats
RunningStats::fromState(const State &state)
{
    RunningStats out;
    out.n_ = state.n;
    out.mean_ = state.mean;
    out.m2_ = state.m2;
    out.sum_ = state.sum;
    out.min_ = state.min;
    out.max_ = state.max;
    return out;
}

SampleSeries::SampleSeries(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rngState_(seed ? seed : 1)
{
    AV_ASSERT(capacity_ > 0, "SampleSeries capacity must be positive");
    samples_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
SampleSeries::add(double x)
{
    stats_.add(x);
    if (samples_.size() < capacity_) {
        samples_.push_back(x);
        sorted_ = false;
        return;
    }
    // Reservoir: keep each of the N offered samples with equal
    // probability capacity/N.
    rngState_ ^= rngState_ << 13;
    rngState_ ^= rngState_ >> 7;
    rngState_ ^= rngState_ << 17;
    const std::size_t slot = rngState_ % stats_.count();
    if (slot < capacity_) {
        samples_[slot] = x;
        sorted_ = false;
    }
}

void
SampleSeries::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
SampleSeries::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (q <= 0.0)
        return stats_.min();
    if (q >= 1.0)
        return stats_.max();
    ensureSorted();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

DistributionSummary
SampleSeries::summarize() const
{
    DistributionSummary s;
    s.count = stats_.count();
    if (s.count == 0)
        return s;
    s.min = stats_.min();
    s.max = stats_.max();
    s.mean = stats_.mean();
    s.stddev = stats_.stddev();
    s.q1 = quantile(0.25);
    s.median = quantile(0.50);
    s.q3 = quantile(0.75);
    s.p99 = quantile(0.99);
    return s;
}

std::vector<std::size_t>
SampleSeries::histogram(std::size_t bins) const
{
    std::vector<std::size_t> out(bins, 0);
    if (samples_.empty() || bins == 0)
        return out;
    const double lo = stats_.min();
    const double hi = stats_.max();
    const double width = (hi - lo) / static_cast<double>(bins);
    for (double v : samples_) {
        std::size_t b = 0;
        if (width > 0.0)
            b = static_cast<std::size_t>((v - lo) / width);
        out[std::min(b, bins - 1)]++;
    }
    return out;
}

SampleSeries
SampleSeries::fromState(const RunningStats::State &stats,
                        std::vector<double> samples)
{
    SampleSeries out(std::max<std::size_t>(1u << 16,
                                           samples.size()));
    out.stats_ = RunningStats::fromState(stats);
    out.samples_ = std::move(samples);
    out.sorted_ = false;
    return out;
}

void
SampleSeries::reset()
{
    stats_.reset();
    samples_.clear();
    sorted_ = true;
}

std::string
toString(const DistributionSummary &s)
{
    std::ostringstream os;
    os << "n=" << s.count
       << " min=" << s.min
       << " q1=" << s.q1
       << " mean=" << s.mean
       << " q3=" << s.q3
       << " p99=" << s.p99
       << " max=" << s.max
       << " sd=" << s.stddev;
    return os.str();
}

} // namespace av::util
