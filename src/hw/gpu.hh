/**
 * @file
 * Discrete GPU model: a compute engine executing kernels FIFO and a
 * copy engine for PCIe transfers.
 *
 * Vision detection (SSD/YOLO) and GPU Euclidean clustering share this
 * device. Because the compute queue is kernel-granular and
 * non-preemptive, a node's kernels wait behind whatever other nodes
 * enqueued — exactly the cross-node interference the paper measures
 * (e.g. euclidean_cluster's GPU residency shrinking when the lighter
 * SSD300 replaces SSD512, §IV-B).
 */

#ifndef AVSCOPE_HW_GPU_HH
#define AVSCOPE_HW_GPU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace av::hw {

/** One GPU kernel launch. */
struct GpuKernel
{
    double flops = 0.0;       ///< floating-point work
    double bytes = 0.0;       ///< device-memory traffic
    double powerWeight = 1.0; ///< occupancy/intensity for the power model
};

/** A full offload: H2D copy, kernels, D2H copy, completion. */
struct GpuJob
{
    std::string owner;
    double h2dBytes = 0.0;
    std::vector<GpuKernel> kernels;
    double d2hBytes = 0.0;
    std::function<void()> onComplete;
};

/** GPU capability parameters (2019 discrete-card class). */
struct GpuConfig
{
    double tflops = 11.0;        ///< peak fp32
    double memBandwidthGBs = 480.0;
    double pcieGBs = 12.0;       ///< effective host link
    sim::Tick kernelOverhead = 8 * sim::oneUs; ///< launch latency
    sim::Tick copyOverhead = 10 * sim::oneUs;  ///< per-transfer setup
    /**
     * Global derating of peak throughput. Duration =
     * flops / (tflops * efficiency). Per-framework efficiency (cuDNN
     * vs darknet) is folded into the kernels by dnn::networkKernels,
     * so this stays 1.0 unless an ablation sweeps it.
     */
    double computeEfficiency = 1.0;
};

/** Aggregate counters for the profiling layer. */
struct GpuAccounting
{
    double kernelActiveSeconds = 0.0;   ///< compute engine busy time
    double weightedActiveSeconds = 0.0; ///< Σ busy * powerWeight
    double copyActiveSeconds = 0.0;
    double pcieBytes = 0.0;
    std::uint64_t kernelsExecuted = 0;
    std::uint64_t jobsCompleted = 0;
    std::map<std::string, double> activeSecondsByOwner;
    /** Busy *or queued* time per owner — what nvidia-smi pmon style
     *  residency sampling attributes to a process. */
    std::map<std::string, double> residentSecondsByOwner;
};

/**
 * The device.
 */
class GpuModel
{
  public:
    GpuModel(sim::EventQueue &eq, const GpuConfig &config);

    GpuModel(const GpuModel &) = delete;
    GpuModel &operator=(const GpuModel &) = delete;

    /** Enqueue a job; stages run in order, FIFO against other jobs. */
    void submit(GpuJob job);

    /** Duration the compute engine needs for @p kernel. */
    sim::Tick kernelDuration(const GpuKernel &kernel) const;

    /** Duration of a host<->device transfer of @p bytes. */
    sim::Tick copyDuration(double bytes) const;

    /** True when the compute engine is executing a kernel. */
    bool computeBusy() const { return computeBusy_; }

    /**
     * Thermal-throttle factor in (0, 1]: compute and memory rates
     * scale by it. Applies to kernels *starting* while it is set —
     * a kernel in flight finishes at the rate it started with, like
     * a real DVFS transition quantized to kernel boundaries.
     */
    void setThrottleFactor(double factor);
    double throttleFactor() const { return throttle_; }

    /** Jobs somewhere in the pipeline (queued or in flight). */
    std::size_t inFlight() const { return inFlight_; }

    const GpuConfig &config() const { return config_; }
    const GpuAccounting &accounting() const { return acct_; }

    /** Report every executed kernel (start → end) to @p recorder. */
    void setTraceRecorder(trace::Recorder *recorder)
    {
        recorder_ = recorder;
    }

  private:
    struct JobState
    {
        GpuJob job;
        std::size_t nextKernel = 0;
        sim::Tick enqueued = 0;
    };

    sim::EventQueue &eq_;
    GpuConfig config_;
    GpuAccounting acct_;
    trace::Recorder *recorder_ = nullptr;
    bool computeBusy_ = false;
    bool copyBusy_ = false;
    double throttle_ = 1.0;
    std::size_t inFlight_ = 0;

    /** Compute-queue entry: one kernel of one job. */
    struct ComputeEntry
    {
        std::shared_ptr<JobState> job;
        std::size_t kernelIndex;
    };
    /** Copy-queue entry. */
    struct CopyEntry
    {
        std::shared_ptr<JobState> job;
        double bytes;
        bool isH2d;
    };

    std::deque<ComputeEntry> computeQueue_;
    std::deque<CopyEntry> copyQueue_;

    void pumpCompute();
    void pumpCopy();
    void kernelDone(ComputeEntry entry, sim::Tick started);
    void copyDone(CopyEntry entry, sim::Tick started);
    void advanceJob(const std::shared_ptr<JobState> &job);
    void finishJob(const std::shared_ptr<JobState> &job);
};

} // namespace av::hw

#endif // AVSCOPE_HW_GPU_HH
