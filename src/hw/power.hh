/**
 * @file
 * Platform power model.
 *
 * Converts utilization integrals from the CPU and GPU models into
 * watts, standing in for the paper's wall-power and nvidia-smi
 * measurements (Table VI). Parameters are calibrated to a 2019-class
 * workstation: the CPU baseline includes the idling OS + ROS stack
 * (the paper notes the whole OS runs on the CPU, §IV-B), and GPU
 * dynamic power scales with *occupancy-weighted* active time, which
 * is how a small-batch SSD300 can hold the GPU at a far lower power
 * than SSD512/YOLO despite a similar activity pattern.
 */

#ifndef AVSCOPE_HW_POWER_HH
#define AVSCOPE_HW_POWER_HH

namespace av::hw {

/** Power-model coefficients. */
struct PowerConfig
{
    double cpuIdleW = 35.5;      ///< package + OS/ROS background
    double cpuPerCoreW = 6.0;    ///< per fully-busy core
    double cpuMemWPerGBs = 0.10; ///< DRAM traffic adder
    double gpuIdleW = 55.0;      ///< board idle
    double gpuMaxDynamicW = 195.0; ///< at weighted-active fraction 1
    double gpuCopyW = 8.0;       ///< PCIe copy engine active
};

/**
 * Stateless converter from utilization fractions to watts.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerConfig &config = PowerConfig())
        : config_(config)
    {}

    /**
     * Average CPU power over a window.
     * @param avg_busy_cores mean number of busy cores in the window
     * @param dram_gbs       mean DRAM traffic in GB/s
     */
    double cpuPower(double avg_busy_cores, double dram_gbs) const;

    /**
     * Average GPU power over a window.
     * @param weighted_active occupancy-weighted active fraction [0,~]
     * @param copy_fraction   copy-engine active fraction [0,1]
     */
    double gpuPower(double weighted_active, double copy_fraction) const;

    const PowerConfig &config() const { return config_; }

  private:
    PowerConfig config_;
};

} // namespace av::hw

#endif // AVSCOPE_HW_POWER_HH
