#include "hw/gpu.hh"

#include <cmath>

#include "util/logging.hh"

namespace av::hw {

GpuModel::GpuModel(sim::EventQueue &eq, const GpuConfig &config)
    : eq_(eq), config_(config)
{
    AV_ASSERT(config_.tflops > 0.0, "GPU throughput must be positive");
    AV_ASSERT(config_.pcieGBs > 0.0, "PCIe bandwidth must be positive");
}

void
GpuModel::setThrottleFactor(double factor)
{
    AV_ASSERT(factor > 0.0 && factor <= 1.0,
              "throttle factor must be in (0, 1]");
    throttle_ = factor;
}

sim::Tick
GpuModel::kernelDuration(const GpuKernel &kernel) const
{
    // Roofline: bounded by compute or by device memory bandwidth.
    // A thermal throttle scales both rails, like a core+memory
    // clock-down on a real card.
    const double flops_per_ns =
        config_.tflops * 1e3 * config_.computeEfficiency * throttle_;
    const double bytes_per_ns = config_.memBandwidthGBs * throttle_;
    const double compute_ns = kernel.flops / flops_per_ns;
    const double memory_ns = kernel.bytes / bytes_per_ns;
    const double ns = std::max(compute_ns, memory_ns);
    return config_.kernelOverhead +
           static_cast<sim::Tick>(std::ceil(ns));
}

sim::Tick
GpuModel::copyDuration(double bytes) const
{
    const double ns = bytes / config_.pcieGBs; // GB/s == bytes/ns
    return config_.copyOverhead +
           static_cast<sim::Tick>(std::ceil(ns));
}

void
GpuModel::submit(GpuJob job)
{
    AV_ASSERT(job.onComplete, "GPU job without completion callback");
    auto state =
        std::make_shared<JobState>(JobState{std::move(job), 0,
                                            eq_.now()});
    ++inFlight_;
    if (state->job.h2dBytes > 0.0) {
        copyQueue_.push_back(CopyEntry{state, state->job.h2dBytes,
                                       true});
        pumpCopy();
    } else {
        advanceJob(state);
    }
}

void
GpuModel::advanceJob(const std::shared_ptr<JobState> &job)
{
    if (job->nextKernel < job->job.kernels.size()) {
        computeQueue_.push_back(
            ComputeEntry{job, job->nextKernel});
        ++job->nextKernel;
        pumpCompute();
        return;
    }
    if (job->job.d2hBytes > 0.0) {
        const double bytes = job->job.d2hBytes;
        job->job.d2hBytes = 0.0; // consume so we do not loop
        copyQueue_.push_back(CopyEntry{job, bytes, false});
        pumpCopy();
        return;
    }
    finishJob(job);
}

void
GpuModel::finishJob(const std::shared_ptr<JobState> &job)
{
    const double resident_s =
        sim::ticksToSeconds(eq_.now() - job->enqueued);
    acct_.residentSecondsByOwner[job->job.owner] += resident_s;
    ++acct_.jobsCompleted;
    --inFlight_;
    // The queue entries holding the last references die with the
    // completion lambda; moving the callback out keeps it alive.
    auto callback = std::move(job->job.onComplete);
    callback();
}

void
GpuModel::pumpCompute()
{
    if (computeBusy_ || computeQueue_.empty())
        return;
    const ComputeEntry entry = computeQueue_.front();
    computeQueue_.pop_front();
    computeBusy_ = true;
    const sim::Tick started = eq_.now();
    const sim::Tick dur =
        kernelDuration(entry.job->job.kernels[entry.kernelIndex]);
    eq_.scheduleAfter(dur, [this, entry, started] {
        kernelDone(entry, started);
    });
}

void
GpuModel::kernelDone(ComputeEntry entry, sim::Tick started)
{
    const double active_s = sim::ticksToSeconds(eq_.now() - started);
    const GpuKernel &k = entry.job->job.kernels[entry.kernelIndex];
    acct_.kernelActiveSeconds += active_s;
    acct_.weightedActiveSeconds += active_s * k.powerWeight;
    acct_.activeSecondsByOwner[entry.job->job.owner] += active_s;
    ++acct_.kernelsExecuted;
    if (recorder_ && recorder_->enabled())
        recorder_->recordGpuKernel(
            recorder_->intern(entry.job->job.owner), started,
            eq_.now());
    computeBusy_ = false;
    const std::shared_ptr<JobState> job = entry.job;
    pumpCompute();
    advanceJob(job);
}

void
GpuModel::pumpCopy()
{
    if (copyBusy_ || copyQueue_.empty())
        return;
    const CopyEntry entry = copyQueue_.front();
    copyQueue_.pop_front();
    copyBusy_ = true;
    const sim::Tick started = eq_.now();
    eq_.scheduleAfter(copyDuration(entry.bytes),
                      [this, entry, started] {
                          copyDone(entry, started);
                      });
}

void
GpuModel::copyDone(CopyEntry entry, sim::Tick started)
{
    acct_.copyActiveSeconds += sim::ticksToSeconds(eq_.now() - started);
    acct_.pcieBytes += entry.bytes;
    copyBusy_ = false;
    const std::shared_ptr<JobState> job = entry.job;
    pumpCopy();
    if (entry.isH2d) {
        advanceJob(job);
    } else {
        finishJob(job);
    }
}

} // namespace av::hw
