#include "hw/cpu.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace av::hw {

CpuModel::CpuModel(sim::EventQueue &eq, const CpuConfig &config)
    : eq_(eq), config_(config)
{
    AV_ASSERT(config_.cores > 0, "CPU needs at least one core");
    AV_ASSERT(config_.freqGhz > 0.0, "CPU frequency must be positive");
    AV_ASSERT(config_.quantum > 0, "quantum must be positive");
    coreTask_.assign(config_.cores, nullptr);
}

CpuModel::~CpuModel() = default;

std::uint64_t
CpuModel::submit(CpuTask task)
{
    AV_ASSERT(task.onComplete, "CPU task without completion callback");
    auto ts = std::make_unique<TaskState>();
    ts->id = nextId_++;
    ts->remainingCycles = std::max(task.cycles, 1.0);
    ts->submitted = eq_.now();
    ts->task = std::move(task);
    TaskState *raw = ts.get();
    tasks_.emplace(raw->id, std::move(ts));
    ready_.push_back(raw);
    integrateProgress();
    dispatch();
    rearm();
    return raw->id;
}

std::uint32_t
CpuModel::running() const
{
    std::uint32_t n = 0;
    for (const TaskState *ts : coreTask_)
        if (ts)
            ++n;
    return n;
}

double
CpuModel::memDemandRatio() const
{
    const double bw_bytes_per_ns = config_.memBandwidthGBs; // GB/s==B/ns
    double demand = 0.0;
    for (const TaskState *ts : coreTask_) {
        if (ts)
            demand += ts->task.memBytesPerCycle * config_.freqGhz;
    }
    return bw_bytes_per_ns > 0.0 ? demand / bw_bytes_per_ns : 0.0;
}

double
CpuModel::inflation(double u) const
{
    return 1.0 / (1.0 - std::min(u, 0.9));
}

void
CpuModel::integrateProgress()
{
    const sim::Tick now = eq_.now();
    for (TaskState *ts : coreTask_) {
        if (!ts)
            continue;
        if (now > ts->lastUpdate && ts->rate > 0.0) {
            const double dt =
                static_cast<double>(now - ts->lastUpdate);
            const double done =
                std::min(ts->remainingCycles, dt * ts->rate);
            ts->remainingCycles -= done;
            const double seconds =
                sim::ticksToSeconds(now - ts->lastUpdate);
            acct_.busyCoreSeconds += seconds;
            acct_.busySecondsByOwner[ts->task.owner] += seconds;
            acct_.dramBytes += done * ts->task.memBytesPerCycle;
        }
        ts->lastUpdate = now;
    }
}

void
CpuModel::rearm()
{
    const double bw = config_.memBandwidthGBs; // GB/s == bytes/ns
    const double total_ratio = memDemandRatio();
    const double inflate = inflation(total_ratio);
    const sim::Tick now = eq_.now();

    for (TaskState *ts : coreTask_) {
        if (!ts)
            continue;
        const double own_ratio =
            bw > 0.0
                ? ts->task.memBytesPerCycle * config_.freqGhz / bw
                : 0.0;
        const double others = std::max(0.0, total_ratio - own_ratio);
        const double slowdown = std::min(
            config_.maxMemSlowdown,
            1.0 + config_.memPenaltyCyclesPerByte *
                      ts->task.effectiveL1BytesPerCycle() * others *
                      inflate);
        ts->rate = config_.freqGhz / slowdown; // cycles per ns
        ts->lastUpdate = now;

        eq_.deschedule(ts->completionEvent);
        const double ns = ts->remainingCycles / ts->rate;
        const sim::Tick when =
            now + static_cast<sim::Tick>(std::ceil(ns));
        const std::uint64_t id = ts->id;
        ts->completionEvent =
            eq_.schedule(std::max(when, now + 1),
                         [this, id] { onCompletion(id); });
    }
}

void
CpuModel::dispatch()
{
    for (std::uint32_t core = 0;
         core < config_.cores && !ready_.empty(); ++core) {
        if (coreTask_[core])
            continue;
        TaskState *ts = ready_.front();
        ready_.pop_front();
        ts->core = static_cast<std::int32_t>(core);
        ts->lastUpdate = eq_.now();
        ts->sliceEnd = eq_.now() + config_.quantum;
        coreTask_[core] = ts;
        const std::uint64_t id = ts->id;
        eq_.schedule(ts->sliceEnd, [this, id] { onQuantum(id); });
    }
}

void
CpuModel::onCompletion(std::uint64_t id)
{
    const auto it = tasks_.find(id);
    if (it == tasks_.end())
        return;
    TaskState *ts = it->second.get();
    ts->completionEvent = 0;
    integrateProgress();
    if (ts->remainingCycles > 0.5) {
        // Rounding slack; re-arm everything and run on.
        rearm();
        return;
    }
    finish(ts);
}

void
CpuModel::finish(TaskState *ts)
{
    AV_ASSERT(ts->core >= 0, "finishing a task that is not running");
    coreTask_[static_cast<std::size_t>(ts->core)] = nullptr;
    eq_.deschedule(ts->completionEvent);
    ++acct_.tasksCompleted;
    if (recorder_ && recorder_->enabled())
        recorder_->recordCpuTask(
            recorder_->intern(ts->task.owner), ts->submitted,
            eq_.now(), ts->task.cycles / config_.freqGhz);
    auto callback = std::move(ts->task.onComplete);
    tasks_.erase(ts->id);
    dispatch();
    rearm();
    // Run the user callback last: it may submit follow-up work.
    callback();
}

void
CpuModel::onQuantum(std::uint64_t id)
{
    const auto it = tasks_.find(id);
    if (it == tasks_.end())
        return;
    TaskState *ts = it->second.get();
    if (ts->core < 0 || eq_.now() < ts->sliceEnd)
        return; // stale event from an earlier slice
    if (ready_.empty()) {
        // Nobody waiting; renew the slice.
        ts->sliceEnd = eq_.now() + config_.quantum;
        const std::uint64_t tid = ts->id;
        eq_.schedule(ts->sliceEnd, [this, tid] { onQuantum(tid); });
        return;
    }
    // Preempt: back of the queue, hand the core over.
    integrateProgress();
    coreTask_[static_cast<std::size_t>(ts->core)] = nullptr;
    ts->core = -1;
    ts->rate = 0.0;
    eq_.deschedule(ts->completionEvent);
    ts->completionEvent = 0;
    ready_.push_back(ts);
    ++acct_.preemptions;
    dispatch();
    rearm();
}

} // namespace av::hw
