#include "hw/machine.hh"

#include "util/logging.hh"

namespace av::hw {

Machine::Machine(sim::EventQueue &eq, const MachineConfig &config)
    : eq_(eq), config_(config),
      cpu_(std::make_unique<CpuModel>(eq, config.cpu)),
      gpu_(std::make_unique<GpuModel>(eq, config.gpu)),
      power_(config.power)
{
}

namespace {

struct PhaseChain : std::enable_shared_from_this<PhaseChain>
{
    Machine &machine;
    std::vector<Phase> phases;
    std::function<void()> done;
    std::size_t next = 0;

    PhaseChain(Machine &m, std::vector<Phase> p,
               std::function<void()> d)
        : machine(m), phases(std::move(p)), done(std::move(d))
    {}

    void
    step()
    {
        if (next >= phases.size()) {
            if (done)
                done();
            return;
        }
        Phase &phase = phases[next++];
        auto self = shared_from_this();
        if (phase.kind == Phase::Kind::Cpu) {
            phase.cpu.onComplete = [self] { self->step(); };
            machine.cpu().submit(std::move(phase.cpu));
        } else {
            phase.gpu.onComplete = [self] { self->step(); };
            machine.gpu().submit(std::move(phase.gpu));
        }
    }
};

} // namespace

void
runPhases(Machine &machine, std::vector<Phase> phases,
          std::function<void()> done)
{
    AV_ASSERT(!phases.empty(), "empty phase chain");
    auto chain = std::make_shared<PhaseChain>(machine,
                                              std::move(phases),
                                              std::move(done));
    chain->step();
}

} // namespace av::hw
