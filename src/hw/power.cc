#include "hw/power.hh"

#include <algorithm>

namespace av::hw {

double
PowerModel::cpuPower(double avg_busy_cores, double dram_gbs) const
{
    return config_.cpuIdleW +
           config_.cpuPerCoreW * std::max(0.0, avg_busy_cores) +
           config_.cpuMemWPerGBs * std::max(0.0, dram_gbs);
}

double
PowerModel::gpuPower(double weighted_active, double copy_fraction) const
{
    const double dynamic =
        config_.gpuMaxDynamicW * std::clamp(weighted_active, 0.0, 1.0);
    const double copy =
        config_.gpuCopyW * std::clamp(copy_fraction, 0.0, 1.0);
    return config_.gpuIdleW + dynamic + copy;
}

} // namespace av::hw
