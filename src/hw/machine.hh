/**
 * @file
 * The complete platform: event queue + CPU + GPU + power model.
 *
 * Equivalent of the paper's Table II hardware configuration, as one
 * object the middleware and the profiling layer share.
 */

#ifndef AVSCOPE_HW_MACHINE_HH
#define AVSCOPE_HW_MACHINE_HH

#include <memory>

#include "hw/cpu.hh"
#include "hw/gpu.hh"
#include "hw/power.hh"
#include "sim/event_queue.hh"

namespace av::hw {

/** Full platform configuration. */
struct MachineConfig
{
    CpuConfig cpu;
    GpuConfig gpu;
    PowerConfig power;
};

/**
 * One workstation.
 */
class Machine
{
  public:
    Machine(sim::EventQueue &eq,
            const MachineConfig &config = MachineConfig());

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    sim::EventQueue &eventQueue() { return eq_; }
    sim::Tick now() const { return eq_.now(); }

    CpuModel &cpu() { return *cpu_; }
    const CpuModel &cpu() const { return *cpu_; }
    GpuModel &gpu() { return *gpu_; }
    const GpuModel &gpu() const { return *gpu_; }
    const PowerModel &power() const { return power_; }
    const MachineConfig &config() const { return config_; }

    /** Attach @p recorder to both execution engines (CPU + GPU). */
    void
    setTraceRecorder(trace::Recorder *recorder)
    {
        cpu_->setTraceRecorder(recorder);
        gpu_->setTraceRecorder(recorder);
    }

  private:
    sim::EventQueue &eq_;
    MachineConfig config_;
    std::unique_ptr<CpuModel> cpu_;
    std::unique_ptr<GpuModel> gpu_;
    PowerModel power_;
};

/**
 * One stage of a node's execution (CPU slice or GPU offload).
 * Completion callbacks inside are ignored; the chain's is used.
 */
struct Phase
{
    enum class Kind { Cpu, Gpu };
    Kind kind = Kind::Cpu;
    CpuTask cpu;
    GpuJob gpu;

    static Phase
    makeCpu(CpuTask task)
    {
        Phase p;
        p.kind = Kind::Cpu;
        p.cpu = std::move(task);
        return p;
    }

    static Phase
    makeGpu(GpuJob job)
    {
        Phase p;
        p.kind = Kind::Gpu;
        p.gpu = std::move(job);
        return p;
    }
};

/**
 * Execute @p phases strictly in order on @p machine, then call
 * @p done. This is how nodes with mixed CPU/GPU structure (SSD's
 * preprocess -> inference -> NMS sort) are expressed.
 */
void runPhases(Machine &machine, std::vector<Phase> phases,
               std::function<void()> done);

} // namespace av::hw

#endif // AVSCOPE_HW_MACHINE_HH
