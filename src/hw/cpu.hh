/**
 * @file
 * Multi-core CPU model with shared-memory interference.
 *
 * This is where the paper's central observation — contention among
 * concurrently running nodes inflates tail latency (Findings 1, 4,
 * 5) — becomes mechanical. Tasks contend in two ways:
 *
 *  1. Core contention: more runnable tasks than cores queue in a
 *     round-robin run queue with a CFS-like time slice.
 *  2. Memory contention: each task carries a DRAM-traffic intensity
 *     (bytes per executed cycle, from its L1 miss profile). When the
 *     aggregate demand of the *running* set approaches the machine's
 *     bandwidth, every running task's effective rate drops in
 *     proportion to its own memory intensity — a queueing-style
 *     latency inflation.
 *
 * Progress integrates exactly over piecewise-constant-rate intervals:
 * rates only change at scheduling events (start/stop/finish), at
 * which point all running tasks' progress is brought up to date.
 */

#ifndef AVSCOPE_HW_CPU_HH
#define AVSCOPE_HW_CPU_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "trace/trace.hh"

namespace av::hw {

/** One schedulable unit of CPU work. */
struct CpuTask
{
    std::string owner;        ///< node name, for accounting
    double cycles = 0.0;      ///< total work at nominal frequency
    /** DRAM traffic intensity (bytes/cycle past the LLC): this is
     *  the task's *demand* on the shared bus. */
    double memBytesPerCycle = 0.0;
    /** L1-miss traffic intensity (bytes/cycle into L2/LLC): this is
     *  the task's *sensitivity* — data it expects to find in the
     *  cache hierarchy that co-runners' streaming can evict/delay.
     *  Defaults to the DRAM demand when left at 0 via
     *  effectiveL1BytesPerCycle(). */
    double l1BytesPerCycle = 0.0;
    std::function<void()> onComplete; ///< fired when work retires

    double
    effectiveL1BytesPerCycle() const
    {
        return l1BytesPerCycle > 0.0 ? l1BytesPerCycle
                                     : memBytesPerCycle;
    }
};

/** CPU geometry and interference parameters. */
struct CpuConfig
{
    std::uint32_t cores = 6;
    double freqGhz = 3.7;          ///< cycles per nanosecond
    sim::Tick quantum = 2 * sim::oneMs; ///< RR time slice
    double memBandwidthGBs = 20.0; ///< usable DRAM bandwidth
    /**
     * Strength of shared-memory interference. A running task i is
     * slowed by
     *
     *   slowdown_i = 1 + memPenalty * l1bpc_i * others_i * inflation
     *
     * where l1bpc_i is its own cache-hierarchy intensity
     * (sensitivity to pollution), others_i is the co-runners' DRAM
     * demand as a fraction of bandwidth, and inflation =
     * 1 / (1 - min(U, 0.9)) is the queueing blow-up of total DRAM
     * utilization U. The slowdown is clamped to maxMemSlowdown.
     * 0 disables interference (ablation benches).
     */
    double memPenaltyCyclesPerByte = 6.0;

    /** Upper bound on the interference slowdown factor. */
    double maxMemSlowdown = 10.0;
};

/** Aggregate counters exposed to the profiling layer. */
struct CpuAccounting
{
    double busyCoreSeconds = 0.0;     ///< Σ over cores of busy time
    double dramBytes = 0.0;           ///< total DRAM traffic executed
    std::uint64_t tasksCompleted = 0;
    std::uint64_t preemptions = 0;
    std::map<std::string, double> busySecondsByOwner;
};

/**
 * The multi-core processor.
 */
class CpuModel
{
  public:
    CpuModel(sim::EventQueue &eq, const CpuConfig &config);
    ~CpuModel();

    CpuModel(const CpuModel &) = delete;
    CpuModel &operator=(const CpuModel &) = delete;

    /**
     * Submit a task; it runs as soon as a core frees up.
     * @return an id (informational)
     */
    std::uint64_t submit(CpuTask task);

    /** Number of tasks currently running on cores. */
    std::uint32_t running() const;

    /** Number of tasks waiting in the run queue. */
    std::size_t queued() const { return ready_.size(); }

    const CpuConfig &config() const { return config_; }
    const CpuAccounting &accounting() const { return acct_; }

    /**
     * Instantaneous DRAM-bus utilization in [0, ~), demand over
     * bandwidth for the currently running set.
     */
    double memDemandRatio() const;

    /**
     * Report every retired task to @p recorder (submit → retire,
     * plus the contention-free nominal duration — the classifier's
     * stall baseline). nullptr detaches.
     */
    void setTraceRecorder(trace::Recorder *recorder)
    {
        recorder_ = recorder;
    }

  private:
    struct TaskState
    {
        std::uint64_t id;
        CpuTask task;
        double remainingCycles;
        double rate = 0.0;       ///< cycles per tick while running
        sim::Tick lastUpdate = 0;
        sim::Tick submitted = 0;
        std::int32_t core = -1;  ///< -1 while queued
        sim::EventId completionEvent = 0;
        sim::Tick sliceEnd = 0;
    };

    sim::EventQueue &eq_;
    CpuConfig config_;
    CpuAccounting acct_;
    trace::Recorder *recorder_ = nullptr;
    std::uint64_t nextId_ = 1;
    std::deque<TaskState *> ready_;
    std::vector<TaskState *> coreTask_; ///< per core, null when idle
    std::unordered_map<std::uint64_t, std::unique_ptr<TaskState>>
        tasks_;

    /** Bring all running tasks' progress up to the current time. */
    void integrateProgress();

    /** Recompute rates + re-arm completion events for running set. */
    void rearm();

    /** Move ready tasks onto free cores. */
    void dispatch();

    /** Queueing inflation factor for total demand ratio @p u. */
    double inflation(double u) const;

    void onCompletion(std::uint64_t id);
    void onQuantum(std::uint64_t id);
    void finish(TaskState *ts);
};

} // namespace av::hw

#endif // AVSCOPE_HW_CPU_HH
