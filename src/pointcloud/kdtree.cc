#include "pointcloud/kdtree.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace av::pc {

namespace {

/** Static branch-site ids for the predictor model. */
enum Site : std::uint64_t {
    siteDescend = 0x51001,
    siteInRadius = 0x51002,
    siteCrossPlane = 0x51003,
    siteNearerChild = 0x51004,
};

/** Per-visited-node abstract op cost of a traversal step. */
const uarch::OpCounts stepOps{/*loads=*/12, /*stores=*/5,
                              /*branches=*/3, /*intAlu=*/3,
                              /*fpAlu=*/6, /*fpDiv=*/0, /*simd=*/0,
                              /*other=*/1};

/** Logical probe regions (block 8-15, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionNodes = 8;
constexpr uarch::KernelProfiler::Region regionPoints = 9;

} // namespace

void
KdTree::build(const PointCloud &cloud, uarch::KernelProfiler prof)
{
    cloud_ = &cloud;
    nodes_.clear();
    nodes_.reserve(cloud.size());
    root_ = -1;
    if (cloud.empty())
        return;

    std::vector<std::uint32_t> idx(cloud.size());
    for (std::uint32_t i = 0; i < cloud.size(); ++i)
        idx[i] = i;
    root_ = buildRange(idx, 0, idx.size(), 0, prof);

    // Build cost: ~n log n median partitions, each touching the
    // index array and the point data.
    const std::uint64_t n = cloud.size();
    const std::uint64_t logn =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       std::ceil(std::log2(double(n)))));
    uarch::OpCounts build_ops;
    build_ops.loads = 4 * n * logn;
    build_ops.stores = 2 * n * logn;
    build_ops.branches = 2 * n * logn;
    build_ops.intAlu = 3 * n * logn;
    build_ops.fpAlu = n * logn;
    prof.addOps(build_ops);
    prof.bulkBranches(2 * n * logn);
}

std::int32_t
KdTree::buildRange(std::vector<std::uint32_t> &idx, std::size_t lo,
                   std::size_t hi, int depth,
                   uarch::KernelProfiler &prof)
{
    if (lo >= hi)
        return -1;
    const std::uint8_t axis = static_cast<std::uint8_t>(depth % 3);
    const std::size_t mid = (lo + hi) / 2;

    const auto coord = [&](std::uint32_t i) -> float {
        const Point &p = (*cloud_)[i];
        return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
    };
    std::nth_element(idx.begin() + lo, idx.begin() + mid,
                     idx.begin() + hi,
                     [&](std::uint32_t a, std::uint32_t b) {
                         return coord(a) < coord(b);
                     });

    const std::int32_t me = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(Node{coord(idx[mid]), idx[mid], -1, -1, axis});
    if (prof.tracing())
        prof.store(regionNodes,
                   (nodes_.size() - 1) * sizeof(Node),
                   sizeof(Node));

    const std::int32_t left = buildRange(idx, lo, mid, depth + 1, prof);
    const std::int32_t right =
        buildRange(idx, mid + 1, hi, depth + 1, prof);
    nodes_[me].left = left;
    nodes_[me].right = right;
    return me;
}

std::size_t
KdTree::radiusSearch(const geom::Vec3 &query, double radius,
                     std::vector<std::uint32_t> &out,
                     uarch::KernelProfiler prof) const
{
    out.clear();
    if (root_ < 0)
        return 0;
    std::uint64_t steps = 0;
    radiusRecurse(root_, query, radius * radius, out, prof, steps);
    // Batched accounting: one call per query instead of per visited
    // node (the hot path must stay cheap when not tracing).
    prof.addOps(stepOps.scaled(steps));
    if (prof.tracing()) {
        prof.hotLoads(3 * steps);
        prof.hotStores(2 * steps);
        prof.bulkBranches(10 * steps);
    }
    return out.size();
}

void
KdTree::radiusRecurse(std::int32_t node, const geom::Vec3 &query,
                      double radius2, std::vector<std::uint32_t> &out,
                      uarch::KernelProfiler &prof,
                      std::uint64_t &steps) const
{
    if (node < 0)
        return;
    const Node &n = nodes_[static_cast<std::size_t>(node)];
    const Point &p = (*cloud_)[n.pointIdx];
    ++steps;
    if (prof.tracing()) {
        prof.load(regionNodes,
                  static_cast<std::size_t>(node) * sizeof(Node),
                  sizeof(Node));
        prof.load(regionPoints, n.pointIdx * sizeof(Point),
                  sizeof(Point));
    }

    const double d2 = geom::squaredDistance(query, p.vec());
    const bool inside = d2 <= radius2;
    prof.branch(siteInRadius, inside);
    if (inside)
        out.push_back(n.pointIdx);

    const double q =
        n.axis == 0 ? query.x : (n.axis == 1 ? query.y : query.z);
    const double delta = q - double(n.split);
    const std::int32_t near = delta <= 0.0 ? n.left : n.right;
    const std::int32_t far = delta <= 0.0 ? n.right : n.left;

    radiusRecurse(near, query, radius2, out, prof, steps);
    const bool cross = delta * delta <= radius2;
    if (cross)
        radiusRecurse(far, query, radius2, out, prof, steps);
}

std::int64_t
KdTree::nearest(const geom::Vec3 &query, double &out_dist2,
                uarch::KernelProfiler prof) const
{
    std::int64_t best = -1;
    double best_d2 = std::numeric_limits<double>::infinity();
    std::uint64_t steps = 0;
    if (root_ >= 0)
        nearestRecurse(root_, query, best, best_d2, prof, steps);
    prof.addOps(stepOps.scaled(steps));
    if (prof.tracing()) {
        prof.hotLoads(3 * steps);
        prof.hotStores(2 * steps);
        prof.bulkBranches(10 * steps);
    }
    out_dist2 = best_d2;
    return best;
}

void
KdTree::nearestRecurse(std::int32_t node, const geom::Vec3 &query,
                       std::int64_t &best, double &best_d2,
                       uarch::KernelProfiler &prof,
                       std::uint64_t &steps) const
{
    if (node < 0)
        return;
    const Node &n = nodes_[static_cast<std::size_t>(node)];
    const Point &p = (*cloud_)[n.pointIdx];
    ++steps;
    if (prof.tracing()) {
        prof.load(regionNodes,
                  static_cast<std::size_t>(node) * sizeof(Node),
                  sizeof(Node));
        prof.load(regionPoints, n.pointIdx * sizeof(Point),
                  sizeof(Point));
    }

    const double d2 = geom::squaredDistance(query, p.vec());
    const bool improves = d2 < best_d2;
    prof.branch(siteNearerChild, improves);
    if (improves) {
        best_d2 = d2;
        best = n.pointIdx;
    }

    const double q =
        n.axis == 0 ? query.x : (n.axis == 1 ? query.y : query.z);
    const double delta = q - double(n.split);
    const std::int32_t near = delta <= 0.0 ? n.left : n.right;
    const std::int32_t far = delta <= 0.0 ? n.right : n.left;

    nearestRecurse(near, query, best, best_d2, prof, steps);
    const bool cross = delta * delta < best_d2;
    prof.branch(siteCrossPlane, cross);
    if (cross)
        nearestRecurse(far, query, best, best_d2, prof, steps);
}

} // namespace av::pc
