/**
 * @file
 * Voxel-grid structures: centroid downsampling (the voxel_grid_filter
 * node) and per-voxel Gaussian statistics (the map representation NDT
 * matching searches, see perception/ndt_matching).
 */

#ifndef AVSCOPE_POINTCLOUD_VOXEL_GRID_HH
#define AVSCOPE_POINTCLOUD_VOXEL_GRID_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/mat.hh"
#include "pointcloud/cloud.hh"
#include "uarch/profiler.hh"

namespace av::pc {

/** Integer voxel coordinate key. */
struct VoxelKey
{
    std::int32_t x = 0;
    std::int32_t y = 0;
    std::int32_t z = 0;

    bool operator==(const VoxelKey &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }
};

/** Hash for VoxelKey (large-prime mix, PCL-style). */
struct VoxelKeyHash
{
    std::size_t
    operator()(const VoxelKey &k) const
    {
        return static_cast<std::size_t>(k.x) * 73856093u ^
               static_cast<std::size_t>(k.y) * 19349663u ^
               static_cast<std::size_t>(k.z) * 83492791u;
    }
};

/** Voxel key of a point at the given leaf size. */
VoxelKey voxelKeyOf(const geom::Vec3 &p, double leaf);

/**
 * Centroid voxel-grid downsampling — the algorithm inside Autoware's
 * voxel_grid_filter node. Replaces each occupied voxel's points by
 * their centroid.
 *
 * @param in   input cloud
 * @param leaf cubic voxel edge length (meters)
 * @param prof optional instrumentation
 */
PointCloud voxelGridDownsample(const PointCloud &in, double leaf,
                               uarch::KernelProfiler prof =
                                   uarch::KernelProfiler());

/**
 * Per-voxel Gaussian statistics over a (map) cloud: mean, covariance
 * and its inverse, regularized per Magnusson so NDT stays stable on
 * degenerate voxels. Voxels with fewer than minPointsPerVoxel points
 * are discarded.
 */
class GaussianVoxelGrid
{
  public:
    /** One voxel's sufficient statistics. */
    struct Voxel
    {
        geom::Vec3 mean;
        geom::Mat3 covariance;
        geom::Mat3 inverseCovariance;
        std::uint32_t count = 0;
    };

    static constexpr std::uint32_t minPointsPerVoxel = 5;

    /**
     * Build the grid.
     * @param cloud map points (world frame)
     * @param leaf  voxel edge (meters); NDT default is 2 m
     */
    void build(const PointCloud &cloud, double leaf,
               uarch::KernelProfiler prof = uarch::KernelProfiler());

    /** Voxel containing @p p, or nullptr. */
    const Voxel *lookup(const geom::Vec3 &p,
                        uarch::KernelProfiler prof =
                            uarch::KernelProfiler()) const;

    /**
     * The voxel containing @p p plus face-neighbours that exist —
     * the candidate set NDT scores a point against.
     */
    void neighborhood(const geom::Vec3 &p,
                      std::vector<const Voxel *> &out,
                      uarch::KernelProfiler prof =
                          uarch::KernelProfiler()) const;

    std::size_t voxelCount() const { return voxels_.size(); }
    double leafSize() const { return leaf_; }

  private:
    std::unordered_map<VoxelKey, Voxel, VoxelKeyHash> voxels_;
    double leaf_ = 2.0;
};

} // namespace av::pc

#endif // AVSCOPE_POINTCLOUD_VOXEL_GRID_HH
