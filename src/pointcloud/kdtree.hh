/**
 * @file
 * 3-D kd-tree for nearest-neighbour and radius queries.
 *
 * Euclidean clustering's radius searches dominate its runtime and —
 * per the paper's Table VII — give it the worst L1 locality of any
 * node. The tree is therefore instrumented: traversal reports node
 * loads and descent branches to the KernelProfiler so the cache and
 * branch models observe the true pointer-chasing pattern.
 */

#ifndef AVSCOPE_POINTCLOUD_KDTREE_HH
#define AVSCOPE_POINTCLOUD_KDTREE_HH

#include <cstdint>
#include <vector>

#include "pointcloud/cloud.hh"
#include "uarch/profiler.hh"

namespace av::pc {

/**
 * Static kd-tree over a point cloud. Build once, query many times.
 */
class KdTree
{
  public:
    KdTree() = default;

    /**
     * Build from @p cloud. The cloud must outlive the tree.
     * @param prof optional profiler charged with the build work
     */
    void build(const PointCloud &cloud,
               uarch::KernelProfiler prof = uarch::KernelProfiler());

    /** Number of indexed points. */
    std::size_t size() const { return nodes_.size(); }

    /**
     * Indices of all points within @p radius of @p query, appended
     * to @p out (cleared first).
     * @return number of results
     */
    std::size_t radiusSearch(const geom::Vec3 &query, double radius,
                             std::vector<std::uint32_t> &out,
                             uarch::KernelProfiler prof =
                                 uarch::KernelProfiler()) const;

    /**
     * Index of the nearest point to @p query, or -1 when empty.
     * @param out_dist2 squared distance to the winner
     */
    std::int64_t nearest(const geom::Vec3 &query, double &out_dist2,
                         uarch::KernelProfiler prof =
                             uarch::KernelProfiler()) const;

  private:
    struct Node
    {
        float split;            ///< coordinate of the splitting plane
        std::uint32_t pointIdx; ///< index into the source cloud
        std::int32_t left = -1;
        std::int32_t right = -1;
        std::uint8_t axis = 0;
    };

    const PointCloud *cloud_ = nullptr;
    std::vector<Node> nodes_;
    std::int32_t root_ = -1;

    std::int32_t buildRange(std::vector<std::uint32_t> &idx,
                            std::size_t lo, std::size_t hi, int depth,
                            uarch::KernelProfiler &prof);

    void radiusRecurse(std::int32_t node, const geom::Vec3 &query,
                       double radius2, std::vector<std::uint32_t> &out,
                       uarch::KernelProfiler &prof,
                       std::uint64_t &steps) const;

    void nearestRecurse(std::int32_t node, const geom::Vec3 &query,
                        std::int64_t &best, double &best_d2,
                        uarch::KernelProfiler &prof,
                        std::uint64_t &steps) const;
};

} // namespace av::pc

#endif // AVSCOPE_POINTCLOUD_KDTREE_HH
