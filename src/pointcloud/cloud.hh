/**
 * @file
 * Point-cloud container and basic operations.
 *
 * The LiDAR pipeline (voxel filter, NDT localization, ground
 * removal, clustering — the paper's "LiDAR-related components" that
 * Finding 1/2 highlight) all operate on this type. It replaces the
 * PCL types Autoware uses.
 */

#ifndef AVSCOPE_POINTCLOUD_CLOUD_HH
#define AVSCOPE_POINTCLOUD_CLOUD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/mat.hh"
#include "geom/pose.hh"
#include "geom/vec.hh"

namespace av::pc {

/**
 * One LiDAR return. Matches the fields a Velodyne driver publishes.
 */
struct Point
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float intensity = 0.0f;
    std::uint16_t ring = 0; ///< laser index (vertical channel)

    geom::Vec3 vec() const { return {x, y, z}; }

    static Point
    fromVec(const geom::Vec3 &v, float intensity = 0.0f,
            std::uint16_t ring = 0)
    {
        return {static_cast<float>(v.x), static_cast<float>(v.y),
                static_cast<float>(v.z), intensity, ring};
    }
};

/**
 * A collection of points with an acquisition timestamp.
 */
struct PointCloud
{
    std::vector<Point> points;
    std::uint64_t stampNs = 0; ///< acquisition time (virtual ns)

    std::size_t size() const { return points.size(); }
    bool empty() const { return points.empty(); }
    void clear() { points.clear(); }
    void reserve(std::size_t n) { points.reserve(n); }
    void push_back(const Point &p) { points.push_back(p); }
    Point &operator[](std::size_t i) { return points[i]; }
    const Point &operator[](std::size_t i) const { return points[i]; }

    /** Approximate serialized size (what ROS would ship). */
    std::size_t byteSize() const
    {
        return points.size() * sizeof(Point) + 64;
    }
};

/** Rigidly transform every point: p' = pose.apply(p). */
PointCloud transformed(const PointCloud &in, const geom::Pose &pose);

/** In-place variant of transformed(). */
void transformInPlace(PointCloud &cloud, const geom::Pose &pose);

/** Arithmetic mean of all points; zero for an empty cloud. */
geom::Vec3 centroid(const PointCloud &cloud);

/**
 * Mean and covariance of a set of points referenced by index.
 * @return number of points used.
 */
std::size_t meanAndCovariance(const PointCloud &cloud,
                              const std::vector<std::uint32_t> &indices,
                              geom::Vec3 &mean, geom::Mat3 &cov);

/** Mean and covariance of a whole cloud. */
std::size_t meanAndCovariance(const PointCloud &cloud, geom::Vec3 &mean,
                              geom::Mat3 &cov);

/** Crop: keep points whose XY range from origin is within [min,max]. */
PointCloud cropByRange(const PointCloud &in, double min_range,
                       double max_range);

} // namespace av::pc

#endif // AVSCOPE_POINTCLOUD_CLOUD_HH
