#include "pointcloud/voxel_grid.hh"

#include <cmath>

namespace av::pc {

namespace {

enum Site : std::uint64_t {
    siteVoxelNew = 0x52001,
    siteVoxelKeep = 0x52002,
};

/** Logical probe regions (block 16-23, see profiler.hh). */
constexpr uarch::KernelProfiler::Region regionInPoints = 16;
constexpr uarch::KernelProfiler::Region regionGrid = 17;
constexpr uarch::KernelProfiler::Region regionOutPoints = 18;
constexpr uarch::KernelProfiler::Region regionVoxels = 19;

/**
 * Logical offset of a voxel-map node. Hash-table nodes have no
 * stable index, but the key itself is logical identity: hashing it
 * into a bounded, line-granular space reproduces the scattered
 * node-allocation layout deterministically.
 */
std::uint64_t
voxelOffset(const VoxelKey &key)
{
    return (VoxelKeyHash{}(key) & 0xffffffu) * 128;
}

} // namespace

VoxelKey
voxelKeyOf(const geom::Vec3 &p, double leaf)
{
    return {static_cast<std::int32_t>(std::floor(p.x / leaf)),
            static_cast<std::int32_t>(std::floor(p.y / leaf)),
            static_cast<std::int32_t>(std::floor(p.z / leaf))};
}

PointCloud
voxelGridDownsample(const PointCloud &in, double leaf,
                    uarch::KernelProfiler prof)
{
    struct Acc
    {
        geom::Vec3 sum;
        float intensity = 0.0f;
        std::uint32_t count = 0;
    };
    std::unordered_map<VoxelKey, Acc, VoxelKeyHash> grid;
    grid.reserve(in.size() / 4 + 16);

    for (const Point &p : in.points) {
        const VoxelKey key = voxelKeyOf(p.vec(), leaf);
        Acc &acc = grid[key];
        const bool fresh = acc.count == 0;
        prof.branch(siteVoxelNew, fresh);
        if (prof.tracing()) {
            prof.load(regionInPoints,
                      static_cast<std::uint64_t>(
                          &p - in.points.data()) *
                          sizeof(Point),
                      sizeof(Point));
            prof.store(regionGrid, voxelOffset(key), sizeof(Acc));
            prof.hotLoads(8);
            prof.hotStores(4);
        }
        acc.sum += p.vec();
        acc.intensity += p.intensity;
        ++acc.count;
    }

    PointCloud out;
    out.stampNs = in.stampNs;
    out.points.reserve(grid.size());
    // Hash order is stable for a fixed standard library and
    // insertion sequence, so same-binary replays stay bit-identical;
    // the centroid emission order feeds no report directly.
    // avlint: allow(unordered-iter)
    for (const auto &[key, acc] : grid) {
        (void)key;
        const geom::Vec3 c =
            acc.sum / static_cast<double>(acc.count);
        out.points.push_back(Point::fromVec(
            c, acc.intensity / static_cast<float>(acc.count)));
        if (prof.tracing())
            prof.store(regionOutPoints,
                       (out.points.size() - 1) * sizeof(Point),
                       sizeof(Point));
    }

    // Abstract work: hashing + accumulation per input point, one
    // emit per occupied voxel.
    uarch::OpCounts ops;
    ops.loads = 6 * in.size() + 2 * grid.size();
    ops.stores = 4 * in.size() + 2 * grid.size();
    ops.branches = 3 * in.size() + grid.size();
    ops.intAlu = 8 * in.size();
    ops.fpAlu = 6 * in.size() + 4 * grid.size();
    ops.fpDiv = grid.size();
    prof.addOps(ops);
    prof.bulkBranches(2 * in.size());
    return out;
}

void
GaussianVoxelGrid::build(const PointCloud &cloud, double leaf,
                         uarch::KernelProfiler prof)
{
    leaf_ = leaf;
    voxels_.clear();

    struct Acc
    {
        geom::Vec3 sum;
        geom::Mat3 outerSum;
        std::uint32_t count = 0;
    };
    std::unordered_map<VoxelKey, Acc, VoxelKeyHash> accs;
    accs.reserve(cloud.size() / 8 + 16);

    for (const Point &p : cloud.points) {
        const geom::Vec3 v = p.vec();
        Acc &acc = accs[voxelKeyOf(v, leaf)];
        acc.sum += v;
        acc.outerSum += geom::outer(v, v);
        ++acc.count;
    }

    // Same-binary-deterministic for the reason above; voxel build
    // order does not reach any report.
    // avlint: allow(unordered-iter)
    for (const auto &[key, acc] : accs) {
        if (acc.count < minPointsPerVoxel)
            continue;
        const double n = static_cast<double>(acc.count);
        Voxel voxel;
        voxel.count = acc.count;
        voxel.mean = acc.sum / n;
        // cov = E[xx^T] - mean mean^T, with small-sample correction.
        geom::Mat3 cov =
            acc.outerSum * (1.0 / n) -
            geom::outer(voxel.mean, voxel.mean);
        cov = cov * (n / (n - 1.0));
        voxel.covariance = geom::regularizeCovariance(cov);
        bool ok = false;
        voxel.inverseCovariance = geom::inverse3(voxel.covariance, &ok);
        if (!ok)
            continue;
        voxels_.emplace(key, voxel);
    }

    uarch::OpCounts ops;
    ops.loads = 10 * cloud.size();
    ops.stores = 14 * cloud.size();
    ops.branches = 2 * cloud.size();
    ops.intAlu = 8 * cloud.size();
    ops.fpAlu = 24 * cloud.size() + 120 * voxels_.size();
    ops.fpDiv = 4 * voxels_.size();
    prof.addOps(ops);
    prof.bulkBranches(2 * cloud.size());
}

const GaussianVoxelGrid::Voxel *
GaussianVoxelGrid::lookup(const geom::Vec3 &p,
                          uarch::KernelProfiler prof) const
{
    const auto it = voxels_.find(voxelKeyOf(p, leaf_));
    if (it == voxels_.end())
        return nullptr;
    if (prof.tracing())
        prof.load(regionVoxels, voxelOffset(it->first),
                  sizeof(Voxel));
    return &it->second;
}

void
GaussianVoxelGrid::neighborhood(const geom::Vec3 &p,
                                std::vector<const Voxel *> &out,
                                uarch::KernelProfiler prof) const
{
    out.clear();
    const VoxelKey c = voxelKeyOf(p, leaf_);
    static const std::int32_t offsets[7][3] = {
        {0, 0, 0}, {1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
        {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
    for (const auto &off : offsets) {
        const VoxelKey k{c.x + off[0], c.y + off[1], c.z + off[2]};
        const auto it = voxels_.find(k);
        const bool hit = it != voxels_.end();
        prof.branch(0x52010, hit);
        if (hit) {
            if (prof.tracing()) {
                // Only the mean + inverse covariance are touched in
                // the scoring loop (the full Voxel spans 3 lines).
                prof.load(regionVoxels, voxelOffset(k), 96);
            }
            out.push_back(&it->second);
        }
    }
    if (prof.tracing()) {
        prof.hotLoads(40); // hash probe locals, key math
        prof.hotStores(8);
    }
    uarch::OpCounts ops;
    ops.loads = 14;
    ops.branches = 7;
    ops.intAlu = 21;
    ops.other = 7;
    prof.addOps(ops);
}

} // namespace av::pc
