#include "pointcloud/cloud.hh"

#include <cmath>

namespace av::pc {

PointCloud
transformed(const PointCloud &in, const geom::Pose &pose)
{
    PointCloud out;
    out.stampNs = in.stampNs;
    out.points.reserve(in.size());
    for (const Point &p : in.points) {
        const geom::Vec3 v = pose.apply(p.vec());
        out.points.push_back(Point::fromVec(v, p.intensity, p.ring));
    }
    return out;
}

void
transformInPlace(PointCloud &cloud, const geom::Pose &pose)
{
    for (Point &p : cloud.points) {
        const geom::Vec3 v = pose.apply(p.vec());
        p.x = static_cast<float>(v.x);
        p.y = static_cast<float>(v.y);
        p.z = static_cast<float>(v.z);
    }
}

geom::Vec3
centroid(const PointCloud &cloud)
{
    if (cloud.empty())
        return {};
    geom::Vec3 acc;
    for (const Point &p : cloud.points)
        acc += p.vec();
    return acc / static_cast<double>(cloud.size());
}

std::size_t
meanAndCovariance(const PointCloud &cloud,
                  const std::vector<std::uint32_t> &indices,
                  geom::Vec3 &mean, geom::Mat3 &cov)
{
    mean = {};
    cov = geom::Mat3();
    if (indices.empty())
        return 0;
    for (std::uint32_t i : indices)
        mean += cloud[i].vec();
    mean = mean / static_cast<double>(indices.size());
    if (indices.size() < 2)
        return indices.size();
    for (std::uint32_t i : indices) {
        const geom::Vec3 d = cloud[i].vec() - mean;
        cov += geom::outer(d, d);
    }
    cov = cov * (1.0 / static_cast<double>(indices.size() - 1));
    return indices.size();
}

std::size_t
meanAndCovariance(const PointCloud &cloud, geom::Vec3 &mean,
                  geom::Mat3 &cov)
{
    std::vector<std::uint32_t> all(cloud.size());
    for (std::uint32_t i = 0; i < cloud.size(); ++i)
        all[i] = i;
    return meanAndCovariance(cloud, all, mean, cov);
}

PointCloud
cropByRange(const PointCloud &in, double min_range, double max_range)
{
    PointCloud out;
    out.stampNs = in.stampNs;
    const double min2 = min_range * min_range;
    const double max2 = max_range * max_range;
    for (const Point &p : in.points) {
        const double r2 = double(p.x) * p.x + double(p.y) * p.y;
        if (r2 >= min2 && r2 <= max2)
            out.points.push_back(p);
    }
    return out;
}

} // namespace av::pc
