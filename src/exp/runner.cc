#include "exp/runner.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace av::exp {

Runner::Runner(RunnerConfig config)
    : cache_(std::move(config.cacheDir)), timeoutMs_(config.timeoutMs)
{
    const unsigned hardware = std::thread::hardware_concurrency();
    jobs_ = config.jobs != 0 ? config.jobs
                             : std::max(1u, hardware);
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Runner::~Runner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::size_t
Runner::submit(ExperimentSpec spec)
{
    std::size_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        id = queue_.size();
        queue_.emplace_back();
        queue_.back().spec = std::move(spec);
        pending_.push_back(id);
    }
    workReady_.notify_one();
    return id;
}

const prof::RunResult &
Runner::result(std::size_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    AV_ASSERT(id < queue_.size(), "unknown job id ", id);
    Job &job = queue_[id];
    if (timeoutMs_ <= 0) {
        jobDone_.wait(lock, [&job] { return job.done; });
    } else {
        // Watchdog: wait in slices, and once the job has been
        // *executing* past the budget, surface a structured timeout
        // instead of blocking forever. The worker keeps running —
        // its slot, the drive memo and the result slot all survive,
        // and waiting again later is legal (a finished job always
        // returns). Host clock on purpose: a livelocked replay
        // makes no virtual-time progress to watch.
        const std::chrono::milliseconds slice(std::min<long>(
            std::max<long>(timeoutMs_, 1), 50));
        while (!job.done) {
            if (job.started &&
                // avlint: allow(wall-clock)
                std::chrono::steady_clock::now() - job.startedAt >
                    std::chrono::milliseconds(timeoutMs_))
                throw JobTimeoutError(id, job.spec.label,
                                      timeoutMs_);
            jobDone_.wait_for(lock, slice,
                              [&job] { return job.done; });
        }
    }
    if (job.error)
        std::rethrow_exception(job.error);
    return job.result;
}

std::vector<const prof::RunResult *>
Runner::collect()
{
    std::size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        count = queue_.size();
    }
    std::vector<const prof::RunResult *> out;
    out.reserve(count);
    for (std::size_t id = 0; id < count; ++id)
        out.push_back(&result(id));
    return out;
}

void
Runner::workerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !pending_.empty();
            });
            if (pending_.empty())
                return; // stopping, queue drained
            // Resolve the slot while holding the lock: deque
            // indexing races with concurrent push_back, but the
            // reference it yields never moves afterwards.
            job = &queue_[pending_.front()];
            pending_.pop_front();
            job->started = true;
            // avlint: allow(wall-clock)
            job->startedAt = std::chrono::steady_clock::now();
        }
        // A throwing experiment must not kill the worker (losing the
        // pool slot) or leave its waiter blocked forever: capture the
        // exception, mark the job done and let result() rethrow it.
        try {
            runJob(*job);
        } catch (...) {
            job->error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job->done = true;
        }
        jobDone_.notify_all();
    }
}

void
Runner::runJob(Job &job)
{
    const std::string key = cacheKey(job.spec);
    if (cache_.enabled()) {
        if (std::optional<prof::RunResult> cached =
                cache_.load(key)) {
            job.result = std::move(*cached);
            // The label is presentation, not content: adopt the
            // spec's, whatever the storing experiment called itself.
            job.result.label = job.spec.label;
            cacheHits_.fetch_add(1);
            util::inform("experiment '", job.spec.label,
                         "': cache hit (", key, "), replay skipped");
            return;
        }
    }
    const std::shared_ptr<const prof::DriveData> drive =
        driveFor(job.spec);
    prof::CharacterizationRun run(drive, job.spec.config);
    run.execute();
    job.result = prof::snapshotRun(run, job.spec.label);
    executed_.fetch_add(1);
    if (cache_.enabled() && cache_.store(key, job.result))
        util::inform("experiment '", job.spec.label, "': cached as ",
                     key);
}

std::shared_ptr<const prof::DriveData>
Runner::driveFor(const ExperimentSpec &spec)
{
    const std::string key = driveKey(spec);
    std::promise<std::shared_ptr<const prof::DriveData>> promise;
    bool recordHere = false;
    std::shared_future<std::shared_ptr<const prof::DriveData>>
        future;
    {
        std::lock_guard<std::mutex> lock(driveMutex_);
        auto it = drives_.find(key);
        if (it == drives_.end()) {
            recordHere = true;
            future = promise.get_future().share();
            drives_.emplace(key, future);
        } else {
            future = it->second;
        }
    }
    if (recordHere) {
        util::inform("recording drive ", key, " (",
                     sim::ticksToSeconds(spec.driveDuration),
                     " s)");
        // A failed recording must reach every job sharing this drive,
        // not just the recorder: publish the exception through the
        // memo so no waiter blocks on a promise that never resolves.
        try {
            promise.set_value(prof::makeDrive(
                spec.scenario, spec.driveDuration, spec.recorder));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::string
defaultCacheDir()
{
    return "results/cache";
}

} // namespace av::exp
