/**
 * @file
 * Runner — the experiment engine: executes ExperimentSpecs on a
 * fixed-size pool of host threads and returns RunResults in submit
 * order, consulting the on-disk ResultCache first.
 *
 * Determinism contract: every characterization replay owns its
 * entire simulation state (EventQueue, Machine, RosGraph, stack,
 * RNG streams are all per-run objects), so runs are independent
 * pure functions of their spec and can execute on any thread in any
 * order. The only cross-thread structures are this class's job
 * queue, the drive memo and the logger — all mutex- or
 * atomic-protected and none feeding measurements. Results are
 * therefore byte-identical for any worker count, which
 * tests/exp/test_runner.cc asserts.
 *
 * Drives are recorded at most once per distinct (scenario,
 * recorder, duration) via an in-process memo, and only when a cache
 * miss actually forces a replay — a fully cached invocation records
 * no drive at all, which is where the second-run wall-clock win
 * comes from.
 */

#ifndef AVSCOPE_EXP_RUNNER_HH
#define AVSCOPE_EXP_RUNNER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/cache.hh"
#include "exp/experiment.hh"

namespace av::exp {

struct RunnerConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
};

class Runner
{
  public:
    explicit Runner(RunnerConfig config = RunnerConfig());
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Queue an experiment; returns its id (submit order). */
    std::size_t submit(ExperimentSpec spec);

    /**
     * Result of job @p id; blocks until it is finished. The
     * reference stays valid for the Runner's lifetime. If the
     * experiment threw on its worker (e.g. a FaultPlan naming an
     * unknown node), the exception is rethrown here — a failed job
     * never deadlocks its waiter or leaks its worker slot.
     */
    const prof::RunResult &result(std::size_t id);

    /**
     * All results so far, in submit order; blocks until done.
     * Rethrows the first failed job's exception, like result().
     */
    std::vector<const prof::RunResult *> collect();

    /** Worker threads actually running. */
    unsigned jobs() const { return jobs_; }

    /** Results served from the on-disk cache. */
    std::size_t cacheHits() const { return cacheHits_.load(); }

    /** Replays actually simulated (cache misses). */
    std::size_t executed() const { return executed_.load(); }

  private:
    struct Job
    {
        ExperimentSpec spec;
        prof::RunResult result;
        /** Set instead of result when the replay threw. */
        std::exception_ptr error;
        bool done = false;
    };

    void workerLoop();
    void runJob(Job &job);
    std::shared_ptr<const prof::DriveData>
    driveFor(const ExperimentSpec &spec);

    ResultCache cache_;
    unsigned jobs_ = 1;

    std::mutex mutex_; ///< guards jobs_, queue_ and Job::done
    std::condition_variable workReady_;
    std::condition_variable jobDone_;
    std::deque<Job> queue_;           ///< stable storage, by id
    std::deque<std::size_t> pending_; ///< ids awaiting a worker
    bool stopping_ = false;

    std::mutex driveMutex_; ///< guards drives_
    /**
     * Drive memo: driveKey → recorded drive (shared, immutable once
     * set). Futures so the first worker needing a drive records it
     * while others needing the *same* drive wait instead of
     * re-recording, and workers needing *different* drives record
     * concurrently.
     */
    std::map<std::string,
             std::shared_future<
                 std::shared_ptr<const prof::DriveData>>>
        drives_;

    std::atomic<std::size_t> cacheHits_{0};
    std::atomic<std::size_t> executed_{0};

    std::vector<std::thread> workers_;
};

/**
 * Default result-cache directory (results/cache). Benches pass this
 * so repeated invocations of the same experiment skip the replay;
 * tests use throw-away directories instead.
 */
std::string defaultCacheDir();

} // namespace av::exp

#endif // AVSCOPE_EXP_RUNNER_HH
