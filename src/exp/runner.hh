/**
 * @file
 * Runner — the experiment engine: executes ExperimentSpecs on a
 * fixed-size pool of host threads and returns RunResults in submit
 * order, consulting the on-disk ResultCache first.
 *
 * Determinism contract: every characterization replay owns its
 * entire simulation state (EventQueue, Machine, RosGraph, stack,
 * RNG streams are all per-run objects), so runs are independent
 * pure functions of their spec and can execute on any thread in any
 * order. The only cross-thread structures are this class's job
 * queue, the drive memo and the logger — all mutex- or
 * atomic-protected and none feeding measurements. Results are
 * therefore byte-identical for any worker count, which
 * tests/exp/test_runner.cc asserts.
 *
 * Drives are recorded at most once per distinct (scenario,
 * recorder, duration) via an in-process memo, and only when a cache
 * miss actually forces a replay — a fully cached invocation records
 * no drive at all, which is where the second-run wall-clock win
 * comes from.
 */

#ifndef AVSCOPE_EXP_RUNNER_HH
#define AVSCOPE_EXP_RUNNER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/cache.hh"
#include "exp/experiment.hh"

namespace av::exp {

struct RunnerConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Result-cache directory; empty disables caching. */
    std::string cacheDir;
    /**
     * Per-job wall-clock watchdog in host milliseconds; 0 disables.
     * When a job has been *executing* longer than this, result() /
     * collect() throw JobTimeoutError instead of blocking forever —
     * the structured surface for a hung or livelocked replay. The
     * job itself keeps running (there is no safe way to kill a
     * worker mid-simulation): its pool slot, drive memo and result
     * slot all survive, and a later result() call returns normally
     * once it finishes. Wall-clock by necessity — a livelocked
     * simulation makes no virtual-time progress to measure — and
     * the timeout feeds no measurement, so determinism holds.
     */
    long timeoutMs = 0;
};

/**
 * Thrown by Runner::result()/collect() when a job exceeds the
 * configured wall-clock watchdog while still executing. Catchable
 * separately from experiment failures: the job is *late*, not
 * failed, and waiting again is legal.
 */
class JobTimeoutError : public std::runtime_error
{
  public:
    JobTimeoutError(std::size_t job_id, const std::string &label,
                    long timeout_ms)
        : std::runtime_error("experiment '" + label + "' (job " +
                             std::to_string(job_id) +
                             ") still running after " +
                             std::to_string(timeout_ms) + " ms"),
          jobId_(job_id), label_(label), timeoutMs_(timeout_ms)
    {
    }

    std::size_t jobId() const { return jobId_; }
    const std::string &label() const { return label_; }
    long timeoutMs() const { return timeoutMs_; }

  private:
    std::size_t jobId_;
    std::string label_;
    long timeoutMs_;
};

class Runner
{
  public:
    explicit Runner(RunnerConfig config = RunnerConfig());
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Queue an experiment; returns its id (submit order). */
    std::size_t submit(ExperimentSpec spec);

    /**
     * Result of job @p id; blocks until it is finished. The
     * reference stays valid for the Runner's lifetime. If the
     * experiment threw on its worker (e.g. a FaultPlan naming an
     * unknown node), the exception is rethrown here — a failed job
     * never deadlocks its waiter or leaks its worker slot. With
     * RunnerConfig::timeoutMs set, throws JobTimeoutError once the
     * job has been executing past the watchdog; a finished job
     * always returns its result, however late.
     */
    const prof::RunResult &result(std::size_t id);

    /**
     * All results so far, in submit order; blocks until done.
     * Rethrows the first failed job's exception, like result().
     */
    std::vector<const prof::RunResult *> collect();

    /** Worker threads actually running. */
    unsigned jobs() const { return jobs_; }

    /** Results served from the on-disk cache. */
    std::size_t cacheHits() const { return cacheHits_.load(); }

    /** Replays actually simulated (cache misses). */
    std::size_t executed() const { return executed_.load(); }

  private:
    struct Job
    {
        ExperimentSpec spec;
        prof::RunResult result;
        /** Set instead of result when the replay threw. */
        std::exception_ptr error;
        bool done = false;
        /** Claimed by a worker (startedAt valid from then on). */
        bool started = false;
        /** Host clock, for the watchdog only (never a measurement).
         */
        // avlint: allow(wall-clock)
        std::chrono::steady_clock::time_point startedAt;
    };

    void workerLoop();
    void runJob(Job &job);
    std::shared_ptr<const prof::DriveData>
    driveFor(const ExperimentSpec &spec);

    ResultCache cache_;
    unsigned jobs_ = 1;
    long timeoutMs_ = 0; ///< RunnerConfig::timeoutMs

    std::mutex mutex_; ///< guards jobs_, queue_ and Job::done
    std::condition_variable workReady_;
    std::condition_variable jobDone_;
    std::deque<Job> queue_;           ///< stable storage, by id
    std::deque<std::size_t> pending_; ///< ids awaiting a worker
    bool stopping_ = false;

    std::mutex driveMutex_; ///< guards drives_
    /**
     * Drive memo: driveKey → recorded drive (shared, immutable once
     * set). Futures so the first worker needing a drive records it
     * while others needing the *same* drive wait instead of
     * re-recording, and workers needing *different* drives record
     * concurrently.
     */
    std::map<std::string,
             std::shared_future<
                 std::shared_ptr<const prof::DriveData>>>
        drives_;

    std::atomic<std::size_t> cacheHits_{0};
    std::atomic<std::size_t> executed_{0};

    std::vector<std::thread> workers_;
};

/**
 * Default result-cache directory (results/cache). Benches pass this
 * so repeated invocations of the same experiment skip the replay;
 * tests use throw-away directories instead.
 */
std::string defaultCacheDir();

} // namespace av::exp

#endif // AVSCOPE_EXP_RUNNER_HH
