#include "exp/cache.hh"

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

namespace av::exp {

namespace {

// ---- bit-exact double encoding ----------------------------------

std::string
encF(double value)
{
    static const char digits[] = "0123456789abcdef";
    auto bits = std::bit_cast<std::uint64_t>(value);
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[bits & 0xf];
        bits >>= 4;
    }
    return out;
}

bool
decF(const std::string &token, double &out)
{
    if (token.size() != 16)
        return false;
    std::uint64_t bits = 0;
    for (char c : token) {
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        bits = (bits << 4) | digit;
    }
    out = std::bit_cast<double>(bits);
    return true;
}

// ---- writer helpers ---------------------------------------------

void
putStats(std::ostream &os, const util::RunningStats &stats)
{
    const util::RunningStats::State s = stats.state();
    os << ' ' << s.n << ' ' << encF(s.mean) << ' ' << encF(s.m2)
       << ' ' << encF(s.sum) << ' ' << encF(s.min) << ' '
       << encF(s.max);
}

void
putSeries(std::ostream &os, const std::string &name,
          const util::SampleSeries &series)
{
    os << name;
    putStats(os, series.running());
    const std::vector<double> &kept = series.samples();
    os << ' ' << kept.size();
    for (double v : kept)
        os << ' ' << encF(v);
    os << '\n';
}

// ---- reader helpers ---------------------------------------------

bool
getF(std::istream &is, double &out)
{
    std::string token;
    return (is >> token) && decF(token, out);
}

/**
 * Read an element count, rejecting anything implausibly large: a
 * corrupted count field must make the entry a cache miss, not drive
 * a multi-gigabyte resize(). Real entries stay far below the bound
 * (a run has ~10 nodes and series keep at most a few thousand
 * samples).
 */
bool
getCount(std::istream &is, std::size_t &out)
{
    constexpr std::size_t kMaxCount = 1u << 20;
    return (is >> out) && out <= kMaxCount;
}

bool
getStats(std::istream &is, util::RunningStats &out)
{
    util::RunningStats::State s;
    if (!(is >> s.n))
        return false;
    if (!getF(is, s.mean) || !getF(is, s.m2) || !getF(is, s.sum) ||
        !getF(is, s.min) || !getF(is, s.max))
        return false;
    out = util::RunningStats::fromState(s);
    return true;
}

bool
getSeries(std::istream &is, prof::NamedSeries &out)
{
    util::RunningStats::State s;
    if (!(is >> out.name >> s.n))
        return false;
    if (!getF(is, s.mean) || !getF(is, s.m2) || !getF(is, s.sum) ||
        !getF(is, s.min) || !getF(is, s.max))
        return false;
    std::size_t kept = 0;
    if (!getCount(is, kept))
        return false;
    std::vector<double> samples(kept);
    for (std::size_t i = 0; i < kept; ++i)
        if (!getF(is, samples[i]))
            return false;
    out.series =
        util::SampleSeries::fromState(s, std::move(samples));
    return true;
}

/** Expect the literal section keyword @p word next. */
bool
expect(std::istream &is, const char *word)
{
    std::string token;
    return (is >> token) && token == word;
}

constexpr const char *kMagic = "avscope-result";
constexpr int kVersion = 5; // v5: safety-violations section

void
serialize(std::ostream &os, const prof::RunResult &run)
{
    os << kMagic << ' ' << kVersion << '\n';
    os << "label " << run.label << '\n';

    os << "nodes " << run.nodes.size() << '\n';
    for (const prof::NamedSeries &row : run.nodes)
        putSeries(os, row.name, row.series);

    os << "paths " << run.paths.size() << '\n';
    for (const prof::NamedSeries &row : run.paths)
        putSeries(os, row.name, row.series);

    os << "drops " << run.drops.size() << '\n';
    for (const prof::DropRow &row : run.drops)
        os << row.topic << ' ' << row.node << ' ' << row.delivered
           << ' ' << row.dropped << '\n';

    os << "counters " << run.counters.size() << '\n';
    for (const prof::CounterRow &row : run.counters) {
        os << row.node << ' ' << encF(row.ipc) << ' '
           << encF(row.l1ReadMissRate) << ' '
           << encF(row.l1WriteMissRate) << ' '
           << encF(row.branchMissRate);
        os << ' ' << row.mix.loads << ' ' << row.mix.stores << ' '
           << row.mix.branches << ' ' << row.mix.intAlu << ' '
           << row.mix.fpAlu << ' ' << row.mix.fpDiv << ' '
           << row.mix.simd << ' ' << row.mix.other << '\n';
    }

    os << "utilization " << run.utilization.size() << '\n';
    for (const prof::UtilizationResult &row : run.utilization) {
        os << row.owner;
        putStats(os, row.cpuShare);
        putStats(os, row.gpuShare);
        os << '\n';
    }

    os << "totals";
    putStats(os, run.totalCpu);
    putStats(os, run.totalGpu);
    os << '\n';

    os << "power";
    putStats(os, run.cpuWatts);
    putStats(os, run.gpuWatts);
    os << ' ' << encF(run.cpuEnergyJ) << ' ' << encF(run.gpuEnergyJ)
       << '\n';

    os << "cpuowners " << run.cpuSecondsByOwner.size() << '\n';
    for (const auto &[owner, seconds] : run.cpuSecondsByOwner)
        os << owner << ' ' << encF(seconds) << '\n';
    os << "gpuowners " << run.gpuSecondsByOwner.size() << '\n';
    for (const auto &[owner, seconds] : run.gpuSecondsByOwner)
        os << owner << ' ' << encF(seconds) << '\n';

    os << "staleness " << run.staleness.size() << '\n';
    for (const prof::NamedSeries &row : run.staleness)
        putSeries(os, row.name, row.series);

    os << "resilience " << run.resilience.size() << '\n';
    for (const auto &[name, value] : run.resilience)
        os << name << ' ' << encF(value) << '\n';

    // Every fault field is token-safe: labels, kind names and topic
    // names carry no whitespace by construction.
    os << "faults " << run.faults.size() << '\n';
    for (const fault::FaultOutcome &row : run.faults) {
        os << row.label << ' ' << fault::faultKindName(row.kind)
           << ' ' << row.onset << ' ' << row.windowEnd << ' '
           << row.watchTopic << ' ' << row.publishedDuringWindow
           << ' ' << encF(row.recoveryMs) << ' ' << row.suppressed
           << ' ' << row.corrupted << ' ' << row.duplicated << ' '
           << row.delayed << '\n';
    }

    // Violation subjects are token-safe by construction (topic
    // names or "actor_<id>"); values are bit-exact.
    os << "violations " << run.violations.size() << '\n';
    for (const stack::SafetyViolation &row : run.violations)
        os << stack::invariantName(row.kind) << ' ' << row.time
           << ' ' << row.subject << ' ' << encF(row.value) << ' '
           << encF(row.bound) << '\n';

    os << "transport " << run.transportMode << ' '
       << run.transport.published << ' ' << run.transport.deliveries
       << ' ' << run.transport.payloadCopies << ' '
       << run.transport.loanedDeliveries << ' '
       << run.transport.movedPublishes << ' '
       << run.transport.forcedCopies << '\n';

    // Topic/node names and bottleneck labels are token-safe; the
    // empty terminal topic serializes as "-". Doubles are bit-exact
    // (encF), so a traced result round-trips byte-identically —
    // which is what the cross-jobs/cross-transport determinism
    // tests compare.
    os << "trace " << (run.trace.enabled ? 1 : 0) << ' '
       << run.trace.events << ' ' << encF(run.trace.criticalPathMs)
       << ' '
       << (run.trace.terminalTopic.empty()
               ? "-"
               : run.trace.terminalTopic)
       << '\n';
    os << "tracepath " << run.trace.criticalPath.size() << '\n';
    for (const trace::PathStep &step : run.trace.criticalPath)
        os << step.node << ' ' << step.topic << ' ' << step.seq
           << ' ' << encF(step.queueWaitMs) << ' '
           << encF(step.computeMs) << '\n';
    os << "traceslack " << run.trace.nodes.size() << '\n';
    for (const trace::NodeSlack &row : run.trace.nodes)
        os << row.node << ' ' << row.activations << ' '
           << encF(row.meanQueueWaitMs) << ' '
           << encF(row.meanSpanMs) << ' ' << encF(row.meanCpuMs)
           << ' ' << encF(row.meanGpuMs) << ' '
           << encF(row.meanStallMs) << ' ' << row.bottleneck
           << '\n';
    os << "traceedges " << run.trace.edges.size() << '\n';
    for (const trace::EdgeUse &edge : run.trace.edges)
        os << edge.topic << ' ' << edge.from << ' ' << edge.to
           << ' ' << edge.messages << '\n';
    os << "end\n";
}

bool
parse(std::istream &is, prof::RunResult &run)
{
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != kMagic ||
        version != kVersion)
        return false;

    // The label is the remainder of its line (it may hold spaces).
    if (!expect(is, "label"))
        return false;
    std::getline(is, run.label);
    if (!run.label.empty() && run.label.front() == ' ')
        run.label.erase(0, 1);

    std::size_t count = 0;
    if (!expect(is, "nodes") || !getCount(is, count))
        return false;
    run.nodes.resize(count);
    for (prof::NamedSeries &row : run.nodes)
        if (!getSeries(is, row))
            return false;

    if (!expect(is, "paths") || !getCount(is, count))
        return false;
    run.paths.resize(count);
    for (prof::NamedSeries &row : run.paths)
        if (!getSeries(is, row))
            return false;

    if (!expect(is, "drops") || !getCount(is, count))
        return false;
    run.drops.resize(count);
    for (prof::DropRow &row : run.drops)
        if (!(is >> row.topic >> row.node >> row.delivered >>
              row.dropped))
            return false;

    if (!expect(is, "counters") || !getCount(is, count))
        return false;
    run.counters.resize(count);
    for (prof::CounterRow &row : run.counters) {
        if (!(is >> row.node))
            return false;
        if (!getF(is, row.ipc) || !getF(is, row.l1ReadMissRate) ||
            !getF(is, row.l1WriteMissRate) ||
            !getF(is, row.branchMissRate))
            return false;
        if (!(is >> row.mix.loads >> row.mix.stores >>
              row.mix.branches >> row.mix.intAlu >> row.mix.fpAlu >>
              row.mix.fpDiv >> row.mix.simd >> row.mix.other))
            return false;
    }

    if (!expect(is, "utilization") || !getCount(is, count))
        return false;
    run.utilization.resize(count);
    for (prof::UtilizationResult &row : run.utilization) {
        if (!(is >> row.owner))
            return false;
        if (!getStats(is, row.cpuShare) ||
            !getStats(is, row.gpuShare))
            return false;
    }

    if (!expect(is, "totals") || !getStats(is, run.totalCpu) ||
        !getStats(is, run.totalGpu))
        return false;

    if (!expect(is, "power") || !getStats(is, run.cpuWatts) ||
        !getStats(is, run.gpuWatts) || !getF(is, run.cpuEnergyJ) ||
        !getF(is, run.gpuEnergyJ))
        return false;

    if (!expect(is, "cpuowners") || !getCount(is, count))
        return false;
    run.cpuSecondsByOwner.resize(count);
    for (auto &[owner, seconds] : run.cpuSecondsByOwner)
        if (!(is >> owner) || !getF(is, seconds))
            return false;
    if (!expect(is, "gpuowners") || !getCount(is, count))
        return false;
    run.gpuSecondsByOwner.resize(count);
    for (auto &[owner, seconds] : run.gpuSecondsByOwner)
        if (!(is >> owner) || !getF(is, seconds))
            return false;

    if (!expect(is, "staleness") || !getCount(is, count))
        return false;
    run.staleness.resize(count);
    for (prof::NamedSeries &row : run.staleness)
        if (!getSeries(is, row))
            return false;

    if (!expect(is, "resilience") || !getCount(is, count))
        return false;
    run.resilience.resize(count);
    for (auto &[name, value] : run.resilience)
        if (!(is >> name) || !getF(is, value))
            return false;

    if (!expect(is, "faults") || !getCount(is, count))
        return false;
    run.faults.resize(count);
    for (fault::FaultOutcome &row : run.faults) {
        std::string kind;
        if (!(is >> row.label >> kind))
            return false;
        if (!fault::faultKindFromName(kind, row.kind))
            return false;
        if (!(is >> row.onset >> row.windowEnd >> row.watchTopic >>
              row.publishedDuringWindow))
            return false;
        if (!getF(is, row.recoveryMs))
            return false;
        if (!(is >> row.suppressed >> row.corrupted >>
              row.duplicated >> row.delayed))
            return false;
    }

    if (!expect(is, "violations") || !getCount(is, count))
        return false;
    run.violations.resize(count);
    for (stack::SafetyViolation &row : run.violations) {
        std::string kind;
        if (!(is >> kind) ||
            !stack::invariantFromName(kind, row.kind))
            return false;
        if (!(is >> row.time >> row.subject) ||
            !getF(is, row.value) || !getF(is, row.bound))
            return false;
    }

    if (!expect(is, "transport"))
        return false;
    ros::TransportMode mode;
    if (!(is >> run.transportMode) ||
        !ros::transportModeFromName(run.transportMode, mode))
        return false;
    if (!(is >> run.transport.published >>
          run.transport.deliveries >>
          run.transport.payloadCopies >>
          run.transport.loanedDeliveries >>
          run.transport.movedPublishes >>
          run.transport.forcedCopies))
        return false;

    int traced = 0;
    if (!expect(is, "trace") || !(is >> traced >> run.trace.events))
        return false;
    run.trace.enabled = traced != 0;
    if (!getF(is, run.trace.criticalPathMs) ||
        !(is >> run.trace.terminalTopic))
        return false;
    if (run.trace.terminalTopic == "-")
        run.trace.terminalTopic.clear();
    if (!expect(is, "tracepath") || !getCount(is, count))
        return false;
    run.trace.criticalPath.resize(count);
    for (trace::PathStep &step : run.trace.criticalPath) {
        if (!(is >> step.node >> step.topic >> step.seq) ||
            !getF(is, step.queueWaitMs) ||
            !getF(is, step.computeMs))
            return false;
    }
    if (!expect(is, "traceslack") || !getCount(is, count))
        return false;
    run.trace.nodes.resize(count);
    for (trace::NodeSlack &row : run.trace.nodes) {
        if (!(is >> row.node >> row.activations) ||
            !getF(is, row.meanQueueWaitMs) ||
            !getF(is, row.meanSpanMs) || !getF(is, row.meanCpuMs) ||
            !getF(is, row.meanGpuMs) || !getF(is, row.meanStallMs) ||
            !(is >> row.bottleneck))
            return false;
    }
    if (!expect(is, "traceedges") || !getCount(is, count))
        return false;
    run.trace.edges.resize(count);
    for (trace::EdgeUse &edge : run.trace.edges) {
        if (!(is >> edge.topic >> edge.from >> edge.to >>
              edge.messages))
            return false;
    }

    return expect(is, "end");
}

} // namespace

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory))
{
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return (std::filesystem::path(directory_) / (key + ".result"))
        .string();
}

std::optional<prof::RunResult>
ResultCache::load(const std::string &key) const
{
    if (!enabled())
        return std::nullopt;
    std::ifstream is(entryPath(key));
    if (!is)
        return std::nullopt;
    prof::RunResult run;
    if (!parse(is, run))
        return std::nullopt;
    return run;
}

bool
ResultCache::store(const std::string &key,
                   const prof::RunResult &result) const
{
    if (!enabled())
        return false;
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec)
        return false;

    // Unique temp name per writer thread: two jobs storing the same
    // key race only on the final atomic rename, never on content.
    std::ostringstream suffix;
    suffix << ".tmp-" << std::this_thread::get_id();
    const std::string temp = entryPath(key) + suffix.str();
    {
        std::ofstream os(temp, std::ios::trunc);
        if (!os)
            return false;
        serialize(os, result);
        if (!os.flush())
            return false;
    }
    std::filesystem::rename(temp, entryPath(key), ec);
    if (ec) {
        std::filesystem::remove(temp, ec);
        return false;
    }
    return true;
}

} // namespace av::exp
