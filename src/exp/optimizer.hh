/**
 * @file
 * GuardedOptimizer — the minimal closed loop on top of the trace
 * analysis: propose one configuration change at a time, re-measure
 * through the cached Runner, and keep the change only when the
 * measured worst-path end-to-end latency actually improved.
 *
 * The guard is the whole point. A bottleneck classification suggests
 * a remedy (a queue-bound node suggests shrinking its backlog, a
 * GPU-bound one a lighter detector) but never proves it: the change
 * is applied to a copy of the incumbent spec, replayed under the
 * full simulation, and compared on the measured metric. An
 * improvement below the configured margin — or a regression — rolls
 * back to the incumbent. Every step leaves an audit record, so a
 * bench can print the accept/rollback trail (BENCH_critical_path).
 *
 * Determinism: proposals are pure spec mutations, measurements come
 * from the deterministic replay (cache-keyed), and steps are applied
 * strictly in call order — the optimizer's trajectory is a pure
 * function of (incumbent spec, proposal sequence).
 */

#ifndef AVSCOPE_EXP_OPTIMIZER_HH
#define AVSCOPE_EXP_OPTIMIZER_HH

#include <functional>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace av::exp {

/** Audit record of one proposal. */
struct OptimizerStep
{
    std::string name;         ///< proposal label (reporting)
    double incumbentMs = 0.0; ///< metric before the proposal
    double candidateMs = 0.0; ///< metric with the proposal applied
    bool accepted = false;    ///< candidate became the incumbent

    double deltaMs() const { return candidateMs - incumbentMs; }
};

/**
 * Accept-on-improvement hill climber over ExperimentSpec mutations.
 * The metric is the worst computation path's mean end-to-end latency
 * (RunResult::worstCaseMean) — the paper's end-to-end cost, in the
 * stable mean form so the guard compares means, not tail noise.
 */
class GuardedOptimizer
{
  public:
    /** Mutates a copy of the incumbent spec into a candidate. */
    using Mutation = std::function<void(ExperimentSpec &)>;

    /**
     * @param runner shared (cached) experiment engine
     * @param incumbent starting configuration
     * @param min_improvement_ms accept only when the candidate beats
     *        the incumbent by strictly more than this margin
     */
    GuardedOptimizer(Runner &runner, ExperimentSpec incumbent,
                     double min_improvement_ms = 0.0);

    /**
     * Measure @p mutate applied to the incumbent; accept or roll
     * back. Returns the recorded step (valid until the next call).
     */
    const OptimizerStep &propose(const std::string &name,
                                 const Mutation &mutate);

    /** The current best configuration. */
    const ExperimentSpec &incumbent() const { return incumbent_; }

    /** The incumbent's measured metric (replays on first use). */
    double incumbentMetricMs();

    /** The incumbent's full measured result (replays on first use). */
    const prof::RunResult &incumbentResult();

    /** Every proposal in call order. */
    const std::vector<OptimizerStep> &history() const
    {
        return history_;
    }

    /** Proposals accepted so far. */
    std::size_t accepted() const;

  private:
    const prof::RunResult &measure(const ExperimentSpec &spec);

    Runner &runner_;
    ExperimentSpec incumbent_;
    double minImprovementMs_;
    std::vector<OptimizerStep> history_;
};

} // namespace av::exp

#endif // AVSCOPE_EXP_OPTIMIZER_HH
