/**
 * @file
 * ResultCache — content-addressed, on-disk storage of RunResults.
 *
 * Entries live under one directory as `<cacheKey>.result` text
 * files. Every floating-point value is stored as the hex of its IEEE
 * bit pattern, so a reloaded result is bit-identical to the stored
 * one regardless of locale or formatting defaults — the property the
 * determinism tests assert. A file that fails to parse (truncated
 * write, stale format) is treated as a miss, never an error: the
 * cache is an accelerator, not a source of truth.
 */

#ifndef AVSCOPE_EXP_CACHE_HH
#define AVSCOPE_EXP_CACHE_HH

#include <optional>
#include <string>

#include "core/run_result.hh"

namespace av::exp {

class ResultCache
{
  public:
    /** @param directory cache root; empty disables the cache. */
    explicit ResultCache(std::string directory = "");

    bool enabled() const { return !directory_.empty(); }

    /** File an entry would occupy (valid even when absent). */
    std::string entryPath(const std::string &key) const;

    /**
     * Load the entry for @p key; nullopt when the cache is disabled,
     * the entry is absent, or the file does not parse.
     */
    std::optional<prof::RunResult>
    load(const std::string &key) const;

    /**
     * Store @p result under @p key (creating the directory on first
     * use). Written via a temp file + rename so concurrent writers
     * of the same key and interrupted runs can never leave a
     * half-written entry behind.
     * @return false when disabled or on I/O failure
     */
    bool store(const std::string &key,
               const prof::RunResult &result) const;

  private:
    std::string directory_;
};

} // namespace av::exp

#endif // AVSCOPE_EXP_CACHE_HH
