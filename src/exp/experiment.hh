/**
 * @file
 * ExperimentSpec — the typed description of one characterization
 * experiment: which drive to record (scenario + recorder + length)
 * and which configuration to replay it under (RunConfig), plus a
 * human-readable label.
 *
 * A spec is a pure value. Two specs with equal content denote the
 * same experiment, which is what makes results cacheable: cacheKey()
 * hashes every replay-relevant field (and nothing else — the label
 * is presentation), so the on-disk result cache can prove "this
 * exact replay already happened" across processes.
 */

#ifndef AVSCOPE_EXP_EXPERIMENT_HH
#define AVSCOPE_EXP_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "core/characterization.hh"

namespace av::exp {

/**
 * One experiment: drive inputs + run configuration + label.
 *
 * Build fluently:
 *
 *   auto s = spec().detector(DetectorKind::Ssd512)
 *                  .durationSeconds(120)
 *                  .seed(2020)
 *                  .named("ssd512 full stack");
 *
 * or mutate the public fields directly for sweeps.
 */
struct ExperimentSpec
{
    std::string label = "experiment";
    world::ScenarioConfig scenario;
    world::RecorderConfig recorder;
    sim::Tick driveDuration = 60 * sim::oneSec;
    prof::RunConfig config;

    /** Set the presentation label (not part of the cache key). */
    ExperimentSpec &named(std::string name)
    {
        label = std::move(name);
        return *this;
    }

    /** Select the vision detector under test. */
    ExperimentSpec &detector(perception::DetectorKind kind)
    {
        config.stack.detector = kind;
        return *this;
    }

    /** Set the drive length in virtual ticks. */
    ExperimentSpec &duration(sim::Tick ticks)
    {
        driveDuration = ticks;
        return *this;
    }

    /** Set the drive length in virtual seconds. */
    ExperimentSpec &durationSeconds(long seconds)
    {
        driveDuration =
            static_cast<sim::Tick>(seconds) * sim::oneSec;
        return *this;
    }

    /** Set the scenario seed. */
    ExperimentSpec &seed(std::uint64_t value)
    {
        scenario.seed = value;
        return *this;
    }

    /** Replace the platform configuration. */
    ExperimentSpec &machine(const hw::MachineConfig &m)
    {
        config.machine = m;
        return *this;
    }

    /** Replace the sensor recording configuration. */
    ExperimentSpec &recording(const world::RecorderConfig &r)
    {
        recorder = r;
        return *this;
    }

    /**
     * Isolation mode (the paper's Fig. 8): run the vision detector
     * alone against the same bag — every other stack section off.
     */
    ExperimentSpec &isolatedVision()
    {
        config.stack.enableLocalization = false;
        config.stack.enableLidarDetection = false;
        config.stack.enableTracking = false;
        config.stack.enableCostmap = false;
        return *this;
    }

    /**
     * Select the intra-process transport path (cache-key salted).
     * Loan is the default zero-copy path; Copy reproduces the v1
     * per-subscriber deep-copy transport for old-vs-new comparison.
     * Simulated results are identical either way — only host-side
     * work (and the copy counters) differ.
     */
    ExperimentSpec &transportMode(ros::TransportMode mode)
    {
        config.transport.mode = mode;
        return *this;
    }

    /** Arm a fault schedule against the replay (cache-key salted). */
    ExperimentSpec &faults(const fault::FaultPlan &plan)
    {
        config.faults = plan;
        return *this;
    }

    /** Enable the graceful-degradation responses (watchdog, LiDAR-
     *  only fusion fallback, tracker coasting, NDT reseeding). */
    ExperimentSpec &degraded()
    {
        config.stack.degradation.enabled = true;
        return *this;
    }

    /**
     * Arm the safety-invariant monitor with the given thresholds
     * (cache-key salted; every threshold folds in). The monitor is
     * a pure observer — enabling it changes no measurement, but the
     * result gains the violations section, hence the salt.
     */
    ExperimentSpec &invariants(const stack::SafetyOptions &options =
                                   stack::SafetyOptions())
    {
        config.safety = options;
        config.safety.enabled = true;
        return *this;
    }

    /**
     * Retain the full trace event stream and attach the execution-
     * DAG analysis to the result (cache-key salted). Named traced()
     * — not trace() — so reading a call site never confuses the
     * switch with the av::trace namespace it switches on.
     */
    ExperimentSpec &traced(bool on = true)
    {
        config.trace = on;
        return *this;
    }

    /**
     * Override one subscription's queue depth at runtime (cache-key
     * salted; stackable). The closed-loop optimizer's knob: source
     * literals and the static topology stay untouched.
     */
    ExperimentSpec &queueDepth(std::string topic, std::string node,
                               std::size_t depth)
    {
        config.queueDepths.push_back(
            {std::move(topic), std::move(node), depth});
        return *this;
    }
};

/** Fresh spec with calibrated defaults. */
inline ExperimentSpec
spec()
{
    return ExperimentSpec();
}

/**
 * Content key of the full experiment: every field that influences
 * the replay's measurements — scenario, recorder, drive duration,
 * stack options, machine, transport, calibration and probe grain —
 * folded through FNV-1a into 16 hex digits. Excludes the label.
 * The encoding carries a format version, so key semantics can be
 * evolved by bumping it (old cache entries simply stop matching).
 */
std::string cacheKey(const ExperimentSpec &spec);

/**
 * Content key of the drive inputs alone (scenario + recorder +
 * duration): specs sharing a driveKey replay the same recorded bag
 * and map, which the Runner records once and shares.
 */
std::string driveKey(const ExperimentSpec &spec);

} // namespace av::exp

#endif // AVSCOPE_EXP_EXPERIMENT_HH
