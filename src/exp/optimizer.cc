#include "exp/optimizer.hh"

#include <utility>

namespace av::exp {

GuardedOptimizer::GuardedOptimizer(Runner &runner,
                                   ExperimentSpec incumbent,
                                   double min_improvement_ms)
    : runner_(runner), incumbent_(std::move(incumbent)),
      minImprovementMs_(min_improvement_ms)
{
}

const prof::RunResult &
GuardedOptimizer::measure(const ExperimentSpec &spec)
{
    // The Runner memoizes by cacheKey, so re-measuring the incumbent
    // after a rollback is a cache hit, not a replay.
    return runner_.result(runner_.submit(spec));
}

const prof::RunResult &
GuardedOptimizer::incumbentResult()
{
    return measure(incumbent_);
}

double
GuardedOptimizer::incumbentMetricMs()
{
    return incumbentResult().worstCaseMean();
}

const OptimizerStep &
GuardedOptimizer::propose(const std::string &name,
                          const Mutation &mutate)
{
    OptimizerStep step;
    step.name = name;
    step.incumbentMs = incumbentMetricMs();

    ExperimentSpec candidate = incumbent_;
    mutate(candidate);
    step.candidateMs = measure(candidate).worstCaseMean();

    // The guard: strict measured improvement beyond the margin, or
    // the incumbent stands. Ties roll back — a change that cannot
    // prove itself is not worth carrying.
    step.accepted =
        step.candidateMs < step.incumbentMs - minImprovementMs_;
    if (step.accepted)
        incumbent_ = std::move(candidate);

    history_.push_back(std::move(step));
    return history_.back();
}

std::size_t
GuardedOptimizer::accepted() const
{
    std::size_t count = 0;
    for (const OptimizerStep &step : history_)
        if (step.accepted)
            ++count;
    return count;
}

} // namespace av::exp
