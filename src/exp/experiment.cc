#include "exp/experiment.hh"

#include <bit>
#include <cstdint>

namespace av::exp {

namespace {

/**
 * Streaming 64-bit FNV-1a over a canonical field encoding. Every
 * value is folded as its exact bit pattern (doubles via bit_cast, so
 * -0.0 vs 0.0 and every NaN payload are distinct — bit-identical in,
 * bit-identical out), and each struct boundary is salted with a tag
 * string so field sequences from adjacent structs cannot alias.
 */
class Hasher
{
  public:
    void bytes(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= p[i];
            hash_ *= 1099511628211ULL;
        }
    }

    void tag(const char *text)
    {
        for (const char *p = text; *p != '\0'; ++p)
            bytes(p, 1);
        const unsigned char sep = 0xff; // never appears in a tag
        bytes(&sep, 1);
    }

    void u64(std::uint64_t value) { bytes(&value, sizeof(value)); }
    void f64(double value)
    {
        u64(std::bit_cast<std::uint64_t>(value));
    }
    void boolean(bool value) { u64(value ? 1u : 0u); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 14695981039346656037ULL;
};

void
fold(Hasher &h, const world::ScenarioConfig &c)
{
    h.tag("scenario");
    h.u64(c.seed);
    h.f64(c.blockLength);
    h.f64(c.blockWidth);
    h.f64(c.egoSpeed);
    h.u64(c.nVehicles);
    h.f64(c.vehicleLaneOffset);
    h.u64(c.nParked);
    h.u64(c.nPedestrians);
    h.u64(c.nBuildings);
}

void
fold(Hasher &h, const world::RecorderConfig &c)
{
    h.tag("recorder");
    h.u64(c.lidarPeriod);
    h.u64(c.cameraPeriod);
    h.u64(c.gnssPeriod);
    h.u64(c.imuPeriod);
    h.u64(c.cameraPhase);
}

void
fold(Hasher &h, const stack::DegradationOptions &c)
{
    h.tag("degradation");
    h.boolean(c.enabled);
    h.u64(c.visionStaleAfter);
    h.u64(c.trackerCoastAfter);
    h.u64(c.trackerCoastPeriod);
    h.u64(c.ndtReseedAfter);
    h.u64(c.watchdogPeriod);
    h.u64(c.watchdogStaleAfter);
}

void
fold(Hasher &h, const stack::StackOptions &c)
{
    h.tag("stack");
    h.u64(static_cast<std::uint64_t>(c.detector));
    h.boolean(c.enableVision);
    h.boolean(c.enableLocalization);
    h.boolean(c.enableLidarDetection);
    h.boolean(c.enableTracking);
    h.boolean(c.enableCostmap);
    h.boolean(c.clusterOnGpu);
    fold(h, c.degradation);
}

void
fold(Hasher &h, const fault::FaultPlan &plan)
{
    h.tag("faults");
    h.u64(plan.seed);
    h.u64(plan.faults.size());
    for (const fault::FaultSpec &spec : plan.faults) {
        h.tag("fault");
        h.u64(static_cast<std::uint64_t>(spec.kind));
        h.u64(spec.start);
        h.u64(spec.duration);
        h.tag(spec.target.c_str());
        h.f64(spec.probability);
        h.f64(spec.factor);
        h.u64(spec.extraDelay);
        h.u64(spec.respawnDelay);
        h.tag(spec.watchTopic.c_str());
    }
}

void
fold(Hasher &h, const stack::SafetyOptions &c)
{
    h.tag("safety");
    h.boolean(c.enabled);
    h.u64(c.samplePeriod);
    h.f64(c.trackRange);
    h.f64(c.trackGate);
    h.u64(c.trackLossSamples);
    h.f64(c.maxLocalizationError);
    h.f64(c.deadlineMs);
    h.u64(c.deadlineMissStreak);
    h.u64(c.livenessAfter);
}

void
fold(Hasher &h, const hw::MachineConfig &c)
{
    h.tag("cpu");
    h.u64(c.cpu.cores);
    h.f64(c.cpu.freqGhz);
    h.u64(c.cpu.quantum);
    h.f64(c.cpu.memBandwidthGBs);
    h.f64(c.cpu.memPenaltyCyclesPerByte);
    h.f64(c.cpu.maxMemSlowdown);
    h.tag("gpu");
    h.f64(c.gpu.tflops);
    h.f64(c.gpu.memBandwidthGBs);
    h.f64(c.gpu.pcieGBs);
    h.u64(c.gpu.kernelOverhead);
    h.u64(c.gpu.copyOverhead);
    h.f64(c.gpu.computeEfficiency);
    h.tag("power");
    h.f64(c.power.cpuIdleW);
    h.f64(c.power.cpuPerCoreW);
    h.f64(c.power.cpuMemWPerGBs);
    h.f64(c.power.gpuIdleW);
    h.f64(c.power.gpuMaxDynamicW);
    h.f64(c.power.gpuCopyW);
}

void
fold(Hasher &h, const ros::TransportConfig &c)
{
    h.tag("transport");
    h.u64(c.baseLatency);
    h.f64(c.bandwidthGBs);
    h.u64(static_cast<std::uint64_t>(c.mode));
}

void
fold(Hasher &h, const perception::NodeConfig &c)
{
    h.tag("node");
    h.f64(c.workScale);
    h.u64(c.tracePeriod);
    h.f64(c.costJitterCv);
    h.u64(c.cache.sizeBytes);
    h.u64(c.cache.assoc);
    h.u64(c.cache.lineBytes);
    h.u64(c.branch.tableBits);
    h.u64(c.branch.historyBits);
    h.f64(c.pipeline.peakIpc);
    h.f64(c.pipeline.memIssueCost);
    h.f64(c.pipeline.readMissPenalty);
    h.f64(c.pipeline.writeMissPenalty);
    h.f64(c.pipeline.flushPenalty);
    h.f64(c.pipeline.divExtraLatency);
    h.f64(c.pipeline.simdBonus);
    h.f64(c.pipeline.l2MissFactor);
}

void
fold(Hasher &h, const stack::NodeCalibration &c)
{
    h.tag("calibration");
    fold(h, c.voxelGridFilter);
    fold(h, c.ndtMatching);
    fold(h, c.rayGroundFilter);
    fold(h, c.euclideanCluster);
    fold(h, c.visionDetector);
    fold(h, c.rangeVisionFusion);
    fold(h, c.immUkfPda);
    fold(h, c.trackRelay);
    fold(h, c.naiveMotionPredict);
    fold(h, c.costmapGenerator);
}

void
foldDrive(Hasher &h, const ExperimentSpec &spec)
{
    fold(h, spec.scenario);
    fold(h, spec.recorder);
    h.tag("duration");
    h.u64(spec.driveDuration);
}

std::string
hex16(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

} // namespace

std::string
cacheKey(const ExperimentSpec &spec)
{
    Hasher h;
    // Format version: bump whenever the key encoding, the RunConfig
    // field set or the result file format changes, so stale cache
    // entries miss instead of misloading. v5: safety-invariant
    // thresholds, violations section in the result file,
    // content-derived fault Rng salts.
    h.tag("avscope-exp-v5");
    foldDrive(h, spec);
    fold(h, spec.config.stack);
    fold(h, spec.config.machine);
    fold(h, spec.config.transport);
    fold(h, spec.config.calibration);
    h.tag("probes");
    h.u64(spec.config.samplePeriod);
    h.u64(spec.config.drainGrace);
    fold(h, spec.config.faults);
    fold(h, spec.config.safety);
    h.tag("trace");
    h.boolean(spec.config.trace);
    h.tag("queuedepths");
    h.u64(spec.config.queueDepths.size());
    for (const ros::QueueDepthOverride &o : spec.config.queueDepths) {
        h.tag(o.topic.c_str());
        h.tag(o.node.c_str());
        h.u64(o.depth);
    }
    return hex16(h.value());
}

std::string
driveKey(const ExperimentSpec &spec)
{
    Hasher h;
    h.tag("avscope-drive-v1");
    foldDrive(h, spec);
    return hex16(h.value());
}

} // namespace av::exp
